package puno

// Regression tests for the invariant punovet's maprange analyzer mechanizes:
// no iteration order inside the directory, the TxLB, or the RMW predictor
// may leak into a Result or a rendered dump. Each test perturbs map layout
// a different way — fresh machines get fresh map hash seeds, and an
// arena-reused machine carries maps whose internal layout (bucket order,
// tombstones) reflects the previous run — and demands byte-identical
// output either way.

import (
	"context"
	"reflect"
	"testing"
)

// TestSweepDumpStableAcrossRepetition runs the same sweep twice in one
// process and requires the full rendered dump — every table and CSV the
// figure drivers produce — to match byte for byte. Every map in the second
// sweep is a new object with a new hash seed, so a map-order dependence
// anywhere between the simulator and the report layer shows up as a diff.
func TestSweepDumpStableAcrossRepetition(t *testing.T) {
	ctx := context.Background()
	wls := []*Profile{MustWorkload("intruder").WithTxPerCPU(4)}
	schemes := []Scheme{SchemeBaseline, SchemePUNO}

	first, err := RunSweepCtx(ctx, detConfig(), wls, schemes, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSweepCtx(ctx, detConfig(), wls, schemes, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderAll(t, first), renderAll(t, second)
	if a != b {
		t.Fatalf("repeating the sweep changed the rendered dump:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestResetReuseMatchesFreshDump drives the arena path the sweep workers
// use: one machine runs the PUNO scheme (directory, TxLB, and RMW
// predictor all live), is Reset, and runs the same spec again. Both the
// full Result structs and a rendered dump built from them must be
// identical to a fresh machine's. A reused machine's maps differ from a
// fresh machine's in hash seed and in internal layout left behind by the
// previous run, so any order leak in eviction scans, GlobalAverage, or
// directory reset shows up here.
func TestResetReuseMatchesFreshDump(t *testing.T) {
	cfg := detConfig()
	cfg.Scheme = SchemePUNO
	wl := MustWorkload("kmeans").WithTxPerCPU(5)

	fresh, err := NewMachine(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantClone := want.Clone()

	arena, err := NewMachine(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arena.Run(); err != nil {
		t.Fatal(err)
	}
	// Dirty the arena with a different scheme and workload so the reused
	// maps carry layout from a genuinely different run, then come back.
	dirty := detConfig()
	dirty.Scheme = SchemeBackoff
	if err := arena.Reset(dirty, MustWorkload("intruder").WithTxPerCPU(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := arena.Run(); err != nil {
		t.Fatal(err)
	}
	if err := arena.Reset(cfg, wl); err != nil {
		t.Fatal(err)
	}
	got, err := arena.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Clone(), wantClone) {
		t.Fatalf("arena-reused Result diverged from fresh machine:\n got: %+v\nwant: %+v", got, wantClone)
	}
	// The derived metrics feeding the figure tables must agree too — these
	// are the paths that walk FalseAbortHist and friends.
	type derived struct {
		abortRate float64
		falseFrac float64
		gd        float64
		dirBlock  float64
		unnec     uint64
	}
	d1 := derived{want.AbortRate(), want.FalseAbortFraction(), want.GDRatio(), want.DirBlockingPerTxGETX(), want.UnnecessaryAborts()}
	d2 := derived{got.AbortRate(), got.FalseAbortFraction(), got.GDRatio(), got.DirBlockingPerTxGETX(), got.UnnecessaryAborts()}
	if d1 != d2 {
		t.Fatalf("derived metrics diverged between fresh and reused machine:\nfresh:  %+v\nreused: %+v", d1, d2)
	}
}

// TestRepeatedRunsShareNoOrderState runs one PUNO config several times on
// fresh machines and requires every repetition's UnnecessaryAborts — the
// one metric computed by walking the FalseAbortHist map — to agree, so a
// reintroduced unordered walk that happens to sum correctly by commutivity
// is still pinned by the stronger full-Result equality above.
func TestRepeatedRunsShareNoOrderState(t *testing.T) {
	cfg := detConfig()
	cfg.Scheme = SchemePUNO
	wl := MustWorkload("intruder").WithTxPerCPU(4)
	var base *Result
	for i := 0; i < 3; i++ {
		r, err := Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = r
			continue
		}
		if !reflect.DeepEqual(r, base) {
			t.Fatalf("repetition %d produced a different Result", i)
		}
	}
	if base.Commits == 0 {
		t.Fatal("workload committed nothing; the equality above is vacuous")
	}
	// Sanity: the run aborted at least once, so FalseAbortHist and the
	// predictor tables were actually populated and walked.
	if base.Aborts == 0 {
		t.Fatal("workload never aborted; the order-leak check is vacuous")
	}
}
