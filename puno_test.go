package puno

import (
	"context"
	"strings"
	"testing"
)

// tinyWorkloads shrinks the suite so API tests stay fast.
func tinyWorkloads() []*Profile { return ScaledWorkloads(0.08) }

func TestRunSingleWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	res, err := Run(cfg, MustWorkload("genome").WithTxPerCPU(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 160 {
		t.Fatalf("commits = %d, want 160", res.Commits)
	}
	if res.Cycles == 0 || res.Net.TotalTraversals() == 0 {
		t.Fatal("empty measurements")
	}
}

func TestRunSweepAndFigures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 9
	sweep, err := RunSweep(cfg, tinyWorkloads(), Schemes())
	if err != nil {
		t.Fatal(err)
	}

	for name, render := range map[string]func() (*Table, error){
		"table1": sweep.Table1,
		"fig2":   sweep.Fig2,
		"fig10":  sweep.Fig10,
		"fig11":  sweep.Fig11,
		"fig12":  sweep.Fig12,
		"fig13":  sweep.Fig13,
		"fig14":  sweep.Fig14,
	} {
		tbl, err := render()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := tbl.String()
		if !strings.Contains(out, "bayes") || !strings.Contains(out, "vacation") {
			t.Errorf("%s missing workload rows:\n%s", name, out)
		}
		if name != "table1" && name != "fig2" {
			if !strings.Contains(out, "PUNO") || !strings.Contains(out, "mean(high-cont)") {
				t.Errorf("%s missing scheme columns or means:\n%s", name, out)
			}
		}
		if csv := tbl.CSV(); !strings.Contains(csv, ",") {
			t.Errorf("%s CSV rendering broken", name)
		}
	}

	fig3, err := sweep.Fig3All()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig3, "Fig. 3") {
		t.Errorf("Fig3All produced no histograms:\n%s", fig3)
	}

	st, err := sweep.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if st.TrafficReductionHC == 0 && st.AbortReductionHC == 0 {
		t.Error("summary statistics all zero")
	}
}

func TestBaselineMissingIsDescriptiveError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	wls := []*Profile{MustWorkload("kmeans").WithTxPerCPU(4)}
	sweep, err := RunSweepCtx(context.Background(), cfg, wls, []Scheme{SchemePUNO}, SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.Baseline("kmeans"); err == nil {
		t.Fatal("Baseline without SchemeBaseline in the scheme set did not error")
	} else if !strings.Contains(err.Error(), "Baseline") || !strings.Contains(err.Error(), "kmeans") {
		t.Fatalf("baseline error not descriptive: %v", err)
	}
	if _, err := sweep.Fig10(); err == nil {
		t.Fatal("Fig10 without baseline did not propagate the error")
	}
	if _, err := sweep.Summary(); err == nil {
		t.Fatal("Summary without baseline did not propagate the error")
	}
}

func TestTable2And3NeedNoSimulation(t *testing.T) {
	t2 := Table2(DefaultConfig()).String()
	for _, want := range []string{"L1 cache", "MESI", "mesh", "P-Buffer"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
	t3 := Table3(16)
	for _, want := range []string{"Prio-Buffer", "TxLB", "UD pointers", "0.41%", "0.31%"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table3 missing %q:\n%s", want, t3)
		}
	}
}

func TestWorkloadRegistryThroughFacade(t *testing.T) {
	if len(Workloads()) != 8 {
		t.Fatalf("Workloads() = %d, want 8", len(Workloads()))
	}
	if len(HighContentionWorkloads()) != 4 {
		t.Fatal("high-contention subset wrong")
	}
	if _, err := WorkloadByName("nosuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCustomProfileThroughFacade(t *testing.T) {
	wl := NewProfile("custom", false, 5,
		Class{StaticID: 900, Weight: 1, RegionLines: 32, ReadsMin: 2, ReadsMax: 4,
			WritesMin: 1, WritesMax: 1, WritesFromReads: true, BodyCompute: 50, Think: 30})
	cfg := DefaultConfig()
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 5*16 {
		t.Fatalf("commits = %d, want 80", res.Commits)
	}
}

func TestCustomWorkloadViaProgramFunc(t *testing.T) {
	wl := funcWorkload{}
	m, err := NewMachine(DefaultConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 16*3 {
		t.Fatalf("commits = %d, want 48", res.Commits)
	}
	// Serializability oracle through the facade.
	m.DrainCaches()
	for a, want := range m.CommittedIncrements() {
		if got := m.Backing().LoadWord(a); got != want {
			t.Fatalf("addr %#x = %d, want %d", uint64(a), got, want)
		}
	}
}

type funcWorkload struct{}

func (funcWorkload) Name() string         { return "func" }
func (funcWorkload) HighContention() bool { return false }
func (funcWorkload) Program(node int, _ *RNG) Program {
	n := 0
	return ProgramFunc(func(rng *RNG) (TxInstance, bool) {
		if n >= 3 {
			return TxInstance{}, false
		}
		n++
		return TxInstance{
			StaticID: 7,
			Ops: []Op{
				{Kind: OpIncr, Addr: LineAddr(0x9000, rng.Intn(4))},
				{Kind: OpCompute, Cycles: 25},
			},
			ThinkCycles: 40,
		}, true
	})
}

func TestDeterministicSweep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 77
	wls := []*Profile{MustWorkload("kmeans").WithTxPerCPU(15)}
	s1, err := RunSweep(cfg, wls, []Scheme{SchemePUNO})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunSweep(cfg, wls, []Scheme{SchemePUNO})
	if err != nil {
		t.Fatal(err)
	}
	a := s1.Results["kmeans"][SchemePUNO]
	b := s2.Results["kmeans"][SchemePUNO]
	if a.Cycles != b.Cycles || a.Aborts != b.Aborts || a.Net.TotalTraversals() != b.Net.TotalTraversals() {
		t.Fatal("same-seed sweeps diverged")
	}
}

func TestScaledWorkloads(t *testing.T) {
	full := Workloads()
	scaled := ScaledWorkloads(0.5)
	for i := range full {
		if scaled[i].TxPerCPU() >= full[i].TxPerCPU() {
			t.Fatalf("%s not scaled down", full[i].Name())
		}
		if scaled[i].TxPerCPU() < 2 {
			t.Fatalf("%s scaled below floor", full[i].Name())
		}
	}
}
