package puno

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out and microbenchmarks of the
// substrates. Each figure bench runs the relevant workload x scheme sweep
// at reduced scale (the full-scale numbers are produced by
// cmd/experiments) and reports the headline quantity of that figure as a
// custom metric, so `go test -bench . -benchmem` regenerates the whole
// evaluation in miniature.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/pdes"
	"repro/internal/sim"
)

const benchScale = 0.2 // fraction of each profile's full transaction count

func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = 12345
	return cfg
}

// benchSweep runs the given schemes over all eight workloads at reduced
// scale, once per benchmark iteration.
func benchSweep(b *testing.B, schemes []Scheme) *Sweep {
	b.Helper()
	var sweep *Sweep
	for i := 0; i < b.N; i++ {
		var err error
		sweep, err = RunSweep(benchConfig(), ScaledWorkloads(benchScale), schemes)
		if err != nil {
			b.Fatal(err)
		}
	}
	return sweep
}

// hcMeanNormalized extracts the high-contention mean of metric, normalized
// to baseline — the number the paper quotes for each figure.
func hcMeanNormalized(s *Sweep, scheme Scheme, metric func(*Result) float64) float64 {
	var sum float64
	var n int
	for _, wl := range s.Workloads {
		if !wl.HighContention() {
			continue
		}
		base := metric(s.Results[wl.Name()][SchemeBaseline])
		if base == 0 {
			continue
		}
		sum += metric(s.Results[wl.Name()][scheme]) / base
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkTable1 regenerates Table I: baseline abort rates per workload.
func BenchmarkTable1(b *testing.B) {
	sweep := benchSweep(b, []Scheme{SchemeBaseline})
	for _, wl := range sweep.Workloads {
		r := sweep.Results[wl.Name()][SchemeBaseline]
		b.ReportMetric(100*r.AbortRate(), "abort%/"+wl.Name())
	}
}

// BenchmarkTable2 renders the configuration table (no simulation).
func BenchmarkTable2(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(Table2(DefaultConfig()).String())
	}
	b.ReportMetric(float64(n), "chars")
}

// BenchmarkTable3 regenerates Table III: PUNO area/power overhead.
func BenchmarkTable3(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = Table3(16)
	}
	if len(s) == 0 {
		b.Fatal("empty table")
	}
	// The paper's headline: 0.41% area, 0.31% power.
	b.ReportMetric(0.41, "paper-area-%")
	b.ReportMetric(0.31, "paper-power-%")
}

// BenchmarkFig2 regenerates Fig. 2: the fraction of transactional GETX
// accesses that incur false aborting under the baseline.
func BenchmarkFig2(b *testing.B) {
	sweep := benchSweep(b, []Scheme{SchemeBaseline})
	var hc float64
	var n int
	for _, wl := range sweep.Workloads {
		r := sweep.Results[wl.Name()][SchemeBaseline]
		b.ReportMetric(100*r.FalseAbortFraction(), "false%/"+wl.Name())
		if wl.HighContention() {
			hc += 100 * r.FalseAbortFraction()
			n++
		}
	}
	b.ReportMetric(hc/float64(n), "false%/high-contention-mean")
}

// BenchmarkFig3 regenerates Fig. 3: the distribution of transactions
// aborted unnecessarily per false-aborting request.
func BenchmarkFig3(b *testing.B) {
	sweep := benchSweep(b, []Scheme{SchemeBaseline})
	var events, victims uint64
	maxMult := 0
	for _, wl := range sweep.Workloads {
		for k, c := range sweep.Results[wl.Name()][SchemeBaseline].FalseAbortHist {
			if c == 0 {
				continue
			}
			events += c
			victims += uint64(k) * c
			if k > maxMult {
				maxMult = k
			}
		}
	}
	if events == 0 {
		b.Fatal("no false-aborting events at bench scale")
	}
	b.ReportMetric(float64(victims)/float64(events), "victims/event")
	b.ReportMetric(float64(maxMult), "max-victims")
}

// BenchmarkFig10 regenerates Fig. 10: normalized transaction aborts for
// the four schemes (high-contention mean; paper: PUNO 0.39).
func BenchmarkFig10(b *testing.B) {
	sweep := benchSweep(b, Schemes())
	metric := func(r *Result) float64 { return float64(r.Aborts) }
	for _, s := range Schemes() {
		b.ReportMetric(hcMeanNormalized(sweep, s, metric), "norm-aborts/"+s.String())
	}
}

// BenchmarkFig11 regenerates Fig. 11: normalized on-chip network traffic
// (paper: PUNO 0.67 in high contention).
func BenchmarkFig11(b *testing.B) {
	sweep := benchSweep(b, Schemes())
	metric := func(r *Result) float64 { return float64(r.Net.TotalTraversals()) }
	for _, s := range Schemes() {
		b.ReportMetric(hcMeanNormalized(sweep, s, metric), "norm-traffic/"+s.String())
	}
}

// BenchmarkFig12 regenerates Fig. 12: normalized directory blocking while
// servicing transactional GETX (paper: PUNO 0.82).
func BenchmarkFig12(b *testing.B) {
	sweep := benchSweep(b, Schemes())
	metric := func(r *Result) float64 { return float64(r.DirTxGETXBusy) }
	for _, s := range Schemes() {
		b.ReportMetric(hcMeanNormalized(sweep, s, metric), "norm-dirblock/"+s.String())
	}
}

// BenchmarkFig13 regenerates Fig. 13: normalized execution time (paper:
// PUNO 0.88 in high contention).
func BenchmarkFig13(b *testing.B) {
	sweep := benchSweep(b, Schemes())
	metric := func(r *Result) float64 { return float64(r.Cycles) }
	for _, s := range Schemes() {
		b.ReportMetric(hcMeanNormalized(sweep, s, metric), "norm-time/"+s.String())
	}
}

// BenchmarkFig14 regenerates Fig. 14: the normalized good/discarded
// transaction cycle ratio (paper: PUNO 1.65x baseline).
func BenchmarkFig14(b *testing.B) {
	sweep := benchSweep(b, Schemes())
	metric := func(r *Result) float64 { return r.GDRatio() }
	for _, s := range Schemes() {
		b.ReportMetric(hcMeanNormalized(sweep, s, metric), "norm-gd/"+s.String())
	}
}

// ---- ablation benches (DESIGN.md) ---------------------------------------

// BenchmarkAblationPUNOParts separates PUNO's two mechanisms: predictive
// unicast alone, notification alone, and both.
func BenchmarkAblationPUNOParts(b *testing.B) {
	schemes := []Scheme{SchemeBaseline, SchemeUnicastOnly, SchemeNotifyOnly, SchemePUNO}
	sweep := benchSweep(b, schemes)
	metric := func(r *Result) float64 { return float64(r.UnnecessaryAborts() + 1) }
	for _, s := range schemes[1:] {
		b.ReportMetric(hcMeanNormalized(sweep, s, metric), "norm-unnecessary/"+s.String())
	}
}

// BenchmarkAblationValidity sweeps the P-Buffer validity timeout
// multiplier on labyrinth, the workload most sensitive to prediction
// staleness.
func BenchmarkAblationValidity(b *testing.B) {
	wl := MustWorkload("labyrinth").WithTxPerCPU(4)
	for _, mult := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("mult%d", mult), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Scheme = SchemePUNO
				cfg.ValidityTimeoutMult = mult
				var err error
				res, err = Run(cfg, wl)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.UnnecessaryAborts()), "unnecessary-aborts")
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationSignatures compares exact read/write sets against
// Bloom-filter signatures (LogTM-SE style) on intruder.
func BenchmarkAblationSignatures(b *testing.B) {
	wl := MustWorkload("intruder").WithTxPerCPU(15)
	for _, bits := range []int{0, 512, 2048} {
		name := "exact"
		if bits > 0 {
			name = fmt.Sprintf("sig%d", bits)
		}
		b.Run(name, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.SignatureBits = bits
				var err error
				res, err = Run(cfg, wl)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Aborts), "aborts")
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationGuardBand sweeps the notification guard band (the
// paper uses twice the average cache-to-cache latency) on bayes.
func BenchmarkAblationGuardBand(b *testing.B) {
	wl := MustWorkload("bayes").WithTxPerCPU(6)
	for _, guard := range []Time{1, 23, 46, 184} {
		b.Run(fmt.Sprintf("guard%d", guard), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Scheme = SchemePUNO
				cfg.NotifyGuardOverride = guard
				var err error
				res, err = Run(cfg, wl)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
			b.ReportMetric(float64(res.Aborts), "aborts")
		})
	}
}

// ---- parallel runner ----------------------------------------------------

// BenchmarkSweepParallelism runs the same four-scheme high-contention
// sweep serially and fanned across the worker pool. The parallel/serial
// ns/op ratio is the experiment harness's speedup on this host (on a
// single-core machine the two are expected to tie; output stays
// bit-identical either way — see TestSerialParallelByteIdentical).
func BenchmarkSweepParallelism(b *testing.B) {
	workloads := []*Profile{
		MustWorkload("intruder").WithTxPerCPU(6),
		MustWorkload("kmeans").WithTxPerCPU(8),
	}
	schemes := Schemes()
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := RunSweepCtx(context.Background(), benchConfig(), workloads, schemes,
					SweepOptions{Parallel: bc.workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(workloads)*len(schemes)), "runs/op")
		})
	}

	// big-serial vs big-sharded is the PDES speedup pair: one 64-node
	// (8x8 mesh) high-contention simulation, first on the classic serial
	// engine, then sharded four ways under the conservative-lookahead
	// coordinator. Results are bit-identical (the determinism suite
	// certifies that); the ns/op ratio is the single-simulation speedup
	// parallel in-machine execution buys on this host.
	bigWL := MustWorkload("intruder").WithTxPerCPU(4)
	bigCfg := func(shards int) Config {
		cfg := benchConfig()
		cfg.Scheme = SchemePUNO
		cfg.Mesh.Width, cfg.Mesh.Height = 8, 8
		cfg.Nodes = 64
		cfg.Shards = shards
		return cfg
	}
	// Both sides run the documented arena-reuse pattern (construct once,
	// Reset+Run per iteration) so the pair isolates steady-state simulation
	// and coordination cost rather than allocator traffic; the one-shot
	// Run() construction path is covered by the sweep benches above.
	b.Run("big-serial", func(b *testing.B) {
		cfg := bigCfg(1)
		m, err := NewMachine(cfg, bigWL)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Reset(cfg, bigWL); err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("big-sharded", func(b *testing.B) {
		cfg := bigCfg(4)
		co, err := pdes.New(cfg, bigWL)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := co.Reset(cfg, bigWL); err != nil {
				b.Fatal(err)
			}
			if _, err := co.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// big256-sharded scales the sharded leg to 256 nodes on a 16x16 mesh —
	// the configuration the multi-word directory sharer sets unlock. It has
	// no serial twin in the committed pair; it exists to catch coordination
	// costs that only appear when the window population and the per-commit
	// O(shards) scans quadruple.
	b.Run("big256-sharded", func(b *testing.B) {
		cfg := bigCfg(4)
		cfg.Mesh.Width, cfg.Mesh.Height = 16, 16
		cfg.Nodes = 256
		co, err := pdes.New(cfg, bigWL)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := co.Reset(cfg, bigWL); err != nil {
				b.Fatal(err)
			}
			if _, err := co.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// serial-traced is the serial sweep with an event sink installed on
	// every spec: the cost of leaving event tracing on. The serial variant
	// above runs with the sink nil, so comparing the two isolates the
	// tracing overhead, and comparing serial against the pre-hook baseline
	// in BENCH_sweep.json shows the tracing-off cost of the hooks
	// themselves (one nil check per emit site — expected within noise).
	b.Run("serial-traced", func(b *testing.B) {
		var specs []RunSpec
		var sinks []*EventBuffer
		for _, wl := range workloads {
			for _, sch := range schemes {
				cfg := benchConfig()
				cfg.Scheme = sch
				buf := &EventBuffer{}
				cfg.EventSink = buf
				specs = append(specs, RunSpec{Config: cfg, Workload: wl})
				sinks = append(sinks, buf)
			}
		}
		events := 0
		for i := 0; i < b.N; i++ {
			for _, s := range sinks {
				s.Reset()
			}
			if _, err := RunSpecs(context.Background(), specs, SweepOptions{Parallel: 1}); err != nil {
				b.Fatal(err)
			}
			events = 0
			for _, s := range sinks {
				events += s.Len()
			}
		}
		b.ReportMetric(float64(len(specs)), "runs/op")
		b.ReportMetric(float64(events), "events/op")
	})
}

// ---- substrate microbenchmarks ------------------------------------------

// BenchmarkEngineEvents measures raw discrete-event throughput.
func BenchmarkEngineEvents(b *testing.B) {
	e := sim.NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.After(1, tick)
	e.Run(sim.Infinity)
}

// BenchmarkMeshSend measures interconnect message throughput.
func BenchmarkMeshSend(b *testing.B) {
	eng := sim.NewEngine()
	m := noc.New(noc.DefaultConfig(), eng)
	for i := 0; i < 16; i++ {
		m.Attach(i, func(any) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(i%16, (i+5)%16, noc.ClassRequest, 1, nil)
		if i%1024 == 0 {
			eng.Run(sim.Infinity)
		}
	}
	eng.Run(sim.Infinity)
}

// BenchmarkL1Access measures cache array lookup throughput.
func BenchmarkL1Access(b *testing.B) {
	c := cache.New(cache.Config{SizeBytes: 32 * 1024, Ways: 4})
	for i := 0; i < 256; i++ {
		c.Insert(mem.Line(uint64(i)*mem.LineBytes), cache.Shared, mem.LineData{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(mem.Line(uint64(i%256) * mem.LineBytes))
	}
}

// BenchmarkSignatureInsertTest measures Bloom-filter conflict checks.
func BenchmarkSignatureInsertTest(b *testing.B) {
	s := htm.NewSignature(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := mem.Line(uint64(i%4096) * mem.LineBytes)
		s.InsertRead(l)
		if s.TestWrite(l) {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkFullMachine measures end-to-end simulation speed (simulated
// cycles per wall second is the interesting derived number).
func BenchmarkFullMachine(b *testing.B) {
	wl := MustWorkload("vacation").WithTxPerCPU(10)
	var res *Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Run(benchConfig(), wl)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cycles), "sim-cycles")
}
