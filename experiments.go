package puno

import (
	"context"
	"fmt"

	"repro/internal/area"
	"repro/internal/machine"
	"repro/internal/pdes"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stamp"
)

// Table is an ASCII/CSV-renderable result table.
type Table = report.Table

// Sweep holds the results of running a set of workloads under a set of
// schemes — the input to every figure driver.
type Sweep struct {
	Workloads []*Profile
	Schemes   []Scheme
	// Results[workload name][scheme]
	Results map[string]map[Scheme]*Result
}

// SweepOptions controls how a run matrix is executed.
type SweepOptions struct {
	// Parallel is the number of simulations run concurrently. Zero picks
	// GOMAXPROCS; one forces the classic serial loop. Every run owns its
	// engine and machine, so parallel and serial execution produce
	// bit-identical results.
	Parallel int
	// Progress, when non-nil, is called after each run completes with the
	// number of finished runs and the total (possibly from a pool
	// goroutine; calls are serialized).
	Progress func(done, total int)
}

// RunSpec names one simulation: a fully resolved Config (scheme and seed
// included) and the workload to run under it.
type RunSpec struct {
	Config   Config
	Workload Workload
}

// Arena is one worker's reusable simulation machine: the first run builds
// it, later runs Reset it in place, so a long sweep pays machine
// construction (caches, directory pools, event-queue slabs) once per worker
// instead of once per sweep point. Serial and sharded (PDES) runs keep
// separate arenas, since a caller may mix shardable and fallback specs.
// Results are identical to fresh construction — Machine.Reset and New share
// one code path. An Arena is not safe for concurrent use; long-lived pools
// (punoserve) keep one per worker goroutine, exactly as RunSpecs does.
type Arena struct {
	m  *Machine
	co *pdes.Coordinator
}

// NewArena returns an empty arena; the first Run populates it.
func NewArena() *Arena { return &Arena{} }

// Run executes one spec on the arena and returns a deep copy of the
// result (the machine's internal Result is reused by the next run).
func (a *Arena) Run(sp RunSpec) (*Result, error) {
	var err error
	if pdes.Eligible(sp.Config, sp.Workload) {
		if a.co == nil {
			a.co, err = pdes.New(sp.Config, sp.Workload)
		} else {
			err = a.co.Reset(sp.Config, sp.Workload)
		}
		if err != nil {
			return nil, err
		}
		res, err := a.co.Run()
		if err != nil {
			return nil, err
		}
		return res.Clone(), nil
	}
	if a.m == nil {
		a.m, err = machine.New(sp.Config, sp.Workload)
	} else {
		err = a.m.Reset(sp.Config, sp.Workload)
	}
	if err != nil {
		return nil, err
	}
	res, err := a.m.Run()
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}

// RunSpecs executes the given runs, fanning them across a worker pool per
// opts, and returns the results in spec order. Each worker reuses one
// machine arena across its runs (results are identical to fresh
// construction — Machine.Reset and New share one code path — and
// independent of how specs land on workers). Each failure is wrapped with
// its workload, scheme, and seed, and all failures are collected (not just
// the first). Cancelling ctx abandons not-yet-started runs. Tasks carry
// pprof labels (task index and workload/scheme/seed), so CPU profiles
// taken over a sweep attribute samples per sweep point.
func RunSpecs(ctx context.Context, specs []RunSpec, opts SweepOptions) ([]*Result, error) {
	// A sharded spec occupies Config.Shards goroutines while it runs, so
	// tell the pool the widest task footprint and let it shrink the
	// auto-selected worker count to keep total concurrency near GOMAXPROCS.
	threads := 1
	for _, sp := range specs {
		if pdes.Eligible(sp.Config, sp.Workload) && sp.Config.Shards > threads {
			threads = sp.Config.Shards
		}
	}
	ropts := runner.Options{
		Workers:     opts.Parallel,
		TaskThreads: threads,
		Progress:    opts.Progress,
		Label: func(i int) string {
			sp := specs[i]
			return fmt.Sprintf("%s/%v/seed%d", sp.Workload.Name(), sp.Config.Scheme, sp.Config.Seed)
		},
	}
	return runner.MapWorkers(ctx, len(specs), ropts,
		func(int) *Arena { return NewArena() },
		func(_ context.Context, i int, a *Arena) (*Result, error) {
			sp := specs[i]
			res, err := a.Run(sp)
			if err != nil {
				return nil, fmt.Errorf("%s/%v (seed %d): %w",
					sp.Workload.Name(), sp.Config.Scheme, sp.Config.Seed, err)
			}
			return res, nil
		})
}

// RunSweep executes every workload under every scheme, starting from base
// (whose Scheme field is overridden per run), in parallel across
// GOMAXPROCS workers. Runs are deterministic in base.Seed regardless of
// parallelism. Use RunSweepCtx for cancellation, progress reporting, or an
// explicit worker count.
func RunSweep(base Config, workloads []*Profile, schemes []Scheme) (*Sweep, error) {
	return RunSweepCtx(context.Background(), base, workloads, schemes, SweepOptions{})
}

// RunSweepCtx is RunSweep with cancellation and execution options.
func RunSweepCtx(ctx context.Context, base Config, workloads []*Profile, schemes []Scheme, opts SweepOptions) (*Sweep, error) {
	specs := make([]RunSpec, 0, len(workloads)*len(schemes))
	for _, wl := range workloads {
		for _, sch := range schemes {
			cfg := base
			cfg.Scheme = sch
			specs = append(specs, RunSpec{Config: cfg, Workload: wl})
		}
	}
	results, err := RunSpecs(ctx, specs, opts)
	if err != nil {
		return nil, err
	}
	s := &Sweep{
		Workloads: workloads,
		Schemes:   schemes,
		Results:   make(map[string]map[Scheme]*Result),
	}
	i := 0
	for _, wl := range workloads {
		s.Results[wl.Name()] = make(map[Scheme]*Result, len(schemes))
		for _, sch := range schemes {
			s.Results[wl.Name()][sch] = results[i]
			i++
		}
	}
	return s, nil
}

// Baseline fetches a workload's baseline result (every figure normalizes
// against it). It returns a descriptive error when SchemeBaseline was not
// part of the sweep's scheme set or the workload is unknown.
func (s *Sweep) Baseline(wl string) (*Result, error) {
	r, ok := s.Results[wl][SchemeBaseline]
	if !ok || r == nil {
		return nil, fmt.Errorf("sweep has no %v result for workload %q (schemes run: %v): figures normalize against the baseline, so include SchemeBaseline in the scheme set",
			SchemeBaseline, wl, s.Schemes)
	}
	return r, nil
}

// metricTable renders one normalized-metric figure: a column per scheme,
// a row per workload, plus high-contention and overall means.
func (s *Sweep) metricTable(title string, metric func(*Result) float64) (*Table, error) {
	header := []string{"workload"}
	for _, sch := range s.Schemes {
		header = append(header, sch.String())
	}
	t := report.NewTable(title, header...)
	perScheme := make(map[Scheme][]float64)
	perSchemeHC := make(map[Scheme][]float64)
	for _, wl := range s.Workloads {
		b, err := s.Baseline(wl.Name())
		if err != nil {
			return nil, err
		}
		base := metric(b)
		row := []string{wl.Name()}
		for _, sch := range s.Schemes {
			v := metric(s.Results[wl.Name()][sch])
			norm := 0.0
			if base != 0 {
				norm = v / base
			}
			row = append(row, report.Cell(norm))
			perScheme[sch] = append(perScheme[sch], norm)
			if wl.HighContention() {
				perSchemeHC[sch] = append(perSchemeHC[sch], norm)
			}
		}
		t.AddRow(row...)
	}
	hcRow := []string{"mean(high-cont)"}
	allRow := []string{"mean(all)"}
	for _, sch := range s.Schemes {
		hcRow = append(hcRow, report.Cell(report.Mean(perSchemeHC[sch])))
		allRow = append(allRow, report.Cell(report.Mean(perScheme[sch])))
	}
	t.AddRow(hcRow...)
	t.AddRow(allRow...)
	return t, nil
}

// Table1 reproduces Table I: per-workload baseline abort rates, paper
// versus measured.
func (s *Sweep) Table1() (*Table, error) {
	t := report.NewTable("Table I — benchmark abort rates (baseline)",
		"workload", "paper abort %", "measured abort %", "commits", "aborts")
	for _, wl := range s.Workloads {
		r, err := s.Baseline(wl.Name())
		if err != nil {
			return nil, err
		}
		t.AddRow(wl.Name(),
			fmt.Sprintf("%.1f", 100*wl.PaperAbortRate),
			fmt.Sprintf("%.1f", 100*r.AbortRate()),
			fmt.Sprintf("%d", r.Commits), fmt.Sprintf("%d", r.Aborts))
	}
	return t, nil
}

// Table2 renders the simulated system configuration (the paper's Table II).
func Table2(cfg Config) *Table {
	t := report.NewTable("Table II — system configuration", "unit", "value")
	t.AddRow("Cores", fmt.Sprintf("%d in-order cores, abstract ISA", cfg.Nodes))
	t.AddRow("L1 cache", fmt.Sprintf("%d KB, %d-way, write-back, %d-cycle",
		cfg.L1.SizeBytes/1024, cfg.L1.Ways, cfg.L1HitLatency))
	t.AddRow("L2 cache", fmt.Sprintf("shared banked NUCA, %d-cycle bank latency", cfg.L2HitLatency))
	t.AddRow("Coherence", "MESI directory (blocking, SGI-Origin style), static bank interleave")
	t.AddRow("Memory", fmt.Sprintf("%d-cycle cold-miss latency", cfg.MemLatency))
	t.AddRow("Network", fmt.Sprintf("%dx%d mesh, DOR, %d-stage routers, %d-cycle links",
		cfg.Mesh.Width, cfg.Mesh.Height, cfg.Mesh.RouterStages, cfg.Mesh.LinkCycles))
	t.AddRow("HTM", "eager versioning + eager conflict detection, timestamp policy")
	t.AddRow("PUNO", fmt.Sprintf("%d-entry P-Buffer; %d-entry TxLB", cfg.Nodes, cfg.TxLBEntries))
	return t
}

// Fig2 reproduces Fig. 2: the breakdown of transactional GETX accesses by
// outcome under the baseline, per workload.
func (s *Sweep) Fig2() (*Table, error) {
	t := report.NewTable("Fig. 2 — transactional GETX outcome breakdown (baseline, % of accesses)",
		"workload", "false-aborting", "nack-only", "resolved-aborts", "clean")
	for _, wl := range s.Workloads {
		r, err := s.Baseline(wl.Name())
		if err != nil {
			return nil, err
		}
		total := float64(r.TxGETXAccesses)
		if total == 0 {
			total = 1
		}
		pct := func(o GETXOutcome) string {
			return fmt.Sprintf("%.1f", 100*float64(r.GETXOutcomes[o])/total)
		}
		t.AddRow(wl.Name(), pct(OutcomeFalseAbort), pct(OutcomeNackOnly),
			pct(OutcomeResolvedAborts), pct(OutcomeClean))
	}
	return t, nil
}

// Fig3 reproduces Fig. 3: the distribution of the number of transactions
// aborted unnecessarily per false-aborting request, for one workload.
func (s *Sweep) Fig3(workload string) (string, error) {
	r, err := s.Baseline(workload)
	if err != nil {
		return "", err
	}
	return report.Histogram(
		fmt.Sprintf("Fig. 3 — unnecessary aborts per false-aborting request (%s, baseline)", workload),
		r.FalseAbortHist), nil
}

// Fig3All renders the Fig. 3 distribution for every workload that has
// false-aborting events.
func (s *Sweep) Fig3All() (string, error) {
	out := ""
	for _, wl := range s.Workloads {
		r, err := s.Baseline(wl.Name())
		if err != nil {
			return "", err
		}
		if len(r.FalseAbortHist) > 0 {
			h, err := s.Fig3(wl.Name())
			if err != nil {
				return "", err
			}
			out += h + "\n"
		}
	}
	return out, nil
}

// Fig10 reproduces Fig. 10: transaction aborts normalized to the baseline.
func (s *Sweep) Fig10() (*Table, error) {
	return s.metricTable("Fig. 10 — normalized transaction aborts",
		func(r *Result) float64 { return float64(r.Aborts) })
}

// Fig11 reproduces Fig. 11: on-chip network traffic (router traversals by
// flits) normalized to the baseline.
func (s *Sweep) Fig11() (*Table, error) {
	return s.metricTable("Fig. 11 — normalized network traffic (router traversals)",
		func(r *Result) float64 { return float64(r.Net.TotalTraversals()) })
}

// Fig12 reproduces Fig. 12: the average cycles a directory entry spends
// blocked per transactional GETX service, normalized to the baseline.
func (s *Sweep) Fig12() (*Table, error) {
	return s.metricTable("Fig. 12 — normalized directory blocking per TxGETX service",
		func(r *Result) float64 { return r.DirBlockingPerTxGETX() })
}

// Fig13 reproduces Fig. 13: execution time normalized to the baseline.
func (s *Sweep) Fig13() (*Table, error) {
	return s.metricTable("Fig. 13 — normalized execution time",
		func(r *Result) float64 { return float64(r.Cycles) })
}

// Fig14 reproduces Fig. 14: the good/discarded transaction cycle ratio,
// normalized to the baseline (larger is better).
func (s *Sweep) Fig14() (*Table, error) {
	return s.metricTable("Fig. 14 — normalized G/D ratio (larger is better)",
		func(r *Result) float64 { return r.GDRatio() })
}

// Table3 reproduces Table III: PUNO's VLSI area and power overhead.
func Table3(nodes int) string {
	r := area.BuildReport(area.PUNOStructures(nodes), area.Tech65nm(), area.Rock())
	return "== Table III — area and power overhead ==\n" + r.String()
}

// SummaryStats extracts the headline claims the paper's abstract makes, for
// EXPERIMENTS.md: abort reduction and traffic reduction of PUNO vs baseline
// in the high-contention set, and execution-time improvement.
type SummaryStats struct {
	AbortReductionHC    float64 // 1 - normalized aborts, mean over high contention
	TrafficReductionHC  float64
	SpeedupHC           float64 // 1 - normalized execution time
	AbortReductionAll   float64
	TrafficReductionAll float64
	SpeedupAll          float64
}

// Summary computes the headline statistics for PUNO.
func (s *Sweep) Summary() (SummaryStats, error) {
	var st SummaryStats
	var hcN, allN float64
	for _, wl := range s.Workloads {
		base, err := s.Baseline(wl.Name())
		if err != nil {
			return SummaryStats{}, err
		}
		p, ok := s.Results[wl.Name()][SchemePUNO]
		if !ok {
			continue
		}
		na := ratio(float64(p.Aborts), float64(base.Aborts))
		nt := ratio(float64(p.Net.TotalTraversals()), float64(base.Net.TotalTraversals()))
		nc := ratio(float64(p.Cycles), float64(base.Cycles))
		st.AbortReductionAll += 1 - na
		st.TrafficReductionAll += 1 - nt
		st.SpeedupAll += 1 - nc
		allN++
		if wl.HighContention() {
			st.AbortReductionHC += 1 - na
			st.TrafficReductionHC += 1 - nt
			st.SpeedupHC += 1 - nc
			hcN++
		}
	}
	if hcN > 0 {
		st.AbortReductionHC /= hcN
		st.TrafficReductionHC /= hcN
		st.SpeedupHC /= hcN
	}
	if allN > 0 {
		st.AbortReductionAll /= allN
		st.TrafficReductionAll /= allN
		st.SpeedupAll /= allN
	}
	return st, nil
}

func ratio(v, base float64) float64 {
	if base == 0 {
		return 1
	}
	return v / base
}

// SortedWorkloadNames lists the sweep's workloads in Table I order.
func (s *Sweep) SortedWorkloadNames() []string {
	names := make([]string, 0, len(s.Workloads))
	for _, wl := range s.Workloads {
		names = append(names, wl.Name())
	}
	return names
}

// ScaledWorkloads returns the standard suite with each profile's
// transaction count multiplied by f (benchmark scaling; f<1 shrinks runs
// for -short tests).
func ScaledWorkloads(f float64) []*Profile {
	out := stamp.All()
	for i, p := range out {
		n := int(float64(p.TxPerCPU())*f + 0.5)
		if n < 2 {
			n = 2
		}
		out[i] = p.WithTxPerCPU(n)
	}
	return out
}
