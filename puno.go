// Package puno is a library-level reproduction of "Mitigating the Mismatch
// between the Coherence Protocol and Conflict Detection in Hardware
// Transactional Memory" (Zhao, Chen, Draper — IPDPS 2014).
//
// It bundles a deterministic cycle-level chip-multiprocessor model — MESI
// directory coherence over a 4x4 mesh, a log-based eager HTM, and four
// contention-management schemes (Baseline, randomized Backoff, RMW-Pred,
// and the paper's PUNO: predictive unicast + notification) — together with
// synthetic workloads calibrated to the eight STAMP benchmarks and
// experiment drivers that regenerate every table and figure in the paper's
// evaluation.
//
// Quick start:
//
//	res, err := puno.Run(puno.DefaultConfig(), puno.MustWorkload("intruder"))
//	fmt.Println(res.Aborts, res.AbortRate())
//
// Compare schemes on one workload:
//
//	for _, s := range puno.Schemes() {
//		cfg := puno.DefaultConfig()
//		cfg.Scheme = s
//		res, _ := puno.Run(cfg, puno.MustWorkload("labyrinth"))
//		fmt.Printf("%v: %d aborts\n", s, res.Aborts)
//	}
//
// Custom workloads implement the Workload interface (or use
// stamp-style Profiles); see examples/ for runnable programs.
package puno

import (
	"io"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/pdes"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/trace"
)

// Re-exported model types. The aliases give library users one import path
// while the implementation stays modular internally.
type (
	// Config describes a simulated machine (Table II parameters plus
	// scheme selection and experiment knobs).
	Config = machine.Config
	// Scheme selects the contention-management configuration.
	Scheme = machine.Scheme
	// Result carries every measurement a run produces.
	Result = machine.Result
	// Workload supplies one transactional program per node.
	Workload = machine.Workload
	// Program yields the transaction stream of one hardware thread.
	Program = machine.Program
	// ProgramFunc adapts a function to the Program interface.
	ProgramFunc = machine.ProgramFunc
	// TxInstance is one dynamic transaction: static id + operations.
	TxInstance = machine.TxInstance
	// Op is one transactional operation (read, write, increment, compute).
	Op = machine.Op
	// OpKind discriminates Op variants.
	OpKind = machine.OpKind
	// Machine is a fully wired simulator instance.
	Machine = machine.Machine
	// GETXOutcome classifies transactional write requests (Fig. 2).
	GETXOutcome = machine.GETXOutcome
	// Sample is one Result.Timeline entry (per-interval dynamics).
	Sample = machine.Sample
	// Profile is a parameterized synthetic STAMP-style workload.
	Profile = stamp.Profile
	// Class is one static-transaction recipe inside a Profile.
	Class = stamp.Class
	// Time is a simulation timestamp in clock cycles.
	Time = sim.Time
	// RNG is the deterministic random source handed to Programs.
	RNG = sim.RNG
	// Addr is a simulated physical (word-aligned) address.
	Addr = mem.Addr
	// Line is a cache-line-aligned address.
	Line = mem.Line
)

// LineBytes is the cache-line size of the simulated machine (64 bytes).
const LineBytes = mem.LineBytes

// LineAddr returns the line-aligned address of the i'th cache line above
// base — a convenience for laying out shared structures one object per
// line, which is how the workloads avoid false sharing.
func LineAddr(base uint64, i int) Addr {
	return Addr(base + uint64(i)*mem.LineBytes)
}

// Scheme values.
const (
	SchemeBaseline    = machine.SchemeBaseline
	SchemeBackoff     = machine.SchemeBackoff
	SchemeRMWPred     = machine.SchemeRMWPred
	SchemePUNO        = machine.SchemePUNO
	SchemeUnicastOnly = machine.SchemeUnicastOnly
	SchemeNotifyOnly  = machine.SchemeNotifyOnly
	SchemeATS         = machine.SchemeATS
	SchemePUNOPush    = machine.SchemePUNOPush
)

// Op kinds.
const (
	OpRead    = machine.OpRead
	OpWrite   = machine.OpWrite
	OpIncr    = machine.OpIncr
	OpCompute = machine.OpCompute
)

// GETX outcomes (Fig. 2 taxonomy).
const (
	OutcomeClean          = machine.OutcomeClean
	OutcomeResolvedAborts = machine.OutcomeResolvedAborts
	OutcomeNackOnly       = machine.OutcomeNackOnly
	OutcomeFalseAbort     = machine.OutcomeFalseAbort
)

// DefaultConfig returns the paper's Table II system: 16 nodes on a 4x4
// mesh, 32KB/4-way L1s, 20-cycle L2, 200-cycle memory, MESI directory
// protocol, baseline contention management.
func DefaultConfig() Config { return machine.DefaultConfig() }

// Schemes returns the four configurations compared throughout the paper's
// figures, in presentation order.
func Schemes() []Scheme { return machine.Schemes() }

// NewMachine builds a simulator for cfg and wl without running it (for
// callers that want to preload memory or inspect state mid-run).
func NewMachine(cfg Config, wl Workload) (*Machine, error) { return machine.New(cfg, wl) }

// Run builds and runs a machine to completion. When cfg.Shards > 1 and the
// configuration is shardable, the run executes under the conservative PDES
// coordinator (internal/pdes) — several worker goroutines, bit-identical
// results; otherwise it falls back to the serial path.
func Run(cfg Config, wl Workload) (*Result, error) {
	if pdes.Eligible(cfg, wl) {
		co, err := pdes.New(cfg, wl)
		if err != nil {
			return nil, err
		}
		return co.Run()
	}
	m, err := machine.New(cfg, wl)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// SchemeByName resolves a case-insensitive scheme name ("Baseline",
// "Backoff", "RMW-Pred", "PUNO", …) to its Scheme value.
func SchemeByName(name string) (Scheme, error) { return machine.SchemeByName(name) }

// EncodeResult renders r in the deterministic punores/1 binary format —
// the artifact the content-addressed result cache (internal/serve) stores.
// Encoding is canonical: byte equality of encodings is value equality of
// Results.
func EncodeResult(r *Result) ([]byte, error) { return machine.EncodeResult(r) }

// DecodeResult decodes a punores/1 artifact, rejecting truncation and
// corruption via the trailing checksum.
func DecodeResult(raw []byte) (*Result, error) { return machine.DecodeResult(raw) }

// Workloads returns the eight STAMP-profile workloads in Table I order.
func Workloads() []*Profile { return stamp.All() }

// HighContentionWorkloads returns the paper's high-contention subset
// (bayes, intruder, labyrinth, yada).
func HighContentionWorkloads() []*Profile { return stamp.HighContention() }

// WorkloadByName returns the named STAMP profile.
func WorkloadByName(name string) (*Profile, error) { return stamp.ByName(name) }

// MustWorkload is WorkloadByName that panics on unknown names (for
// examples and tests).
func MustWorkload(name string) *Profile {
	p, err := stamp.ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// NewProfile builds a custom synthetic workload from transaction classes;
// see the Class fields for the available knobs.
func NewProfile(name string, high bool, txPerCPU int, classes ...Class) *Profile {
	return stamp.NewProfile(name, high, txPerCPU, 0, classes...)
}

// Trace is a fully materialized, replayable workload (see RecordTrace).
type Trace = trace.Trace

// RecordTrace materializes wl's per-node transaction streams for a
// machine of `nodes` nodes seeded with seed. The trace replays exactly
// the streams a live run with that seed would execute, can be saved with
// its Save method and reloaded with LoadTrace, and implements Workload.
func RecordTrace(wl Workload, nodes int, seed uint64) *Trace {
	return trace.Record(wl, nodes, seed)
}

// LoadTrace reads a trace written by Trace.Save.
func LoadTrace(r io.Reader) (*Trace, error) { return trace.Load(r) }

// Event-level observability: every coherence message, transaction
// lifecycle edge, detected conflict, and directory forwarding decision a
// run produces, recorded through Config.EventSink and compared with a
// first-divergence differ. See cmd/punotrace's events/diff subcommands
// for the CLI surface.
type (
	// Event is one recorded simulation event (see the Kind constants in
	// internal/probe for the vocabulary).
	Event = probe.Event
	// EventSink is the hook type Config.EventSink accepts.
	EventSink = probe.Sink
	// EventBuffer is the standard in-memory EventSink, reusable across
	// runs via Reset.
	EventBuffer = probe.Buffer
	// EventTrace is one run's recorded event stream plus the metadata to
	// render and compare it.
	EventTrace = trace.EventTrace
	// Divergence locates the first disagreement between two event streams.
	Divergence = trace.Divergence
	// PrefixChecker verifies a live run against a recorded event stream as
	// it happens (replay-from-prefix).
	PrefixChecker = trace.PrefixChecker
)

// CaptureEvents runs wl under cfg with an event sink installed and returns
// the run's measurements together with its full event trace.
func CaptureEvents(cfg Config, wl Workload) (*Result, *EventTrace, error) {
	return trace.CaptureEvents(cfg, wl)
}

// LoadEventTrace reads a binary event trace written by EventTrace.Save.
func LoadEventTrace(r io.Reader) (*EventTrace, error) { return trace.LoadEvents(r) }

// FirstDivergence compares two event traces and returns the first event
// where they disagree (ok=false when the streams are identical).
func FirstDivergence(a, b *EventTrace) (d Divergence, ok bool) {
	return trace.FirstDivergence(a, b)
}

// FormatDivergence renders a divergence as a one-line diagnosis.
func FormatDivergence(a, b *EventTrace, d Divergence) string {
	return trace.FormatDivergence(a, b, d)
}

// NewPrefixChecker returns an EventSink expecting the given recorded
// stream; install it via Config.EventSink and query Diverged after Run.
func NewPrefixChecker(ref []Event) *PrefixChecker { return trace.NewPrefixChecker(ref) }
