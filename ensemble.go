package puno

import (
	"context"
	"fmt"
	"math"

	"repro/internal/report"
)

// Ensemble holds one sweep repeated over several seeds, so figures can
// report a mean and a confidence band instead of a single sample. Each
// (workload, scheme) cell holds one Result per seed, in Seeds order.
type Ensemble struct {
	Workloads []*Profile
	Schemes   []Scheme
	Seeds     []uint64
	// Runs[workload name][scheme][seed index]
	Runs map[string]map[Scheme][]*Result
}

// RunEnsemble executes the (workload, scheme, seed) run matrix, fanning all
// runs across one worker pool per opts. base.Seed is ignored; each run's
// seed comes from seeds. Results are deterministic regardless of
// parallelism.
func RunEnsemble(ctx context.Context, base Config, workloads []*Profile, schemes []Scheme, seeds []uint64, opts SweepOptions) (*Ensemble, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("puno: RunEnsemble needs at least one seed")
	}
	specs := make([]RunSpec, 0, len(workloads)*len(schemes)*len(seeds))
	for _, wl := range workloads {
		for _, sch := range schemes {
			for _, seed := range seeds {
				cfg := base
				cfg.Scheme = sch
				cfg.Seed = seed
				specs = append(specs, RunSpec{Config: cfg, Workload: wl})
			}
		}
	}
	results, err := RunSpecs(ctx, specs, opts)
	if err != nil {
		return nil, err
	}
	e := &Ensemble{
		Workloads: workloads,
		Schemes:   schemes,
		Seeds:     seeds,
		Runs:      make(map[string]map[Scheme][]*Result),
	}
	i := 0
	for _, wl := range workloads {
		e.Runs[wl.Name()] = make(map[Scheme][]*Result, len(schemes))
		for _, sch := range schemes {
			e.Runs[wl.Name()][sch] = results[i : i+len(seeds)]
			i += len(seeds)
		}
	}
	return e, nil
}

// Stat is a mean and sample standard deviation over an ensemble's seeds.
type Stat struct {
	Mean   float64
	Stddev float64
	N      int
}

// String renders the stat the way ensemble tables print cells.
func (s Stat) String() string { return fmt.Sprintf("%.3f±%.3f", s.Mean, s.Stddev) }

func statOf(vals []float64) Stat {
	st := Stat{N: len(vals), Mean: report.Mean(vals)}
	if len(vals) > 1 {
		var ss float64
		for _, v := range vals {
			d := v - st.Mean
			ss += d * d
		}
		st.Stddev = math.Sqrt(ss / float64(len(vals)-1))
	}
	return st
}

// Metric aggregates metric over the cell's seeds.
func (e *Ensemble) Metric(wl string, sch Scheme, metric func(*Result) float64) (Stat, error) {
	runs, ok := e.Runs[wl][sch]
	if !ok {
		return Stat{}, fmt.Errorf("ensemble has no %v results for workload %q", sch, wl)
	}
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = metric(r)
	}
	return statOf(vals), nil
}

// NormalizedMetric aggregates metric normalized, seed by seed, against the
// same seed's baseline run — the ensemble version of every figure's
// normalization. It fails with a descriptive error when SchemeBaseline was
// not in the scheme set.
func (e *Ensemble) NormalizedMetric(wl string, sch Scheme, metric func(*Result) float64) (Stat, error) {
	runs, ok := e.Runs[wl][sch]
	if !ok {
		return Stat{}, fmt.Errorf("ensemble has no %v results for workload %q", sch, wl)
	}
	bases, ok := e.Runs[wl][SchemeBaseline]
	if !ok {
		return Stat{}, fmt.Errorf("ensemble has no %v results for workload %q (schemes run: %v): normalized metrics need the baseline in the scheme set",
			SchemeBaseline, wl, e.Schemes)
	}
	vals := make([]float64, len(runs))
	for i, r := range runs {
		if b := metric(bases[i]); b != 0 {
			vals[i] = metric(r) / b
		}
	}
	return statOf(vals), nil
}

// MetricTable renders a normalized-metric figure with mean±stddev cells: a
// column per scheme, a row per workload, plus high-contention and overall
// mean rows (means of the per-workload means).
func (e *Ensemble) MetricTable(title string, metric func(*Result) float64) (*Table, error) {
	header := []string{"workload"}
	for _, sch := range e.Schemes {
		header = append(header, sch.String())
	}
	t := report.NewTable(fmt.Sprintf("%s (mean±stddev over %d seeds)", title, len(e.Seeds)), header...)
	perScheme := make(map[Scheme][]float64)
	perSchemeHC := make(map[Scheme][]float64)
	for _, wl := range e.Workloads {
		row := []string{wl.Name()}
		for _, sch := range e.Schemes {
			st, err := e.NormalizedMetric(wl.Name(), sch, metric)
			if err != nil {
				return nil, err
			}
			row = append(row, st.String())
			perScheme[sch] = append(perScheme[sch], st.Mean)
			if wl.HighContention() {
				perSchemeHC[sch] = append(perSchemeHC[sch], st.Mean)
			}
		}
		t.AddRow(row...)
	}
	hcRow := []string{"mean(high-cont)"}
	allRow := []string{"mean(all)"}
	for _, sch := range e.Schemes {
		hcRow = append(hcRow, report.Cell(report.Mean(perSchemeHC[sch])))
		allRow = append(allRow, report.Cell(report.Mean(perScheme[sch])))
	}
	t.AddRow(hcRow...)
	t.AddRow(allRow...)
	return t, nil
}

// SeedSweep extracts the single-seed Sweep view of seed index i, giving
// access to every per-figure driver for that seed.
func (e *Ensemble) SeedSweep(i int) (*Sweep, error) {
	if i < 0 || i >= len(e.Seeds) {
		return nil, fmt.Errorf("ensemble has %d seeds, no index %d", len(e.Seeds), i)
	}
	s := &Sweep{
		Workloads: e.Workloads,
		Schemes:   e.Schemes,
		Results:   make(map[string]map[Scheme]*Result),
	}
	for _, wl := range e.Workloads {
		s.Results[wl.Name()] = make(map[Scheme]*Result, len(e.Schemes))
		for _, sch := range e.Schemes {
			s.Results[wl.Name()][sch] = e.Runs[wl.Name()][sch][i]
		}
	}
	return s, nil
}
