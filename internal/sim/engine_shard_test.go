package sim

import "testing"

// wordRecorder is a minimal Handler that records the payload words it runs.
type wordRecorder struct{ fired []uint64 }

func (h *wordRecorder) OnEvent(arg any, word uint64) { h.fired = append(h.fired, word) }

func TestPeekSeqStep(t *testing.T) {
	e := NewEngine()
	h := &wordRecorder{}
	if _, _, ok := e.Peek(); ok {
		t.Fatal("Peek on an empty engine reported an event")
	}
	if got := e.Seq(); got != 0 {
		t.Fatalf("fresh engine Seq() = %d, want 0", got)
	}
	e.AtEvent(10, h, nil, 1) // seq 0
	e.AtEvent(5, h, nil, 2)  // seq 1
	if got := e.Seq(); got != 2 {
		t.Fatalf("Seq() after two schedules = %d, want 2", got)
	}
	at, seq, ok := e.Peek()
	if !ok || at != 5 || seq != 1 {
		t.Fatalf("Peek = (%d, %d, %v), want (5, 1, true)", at, seq, ok)
	}
	// Peek must not pop.
	if at2, seq2, ok2 := e.Peek(); !ok2 || at2 != at || seq2 != seq {
		t.Fatalf("second Peek = (%d, %d, %v), want same (%d, %d, true)", at2, seq2, ok2, at, seq)
	}
	if !e.Step() {
		t.Fatal("Step with pending events returned false")
	}
	if e.Now() != 5 {
		t.Fatalf("clock after first Step = %d, want 5", e.Now())
	}
	if at, seq, ok = e.Peek(); !ok || at != 10 || seq != 0 {
		t.Fatalf("Peek after Step = (%d, %d, %v), want (10, 0, true)", at, seq, ok)
	}
	if !e.Step() {
		t.Fatal("Step with one pending event returned false")
	}
	if e.Step() {
		t.Fatal("Step on a drained engine returned true")
	}
	if want := []uint64{2, 1}; len(h.fired) != 2 || h.fired[0] != want[0] || h.fired[1] != want[1] {
		t.Fatalf("fired order %v, want %v", h.fired, want)
	}
	e.AtEvent(20, h, nil, 3)
	e.Stop()
	if _, _, ok := e.Peek(); ok {
		t.Fatal("Peek on a stopped engine reported an event")
	}
	if e.Step() {
		t.Fatal("Step on a stopped engine returned true")
	}
}

// TestSetSeqOrdersSameCycleChain drives every chainInsert branch: fresh
// bucket, in-order tail append, head insertion, and the positional walk a
// backwards SetSeq (the sharded commit replay) requires.
func TestSetSeqOrdersSameCycleChain(t *testing.T) {
	e := NewEngine()
	h := &wordRecorder{}
	e.SetSeq(10)
	e.AtEvent(7, h, nil, 10) // seq 10: fresh bucket
	e.AtEvent(7, h, nil, 11) // seq 11: tail append
	e.SetSeq(1)
	e.AtEvent(7, h, nil, 1) // seq 1: insert at head
	e.SetSeq(5)
	e.AtEvent(7, h, nil, 5) // seq 5: positional walk into the middle
	e.Run(Infinity)
	want := []uint64{1, 5, 10, 11}
	if len(h.fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(h.fired), len(want))
	}
	for i := range want {
		if h.fired[i] != want[i] {
			t.Fatalf("fired order %v, want %v (SetSeq did not reorder the chain)", h.fired, want)
		}
	}
}

func TestRekeyWheel(t *testing.T) {
	e := NewEngine()
	h := &wordRecorder{}
	a := e.AtEvent(7, h, nil, 1) // seq 0
	b := e.AtEvent(7, h, nil, 2) // seq 1
	if !e.Rekey(a, 10) {
		t.Fatal("Rekey of a live wheel event failed")
	}
	if !e.Rekey(b, 1) {
		t.Fatal("Rekey to the event's current seq should be a true no-op")
	}
	if e.Rekey(EventID{}, 3) {
		t.Fatal("Rekey of the zero EventID succeeded")
	}
	if e.Rekey(EventID{slot: 1 << 20, gen: 1}, 3) {
		t.Fatal("Rekey of an out-of-range slot succeeded")
	}
	e.Run(Infinity)
	if want := []uint64{2, 1}; len(h.fired) != 2 || h.fired[0] != want[0] || h.fired[1] != want[1] {
		t.Fatalf("fired order %v, want %v (Rekey did not reorder)", h.fired, want)
	}
	if e.Rekey(a, 20) {
		t.Fatal("Rekey of an already-fired event succeeded")
	}
}

func TestRekeyHeap(t *testing.T) {
	// The smallest wheel window forces far-future events onto the overflow
	// heap.
	e := NewEngineWindow(64)
	h := &wordRecorder{}
	a := e.AtEvent(1000, h, nil, 1) // seq 0, heap
	b := e.AtEvent(1000, h, nil, 2) // seq 1, heap
	if !e.Rekey(a, 10) {
		t.Fatal("Rekey of a live heap event failed")
	}
	if !e.Rekey(b, 3) {
		t.Fatal("Rekey of a live heap event failed")
	}
	e.Run(Infinity)
	if want := []uint64{2, 1}; len(h.fired) != 2 || h.fired[0] != want[0] || h.fired[1] != want[1] {
		t.Fatalf("fired order %v, want %v (heap Rekey did not reorder)", h.fired, want)
	}
}

func TestStepBefore(t *testing.T) {
	e := NewEngine()
	h := &wordRecorder{}
	if at, seq, ran := e.StepBefore(100); ran || at != Infinity || seq != 0 {
		t.Fatalf("StepBefore on empty engine = (%d, %d, %v), want (Infinity, 0, false)", at, seq, ran)
	}
	e.AtEvent(5, h, nil, 1)  // seq 0
	e.AtEvent(10, h, nil, 2) // seq 1
	at, seq, ran := e.StepBefore(6)
	if !ran || at != 5 || seq != 0 {
		t.Fatalf("StepBefore(6) = (%d, %d, %v), want (5, 0, true)", at, seq, ran)
	}
	if e.Now() != 5 {
		t.Fatalf("clock after StepBefore = %d, want 5", e.Now())
	}
	// Next event is at the limit: must not run, must report its key.
	at, seq, ran = e.StepBefore(10)
	if ran || at != 10 || seq != 1 {
		t.Fatalf("StepBefore(10) = (%d, %d, %v), want (10, 1, false)", at, seq, ran)
	}
	if len(h.fired) != 1 {
		t.Fatalf("StepBefore at the limit ran the event (fired %v)", h.fired)
	}
	if at, seq, ran = e.StepBefore(11); !ran || at != 10 || seq != 1 {
		t.Fatalf("StepBefore(11) = (%d, %d, %v), want (10, 1, true)", at, seq, ran)
	}
	e.AtEvent(20, h, nil, 3)
	e.Stop()
	if at, _, ran := e.StepBefore(Infinity); ran || at != Infinity {
		t.Fatalf("StepBefore on stopped engine = (%d, _, %v), want (Infinity, false)", at, ran)
	}
}

// TestRekeyBucketAndOverflow bulk-renumbers provisional events sitting in
// a wheel bucket and in the overflow heap, then certifies the new seqs are
// real: fresh events scheduled between the mapped values (via SetSeq)
// interleave exactly where the renumbering put them.
func TestRekeyBucketAndOverflow(t *testing.T) {
	const base = uint64(1) << 62
	e := NewEngineWindow(64)
	h := &wordRecorder{}
	e.SetSeq(5)
	e.AtEvent(7, h, nil, 100) // serial seq 5, below base: must be untouched
	e.SetSeq(base)
	e.AtEvent(7, h, nil, 101)    // base+0, wheel
	e.AtEvent(7, h, nil, 102)    // base+1, wheel (same bucket chain)
	e.AtEvent(1000, h, nil, 103) // base+2, overflow heap
	e.AtEvent(1000, h, nil, 104) // base+3, overflow heap
	renum := []uint64{10, 20, 30, 40}
	e.RekeyBucket(7, base, renum)
	e.RekeyOverflow(base, renum)
	// Events inserted after the bulk passes, keyed between the mapped seqs:
	// chainInsert's positional walk and the heap's sift must slot them in.
	e.SetSeq(15)
	e.AtEvent(7, h, nil, 105) // between the rekeyed 10 and 20
	e.SetSeq(35)
	e.AtEvent(1000, h, nil, 106) // between the rekeyed 30 and 40
	e.Run(Infinity)
	want := []uint64{100, 101, 105, 102, 103, 106, 104}
	if len(h.fired) != len(want) {
		t.Fatalf("fired %d events, want %d (%v)", len(h.fired), len(want), h.fired)
	}
	for i := range want {
		if h.fired[i] != want[i] {
			t.Fatalf("fired order %v, want %v (bulk rekey misordered)", h.fired, want)
		}
	}
}

// TestRekeyBucketHorizonGuard pins the horizon check: a cycle at or beyond
// the wheel window aliases onto some bucket's slot, and rekeying it must
// not touch the in-horizon events living there.
func TestRekeyBucketHorizonGuard(t *testing.T) {
	const base = uint64(1) << 62
	e := NewEngineWindow(64)
	h := &wordRecorder{}
	e.SetSeq(base)
	e.AtEvent(7, h, nil, 1) // provisional, in the cycle-7 bucket
	// Cycle 71 shares the bucket slot (71 mod 64 = 7) but sits outside the
	// horizon: the guard must refuse, leaving the cycle-7 event provisional.
	e.RekeyBucket(71, base, []uint64{5})
	e.SetSeq(6)
	e.AtEvent(7, h, nil, 2) // serial 6: sorts before any provisional
	e.Run(Infinity)
	if want := []uint64{2, 1}; len(h.fired) != 2 || h.fired[0] != want[0] || h.fired[1] != want[1] {
		t.Fatalf("fired order %v, want %v (out-of-horizon RekeyBucket touched the aliased bucket)", h.fired, want)
	}
}

// TestRekeyAcrossHorizonBoundary pins the cross-level FIFO tie-break under
// rekeying: an event parked in the overflow heap long ago shares its cycle
// with a wheel event scheduled once the cycle came inside the horizon, and
// the winner must follow the rekeyed seqs, whichever level holds them.
func TestRekeyAcrossHorizonBoundary(t *testing.T) {
	e := NewEngineWindow(64)
	h := &wordRecorder{}
	heapEv := e.AtEvent(100, h, nil, 1) // seq 0: beyond the horizon, heap
	e.AtEvent(50, h, nil, 2)            // seq 1: wheel
	e.Step()                            // run the wheel event; now = 50, 100 is inside the horizon
	e.AtEvent(100, h, nil, 3)           // seq 2: same cycle as the heap resident, lands in the wheel
	// Rekey the heap resident after the same-cycle wheel event: the
	// cross-level (at, seq) comparison in nextEvent must now pick the wheel
	// side first.
	if !e.Rekey(heapEv, 10) {
		t.Fatal("Rekey of the heap resident failed")
	}
	e.Run(Infinity)
	if want := []uint64{2, 3, 1}; len(h.fired) != 3 || h.fired[0] != want[0] ||
		h.fired[1] != want[1] || h.fired[2] != want[2] {
		t.Fatalf("fired order %v, want %v (horizon-boundary rekey misordered)", h.fired, want)
	}
}

// TestCancelAfterRekey certifies EventID generation safety around rekeying:
// rekeying (per-event or bulk) must not invalidate a held id, and a fired
// slot's recycled tenant must stay safe from the stale id.
func TestCancelAfterRekey(t *testing.T) {
	const base = uint64(1) << 62
	e := NewEngine()
	h := &wordRecorder{}
	e.SetSeq(base)
	a := e.AtEvent(9, h, nil, 1)
	b := e.AtEvent(9, h, nil, 2)
	if !e.Rekey(a, base+100) {
		t.Fatal("Rekey of a live event failed")
	}
	if !e.Cancel(a) {
		t.Fatal("Cancel after Rekey failed: rekeying must not touch the generation")
	}
	e.RekeyBucket(9, base, []uint64{0, 7})
	if !e.Cancel(b) {
		t.Fatal("Cancel after RekeyBucket failed: the bulk pass must not touch generations")
	}
	// Recycle a's slot for a new event; the stale id must not cancel it.
	c := e.AtEvent(12, h, nil, 3)
	if e.Cancel(a) {
		t.Fatal("stale EventID cancelled a recycled slot's new tenant")
	}
	if !e.Cancel(c) {
		t.Fatal("Cancel of the recycled slot's live tenant failed")
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending = %d after cancelling everything, want 0", got)
	}
}

// funcHandler adapts a closure to Handler for tests that need side effects.
type funcHandler struct{ f func(word uint64) }

func (h *funcHandler) OnEvent(arg any, word uint64) { h.f(word) }

// TestDrainBefore drives the windowed drain the PDES coordinator's untraced
// path runs: only effectful events (a schedule or an external-counter bump)
// may append entries, keys carry the provisional flag exactly when the
// event's seq sits at or above the renumbering base, and the returned time
// is the first undrained event's (Infinity once the queue empties).
func TestDrainBefore(t *testing.T) {
	const base = uint64(1) << 62
	const flag = uint32(1) << 31
	e := NewEngine()
	var ext int32
	quiet := &wordRecorder{}
	sched2 := &funcHandler{f: func(uint64) { e.AtEvent(7, quiet, nil, 0) }}
	sched := &funcHandler{f: func(uint64) { e.AtEvent(5, sched2, nil, 0) }}
	sender := &funcHandler{f: func(uint64) { ext++ }}

	e.AtEvent(1, quiet, nil, 0)  // seq 0: no effect, no entry
	e.AtEvent(2, sched, nil, 0)  // seq 1: schedules -> entry, serial key
	e.AtEvent(3, sender, nil, 0) // seq 2: bumps ext -> entry
	e.AtEvent(9, quiet, nil, 0)  // seq 3: at the window edge, not drained
	e.SetSeq(base)

	log, next := e.DrainBefore(9, base, flag, nil, &ext)
	if next != 9 {
		t.Fatalf("next = %d, want the undrained event's time 9", next)
	}
	if ext != 1 {
		t.Fatalf("ext = %d, want 1", ext)
	}
	want := []DrainEntry{
		{At: 2, Key: 1, SeqHi: 1, Send: 0},        // scheduled the cycle-5 child (prov seq base+0)
		{At: 3, Key: 2, SeqHi: 1, Send: 1},        // ext bump only, seq untouched
		{At: 5, Key: 0 | flag, SeqHi: 2, Send: 1}, // provisional event, schedules cycle-7 child
	}
	if len(log) != len(want) {
		t.Fatalf("log has %d entries, want %d: %+v", len(log), len(want), log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, log[i], want[i])
		}
	}

	log2, next2 := e.DrainBefore(100, base, flag, log[:0], &ext)
	if next2 != Infinity {
		t.Fatalf("next after draining everything = %d, want Infinity", next2)
	}
	if len(log2) != 0 {
		t.Fatalf("quiet tail produced entries: %+v", log2)
	}

	e.AtEvent(50, quiet, nil, 0)
	e.Stop()
	if log3, next3 := e.DrainBefore(100, base, flag, nil, &ext); len(log3) != 0 || next3 != Infinity {
		t.Fatalf("stopped engine drained: %d entries, next %d", len(log3), next3)
	}
}
