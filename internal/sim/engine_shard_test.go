package sim

import "testing"

// wordRecorder is a minimal Handler that records the payload words it runs.
type wordRecorder struct{ fired []uint64 }

func (h *wordRecorder) OnEvent(arg any, word uint64) { h.fired = append(h.fired, word) }

func TestPeekSeqStep(t *testing.T) {
	e := NewEngine()
	h := &wordRecorder{}
	if _, _, ok := e.Peek(); ok {
		t.Fatal("Peek on an empty engine reported an event")
	}
	if got := e.Seq(); got != 0 {
		t.Fatalf("fresh engine Seq() = %d, want 0", got)
	}
	e.AtEvent(10, h, nil, 1) // seq 0
	e.AtEvent(5, h, nil, 2)  // seq 1
	if got := e.Seq(); got != 2 {
		t.Fatalf("Seq() after two schedules = %d, want 2", got)
	}
	at, seq, ok := e.Peek()
	if !ok || at != 5 || seq != 1 {
		t.Fatalf("Peek = (%d, %d, %v), want (5, 1, true)", at, seq, ok)
	}
	// Peek must not pop.
	if at2, seq2, ok2 := e.Peek(); !ok2 || at2 != at || seq2 != seq {
		t.Fatalf("second Peek = (%d, %d, %v), want same (%d, %d, true)", at2, seq2, ok2, at, seq)
	}
	if !e.Step() {
		t.Fatal("Step with pending events returned false")
	}
	if e.Now() != 5 {
		t.Fatalf("clock after first Step = %d, want 5", e.Now())
	}
	if at, seq, ok = e.Peek(); !ok || at != 10 || seq != 0 {
		t.Fatalf("Peek after Step = (%d, %d, %v), want (10, 0, true)", at, seq, ok)
	}
	if !e.Step() {
		t.Fatal("Step with one pending event returned false")
	}
	if e.Step() {
		t.Fatal("Step on a drained engine returned true")
	}
	if want := []uint64{2, 1}; len(h.fired) != 2 || h.fired[0] != want[0] || h.fired[1] != want[1] {
		t.Fatalf("fired order %v, want %v", h.fired, want)
	}
	e.AtEvent(20, h, nil, 3)
	e.Stop()
	if _, _, ok := e.Peek(); ok {
		t.Fatal("Peek on a stopped engine reported an event")
	}
	if e.Step() {
		t.Fatal("Step on a stopped engine returned true")
	}
}

// TestSetSeqOrdersSameCycleChain drives every chainInsert branch: fresh
// bucket, in-order tail append, head insertion, and the positional walk a
// backwards SetSeq (the sharded commit replay) requires.
func TestSetSeqOrdersSameCycleChain(t *testing.T) {
	e := NewEngine()
	h := &wordRecorder{}
	e.SetSeq(10)
	e.AtEvent(7, h, nil, 10) // seq 10: fresh bucket
	e.AtEvent(7, h, nil, 11) // seq 11: tail append
	e.SetSeq(1)
	e.AtEvent(7, h, nil, 1) // seq 1: insert at head
	e.SetSeq(5)
	e.AtEvent(7, h, nil, 5) // seq 5: positional walk into the middle
	e.Run(Infinity)
	want := []uint64{1, 5, 10, 11}
	if len(h.fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(h.fired), len(want))
	}
	for i := range want {
		if h.fired[i] != want[i] {
			t.Fatalf("fired order %v, want %v (SetSeq did not reorder the chain)", h.fired, want)
		}
	}
}

func TestRekeyWheel(t *testing.T) {
	e := NewEngine()
	h := &wordRecorder{}
	a := e.AtEvent(7, h, nil, 1) // seq 0
	b := e.AtEvent(7, h, nil, 2) // seq 1
	if !e.Rekey(a, 10) {
		t.Fatal("Rekey of a live wheel event failed")
	}
	if !e.Rekey(b, 1) {
		t.Fatal("Rekey to the event's current seq should be a true no-op")
	}
	if e.Rekey(EventID{}, 3) {
		t.Fatal("Rekey of the zero EventID succeeded")
	}
	if e.Rekey(EventID{slot: 1 << 20, gen: 1}, 3) {
		t.Fatal("Rekey of an out-of-range slot succeeded")
	}
	e.Run(Infinity)
	if want := []uint64{2, 1}; len(h.fired) != 2 || h.fired[0] != want[0] || h.fired[1] != want[1] {
		t.Fatalf("fired order %v, want %v (Rekey did not reorder)", h.fired, want)
	}
	if e.Rekey(a, 20) {
		t.Fatal("Rekey of an already-fired event succeeded")
	}
}

func TestRekeyHeap(t *testing.T) {
	// The smallest wheel window forces far-future events onto the overflow
	// heap.
	e := NewEngineWindow(64)
	h := &wordRecorder{}
	a := e.AtEvent(1000, h, nil, 1) // seq 0, heap
	b := e.AtEvent(1000, h, nil, 2) // seq 1, heap
	if !e.Rekey(a, 10) {
		t.Fatal("Rekey of a live heap event failed")
	}
	if !e.Rekey(b, 3) {
		t.Fatal("Rekey of a live heap event failed")
	}
	e.Run(Infinity)
	if want := []uint64{2, 1}; len(h.fired) != 2 || h.fired[0] != want[0] || h.fired[1] != want[1] {
		t.Fatalf("fired order %v, want %v (heap Rekey did not reorder)", h.fired, want)
	}
}

func TestScheduleObserver(t *testing.T) {
	e := NewEngine()
	h := &wordRecorder{}
	type obs struct {
		id  EventID
		at  Time
		seq uint64
	}
	var got []obs
	e.SetScheduleObserver(func(id EventID, at Time, seq uint64) {
		got = append(got, obs{id, at, seq})
	})
	id := e.AtEvent(3, h, nil, 1)
	if len(got) != 1 || got[0].id != id || got[0].at != 3 || got[0].seq != 0 {
		t.Fatalf("observer saw %+v, want [{%+v 3 0}]", got, id)
	}
	e.SetScheduleObserver(nil)
	e.AtEvent(4, h, nil, 2)
	if len(got) != 1 {
		t.Fatal("removed observer still fired")
	}
	e.SetScheduleObserver(func(id EventID, at Time, seq uint64) {
		got = append(got, obs{id, at, seq})
	})
	e.Reset()
	e.AtEvent(5, h, nil, 3)
	if len(got) != 1 {
		t.Fatal("Reset did not clear the schedule observer")
	}
}
