package sim

// Property tests for the engine's ordering guarantees under Cancel: the
// FIFO tie-break for same-cycle events is what makes whole-machine runs
// bit-identical, and Cancel (used heavily by the notification machinery)
// must neither reorder survivors nor resurrect popped events.

import "testing"

// TestEngineFIFOSurvivesInterleavedCancels fuzzes random schedules with
// cancellations interleaved between insertions and asserts that the
// surviving events still run in (time, insertion order).
func TestEngineFIFOSurvivesInterleavedCancels(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := NewRNG(uint64(trial) + 1)
		e := NewEngine()
		const n = 120

		type rec struct {
			at        Time
			seq       int
			cancelled bool
		}
		events := make([]rec, 0, n)
		ids := make([]EventID, 0, n)
		var fired []int

		for i := 0; i < n; i++ {
			at := Time(rng.Intn(16)) // few distinct times → many ties
			idx := len(events)
			events = append(events, rec{at: at, seq: idx})
			ids = append(ids, e.At(at, func() { fired = append(fired, idx) }))
			// Interleave: occasionally cancel a random earlier event.
			if rng.Bool(0.3) {
				victim := rng.Intn(len(ids))
				if e.Cancel(ids[victim]) {
					events[victim].cancelled = true
				} else if !events[victim].cancelled {
					t.Fatalf("trial %d: Cancel of pending event %d returned false", trial, victim)
				}
			}
		}
		e.Run(Infinity)

		// Every survivor fired exactly once, no cancelled event fired.
		want := make([]int, 0, n)
		for i, ev := range events {
			if !ev.cancelled {
				want = append(want, i)
			}
		}
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(fired), len(want))
		}
		for _, idx := range fired {
			if events[idx].cancelled {
				t.Fatalf("trial %d: cancelled event %d fired", trial, idx)
			}
		}
		// Order: non-decreasing time; among equal times, insertion order.
		for i := 1; i < len(fired); i++ {
			prev, cur := events[fired[i-1]], events[fired[i]]
			if cur.at < prev.at {
				t.Fatalf("trial %d: event at %d ran after event at %d", trial, cur.at, prev.at)
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				t.Fatalf("trial %d: same-cycle FIFO violated: seq %d ran after %d at t=%d",
					trial, cur.seq, prev.seq, cur.at)
			}
		}
	}
}

// TestEngineCancelOfPoppedEventIsNoOp pops events by running the engine and
// then asserts Cancel on their stale IDs returns false and disturbs
// nothing still queued.
func TestEngineCancelOfPoppedEventIsNoOp(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		var ran []int
		n := 5 + rng.Intn(40)
		ids := make([]EventID, n)
		for i := 0; i < n; i++ {
			i := i
			ids[i] = e.At(Time(rng.Intn(10)), func() { ran = append(ran, i) })
		}
		// Run the first half of the schedule.
		for s := 0; s < n/2; s++ {
			e.Step()
		}
		// Cancelling every already-run event must be a no-op...
		for _, i := range ran {
			if e.Cancel(ids[i]) {
				t.Fatalf("trial %d: Cancel of popped event %d returned true", trial, i)
			}
		}
		popped := len(ran)
		// ...and must not have removed anything still pending.
		if e.Pending() != n-popped {
			t.Fatalf("trial %d: pending = %d after no-op cancels, want %d", trial, e.Pending(), n-popped)
		}
		e.Run(Infinity)
		if len(ran) != n {
			t.Fatalf("trial %d: %d events ran, want %d", trial, len(ran), n)
		}
	}
}

// TestEngineCancelSameCycleFromWithinEvent cancels a later same-cycle event
// from inside an earlier one: the victim must not run, and the events after
// it must keep their FIFO positions.
func TestEngineCancelSameCycleFromWithinEvent(t *testing.T) {
	e := NewEngine()
	var order []int
	var victim EventID
	e.At(5, func() {
		order = append(order, 0)
		if !e.Cancel(victim) {
			t.Error("in-event Cancel of a pending same-cycle event returned false")
		}
	})
	victim = e.At(5, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 3) })
	e.Run(Infinity)
	want := []int{0, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

// TestEngineDoubleCancelIdempotent: the second Cancel of the same ID is
// always false, whether the first happened before or after the pop.
func TestEngineDoubleCancelIdempotent(t *testing.T) {
	rng := NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 2 + rng.Intn(20)
		ids := make([]EventID, n)
		for i := 0; i < n; i++ {
			ids[i] = e.At(Time(rng.Intn(5)), func() {})
		}
		victim := rng.Intn(n)
		first := e.Cancel(ids[victim])
		if !first {
			t.Fatalf("trial %d: first Cancel failed", trial)
		}
		if e.Cancel(ids[victim]) {
			t.Fatalf("trial %d: double Cancel returned true", trial)
		}
		e.Run(Infinity)
		if e.Cancel(ids[victim]) {
			t.Fatalf("trial %d: Cancel after run returned true", trial)
		}
	}
}
