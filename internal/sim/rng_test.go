package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v, want ~0.25", frac)
	}
}

func TestRNGForkIndependent(t *testing.T) {
	parent := NewRNG(42)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked children produced %d/100 identical values", same)
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%64) + 1
		r := NewRNG(seed)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGUint64nBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) = %d", v)
		}
	}
}
