package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run(Infinity)
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at cycle %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run(Infinity)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events reordered: pos %d got %d", i, v)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func() {
		e.After(25, func() { fired = e.Now() })
	})
	e.Run(Infinity)
	if fired != 125 {
		t.Fatalf("After fired at %d, want 125", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(50, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(10, func() {})
	})
	e.Run(Infinity)
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.At(10, func() { ran = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(id) {
		t.Fatal("Cancel returned true for an already-cancelled event")
	}
	e.Run(Infinity)
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	ids := make([]EventID, 10)
	for i := 0; i < 10; i++ {
		i := i
		ids[i] = e.At(Time(i), func() { got = append(got, i) })
	}
	e.Cancel(ids[3])
	e.Cancel(ids[7])
	e.Run(Infinity)
	if len(got) != 8 {
		t.Fatalf("ran %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
}

func TestEngineRunLimitStopsClock(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(1000, func() { ran = true })
	end := e.Run(500)
	if end != 500 {
		t.Fatalf("Run returned %d, want 500", end)
	}
	if ran {
		t.Fatal("event beyond limit ran")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run(Infinity)
	if n != 3 {
		t.Fatalf("ran %d events after Stop, want 3", n)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestEngineZeroEventID(t *testing.T) {
	var id EventID
	if !id.Zero() {
		t.Fatal("zero EventID not Zero()")
	}
	e := NewEngine()
	if e.Cancel(id) {
		t.Fatal("Cancel of zero EventID returned true")
	}
}

// Property: for any set of scheduled times, the engine fires them in
// non-decreasing order and fires all of them.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, raw := range times {
			e.At(Time(raw), func() { fired = append(fired, e.Now()) })
		}
		e.Run(Infinity)
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// Same multiset of times.
		want := make([]Time, len(times))
		for i, raw := range times {
			want[i] = Time(raw)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 42; i++ {
		e.At(Time(i), func() {})
	}
	e.Run(Infinity)
	if e.Processed() != 42 {
		t.Fatalf("Processed = %d, want 42", e.Processed())
	}
}
