package sim

// Time-wheel certification: the two-level scheduler (near-horizon wheel +
// overflow heap) against the container/heap reference model, with command
// streams that force cross-level behaviour — delays on both sides of the
// horizon, events migrating conceptually from "far" to "near" as the clock
// advances, cancels in both levels, and slot ABA across levels. The plain
// reference-model test (engine_recycle_test.go) keeps delays tiny and so
// exercises only the wheel; these tests are the other half.

import "testing"

// TestEngineWindowValidation checks the NewEngineWindow contract.
func TestEngineWindowValidation(t *testing.T) {
	for _, bad := range []Time{0, 1, 32, 63, 65, 100, 4095} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEngineWindow(%d) did not panic", bad)
				}
			}()
			NewEngineWindow(bad)
		}()
	}
	for _, good := range []Time{64, 128, 4096} {
		if w := NewEngineWindow(good).Window(); w != good {
			t.Errorf("NewEngineWindow(%d).Window() = %d", good, w)
		}
	}
}

// TestEngineMatchesReferenceCrossLevel replays random schedule/cancel/pop
// streams whose delays straddle the wheel horizon (window 64, delays up to
// 4x that), against the container/heap reference. This certifies that the
// wheel/heap split — including events that sit in the heap while their time
// enters the near window — never changes the (time, seq) pop order.
func TestEngineMatchesReferenceCrossLevel(t *testing.T) {
	const window = 64
	for trial := 0; trial < 100; trial++ {
		rng := NewRNG(uint64(trial) + 7000)
		e := NewEngineWindow(window)
		ref := &refQueue{}

		var engFired, refFired []int
		type pair struct {
			engID EventID
			refEv *refEvent
		}
		var live []pair
		nextID := 0

		for step := 0; step < 600; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // schedule across both levels, biased toward ties
				var d Time
				switch rng.Intn(4) {
				case 0:
					d = Time(rng.Intn(8)) // deep in the wheel
				case 1:
					d = window - 2 + Time(rng.Intn(5)) // horizon straddle
				default:
					d = Time(rng.Intn(4 * window)) // anywhere
				}
				at := e.Now() + d
				id := nextID
				nextID++
				engID := e.At(at, func() { engFired = append(engFired, id) })
				refEv := ref.schedule(at, id)
				live = append(live, pair{engID, refEv})
			case op < 7: // cancel a random (possibly dead) ID, either level
				if len(live) == 0 {
					continue
				}
				p := live[rng.Intn(len(live))]
				got := e.Cancel(p.engID)
				want := ref.cancel(p.refEv)
				if got != want {
					t.Fatalf("trial %d step %d: Cancel = %v, reference = %v", trial, step, got, want)
				}
			default: // pop
				engOK := e.Step()
				refID, refOK := ref.pop()
				if engOK != refOK {
					t.Fatalf("trial %d step %d: Step = %v, reference pop = %v", trial, step, engOK, refOK)
				}
				if refOK {
					if len(engFired) == 0 || engFired[len(engFired)-1] != refID {
						t.Fatalf("trial %d step %d: engine fired %v, reference fired %d",
							trial, step, engFired[len(engFired)-1:], refID)
					}
					refFired = append(refFired, refID)
				}
			}
			if p, r := e.Pending(), len(ref.h); p != r {
				t.Fatalf("trial %d step %d: Pending = %d, reference holds %d", trial, step, p, r)
			}
		}
		for e.Step() {
		}
		for {
			id, ok := ref.pop()
			if !ok {
				break
			}
			refFired = append(refFired, id)
		}
		if len(engFired) != len(refFired) {
			t.Fatalf("trial %d: engine fired %d events, reference %d", trial, len(engFired), len(refFired))
		}
		for i := range refFired {
			if engFired[i] != refFired[i] {
				t.Fatalf("trial %d: divergence at pop %d: engine %d, reference %d",
					trial, i, engFired[i], refFired[i])
			}
		}
	}
}

// TestEngineHorizonBoundary pins the split rule: at schedule time, delay
// window-1 is the last wheel slot and delay window is the first heap
// resident — and the seam is invisible to ordering. In particular, two
// events at the same absolute cycle living in *different* levels (one
// scheduled far ahead into the heap, one scheduled later into the wheel
// after the clock advanced) must still fire in seq (schedule) order.
func TestEngineHorizonBoundary(t *testing.T) {
	e := NewEngineWindow(64)
	var fired []int

	// d = window lands in the heap; d = window-1 in the wheel. The heap
	// event is scheduled FIRST but fires LAST (later cycle) — and vice
	// versa for seq order at equal cycles below.
	e.After(64, func() { fired = append(fired, 1) })
	e.After(63, func() { fired = append(fired, 0) })
	e.Run(Infinity)
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 1 {
		t.Fatalf("boundary events fired %v, want [0 1]", fired)
	}

	// Same-cycle, cross-level seq tie: A goes to the heap (beyond horizon),
	// the clock advances to bring cycle 200 inside the window, then B is
	// scheduled at the same cycle into the wheel. A has the lower seq and
	// must fire first even though it sits in the other structure.
	e2 := NewEngineWindow(64)
	fired = fired[:0]
	e2.At(200, func() { fired = append(fired, 0) }) // heap (200 - 0 >= 64)
	e2.At(150, func() {                             // wheel event advancing the clock
		e2.At(200, func() { fired = append(fired, 1) }) // wheel (200 - 150 < 64)
	})
	e2.Run(Infinity)
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 1 {
		t.Fatalf("cross-level same-cycle events fired %v, want [0 1]", fired)
	}
}

// TestEngineSameCycleFIFOAcrossRollover schedules a burst of same-cycle
// events at a time whose bucket index wraps around the wheel (at mod window
// < now mod window) and asserts strict FIFO. The wrap means the occupancy
// scan crosses the bitmap seam; FIFO within the bucket must survive it.
func TestEngineSameCycleFIFOAcrossRollover(t *testing.T) {
	const window = 64
	e := NewEngineWindow(window)
	var fired []int

	// Move the clock to window-2 = 62, then schedule the burst at cycle
	// window+3 = 67, whose bucket index is 3 — behind now's bucket 62 in
	// the array, ahead of it in time.
	e.At(window-2, func() {
		for i := 0; i < 8; i++ {
			id := i
			e.At(window+3, func() { fired = append(fired, id) })
		}
	})
	e.Run(Infinity)
	if len(fired) != 8 {
		t.Fatalf("fired %d events, want 8", len(fired))
	}
	for i, id := range fired {
		if id != i {
			t.Fatalf("rollover burst fired out of FIFO order: %v", fired)
		}
	}
}

// TestEngineCancelOverflowLevel exercises Cancel for events resident in the
// overflow heap, including middle-of-heap removal and the generation (ABA)
// guard across a slot that migrates levels on reuse.
func TestEngineCancelOverflowLevel(t *testing.T) {
	e := NewEngineWindow(64)
	fired := map[int]bool{}
	var ids []EventID
	// A spread of heap residents (delays >= window) around wheel residents.
	for i := 0; i < 10; i++ {
		id := i
		ids = append(ids, e.After(Time(64+i*37), func() { fired[id] = true }))
	}
	// Cancel a middle heap element and the root-most one.
	if !e.Cancel(ids[5]) || !e.Cancel(ids[0]) {
		t.Fatal("Cancel of live overflow events returned false")
	}
	if e.Cancel(ids[5]) {
		t.Fatal("second Cancel of the same overflow event returned true")
	}
	if e.Pending() != 8 {
		t.Fatalf("Pending = %d after cancelling 2 of 10, want 8", e.Pending())
	}
	e.Run(Infinity)
	for i := 0; i < 10; i++ {
		want := i != 0 && i != 5
		if fired[i] != want {
			t.Fatalf("event %d fired=%v, want %v", i, fired[i], want)
		}
	}

	// ABA across levels: a stale ID for a fired heap event must not cancel
	// the wheel event now occupying the recycled slot.
	e2 := NewEngineWindow(64)
	stale := e2.After(100, func() {}) // heap
	e2.Run(Infinity)                  // fires, slot freed
	ran := false
	fresh := e2.After(1, func() { ran = true }) // wheel, reuses the slot
	if fresh.slot != stale.slot {
		t.Fatalf("expected slot reuse across levels: stale %d, fresh %d", stale.slot, fresh.slot)
	}
	if e2.Cancel(stale) {
		t.Fatal("stale cross-level EventID cancelled the slot's new tenant")
	}
	e2.Run(Infinity)
	if !ran {
		t.Fatal("recycled-slot wheel event did not run")
	}
}

// TestEnginePendingProcessed is the focused audit of the two counters under
// the wheel: Pending counts live events only (across both levels, free slab
// slots excluded), Processed counts fired events only (cancelled events are
// not processed), and Reset rewinds both.
func TestEnginePendingProcessed(t *testing.T) {
	e := NewEngineWindow(64)
	if e.Pending() != 0 || e.Processed() != 0 {
		t.Fatalf("fresh engine: Pending=%d Processed=%d, want 0/0", e.Pending(), e.Processed())
	}
	idWheel := e.After(3, func() {})
	e.After(5, func() {})
	idHeap := e.After(500, func() {}) // overflow level
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d after 3 schedules, want 3", e.Pending())
	}
	e.Cancel(idWheel)
	e.Cancel(idHeap)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after cancelling one event per level, want 1", e.Pending())
	}
	// The slab now holds free slots; they must not be counted.
	if !e.Step() {
		t.Fatal("Step found nothing despite Pending = 1")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after draining, want 0 (free slots not counted)", e.Pending())
	}
	if e.Processed() != 1 {
		t.Fatalf("Processed = %d, want 1 (cancelled events are not processed)", e.Processed())
	}
	e.After(700, func() {})
	e.Reset()
	if e.Pending() != 0 || e.Processed() != 0 || e.Now() != 0 {
		t.Fatalf("after Reset: Pending=%d Processed=%d Now=%d, want 0/0/0",
			e.Pending(), e.Processed(), e.Now())
	}
}

// TestEngineResetReuse certifies the arena property: a Reset engine behaves
// bit-identically to a fresh one, stale pre-Reset EventIDs are inert, and
// the reset itself (plus the subsequent steady state) allocates nothing.
func TestEngineResetReuse(t *testing.T) {
	workload := func(e *Engine) []Time {
		var fires []Time
		var step func()
		n := 0
		step = func() {
			fires = append(fires, e.Now())
			if n++; n < 40 {
				e.After(Time(n%9)+1, step)
				if n%5 == 0 {
					e.After(300, step) // overflow-level traffic
					n++
				}
			}
		}
		e.After(2, step)
		e.Run(2000)
		return fires
	}

	fresh := NewEngineWindow(64)
	want := workload(fresh)

	reused := NewEngineWindow(64)
	// Dirty the engine: pending events in both levels, then Reset.
	reused.After(1, func() { t.Fatal("pre-Reset event survived Reset") })
	stale := reused.After(900, func() { t.Fatal("pre-Reset overflow event survived Reset") })
	reused.Reset()
	if reused.Cancel(stale) {
		t.Fatal("stale pre-Reset EventID cancelled something after Reset")
	}
	got := workload(reused)
	if len(got) != len(want) {
		t.Fatalf("reused engine fired %d events, fresh fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire %d: reused at cycle %d, fresh at cycle %d", i, got[i], want[i])
		}
	}

	// Reset + re-run on a warmed slab must be allocation-free.
	h := &countingHandler{}
	e := NewEngine()
	for i := 0; i < 64; i++ {
		e.AfterEvent(Time(i%7), h, nil, 0)
	}
	e.Run(Infinity)
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		for i := 0; i < 64; i++ {
			e.AfterEvent(Time(i%7), h, nil, 0)
		}
		e.Run(Infinity)
	})
	if allocs != 0 {
		t.Fatalf("Reset+rerun allocated %.1f objects per round, want 0", allocs)
	}
}

// TestEngineWheelFuzz is the fuzz-style property test: random windows,
// random mixed-level command streams including Resets, always checked
// against a reference rebuilt at each Reset. It runs under -race in CI
// (the engine is single-goroutine; the race run guards against unsynchronized
// global state sneaking into the scheduler).
func TestEngineWheelFuzz(t *testing.T) {
	windows := []Time{64, 128, 256}
	for trial := 0; trial < 60; trial++ {
		window := windows[trial%len(windows)]
		rng := NewRNG(uint64(trial)*13 + 99)
		e := NewEngineWindow(window)
		ref := &refQueue{}

		var engFired, refFired []int
		type pair struct {
			engID EventID
			refEv *refEvent
		}
		var live []pair
		nextID := 0

		for step := 0; step < 500; step++ {
			switch op := rng.Intn(20); {
			case op < 9:
				at := e.Now() + Time(rng.Uint64n(uint64(3*window)))
				id := nextID
				nextID++
				engID := e.At(at, func() { engFired = append(engFired, id) })
				live = append(live, pair{engID, ref.schedule(at, id)})
			case op < 12:
				if len(live) == 0 {
					continue
				}
				p := live[rng.Intn(len(live))]
				if got, want := e.Cancel(p.engID), ref.cancel(p.refEv); got != want {
					t.Fatalf("trial %d step %d: Cancel = %v, reference = %v", trial, step, got, want)
				}
			case op == 19 && step > 0 && step%97 == 0: // rare full Reset
				e.Reset()
				*ref = refQueue{}
				live = live[:0]
				engFired, refFired = engFired[:0], refFired[:0]
			default:
				engOK := e.Step()
				refID, refOK := ref.pop()
				if engOK != refOK {
					t.Fatalf("trial %d step %d: Step = %v, reference = %v", trial, step, engOK, refOK)
				}
				if refOK {
					if engFired[len(engFired)-1] != refID {
						t.Fatalf("trial %d step %d: engine fired %d, reference %d",
							trial, step, engFired[len(engFired)-1], refID)
					}
					refFired = append(refFired, refID)
				}
			}
		}
		for e.Step() {
		}
		for {
			id, ok := ref.pop()
			if !ok {
				break
			}
			refFired = append(refFired, id)
		}
		if len(engFired) != len(refFired) {
			t.Fatalf("trial %d (window %d): engine fired %d, reference %d",
				trial, window, len(engFired), len(refFired))
		}
		for i := range refFired {
			if engFired[i] != refFired[i] {
				t.Fatalf("trial %d (window %d): divergence at %d: %d vs %d",
					trial, window, i, engFired[i], refFired[i])
			}
		}
	}
}
