// Package sim provides a deterministic discrete-event simulation engine:
// a cycle clock, an allocation-free event queue with stable FIFO
// tie-breaking, and a seeded pseudo-random number generator. Every run with
// the same seed and the same schedule of events produces bit-identical
// results, which the experiment harness relies on.
//
// The queue is an intrusive, index-based 4-ary heap over a slab of event
// slots recycled through a free list, so steady-state scheduling performs
// no heap allocation. Events can be scheduled either as closures (At/After)
// or — on hot paths — closure-free via a Handler interface plus a payload
// value and word (AtEvent/AfterEvent).
package sim

import (
	"fmt"
	"math"
)

// Time is a simulation timestamp in clock cycles.
type Time uint64

// Infinity is a time later than any reachable simulation time.
const Infinity Time = math.MaxUint64

// Event is a callback scheduled to run at a given cycle.
type Event func()

// Handler is the closure-free event callback used by hot paths: instead of
// capturing state in a closure per event, the caller registers a long-lived
// Handler and passes the per-event state as an arg value (typically a
// pooled pointer) and a payload word (typically a small index or opcode).
// Scheduling through a Handler performs no allocation.
type Handler interface {
	OnEvent(arg any, word uint64)
}

// eventSlot is one entry of the event slab. A slot is either queued
// (pos >= 0 names its heap position), or free (pos == -1, linked through
// next). gen increments every time the slot is released, so a stale
// EventID held by a caller can never cancel the slot's next tenant.
type eventSlot struct {
	at   Time
	seq  uint64 // insertion order; breaks ties so same-cycle events run FIFO
	fn   Event
	h    Handler
	arg  any
	word uint64
	gen  uint32
	pos  int32 // heap index; -1 when free
	next int32 // free-list link; -1 ends the list
}

// EventID identifies a scheduled event so it can be cancelled. It is a
// (slot, generation) pair: cancelling an event that already fired — even if
// its slot has since been recycled for a different event — is a safe no-op.
type EventID struct {
	slot int32 // slab index + 1, so the zero EventID means "no event"
	gen  uint32
}

// Zero returns true for the zero EventID (no event).
func (id EventID) Zero() bool { return id.slot == 0 }

// Engine is the discrete-event simulation core. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	slots   []eventSlot
	free    int32   // head of the free-slot list; -1 when empty
	heap    []int32 // 4-ary heap of slab indices, ordered by (at, seq)
	nRun    uint64
	stopped bool
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine {
	return &Engine{free: -1}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// schedule grabs a slot, fills it, and pushes it onto the heap.
func (e *Engine) schedule(t Time, fn Event, h Handler, arg any, word uint64) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	var idx int32
	if e.free >= 0 {
		idx = e.free
		e.free = e.slots[idx].next
	} else {
		e.slots = append(e.slots, eventSlot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.at = t
	s.seq = e.seq
	s.fn = fn
	s.h = h
	s.arg = arg
	s.word = word
	e.seq++
	s.pos = int32(len(e.heap))
	e.heap = append(e.heap, idx)
	e.siftUp(int(s.pos))
	return EventID{slot: idx + 1, gen: s.gen}
}

// At schedules fn to run at absolute cycle t. Scheduling in the past (t <
// Now) panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn Event) EventID {
	return e.schedule(t, fn, nil, nil, 0)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Time, fn Event) EventID {
	return e.schedule(e.now+delay, fn, nil, nil, 0)
}

// AtEvent schedules h.OnEvent(arg, word) at absolute cycle t without
// allocating. FIFO ordering against At-scheduled events is preserved: both
// share the same insertion sequence.
func (e *Engine) AtEvent(t Time, h Handler, arg any, word uint64) EventID {
	return e.schedule(t, nil, h, arg, word)
}

// AfterEvent schedules h.OnEvent(arg, word) delay cycles from now without
// allocating.
func (e *Engine) AfterEvent(delay Time, h Handler, arg any, word uint64) EventID {
	return e.schedule(e.now+delay, nil, h, arg, word)
}

// Cancel removes a scheduled event. Cancelling an already-run,
// already-cancelled, or recycled event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	if id.slot == 0 {
		return false
	}
	idx := id.slot - 1
	if int(idx) >= len(e.slots) {
		return false
	}
	s := &e.slots[idx]
	if s.gen != id.gen || s.pos < 0 {
		return false
	}
	e.removeAt(int(s.pos))
	e.release(idx)
	return true
}

// release returns a slot to the free list, bumping its generation so any
// outstanding EventID for it goes stale, and dropping references so the
// slab does not retain the event's closure or payload.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.gen++
	s.pos = -1
	s.fn = nil
	s.h = nil
	s.arg = nil
	s.next = e.free
	e.free = idx
}

// Step runs the single next event. It returns false if the queue is empty
// or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	e.removeAt(0)
	s := &e.slots[idx]
	e.now = s.at
	e.nRun++
	fn, h, arg, word := s.fn, s.h, s.arg, s.word
	// Release before running: the callback may schedule new events, which
	// can then reuse this slot (its generation was bumped, so a stale
	// EventID for the fired event still cancels nothing).
	e.release(idx)
	if fn != nil {
		fn()
	} else {
		h.OnEvent(arg, word)
	}
	return true
}

// Run executes events until the queue drains, Stop is called, or the clock
// passes limit (use Infinity for no limit). It returns the cycle at which it
// stopped.
func (e *Engine) Run(limit Time) Time {
	for !e.stopped && len(e.heap) > 0 {
		if e.slots[e.heap[0]].at > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// ---- 4-ary heap ----------------------------------------------------------
//
// The heap orders slot indices by (at, seq); since seq is unique, this is a
// strict total order and pop order is independent of heap shape — the exact
// property that keeps golden determinism files stable across queue
// implementations. A 4-ary layout halves the tree depth of a binary heap,
// trading slightly more comparisons per sift-down for many fewer cache-line
// touches on the sift-up-dominated workloads a simulator produces.

// before reports whether slot a fires before slot b.
func (e *Engine) before(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) heapSet(pos int, idx int32) {
	e.heap[pos] = idx
	e.slots[idx].pos = int32(pos)
}

func (e *Engine) siftUp(pos int) {
	idx := e.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 4
		if !e.before(idx, e.heap[parent]) {
			break
		}
		e.heapSet(pos, e.heap[parent])
		pos = parent
	}
	e.heapSet(pos, idx)
}

func (e *Engine) siftDown(pos int) {
	idx := e.heap[pos]
	n := len(e.heap)
	for {
		first := 4*pos + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.before(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.before(e.heap[best], idx) {
			break
		}
		e.heapSet(pos, e.heap[best])
		pos = best
	}
	e.heapSet(pos, idx)
}

// removeAt deletes the element at heap position pos, restoring the heap
// property. The removed slot's pos is left for the caller to reset.
func (e *Engine) removeAt(pos int) {
	n := len(e.heap) - 1
	moved := e.heap[n]
	e.heap = e.heap[:n]
	if pos == n {
		return
	}
	e.heapSet(pos, moved)
	// The moved element may need to go either way relative to its new
	// subtree; sift up first (cheap no-op when already ordered), then down.
	e.siftUp(pos)
	e.siftDown(int(e.slots[moved].pos))
}
