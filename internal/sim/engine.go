// Package sim provides a deterministic discrete-event simulation engine:
// a cycle clock, a binary-heap event queue with stable FIFO tie-breaking,
// and a seeded pseudo-random number generator. Every run with the same seed
// and the same schedule of events produces bit-identical results, which the
// experiment harness relies on.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulation timestamp in clock cycles.
type Time uint64

// Infinity is a time later than any reachable simulation time.
const Infinity Time = math.MaxUint64

// Event is a callback scheduled to run at a given cycle.
type Event func()

type queuedEvent struct {
	at  Time
	seq uint64 // insertion order; breaks ties so same-cycle events run FIFO
	fn  Event
	idx int // heap index; -1 once popped or cancelled
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ qe *queuedEvent }

// Zero returns true for the zero EventID (no event).
func (id EventID) Zero() bool { return id.qe == nil }

type eventHeap []*queuedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	qe := x.(*queuedEvent)
	qe.idx = len(*h)
	*h = append(*h, qe)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	qe := old[n-1]
	old[n-1] = nil
	qe.idx = -1
	*h = old[:n-1]
	return qe
}

// Engine is the discrete-event simulation core. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	nRun    uint64
	stopped bool
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute cycle t. Scheduling in the past (t <
// Now) panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn Event) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	qe := &queuedEvent{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, qe)
	return EventID{qe}
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Time, fn Event) EventID {
	return e.At(e.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-run or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	if id.qe == nil || id.qe.idx < 0 {
		return false
	}
	heap.Remove(&e.queue, id.qe.idx)
	id.qe.idx = -1
	id.qe.fn = nil
	return true
}

// Step runs the single next event. It returns false if the queue is empty
// or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	qe := heap.Pop(&e.queue).(*queuedEvent)
	e.now = qe.at
	e.nRun++
	qe.fn()
	return true
}

// Run executes events until the queue drains, Stop is called, or the clock
// passes limit (use Infinity for no limit). It returns the cycle at which it
// stopped.
func (e *Engine) Run(limit Time) Time {
	for !e.stopped && len(e.queue) > 0 {
		if e.queue[0].at > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
