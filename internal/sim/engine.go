// Package sim provides a deterministic discrete-event simulation engine:
// a cycle clock, an allocation-free event queue with stable FIFO
// tie-breaking, and a seeded pseudo-random number generator. Every run with
// the same seed and the same schedule of events produces bit-identical
// results, which the experiment harness relies on.
//
// The queue is a two-level hierarchical time wheel over a slab of event
// slots recycled through a free list. Short delays — the overwhelming
// majority in a cache-coherent CMP model: NoC hops, controller occupancy
// windows, hit latencies, fixed backoffs — land in a dense near-horizon
// wheel with O(1) schedule and pop; long timers (notification-guided
// sleeps, restart backoffs, sample intervals) go to an overflow 4-ary heap.
// Events can be scheduled either as closures (At/After) or — on hot paths —
// closure-free via a Handler interface plus a payload value and word
// (AtEvent/AfterEvent).
package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// Time is a simulation timestamp in clock cycles.
type Time uint64

// Infinity is a time later than any reachable simulation time.
const Infinity Time = math.MaxUint64

// Event is a callback scheduled to run at a given cycle.
type Event func()

// Handler is the closure-free event callback used by hot paths: instead of
// capturing state in a closure per event, the caller registers a long-lived
// Handler and passes the per-event state as an arg value (typically a
// pooled pointer) and a payload word (typically a small index or opcode).
// Scheduling through a Handler performs no allocation.
type Handler interface {
	OnEvent(arg any, word uint64)
}

// Slot locations: which structure a slot currently belongs to.
const (
	locFree  int8 = iota // on the free list (next = free-list link)
	locWheel             // chained in a near-horizon bucket (next = chain link)
	locHeap              // in the overflow heap (pos = heap index)
)

// eventSlot is one entry of the event slab. loc names the structure the
// slot currently lives in; gen increments every time the slot is released,
// so a stale EventID held by a caller can never cancel the slot's next
// tenant.
type eventSlot struct {
	at   Time
	seq  uint64 // insertion order; breaks ties so same-cycle events run FIFO
	fn   Event
	h    Handler
	arg  any
	word uint64
	gen  uint32
	loc  int8
	pos  int32 // heap index (locHeap only)
	next int32 // free-list or bucket-chain link; -1 ends the list
}

// EventID identifies a scheduled event so it can be cancelled. It is a
// (slot, generation) pair: cancelling an event that already fired — even if
// its slot has since been recycled for a different event — is a safe no-op.
type EventID struct {
	slot int32 // slab index + 1, so the zero EventID means "no event"
	gen  uint32
}

// Zero returns true for the zero EventID (no event).
func (id EventID) Zero() bool { return id.slot == 0 }

// DefaultWheelWindow is the near-horizon window of NewEngine: delays
// shorter than this many cycles get O(1) wheel scheduling; longer timers go
// to the overflow heap. 4096 covers every protocol-level delay of the
// default machine (NoC traversals, cache/memory latencies, occupancy
// windows, fixed backoffs) while leaving only rare long sleeps
// (notification-guided waits, randomized restart backoffs) on the heap.
const DefaultWheelWindow Time = 4096

// bucket is one wheel slot: an intrusive FIFO chain of event-slot indices.
// All events in a bucket share one absolute firing time (see the horizon
// invariant in Engine), and the chain is in seq order by construction.
type bucket struct {
	head, tail int32 // -1 when empty
}

// Engine is the discrete-event simulation core. The zero value is not
// usable; construct with NewEngine.
//
// Horizon invariant: every event in the wheel satisfies
// now <= at < now+window. Distinct times in a window-sized range map to
// distinct buckets (at mod window), so each bucket holds events of exactly
// one absolute time; events at or beyond the horizon live in the overflow
// heap and are popped directly from there when their turn comes (no
// migration pass is needed for correctness — the next event overall is the
// (at, seq)-minimum of the earliest wheel bucket's head and the heap top).
type Engine struct {
	now     Time
	seq     uint64
	slots   []eventSlot
	free    int32 // head of the free-slot list; -1 when empty
	nRun    uint64
	stopped bool

	// Near-horizon wheel.
	window  Time     // power of two
	mask    uint64   // window - 1
	buckets []bucket // len == window; bucket b holds the time ≡ b (mod window)
	occ     []uint64 // occupancy bitmap over buckets (window/64 words)
	nWheel  int      // live events currently in the wheel

	// Overflow level: 4-ary heap of slab indices, ordered by (at, seq),
	// holding events scheduled at or beyond the wheel horizon.
	heap []int32
}

// NewEngine returns an engine with the clock at cycle 0 and the default
// near-horizon window.
func NewEngine() *Engine { return NewEngineWindow(DefaultWheelWindow) }

// NewEngineWindow returns an engine whose near-horizon wheel spans window
// cycles (delays < window schedule O(1); longer delays go to the overflow
// heap). window must be a power of two and at least 64. Event ordering is
// independent of the window — it only moves the wheel/heap split — so any
// window produces bit-identical simulations.
func NewEngineWindow(window Time) *Engine {
	if window < 64 || window&(window-1) != 0 {
		panic(fmt.Sprintf("sim: wheel window %d is not a power of two >= 64", window))
	}
	e := &Engine{
		free:    -1,
		window:  window,
		mask:    uint64(window - 1),
		buckets: make([]bucket, window),
		occ:     make([]uint64, window/64),
	}
	for i := range e.buckets {
		e.buckets[i] = bucket{head: -1, tail: -1}
	}
	return e
}

// Window returns the near-horizon wheel span in cycles.
func (e *Engine) Window() Time { return e.window }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far. Cancelled events
// are never counted; Reset rewinds the count to zero.
func (e *Engine) Processed() uint64 { return e.nRun }

// Pending returns the number of events currently scheduled: live events in
// the wheel plus live events in the overflow heap. Free slab slots and
// cancelled events are not counted — the slab may be much larger than
// Pending after a burst.
func (e *Engine) Pending() int { return e.nWheel + len(e.heap) }

// Reset returns the engine to the state NewEngine left it in — clock at
// zero, no pending events, zero Processed count, not stopped — while
// retaining the slot slab, wheel, and heap capacity for reuse. Every slot
// that held a queued event has its generation bumped, so EventIDs issued
// before the Reset can never cancel events scheduled after it.
func (e *Engine) Reset() {
	for i := range e.slots {
		if e.slots[i].loc != locFree {
			e.release(int32(i))
		}
	}
	for i := range e.buckets {
		e.buckets[i] = bucket{head: -1, tail: -1}
	}
	for i := range e.occ {
		e.occ[i] = 0
	}
	e.heap = e.heap[:0]
	e.nWheel = 0
	e.now = 0
	e.seq = 0
	e.nRun = 0
	e.stopped = false
}

// Seq returns the insertion sequence number the next scheduled event will
// receive. Together with SetSeq it lets the sharded coordinator bracket a
// replayed schedule so cross-shard event ordering matches the serial run.
func (e *Engine) Seq() uint64 { return e.seq }

// SetSeq overrides the next insertion sequence number. Chains and the heap
// stay correctly ordered even when the override moves seq backwards:
// schedule and Rekey insert out-of-order seqs by position (chainInsert),
// not by blind append.
func (e *Engine) SetSeq(seq uint64) { e.seq = seq }

// Peek returns the (at, seq) key of the event Step would run next, without
// popping it. ok is false when nothing is pending or the engine is stopped.
func (e *Engine) Peek() (at Time, seq uint64, ok bool) {
	if e.stopped {
		return 0, 0, false
	}
	idx := e.nextEvent()
	if idx < 0 {
		return 0, 0, false
	}
	s := &e.slots[idx]
	return s.at, s.seq, true
}

// RekeyBucket reassigns the insertion sequence number of every event in
// the wheel bucket holding cycle t whose seq is at least base to
// renum[seq-base], keeping firing times. It is the bulk counterpart of
// Rekey for the sharded commit path: one short chain walk renumbers
// exactly the events that could tie with a serial-keyed arrival at t. A t
// at or beyond the wheel horizon is a no-op (no wheel event shares its
// cycle).
//
// Precondition: the mapping must be strictly increasing over the live seqs
// it covers, and every mapped-to seq must be larger than every seq below
// base already in the bucket. Both hold for the coordinator's
// provisional→serial table — the merge hands out serial seqs in each
// shard's local order, and serial seqs only grow — and together they mean
// the walk preserves the chain's sort order, so no restructuring is
// needed.
func (e *Engine) RekeyBucket(t Time, base uint64, renum []uint64) {
	if t-e.now >= e.window {
		return
	}
	for idx := e.buckets[uint64(t)&e.mask].head; idx >= 0; idx = e.slots[idx].next {
		s := &e.slots[idx]
		if s.seq >= base {
			s.seq = renum[s.seq-base]
		}
	}
}

// RekeyOverflow bulk-renumbers the overflow heap under the same mapping
// and preconditions as RekeyBucket: every heap event with seq ≥ base is
// reassigned in place (a monotone mapping cannot violate the heap
// property), and for each heap event already inside the wheel horizon the
// same-cycle wheel bucket is renumbered too, so cross-level (at, seq)
// tie-breaks between the two queue levels stay serial-correct.
func (e *Engine) RekeyOverflow(base uint64, renum []uint64) {
	for _, idx := range e.heap {
		s := &e.slots[idx]
		if s.seq >= base {
			s.seq = renum[s.seq-base]
		}
		e.RekeyBucket(s.at, base, renum)
	}
}

// Rekey reassigns the insertion sequence number of a still-pending event,
// keeping its firing time. The sharded commit path uses it to replace a
// provisional seq with the serial run's global one. Rekeying an event that
// already fired or was cancelled is a no-op and returns false — the caller
// still burned the serial seq either way.
func (e *Engine) Rekey(id EventID, seq uint64) bool {
	if id.slot == 0 {
		return false
	}
	idx := id.slot - 1
	if int(idx) >= len(e.slots) {
		return false
	}
	s := &e.slots[idx]
	if s.gen != id.gen || s.loc == locFree {
		return false
	}
	if s.seq == seq {
		return true
	}
	switch s.loc {
	case locWheel:
		e.unchain(idx)
		s.seq = seq
		e.chainInsert(idx)
	case locHeap:
		s.seq = seq
		e.siftUp(int(s.pos))
		e.siftDown(int(s.pos))
	}
	return true
}

// schedule grabs a slot, fills it, and queues it on the wheel (near
// horizon) or the overflow heap (at or beyond it).
//
//puno:hot
func (e *Engine) schedule(t Time, fn Event, h Handler, arg any, word uint64) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	var idx int32
	if e.free >= 0 {
		idx = e.free
		e.free = e.slots[idx].next
	} else {
		e.slots = append(e.slots, eventSlot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.at = t
	s.seq = e.seq
	s.fn = fn
	s.h = h
	s.arg = arg
	s.word = word
	e.seq++
	if t-e.now < e.window {
		s.loc = locWheel
		e.chainInsert(idx)
	} else {
		s.loc = locHeap
		s.pos = int32(len(e.heap))
		e.heap = append(e.heap, idx)
		e.siftUp(int(s.pos))
	}
	return EventID{slot: idx + 1, gen: s.gen}
}

// chainInsert links a filled slot into its time bucket, keeping the chain
// seq-sorted. seq is monotonic in any serial run, so the tail comparison
// passes and insertion is the classic O(1) append; the positional walk only
// runs when SetSeq has moved seq backwards (sharded commit replay), where
// bucket chains hold the handful of events of one exact cycle.
//
//puno:hot
func (e *Engine) chainInsert(idx int32) {
	s := &e.slots[idx]
	bi := uint64(s.at) & e.mask
	b := &e.buckets[bi]
	switch {
	case b.head < 0:
		s.next = -1
		b.head, b.tail = idx, idx
		e.occ[bi>>6] |= 1 << (bi & 63)
	case e.slots[b.tail].seq <= s.seq:
		s.next = -1
		e.slots[b.tail].next = idx
		b.tail = idx
	case s.seq < e.slots[b.head].seq:
		s.next = b.head
		b.head = idx
	default:
		prev := b.head
		for e.slots[prev].next >= 0 && e.slots[e.slots[prev].next].seq <= s.seq {
			prev = e.slots[prev].next
		}
		s.next = e.slots[prev].next
		e.slots[prev].next = idx
	}
	e.nWheel++
}

// At schedules fn to run at absolute cycle t. Scheduling in the past (t <
// Now) panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn Event) EventID {
	return e.schedule(t, fn, nil, nil, 0)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Time, fn Event) EventID {
	return e.schedule(e.now+delay, fn, nil, nil, 0)
}

// AtEvent schedules h.OnEvent(arg, word) at absolute cycle t without
// allocating. FIFO ordering against At-scheduled events is preserved: both
// share the same insertion sequence.
func (e *Engine) AtEvent(t Time, h Handler, arg any, word uint64) EventID {
	return e.schedule(t, nil, h, arg, word)
}

// AfterEvent schedules h.OnEvent(arg, word) delay cycles from now without
// allocating.
func (e *Engine) AfterEvent(delay Time, h Handler, arg any, word uint64) EventID {
	return e.schedule(e.now+delay, nil, h, arg, word)
}

// Cancel removes a scheduled event. Cancelling an already-run,
// already-cancelled, or recycled event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	if id.slot == 0 {
		return false
	}
	idx := id.slot - 1
	if int(idx) >= len(e.slots) {
		return false
	}
	s := &e.slots[idx]
	if s.gen != id.gen || s.loc == locFree {
		return false
	}
	switch s.loc {
	case locWheel:
		e.unchain(idx)
	case locHeap:
		e.removeAt(int(s.pos))
	}
	e.release(idx)
	return true
}

// unchain unlinks a wheel event from its bucket. Buckets hold the handful
// of events that fire on one exact cycle, so the chain walk is short.
func (e *Engine) unchain(idx int32) {
	s := &e.slots[idx]
	bi := uint64(s.at) & e.mask
	b := &e.buckets[bi]
	if b.head == idx {
		b.head = s.next
		if b.head < 0 {
			b.tail = -1
			e.occ[bi>>6] &^= 1 << (bi & 63)
		}
	} else {
		prev := b.head
		for e.slots[prev].next != idx {
			prev = e.slots[prev].next
		}
		e.slots[prev].next = s.next
		if b.tail == idx {
			b.tail = prev
		}
	}
	e.nWheel--
}

// release returns a slot to the free list, bumping its generation so any
// outstanding EventID for it goes stale, and dropping references so the
// slab does not retain the event's closure or payload.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.gen++
	s.loc = locFree
	s.fn = nil
	s.h = nil
	s.arg = nil
	s.next = e.free
	e.free = idx
}

// scanWheel returns the head slot of the earliest non-empty bucket, or -1.
// Scanning starts at now's bucket and wraps: bucket (now+k) mod window
// holds exactly the events at time now+k (horizon invariant), so the first
// occupied bucket in scan order is the earliest wheel time, and its chain
// head is that time's lowest seq.
func (e *Engine) scanWheel() int32 {
	if e.nWheel == 0 {
		return -1
	}
	start := uint64(e.now) & e.mask
	wi := int(start >> 6)
	nw := len(e.occ)
	// First word: ignore buckets before now's position. On wrap-around the
	// high bits of this word are known empty (they were checked first), so
	// re-reading the full word is safe.
	word := e.occ[wi] &^ ((1 << (start & 63)) - 1)
	for i := 0; ; i++ {
		if word != 0 {
			b := uint64(wi)<<6 + uint64(bits.TrailingZeros64(word))
			return e.buckets[b].head
		}
		if i == nw {
			return -1
		}
		wi++
		if wi == nw {
			wi = 0
		}
		word = e.occ[wi]
	}
}

// nextEvent returns the slab index of the globally earliest (at, seq)
// event, or -1 when nothing is pending. Wheel-vs-heap ties at the same
// cycle are broken by seq, preserving cross-level FIFO: an event that went
// to the heap long ago still runs before a same-cycle event scheduled
// later into the wheel.
func (e *Engine) nextEvent() int32 {
	w := e.scanWheel()
	if len(e.heap) == 0 {
		return w
	}
	h := e.heap[0]
	if w < 0 || e.before(h, w) {
		return h
	}
	return w
}

// popSlot removes a queued slot from its structure (without releasing it).
func (e *Engine) popSlot(idx int32) {
	s := &e.slots[idx]
	if s.loc == locWheel {
		// The popped slot is always its bucket's head (the scan returns
		// heads, and heads are the chain's minimum seq).
		bi := uint64(s.at) & e.mask
		b := &e.buckets[bi]
		b.head = s.next
		if b.head < 0 {
			b.tail = -1
			e.occ[bi>>6] &^= 1 << (bi & 63)
		}
		e.nWheel--
	} else {
		e.removeAt(int(s.pos))
	}
}

// runSlot fires the event in slot idx: advance the clock, release the slot
// (so the callback can recycle it), then run the callback.
//
//puno:hot
func (e *Engine) runSlot(idx int32) {
	s := &e.slots[idx]
	e.now = s.at
	e.nRun++
	fn, h, arg, word := s.fn, s.h, s.arg, s.word
	// Release before running: the callback may schedule new events, which
	// can then reuse this slot (its generation was bumped, so a stale
	// EventID for the fired event still cancels nothing).
	e.release(idx)
	if fn != nil {
		fn()
	} else {
		h.OnEvent(arg, word)
	}
}

// StepBefore runs the single next event if it fires strictly before limit.
// When it runs one, it returns that event's (at, seq) key with ran=true.
// Otherwise the queue is left untouched and it returns the key of the event
// Step would run next — (Infinity, 0) when nothing is pending or the engine
// is stopped — with ran=false. The sharded window loop drives execution
// through this instead of a Peek/Step pair, paying one queue scan per event
// instead of two, and reads the shard's next pending time out of the
// failing call for free.
//
//puno:hot
func (e *Engine) StepBefore(limit Time) (at Time, seq uint64, ran bool) {
	if e.stopped {
		return Infinity, 0, false
	}
	idx := e.nextEvent()
	if idx < 0 {
		return Infinity, 0, false
	}
	s := &e.slots[idx]
	if s.at >= limit {
		return s.at, s.seq, false
	}
	at, seq = s.at, s.seq
	e.popSlot(idx)
	e.runSlot(idx)
	return at, seq, true
}

// DrainEntry is one effectful event executed by DrainBefore: the cycle it
// ran at, its (possibly flag-tagged) sequence key, the engine seq counter
// after it ran (as an offset from the drain's base), and the caller's
// external effect counter after it ran. Emit is written by callers that
// track a second effect stream; DrainBefore itself leaves it zero.
type DrainEntry struct {
	At    uint32
	Key   uint32
	SeqHi uint32
	Send  int32
	Emit  int32
}

// DrainBefore runs every event firing strictly before limit in one tight
// loop — the windowed equivalent of Run — appending one DrainEntry per
// effectful event to log. An event is effectful when it scheduled
// something (the seq counter advanced) or when *ext changed (the caller's
// hooks bump ext for externally staged effects, e.g. remote sends). Keys
// pack as uint32(seq), tagged with flag when seq >= base; counter values
// are recorded as offsets from base. It returns the grown log and the
// time of the next pending event — Infinity when the queue drained or the
// engine was stopped. Executed cycles and counter offsets must fit 32
// bits; the caller guarantees both.
//
//puno:hot
func (e *Engine) DrainBefore(limit Time, base uint64, flag uint32, log []DrainEntry, ext *int32) ([]DrainEntry, Time) {
	x := *ext
	pseq := e.seq
	for !e.stopped {
		idx := e.nextEvent()
		if idx < 0 {
			return log, Infinity
		}
		s := &e.slots[idx]
		if s.at >= limit {
			return log, s.at
		}
		at, seq := s.at, s.seq
		e.popSlot(idx)
		e.runSlot(idx)
		x2, q2 := *ext, e.seq
		if x2 != x || q2 != pseq {
			key := uint32(seq)
			if seq >= base {
				key |= flag
			}
			log = append(log, DrainEntry{
				At: uint32(at), Key: key,
				SeqHi: uint32(q2 - base),
				Send:  x2,
			})
			x, pseq = x2, q2
		}
	}
	return log, Infinity
}

// Step runs the single next event. It returns false if the queue is empty
// or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	idx := e.nextEvent()
	if idx < 0 {
		return false
	}
	e.popSlot(idx)
	e.runSlot(idx)
	return true
}

// Run executes events until the queue drains, Stop is called, or the clock
// passes limit (use Infinity for no limit). It returns the cycle at which it
// stopped.
func (e *Engine) Run(limit Time) Time {
	for !e.stopped {
		idx := e.nextEvent()
		if idx < 0 {
			break
		}
		if e.slots[idx].at > limit {
			e.now = limit
			break
		}
		e.popSlot(idx)
		e.runSlot(idx)
	}
	return e.now
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// ---- overflow heap -------------------------------------------------------
//
// The heap orders slot indices by (at, seq); since seq is unique, this is a
// strict total order and pop order is independent of heap shape — the exact
// property that keeps golden determinism files stable across queue
// implementations. A 4-ary layout halves the tree depth of a binary heap,
// trading slightly more comparisons per sift-down for many fewer cache-line
// touches. Only long timers reach it, so its size stays small.

// before reports whether slot a fires before slot b.
func (e *Engine) before(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) heapSet(pos int, idx int32) {
	e.heap[pos] = idx
	e.slots[idx].pos = int32(pos)
}

func (e *Engine) siftUp(pos int) {
	idx := e.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 4
		if !e.before(idx, e.heap[parent]) {
			break
		}
		e.heapSet(pos, e.heap[parent])
		pos = parent
	}
	e.heapSet(pos, idx)
}

func (e *Engine) siftDown(pos int) {
	idx := e.heap[pos]
	n := len(e.heap)
	for {
		first := 4*pos + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.before(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.before(e.heap[best], idx) {
			break
		}
		e.heapSet(pos, e.heap[best])
		pos = best
	}
	e.heapSet(pos, idx)
}

// removeAt deletes the element at heap position pos, restoring the heap
// property. The removed slot's location is left for the caller to reset.
func (e *Engine) removeAt(pos int) {
	n := len(e.heap) - 1
	moved := e.heap[n]
	e.heap = e.heap[:n]
	if pos == n {
		return
	}
	e.heapSet(pos, moved)
	// The moved element may need to go either way relative to its new
	// subtree; sift up first (cheap no-op when already ordered), then down.
	e.siftUp(pos)
	e.siftDown(int(e.slots[moved].pos))
}
