package sim

// Tests for the slab/free-list event queue introduced by the
// zero-allocation hot path: slot recycling must never let a stale EventID
// cancel a later event (the ABA hazard the generation counter exists for),
// FIFO tie-breaking must survive heavy free-list reuse, and the whole queue
// must behave exactly like the original container/heap implementation,
// which the reference model below re-implements.

import (
	"container/heap"
	"testing"
)

// TestEngineCancelRecycledSlotIsNoOp forces a slot to be recycled for a new
// event and asserts that the old EventID cannot cancel the new tenant.
func TestEngineCancelRecycledSlotIsNoOp(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Run(Infinity) // fires the event; its slot goes on the free list

	ran := false
	fresh := e.At(5, func() { ran = true })
	if fresh.slot != stale.slot {
		t.Fatalf("expected slot reuse: stale slot %d, fresh slot %d", stale.slot, fresh.slot)
	}
	if fresh.gen == stale.gen {
		t.Fatal("recycled slot did not bump its generation")
	}
	if e.Cancel(stale) {
		t.Fatal("Cancel of a stale EventID returned true")
	}
	if e.Pending() != 1 {
		t.Fatalf("stale Cancel removed the recycled slot's event: pending = %d", e.Pending())
	}
	e.Run(Infinity)
	if !ran {
		t.Fatal("event on the recycled slot never ran")
	}
	// And the now-fired fresh ID is itself stale.
	if e.Cancel(fresh) {
		t.Fatal("Cancel of a fired EventID returned true")
	}
}

// TestEngineCancelAfterManyRecycles cycles one slot through many
// generations and checks every historical EventID stays dead.
func TestEngineCancelAfterManyRecycles(t *testing.T) {
	e := NewEngine()
	var ids []EventID
	for i := 0; i < 100; i++ {
		ids = append(ids, e.At(e.Now()+1, func() {}))
		e.Run(Infinity)
	}
	live := e.At(e.Now()+1, func() {})
	for i, id := range ids {
		if e.Cancel(id) {
			t.Fatalf("Cancel of generation-%d EventID returned true", i)
		}
	}
	if e.Pending() != 1 {
		t.Fatalf("stale cancels disturbed the queue: pending = %d, want 1", e.Pending())
	}
	if !e.Cancel(live) {
		t.Fatal("Cancel of the live event failed after stale cancels")
	}
}

// TestEngineFIFOAcrossFreeListReuse interleaves fire/schedule rounds so
// same-cycle events land on recycled slots in scrambled slab order, then
// checks they still run in insertion order.
func TestEngineFIFOAcrossFreeListReuse(t *testing.T) {
	e := NewEngine()
	// Warm the slab with slots freed in a non-trivial order.
	var warm []EventID
	for i := 0; i < 32; i++ {
		warm = append(warm, e.At(10, func() {}))
	}
	for i := 0; i < len(warm); i += 2 {
		e.Cancel(warm[i]) // frees even slots first
	}
	e.Run(Infinity) // fires (and frees) the odd slots in heap order

	var order []int
	for i := 0; i < 64; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run(Infinity)
	if len(order) != 64 {
		t.Fatalf("ran %d events, want 64", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle FIFO violated on recycled slots: pos %d got %d", i, v)
		}
	}
}

// ---- reference model ----------------------------------------------------

// refEvent/refHeap re-implement the original container/heap event queue, so
// the property test below can pit the slab queue against the exact
// semantics the rest of the simulator was validated on.
type refEvent struct {
	at  Time
	seq uint64
	id  int
	idx int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// refQueue mirrors the Engine's schedule/cancel/pop surface.
type refQueue struct {
	now Time
	seq uint64
	h   refHeap
}

func (q *refQueue) schedule(at Time, id int) *refEvent {
	ev := &refEvent{at: at, seq: q.seq, id: id}
	q.seq++
	heap.Push(&q.h, ev)
	return ev
}

func (q *refQueue) cancel(ev *refEvent) bool {
	if ev.idx < 0 {
		return false
	}
	heap.Remove(&q.h, ev.idx)
	ev.idx = -1
	return true
}

func (q *refQueue) pop() (int, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	ev := heap.Pop(&q.h).(*refEvent)
	q.now = ev.at
	ev.idx = -1
	return ev.id, true
}

// TestEngineMatchesContainerHeapReference drives the slab queue and the
// container/heap reference with an identical random schedule/cancel/pop
// command stream and asserts they fire the same events in the same order —
// the property the golden determinism files depend on.
func TestEngineMatchesContainerHeapReference(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := NewRNG(uint64(trial) + 1000)
		e := NewEngine()
		ref := &refQueue{}

		var engFired, refFired []int
		type pair struct {
			engID EventID
			refEv *refEvent
		}
		var live []pair
		nextID := 0

		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // schedule, biased toward few distinct times for ties
				at := e.Now() + Time(rng.Intn(8))
				id := nextID
				nextID++
				engID := e.At(at, func() { engFired = append(engFired, id) })
				refEv := ref.schedule(at, id)
				live = append(live, pair{engID, refEv})
			case op < 7: // cancel a random previously issued (possibly dead) ID
				if len(live) == 0 {
					continue
				}
				p := live[rng.Intn(len(live))]
				got := e.Cancel(p.engID)
				want := ref.cancel(p.refEv)
				if got != want {
					t.Fatalf("trial %d step %d: Cancel = %v, reference = %v", trial, step, got, want)
				}
			default: // pop one event
				engOK := e.Step()
				refID, refOK := ref.pop()
				if engOK != refOK {
					t.Fatalf("trial %d step %d: Step = %v, reference pop = %v", trial, step, engOK, refOK)
				}
				if refOK {
					if len(engFired) == 0 || engFired[len(engFired)-1] != refID {
						t.Fatalf("trial %d step %d: engine fired %v, reference fired %d",
							trial, step, engFired[len(engFired)-1:], refID)
					}
					refFired = append(refFired, refID)
				}
			}
		}
		// Drain both completely.
		for e.Step() {
		}
		for {
			id, ok := ref.pop()
			if !ok {
				break
			}
			refFired = append(refFired, id)
		}
		if len(engFired) != len(refFired) {
			t.Fatalf("trial %d: engine fired %d events, reference %d", trial, len(engFired), len(refFired))
		}
		for i := range refFired {
			if engFired[i] != refFired[i] {
				t.Fatalf("trial %d: divergence at pop %d: engine %d, reference %d",
					trial, i, engFired[i], refFired[i])
			}
		}
	}
}

// TestEngineSteadyStateAllocFree certifies the tentpole property: once the
// slab has warmed up, scheduling and firing events allocates nothing.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	h := countingHandler{}
	// Warm-up: grow slab and heap to working size.
	for i := 0; i < 64; i++ {
		e.AfterEvent(Time(i%7), &h, nil, 0)
	}
	e.Run(Infinity)

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.AfterEvent(Time(i%7), &h, nil, 0)
		}
		e.Run(Infinity)
	})
	if allocs != 0 {
		t.Fatalf("steady-state AfterEvent/Run allocated %.1f objects per round, want 0", allocs)
	}
}

type countingHandler struct{ n int }

func (h *countingHandler) OnEvent(any, uint64) { h.n++ }
