package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64* variant). The simulator cannot use math/rand's global source
// because experiment reproducibility requires every random stream to be
// seeded explicitly and owned by one component.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes the generator in place, exactly as NewRNG(seed)
// would: an RNG reused across simulation arenas produces the same stream a
// freshly constructed one does.
func (r *RNG) Reseed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r.state = seed
	// Warm up so that small consecutive seeds do not yield correlated
	// first outputs.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent child generator. Children of the same parent
// with different labels produce uncorrelated streams.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xA24BAED4963EE407))
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
