package machine

import (
	"repro/internal/noc"
	"repro/internal/sim"
)

// GETXOutcome classifies one transactional GETX request by what it did to
// the system — the taxonomy behind Fig. 2.
type GETXOutcome int

// Outcomes of a transactional GETX.
const (
	// OutcomeClean: granted without disturbing any transaction.
	OutcomeClean GETXOutcome = iota
	// OutcomeResolvedAborts: granted; the sharers it aborted were
	// necessary (the request succeeded, so the conflicts were real).
	OutcomeResolvedAborts
	// OutcomeNackOnly: rejected by a higher-priority transaction without
	// aborting anyone (the unicast ideal).
	OutcomeNackOnly
	// OutcomeFalseAbort: rejected AND it aborted one or more
	// lower-priority sharers on the way — false aborting (Sec. II-C).
	OutcomeFalseAbort
	numOutcomes
)

// String implements fmt.Stringer.
func (o GETXOutcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeResolvedAborts:
		return "resolved-aborts"
	case OutcomeNackOnly:
		return "nack-only"
	case OutcomeFalseAbort:
		return "false-abort"
	default:
		return "outcome(?)"
	}
}

// AbortCause attributes a transaction abort to its trigger.
type AbortCause int

// Abort causes.
const (
	CauseTxGETX   AbortCause = iota // conflicting transactional write request
	CauseTxGETS                     // conflicting transactional read request
	CauseNonTx                      // conflicting non-transactional request
	CauseOverflow                   // transactional set overflowed the L1
	numCauses
)

// Result is everything measured in one run. All cycle quantities are in
// core clock cycles.
type Result struct {
	Workload string
	Scheme   Scheme
	Cycles   sim.Time // execution time: cycle the last thread finished

	Commits uint64
	Aborts  uint64 // total transaction aborts (Fig. 10 numerator)

	AbortsByCause [numCauses]uint64

	// Transactional GETX classification (Figs. 2 and 3). TxGETXIssued
	// counts every protocol-level request including retries;
	// TxGETXAccesses counts logical write accesses (the Fig. 2
	// denominator — one classification per access, accumulated across its
	// retries).
	TxGETXIssued   uint64
	TxGETXAccesses uint64
	GETXOutcomes   [numOutcomes]uint64
	// FalseAbortHist[k] counts false-aborting requests that falsely aborted
	// exactly k transactions (k=0 is unused padding). A dense slice indexed
	// by victim count: emission order is index order by construction, and
	// the abort path increments without hashing. Always non-nil once reset
	// has run, so fresh and arena-reused results compare equal.
	FalseAbortHist []uint64

	// Transaction execution efficiency (Fig. 14).
	GoodCycles      uint64 // cycles inside attempts that committed
	DiscardedCycles uint64 // cycles inside attempts that aborted

	// Interconnect (Fig. 11).
	Net noc.Stats

	// Directory blocking (Fig. 12) and other directory-side counters.
	DirTxGETXBusy     uint64
	DirTxGETXServices uint64 // TxGETX requests the directories accepted
	DirBusyAll        uint64
	DirBusyNacks      uint64
	DirUnicasts       uint64
	DirMulticastFwds  uint64
	Mispredictions    uint64

	// Requester-side behaviour.
	Nacks            uint64 // NACKed request attempts
	Retries          uint64 // request re-issues after NACK
	BackoffCycles    uint64 // cycles spent in polling backoff
	RestartWaitCycle uint64 // cycles spent in post-abort restart backoff
	NotifiedBackoffs uint64 // retries whose delay came from a T_est notification

	PerNodeCommits []uint64
	PerNodeAborts  []uint64

	// Timeline holds periodic samples when Config.SampleInterval is set.
	Timeline []Sample
}

// reset returns r to the state a fresh Result for (workload, scheme,
// nodes) holds, reusing the histogram map, the per-node slices, and the
// Timeline's capacity — the arena-reuse path of Machine.Reset.
func (r *Result) reset(workload string, scheme Scheme, nodes int) {
	hist := r.FalseAbortHist
	if hist == nil {
		hist = make([]uint64, 0, 8)
	} else {
		hist = hist[:0]
	}
	*r = Result{
		Workload:       workload,
		Scheme:         scheme,
		FalseAbortHist: hist,
		PerNodeCommits: resizeCounts(r.PerNodeCommits, nodes),
		PerNodeAborts:  resizeCounts(r.PerNodeAborts, nodes),
		Timeline:       r.Timeline[:0],
	}
}

// resizeCounts returns s resized to n elements, all zero, reusing capacity.
func resizeCounts(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Clone returns a deep copy of r. Machine.Run returns a pointer into the
// machine, and the sweep harness reuses one machine arena per worker —
// results that must outlive the arena's next Reset are cloned first.
func (r *Result) Clone() *Result {
	c := *r
	c.FalseAbortHist = append(make([]uint64, 0, len(r.FalseAbortHist)), r.FalseAbortHist...)
	c.PerNodeCommits = append([]uint64(nil), r.PerNodeCommits...)
	c.PerNodeAborts = append([]uint64(nil), r.PerNodeAborts...)
	c.Timeline = append([]Sample(nil), r.Timeline...)
	return &c
}

// Sample is one Timeline entry: the interval's deltas.
type Sample struct {
	Cycle   sim.Time
	Commits uint64
	Aborts  uint64
	Traffic uint64 // router traversals in the interval
	LiveTxs int    // transactions in flight at the sample instant
}

// AbortRate returns aborts / (aborts + commits), the Table I metric.
func (r *Result) AbortRate() float64 {
	total := r.Aborts + r.Commits
	if total == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(total)
}

// FalseAbortFraction returns the fraction of transactional GETX requests
// that incurred false aborting (Fig. 2).
func (r *Result) FalseAbortFraction() float64 {
	if r.TxGETXAccesses == 0 {
		return 0
	}
	return float64(r.GETXOutcomes[OutcomeFalseAbort]) / float64(r.TxGETXAccesses)
}

// GDRatio returns good / discarded transactional cycles (Fig. 14). When
// nothing was discarded the ratio is reported against one cycle to stay
// finite.
func (r *Result) GDRatio() float64 {
	d := r.DiscardedCycles
	if d == 0 {
		d = 1
	}
	return float64(r.GoodCycles) / float64(d)
}

// DirBlockingPerTxGETX returns the average cycles a directory entry stayed
// blocked per transactional GETX service — the Fig. 12 metric ("averaging
// the number of cycles during which directory entries stay in a blocking
// transient state when servicing transactional GETX").
func (r *Result) DirBlockingPerTxGETX() float64 {
	if r.DirTxGETXServices == 0 {
		return 0
	}
	return float64(r.DirTxGETXBusy) / float64(r.DirTxGETXServices)
}

// UnnecessaryAborts returns the total transactions aborted by requests that
// were ultimately NACKed (the integral of the Fig. 3 histogram).
func (r *Result) UnnecessaryAborts() uint64 {
	var n uint64
	for k, c := range r.FalseAbortHist {
		n += uint64(k) * c
	}
	return n
}

// bumpFalseAbort counts one false-aborting request with the given number of
// victims, growing the histogram as needed (appended zeros, so retained
// capacity never resurrects stale counts).
func (r *Result) bumpFalseAbort(victims int) {
	for len(r.FalseAbortHist) <= victims {
		r.FalseAbortHist = append(r.FalseAbortHist, 0)
	}
	r.FalseAbortHist[victims]++
}
