package machine

import (
	"strings"
	"testing"
)

// TestDiagSchemes prints the scheme comparison for the read-mostly workload
// (development diagnostic; always passes).
func TestDiagSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	wl := fig4Workload{txPerCPU: 30, sharedArea: 16, writers: 4}
	type variant struct {
		label string
		cfg   Config
	}
	variants := []variant{
		{"Baseline", smallConfig(SchemeBaseline, 3)},
		{"Backoff", smallConfig(SchemeBackoff, 3)},
		{"PUNO", smallConfig(SchemePUNO, 3)},
		{"PUNO-mult1", func() Config {
			c := smallConfig(SchemePUNO, 3)
			c.ValidityTimeoutMult = 1
			return c
		}()},
		{"PUNO-mult16", func() Config {
			c := smallConfig(SchemePUNO, 3)
			c.ValidityTimeoutMult = 16
			return c
		}()},
		{"PUNO-mult64", func() Config {
			c := smallConfig(SchemePUNO, 3)
			c.ValidityTimeoutMult = 64
			return c
		}()},
		{"PUNO-novalidity", func() Config {
			c := smallConfig(SchemePUNO, 3)
			c.DisableValidity = true
			return c
		}()},
		{"PUNO-slowdecay", func() Config {
			c := smallConfig(SchemePUNO, 3)
			c.FixedValidityTimeout = 20000
			return c
		}()},
		{"UnicastOnly", smallConfig(SchemeUnicastOnly, 3)},
		{"NotifyOnly", smallConfig(SchemeNotifyOnly, 3)},
	}
	for _, v := range variants {
		s := v.label
		m, res := runWorkload(t, v.cfg, wl)
		var noUD, partial, inval, reqOld uint64
		for _, p := range m.preds {
			if p != nil {
				noUD += p.FallbackNoUD
				partial += p.PartialKnowledge
				inval += p.FallbackInvalid
				reqOld += p.FallbackReqOlder
			}
		}
		if strings.HasPrefix(s, "PUNO") || s == "UnicastOnly" {
			t.Logf("%-18s   fallbacks: noTargets=%d allInvalid=%d reqOlder=%d partial=%d", s, noUD, inval, reqOld, partial)
		}
		t.Logf("%-18s cycles=%-8d commits=%-4d aborts=%-5d txgetx=%-5d clean=%-4d resolved=%-4d nackonly=%-4d false=%-4d unicasts=%-5d mispred=%-4d nacks=%-6d retries=%-6d notified=%-5d traffic=%-8d dirbusy=%d",
			s, res.Cycles, res.Commits, res.Aborts, res.TxGETXIssued,
			res.GETXOutcomes[OutcomeClean], res.GETXOutcomes[OutcomeResolvedAborts],
			res.GETXOutcomes[OutcomeNackOnly], res.GETXOutcomes[OutcomeFalseAbort],
			res.DirUnicasts, res.Mispredictions, res.Nacks, res.Retries, res.NotifiedBackoffs,
			res.Net.TotalTraversals(), res.DirTxGETXBusy)
		t.Logf("%-18s   causes: byGETX=%d byGETS=%d nonTx=%d ovf=%d unnecessary=%d",
			s, res.AbortsByCause[CauseTxGETX], res.AbortsByCause[CauseTxGETS],
			res.AbortsByCause[CauseNonTx], res.AbortsByCause[CauseOverflow], res.UnnecessaryAborts())
	}
}
