package machine

import (
	"reflect"
	"testing"
)

// resultSignature collapses a Result to the comparable fields a sweep
// consumes — every scalar counter plus the per-node and histogram views.
func resultSignature(r *Result) map[string]any {
	return map[string]any{
		"cycles":    r.Cycles,
		"commits":   r.Commits,
		"aborts":    r.Aborts,
		"causes":    r.AbortsByCause,
		"getx":      r.TxGETXIssued,
		"accesses":  r.TxGETXAccesses,
		"outcomes":  r.GETXOutcomes,
		"hist":      r.FalseAbortHist,
		"good":      r.GoodCycles,
		"disc":      r.DiscardedCycles,
		"net":       r.Net,
		"dirbusy":   r.DirBusyAll,
		"dirnacks":  r.DirBusyNacks,
		"unicasts":  r.DirUnicasts,
		"mispred":   r.Mispredictions,
		"nacks":     r.Nacks,
		"retries":   r.Retries,
		"backoff":   r.BackoffCycles,
		"restart":   r.RestartWaitCycle,
		"notified":  r.NotifiedBackoffs,
		"pnCommits": r.PerNodeCommits,
		"pnAborts":  r.PerNodeAborts,
	}
}

// TestResetMatchesNew is the arena-reuse certification: one machine Reset
// across a matrix of scheme/seed/workload combinations must reproduce,
// run for run, exactly what a freshly constructed machine produces — even
// when consecutive runs change scheme, seed, signature mode, and workload.
func TestResetMatchesNew(t *testing.T) {
	type spec struct {
		cfg Config
		wl  Workload
	}
	sigCfg := smallConfig(SchemeBaseline, 7)
	sigCfg.SignatureBits = 512
	specs := []spec{
		{smallConfig(SchemeBaseline, 1), counterWorkload{name: "a", txPerCPU: 6, counters: 4, incrsPer: 2, think: 10}},
		{smallConfig(SchemePUNO, 2), counterWorkload{name: "b", txPerCPU: 6, counters: 2, incrsPer: 2, think: 0}},
		{smallConfig(SchemePUNOPush, 3), counterWorkload{name: "c", txPerCPU: 5, counters: 2, incrsPer: 2, think: 0}},
		{smallConfig(SchemeBackoff, 4), disjointWorkload{txPerCPU: 8}},
		{sigCfg, counterWorkload{name: "d", txPerCPU: 5, counters: 3, incrsPer: 2, think: 5}},
		{smallConfig(SchemeBaseline, 1), counterWorkload{name: "a", txPerCPU: 6, counters: 4, incrsPer: 2, think: 10}},
	}

	var arena *Machine
	for i, sp := range specs {
		fresh, err := New(sp.cfg, sp.wl)
		if err != nil {
			t.Fatalf("spec %d: New: %v", i, err)
		}
		want, err := fresh.Run()
		if err != nil {
			t.Fatalf("spec %d: fresh run: %v", i, err)
		}

		if arena == nil {
			arena, err = New(sp.cfg, sp.wl)
		} else {
			err = arena.Reset(sp.cfg, sp.wl)
		}
		if err != nil {
			t.Fatalf("spec %d: arena: %v", i, err)
		}
		got, err := arena.Run()
		if err != nil {
			t.Fatalf("spec %d: arena run: %v", i, err)
		}
		if !reflect.DeepEqual(resultSignature(got), resultSignature(want)) {
			t.Fatalf("spec %d (%s/%v/seed %d): arena result diverged from fresh machine\n got: %+v\nwant: %+v",
				i, sp.wl.Name(), sp.cfg.Scheme, sp.cfg.Seed, resultSignature(got), resultSignature(want))
		}
	}
}

// TestResetAfterFailedRun: a machine whose run hit MaxCycles (ErrHung) must
// reset cleanly and then behave like a fresh machine.
func TestResetAfterFailedRun(t *testing.T) {
	hang := smallConfig(SchemeBaseline, 5)
	hang.MaxCycles = 50 // far too few cycles: guaranteed ErrHung
	wl := counterWorkload{name: "hang", txPerCPU: 5, counters: 2, incrsPer: 2, think: 0}

	m, err := New(hang, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("expected the truncated run to fail")
	}

	good := smallConfig(SchemeBaseline, 5)
	if err := m.Reset(good, wl); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run()
	if err != nil {
		t.Fatalf("run after reset-from-failure: %v", err)
	}
	_, want := runWorkload(t, good, wl)
	if got.Cycles != want.Cycles || got.Commits != want.Commits || got.Aborts != want.Aborts {
		t.Fatalf("post-failure reset diverged: %d/%d/%d vs fresh %d/%d/%d",
			got.Cycles, got.Commits, got.Aborts, want.Cycles, want.Commits, want.Aborts)
	}
}

// TestResetRejectsBadConfig: Reset validates like New and leaves the arena
// usable for the next (valid) spec.
func TestResetRejectsBadConfig(t *testing.T) {
	wl := disjointWorkload{txPerCPU: 3}
	m, err := New(smallConfig(SchemeBaseline, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	bad := smallConfig(SchemeBaseline, 1)
	bad.Nodes = 7 // does not match the 4x4 mesh
	if err := m.Reset(bad, wl); err == nil {
		t.Fatal("Reset accepted a node count that does not match the mesh")
	}
	if err := m.Reset(smallConfig(SchemeBaseline, 2), wl); err != nil {
		t.Fatalf("Reset after a rejected config: %v", err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run after recovering from a rejected config: %v", err)
	}
}

// TestResultClone: the clone is deep — mutating the original's maps and
// slices must not show through.
func TestResultClone(t *testing.T) {
	wl := counterWorkload{name: "clone", txPerCPU: 5, counters: 2, incrsPer: 2, think: 0}
	m, res := runWorkload(t, smallConfig(SchemeBaseline, 9), wl)
	c := res.Clone()
	if !reflect.DeepEqual(resultSignature(c), resultSignature(res)) {
		t.Fatal("clone differs from original")
	}
	// Reusing the machine overwrites the original in place; the clone must
	// be unaffected.
	sig := resultSignature(c)
	if err := m.Reset(smallConfig(SchemePUNO, 10), wl); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sig, resultSignature(c)) {
		t.Fatal("clone changed when its source machine was reused")
	}
}
