package machine

import (
	"os"
	"testing"
)

// TestPUNOCounterNoHang is the regression test for a livelock found during
// bring-up (a unicast MP-NACK marking a parked read stale forever): the
// contended counter workload must finish under PUNO well within the cycle
// cap. On failure it dumps the full machine state.
func TestPUNOCounterNoHang(t *testing.T) {
	wl := counterWorkload{name: "counters", txPerCPU: 20, counters: 8, incrsPer: 2, think: 30}
	cfg := smallConfig(SchemePUNO, 42)
	cfg.MaxCycles = 3_000_000
	m, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		m.DumpState(os.Stderr)
		t.Fatal(err)
	}
}
