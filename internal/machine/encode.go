package machine

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Canonical configuration encoding: the deterministic byte rendering of a
// Config that content-addressed result caching hashes. Two Configs that
// would produce the same simulation trajectory encode identically, and any
// field that can change a Result changes the bytes. The encoding is
// versioned ("punocfg/1"): adding a Config field that influences results
// must extend encodeCanonical and bump the version, which rotates every
// cache key — exactly the safe failure mode, since a stale key can never
// alias a run with different semantics.
//
// Two deliberate exclusions:
//
//   - Shards is an execution strategy, not an observable: the PDES
//     coordinator's contract (certified by determinism_shards_test.go) is
//     bit-identical Results for any shard count, so including it would
//     only fragment the cache across equivalent runs.
//   - TraceFn and EventSink are host-side observation hooks. They carry no
//     canonical byte form, and a run with a sink is cycle-identical to one
//     without, so AppendCanonical refuses configs that set them rather
//     than silently dropping live state from the key.
const cfgMagic = "punocfg/1"

// AppendCanonical appends the canonical binary encoding of c to dst and
// returns the extended slice. It fails when c carries non-encodable live
// state (TraceFn, EventSink) — callers building cache keys must hash pure
// parameter sets.
func (c *Config) AppendCanonical(dst []byte) ([]byte, error) {
	if c.TraceFn != nil {
		return nil, fmt.Errorf("machine: config with TraceFn set has no canonical encoding")
	}
	if c.EventSink != nil {
		return nil, fmt.Errorf("machine: config with EventSink set has no canonical encoding")
	}
	b := append(dst, cfgMagic...)
	u := func(v uint64) { b = binary.AppendUvarint(b, v) }
	i := func(v int) { b = binary.AppendUvarint(b, uint64(int64(v))) }
	flag := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	i(c.Nodes)
	i(c.Mesh.Width)
	i(c.Mesh.Height)
	u(uint64(c.Mesh.RouterStages))
	u(uint64(c.Mesh.LinkCycles))
	u(uint64(c.Mesh.LocalCycles))
	i(c.L1.SizeBytes)
	i(c.L1.Ways)
	u(uint64(c.L1HitLatency))
	u(uint64(c.L2HitLatency))
	u(uint64(c.MemLatency))
	u(uint64(c.Costs.BeginCycles))
	u(uint64(c.Costs.CommitCycles))
	u(uint64(c.Costs.AbortFixed))
	u(uint64(c.Costs.AbortPerEntry))
	u(uint64(c.Costs.OverflowCycles))
	i(int(c.Scheme))
	u(uint64(c.BusyRetryDelay))
	u(uint64(c.BusyRetryJitter))
	u(uint64(c.DirOccupancy))
	u(uint64(c.L1Occupancy))
	i(c.TxLBEntries)
	i(c.SignatureBits)
	u(uint64(c.FixedValidityTimeout))
	flag(c.DisableValidity)
	i(c.ValidityTimeoutMult)
	u(uint64(c.NotifyGuardOverride))
	u(uint64(c.NotifyMaxWait))
	u(uint64(c.MaxCycles))
	u(c.Seed)
	u(uint64(c.SampleInterval))
	return b, nil
}

// SchemeByName resolves a case-insensitive scheme name (the String()
// renderings: "Baseline", "Backoff", "RMW-Pred", "PUNO", …) to its Scheme
// value, with an error listing the valid names on a miss.
func SchemeByName(name string) (Scheme, error) {
	names := make([]string, 0, int(numSchemes))
	for s := Scheme(0); s < numSchemes; s++ {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
		names = append(names, s.String())
	}
	return 0, fmt.Errorf("machine: unknown scheme %q (have %s)", name, strings.Join(names, ", "))
}
