package machine

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"

	"repro/internal/probe"
	"repro/internal/sim"
)

// codecResult runs a small contended workload (timeline sampling on, so
// every Result field family is populated) and returns the arena-independent
// clone the cache would store.
func codecResult(t *testing.T, seed uint64) *Result {
	t.Helper()
	cfg := smallConfig(SchemePUNO, seed)
	cfg.SampleInterval = 5_000
	wl := counterWorkload{name: "codec", txPerCPU: 6, counters: 4, incrsPer: 3, think: 50}
	_, res := runWorkload(t, cfg, wl)
	return res.Clone()
}

func TestResultRoundTrip(t *testing.T) {
	res := codecResult(t, 7)
	if res.Aborts == 0 || len(res.Timeline) == 0 || len(res.FalseAbortHist) == 0 {
		t.Fatalf("fixture run too tame to exercise the codec: %+v", res)
	}
	raw, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("decode(encode(r)) != r\n got %+v\nwant %+v", got, res)
	}
}

// Encoding a synthetic Result with every field family explicitly nonzero
// (including fields a short run can leave at zero) must round-trip exactly.
func TestResultRoundTripSynthetic(t *testing.T) {
	res := &Result{
		Workload:        "synthetic",
		Scheme:          SchemeATS,
		Cycles:          1 << 40,
		Commits:         3,
		Aborts:          5,
		AbortsByCause:   [numCauses]uint64{1, 2, 3, 4},
		TxGETXIssued:    9,
		TxGETXAccesses:  8,
		GETXOutcomes:    [numOutcomes]uint64{10, 11, 12, 13},
		FalseAbortHist:  []uint64{0, 2, 0, 1},
		GoodCycles:      100,
		DiscardedCycles: 200,
		DirTxGETXBusy:   14, DirTxGETXServices: 15,
		DirBusyAll: 16, DirBusyNacks: 17,
		DirUnicasts: 18, DirMulticastFwds: 19,
		Mispredictions: 20,
		Nacks:          21, Retries: 22,
		BackoffCycles: 23, RestartWaitCycle: 24, NotifiedBackoffs: 25,
		PerNodeCommits: []uint64{1, 0, 2},
		PerNodeAborts:  []uint64{0, 4, 0},
		Timeline: []Sample{
			{Cycle: 100, Commits: 1, Aborts: 2, Traffic: 3, LiveTxs: 4},
			{Cycle: 200, Commits: 5, Aborts: 6, Traffic: 7, LiveTxs: 0},
		},
	}
	for c := range res.Net.Messages {
		res.Net.Messages[c] = uint64(30 + c)
		res.Net.Flits[c] = uint64(40 + c)
		res.Net.RouterTraversal[c] = uint64(50 + c)
	}
	res.Net.TotalLatency = 60
	res.Net.QueueingDelay = 61
	raw, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("synthetic round trip mismatch\n got %+v\nwant %+v", got, res)
	}
}

// The encoding must be byte-stable: two independent in-process runs of the
// same (config, workload, seed) point encode to identical bytes. This is
// the property that lets the result cache prove freshness by construction.
func TestResultEncodingByteStable(t *testing.T) {
	a, err := EncodeResult(codecResult(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResult(codecResult(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two runs of the same point encoded differently (%d vs %d bytes)", len(a), len(b))
	}
	c, err := EncodeResult(codecResult(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds encoded identically")
	}
}

func TestResultTruncationDetected(t *testing.T) {
	raw, err := EncodeResult(codecResult(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeResult(raw[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", cut, len(raw))
		}
	}
}

func TestResultCorruptionDetected(t *testing.T) {
	raw, err := EncodeResult(codecResult(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x41
		if _, err := DecodeResult(mut); err == nil {
			t.Fatalf("flipping byte %d of %d decoded without error", i, len(raw))
		}
	}
	if _, err := DecodeResult(append(raw, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestEncodeResultRejectsInvalid(t *testing.T) {
	if _, err := EncodeResult(&Result{Scheme: numSchemes}); err == nil {
		t.Fatal("out-of-range scheme encoded")
	}
	if _, err := EncodeResult(&Result{PerNodeCommits: []uint64{1}}); err == nil {
		t.Fatal("mismatched per-node slices encoded")
	}
	if _, err := EncodeResult(&Result{Timeline: []Sample{{LiveTxs: -1}}}); err == nil {
		t.Fatal("negative live-tx count encoded")
	}
}

// artifact builds a checksum-valid punores/1 body by hand, for probing the
// decoder's structural checks (which sit behind the checksum gate).
func artifact(build func(u func(uint64), raw func(...byte))) []byte {
	b := []byte(resMagic)
	build(
		func(v uint64) { b = binary.AppendUvarint(b, v) },
		func(p ...byte) { b = append(b, p...) },
	)
	h := fnv.New32a()
	h.Write(b)
	return h.Sum(b)
}

func TestDecodeResultRejectsFormatDrift(t *testing.T) {
	cases := map[string][]byte{
		"unknown scheme": artifact(func(u func(uint64), raw func(...byte)) {
			u(1)
			raw('w')
			u(uint64(numSchemes)) // scheme beyond this build's range
			u(0)                  // cycles — truncation after this is fine; scheme check must fire first on full decode
		}),
		"wrong cause count": artifact(func(u func(uint64), raw func(...byte)) {
			u(1)
			raw('w')
			u(0) // scheme
			u(0) // cycles
			u(0) // commits
			u(0) // aborts
			u(uint64(numCauses + 1))
		}),
		"implausible hist length": artifact(func(u func(uint64), raw func(...byte)) {
			u(1)
			raw('w')
			u(0) // scheme
			u(0) // cycles
			u(0) // commits
			u(0) // aborts
			u(uint64(numCauses))
			for i := 0; i < int(numCauses); i++ {
				u(0)
			}
			u(0) // txGETXIssued
			u(0) // txGETXAccesses
			u(uint64(numOutcomes))
			for i := 0; i < int(numOutcomes); i++ {
				u(0)
			}
			u(1 << 30) // hist length far past the plausibility bound
		}),
		"bad magic": append([]byte("punores/9"), make([]byte, 8)...),
	}
	for name, raw := range cases {
		if _, err := DecodeResult(raw); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestConfigCanonicalDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemePUNO
	cfg.Seed = 42
	a, err := cfg.AppendCanonical(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.AppendCanonical(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same config encoded differently across calls")
	}
	if !bytes.HasPrefix(a, []byte(cfgMagic)) {
		t.Fatalf("canonical encoding does not start with %q", cfgMagic)
	}

	// Every result-influencing knob must move the bytes.
	mutations := map[string]func(*Config){
		"Seed":            func(c *Config) { c.Seed++ },
		"Scheme":          func(c *Config) { c.Scheme = SchemeBackoff },
		"Nodes":           func(c *Config) { c.Nodes = 64; c.Mesh.Width = 8; c.Mesh.Height = 8 },
		"MemLatency":      func(c *Config) { c.MemLatency += 10 },
		"SignatureBits":   func(c *Config) { c.SignatureBits = 512 },
		"DisableValidity": func(c *Config) { c.DisableValidity = true },
		"BusyRetryDelay":  func(c *Config) { c.BusyRetryDelay++ },
		"SampleInterval":  func(c *Config) { c.SampleInterval = 1000 },
		"MaxCycles":       func(c *Config) { c.MaxCycles++ },
		"L1 size":         func(c *Config) { c.L1.SizeBytes *= 2 },
		"TxLBEntries":     func(c *Config) { c.TxLBEntries++ },
	}
	for name, mutate := range mutations {
		mc := cfg
		mutate(&mc)
		got, err := mc.AppendCanonical(nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bytes.Equal(a, got) {
			t.Errorf("mutating %s did not change the canonical encoding", name)
		}
	}

	// Shards is an execution strategy (bit-identical results certified by
	// the PDES determinism suite), so it must NOT move the bytes.
	sc := cfg
	sc.Shards = 4
	got, err := sc.AppendCanonical(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, got) {
		t.Error("Shards changed the canonical encoding; equivalent runs would fragment the cache")
	}
}

func TestConfigCanonicalRefusesLiveState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceFn = func(sim.Time, int, string) {}
	if _, err := cfg.AppendCanonical(nil); err == nil {
		t.Fatal("config with TraceFn encoded")
	}
	cfg = DefaultConfig()
	cfg.EventSink = &probe.Buffer{}
	if _, err := cfg.AppendCanonical(nil); err == nil {
		t.Fatal("config with EventSink encoded")
	}
}

func TestSchemeByName(t *testing.T) {
	for s := Scheme(0); s < numSchemes; s++ {
		got, err := SchemeByName(strings.ToUpper(s.String()))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got != s {
			t.Fatalf("SchemeByName(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if _, err := SchemeByName("no-such-scheme"); err == nil {
		t.Fatal("unknown scheme name resolved")
	} else if !strings.Contains(err.Error(), "PUNO") {
		t.Fatalf("miss error does not list valid names: %v", err)
	}
}
