package machine

import (
	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/sim"
)

// Scheme selects the contention-management configuration of a run
// (Sec. IV-A of the paper plus the ablation variants called out in
// DESIGN.md).
type Scheme int

// Schemes.
const (
	SchemeBaseline    Scheme = iota // multicast + fixed 20-cycle backoff
	SchemeBackoff                   // multicast + randomized linear restart backoff
	SchemeRMWPred                   // multicast + read-modify-write load promotion
	SchemePUNO                      // predictive unicast + notification backoff
	SchemeUnicastOnly               // ablation: predictive unicast, baseline backoff
	SchemeNotifyOnly                // ablation: notification backoff, multicast
	SchemeATS                       // adaptive transaction scheduling (Yoo & Lee; Sec. V related work)
	SchemePUNOPush                  // PUNO + commit wakeup (the paper's future-work speculative action)
	numSchemes
)

// Schemes returns the four configurations the paper's figures compare.
func Schemes() []Scheme {
	return []Scheme{SchemeBaseline, SchemeBackoff, SchemeRMWPred, SchemePUNO}
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "Baseline"
	case SchemeBackoff:
		return "Backoff"
	case SchemeRMWPred:
		return "RMW-Pred"
	case SchemePUNO:
		return "PUNO"
	case SchemeUnicastOnly:
		return "PUNO-unicast-only"
	case SchemeNotifyOnly:
		return "PUNO-notify-only"
	case SchemeATS:
		return "ATS"
	case SchemePUNOPush:
		return "PUNO-Push"
	default:
		return "Scheme(?)"
	}
}

// Config describes one simulated machine. DefaultConfig reproduces the
// paper's Table II system.
type Config struct {
	Nodes int        // must equal Mesh.Width*Mesh.Height
	Mesh  noc.Config // interconnect timing

	L1           cache.Config
	L1HitLatency sim.Time
	L2HitLatency sim.Time // shared L2 bank access
	MemLatency   sim.Time // cold-miss fill from the memory controller

	Costs  htm.Costs
	Scheme Scheme

	// BusyRetryDelay is the wait before re-sending a request that was
	// NACKed by a busy directory entry (plus up to BusyRetryJitter).
	BusyRetryDelay  sim.Time
	BusyRetryJitter sim.Time

	// Controller occupancies: each message handled by a directory/L2 bank
	// (DirOccupancy) or an L1 controller (L1Occupancy) holds that
	// controller for this many cycles; arrivals queue behind it. This is
	// what makes polling and multicast storms cost real time, as they do
	// in a bandwidth-limited memory system.
	DirOccupancy sim.Time
	L1Occupancy  sim.Time

	// TxLBEntries sizes the per-node transaction length buffer; PBufferMin
	// timeout and related predictor knobs come from PredictorConfig.
	TxLBEntries int

	// SignatureBits, when nonzero, switches conflict detection to
	// Bloom-filter signatures of that size (LogTM-SE ablation).
	SignatureBits int

	// DisableAdaptiveTimeout fixes the P-Buffer validity timeout (ablation).
	FixedValidityTimeout sim.Time
	DisableValidity      bool
	// ValidityTimeoutMult scales the adaptive validity timeout relative to
	// the average transaction length (0 = package default).
	ValidityTimeoutMult int

	// NotifyGuardOverride, when nonzero, replaces the computed 2x average
	// cache-to-cache latency guard band (ablation).
	NotifyGuardOverride sim.Time
	// NotifyMaxWait, when nonzero, caps a single notification-guided
	// backoff (ablation).
	NotifyMaxWait sim.Time

	// MaxCycles aborts the run if the clock passes it (hang protection).
	MaxCycles sim.Time

	Seed uint64

	// Shards, when > 1, runs the machine under the conservative PDES
	// coordinator (internal/pdes): nodes are partitioned into contiguous
	// mesh regions, each simulated by its own worker goroutine, with
	// cross-shard messages merged in (cycle, seq) order so the trajectory —
	// results and event traces — is bit-identical to the serial run. 0 or 1
	// selects today's serial path, byte-for-byte unchanged. Configurations
	// the coordinator cannot shard (SampleInterval, TraceFn, SchemeATS,
	// workloads without a footprint hint) fall back to serial silently:
	// sharding is an execution strategy, never an observable one.
	Shards int

	// TraceFn, when non-nil, receives a line for every notable protocol
	// and core event (debugging aid; adds no cost when nil).
	TraceFn func(cycle sim.Time, node int, event string)

	// EventSink, when non-nil, receives a probe.Event for every coherence
	// message sent, transaction begin/commit/abort, detected conflict, and
	// directory forwarding decision. The hooks cost one nil check each when
	// unset and never change the simulated trajectory: a run with a sink
	// and a run without one are cycle-identical. The sink is called from
	// the simulation goroutine only.
	EventSink probe.Sink

	// SampleInterval, when nonzero, records a Result.Timeline sample every
	// that many cycles (commit/abort/traffic deltas — the dynamics view).
	SampleInterval sim.Time
}

// DefaultConfig is the paper's 16-node system (Table II): 32KB 4-way L1,
// 1-cycle L1, 20-cycle L2, 200-cycle memory, 4x4 mesh with 4-stage routers,
// 16-entry P-Buffer (implied by one entry per node), 32-entry TxLB.
func DefaultConfig() Config {
	return Config{
		Nodes:           16,
		Mesh:            noc.DefaultConfig(),
		L1:              cache.Config{SizeBytes: 32 * 1024, Ways: 4},
		L1HitLatency:    1,
		L2HitLatency:    20,
		MemLatency:      200,
		Costs:           htm.DefaultCosts(),
		Scheme:          SchemeBaseline,
		BusyRetryDelay:  10,
		BusyRetryJitter: 30,
		DirOccupancy:    4,
		L1Occupancy:     2,
		TxLBEntries:     32,
		MaxCycles:       2_000_000_000,
		Seed:            1,
	}
}
