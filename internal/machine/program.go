// Package machine assembles the full chip multiprocessor: N nodes (in-order
// core + private L1 + shared L2 bank + directory slice) on the 2D-mesh
// interconnect, running transactional programs under a selectable
// contention-management scheme. It implements the requester/sharer (L1)
// half of the MESI+HTM protocol whose home-directory half lives in
// internal/coherence, and collects every statistic the paper's figures
// need.
package machine

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// OpKind is the kind of one transactional operation.
type OpKind uint8

// Operation kinds. OpIncr is a load followed by a store of value+1 to the
// same word — the read-modify-write idiom that trains the RMW predictor and
// that tests use to check serializability (the final memory value must
// equal the number of committed increments).
const (
	OpRead OpKind = iota
	OpWrite
	OpIncr
	OpCompute
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpIncr:
		return "incr"
	case OpCompute:
		return "compute"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one operation inside a transaction.
type Op struct {
	Kind   OpKind
	Addr   mem.Addr // Read/Write/Incr
	Value  uint64   // Write: the value stored
	Cycles sim.Time // Compute: busy cycles
}

// TxInstance is one dynamic transaction to execute: a static transaction id
// (its TX_BEGIN site), the operation list, and the non-transactional think
// time that follows a successful commit.
type TxInstance struct {
	StaticID    int
	Ops         []Op
	ThinkCycles sim.Time
}

// Program supplies the sequence of transactions one hardware thread runs.
// Next is called after each commit; returning ok=false ends the thread.
// Implementations must be deterministic given the supplied RNG.
type Program interface {
	Next(rng *sim.RNG) (tx TxInstance, ok bool)
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(rng *sim.RNG) (TxInstance, bool)

// Next implements Program.
func (f ProgramFunc) Next(rng *sim.RNG) (TxInstance, bool) { return f(rng) }

// SliceProgram runs a fixed list of transactions in order.
type SliceProgram struct {
	Txs []TxInstance
	pos int
}

// Next implements Program.
func (p *SliceProgram) Next(*sim.RNG) (TxInstance, bool) {
	if p.pos >= len(p.Txs) {
		return TxInstance{}, false
	}
	tx := p.Txs[p.pos]
	p.pos++
	return tx, true
}

// Workload builds one Program per node plus descriptive metadata. It is the
// unit the experiment harness sweeps over.
type Workload interface {
	// Name is the workload's report label (e.g. "intruder").
	Name() string
	// HighContention marks the paper's high-contention set (bayes,
	// intruder, labyrinth, yada).
	HighContention() bool
	// Program returns node's thread. rng is private to the node.
	Program(node int, rng *sim.RNG) Program
}

// FootprintHinter is an optional Workload extension: FootprintLines returns
// an upper-bound estimate of the distinct cache lines an n-node run
// touches, letting Machine.Reset pre-size the line interner (and with it
// every dense LineID-indexed table) so the run's memory system never
// rehashes or reallocates mid-simulation. The hint is an optimization only;
// the tables grow on demand when it is absent or low.
type FootprintHinter interface {
	FootprintLines(nodes int) int
}
