package machine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
)

// punores/1 is the deterministic binary round-trip encoding of a Result —
// the artifact format of the content-addressed result cache (internal/
// serve). It follows the punoevt/1 conventions: a version magic, uvarint
// framing for every quantity, explicit array-length prefixes (so a future
// cause/outcome/class added to the model is a detected format change, not
// a silent misparse), and a trailing FNV-32a checksum over everything
// before it, verified before any field is decoded. Truncation, bit
// corruption, and trailing garbage all fail loudly.
//
// Layout (after the magic, everything uvarint unless noted):
//
//	magic   "punores/1"                      9 bytes
//	uvarint len(workload), workload bytes
//	uvarint scheme                           (< numSchemes)
//	uvarint cycles, commits, aborts
//	uvarint cause count C,   C × count       (C must equal numCauses)
//	uvarint txGETXIssued, txGETXAccesses
//	uvarint outcome count O, O × count       (O must equal numOutcomes)
//	uvarint len(falseAbortHist), values
//	uvarint goodCycles, discardedCycles
//	uvarint net class count K, K × {messages, flits, traversals}
//	uvarint netTotalLatency, netQueueingDelay
//	uvarint 7 directory counters, 5 requester counters
//	uvarint node count N, N × perNodeCommits, N × perNodeAborts
//	uvarint len(timeline), samples × {cycle, commits, aborts, traffic, liveTxs}
//	fnv32a  checksum over all preceding bytes, 4 bytes big-endian
//
// The encoding is canonical: one Result has exactly one byte rendering, so
// byte equality of encodings is value equality of Results — the property
// the serve smoke test leans on when it compares a cache-served artifact
// against a direct simulation run.
const resMagic = "punores/1"

// EncodeResult renders r in the punores/1 binary format.
func EncodeResult(r *Result) ([]byte, error) { return AppendResult(nil, r) }

// AppendResult appends the punores/1 encoding of r (magic through
// checksum) to dst and returns the extended slice.
func AppendResult(dst []byte, r *Result) ([]byte, error) {
	if int(r.Scheme) < 0 || r.Scheme >= numSchemes {
		return nil, fmt.Errorf("machine: result has invalid scheme %d", int(r.Scheme))
	}
	if len(r.PerNodeCommits) != len(r.PerNodeAborts) {
		return nil, fmt.Errorf("machine: result per-node slices disagree (%d commits, %d aborts)",
			len(r.PerNodeCommits), len(r.PerNodeAborts))
	}
	b := append(dst, resMagic...)
	u := func(v uint64) { b = binary.AppendUvarint(b, v) }
	u(uint64(len(r.Workload)))
	b = append(b, r.Workload...)
	u(uint64(r.Scheme))
	u(uint64(r.Cycles))
	u(r.Commits)
	u(r.Aborts)
	u(uint64(len(r.AbortsByCause)))
	for _, c := range r.AbortsByCause {
		u(c)
	}
	u(r.TxGETXIssued)
	u(r.TxGETXAccesses)
	u(uint64(len(r.GETXOutcomes)))
	for _, c := range r.GETXOutcomes {
		u(c)
	}
	u(uint64(len(r.FalseAbortHist)))
	for _, c := range r.FalseAbortHist {
		u(c)
	}
	u(r.GoodCycles)
	u(r.DiscardedCycles)
	u(uint64(len(r.Net.Messages)))
	for c := range r.Net.Messages {
		u(r.Net.Messages[c])
		u(r.Net.Flits[c])
		u(r.Net.RouterTraversal[c])
	}
	u(r.Net.TotalLatency)
	u(r.Net.QueueingDelay)
	u(r.DirTxGETXBusy)
	u(r.DirTxGETXServices)
	u(r.DirBusyAll)
	u(r.DirBusyNacks)
	u(r.DirUnicasts)
	u(r.DirMulticastFwds)
	u(r.Mispredictions)
	u(r.Nacks)
	u(r.Retries)
	u(r.BackoffCycles)
	u(r.RestartWaitCycle)
	u(r.NotifiedBackoffs)
	u(uint64(len(r.PerNodeCommits)))
	for _, c := range r.PerNodeCommits {
		u(c)
	}
	for _, c := range r.PerNodeAborts {
		u(c)
	}
	u(uint64(len(r.Timeline)))
	for _, s := range r.Timeline {
		if s.LiveTxs < 0 {
			return nil, fmt.Errorf("machine: timeline sample has negative live-tx count %d", s.LiveTxs)
		}
		u(uint64(s.Cycle))
		u(s.Commits)
		u(s.Aborts)
		u(s.Traffic)
		u(uint64(s.LiveTxs))
	}
	h := fnv.New32a()
	h.Write(b[len(dst):])
	return h.Sum(b), nil
}

// DecodeResult decodes one complete punores/1 artifact. The trailing
// checksum is verified before decoding, so truncated and corrupted
// artifacts are rejected rather than yielding a plausible partial Result.
func DecodeResult(raw []byte) (*Result, error) {
	if len(raw) < len(resMagic)+4 {
		return nil, fmt.Errorf("machine: result artifact truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(resMagic)]) != resMagic {
		return nil, fmt.Errorf("machine: bad result magic %q (want %q)", raw[:len(resMagic)], resMagic)
	}
	body, sum := raw[:len(raw)-4], raw[len(raw)-4:]
	h := fnv.New32a()
	h.Write(body)
	if got := h.Sum32(); got != binary.BigEndian.Uint32(sum) {
		return nil, fmt.Errorf("machine: result checksum mismatch (artifact truncated or corrupted)")
	}
	d := resDecoder{buf: body[len(resMagic):]}
	r := &Result{}
	r.Workload = d.str("workload")
	scheme := d.u("scheme")
	r.Cycles = sim.Time(d.u("cycles"))
	r.Commits = d.u("commits")
	r.Aborts = d.u("aborts")
	if n := d.count("cause count", uint64(len(r.AbortsByCause))); d.err == nil && n != len(r.AbortsByCause) {
		return nil, fmt.Errorf("machine: result encodes %d abort causes, this build has %d (format drift)",
			n, len(r.AbortsByCause))
	}
	for i := range r.AbortsByCause {
		r.AbortsByCause[i] = d.u("cause")
	}
	r.TxGETXIssued = d.u("txGETXIssued")
	r.TxGETXAccesses = d.u("txGETXAccesses")
	if n := d.count("outcome count", uint64(len(r.GETXOutcomes))); d.err == nil && n != len(r.GETXOutcomes) {
		return nil, fmt.Errorf("machine: result encodes %d GETX outcomes, this build has %d (format drift)",
			n, len(r.GETXOutcomes))
	}
	for i := range r.GETXOutcomes {
		r.GETXOutcomes[i] = d.u("outcome")
	}
	nHist := d.count("hist length", 1<<20)
	r.FalseAbortHist = make([]uint64, nHist)
	for i := range r.FalseAbortHist {
		r.FalseAbortHist[i] = d.u("hist bucket")
	}
	r.GoodCycles = d.u("goodCycles")
	r.DiscardedCycles = d.u("discardedCycles")
	if n := d.count("net class count", uint64(len(r.Net.Messages))); d.err == nil && n != len(r.Net.Messages) {
		return nil, fmt.Errorf("machine: result encodes %d network classes, this build has %d (format drift)",
			n, len(r.Net.Messages))
	}
	for c := range r.Net.Messages {
		r.Net.Messages[c] = d.u("net messages")
		r.Net.Flits[c] = d.u("net flits")
		r.Net.RouterTraversal[c] = d.u("net traversals")
	}
	r.Net.TotalLatency = d.u("net latency")
	r.Net.QueueingDelay = d.u("net queueing")
	r.DirTxGETXBusy = d.u("dirTxGETXBusy")
	r.DirTxGETXServices = d.u("dirTxGETXServices")
	r.DirBusyAll = d.u("dirBusyAll")
	r.DirBusyNacks = d.u("dirBusyNacks")
	r.DirUnicasts = d.u("dirUnicasts")
	r.DirMulticastFwds = d.u("dirMulticastFwds")
	r.Mispredictions = d.u("mispredictions")
	r.Nacks = d.u("nacks")
	r.Retries = d.u("retries")
	r.BackoffCycles = d.u("backoffCycles")
	r.RestartWaitCycle = d.u("restartWaitCycle")
	r.NotifiedBackoffs = d.u("notifiedBackoffs")
	nNodes := d.count("node count", 1<<20)
	if nNodes > 0 {
		r.PerNodeCommits = make([]uint64, nNodes)
		r.PerNodeAborts = make([]uint64, nNodes)
		for i := range r.PerNodeCommits {
			r.PerNodeCommits[i] = d.u("per-node commits")
		}
		for i := range r.PerNodeAborts {
			r.PerNodeAborts[i] = d.u("per-node aborts")
		}
	}
	nSamples := d.count("timeline length", 1<<32)
	if nSamples > 0 {
		r.Timeline = make([]Sample, nSamples)
		for i := range r.Timeline {
			r.Timeline[i] = Sample{
				Cycle:   sim.Time(d.u("sample cycle")),
				Commits: d.u("sample commits"),
				Aborts:  d.u("sample aborts"),
				Traffic: d.u("sample traffic"),
			}
			live := d.u("sample live txs")
			if d.err == nil && live > 1<<20 {
				return nil, fmt.Errorf("machine: timeline sample %d has implausible live-tx count %d", i, live)
			}
			r.Timeline[i].LiveTxs = int(live)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if scheme >= uint64(numSchemes) {
		return nil, fmt.Errorf("machine: result encodes unknown scheme %d", scheme)
	}
	r.Scheme = Scheme(scheme)
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("machine: %d trailing bytes after result artifact", len(d.buf))
	}
	return r, nil
}

// resDecoder is a cursor over the checksummed body; the first framing
// error sticks and every later read is a no-op, so the decode sequence
// above needs one check at the end.
type resDecoder struct {
	buf []byte
	err error
}

func (d *resDecoder) u(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("machine: result artifact truncated reading %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *resDecoder) str(what string) string {
	n := d.u(what + " length")
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("machine: result artifact truncated reading %s (%d bytes claimed, %d left)",
			what, n, len(d.buf))
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// count reads a length prefix and bounds it (corrupt counts would
// otherwise drive huge allocations before the per-item reads fail).
func (d *resDecoder) count(what string, max uint64) int {
	v := d.u(what)
	if d.err == nil && v > max {
		d.err = fmt.Errorf("machine: implausible %s %d in result artifact", what, v)
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}
