package machine

import (
	"reflect"
	"testing"

	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/noc"
)

// hintedCounters adds the footprint hint shard mode requires: every counter
// line plus slack for the disjoint think/compute traffic.
type hintedCounters struct{ counterWorkload }

func (w hintedCounters) FootprintLines(nodes int) int { return w.counters + nodes + 64 }

// runSingleShard drives one full-range shard through a complete run with a
// test-local replay of the coordinator's xsend contract: every remote send
// reserves links on a global mesh and re-injects at the reserved delivery
// time. With one shard there is no window interleaving, so the trajectory —
// and the merged Result — must be value-identical to the serial run.
func runSingleShard(t *testing.T, sh *Machine, gmesh *noc.Mesh, cfg Config, wl Workload) *Result {
	t.Helper()
	for i := 0; i < cfg.Nodes; i++ {
		sh.StartNode(i)
	}
	eng := sh.Engine()
	for {
		if _, _, ok := eng.Peek(); !ok {
			break
		}
		if !eng.Step() {
			break
		}
		if err := sh.RunErr(); err != nil {
			t.Fatal(err)
		}
		if eng.Now() > cfg.MaxCycles {
			t.Fatal("sharded run exceeded MaxCycles")
		}
	}
	if sh.Active() != 0 {
		t.Fatalf("%d nodes still active after the event queue drained", sh.Active())
	}
	part := sh.FinalizeShard()
	return MergeShardResults(wl.Name(), cfg.Scheme, cfg.Nodes, []*Result{part}, gmesh.Stats())
}

func TestSingleShardMatchesSerial(t *testing.T) {
	wl := hintedCounters{counterWorkload{name: "counters", txPerCPU: 8, counters: 8, incrsPer: 2, think: 30}}
	cfg := smallConfig(SchemePUNO, 42)
	_, serial := runWorkload(t, cfg, wl)

	it := mem.NewInterner()
	it.Grow(wl.FootprintLines(cfg.Nodes))
	it.SetShared(true)

	var sh *Machine
	var gmesh *noc.Mesh
	xsend := func(msg *coherence.Msg) {
		at := gmesh.ReserveRoute(sh.Engine().Now(), msg.Src, msg.Dst, msg.Class(), msg.Flits())
		sh.InjectDeliver(at, msg)
	}
	sh, err := NewShard(cfg, wl, 0, cfg.Nodes, it, xsend)
	if err != nil {
		t.Fatal(err)
	}
	gmesh = noc.New(cfg.Mesh, sh.Engine())

	merged := runSingleShard(t, sh, gmesh, cfg, wl)
	if !reflect.DeepEqual(serial, merged) {
		t.Fatalf("single-shard run diverged from serial:\nserial: %+v\nshard:  %+v", serial, merged)
	}

	// The full-range shard interns lines in the serial touch order, so even
	// the (normally order-unstable) line table matches.
	serialM, _ := runWorkload(t, cfg, wl)
	if !reflect.DeepEqual(serialM.LineTable(), sh.LineTable()) {
		t.Fatal("single-shard line table diverged from serial touch order")
	}

	// ResetShard reuses the arena for a fresh, equally identical run.
	it.Reset()
	it.SetShared(true)
	if err := sh.ResetShard(cfg, wl, 0, cfg.Nodes, it, xsend); err != nil {
		t.Fatal(err)
	}
	gmesh.Reset(cfg.Mesh, sh.Engine())
	again := runSingleShard(t, sh, gmesh, cfg, wl)
	if !reflect.DeepEqual(serial, again) {
		t.Fatalf("post-ResetShard run diverged from serial:\nserial: %+v\nshard:  %+v", serial, again)
	}
}

// A partial-range shard builds controllers only for owned nodes while
// consuming the root RNG exactly as the serial build does, so ownership
// never perturbs another shard's programs.
func TestPartialShardBuildsOwnedRangeOnly(t *testing.T) {
	wl := hintedCounters{counterWorkload{name: "counters", txPerCPU: 4, counters: 8, incrsPer: 2, think: 30}}
	cfg := smallConfig(SchemePUNO, 7)
	it := mem.NewInterner()
	it.Grow(wl.FootprintLines(cfg.Nodes))
	it.SetShared(true)

	lo, hi := cfg.Nodes/2, cfg.Nodes
	sh, err := NewShard(cfg, wl, lo, hi, it, func(*coherence.Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Nodes; i++ {
		owned := i >= lo && i < hi
		if got := sh.nodes[i] != nil; got != owned {
			t.Errorf("node %d built=%v, want %v", i, got, owned)
		}
		if got := sh.dirs[i] != nil; got != owned {
			t.Errorf("directory %d built=%v, want %v", i, got, owned)
		}
	}
	if sh.Active() != 0 {
		t.Fatalf("fresh shard reports %d active nodes", sh.Active())
	}
	if err := sh.RunErr(); err != nil {
		t.Fatalf("fresh shard reports error: %v", err)
	}
}
