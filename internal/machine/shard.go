package machine

import (
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

// This file is the machine half of the conservative-PDES contract with
// internal/pdes. A shard is an ordinary Machine that owns a contiguous node
// range [lo, hi): it builds controllers (and consumes workload programs)
// only for owned nodes, runs their events on its private engine and
// two-level wheel, delivers node-local messages over its private mesh, and
// hands every remote send to the coordinator's xsend hook. The coordinator
// owns the window loop, the (cycle, seq) merge, the one global mesh whose
// link state all remote traffic contends on, and the shared interner.

// NewShard builds a machine owning nodes [lo, hi) of cfg. it is the
// coordinator-owned shared interner (already reset, pre-sized to the
// workload footprint, and armed with SetShared); xsend receives every
// remote send during window execution.
func NewShard(cfg Config, wl Workload, lo, hi int, it *mem.Interner, xsend func(*coherence.Msg)) (*Machine, error) {
	m := &Machine{}
	if err := m.resetShard(cfg, wl, lo, hi, it, xsend); err != nil {
		return nil, err
	}
	return m, nil
}

// ResetShard is Reset for a shard arena: same reuse guarantees, shard-mode
// construction.
func (m *Machine) ResetShard(cfg Config, wl Workload, lo, hi int, it *mem.Interner, xsend func(*coherence.Msg)) error {
	return m.resetShard(cfg, wl, lo, hi, it, xsend)
}

// StartNode schedules owned node i's first fetch and counts it live — the
// per-node body of the serial Run's start loop. The coordinator brackets
// each call with Engine().SetSeq so start events carry their serial
// sequence numbers regardless of which shard schedules them.
func (m *Machine) StartNode(i int) {
	m.active++
	m.nodes[i].start()
}

// InjectDeliver schedules a remote message's arrival at its destination
// (owned by this shard) at absolute time t. The caller brackets it with
// Engine().SetSeq so the arrival event carries the serial run's sequence
// number for that delivery.
//
//puno:hot
func (m *Machine) InjectDeliver(t sim.Time, msg *coherence.Msg) {
	m.eng.AtEvent(t, m, msg, mevDeliver<<32|uint64(uint32(msg.Dst)))
}

// Active returns the number of owned nodes still running their programs.
func (m *Machine) Active() int { return m.active }

// BalanceMsgPools levels the message pools of a shard set. A remote
// message pops from the sender's pool but is freed into the receiver's,
// so any net traffic imbalance starves the net-sender shards — they
// allocate fresh messages every run while net-receiver pools hoard. The
// coordinator calls this between runs; pool contents never affect
// behavior (fill sites overwrite messages wholesale).
func BalanceMsgPools(ms []*Machine) {
	if len(ms) < 2 {
		return
	}
	total := 0
	for _, m := range ms {
		total += len(m.msgFree)
	}
	share := total / len(ms)
	var spare []*coherence.Msg
	for _, m := range ms {
		if n := len(m.msgFree); n > share {
			spare = append(spare, m.msgFree[share:]...)
			m.msgFree = m.msgFree[:share]
		}
	}
	for _, m := range ms {
		if need := share - len(m.msgFree); need > 0 {
			n := len(spare)
			m.msgFree = append(m.msgFree, spare[n-need:]...)
			spare = spare[:n-need]
		}
	}
	// The division remainder (at most len(ms)-1 messages) goes to the
	// first pool rather than leaking out of the recycler.
	ms[0].msgFree = append(ms[0].msgFree, spare...)
}

// RunErr returns the error a handler raised via fail (nil while healthy).
// The coordinator polls it after every window in shard order, so a
// mid-window failure surfaces deterministically.
func (m *Machine) RunErr() error { return m.runErr }

// FinalizeShard computes the shard's slice of the run's Result after the
// event queues drain: completion time over owned nodes, the private mesh's
// (node-local) traffic, and the owned directories' counters. The
// coordinator merges shard results with MergeShardResults.
func (m *Machine) FinalizeShard() *Result {
	for i := m.lo; i < m.hi; i++ {
		if n := m.nodes[i]; n.doneAt > m.res.Cycles {
			m.res.Cycles = n.doneAt
		}
	}
	m.res.Net = m.mesh.Stats()
	for i := m.lo; i < m.hi; i++ {
		ds := m.dirs[i].Stats()
		m.res.DirTxGETXBusy += ds.TxGETXBusy
		m.res.DirTxGETXServices += ds.TxGETX
		m.res.DirBusyAll += ds.BusyCycles
		m.res.DirBusyNacks += ds.BusyNacks
		m.res.DirUnicasts += ds.UnicastForwards
		m.res.DirMulticastFwds += ds.MulticastFwds
		m.res.Mispredictions += ds.Mispredictions
	}
	return &m.res
}

// MergeShardResults folds per-shard results into one machine-level Result,
// plus the global mesh's routed-traffic statistics: counters sum, per-node
// tallies concatenate element-wise (each shard only writes its owned
// indices), completion time is the max, and the false-abort histogram adds
// bucket-wise. The merged result is value-identical to the serial run's.
func MergeShardResults(workload string, scheme Scheme, nodes int, parts []*Result, routed noc.Stats) *Result {
	r := &Result{}
	r.reset(workload, scheme, nodes)
	r.Net = routed
	for _, p := range parts {
		if p.Cycles > r.Cycles {
			r.Cycles = p.Cycles
		}
		r.Commits += p.Commits
		r.Aborts += p.Aborts
		for c := range p.AbortsByCause {
			r.AbortsByCause[c] += p.AbortsByCause[c]
		}
		r.TxGETXIssued += p.TxGETXIssued
		r.TxGETXAccesses += p.TxGETXAccesses
		for o := range p.GETXOutcomes {
			r.GETXOutcomes[o] += p.GETXOutcomes[o]
		}
		for k, c := range p.FalseAbortHist {
			if c != 0 {
				for len(r.FalseAbortHist) <= k {
					r.FalseAbortHist = append(r.FalseAbortHist, 0)
				}
				r.FalseAbortHist[k] += c
			}
		}
		r.GoodCycles += p.GoodCycles
		r.DiscardedCycles += p.DiscardedCycles
		r.Net.Accumulate(p.Net)
		r.DirTxGETXBusy += p.DirTxGETXBusy
		r.DirTxGETXServices += p.DirTxGETXServices
		r.DirBusyAll += p.DirBusyAll
		r.DirBusyNacks += p.DirBusyNacks
		r.DirUnicasts += p.DirUnicasts
		r.DirMulticastFwds += p.DirMulticastFwds
		r.Mispredictions += p.Mispredictions
		r.Nacks += p.Nacks
		r.Retries += p.Retries
		r.BackoffCycles += p.BackoffCycles
		r.RestartWaitCycle += p.RestartWaitCycle
		r.NotifiedBackoffs += p.NotifiedBackoffs
		for i, v := range p.PerNodeCommits {
			r.PerNodeCommits[i] += v
		}
		for i, v := range p.PerNodeAborts {
			r.PerNodeAborts[i] += v
		}
	}
	return r
}
