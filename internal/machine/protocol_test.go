package machine

// Protocol-edge regression tests: the races and recovery paths that were
// sources of bugs during bring-up, plus continuous invariant checking
// while a contended run is in flight.

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestInvariantsHoldMidRun checks the SWMR and directory-consistency
// invariants repeatedly *during* a heavily contended run, not just at the
// end — transient protocol states must never be visible as stable
// violations between events.
func TestInvariantsHoldMidRun(t *testing.T) {
	for _, s := range []Scheme{SchemeBaseline, SchemePUNO, SchemePUNOPush} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			wl := counterWorkload{name: "inv", txPerCPU: 10, counters: 4, incrsPer: 2, think: 10}
			cfg := smallConfig(s, 21)
			m, err := New(cfg, wl)
			if err != nil {
				t.Fatal(err)
			}
			checks := 0
			var tick func()
			tick = func() {
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("invariant violated at cycle %d: %v", m.eng.Now(), err)
				}
				checks++
				if m.active > 0 {
					m.eng.After(500, tick)
				}
			}
			m.eng.After(500, tick)
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if checks < 10 {
				t.Fatalf("only %d mid-run checks executed", checks)
			}
		})
	}
}

// TestWritebackRaceServed exercises the PUTX/forward race: a node evicts a
// Modified line while another node's request for it is being forwarded;
// the retained wbWait copy must serve the forward (with the directory's
// WBData for reads) and the system must stay consistent.
func TestWritebackRaceServed(t *testing.T) {
	// Node 0 writes many lines in one tx (they become unpinned M at
	// commit), then thrashes its cache so the M lines get evicted while
	// node 1 concurrently reads them — steady PUTX/FwdGETS traffic.
	wl := wbRaceWorkload{}
	cfg := smallConfig(SchemeBaseline, 3)
	m, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	var wb uint64
	for _, d := range m.dirs {
		wb += d.Stats().Writebacks
	}
	if wb == 0 {
		t.Fatal("workload produced no writebacks; race path not exercised")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every value written by node 0's committed txs must be readable.
	m.DrainCaches()
	for addr, want := range m.CommittedIncrements() {
		if got := m.Backing().LoadWord(addr); got != want {
			t.Fatalf("lost update through writeback race: %#x = %d, want %d", uint64(addr), got, want)
		}
	}
}

type wbRaceWorkload struct{}

func (wbRaceWorkload) Name() string         { return "wbrace" }
func (wbRaceWorkload) HighContention() bool { return false }

func (wbRaceWorkload) Program(node int, _ *sim.RNG) Program {
	shared := func(i int) mem.Addr { return mem.Line(uint64(i) * mem.LineBytes).Word(0) }
	switch node {
	case 0:
		// Writer: increment shared lines, then thrash private lines that
		// alias the same cache sets to force evictions of the shared M
		// lines.
		n := 0
		return ProgramFunc(func(r *sim.RNG) (TxInstance, bool) {
			if n >= 25 {
				return TxInstance{}, false
			}
			n++
			var ops []Op
			ops = append(ops, Op{Kind: OpIncr, Addr: shared(r.Intn(8))})
			for w := 0; w < 6; w++ {
				// Same sets as lines 0..7: stride of 128 lines (the L1 has
				// 128 sets); six stripes overflow the 4 ways and force
				// Modified evictions of earlier transactions' lines.
				alias := mem.Line(uint64(128*(1+r.Intn(6))+r.Intn(8)) * mem.LineBytes)
				ops = append(ops, Op{Kind: OpWrite, Addr: alias.Word(0), Value: 1})
			}
			return TxInstance{StaticID: 50, Ops: ops, ThinkCycles: 20}, true
		})
	case 1, 2, 3:
		// Readers keep pulling the shared lines away from the writer.
		n := 0
		return ProgramFunc(func(r *sim.RNG) (TxInstance, bool) {
			if n >= 25 {
				return TxInstance{}, false
			}
			n++
			var ops []Op
			for i := 0; i < 8; i++ {
				ops = append(ops, Op{Kind: OpRead, Addr: shared(i)})
			}
			return TxInstance{StaticID: 51, Ops: ops, ThinkCycles: 30}, true
		})
	default:
		return &SliceProgram{}
	}
}

// TestUpgradeHazardRecovered: a dataless upgrade whose shared copy is
// stolen mid-flight must refetch rather than install garbage. The counter
// workload under heavy contention hits this path constantly; this test
// additionally asserts the per-word values stay exact.
func TestUpgradeHazardRecovered(t *testing.T) {
	wl := counterWorkload{name: "hazard", txPerCPU: 25, counters: 2, incrsPer: 1, think: 0}
	m, res := runWorkload(t, smallConfig(SchemeBaseline, 17), wl)
	if res.Nacks == 0 {
		t.Fatal("no contention generated; hazard path not exercised")
	}
	m.DrainCaches()
	for addr, want := range m.CommittedIncrements() {
		if got := m.Backing().LoadWord(addr); got != want {
			t.Fatalf("upgrade hazard corrupted %#x: %d want %d", uint64(addr), got, want)
		}
	}
}

// TestWakeupIgnoredWhenStale: wakeups arriving while a node is not backing
// off on that line must be dropped harmlessly.
func TestWakeupIgnoredWhenStale(t *testing.T) {
	wl := counterWorkload{name: "stalewake", txPerCPU: 10, counters: 2, incrsPer: 2, think: 5}
	cfg := smallConfig(SchemePUNOPush, 29)
	m, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 160 {
		t.Fatalf("commits = %d", res.Commits)
	}
	m.DrainCaches()
	for addr, want := range m.CommittedIncrements() {
		if got := m.Backing().LoadWord(addr); got != want {
			t.Fatalf("wakeup path corrupted %#x", uint64(addr))
		}
	}
}

// TestPerNodeCountsSumToTotals: the per-node breakdowns must reconcile
// with the aggregate counters.
func TestPerNodeCountsSumToTotals(t *testing.T) {
	wl := counterWorkload{name: "sums", txPerCPU: 12, counters: 4, incrsPer: 2, think: 10}
	_, res := runWorkload(t, smallConfig(SchemeBaseline, 41), wl)
	var commits, aborts uint64
	for _, c := range res.PerNodeCommits {
		commits += c
	}
	for _, a := range res.PerNodeAborts {
		aborts += a
	}
	if commits != res.Commits || aborts != res.Aborts {
		t.Fatalf("per-node sums %d/%d != totals %d/%d", commits, aborts, res.Commits, res.Aborts)
	}
	var causes uint64
	for _, c := range res.AbortsByCause {
		causes += c
	}
	if causes != res.Aborts {
		t.Fatalf("cause sum %d != aborts %d", causes, res.Aborts)
	}
}

// TestOutcomeTaxonomyCoversAllAccesses: every classified transactional
// write access lands in exactly one Fig. 2 bucket.
func TestOutcomeTaxonomyCoversAllAccesses(t *testing.T) {
	wl := readMostlyWorkload{txPerCPU: 10, readLines: 16}
	_, res := runWorkload(t, smallConfig(SchemeBaseline, 43), wl)
	var sum uint64
	for _, c := range res.GETXOutcomes {
		sum += c
	}
	if sum != res.TxGETXAccesses {
		t.Fatalf("outcome sum %d != accesses %d", sum, res.TxGETXAccesses)
	}
	if res.TxGETXAccesses == 0 {
		t.Fatal("no accesses classified")
	}
}

// TestTimelineSampling verifies the periodic dynamics samples reconcile
// with the aggregate counters.
func TestTimelineSampling(t *testing.T) {
	wl := counterWorkload{name: "timeline", txPerCPU: 10, counters: 4, incrsPer: 2, think: 10}
	cfg := smallConfig(SchemeBaseline, 51)
	cfg.SampleInterval = 1000
	m, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) < 3 {
		t.Fatalf("only %d samples", len(res.Timeline))
	}
	var commits, aborts uint64
	last := sim.Time(0)
	for _, s := range res.Timeline {
		if s.Cycle <= last {
			t.Fatal("samples not strictly increasing in time")
		}
		last = s.Cycle
		commits += s.Commits
		aborts += s.Aborts
		if s.LiveTxs < 0 || s.LiveTxs > 16 {
			t.Fatalf("implausible live tx count %d", s.LiveTxs)
		}
	}
	// The tail after the last sample may hold a few events; samples must
	// account for nearly everything.
	if commits > res.Commits || res.Commits-commits > 32 {
		t.Fatalf("timeline commits %d vs total %d", commits, res.Commits)
	}
	if aborts > res.Aborts {
		t.Fatalf("timeline aborts %d exceed total %d", aborts, res.Aborts)
	}
}
