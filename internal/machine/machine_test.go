package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// counterWorkload: every node increments a set of shared counters repeatedly
// — the canonical serializability stress (final value must equal committed
// increments).
type counterWorkload struct {
	name     string
	txPerCPU int
	counters int // number of distinct counter words
	incrsPer int // increments per transaction
	think    sim.Time
}

func (w counterWorkload) Name() string         { return w.name }
func (w counterWorkload) HighContention() bool { return true }

func (w counterWorkload) Program(nodeID int, rng *sim.RNG) Program {
	count := 0
	return ProgramFunc(func(r *sim.RNG) (TxInstance, bool) {
		if count >= w.txPerCPU {
			return TxInstance{}, false
		}
		count++
		ops := make([]Op, 0, w.incrsPer+1)
		for i := 0; i < w.incrsPer; i++ {
			c := r.Intn(w.counters)
			addr := mem.Line(uint64(c) * mem.LineBytes).Word(0)
			ops = append(ops, Op{Kind: OpIncr, Addr: addr})
		}
		ops = append(ops, Op{Kind: OpCompute, Cycles: 20})
		return TxInstance{StaticID: 1, Ops: ops, ThinkCycles: w.think}, true
	})
}

// disjointWorkload: each node works on private lines — zero conflicts.
type disjointWorkload struct{ txPerCPU int }

func (disjointWorkload) Name() string         { return "disjoint" }
func (disjointWorkload) HighContention() bool { return false }

func (w disjointWorkload) Program(nodeID int, rng *sim.RNG) Program {
	count := 0
	base := mem.Line(uint64(nodeID+1) * 0x10000)
	return ProgramFunc(func(r *sim.RNG) (TxInstance, bool) {
		if count >= w.txPerCPU {
			return TxInstance{}, false
		}
		count++
		var ops []Op
		for i := 0; i < 4; i++ {
			l := mem.Line(uint64(base) + uint64(i)*mem.LineBytes)
			ops = append(ops, Op{Kind: OpRead, Addr: l.Word(0)})
			ops = append(ops, Op{Kind: OpWrite, Addr: l.Word(1), Value: uint64(count)})
		}
		return TxInstance{StaticID: 2, Ops: ops, ThinkCycles: 10}, true
	})
}

func smallConfig(s Scheme, seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Scheme = s
	cfg.Seed = seed
	cfg.MaxCycles = 50_000_000
	return cfg
}

func runWorkload(t *testing.T, cfg Config, wl Workload) (*Machine, *Result) {
	t.Helper()
	m, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestDisjointWorkloadNoConflicts(t *testing.T) {
	m, res := runWorkload(t, smallConfig(SchemeBaseline, 1), disjointWorkload{txPerCPU: 10})
	if res.Commits != 160 {
		t.Fatalf("commits = %d, want 160", res.Commits)
	}
	if res.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0 on disjoint data", res.Aborts)
	}
	if res.Nacks != 0 {
		t.Fatalf("nacks = %d, want 0 on disjoint data", res.Nacks)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointWritesLandInMemory(t *testing.T) {
	m, _ := runWorkload(t, smallConfig(SchemeBaseline, 1), disjointWorkload{txPerCPU: 10})
	m.DrainCaches()
	for node := 0; node < 16; node++ {
		base := mem.Line(uint64(node+1) * 0x10000)
		for i := 0; i < 4; i++ {
			l := mem.Line(uint64(base) + uint64(i)*mem.LineBytes)
			if v := m.Backing().LoadWord(l.Word(1)); v != 10 {
				t.Fatalf("node %d line %d final value %d, want 10", node, i, v)
			}
		}
	}
}

func TestCounterSerializability(t *testing.T) {
	for _, s := range []Scheme{SchemeBaseline, SchemeBackoff, SchemeRMWPred, SchemePUNO} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			wl := counterWorkload{name: "counters", txPerCPU: 20, counters: 8, incrsPer: 2, think: 30}
			m, res := runWorkload(t, smallConfig(s, 42), wl)
			if res.Commits != 16*20 {
				t.Fatalf("commits = %d, want %d", res.Commits, 16*20)
			}
			m.DrainCaches()
			var totalIncrs, totalMem uint64
			for addr, want := range m.CommittedIncrements() {
				got := m.Backing().LoadWord(addr)
				if got != want {
					t.Errorf("counter %#x = %d, want %d (serializability violated)", uint64(addr), got, want)
				}
				totalIncrs += want
				totalMem += got
			}
			if totalIncrs != 16*20*2 {
				t.Fatalf("committed increments = %d, want %d", totalIncrs, 16*20*2)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestContentionCausesAborts(t *testing.T) {
	wl := counterWorkload{name: "hot", txPerCPU: 20, counters: 2, incrsPer: 2, think: 0}
	_, res := runWorkload(t, smallConfig(SchemeBaseline, 7), wl)
	if res.Aborts == 0 {
		t.Fatal("expected aborts under heavy contention")
	}
	if res.Nacks == 0 {
		t.Fatal("expected NACKs under heavy contention")
	}
	if res.TxGETXIssued == 0 {
		t.Fatal("no transactional GETX issued")
	}
}

func TestDeterminism(t *testing.T) {
	wl := counterWorkload{name: "det", txPerCPU: 10, counters: 4, incrsPer: 2, think: 10}
	_, r1 := runWorkload(t, smallConfig(SchemeBaseline, 99), wl)
	_, r2 := runWorkload(t, smallConfig(SchemeBaseline, 99), wl)
	if r1.Cycles != r2.Cycles || r1.Aborts != r2.Aborts || r1.Commits != r2.Commits {
		t.Fatalf("same seed diverged: %v/%v/%v vs %v/%v/%v",
			r1.Cycles, r1.Aborts, r1.Commits, r2.Cycles, r2.Aborts, r2.Commits)
	}
	if r1.Net.TotalTraversals() != r2.Net.TotalTraversals() {
		t.Fatal("network traffic diverged between identical runs")
	}
}

func TestSeedsChangeSchedule(t *testing.T) {
	wl := counterWorkload{name: "seeds", txPerCPU: 10, counters: 4, incrsPer: 2, think: 10}
	_, r1 := runWorkload(t, smallConfig(SchemeBaseline, 1), wl)
	_, r2 := runWorkload(t, smallConfig(SchemeBaseline, 2), wl)
	if r1.Cycles == r2.Cycles && r1.Net.TotalTraversals() == r2.Net.TotalTraversals() {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestPUNORunsAndPredicts(t *testing.T) {
	wl := counterWorkload{name: "puno", txPerCPU: 20, counters: 2, incrsPer: 2, think: 0}
	_, res := runWorkload(t, smallConfig(SchemePUNO, 5), wl)
	if res.Commits != 16*20 {
		t.Fatalf("commits = %d", res.Commits)
	}
	if res.DirUnicasts == 0 {
		t.Fatal("PUNO never unicast under contention")
	}
}

func TestReadSharingWorkload(t *testing.T) {
	// All nodes read a common region, one line gets written: the classic
	// false-aborting shape.
	wl := readMostlyWorkload{txPerCPU: 15, readLines: 8}
	_, res := runWorkload(t, smallConfig(SchemeBaseline, 3), wl)
	if res.Commits != 16*15 {
		t.Fatalf("commits = %d, want %d", res.Commits, 16*15)
	}
	if res.GETXOutcomes[OutcomeFalseAbort] == 0 {
		t.Fatal("expected false-aborting GETX requests in a read-sharing workload")
	}
	if res.UnnecessaryAborts() == 0 {
		t.Fatal("false-abort histogram empty")
	}
}

// fig4Workload reproduces the structure of the paper's Fig. 4: most nodes
// run read-only transactions over a shared region; a few writer nodes
// update single lines of it. The writers' multicast GETX requests are the
// false-aborting source; the spared readers can commit.
type fig4Workload struct {
	txPerCPU   int
	sharedArea int // lines in the shared region
	writers    int // nodes 0..writers-1 write; the rest only read
}

func (fig4Workload) Name() string         { return "fig4" }
func (fig4Workload) HighContention() bool { return true }

func (w fig4Workload) Program(nodeID int, rng *sim.RNG) Program {
	count := 0
	return ProgramFunc(func(r *sim.RNG) (TxInstance, bool) {
		if count >= w.txPerCPU {
			return TxInstance{}, false
		}
		count++
		var ops []Op
		if nodeID < w.writers {
			ops = append(ops, Op{Kind: OpCompute, Cycles: 50})
			victim := r.Intn(w.sharedArea)
			ops = append(ops, Op{Kind: OpIncr, Addr: mem.Line(uint64(victim) * mem.LineBytes).Word(0)})
			return TxInstance{StaticID: 10, Ops: ops, ThinkCycles: 100}, true
		}
		for i := 0; i < w.sharedArea; i++ {
			ops = append(ops, Op{Kind: OpRead, Addr: mem.Line(uint64(i) * mem.LineBytes).Word(0)})
		}
		ops = append(ops, Op{Kind: OpCompute, Cycles: 300})
		return TxInstance{StaticID: 11, Ops: ops, ThinkCycles: 50}, true
	})
}

// readMostlyWorkload reads a shared region then writes one of its lines.
type readMostlyWorkload struct {
	txPerCPU  int
	readLines int
}

func (readMostlyWorkload) Name() string         { return "readmostly" }
func (readMostlyWorkload) HighContention() bool { return true }

func (w readMostlyWorkload) Program(nodeID int, rng *sim.RNG) Program {
	count := 0
	return ProgramFunc(func(r *sim.RNG) (TxInstance, bool) {
		if count >= w.txPerCPU {
			return TxInstance{}, false
		}
		count++
		var ops []Op
		for i := 0; i < w.readLines; i++ {
			ops = append(ops, Op{Kind: OpRead, Addr: mem.Line(uint64(i) * mem.LineBytes).Word(0)})
		}
		ops = append(ops, Op{Kind: OpCompute, Cycles: 100})
		victim := r.Intn(w.readLines)
		ops = append(ops, Op{Kind: OpIncr, Addr: mem.Line(uint64(victim) * mem.LineBytes).Word(0)})
		return TxInstance{StaticID: 3, Ops: ops, ThinkCycles: 50}, true
	})
}

func TestPUNOReducesFalseAbortsVsBaseline(t *testing.T) {
	// The mechanism claim (Secs. II-C, III-A): predictive unicast and
	// notification prevent the unnecessary aborts caused by NACKed
	// multicast GETX requests, and cut traffic, in the paper's Fig. 4
	// structure (read-only transactions sharing a region, a few writers).
	wl := fig4Workload{txPerCPU: 30, sharedArea: 16, writers: 4}
	_, base := runWorkload(t, smallConfig(SchemeBaseline, 3), wl)
	_, puno := runWorkload(t, smallConfig(SchemePUNO, 3), wl)
	if puno.UnnecessaryAborts() >= base.UnnecessaryAborts()/2 {
		t.Fatalf("PUNO unnecessary aborts %d, want < half of baseline %d",
			puno.UnnecessaryAborts(), base.UnnecessaryAborts())
	}
	if puno.GETXOutcomes[OutcomeFalseAbort] >= base.GETXOutcomes[OutcomeFalseAbort] {
		t.Fatalf("PUNO false-aborting requests %d >= baseline %d",
			puno.GETXOutcomes[OutcomeFalseAbort], base.GETXOutcomes[OutcomeFalseAbort])
	}
	if puno.Net.TotalTraversals() >= base.Net.TotalTraversals() {
		t.Fatalf("PUNO traffic %d >= baseline %d",
			puno.Net.TotalTraversals(), base.Net.TotalTraversals())
	}
	if puno.Cycles >= base.Cycles {
		t.Fatalf("PUNO execution time %d >= baseline %d", puno.Cycles, base.Cycles)
	}
}

func TestWritebacksHappen(t *testing.T) {
	// Touch enough disjoint lines that committed Modified lines get
	// evicted and written back.
	wl := sweepWorkload{txPerCPU: 12, linesPerTx: 64}
	m, _ := runWorkload(t, smallConfig(SchemeBaseline, 11), wl)
	var wb uint64
	for _, d := range m.dirs {
		wb += d.Stats().Writebacks
	}
	if wb == 0 {
		t.Fatal("no PUTX writebacks despite cache-thrashing workload")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// sweepWorkload writes many private lines to force evictions.
type sweepWorkload struct {
	txPerCPU   int
	linesPerTx int
}

func (sweepWorkload) Name() string         { return "sweep" }
func (sweepWorkload) HighContention() bool { return false }

func (w sweepWorkload) Program(nodeID int, rng *sim.RNG) Program {
	count := 0
	return ProgramFunc(func(r *sim.RNG) (TxInstance, bool) {
		if count >= w.txPerCPU {
			return TxInstance{}, false
		}
		count++
		var ops []Op
		for i := 0; i < w.linesPerTx; i++ {
			// Each tx touches a fresh stripe of private lines.
			l := mem.Line(uint64(nodeID+1)*0x100000 + uint64(count*w.linesPerTx+i)*mem.LineBytes)
			ops = append(ops, Op{Kind: OpWrite, Addr: l.Word(0), Value: 7})
		}
		return TxInstance{StaticID: 4, Ops: ops, ThinkCycles: 5}, true
	})
}

func TestOverflowDetected(t *testing.T) {
	// One transaction pins more lines in a single set than its ways: the
	// machine must fail with a clear error instead of livelocking.
	wl := overflowWorkload{}
	cfg := smallConfig(SchemeBaseline, 1)
	m, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("overflowing transaction did not fail the run")
	}
	if m.Result().AbortsByCause[CauseOverflow] == 0 {
		t.Fatal("overflow aborts not counted")
	}
}

type overflowWorkload struct{}

func (overflowWorkload) Name() string         { return "overflow" }
func (overflowWorkload) HighContention() bool { return false }

func (overflowWorkload) Program(nodeID int, rng *sim.RNG) Program {
	if nodeID != 0 {
		return &SliceProgram{}
	}
	// 6 lines mapping to the same set of a 4-way 128-set L1: stride =
	// 128*64 bytes.
	var ops []Op
	for i := 0; i < 6; i++ {
		ops = append(ops, Op{Kind: OpWrite, Addr: mem.Addr(uint64(i) * 128 * 64), Value: 1})
	}
	return &SliceProgram{Txs: []TxInstance{{StaticID: 9, Ops: ops}}}
}

func TestRMWPredictorTrains(t *testing.T) {
	wl := counterWorkload{name: "rmw", txPerCPU: 15, counters: 4, incrsPer: 2, think: 10}
	m, res := runWorkload(t, smallConfig(SchemeRMWPred, 13), wl)
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	trained := false
	for _, n := range m.nodes {
		if r, ok := n.cmgr.(interface{ Len() int }); ok && r.Len() > 0 {
			trained = true
		}
	}
	if !trained {
		t.Fatal("RMW predictor never trained on an increment workload")
	}
}

func TestNotificationsFlowUnderPUNO(t *testing.T) {
	wl := readMostlyWorkload{txPerCPU: 15, readLines: 8}
	_, res := runWorkload(t, smallConfig(SchemePUNO, 21), wl)
	if res.NotifiedBackoffs == 0 {
		t.Fatal("no notification-guided backoffs under PUNO")
	}
}

func TestSignatureModeRuns(t *testing.T) {
	cfg := smallConfig(SchemeBaseline, 17)
	cfg.SignatureBits = 1024
	wl := counterWorkload{name: "sig", txPerCPU: 10, counters: 4, incrsPer: 2, think: 10}
	m, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 160 {
		t.Fatalf("commits = %d, want 160", res.Commits)
	}
	m.DrainCaches()
	for addr, want := range m.CommittedIncrements() {
		if got := m.Backing().LoadWord(addr); got != want {
			t.Fatalf("signature mode broke serializability: %#x = %d, want %d", uint64(addr), got, want)
		}
	}
}

func TestGDCyclesAccumulate(t *testing.T) {
	wl := counterWorkload{name: "gd", txPerCPU: 10, counters: 2, incrsPer: 2, think: 0}
	_, res := runWorkload(t, smallConfig(SchemeBaseline, 31), wl)
	if res.GoodCycles == 0 {
		t.Fatal("no good transaction cycles recorded")
	}
	if res.Aborts > 0 && res.DiscardedCycles == 0 {
		t.Fatal("aborts occurred but no discarded cycles recorded")
	}
}

func TestMeshMismatchRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	if _, err := New(cfg, disjointWorkload{txPerCPU: 1}); err == nil {
		t.Fatal("mismatched node/mesh config accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		SchemeBaseline: "Baseline", SchemeBackoff: "Backoff",
		SchemeRMWPred: "RMW-Pred", SchemePUNO: "PUNO",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestATSSchemeRunsAndSerializes(t *testing.T) {
	wl := counterWorkload{name: "ats", txPerCPU: 15, counters: 2, incrsPer: 2, think: 0}
	_, base := runWorkload(t, smallConfig(SchemeBaseline, 3), wl)
	_, ats := runWorkload(t, smallConfig(SchemeATS, 3), wl)
	if ats.Commits != base.Commits {
		t.Fatalf("ATS commits %d != baseline %d", ats.Commits, base.Commits)
	}
	// ATS's whole point: far fewer aborts under heavy contention.
	if ats.Aborts >= base.Aborts/2 {
		t.Fatalf("ATS aborts %d, want < half of baseline %d", ats.Aborts, base.Aborts)
	}
}

func TestATSSerializability(t *testing.T) {
	wl := counterWorkload{name: "atsser", txPerCPU: 15, counters: 4, incrsPer: 2, think: 10}
	m, res := runWorkload(t, smallConfig(SchemeATS, 11), wl)
	if res.Commits != 16*15 {
		t.Fatalf("commits = %d", res.Commits)
	}
	m.DrainCaches()
	for addr, want := range m.CommittedIncrements() {
		if got := m.Backing().LoadWord(addr); got != want {
			t.Fatalf("ATS broke serializability: %#x = %d, want %d", uint64(addr), got, want)
		}
	}
}

func TestPUNOPushWakesWaiters(t *testing.T) {
	wl := fig4Workload{txPerCPU: 30, sharedArea: 16, writers: 4}
	_, puno := runWorkload(t, smallConfig(SchemePUNO, 3), wl)
	_, push := runWorkload(t, smallConfig(SchemePUNOPush, 3), wl)
	if push.Commits != puno.Commits {
		t.Fatalf("commits diverged: %d vs %d", push.Commits, puno.Commits)
	}
	// The wakeup extension must preserve PUNO's false-abort suppression.
	if push.UnnecessaryAborts() > 2*puno.UnnecessaryAborts()+8 {
		t.Fatalf("PUNO-Push unnecessary aborts %d far above PUNO %d",
			push.UnnecessaryAborts(), puno.UnnecessaryAborts())
	}
}

func TestPUNOPushSerializability(t *testing.T) {
	wl := counterWorkload{name: "push", txPerCPU: 15, counters: 4, incrsPer: 2, think: 10}
	m, res := runWorkload(t, smallConfig(SchemePUNOPush, 13), wl)
	if res.Commits != 16*15 {
		t.Fatalf("commits = %d", res.Commits)
	}
	m.DrainCaches()
	for addr, want := range m.CommittedIncrements() {
		if got := m.Backing().LoadWord(addr); got != want {
			t.Fatalf("PUNO-Push broke serializability: %#x = %d, want %d", uint64(addr), got, want)
		}
	}
}
