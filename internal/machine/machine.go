package machine

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/cm"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/sim"
)

// Machine is one simulated CMP instance, assembled from a Config and a
// Workload. Build it with New, run it with Run, and read the measurements
// from Result.
type Machine struct {
	cfg     Config
	eng     *sim.Engine
	mesh    *noc.Mesh
	home    mem.HomeMap
	backing *mem.Backing
	nodes   []*node
	dirs    []*coherence.Directory
	preds   []*core.Predictor
	rootRNG *sim.RNG

	// it is the machine-wide line interner: every memory-system table below
	// (backing store, directory slabs, l2Seen, incrCounts, HTM conflict
	// sets) is a dense slice indexed by the LineIDs it assigns, and every
	// coherence message carries its line's ID so no hot path hashes a line
	// address. Reset re-assigns IDs from scratch (retaining capacity), so a
	// reused arena and a fresh machine produce identical ID streams.
	it *mem.Interner
	// l2Seen[id-1] marks lines whose first L2 access (cold miss at memory
	// latency) already happened.
	l2Seen []bool

	res    Result
	active int
	// incrCounts is the serializability oracle's commit ledger, flat over
	// (LineID, word): index (id-1)*WordsPerLine + word.
	incrCounts []uint64
	runErr     error

	// CheckInvariants scratch, reused across calls: per-LineID holder
	// buckets plus the list of IDs touched by the current scan.
	invHolders [][]invHolder
	invTouched []mem.LineID

	// Controller next-free times (occupancy queueing).
	dirFree []sim.Time
	l1Free  []sim.Time

	// sink mirrors cfg.EventSink (possibly nil) for the send hook; Reset
	// re-installs it on every controller so arena reuse cannot leak a
	// previous run's sink.
	sink probe.Sink

	// msgFree recycles coherence messages: every message is built wholesale
	// into a pooled struct at its send site and returned to the pool by the
	// dispatcher the moment its handler returns (handlers that need a
	// message past that point — parked directory requests, deferred grants —
	// copy it by value). In steady state the pool makes the protocol
	// traffic allocation-free.
	msgFree []*coherence.Msg

	// Shard-mode state (shard.go). [lo, hi) is the owned node range — the
	// serial path owns [0, Nodes). xsend, when non-nil, intercepts every
	// remote (Src != Dst) send: the PDES coordinator stages it for ordered
	// replay on the global mesh instead of the shard's local one. ownIt
	// retains the machine's private interner while a shard-shared interner
	// displaces m.it, so an arena can switch modes without reallocating.
	lo, hi int
	xsend  func(*coherence.Msg)
	ownIt  *mem.Interner
}

// newMsg pops a recycled message (fields NOT zeroed — callers overwrite
// wholesale) or allocates the pool's next one.
func (m *Machine) newMsg() *coherence.Msg {
	if n := len(m.msgFree); n > 0 {
		msg := m.msgFree[n-1]
		m.msgFree = m.msgFree[:n-1]
		return msg
	}
	return &coherence.Msg{}
}

// freeMsg returns a delivered message to the pool. The caller must not
// retain the pointer.
func (m *Machine) freeMsg(msg *coherence.Msg) {
	m.msgFree = append(m.msgFree, msg)
}

// sendMsg ships a message built on the caller's stack through the pool and
// onto the mesh.
func (m *Machine) sendMsg(msg coherence.Msg) {
	p := m.newMsg()
	*p = msg
	m.send(p)
}

// fail aborts the run with err (unrecoverable configuration or protocol
// problems detected mid-simulation).
func (m *Machine) fail(err error) {
	if m.runErr == nil {
		m.runErr = err
	}
	m.eng.Stop()
}

// dirEnv adapts the machine to the coherence.Env interface for one
// directory bank.
type dirEnv struct {
	m    *Machine
	node int
}

func (e dirEnv) Now() sim.Time { return e.m.eng.Now() }

func (e dirEnv) NewMsg() *coherence.Msg { return e.m.newMsg() }

func (e dirEnv) Send(delay sim.Time, msg *coherence.Msg) {
	if delay == 0 {
		e.m.send(msg)
		return
	}
	e.m.eng.AfterEvent(delay, e.m, msg, mevSend<<32)
}

func (e dirEnv) Interner() *mem.Interner { return e.m.it }

func (e dirEnv) LineData(l mem.Line, id mem.LineID) (mem.LineData, sim.Time) {
	lat := e.m.cfg.L2HitLatency
	if !e.m.l2SeenAt(id) {
		e.m.markL2Seen(id)
		lat = e.m.cfg.MemLatency
	}
	return e.m.backing.LoadID(id), lat
}

func (e dirEnv) StoreLine(l mem.Line, id mem.LineID, d mem.LineData) {
	e.m.markL2Seen(id)
	e.m.backing.StoreID(id, d)
}

// l2SeenAt reports whether the line with the given ID already took its cold
// miss.
//
//puno:hot
func (m *Machine) l2SeenAt(id mem.LineID) bool {
	i := int(id)
	return i > 0 && i <= len(m.l2Seen) && m.l2Seen[i-1]
}

// markL2Seen extends the table as needed (within-capacity slots were zeroed
// by Reset; fresh growth is zeroed by make).
func (m *Machine) markL2Seen(id mem.LineID) {
	n := int(id)
	if n > len(m.l2Seen) {
		if n <= cap(m.l2Seen) {
			m.l2Seen = m.l2Seen[:n]
		} else {
			ns := make([]bool, n, 2*n)
			copy(ns, m.l2Seen)
			m.l2Seen = ns
		}
	}
	m.l2Seen[n-1] = true
}

// New builds a machine running wl under cfg. The backing memory starts
// zeroed; use Backing to preload initial data before Run.
//
// New is implemented as Reset on an empty machine, so a freshly built
// machine and a reused arena execute the exact same construction path —
// the property that keeps sweep results independent of arena reuse.
func New(cfg Config, wl Workload) (*Machine, error) {
	m := &Machine{}
	if err := m.Reset(cfg, wl); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset rebuilds m to run wl under cfg (whose Seed field seeds the run,
// exactly as in New), reusing every retained allocation: the event engine's
// slab and wheel, the mesh arrays, cache arrays, HTM set/undo/signature
// storage, directory entry pools, the coherence message pool, and the
// result's map/slices. After Reset the machine is indistinguishable from
// New(cfg, wl): same construction order, same RNG stream, same Run
// trajectory. Reset may be called in any state, including after a failed
// run — the engine reset drops all pending events.
func (m *Machine) Reset(cfg Config, wl Workload) error {
	return m.resetShard(cfg, wl, 0, cfg.Nodes, nil, nil)
}

// resetShard is Reset generalized to shard mode: the machine owns only the
// nodes in [lo, hi), indexes its memory system by the coordinator-owned
// shared interner, and hands every remote send to xsend. The construction
// path is shared with the serial Reset line for line — in particular the
// root RNG consumes exactly the same draw sequence whether a node is owned
// or not, so every node's program and RNG stream is identical to the serial
// build's.
func (m *Machine) resetShard(cfg Config, wl Workload, lo, hi int, sharedIt *mem.Interner, xsend func(*coherence.Msg)) error {
	if cfg.Nodes != cfg.Mesh.Width*cfg.Mesh.Height {
		return fmt.Errorf("machine: %d nodes does not match %dx%d mesh",
			cfg.Nodes, cfg.Mesh.Width, cfg.Mesh.Height)
	}
	m.cfg = cfg
	m.lo, m.hi = lo, hi
	m.xsend = xsend
	if m.eng == nil {
		m.eng = sim.NewEngine()
	} else {
		m.eng.Reset()
	}
	m.home = mem.NewHomeMap(cfg.Nodes)
	if m.ownIt == nil {
		m.ownIt = mem.NewInterner()
	}
	if sharedIt != nil {
		// The coordinator resets, pre-sizes, and shares the interner.
		m.it = sharedIt
	} else {
		m.it = m.ownIt
		m.it.Reset()
		if fh, ok := wl.(FootprintHinter); ok {
			m.it.Grow(fh.FootprintLines(cfg.Nodes))
		}
	}
	if m.backing == nil {
		m.backing = mem.NewBackingOn(m.it)
	} else {
		m.backing.ResetOn(m.it)
	}
	clear(m.l2Seen[:cap(m.l2Seen)])
	m.l2Seen = m.l2Seen[:0]
	if m.rootRNG == nil {
		m.rootRNG = sim.NewRNG(cfg.Seed)
	} else {
		m.rootRNG.Reseed(cfg.Seed)
	}
	m.incrCounts = m.incrCounts[:0]
	if m.mesh == nil {
		m.mesh = noc.New(cfg.Mesh, m.eng)
	} else {
		m.mesh.Reset(cfg.Mesh, m.eng)
	}
	m.res.reset(wl.Name(), cfg.Scheme, cfg.Nodes)
	m.active = 0
	m.runErr = nil
	m.sink = cfg.EventSink
	// msgFree is kept as-is: pooled messages are overwritten wholesale at
	// every fill site, so leftover contents are harmless.

	usePred := cfg.Scheme == SchemePUNO || cfg.Scheme == SchemeUnicastOnly || cfg.Scheme == SchemePUNOPush
	if len(m.nodes) != cfg.Nodes {
		m.dirs = make([]*coherence.Directory, cfg.Nodes)
		m.preds = make([]*core.Predictor, cfg.Nodes)
		m.nodes = make([]*node, cfg.Nodes)
	}
	m.dirFree = resizeTimes(m.dirFree, cfg.Nodes)
	m.l1Free = resizeTimes(m.l1Free, cfg.Nodes)
	guard := cfg.NotifyGuardOverride
	if guard == 0 {
		guard = 2 * m.mesh.AverageLatency(coherence.DataFlits)
	}
	mb := &managerBuilder{scheme: cfg.Scheme, guard: guard, maxWait: cfg.NotifyMaxWait}
	if cfg.Scheme == SchemeATS {
		mb.ats = cm.NewATSGroup(cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		if i < lo || i >= hi {
			// Non-owned node: consume exactly the two root-RNG draws its
			// construction would (the program fork and the node-RNG fork),
			// then skip the build. Stale arena objects are dropped — no
			// dispatch path can reach a node outside [lo, hi).
			m.rootRNG.Uint64()
			m.rootRNG.Uint64()
			m.preds[i] = nil
			m.dirs[i] = nil
			m.nodes[i] = nil
			continue
		}
		var pred coherence.Predictor
		m.preds[i] = nil
		if usePred {
			pcfg := core.DefaultPredictorConfig(cfg.Nodes)
			pcfg.FixedTimeout = cfg.FixedValidityTimeout
			pcfg.DisableValidity = cfg.DisableValidity
			if cfg.ValidityTimeoutMult > 0 {
				pcfg.TimeoutMultiplier = cfg.ValidityTimeoutMult
			}
			p := core.NewPredictor(pcfg, m.eng.Now)
			m.preds[i] = p
			pred = p
		}
		if m.dirs[i] == nil {
			m.dirs[i] = coherence.NewDirectory(i, cfg.Nodes, dirEnv{m, i}, pred)
		} else {
			m.dirs[i].Reset(pred)
		}
		m.dirs[i].SetProbe(m.sink)
		prog := wl.Program(i, m.rootRNG.Fork(1000+uint64(i)))
		if m.nodes[i] == nil {
			m.nodes[i] = newNode(i, m, prog, mb.build(i))
		} else {
			m.nodes[i].reset(prog, mb.build(i))
		}
		if m.sink != nil {
			m.nodes[i].tx.SetProbe(m.sink, m.eng.Now)
		} else {
			m.nodes[i].tx.SetProbe(nil, nil)
		}
		if cfg.SignatureBits > 0 {
			m.nodes[i].tx.UseSignatures(cfg.SignatureBits)
		}
		id := i
		m.mesh.Attach(i, func(payload any) { m.deliver(id, payload.(*coherence.Msg)) })
	}
	return nil
}

// resizeTimes returns s resized to n elements, all zero, reusing capacity.
func resizeTimes(s []sim.Time, n int) []sim.Time {
	if cap(s) < n {
		return make([]sim.Time, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// BeginGater is an optional extension a contention manager can implement
// to gate transaction begins (proactive scheduling schemes like ATS).
// RequestBegin is called before every attempt; the attempt proceeds when
// done runs (possibly synchronously). NotifyOutcome is called when the
// attempt commits (false) or its abort completes (true).
type BeginGater interface {
	RequestBegin(done func())
	NotifyOutcome(aborted bool)
}

// managerBuilder builds the per-node managers for a machine, sharing
// state where the scheme requires it (ATS).
type managerBuilder struct {
	scheme  Scheme
	guard   sim.Time
	maxWait sim.Time
	ats     *cm.ATSGroup
}

func (mb *managerBuilder) build(node int) cm.Manager {
	switch mb.scheme {
	case SchemeBaseline, SchemeUnicastOnly:
		return cm.NewFixed()
	case SchemeBackoff:
		return cm.NewRandomBackoff()
	case SchemeRMWPred:
		return cm.NewRMWPred()
	case SchemePUNO, SchemeNotifyOnly, SchemePUNOPush:
		p := cm.NewPUNO(mb.guard)
		if mb.maxWait > 0 {
			p.MaxWait = mb.maxWait
		}
		if mb.scheme == SchemePUNOPush {
			// With commit wakeups, the estimate is only a fallback bound:
			// sleep it in full and rely on the wakeup for promptness.
			p.NotifyEachRetry = true
			p.MaxWait = 20000
		}
		return p
	case SchemeATS:
		return mb.ats.NodeManager(node)
	default:
		panic(fmt.Sprintf("machine: unknown scheme %v", mb.scheme))
	}
}

// Backing exposes the memory image (preloading initial data; inspecting
// final state in tests).
func (m *Machine) Backing() *mem.Backing { return m.backing }

// Engine exposes the simulation clock (tests).
func (m *Machine) Engine() *sim.Engine { return m.eng }

func (m *Machine) send(msg *coherence.Msg) {
	if m.sink != nil {
		m.sink.Emit(probe.Event{
			Cycle: m.eng.Now(),
			Arg:   probe.PackSend(uint8(msg.Type), msg.Dst, msg.Requester, msg.ReqID),
			Line:  msg.LID,
			Node:  int16(msg.Src),
			Kind:  probe.KindSend,
		})
	}
	if m.xsend != nil && msg.Src != msg.Dst {
		// Shard mode: every remote message crosses (or may contend with
		// traffic crossing) shard boundaries, so the coordinator stages it
		// for (cycle, seq)-ordered replay over the one global mesh. Only
		// node-local messages ride this shard's private mesh.
		m.xsend(msg)
		return
	}
	m.mesh.Send(msg.Src, msg.Dst, msg.Class(), msg.Flits(), msg)
}

// Machine event codes: the high half of the sim.Handler word selects the
// dispatch, the low half carries the node id. Replacing per-message
// closures with these codes keeps deferred dispatch allocation-free.
const (
	mevSend    uint64 = iota // delayed directory send: put msg on the mesh
	mevDir                   // directory Handle after occupancy wait
	mevFwd                   // L1 handleForward after occupancy wait
	mevResp                  // L1 handleResponse after occupancy wait
	mevDeliver               // coordinator-injected remote arrival: dispatch to node
)

// OnEvent implements sim.Handler for deferred message dispatch.
func (m *Machine) OnEvent(arg any, word uint64) {
	msg := arg.(*coherence.Msg)
	id := int(uint32(word))
	switch word >> 32 {
	case mevSend:
		m.send(msg)
	case mevDir:
		m.dirs[id].Handle(msg)
		m.freeMsg(msg)
	case mevFwd:
		m.nodes[id].handleForward(msg)
		m.freeMsg(msg)
	case mevResp:
		m.nodes[id].handleResponse(msg)
		m.freeMsg(msg)
	case mevDeliver:
		m.deliver(id, msg)
	default:
		panic(fmt.Sprintf("machine: unknown event code %d", word>>32))
	}
}

// deliver dispatches an arriving message to the right controller at node
// id: home-directory traffic to the directory slice, everything else to
// the L1/core. Each controller processes one message per occupancy window;
// later arrivals queue behind it, so message storms cost time. The
// dispatcher owns the message: it returns to the pool when the handler
// returns (synchronously or after the occupancy wait).
func (m *Machine) deliver(id int, msg *coherence.Msg) {
	switch msg.Type {
	case coherence.MsgGETS, coherence.MsgGETX, coherence.MsgUnblock,
		coherence.MsgWBData, coherence.MsgPUTX:
		if start := m.occupyStart(&m.dirFree[id], m.cfg.DirOccupancy); start > m.eng.Now() {
			m.eng.AtEvent(start, m, msg, mevDir<<32|uint64(uint32(id)))
		} else {
			m.dirs[id].Handle(msg)
			m.freeMsg(msg)
		}
	case coherence.MsgFwdGETS, coherence.MsgFwdGETX:
		if start := m.occupyStart(&m.l1Free[id], m.cfg.L1Occupancy); start > m.eng.Now() {
			m.eng.AtEvent(start, m, msg, mevFwd<<32|uint64(uint32(id)))
		} else {
			m.nodes[id].handleForward(msg)
			m.freeMsg(msg)
		}
	case coherence.MsgWBAck, coherence.MsgWBStale:
		m.nodes[id].handleWB(msg)
		m.freeMsg(msg)
	case coherence.MsgWakeup:
		m.nodes[id].handleWakeup(msg)
		m.freeMsg(msg)
	default:
		if start := m.occupyStart(&m.l1Free[id], m.cfg.L1Occupancy); start > m.eng.Now() {
			m.eng.AtEvent(start, m, msg, mevResp<<32|uint64(uint32(id)))
		} else {
			m.nodes[id].handleResponse(msg)
			m.freeMsg(msg)
		}
	}
}

// occupyStart reserves the controller guarded by nextFree and returns when
// the reserved window begins (now, when the controller is free).
func (m *Machine) occupyStart(nextFree *sim.Time, occ sim.Time) sim.Time {
	start := m.eng.Now()
	if *nextFree > start {
		start = *nextFree
	}
	*nextFree = start + occ
	return start
}

func (m *Machine) threadDone() { m.active-- }

// noteCommit records a committed transaction's increments for the
// serializability checker.
func (m *Machine) noteCommit(_ *node, tx TxInstance) {
	for _, op := range tx.Ops {
		if op.Kind == OpIncr {
			id := m.it.Intern(mem.LineOf(op.Addr))
			m.bumpIncr(id, mem.WordIndex(op.Addr))
		}
	}
}

// bumpIncr counts one committed increment of the given line/word, growing
// the flat ledger as needed (appended zeros, so retained capacity never
// resurrects stale counts).
func (m *Machine) bumpIncr(id mem.LineID, w int) {
	i := (int(id)-1)*mem.WordsPerLine + w
	for len(m.incrCounts) <= i {
		m.incrCounts = append(m.incrCounts, 0)
	}
	m.incrCounts[i]++
}

// ErrHung is returned when the simulation exceeds Config.MaxCycles.
var ErrHung = errors.New("machine: simulation exceeded MaxCycles")

// Run executes the workload to completion and returns the measurements.
func (m *Machine) Run() (*Result, error) {
	m.active = m.cfg.Nodes
	for _, n := range m.nodes {
		n.start()
	}
	if iv := m.cfg.SampleInterval; iv > 0 {
		var prevCommits, prevAborts, prevTraffic uint64
		var sample func()
		sample = func() {
			live := 0
			for _, n := range m.nodes {
				if n.tx.InFlight() {
					live++
				}
			}
			traffic := m.mesh.Stats().TotalTraversals()
			m.res.Timeline = append(m.res.Timeline, Sample{
				Cycle:   m.eng.Now(),
				Commits: m.res.Commits - prevCommits,
				Aborts:  m.res.Aborts - prevAborts,
				Traffic: traffic - prevTraffic,
				LiveTxs: live,
			})
			prevCommits, prevAborts, prevTraffic = m.res.Commits, m.res.Aborts, traffic
			if m.active > 0 {
				m.eng.After(iv, sample)
			}
		}
		m.eng.After(iv, sample)
	}
	m.eng.Run(m.cfg.MaxCycles)
	if m.runErr != nil {
		return nil, m.runErr
	}
	if m.active > 0 {
		if m.eng.Pending() > 0 {
			return nil, ErrHung
		}
		return nil, fmt.Errorf("machine: %d threads stalled with an empty event queue (protocol deadlock)", m.active)
	}
	// Drain any events after the last commit (in-flight unblocks etc.).
	m.eng.Run(m.cfg.MaxCycles)

	for _, n := range m.nodes {
		if n.doneAt > m.res.Cycles {
			m.res.Cycles = n.doneAt
		}
	}
	m.res.Net = m.mesh.Stats()
	for i, d := range m.dirs {
		ds := d.Stats()
		m.res.DirTxGETXBusy += ds.TxGETXBusy
		m.res.DirTxGETXServices += ds.TxGETX
		m.res.DirBusyAll += ds.BusyCycles
		m.res.DirBusyNacks += ds.BusyNacks
		m.res.DirUnicasts += ds.UnicastForwards
		m.res.DirMulticastFwds += ds.MulticastFwds
		m.res.Mispredictions += ds.Mispredictions
		_ = i
	}
	return &m.res, nil
}

// Result returns the measurements collected so far (valid after Run).
func (m *Machine) Result() *Result { return &m.res }

// LineTable returns the machine's interned lines in assignment order: index
// i holds the line whose LineID is i+1. An event trace saves this table so
// its LineID-indexed events can be rendered as addresses later. Valid after
// Run (interning is first-touch, so the table is only complete then).
func (m *Machine) LineTable() []mem.Line {
	out := make([]mem.Line, m.it.Len())
	for i := range out {
		out[i] = m.it.LineAt(mem.LineID(i + 1))
	}
	return out
}

// Predictors exposes the per-directory PUNO predictors (nil entries when
// the scheme does not use prediction). Diagnostics and ablation benches.
func (m *Machine) Predictors() []*core.Predictor { return m.preds }

// CommittedIncrements returns how many OpIncr commits touched each address
// (the serializability oracle). The map is rebuilt from the flat ledger on
// each call; it is a test/diagnostic interface, not a hot path.
func (m *Machine) CommittedIncrements() map[mem.Addr]uint64 {
	out := make(map[mem.Addr]uint64, len(m.incrCounts))
	for i, c := range m.incrCounts {
		if c == 0 {
			continue
		}
		l := m.it.LineAt(mem.LineID(i/mem.WordsPerLine) + 1)
		out[l.Word(i%mem.WordsPerLine)] = c
	}
	return out
}

// DrainCaches flushes every Modified line (and any writeback in flight)
// into the backing store so tests can inspect final memory values. Call
// only after Run.
func (m *Machine) DrainCaches() {
	for _, n := range m.nodes {
		n.l1.ForEach(func(e *cache.Entry) {
			if e.State == cache.Modified {
				m.backing.Store(e.Line, e.Data)
			}
		})
		for i, l := range n.wbWait.lines { // sorted by construction
			m.backing.Store(l, n.wbWait.data[i])
		}
	}
}

// invHolder is one L1's residency of a line during an invariant scan.
type invHolder struct {
	node  int
	state cache.State
}

// CheckInvariants verifies the single-writer/multiple-reader invariant
// across all L1s and directory/cache consistency. It may be called during
// or after a run. The scan buckets holders by interned LineID into scratch
// retained on the machine, so invariant-checking test runs allocate nothing
// in steady state.
func (m *Machine) CheckInvariants() error {
	for _, n := range m.nodes {
		n.l1.ForEach(func(e *cache.Entry) {
			id := m.it.Intern(e.Line)
			for len(m.invHolders) < int(id) {
				m.invHolders = append(m.invHolders, nil)
			}
			if len(m.invHolders[id-1]) == 0 {
				m.invTouched = append(m.invTouched, id)
			}
			m.invHolders[id-1] = append(m.invHolders[id-1], invHolder{n.id, e.State})
		})
	}
	defer func() {
		for _, id := range m.invTouched {
			m.invHolders[id-1] = m.invHolders[id-1][:0]
		}
		m.invTouched = m.invTouched[:0]
	}()
	// Deterministic (line-ordered) reporting, as the map+detmap scan gave.
	sort.Slice(m.invTouched, func(i, j int) bool {
		return m.it.LineAt(m.invTouched[i]) < m.it.LineAt(m.invTouched[j])
	})
	for _, id := range m.invTouched {
		l := m.it.LineAt(id)
		hs := m.invHolders[id-1]
		owners := 0
		for _, h := range hs {
			if h.state == cache.Modified || h.state == cache.Exclusive {
				owners++
			}
		}
		if owners > 1 {
			return fmt.Errorf("SWMR violated: line %v held exclusively by %d nodes (%v)", l, owners, hs)
		}
		if owners == 1 && len(hs) > 1 {
			return fmt.Errorf("SWMR violated: line %v has an owner plus %d sharers (%v)", l, len(hs)-1, hs)
		}
	}
	// Directory M entries must point at a node actually holding the line
	// exclusively, unless the entry is mid-transaction (busy) or the copy
	// is travelling through a writeback.
	for home, d := range m.dirs {
		for _, id := range m.invTouched {
			l := m.it.LineAt(id)
			hs := m.invHolders[id-1]
			if m.home.Home(l) != home {
				continue
			}
			st, _, owner := d.State(l)
			if st == coherence.DirModified && d.BusyLines() == 0 {
				found := false
				for _, h := range hs {
					if h.node == owner && (h.state == cache.Modified || h.state == cache.Exclusive) {
						found = true
					}
				}
				if m.nodes[owner].wbWait.has(l) {
					found = true
				}
				if !found {
					return fmt.Errorf("directory %d says %v owned by %d, but it holds no exclusive copy", home, l, owner)
				}
			}
		}
	}
	return nil
}
