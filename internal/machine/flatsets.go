package machine

import "repro/internal/mem"

// lineOpSet is a tiny line -> op-index association reused across
// transaction attempts (firstLoad, promotedLoads). Transactional footprints
// are a handful of lines, so a linear scan over a flat pair of slices beats
// a map and — with reset instead of re-make — allocates nothing in steady
// state.
type lineOpSet struct {
	lines []mem.Line
	ops   []int
}

func (s *lineOpSet) reset() {
	s.lines = s.lines[:0]
	s.ops = s.ops[:0]
}

func (s *lineOpSet) get(l mem.Line) (int, bool) {
	for i, x := range s.lines {
		if x == l {
			return s.ops[i], true
		}
	}
	return 0, false
}

// put sets the association, overwriting an existing entry for l.
func (s *lineOpSet) put(l mem.Line, op int) {
	for i, x := range s.lines {
		if x == l {
			s.ops[i] = op
			return
		}
	}
	s.lines = append(s.lines, l)
	s.ops = append(s.ops, op)
}

// firstLoadTable associates an interned line with the op index of the
// first transactional load of that line this attempt, indexed densely by
// LineID (it trains the RMW predictor when a store to the line follows).
// Values store op index + 1 so the zero value means "absent"; reset clears
// only the touched entries, so the cost tracks the attempt's footprint,
// not the table capacity.
type firstLoadTable struct {
	ops     []int32 // LineID -> first-load op index + 1 (0 = absent)
	touched []mem.LineID
}

func (t *firstLoadTable) reset() {
	for _, id := range t.touched {
		t.ops[id] = 0
	}
	t.touched = t.touched[:0]
}

// record stores op as id's first-load index unless one is already set.
//
//puno:hot
func (t *firstLoadTable) record(id mem.LineID, op int) {
	if int(id) >= len(t.ops) {
		t.grow(id)
	}
	if t.ops[id] == 0 {
		t.ops[id] = int32(op) + 1
		t.touched = append(t.touched, id)
	}
}

// get returns the recorded first-load op index for id.
//
//puno:hot
func (t *firstLoadTable) get(id mem.LineID) (int, bool) {
	if int(id) >= len(t.ops) || t.ops[id] == 0 {
		return 0, false
	}
	return int(t.ops[id]) - 1, true
}

// grow extends the dense array to cover id (doubling headroom, so repeated
// first touches of ascending IDs amortize to O(1)).
func (t *firstLoadTable) grow(id mem.LineID) {
	n := int(id) + 1
	s := make([]int32, n, 2*n)
	copy(s, t.ops)
	t.ops = s
}

// Wakeup-table bounds: sized like the hardware structure would be.
const (
	wakeupMaxLines   = 8
	wakeupMaxWaiters = 4
)

// wakeupTable (PUNO-Push) records the requesters this node NACKed, per
// line, so it can ping them when its transaction finishes. Lines and
// waiters are kept sorted ascending at insert, so firing walks them in
// exactly the order the previous map+sort implementation produced — the
// NoC serializes per-cycle sends, so that order is part of the
// deterministic trajectory. Overflow silently drops (the waiter's timed
// backoff remains the fallback).
type wakeupTable struct {
	n       int
	lines   [wakeupMaxLines]mem.Line
	nw      [wakeupMaxLines]int
	waiters [wakeupMaxLines][wakeupMaxWaiters]int
}

func (w *wakeupTable) subscribe(l mem.Line, requester int) {
	i := 0
	for i < w.n && w.lines[i] < l {
		i++
	}
	if i == w.n || w.lines[i] != l {
		if w.n >= wakeupMaxLines {
			return
		}
		copy(w.lines[i+1:w.n+1], w.lines[i:w.n])
		copy(w.nw[i+1:w.n+1], w.nw[i:w.n])
		copy(w.waiters[i+1:w.n+1], w.waiters[i:w.n])
		w.lines[i] = l
		w.nw[i] = 0
		w.n++
	}
	k := w.nw[i]
	if k >= wakeupMaxWaiters {
		return
	}
	j := 0
	for j < k && w.waiters[i][j] < requester {
		j++
	}
	if j < k && w.waiters[i][j] == requester {
		return // already subscribed
	}
	copy(w.waiters[i][j+1:k+1], w.waiters[i][j:k])
	w.waiters[i][j] = requester
	w.nw[i] = k + 1
}

func (w *wakeupTable) empty() bool { return w.n == 0 }

func (w *wakeupTable) clear() { w.n = 0 }

// wbTable holds Modified victims between PUTX and WBAck (the retained copy
// services forwards that raced with the writeback). At any instant a node
// has at most a handful of writebacks in flight, so flat slices with a
// linear scan beat a map; entries are kept sorted by line at insert, so
// walking the table (DrainCaches, state dumps) reproduces the sorted order
// the previous map+detmap implementation emitted.
type wbTable struct {
	lines []mem.Line
	ids   []mem.LineID
	data  []mem.LineData
}

func (t *wbTable) reset() {
	t.lines = t.lines[:0]
	t.ids = t.ids[:0]
	t.data = t.data[:0]
}

// has reports whether a writeback of l is in flight.
//
//puno:hot
func (t *wbTable) has(l mem.Line) bool {
	for _, x := range t.lines {
		if x == l {
			return true
		}
	}
	return false
}

// get returns the retained copy of l.
//
//puno:hot
func (t *wbTable) get(l mem.Line) (mem.LineData, bool) {
	for i, x := range t.lines {
		if x == l {
			return t.data[i], true
		}
	}
	return mem.LineData{}, false
}

// put inserts (or overwrites) the retained copy of l, keeping the table
// sorted by line.
func (t *wbTable) put(l mem.Line, id mem.LineID, d mem.LineData) {
	i := 0
	for i < len(t.lines) && t.lines[i] < l {
		i++
	}
	if i < len(t.lines) && t.lines[i] == l {
		t.ids[i], t.data[i] = id, d
		return
	}
	t.lines = append(t.lines, 0)
	t.ids = append(t.ids, 0)
	t.data = append(t.data, mem.LineData{})
	copy(t.lines[i+1:], t.lines[i:])
	copy(t.ids[i+1:], t.ids[i:])
	copy(t.data[i+1:], t.data[i:])
	t.lines[i], t.ids[i], t.data[i] = l, id, d
}

// del removes l's entry if present.
//
//puno:hot
func (t *wbTable) del(l mem.Line) {
	for i, x := range t.lines {
		if x == l {
			t.lines = append(t.lines[:i], t.lines[i+1:]...)
			t.ids = append(t.ids[:i], t.ids[i+1:]...)
			t.data = append(t.data[:i], t.data[i+1:]...)
			return
		}
	}
}

// size returns the number of writebacks in flight.
func (t *wbTable) size() int { return len(t.lines) }
