package machine

import "repro/internal/mem"

// lineOpSet is a tiny line -> op-index association reused across
// transaction attempts (firstLoad, promotedLoads). Transactional footprints
// are a handful of lines, so a linear scan over a flat pair of slices beats
// a map and — with reset instead of re-make — allocates nothing in steady
// state.
type lineOpSet struct {
	lines []mem.Line
	ops   []int
}

func (s *lineOpSet) reset() {
	s.lines = s.lines[:0]
	s.ops = s.ops[:0]
}

func (s *lineOpSet) get(l mem.Line) (int, bool) {
	for i, x := range s.lines {
		if x == l {
			return s.ops[i], true
		}
	}
	return 0, false
}

// put sets the association, overwriting an existing entry for l.
func (s *lineOpSet) put(l mem.Line, op int) {
	for i, x := range s.lines {
		if x == l {
			s.ops[i] = op
			return
		}
	}
	s.lines = append(s.lines, l)
	s.ops = append(s.ops, op)
}

// Wakeup-table bounds: sized like the hardware structure would be.
const (
	wakeupMaxLines   = 8
	wakeupMaxWaiters = 4
)

// wakeupTable (PUNO-Push) records the requesters this node NACKed, per
// line, so it can ping them when its transaction finishes. Lines and
// waiters are kept sorted ascending at insert, so firing walks them in
// exactly the order the previous map+sort implementation produced — the
// NoC serializes per-cycle sends, so that order is part of the
// deterministic trajectory. Overflow silently drops (the waiter's timed
// backoff remains the fallback).
type wakeupTable struct {
	n       int
	lines   [wakeupMaxLines]mem.Line
	nw      [wakeupMaxLines]int
	waiters [wakeupMaxLines][wakeupMaxWaiters]int
}

func (w *wakeupTable) subscribe(l mem.Line, requester int) {
	i := 0
	for i < w.n && w.lines[i] < l {
		i++
	}
	if i == w.n || w.lines[i] != l {
		if w.n >= wakeupMaxLines {
			return
		}
		copy(w.lines[i+1:w.n+1], w.lines[i:w.n])
		copy(w.nw[i+1:w.n+1], w.nw[i:w.n])
		copy(w.waiters[i+1:w.n+1], w.waiters[i:w.n])
		w.lines[i] = l
		w.nw[i] = 0
		w.n++
	}
	k := w.nw[i]
	if k >= wakeupMaxWaiters {
		return
	}
	j := 0
	for j < k && w.waiters[i][j] < requester {
		j++
	}
	if j < k && w.waiters[i][j] == requester {
		return // already subscribed
	}
	copy(w.waiters[i][j+1:k+1], w.waiters[i][j:k])
	w.waiters[i][j] = requester
	w.nw[i] = k + 1
}

func (w *wakeupTable) empty() bool { return w.n == 0 }

func (w *wakeupTable) clear() { w.n = 0 }
