package machine

import (
	"fmt"
	"io"

	"repro/internal/htm"
)

// DumpState writes a human-readable snapshot of every core and directory —
// the first tool to reach for when a run hits MaxCycles.
func (m *Machine) DumpState(w io.Writer) {
	var stateNames = map[nodeState]string{
		nsIdle: "idle", nsRunning: "running", nsWaiting: "waiting",
		nsBackoff: "backoff", nsAborting: "aborting", nsAbortDrain: "abort-drain",
		nsRestartWait: "restart-wait", nsDone: "done",
	}
	fmt.Fprintf(w, "cycle %d, %d events processed\n", m.eng.Now(), m.eng.Processed())
	for _, n := range m.nodes {
		fmt.Fprintf(w, "node %2d: %-12s tx=%v prio=%d attempts=%d static=%d op=%d/%d commits=%d aborts=%d",
			n.id, stateNames[n.state], n.tx.Status, txPrio(n), n.tx.Attempts,
			n.cur.StaticID, n.opIdx, len(n.cur.Ops),
			m.res.PerNodeCommits[n.id], m.res.PerNodeAborts[n.id])
		if n.req != nil {
			fmt.Fprintf(w, " req{line=%v write=%v expected=%d received=%d nack=%v retries=%d}",
				n.req.line, n.req.isWrite, n.req.expected, n.req.received, n.req.sawNack, n.accessRetries)
		}
		fmt.Fprintln(w)
	}
	for i, d := range m.dirs {
		for _, bi := range d.BusyEntries() {
			fmt.Fprintf(w, "dir %2d busy: line=%v req=%d getx=%v since=%d waitWB=%v gotWB=%v gotUnblock=%v unicastTo=%d pending=%d\n",
				i, bi.Line, bi.Requester, bi.IsGETX, bi.Since, bi.WaitWB, bi.GotWB, bi.GotUnblock, bi.UnicastTo, bi.Pending)
		}
	}
	// For every line some node is waiting on, show the directory state and
	// every holder's view — the picture needed to diagnose a stuck forward.
	for _, n := range m.nodes {
		if n.req == nil {
			continue
		}
		l := n.req.line
		st, sharers, owner := m.dirs[m.home.Home(l)].State(l)
		fmt.Fprintf(w, "line %v (req by %d): dir=%v sharers=%v owner=%d holders:", l, n.id, st, sharers, owner)
		for _, h := range m.nodes {
			if e := h.l1.Lookup(l); e != nil {
				fmt.Fprintf(w, " %d:%v(pin=%v,rs=%v,ws=%v)", h.id, e.State, e.Pinned,
					h.tx.InFlight() && h.tx.InReadSet(l), h.tx.InFlight() && h.tx.InWriteSet(l))
			}
			if h.wbWait.has(l) {
				fmt.Fprintf(w, " %d:WB", h.id)
			}
		}
		fmt.Fprintln(w)
	}
}

func txPrio(n *node) htm.Priority {
	if n.tx.InFlight() {
		return n.tx.Prio
	}
	return 0
}
