package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cm"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// nodeState is the core's execution state.
type nodeState uint8

const (
	nsIdle        nodeState = iota // waiting to fetch the next transaction
	nsRunning                      // executing transactional ops
	nsWaiting                      // memory request outstanding
	nsBackoff                      // NACKed; waiting to re-issue the request
	nsAborting                     // rolling back the undo log
	nsAbortDrain                   // rollback done; waiting for an in-flight request to settle
	nsRestartWait                  // post-abort backoff before re-beginning
	nsDone                         // program exhausted
)

// outstanding tracks one in-flight memory request and the responses
// collected so far.
type outstanding struct {
	id       uint64
	line     mem.Line
	lid      mem.LineID // line's interned dense ID (assigned at issue)
	isWrite  bool       // the protocol request is a GETX
	promoted bool       // a load promoted to GETX by the RMW predictor
	isTx     bool
	home     int

	expected  int // sharer responses to collect; -1 until the header arrives
	received  int
	gotHeader bool
	soleDone  bool

	data          mem.LineData
	hasData       bool
	dataFromOwner bool

	sawNack        bool
	tEstMax        sim.Time
	mpSeen         bool
	mpNode         int
	mpPrio         htm.Priority
	abortedSharers int

	abortedLocally bool // our transaction died while this request was in flight

	// staleData marks a pending GETS whose line was invalidated while the
	// data was still in flight from the home node (the directory does not
	// block for GETS serviced from L2, so a later GETX can overtake the
	// response). The arriving copy must be discarded and refetched.
	staleData bool
}

// node is one tile: core + HTM + private L1 + (via machine) its directory
// slice and L2 bank.
type node struct {
	id   int
	m    *Machine
	l1   *cache.Cache
	tx   *htm.Tx
	cmgr cm.Manager
	txlb *core.TxLB
	rng  *sim.RNG

	state nodeState
	prog  Program
	cur   TxInstance
	opIdx int
	phase int    // 0 = read phase, 1 = write phase (OpIncr)
	rdVal uint64 // value loaded by the read phase of an OpIncr

	// req points at reqBuf while a request is in flight (nil otherwise);
	// the buffer is reused across requests so issuing allocates nothing.
	// Stale-response filtering is by ReqID, not pointer identity.
	req           *outstanding
	reqBuf        outstanding
	reqSeq        uint64
	accessRetries int // NACKs endured by the current logical access

	// Per-logical-access outcome accumulation (Fig. 2 classifies each
	// transactional write access once, across all its retries): accFalse
	// marks an issue that aborted sharers AND was NACKed (those aborts
	// were unnecessary); accResolved marks aborts by the final successful
	// issue (necessary conflict resolution).
	accNacked   bool
	accFalse    bool
	accResolved bool
	accIsWrite  bool
	accLive     bool

	// firstLoad associates line -> op index of the first load this attempt;
	// used to train the RMW predictor when the same line is later stored.
	firstLoad firstLoadTable
	// promotedLoads associates line -> op index of loads this attempt
	// issued as exclusive requests on the RMW predictor's advice; used to
	// anti-train the predictor at commit when no store followed.
	promotedLoads lineOpSet

	// wbWait holds Modified victims between PUTX and WBAck; the retained
	// copy services forwards that raced with the writeback.
	wbWait wbTable

	// wakeupSubs (PUNO-Push) records the requesters to ping when this
	// node's transaction finishes.
	wakeupSubs wakeupTable

	pending      sim.EventID // cancellable compute/backoff event
	gateBypassed bool        // inside a BeginGater callback (avoid re-gating)
	doneAt       sim.Time
	ovfStreak    int // consecutive overflow aborts of the current instance

	// Continuation stash for closure-free event dispatch: the parameters of
	// the single in-flight cancellable op event (pendEntry/pendAddr/pendVal)
	// and the copied forward a deferred post-abort grant answers. At most
	// one user of each is in flight at a time.
	pendEntry *cache.Entry
	pendAddr  mem.Addr
	pendVal   uint64
	grantMsg  coherence.Msg
}

func newNode(id int, m *Machine, prog Program, mgr cm.Manager) *node {
	n := &node{
		id: id,
		m:  m,
		l1: cache.New(m.cfg.L1),
		tx: htm.NewTx(id),
	}
	n.tx.SetInterner(m.it)
	n.attach(prog, mgr)
	return n
}

// attach installs the per-run pieces newNode and reset share: the program,
// the contention manager, a fresh TxLB, and the node's forked RNG. The fork
// happens here — after the caller forked the program's RNG — so fresh and
// reused nodes consume the root stream in the same order.
func (n *node) attach(prog Program, mgr cm.Manager) {
	n.prog = prog
	n.cmgr = mgr
	n.txlb = core.NewTxLB(n.m.cfg.TxLBEntries)
	n.rng = n.m.rootRNG.Fork(uint64(n.id) + 1)
}

// reset rearms the node for a fresh run under the machine's (possibly new)
// config, reusing its containers: the L1 array, the HTM context's set/undo
// storage, the writeback map, and the lineOpSet backing slices. Every other
// field reverts to its newNode zero value wholesale, so a forgotten field
// cannot leak state between arena-reused runs.
func (n *node) reset(prog Program, mgr cm.Manager) {
	n.l1.Reset(n.m.cfg.L1)
	n.tx.HardReset(n.id)
	n.tx.SetInterner(n.m.it)
	wb := n.wbWait
	wb.reset()
	fl, pl := n.firstLoad, n.promotedLoads
	fl.reset()
	pl.reset()
	*n = node{
		id:            n.id,
		m:             n.m,
		l1:            n.l1,
		tx:            n.tx,
		wbWait:        wb,
		firstLoad:     fl,
		promotedLoads: pl,
	}
	n.attach(prog, mgr)
}

// Node event codes for closure-free continuation dispatch (sim.Handler).
const (
	nevExecOp       uint64 = iota // cancellable: begin-cost elapsed, run the op
	nevOpDone                     // cancellable: compute op finished
	nevReadPhase                  // cancellable: L1 hit latency elapsed (load)
	nevWriteDone                  // cancellable: L1 hit latency elapsed (store)
	nevReissue                    // cancellable: backoff expired, retry access
	nevFetchNext                  // think time / stagger elapsed
	nevFinishAbort                // rollback latency elapsed
	nevCommitDone                 // commit cost elapsed
	nevRestartBegin               // restart wait elapsed
	nevGrantAborted               // post-abort grant of the stashed forward
)

// OnEvent implements sim.Handler: the word selects the continuation.
// Cancellable continuations clear n.pending first, mirroring the old
// closure wrapper.
func (n *node) OnEvent(_ any, word uint64) {
	switch word {
	case nevExecOp:
		n.pending = sim.EventID{}
		n.execOp()
	case nevOpDone:
		n.pending = sim.EventID{}
		n.opDone()
	case nevReadPhase:
		n.pending = sim.EventID{}
		n.readPhaseDone(n.pendEntry, n.pendAddr)
	case nevWriteDone:
		n.pending = sim.EventID{}
		n.writeDone(n.pendEntry, n.pendAddr, n.pendVal)
	case nevReissue:
		n.pending = sim.EventID{}
		n.reissue()
	case nevFetchNext:
		n.fetchNext()
	case nevFinishAbort:
		n.finishAbort()
	case nevCommitDone:
		n.commitDone()
	case nevRestartBegin:
		n.beginAttempt(true)
	case nevGrantAborted:
		g := n.grantMsg
		n.grant(&g, true)
	default:
		panic(fmt.Sprintf("machine: node %d unknown event code %d", n.id, word))
	}
}

// afterEv schedules a continuation on this node.
//
//puno:hot
func (n *node) afterEv(d sim.Time, code uint64) { n.m.eng.AfterEvent(d, n, nil, code) }

// trace emits a debug event when tracing is enabled.
func (n *node) trace(format string, args ...any) {
	if n.m.cfg.TraceFn != nil {
		n.m.cfg.TraceFn(n.m.eng.Now(), n.id, fmt.Sprintf(format, args...))
	}
}

// afterCancellableEv schedules a continuation and remembers the event so
// an abort can cancel it.
//
//puno:hot
func (n *node) afterCancellableEv(d sim.Time, code uint64) {
	n.pending = n.m.eng.AfterEvent(d, n, nil, code)
}

func (n *node) cancelPending() {
	if !n.pending.Zero() {
		n.m.eng.Cancel(n.pending)
		n.pending = sim.EventID{}
	}
}

// ---- program driving -------------------------------------------------

// start begins the thread with a small per-node stagger.
func (n *node) start() {
	n.afterEv(sim.Time(n.id)+1, nevFetchNext)
}

func (n *node) fetchNext() {
	tx, ok := n.prog.Next(n.rng)
	if !ok {
		n.state = nsDone
		n.doneAt = n.m.eng.Now()
		n.m.threadDone()
		return
	}
	n.cur = tx
	n.beginAttempt(false)
}

// beginAttempt starts (or restarts) the current instance, first passing
// through the contention manager's begin gate when it has one (proactive
// scheduling schemes serialize high-contention threads here).
func (n *node) beginAttempt(retry bool) {
	if g, ok := n.cmgr.(BeginGater); ok && !n.gateBypassed {
		n.gateBypassed = true
		g.RequestBegin(func() {
			n.beginAttempt(retry)
			n.gateBypassed = false
		})
		return
	}
	n.gateBypassed = false
	if n.tx.Status == htm.StatusCommitted || n.tx.Status == htm.StatusAborted {
		n.tx.Reset()
	}
	n.tx.Begin(n.cur.StaticID, n.m.eng.Now(), retry)
	n.state = nsRunning
	n.opIdx = 0
	n.phase = 0
	n.accessRetries = 0
	n.firstLoad.reset()
	n.promotedLoads.reset()
	n.afterCancellableEv(n.m.cfg.Costs.BeginCycles, nevExecOp)
}

// execOp dispatches the current operation (or commits when done).
func (n *node) execOp() {
	if n.state != nsRunning {
		panic(fmt.Sprintf("machine: node %d execOp in state %d", n.id, n.state))
	}
	if n.opIdx >= len(n.cur.Ops) {
		n.commit()
		return
	}
	op := n.cur.Ops[n.opIdx]
	switch op.Kind {
	case OpCompute:
		n.afterCancellableEv(op.Cycles, nevOpDone)
	case OpRead:
		n.accessRead(op.Addr)
	case OpWrite:
		n.accessWrite(op.Addr, op.Value)
	case OpIncr:
		if n.phase == 0 {
			n.accessRead(op.Addr)
		} else {
			n.accessWrite(op.Addr, n.rdVal+1)
		}
	}
}

// finishAccess classifies a completed (or killed) transactional write
// access for Fig. 2 and resets the per-access accumulators.
func (n *node) finishAccess() {
	if n.accLive && n.accIsWrite {
		n.m.res.TxGETXAccesses++
		switch {
		case n.accFalse:
			n.m.res.GETXOutcomes[OutcomeFalseAbort]++
		case n.accResolved:
			n.m.res.GETXOutcomes[OutcomeResolvedAborts]++
		case n.accNacked:
			n.m.res.GETXOutcomes[OutcomeNackOnly]++
		default:
			n.m.res.GETXOutcomes[OutcomeClean]++
		}
	}
	n.accLive = false
	n.accNacked = false
	n.accFalse = false
	n.accResolved = false
	n.accIsWrite = false
}

// opDone advances past the current op.
func (n *node) opDone() {
	n.opIdx++
	n.phase = 0
	n.accessRetries = 0
	n.execOp()
}

// readPhaseDone finishes a load: record the read and move to the next op or
// the write phase of an OpIncr. The entry is looked up afresh: during the
// hit latency the line is not yet in the read set, so a forwarded
// invalidation may have removed it — in that case the access simply retries
// as a miss.
func (n *node) readPhaseDone(e *cache.Entry, a mem.Addr) {
	l := mem.LineOf(a)
	if e == nil || e.Line != l || e.State == cache.Invalid {
		n.execOp()
		return
	}
	n.tx.RecordReadID(l, e.LID)
	n.trace("read %v = %d (state %v)", l, e.Data[mem.WordIndex(a)], e.State)
	e.Pinned = true
	n.firstLoad.record(e.LID, n.opIdx)
	n.rdVal = e.Data[mem.WordIndex(a)]
	if n.cur.Ops[n.opIdx].Kind == OpIncr {
		n.phase = 1
		n.accessRetries = 0
		n.execOp()
		return
	}
	n.opDone()
}

// writeDone finishes a store into an Exclusive/Modified resident line. As
// with readPhaseDone, the line may have been stolen during the hit latency
// (it was not yet in the write set); re-validate and retry on loss.
func (n *node) writeDone(e *cache.Entry, a mem.Addr, v uint64) {
	l := mem.LineOf(a)
	if e == nil || e.Line != l || (e.State != cache.Modified && e.State != cache.Exclusive) {
		n.execOp()
		return
	}
	old := e.Data[mem.WordIndex(a)]
	n.trace("write %v: %d -> %d", l, old, v)
	n.tx.RecordWriteID(l, e.LID, a, old)
	e.Pinned = true
	e.State = cache.Modified
	e.Data[mem.WordIndex(a)] = v
	if loadIdx, ok := n.firstLoad.get(e.LID); ok {
		n.cmgr.ObserveRMW(n.cur.StaticID, loadIdx)
	}
	n.opDone()
}

func (n *node) accessRead(a mem.Addr) {
	l := mem.LineOf(a)
	promoted := n.cmgr.PromoteLoad(n.cur.StaticID, n.opIdx)
	e := n.l1.Access(l)
	if promoted {
		n.promotedLoads.put(l, n.opIdx)
	}
	if e != nil {
		if promoted && e.State == cache.Shared {
			// Predicted RMW load with only shared permission: upgrade now.
			n.issue(l, e.LID, true, true, false)
			return
		}
		n.pendEntry, n.pendAddr = e, a
		n.afterCancellableEv(n.m.cfg.L1HitLatency, nevReadPhase)
		return
	}
	if promoted {
		n.issue(l, 0, true, true, true)
	} else {
		n.issue(l, 0, false, false, true)
	}
}

func (n *node) accessWrite(a mem.Addr, v uint64) {
	l := mem.LineOf(a)
	e := n.l1.Access(l)
	if e != nil && (e.State == cache.Modified || e.State == cache.Exclusive) {
		n.pendEntry, n.pendAddr, n.pendVal = e, a, v
		n.afterCancellableEv(n.m.cfg.L1HitLatency, nevWriteDone)
		return
	}
	if e != nil && e.State == cache.Shared {
		n.issue(l, e.LID, true, false, false) // upgrade
		return
	}
	n.issue(l, 0, true, false, true)
}

// issue sends a GETS/GETX to the line's home directory. lid is l's interned
// ID when the caller already holds it (upgrade paths); a miss interns here,
// the line's single first-touch point on the request path.
func (n *node) issue(l mem.Line, lid mem.LineID, isWrite, promoted, needData bool) {
	if lid == 0 {
		lid = n.m.it.Intern(l)
	}
	n.reqSeq++
	home := n.m.home.Home(l)
	n.reqBuf = outstanding{
		id: n.reqSeq, line: l, lid: lid, isWrite: isWrite, promoted: promoted,
		isTx: true, home: home, expected: -1,
	}
	n.req = &n.reqBuf
	n.state = nsWaiting
	mt := coherence.MsgGETS
	if isWrite {
		mt = coherence.MsgGETX
		if n.tx.Running() {
			n.m.res.TxGETXIssued++
		}
	}
	n.m.sendMsg(coherence.Msg{
		Type: mt, Line: l, LID: lid, Src: n.id, Dst: home, Requester: n.id,
		ReqID: n.reqSeq, IsTx: true, Prio: n.tx.Prio, IsWrite: isWrite,
		NeedData: needData, AvgTxLen: n.txlb.GlobalAverage(),
	})
}

func (n *node) commit() {
	n.ovfStreak = 0
	n.fireWakeups()
	if g, ok := n.cmgr.(BeginGater); ok {
		g.NotifyOutcome(false)
	}
	// Anti-train the RMW predictor for promoted loads that never stored.
	for i, l := range n.promotedLoads.lines {
		if !n.tx.InWriteSet(l) {
			n.cmgr.ObserveNonRMW(n.cur.StaticID, n.promotedLoads.ops[i])
		}
	}
	if n.m.cfg.TraceFn != nil {
		ws := ""
		n.tx.ForEachSetLine(func(l mem.Line, w bool) {
			if w {
				ws += " " + l.String()
			}
		})
		n.trace("commit static=%d prio=%d writes:%s", n.cur.StaticID, n.tx.Prio, ws)
	}
	cost := n.tx.Commit(n.m.cfg.Costs)
	n.afterEv(cost, nevCommitDone)
}

// commitDone finishes a commit after its cost has elapsed.
func (n *node) commitDone() {
	now := n.m.eng.Now()
	dynLen := now - n.tx.BeginCycle
	n.txlb.Update(n.cur.StaticID, dynLen)
	n.unpinSets()
	n.m.res.Commits++
	n.m.res.PerNodeCommits[n.id]++
	n.m.res.GoodCycles += uint64(dynLen)
	n.m.noteCommit(n, n.cur)
	n.state = nsIdle
	n.afterEv(n.cur.ThinkCycles+1, nevFetchNext)
}

func (n *node) unpinSets() {
	n.tx.ForEachSetLine(func(l mem.Line, _ bool) {
		if e := n.l1.Lookup(l); e != nil {
			e.Pinned = false
		}
	})
}

// ---- abort flow --------------------------------------------------------

// abortTx tears down the running attempt. Returns the rollback latency.
// Callers that owe a coherence response must schedule it after that
// latency.
func (n *node) abortTx(cause AbortCause, overflow bool) sim.Time {
	if !n.tx.Running() {
		panic(fmt.Sprintf("machine: node %d abort while not running", n.id))
	}
	n.m.res.Aborts++
	n.m.res.PerNodeAborts[n.id]++
	n.m.res.AbortsByCause[cause]++
	n.trace("abort cause=%d prio=%d attempts=%d", cause, n.tx.Prio, n.tx.Attempts)
	n.m.res.DiscardedCycles += uint64(n.m.eng.Now() - n.tx.BeginCycle)

	n.cancelPending()
	n.finishAccess()
	if n.req != nil {
		n.req.abortedLocally = true
	}

	// Restore pre-transaction values into the cached lines immediately
	// (the latency models when the restoration completes). Newest-first, so
	// multiply-written words end at their pre-transaction value.
	for i := n.tx.LogEntries() - 1; i >= 0; i-- {
		entry := n.tx.UndoEntry(i)
		l := mem.LineOf(entry.Addr)
		if e := n.l1.Lookup(l); e != nil {
			e.Data[mem.WordIndex(entry.Addr)] = entry.Old
		}
	}
	lat := n.tx.StartAbort(n.m.cfg.Costs, overflow)
	n.state = nsAborting
	n.afterEv(lat, nevFinishAbort)
	return lat
}

func (n *node) finishAbort() {
	n.unpinSets()
	n.tx.FinishAbort()
	n.fireWakeups()
	if g, ok := n.cmgr.(BeginGater); ok {
		g.NotifyOutcome(true)
	}
	if n.req != nil {
		n.state = nsAbortDrain // restart once the in-flight request settles
		return
	}
	n.scheduleRestart()
}

func (n *node) scheduleRestart() {
	n.state = nsRestartWait
	delay := n.cmgr.RestartDelay(n.rng, n.tx.Attempts)
	n.m.res.RestartWaitCycle += uint64(delay)
	n.afterEv(delay, nevRestartBegin)
}

// ---- request-response collection ---------------------------------------

// handleResponse processes a message addressed to this node as requester.
func (n *node) handleResponse(m *coherence.Msg) {
	r := n.req
	if r == nil || m.ReqID != r.id {
		return // stale response from a superseded request
	}
	switch m.Type {
	case coherence.MsgNackBusy:
		n.req = nil
		if r.abortedLocally {
			n.drainContinue()
			return
		}
		delay := n.m.cfg.BusyRetryDelay
		if j := n.m.cfg.BusyRetryJitter; j > 0 {
			delay += sim.Time(n.rng.Uint64n(uint64(j)))
		}
		n.state = nsBackoff
		n.afterCancellableEv(delay, nevReissue)
		return
	case coherence.MsgData:
		if m.Sole {
			r.soleDone = true
			r.data = m.Data
			r.hasData = true
			r.dataFromOwner = true
			if m.AbortedSharer {
				r.abortedSharers++
			}
		} else {
			r.gotHeader = true
			r.expected = m.AckCount
			r.data = m.Data
			r.hasData = true
		}
	case coherence.MsgAckCount:
		r.gotHeader = true
		r.expected = m.AckCount
	case coherence.MsgAck:
		r.received++
		if m.AbortedSharer {
			r.abortedSharers++
		}
	case coherence.MsgNack:
		r.received++
		r.sawNack = true
		if m.TEst > r.tEstMax {
			r.tEstMax = m.TEst
		}
		if m.MPBit {
			r.mpSeen = true
			r.mpNode = m.Src
			r.mpPrio = m.Prio
		}
		if m.Sole {
			r.soleDone = true
		}
	default:
		panic(fmt.Sprintf("machine: node %d unexpected response %v", n.id, m.Type))
	}
	if r.soleDone || (r.gotHeader && r.received >= r.expected) {
		n.trace("req %d line %v complete: nack=%v aborted=%d write=%v data=%v", r.id, r.line, r.sawNack, r.abortedSharers, r.isWrite, r.hasData)
		n.completeRequest()
	}
}

// completeRequest finalizes the outstanding request: classification,
// UNBLOCK, install or retry.
func (n *node) completeRequest() {
	r := n.req
	n.req = nil

	// Fig. 3: each NACKed request that aborted sharers is one
	// false-aborting case; Fig. 2 classification accumulates across the
	// access's retries and is finalized in finishAccess.
	if r.isWrite && r.isTx {
		n.accLive = true
		n.accIsWrite = true
		if r.sawNack {
			n.accNacked = true
			if r.abortedSharers > 0 {
				n.accFalse = true
				n.m.res.bumpFalseAbort(r.abortedSharers)
			}
		} else if r.abortedSharers > 0 {
			n.accResolved = true
		}
	}

	if r.sawNack {
		n.m.res.Nacks++
		n.sendUnblock(r, false)
		if r.abortedLocally {
			n.finishAccess()
			n.drainContinue()
			return
		}
		// Backoff, then re-run the access (it may hit by then).
		delay := n.cmgr.RetryDelay(n.rng, n.accessRetries, r.tEstMax)
		if r.tEstMax > 0 {
			n.m.res.NotifiedBackoffs++
		}
		n.accessRetries++
		n.m.res.Retries++
		n.m.res.BackoffCycles += uint64(delay)
		n.state = nsBackoff
		n.afterCancellableEv(delay, nevReissue)
		return
	}

	if r.staleData && !r.dataFromOwner {
		// The home-sourced copy was invalidated while in flight: discard
		// and refetch. The directory never blocked for a home-serviced
		// read, so no UNBLOCK is owed. (Owner-sourced data is always the
		// live copy — the invalidation that set the flag belonged to the
		// service that made that node the owner — so it is installed
		// normally below, and its blocked directory gets its UNBLOCK.)
		if r.abortedLocally {
			n.drainContinue()
			return
		}
		n.state = nsBackoff
		n.afterCancellableEv(n.m.cfg.BusyRetryDelay, nevReissue)
		return
	}

	// Success: install the line.
	if r.abortedLocally {
		n.finishAccess()
		if r.isWrite && !r.hasData && n.l1.Lookup(r.line) == nil {
			// Dataless upgrade whose shared copy vanished while our
			// transaction died: nothing valid to install, so fail the
			// request instead of taking ownership of garbage.
			n.sendUnblock(r, false)
		} else {
			n.installPostAbort(r)
			n.sendUnblock(r, true)
		}
		n.drainContinue()
		return
	}
	e := n.l1.Lookup(r.line)
	if e == nil && !r.hasData {
		// Upgrade hazard: our shared copy was invalidated by an earlier
		// request while this dataless upgrade was in flight, so there is
		// nothing to install. Fail the request (the directory restores its
		// pre-request state) and retry as a full fetch.
		n.sendUnblock(r, false)
		n.m.res.Retries++
		n.state = nsBackoff
		n.afterCancellableEv(n.m.cfg.BusyRetryDelay, nevReissue)
		return
	}
	if e == nil {
		st := cache.Shared
		if r.isWrite {
			st = cache.Modified
		}
		var evicted cache.Entry
		var was bool
		e, evicted, was = n.l1.InsertID(r.line, r.lid, st, r.data)
		if e == nil {
			// Transactional overflow: every way pinned. Fail the request
			// so the directory restores, then abort with the penalty.
			n.sendUnblock(r, false)
			n.ovfStreak++
			if n.ovfStreak >= 8 {
				n.m.fail(fmt.Errorf("machine: node %d static tx %d overflows the L1 on every attempt (footprint does not fit)", n.id, n.cur.StaticID))
				return
			}
			n.abortTx(CauseOverflow, true)
			return
		}
		if was {
			n.handleEviction(evicted)
		}
	} else if r.isWrite {
		e.State = cache.Modified
	}
	n.sendUnblock(r, true)

	// Resume the access that needed this line.
	n.finishAccess()
	op := n.cur.Ops[n.opIdx]
	n.state = nsRunning
	n.accessRetries = 0
	switch {
	case !r.isWrite || r.promoted:
		// A load (possibly promoted to exclusive).
		if r.promoted {
			e.State = cache.Modified
		}
		n.readPhaseDone(e, op.Addr)
	default:
		v := op.Value
		if op.Kind == OpIncr {
			v = n.rdVal + 1
		}
		n.writeDone(e, op.Addr, v)
	}
}

// installPostAbort caches a line that arrived after our transaction died.
// The protocol completed, so we take the copy (unpinned); the data is
// untouched.
func (n *node) installPostAbort(r *outstanding) {
	if e := n.l1.Lookup(r.line); e != nil {
		if r.isWrite {
			e.State = cache.Modified
		}
		return
	}
	st := cache.Shared
	if r.isWrite {
		st = cache.Modified
	}
	if e, evicted, was := n.l1.InsertID(r.line, r.lid, st, r.data); e != nil && was {
		n.handleEviction(evicted)
	}
}

func (n *node) drainContinue() {
	if n.state == nsAbortDrain {
		n.scheduleRestart()
	}
}

func (n *node) reissue() {
	n.state = nsRunning
	n.execOp()
}

func (n *node) sendUnblock(r *outstanding, success bool) {
	if !r.isWrite && !r.dataFromOwner && !r.sawNack {
		return // GETS satisfied at the home node: the directory never blocked
	}
	if !r.isWrite && !r.dataFromOwner && r.sawNack && !r.soleDone {
		return // defensive: a GETS can only be NACKed by a sole owner
	}
	msg := coherence.Msg{
		Type: coherence.MsgUnblock, Line: r.line, LID: r.lid, Src: n.id, Dst: r.home,
		Requester: n.id, ReqID: r.id, Success: success,
		AbortedSharers: r.abortedSharers,
	}
	if r.mpSeen {
		msg.MPBit = true
		msg.MPNode = r.mpNode
		msg.Prio = r.mpPrio
	}
	n.m.sendMsg(msg)
}

// handleEviction processes a victim displaced from the L1.
func (n *node) handleEviction(v cache.Entry) {
	if v.Pinned {
		panic(fmt.Sprintf("machine: node %d evicted pinned line %v", n.id, v.Line))
	}
	if v.State != cache.Modified {
		return // silent eviction of clean lines
	}
	// Retain the data until the directory acknowledges the writeback.
	n.wbWait.put(v.Line, v.LID, v.Data)
	n.m.sendMsg(coherence.Msg{
		Type: coherence.MsgPUTX, Line: v.Line, LID: v.LID, Src: n.id,
		Dst: n.m.home.Home(v.Line), Requester: n.id,
		Data: v.Data, HasData: true,
	})
}

// ---- forward (sharer/owner) handling ------------------------------------

// handleForward services a directory-forwarded request against this node's
// cache and transactional state.
func (n *node) handleForward(f *coherence.Msg) {
	l := f.Line
	n.trace("fwd %v line %v from req%d prio=%d write=%v ubit=%v", f.Type, f.Line, f.Requester, f.Prio, f.IsWrite, f.UBit)
	if n.tx.Running() && n.tx.ConflictsWithID(l, f.LID, f.IsWrite) {
		if htm.Older(n.tx.Prio, n.id, f.Prio, f.Requester) {
			// We win: NACK, with a T_est notification when the scheme
			// enables it (a correctly predicted unicast always notifies).
			n.subscribeWakeup(l, f.Requester)
			n.nack(f, n.tEst(), false, true)
			return
		}
		if f.UBit {
			// Misprediction: we would lose, but granting a unicast request
			// would bypass the other sharers. NACK conservatively with MP
			// feedback carrying our true (younger) priority (Sec. III-C).
			n.nack(f, 0, true, true)
			return
		}
		// We lose: abort, then grant after rollback completes.
		cause := CauseTxGETS
		if f.IsWrite {
			cause = CauseTxGETX
		}
		if !f.IsTx {
			cause = CauseNonTx
		}
		lat := n.abortTx(cause, false)
		// The dispatcher recycles f when we return; stash a copy for the
		// deferred grant. Only this path defers, and abortTx cannot run
		// again before the grant fires, so one stash slot suffices.
		n.grantMsg = *f
		n.afterEv(lat, nevGrantAborted)
		return
	}
	if n.tx.Status == htm.StatusAborting && n.tx.InWriteSetID(l, f.LID) {
		// Mid-rollback: the speculative data is not yet restored. NACK;
		// flag a misprediction on unicasts so the stale priority is purged
		// (the dying transaction will not nack this line again). The
		// rollback completes shortly, so the waiter subscribes for the
		// wakeup that finishAbort fires.
		n.subscribeWakeup(l, f.Requester)
		n.nack(f, 0, f.UBit, false)
		return
	}
	if f.UBit {
		// Unicast to a node with no conflicting transaction: the
		// prediction was stale. NACK with MP feedback — granting is
		// unsafe because the other sharers kept their copies. Report
		// NoPriority ("I will not nack this line"): the node may still be
		// on the directory's conservative sharer list without holding the
		// line, and refreshing its old retained priority would make the
		// predictor re-pick it on every retry.
		n.nack(f, 0, true, false)
		return
	}
	n.grant(f, false)
}

// tEst computes the notification payload: this transaction's estimated
// remaining cycles, when the scheme enables notification.
func (n *node) tEst() sim.Time {
	if !n.cmgr.Notify() {
		return 0
	}
	elapsed := n.m.eng.Now() - n.tx.BeginCycle
	return n.txlb.EstimateRemaining(n.cur.StaticID, elapsed)
}

// nack rejects a forward. conflicting reports whether this node holds a
// genuine conflict on the line: a conflicting misprediction NACK carries
// this node's true current priority so the directory can refresh its stale
// P-Buffer entry (via the requester's UNBLOCK), while a non-conflicting one
// carries NoPriority ("I will not nack this line"), invalidating it.
func (n *node) nack(f *coherence.Msg, tEst sim.Time, mp bool, conflicting bool) {
	prio := htm.NoPriority
	if conflicting && n.tx.InFlight() {
		prio = n.tx.Prio
	}
	n.m.sendMsg(coherence.Msg{
		Type: coherence.MsgNack, Line: f.Line, Src: n.id, Dst: f.Requester,
		Requester: f.Requester, ReqID: f.ReqID, Prio: prio,
		TEst: tEst, MPBit: mp, UBit: f.UBit, Sole: f.UBit || n.isOwnerResponse(f.Line),
	})
}

// isOwnerResponse reports whether this node is responding as the line's
// exclusive owner (so its response is the only one the requester gets).
func (n *node) isOwnerResponse(l mem.Line) bool {
	if n.wbWait.has(l) {
		return true
	}
	e := n.l1.Lookup(l)
	return e != nil && (e.State == cache.Modified || e.State == cache.Exclusive)
}

// grant satisfies a forward: invalidation ACK from a sharer, or a
// cache-to-cache transfer from the owner. aborted marks responses that
// followed a self-abort (counted by the requester for Figs. 2/3).
func (n *node) grant(f *coherence.Msg, aborted bool) {
	l := f.Line
	if f.IsWrite && n.req != nil && n.req.line == l && !n.req.isWrite {
		// We are honouring an invalidation while our own read of the same
		// line is in flight: the data that arrives may predate the write,
		// so it must be discarded. (Set only on granted forwards — a
		// NACKed request invalidates nothing, and flagging it would let a
		// repeatedly NACKed unicast writer starve our pending read.)
		n.req.staleData = true
	}
	if data, ok := n.wbWait.get(l); ok {
		// Our PUTX raced with this forward; serve it from the retained
		// copy and drop the line (the directory will answer WBStale).
		n.wbWait.del(l)
		n.sendOwnerData(f, data, aborted)
		if !f.IsWrite {
			// A read downgrade blocks the directory until the writeback
			// copy arrives; send it even though our cached line is gone.
			n.m.sendMsg(coherence.Msg{
				Type: coherence.MsgWBData, Line: l, LID: f.LID, Src: n.id, Dst: n.m.home.Home(l),
				Data: data, HasData: true,
			})
		}
		return
	}
	e := n.l1.Lookup(l)
	if e == nil {
		if !f.IsWrite {
			// FwdGETS reaches us only as the registered owner, and an
			// owner's copy leaves only through a forward (directory
			// serialized) or a writeback (retained in wbWait until WBAck),
			// so a missing line here is protocol drift.
			panic(fmt.Sprintf("machine: node %d got FwdGETS for %v but holds no copy", n.id, l))
		}
		// Silently evicted shared line: acknowledge the invalidation.
		n.m.sendMsg(coherence.Msg{
			Type: coherence.MsgAck, Line: l, Src: n.id, Dst: f.Requester,
			Requester: f.Requester, ReqID: f.ReqID, AbortedSharer: aborted,
		})
		return
	}
	isOwner := e.State == cache.Modified || e.State == cache.Exclusive
	if f.IsWrite {
		data := e.Data
		n.l1.Invalidate(l)
		if isOwner {
			n.sendOwnerData(f, data, aborted)
		} else {
			n.m.sendMsg(coherence.Msg{
				Type: coherence.MsgAck, Line: l, Src: n.id, Dst: f.Requester,
				Requester: f.Requester, ReqID: f.ReqID, AbortedSharer: aborted,
			})
		}
		return
	}
	// FwdGETS reaches us only as owner: downgrade, send data to the
	// requester and a writeback copy to the directory.
	if !isOwner {
		panic(fmt.Sprintf("machine: node %d got FwdGETS without ownership of %v", n.id, l))
	}
	e.State = cache.Shared
	n.sendOwnerData(f, e.Data, aborted)
	n.m.sendMsg(coherence.Msg{
		Type: coherence.MsgWBData, Line: l, LID: f.LID, Src: n.id, Dst: n.m.home.Home(l),
		Data: e.Data, HasData: true,
	})
}

func (n *node) sendOwnerData(f *coherence.Msg, data mem.LineData, aborted bool) {
	n.m.sendMsg(coherence.Msg{
		Type: coherence.MsgData, Line: f.Line, Src: n.id, Dst: f.Requester,
		Requester: f.Requester, ReqID: f.ReqID, Data: data, HasData: true,
		Sole: true, AbortedSharer: aborted,
	})
}

// subscribeWakeup (PUNO-Push) records a NACKed requester to ping when this
// transaction finishes. The table is bounded like the hardware would be:
// at most 8 lines with 4 waiters each.
func (n *node) subscribeWakeup(l mem.Line, requester int) {
	if n.m.cfg.Scheme != SchemePUNOPush {
		return
	}
	n.wakeupSubs.subscribe(l, requester)
}

// fireWakeups (PUNO-Push) pings every recorded waiter: this node's
// transaction has committed or finished aborting, so its NACKs no longer
// stand and the waiters should retry immediately instead of sleeping out
// their estimates. This implements the paper's future-work item of
// "performing coherence actions speculatively to accelerate
// inter-transaction communication". The table keeps lines and waiters
// sorted ascending, so this walk reproduces the send order the NoC's
// per-cycle serialization makes part of the deterministic trajectory.
func (n *node) fireWakeups() {
	if n.wakeupSubs.empty() {
		return
	}
	if TestHookReverseWakeups {
		for i := n.wakeupSubs.n - 1; i >= 0; i-- {
			n.fireWakeupLine(i)
		}
	} else {
		for i := 0; i < n.wakeupSubs.n; i++ {
			n.fireWakeupLine(i)
		}
	}
	n.wakeupSubs.clear()
}

// TestHookReverseWakeups, when set, makes fireWakeups walk its line table
// in descending instead of ascending order — the unordered-iteration bug
// shape the wakeup table's sorted invariant exists to prevent. It changes
// only the relative send order of same-cycle wakeups, so the run stays
// legal but follows a divergent trajectory: exactly the signal the event
// differ exists to catch. Tests only; must be false in any real run.
var TestHookReverseWakeups bool

// fireWakeupLine pings every waiter recorded for the i'th subscribed line.
func (n *node) fireWakeupLine(i int) {
	l := n.wakeupSubs.lines[i]
	for j := 0; j < n.wakeupSubs.nw[i]; j++ {
		dst := n.wakeupSubs.waiters[i][j]
		n.m.sendMsg(coherence.Msg{
			Type: coherence.MsgWakeup, Line: l, Src: n.id, Dst: dst,
			Requester: dst,
		})
	}
}

// handleWakeup retries the current access immediately when a wakeup names
// the line this node is backing off on; stale wakeups are dropped.
func (n *node) handleWakeup(m *coherence.Msg) {
	if n.state != nsBackoff {
		return
	}
	if n.opIdx >= len(n.cur.Ops) {
		return
	}
	op := n.cur.Ops[n.opIdx]
	if op.Kind == OpCompute || mem.LineOf(op.Addr) != m.Line {
		return
	}
	n.cancelPending()
	n.state = nsRunning
	n.execOp()
}

// handleWB processes writeback acknowledgements.
func (n *node) handleWB(m *coherence.Msg) {
	switch m.Type {
	case coherence.MsgWBAck:
		n.wbWait.del(m.Line)
	case coherence.MsgWBStale:
		// A forward is (or was) in flight and will consume the retained
		// copy; nothing to do — grant() removes the entry when it arrives.
	default:
		panic(fmt.Sprintf("machine: node %d unexpected WB message %v", n.id, m.Type))
	}
}
