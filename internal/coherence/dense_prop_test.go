package coherence

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestDenseEntryTableMatchesMapModel drives the directory's dense
// LineID-indexed entry store — entry creation, state mutation, idle
// recycling, and full Resets — against a plain map[Line]*model reference
// under seeded random streams, and requires the two to agree on which
// entries are live and what state they hold. This is the contract the
// handlers rely on now that no Go map sits on the request path.
func TestDenseEntryTableMatchesMapModel(t *testing.T) {
	type modelEntry struct {
		state   DirState
		sharers nodeSet
		owner   int
	}
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRNG(seed * 131)
		env := newMockEnv()
		d := NewDirectory(0, 16, env, nil)
		it := env.Interner()
		model := make(map[mem.Line]*modelEntry)

		line := func() mem.Line { return mem.Line(uint64(rng.Intn(150)) * mem.LineBytes) }

		for step := 0; step < 6000; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // touch: create-or-get and mutate
				l := line()
				e := d.entry(l, it.Intern(l))
				m, ok := model[l]
				if !ok {
					m = &modelEntry{state: DirInvalid, owner: -1}
					model[l] = m
				}
				if e.state != m.state || e.sharers != m.sharers || e.owner != m.owner {
					t.Fatalf("seed %d step %d: entry(%v) = {%v %v %d}, model {%v %v %d}",
						seed, step, l, e.state, e.sharers, e.owner, m.state, m.sharers, m.owner)
				}
				// Random mutation, mirrored into the model. Sharer bits span
				// the set's full width so the multi-word nodeSet is exercised
				// beyond word 0.
				switch rng.Intn(3) {
				case 0:
					e.state, m.state = DirShared, DirShared
					n := rng.Intn(MaxNodes)
					e.sharers.add(n)
					m.sharers.add(n)
				case 1:
					o := rng.Intn(16)
					e.state, m.state = DirModified, DirModified
					e.owner, m.owner = o, o
					e.sharers, m.sharers = nodeSet{}, nodeSet{}
				case 2: // back to idle-default (recyclable)
					e.state, m.state = DirInvalid, DirInvalid
					e.sharers, m.sharers = nodeSet{}, nodeSet{}
					e.owner, m.owner = -1, -1
				}
			case 4, 5, 6: // recycle attempt
				l := line()
				if e := d.lookup(it.Lookup(l)); e != nil {
					d.recycleIfIdle(e)
					m := model[l]
					if m.state == DirInvalid {
						delete(model, l) // idle entries are dropped
					}
				}
			case 7, 8: // liveness agreement
				l := line()
				e := d.lookup(it.Lookup(l))
				_, ok := model[l]
				if (e != nil) != ok {
					t.Fatalf("seed %d step %d: lookup(%v) live=%v, model live=%v", seed, step, l, e != nil, ok)
				}
				if e != nil {
					m := model[l]
					if e.state != m.state || e.sharers != m.sharers || e.owner != m.owner {
						t.Fatalf("seed %d step %d: lookup(%v) = {%v %v %d}, model {%v %v %d}",
							seed, step, l, e.state, e.sharers, e.owner, m.state, m.sharers, m.owner)
					}
				}
			case 9:
				if rng.Intn(200) == 0 { // rare: full reset, capacity retained
					d.Reset(nil)
					clear(model)
				}
			}
			if len(d.slab)-len(d.free) != len(model) {
				t.Fatalf("seed %d step %d: %d live slots (slab %d - free %d), model %d",
					seed, step, len(d.slab)-len(d.free), len(d.slab), len(d.free), len(model))
			}
		}
	}
}

// TestDenseEntryTableGrowth forces the slot index through repeated
// within-capacity re-extension and fresh growth: interleaves Resets with
// ascending-ID touches and checks stale slot mappings never resurface.
func TestDenseEntryTableGrowth(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	it := env.Interner()
	for round := 0; round < 6; round++ {
		n := 50 * (round + 1) // extends past the previous round's len
		for i := 0; i < n; i++ {
			l := mem.Line(uint64(i) * mem.LineBytes)
			e := d.entry(l, it.Intern(l))
			if e.line != l {
				t.Fatalf("round %d: entry for %v holds line %v", round, l, e.line)
			}
			if e.state != DirInvalid || e.busy || len(e.pending) != 0 {
				t.Fatalf("round %d: fresh entry for %v not in default state: %+v", round, l, *e)
			}
			e.state = DirShared // dirty it so recycling can't hide staleness
		}
		if got := len(d.slab); got != n {
			t.Fatalf("round %d: slab has %d entries, want %d", round, got, n)
		}
		d.Reset(nil)
		it.Reset()
		if d.lookup(1) != nil {
			t.Fatalf("round %d: entry survived Reset", round)
		}
	}
}
