package coherence

import (
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// mockEnv records sent messages and serves line data instantly.
type mockEnv struct {
	now     sim.Time
	sent    []*Msg
	delays  []sim.Time
	backing *mem.Backing
	l2Lat   sim.Time
}

func newMockEnv() *mockEnv {
	return &mockEnv{backing: mem.NewBacking(), l2Lat: 20}
}

func (e *mockEnv) Now() sim.Time { return e.now }
func (e *mockEnv) NewMsg() *Msg  { return &Msg{} }
func (e *mockEnv) Send(delay sim.Time, m *Msg) {
	e.sent = append(e.sent, m)
	e.delays = append(e.delays, delay)
}
func (e *mockEnv) Interner() *mem.Interner { return e.backing.Interner() }
func (e *mockEnv) LineData(l mem.Line, id mem.LineID) (mem.LineData, sim.Time) {
	return e.backing.LoadID(id), e.l2Lat
}
func (e *mockEnv) StoreLine(l mem.Line, id mem.LineID, d mem.LineData) { e.backing.StoreID(id, d) }

func (e *mockEnv) take() []*Msg {
	out := e.sent
	e.sent = nil
	e.delays = nil
	return out
}

func (e *mockEnv) mustOne(t *testing.T, want MsgType) *Msg {
	t.Helper()
	msgs := e.take()
	if len(msgs) != 1 {
		t.Fatalf("sent %d messages, want 1 (%v)", len(msgs), want)
	}
	if msgs[0].Type != want {
		t.Fatalf("sent %v, want %v", msgs[0].Type, want)
	}
	return msgs[0]
}

const testLine = mem.Line(0x40 * 7)

func gets(src int, tx bool, prio htm.Priority) *Msg {
	return &Msg{Type: MsgGETS, Line: testLine, Src: src, Requester: src, IsTx: tx, Prio: prio}
}

func getx(src int, tx bool, prio htm.Priority, needData bool) *Msg {
	return &Msg{Type: MsgGETX, Line: testLine, Src: src, Requester: src, IsTx: tx, Prio: prio, NeedData: needData, IsWrite: true}
}

func unblock(src int, success bool) *Msg {
	return &Msg{Type: MsgUnblock, Line: testLine, Src: src, Success: success}
}

func TestGETSFromInvalidGrantsShared(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	env.backing.StoreWord(testLine.Word(0), 99)

	d.Handle(gets(3, false, htm.NoPriority))
	m := env.mustOne(t, MsgData)
	if m.Dst != 3 || !m.HasData || m.Data[0] != 99 {
		t.Fatalf("bad data response: %+v", m)
	}
	st, sharers, _ := d.State(testLine)
	if st != DirShared || len(sharers) != 1 || sharers[0] != 3 {
		t.Fatalf("state=%v sharers=%v", st, sharers)
	}
	if d.BusyLines() != 0 {
		t.Fatal("GETS from I should not block the entry")
	}
}

func TestGETSAccumulatesSharers(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	for _, n := range []int{1, 5, 9} {
		d.Handle(gets(n, false, htm.NoPriority))
	}
	_, sharers, _ := d.State(testLine)
	if len(sharers) != 3 {
		t.Fatalf("sharers = %v, want 3 nodes", sharers)
	}
}

func TestGETXFromInvalid(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(getx(2, true, 100, true))
	m := env.mustOne(t, MsgData)
	if m.AckCount != 0 {
		t.Fatalf("AckCount = %d, want 0", m.AckCount)
	}
	if d.BusyLines() != 1 {
		t.Fatal("GETX should block until UNBLOCK")
	}
	d.Handle(unblock(2, true))
	st, _, owner := d.State(testLine)
	if st != DirModified || owner != 2 {
		t.Fatalf("after unblock: state=%v owner=%d", st, owner)
	}
	if d.BusyLines() != 0 {
		t.Fatal("entry still busy after UNBLOCK")
	}
}

func TestGETXMulticastsToAllSharers(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	for _, n := range []int{1, 5, 9} {
		d.Handle(gets(n, true, htm.Priority(n)))
	}
	env.take()

	d.Handle(getx(2, true, 50, true))
	msgs := env.take()
	var fwds, data int
	fwdTargets := map[int]bool{}
	for _, m := range msgs {
		switch m.Type {
		case MsgFwdGETX:
			fwds++
			fwdTargets[m.Dst] = true
			if m.Requester != 2 || !m.IsWrite || m.UBit {
				t.Fatalf("bad forward: %+v", m)
			}
		case MsgData:
			data++
			if m.AckCount != 3 {
				t.Fatalf("AckCount = %d, want 3", m.AckCount)
			}
		}
	}
	if fwds != 3 || data != 1 {
		t.Fatalf("fwds=%d data=%d, want 3/1", fwds, data)
	}
	if !fwdTargets[1] || !fwdTargets[5] || !fwdTargets[9] {
		t.Fatalf("forwards went to %v", fwdTargets)
	}
}

func TestGETXUpgradeExcludesRequester(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(gets(2, true, 50))
	d.Handle(gets(7, true, 60))
	env.take()

	// Node 2 upgrades: it already has the data.
	d.Handle(getx(2, true, 50, false))
	msgs := env.take()
	if len(msgs) != 2 {
		t.Fatalf("sent %d messages, want fwd+ackcount", len(msgs))
	}
	var sawFwd, sawCount bool
	for _, m := range msgs {
		switch m.Type {
		case MsgFwdGETX:
			sawFwd = true
			if m.Dst != 7 {
				t.Fatalf("forward to %d, want 7", m.Dst)
			}
		case MsgAckCount:
			sawCount = true
			if m.AckCount != 1 || m.HasData {
				t.Fatalf("bad AckCount msg: %+v", m)
			}
		}
	}
	if !sawFwd || !sawCount {
		t.Fatal("missing forward or ackcount")
	}
}

func TestGETXSoleSharerUpgradeImmediateGrant(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(gets(2, true, 50))
	env.take()
	d.Handle(getx(2, true, 50, false))
	m := env.mustOne(t, MsgAckCount)
	if m.AckCount != 0 {
		t.Fatalf("AckCount = %d, want 0", m.AckCount)
	}
	d.Handle(unblock(2, true))
	st, _, owner := d.State(testLine)
	if st != DirModified || owner != 2 {
		t.Fatalf("state=%v owner=%d", st, owner)
	}
}

func TestGETXFailRestoresSharers(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	for _, n := range []int{1, 5} {
		d.Handle(gets(n, true, htm.Priority(n)))
	}
	env.take()
	d.Handle(getx(9, true, 50, true))
	env.take()
	d.Handle(unblock(9, false)) // NACKed
	st, sharers, _ := d.State(testLine)
	if st != DirShared || len(sharers) != 2 {
		t.Fatalf("after failed GETX: state=%v sharers=%v", st, sharers)
	}
}

func TestBusyLineQueuesNewRequests(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(gets(1, true, 10))
	env.take()
	d.Handle(getx(2, true, 20, true)) // blocks the entry
	env.take()

	// A read parks on the busy entry; a write is rejected (it retries via
	// its backoff policy — parking writes would give them perfectly
	// prompt handoff and hide the polling cost schemes differ on).
	d.Handle(gets(3, true, 30))
	if msgs := env.take(); len(msgs) != 0 {
		t.Fatalf("busy entry sent %d messages for a GETS, want 0 (queued)", len(msgs))
	}
	d.Handle(getx(4, true, 40, true))
	if m := env.mustOne(t, MsgNackBusy); m.Dst != 4 {
		t.Fatalf("NackBusy to %d, want 4", m.Dst)
	}
	if d.Stats().QueuedRequests != 1 {
		t.Fatalf("QueuedRequests = %d, want 1", d.Stats().QueuedRequests)
	}

	// Unblocking node 2's GETX must immediately service node 3's GETS.
	d.Handle(unblock(2, true))
	msgs := env.take()
	if len(msgs) != 1 || msgs[0].Type != MsgFwdGETS || msgs[0].Dst != 2 || msgs[0].Requester != 3 {
		t.Fatalf("after unblock got %v, want FwdGETS to new owner 2 for requester 3", msgs)
	}
}

func TestQueueOverflowFallsBackToNackBusy(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.QueueCap = 1
	d.Handle(getx(2, true, 20, true)) // busy
	env.take()
	d.Handle(gets(3, true, 30)) // queued
	if msgs := env.take(); len(msgs) != 0 {
		t.Fatal("first pending request should queue silently")
	}
	d.Handle(gets(4, true, 40)) // queue full
	m := env.mustOne(t, MsgNackBusy)
	if m.Dst != 4 {
		t.Fatalf("NackBusy to %d, want 4", m.Dst)
	}
	if d.Stats().BusyNacks != 1 {
		t.Fatalf("BusyNacks = %d, want 1", d.Stats().BusyNacks)
	}
}

func TestGETSFromModifiedForwardsToOwner(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(getx(2, true, 50, true))
	env.take()
	d.Handle(unblock(2, true))

	d.Handle(gets(7, true, 60))
	m := env.mustOne(t, MsgFwdGETS)
	if m.Dst != 2 || m.Requester != 7 {
		t.Fatalf("bad FwdGETS: %+v", m)
	}
	// Owner sends WBData, requester unblocks: downgrade to S with both.
	var data mem.LineData
	data[0] = 123
	d.Handle(&Msg{Type: MsgWBData, Line: testLine, Src: 2, Data: data, HasData: true})
	d.Handle(unblock(7, true))
	st, sharers, _ := d.State(testLine)
	if st != DirShared || len(sharers) != 2 {
		t.Fatalf("after downgrade: state=%v sharers=%v", st, sharers)
	}
	if env.backing.Load(testLine)[0] != 123 {
		t.Fatal("WBData not stored to L2")
	}
}

func TestGETSFromModifiedWaitsForWBData(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(getx(2, true, 50, true))
	env.take()
	d.Handle(unblock(2, true))
	d.Handle(gets(7, true, 60))
	env.take()

	// UNBLOCK(success) before WBData: entry must stay busy.
	d.Handle(unblock(7, true))
	if d.BusyLines() != 1 {
		t.Fatal("completed without waiting for WBData")
	}
	d.Handle(&Msg{Type: MsgWBData, Line: testLine, Src: 2, HasData: true})
	if d.BusyLines() != 0 {
		t.Fatal("still busy after WBData + UNBLOCK")
	}
}

func TestGETSFromModifiedNackedRestoresOwner(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(getx(2, true, 50, true))
	env.take()
	d.Handle(unblock(2, true))
	d.Handle(gets(7, true, 60))
	env.take()
	d.Handle(unblock(7, false)) // owner NACKed; no WBData will come
	st, _, owner := d.State(testLine)
	if st != DirModified || owner != 2 {
		t.Fatalf("after failed GETS: state=%v owner=%d", st, owner)
	}
	if d.BusyLines() != 0 {
		t.Fatal("busy after failed GETS unblock")
	}
}

func TestGETXFromModifiedTransfersOwnership(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(getx(2, true, 50, true))
	env.take()
	d.Handle(unblock(2, true))

	d.Handle(getx(9, true, 40, true))
	m := env.mustOne(t, MsgFwdGETX)
	if m.Dst != 2 || m.Requester != 9 {
		t.Fatalf("bad FwdGETX: %+v", m)
	}
	d.Handle(unblock(9, true))
	st, _, owner := d.State(testLine)
	if st != DirModified || owner != 9 {
		t.Fatalf("state=%v owner=%d", st, owner)
	}
}

func TestPUTXStoresAndAcks(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(getx(2, false, htm.NoPriority, true))
	env.take()
	d.Handle(unblock(2, true))

	var data mem.LineData
	data[3] = 77
	d.Handle(&Msg{Type: MsgPUTX, Line: testLine, Src: 2, Data: data, HasData: true})
	m := env.mustOne(t, MsgWBAck)
	if m.Dst != 2 {
		t.Fatalf("WBAck to %d", m.Dst)
	}
	st, _, _ := d.State(testLine)
	if st != DirInvalid {
		t.Fatalf("after PUTX state=%v, want I", st)
	}
	if env.backing.Load(testLine)[3] != 77 {
		t.Fatal("PUTX data not stored")
	}
	if d.Stats().Writebacks != 1 {
		t.Fatal("writeback not counted")
	}
}

func TestPUTXRacingForwardGetsStale(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(getx(2, false, htm.NoPriority, true))
	env.take()
	d.Handle(unblock(2, true))
	// New GETX is in flight to owner 2 (entry busy)...
	d.Handle(getx(9, false, htm.NoPriority, true))
	env.take()
	// ...when 2's victim writeback arrives.
	d.Handle(&Msg{Type: MsgPUTX, Line: testLine, Src: 2, HasData: true})
	env.mustOne(t, MsgWBStale)
}

func TestPUTXFromNonOwnerGetsStale(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(&Msg{Type: MsgPUTX, Line: testLine, Src: 4, HasData: true})
	env.mustOne(t, MsgWBStale)
}

func TestDirectoryBlockingAccounting(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	d.Handle(gets(1, true, 10))
	env.take()
	env.now = 100
	d.Handle(getx(2, true, 20, true))
	env.take()
	env.now = 160
	d.Handle(unblock(2, true))
	st := d.Stats()
	if st.TxGETXBusy != 60 {
		t.Fatalf("TxGETXBusy = %d, want 60", st.TxGETXBusy)
	}
	if st.BusyCycles != 60 {
		t.Fatalf("BusyCycles = %d, want 60", st.BusyCycles)
	}
	// Non-transactional GETX must not count toward the Fig. 12 metric.
	env.now = 200
	d.Handle(getx(3, false, htm.NoPriority, true))
	env.take()
	env.now = 230
	d.Handle(unblock(3, true))
	st = d.Stats()
	if st.TxGETXBusy != 60 {
		t.Fatalf("non-tx GETX counted: TxGETXBusy = %d", st.TxGETXBusy)
	}
	if st.BusyCycles != 90 {
		t.Fatalf("BusyCycles = %d, want 90", st.BusyCycles)
	}
}

func TestUnblockNonBusyPanics(t *testing.T) {
	env := newMockEnv()
	d := NewDirectory(0, 16, env, nil)
	defer func() {
		if recover() == nil {
			t.Error("UNBLOCK on idle line did not panic")
		}
	}()
	d.Handle(unblock(2, true))
}

// recordingPredictor scripts unicast decisions and records calls.
type recordingPredictor struct {
	observed     []int
	unicastDest  int
	unicastOK    bool
	mispredicted []int
	udCalls      int
}

func (p *recordingPredictor) ObserveRequest(node int, prio htm.Priority, avg sim.Time) {
	p.observed = append(p.observed, node)
}
func (p *recordingPredictor) PredictUnicast(l mem.Line, sharers []int, req int, prio htm.Priority) (int, bool) {
	return p.unicastDest, p.unicastOK
}
func (p *recordingPredictor) UpdateUD(l mem.Line, sharers []int) { p.udCalls++ }
func (p *recordingPredictor) UnicastResolved(correct bool)       {}
func (p *recordingPredictor) MulticastResolved(falseAbort bool)  {}
func (p *recordingPredictor) Misprediction(l mem.Line, node int, prio htm.Priority) {
	p.mispredicted = append(p.mispredicted, node)
}
func (p *recordingPredictor) DecisionLatency() sim.Time { return 2 }

func TestPredictiveUnicastSendsOneForward(t *testing.T) {
	env := newMockEnv()
	pred := &recordingPredictor{unicastDest: 5, unicastOK: true}
	d := NewDirectory(0, 16, env, pred)
	for _, n := range []int{1, 5, 9} {
		d.Handle(gets(n, true, htm.Priority(n)))
	}
	env.take()

	d.Handle(getx(2, true, 50, true))
	msgs := env.take()
	if len(msgs) != 1 {
		t.Fatalf("unicast path sent %d messages, want 1", len(msgs))
	}
	m := msgs[0]
	if m.Type != MsgFwdGETX || m.Dst != 5 || !m.UBit {
		t.Fatalf("bad unicast forward: %+v", m)
	}
	if d.Stats().UnicastForwards != 1 {
		t.Fatal("unicast not counted")
	}
	// Requester is NACKed by node 5 and unblocks with failure.
	d.Handle(unblock(2, false))
	st, sharers, _ := d.State(testLine)
	if st != DirShared || len(sharers) != 3 {
		t.Fatalf("after unicast fail: state=%v sharers=%v", st, sharers)
	}
}

func TestMispredictionFeedbackReachesPredictor(t *testing.T) {
	env := newMockEnv()
	pred := &recordingPredictor{unicastDest: 5, unicastOK: true}
	d := NewDirectory(0, 16, env, pred)
	for _, n := range []int{1, 5} {
		d.Handle(gets(n, true, htm.Priority(n)))
	}
	env.take()
	d.Handle(getx(2, true, 50, true))
	env.take()
	d.Handle(&Msg{Type: MsgUnblock, Line: testLine, Src: 2, Success: false, MPBit: true, MPNode: 5})
	if len(pred.mispredicted) != 1 || pred.mispredicted[0] != 5 {
		t.Fatalf("mispredictions = %v, want [5]", pred.mispredicted)
	}
	if d.Stats().Mispredictions != 1 {
		t.Fatal("misprediction not counted")
	}
}

func TestPredictorObservesTxRequests(t *testing.T) {
	env := newMockEnv()
	pred := &recordingPredictor{}
	d := NewDirectory(0, 16, env, pred)
	d.Handle(gets(3, true, 30))
	d.Handle(gets(4, false, htm.NoPriority)) // non-tx: not observed
	if len(pred.observed) != 1 || pred.observed[0] != 3 {
		t.Fatalf("observed = %v, want [3]", pred.observed)
	}
}

func TestNonTxGETXNeverUnicast(t *testing.T) {
	env := newMockEnv()
	pred := &recordingPredictor{unicastDest: 1, unicastOK: true}
	d := NewDirectory(0, 16, env, pred)
	d.Handle(gets(1, true, 10))
	d.Handle(gets(5, true, 20))
	env.take()
	d.Handle(getx(9, false, htm.NoPriority, true))
	msgs := env.take()
	fwds := 0
	for _, m := range msgs {
		if m.Type == MsgFwdGETX {
			fwds++
			if m.UBit {
				t.Fatal("non-tx GETX was unicast")
			}
		}
	}
	if fwds != 2 {
		t.Fatalf("fwds = %d, want 2 (multicast)", fwds)
	}
}

func TestMsgFlitsAndClass(t *testing.T) {
	ctrl := &Msg{Type: MsgGETS}
	if ctrl.Flits() != ControlFlits {
		t.Fatal("control message flit count wrong")
	}
	data := &Msg{Type: MsgData, HasData: true}
	if data.Flits() != DataFlits {
		t.Fatal("data message flit count wrong")
	}
	if (&Msg{Type: MsgGETX}).Class().String() != "request" {
		t.Fatal("GETX class wrong")
	}
	if (&Msg{Type: MsgFwdGETX}).Class().String() != "forward" {
		t.Fatal("FwdGETX class wrong")
	}
	if (&Msg{Type: MsgNack}).Class().String() != "response" {
		t.Fatal("Nack class wrong")
	}
}

func TestDirStateStrings(t *testing.T) {
	if DirInvalid.String() != "I" || DirShared.String() != "S" || DirModified.String() != "M" {
		t.Fatal("DirState strings wrong")
	}
}

func TestTooManyNodesPanics(t *testing.T) {
	// MaxNodes itself must construct (the 16x16 config sits right at 256).
	NewDirectory(0, MaxNodes, newMockEnv(), nil)
	defer func() {
		if recover() == nil {
			t.Errorf("%d-node directory did not panic", MaxNodes+1)
		}
	}()
	NewDirectory(0, MaxNodes+1, newMockEnv(), nil)
}
