// Package coherence implements the directory-based MESI protocol the HTM
// piggybacks on: the coherence message vocabulary (including the PUNO
// extensions: U-bit, notification field, MP-bit and MP-node), and the
// blocking home-directory controller in the style of the SGI Origin / GEMS
// MESI_CMP protocol the paper uses. The requester-side (L1) half of the
// protocol lives in internal/machine, where it is entangled with the core
// and HTM state; the directory here is fully testable in isolation against
// a mock environment.
package coherence

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"

	"repro/internal/htm"
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol messages. Requests flow L1->directory, forwards
// directory->sharer/owner, responses sharer/owner/directory->requester, and
// UNBLOCK requester->directory.
const (
	MsgGETS     MsgType = iota // request shared access
	MsgGETX                    // request exclusive access
	MsgFwdGETS                 // forwarded read request to the owner
	MsgFwdGETX                 // forwarded write request / invalidation to sharers or owner
	MsgData                    // data response (directory L2 or cache-to-cache)
	MsgAckCount                // directory tells requester how many sharer responses to expect (no data)
	MsgAck                     // sharer invalidation/downgrade acknowledgement
	MsgNack                    // conflict rejection from a transactional sharer/owner
	MsgNackBusy                // directory busy with another request to this line
	MsgUnblock                 // requester concludes a directory-serialized request
	MsgWBData                  // owner writes data back to the directory during a downgrade
	MsgPUTX                    // victim writeback request of a Modified line
	MsgWBAck                   // directory accepted the writeback
	MsgWBStale                 // writeback raced with a forward; owner must satisfy the forward
	MsgWakeup                  // PUNO-Push extension: a nacker finished; the waiter should retry now
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := [...]string{
		"GETS", "GETX", "FwdGETS", "FwdGETX", "Data", "AckCount", "Ack",
		"Nack", "NackBusy", "Unblock", "WBData", "PUTX", "WBAck", "WBStale",
		"Wakeup",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Msg is one coherence message. Fields beyond Type/Line/Src/Dst are used by
// subsets of the message types; see the field comments.
type Msg struct {
	Type MsgType
	Line mem.Line
	// LID is Line's interned dense ID (0 when the sender did not know it —
	// the directory interns on arrival). Carrying it on every message lets
	// the receiving controller index its dense tables without hashing.
	LID mem.LineID
	Src int // sending node
	Dst int // receiving node

	// Requester identity, threaded through forwards so sharers respond
	// directly to the requester (3-hop protocol).
	Requester int
	ReqID     uint64 // requester's per-request generation tag, echoed in responses

	// Transactional metadata carried on requests and forwards.
	IsTx     bool
	Prio     htm.Priority // requester transaction priority (timestamp)
	IsWrite  bool         // the forwarded request is a write (GETX)
	NeedData bool         // GETX from Invalid: requester has no copy

	// PUNO protocol extensions (Fig. 7 of the paper).
	UBit     bool     // forward was unicast by the predictive directory
	MPBit    bool     // NACK/UNBLOCK: unicast destination was mispredicted
	MPNode   int      // UNBLOCK: the mispredicted node whose P-Buffer entry is stale
	TEst     sim.Time // NACK: nacker's estimated remaining cycles (0 = no notification)
	AvgTxLen sim.Time // requests: requester's average transaction length (directory timeout hint)

	// Data movement.
	Data    mem.LineData
	HasData bool

	// Directory -> requester bookkeeping.
	AckCount int // number of sharer responses the requester must collect

	// UNBLOCK payload. AbortedSharers tells the directory how many sharers
	// aborted for this service (it only observes responses indirectly), so
	// the predictor can estimate how much false aborting its multicasts
	// cause.
	Success        bool
	AbortedSharers int

	// Responder-side annotations. Sole marks a response from the only
	// node servicing the request (the owner of a Modified line, or the
	// target of a predictive unicast): the requester completes on it
	// without waiting for a directory header. AbortedSharer marks an ACK
	// from a sharer that aborted its transaction to honour the request —
	// the requester counts these to classify false aborting (Figs. 2, 3).
	Sole          bool
	AbortedSharer bool
}

// ControlFlits and DataFlits size protocol messages on the network: a
// 64-byte line plus header spans five 16-byte flits; everything else fits
// in one flit (the paper notes the PUNO extensions fit existing flits).
const (
	ControlFlits = 1
	DataFlits    = 5
)

// Flits returns the network size of the message.
func (m *Msg) Flits() int {
	if m.HasData {
		return DataFlits
	}
	return ControlFlits
}

// Class returns the virtual-network class the message travels on.
func (m *Msg) Class() noc.Class {
	switch m.Type {
	case MsgGETS, MsgGETX, MsgPUTX:
		return noc.ClassRequest
	case MsgFwdGETS, MsgFwdGETX:
		return noc.ClassForward
	default:
		return noc.ClassResponse
	}
}
