package coherence

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/sim"
)

// DirState is a directory entry's stable state.
type DirState uint8

// Directory stable states.
const (
	DirInvalid  DirState = iota // no cached copies
	DirShared                   // one or more read-only copies
	DirModified                 // exactly one exclusive/modified copy
)

// String implements fmt.Stringer.
func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "I"
	case DirShared:
		return "S"
	case DirModified:
		return "M"
	default:
		return fmt.Sprintf("DirState(%d)", uint8(s))
	}
}

// Env is the directory controller's view of its node: the clock, the
// outgoing message port, and the local L2 bank. Send delivers msg after
// delay cycles of local processing plus network latency.
type Env interface {
	Now() sim.Time
	Send(delay sim.Time, msg *Msg)
	// NewMsg returns a message for the directory to fill completely and
	// hand to Send. Implementations may recycle delivered messages through
	// a pool, so fields are NOT zeroed; the directory overwrites every
	// message wholesale (*msg = Msg{...}) before sending.
	NewMsg() *Msg
	// Interner is the machine-wide line interner the directory indexes its
	// dense entry table by. Returning nil makes the directory run a private
	// interner (isolated tests).
	Interner() *mem.Interner
	// LineData returns the L2/memory image of l (whose interned ID is id)
	// and the access latency (L2 hit latency, or the memory latency on a
	// cold miss).
	LineData(l mem.Line, id mem.LineID) (mem.LineData, sim.Time)
	// StoreLine updates the L2 image (writebacks, downgrades).
	StoreLine(l mem.Line, id mem.LineID, d mem.LineData)
}

// Predictor is the directory-side hook PUNO plugs into. A nil Predictor
// yields the baseline protocol: every transactional GETX to a shared line
// is multicast to all sharers.
type Predictor interface {
	// ObserveRequest records the {node, priority} pair carried by an
	// incoming transactional request (P-Buffer update), plus the
	// requester's average transaction length hint.
	ObserveRequest(node int, prio htm.Priority, avgTxLen sim.Time)
	// PredictUnicast decides whether a transactional GETX from reqNode
	// with priority reqPrio against the given sharers should be unicast,
	// and to which sharer.
	PredictUnicast(l mem.Line, sharers []int, reqNode int, reqPrio htm.Priority) (dest int, ok bool)
	// UpdateUD recomputes the line's unicast-destination pointer from the
	// current sharer list (off the critical path, after servicing).
	UpdateUD(l mem.Line, sharers []int)
	// Misprediction handles UNBLOCK MP feedback: the stale priority that
	// caused a wrong unicast is replaced by the mispredicted sharer's
	// current priority (carried back on the NACK and UNBLOCK), or
	// invalidated when the sharer was not in a transaction
	// (prio == htm.NoPriority).
	Misprediction(l mem.Line, node int, prio htm.Priority)
	// UnicastResolved reports the outcome of a completed unicast service:
	// correct=true when the predicted sharer NACKed as predicted (no MP
	// feedback). Drives the predictor's confidence estimate.
	UnicastResolved(correct bool)
	// MulticastResolved reports the outcome of a completed multicast
	// transactional GETX service: falseAbort=true when the request failed
	// after aborting sharers. Drives the predictor's benefit estimate.
	MulticastResolved(falseAbort bool)
	// DecisionLatency is the extra cycles the directory spends consulting
	// the predictor on the forward path (P-Buffer read + compare).
	DecisionLatency() sim.Time
}

// Stats aggregates directory-side measurements.
type Stats struct {
	Requests        uint64 // GETS+GETX accepted (not busy-nacked)
	BusyNacks       uint64 // requests rejected because the entry's queue was full
	QueuedRequests  uint64 // requests parked on a busy entry
	TxGETX          uint64 // transactional GETX accepted
	UnicastForwards uint64 // TxGETX serviced by predictive unicast
	MulticastFwds   uint64 // invalidations/forwards sent on multicast paths
	Mispredictions  uint64 // MP feedback received
	BusyCycles      uint64 // total cycles entries spent blocked
	TxGETXBusy      uint64 // blocked cycles while servicing transactional GETX (Fig. 12)
	Writebacks      uint64
}

// nodeSetWords sizes the sharer bitset; MaxNodes = 64*nodeSetWords is the
// largest machine the directory supports (16x16 mesh at the current width).
const nodeSetWords = 4

// MaxNodes is the largest node count the sharer tracking supports.
const MaxNodes = 64 * nodeSetWords

// nodeSet is a fixed-width bitset over node IDs. A value type (not a
// slice) so the busy-service save/restore (savedShare = sharers) stays a
// plain copy and entries embed their sets without a pointer chase.
type nodeSet [nodeSetWords]uint64

// oneNode returns the set holding only node n.
func oneNode(n int) nodeSet {
	var s nodeSet
	s.add(n)
	return s
}

func (s *nodeSet) add(n int)      { s[n>>6] |= 1 << uint(n&63) }
func (s *nodeSet) has(n int) bool { return s[n>>6]&(1<<uint(n&63)) != 0 }

type dirEntry struct {
	line    mem.Line   // the line this slot currently serves
	lid     mem.LineID // line's interned ID (index into Directory.idx)
	state   DirState
	sharers nodeSet
	owner   int

	busy        bool
	busySince   sim.Time
	busyTxGETX  bool
	busyGETX    bool
	busyGETS    bool
	requester   int
	unicastTo   int // -1 when not a unicast service
	waitWB      bool
	gotWB       bool
	gotUnblock  bool
	unblock     Msg
	savedState  DirState
	savedShare  nodeSet
	savedOwner  int
	busyReqID   uint64
	busyReqIsTx bool

	// pending queues requests that arrived while the entry was busy; they
	// are serviced FIFO when the entry unblocks. Without this, fixed-period
	// retry loops can phase-lock and starve an older transaction behind a
	// younger requester's retries — a deadlock cycle through the busy
	// entry that NACK priority ordering alone cannot break. Messages are
	// parked by value so the delivered *Msg can return to its pool the
	// moment Handle returns, and the queue's capacity is reused.
	pending []Msg
}

// Directory is the home-node coherence controller for the lines mapping to
// one bank. It is driven entirely by Handle; all outgoing effects go
// through its Env.
type Directory struct {
	node  int
	nodes int
	env   Env
	pred  Predictor

	// Fixed costs. DirLatency is the controller occupancy per message.
	DirLatency sim.Time
	// QueueCap bounds the per-entry pending-request queue; beyond it the
	// directory falls back to NackBusy.
	QueueCap int

	// The entry store is a dense LineID-indexed table: idx maps a LineID to
	// its slot in slab (+1 encoded; 0 = no entry), slab holds dirEntry
	// values contiguously, and free recycles slots whose line returned to
	// Invalid with nothing queued (clean PUTX), so long runs that sweep
	// many lines do not grow the entry population monotonically. No Go map
	// sits on the request path.
	it   *mem.Interner
	idx  []int32
	slab []dirEntry
	free []int32
	// sharerScratch backs the sharer lists the hot request paths build;
	// callees (forward loops, the predictor) never retain the slice.
	sharerScratch []int
	stats         Stats

	// probe, when non-nil, observes forwarding decisions (unicast vs
	// multicast vs busy-nack). Set by the machine after construction/Reset;
	// survives Reset so the owner controls its lifetime explicitly.
	probe probe.Sink
}

// NewDirectory returns the controller for home node `node` in a machine of
// `nodes` nodes. pred may be nil (baseline multicast).
func NewDirectory(node, nodes int, env Env, pred Predictor) *Directory {
	if nodes > MaxNodes {
		panic(fmt.Sprintf("coherence: %d nodes exceeds the %d-node sharer bitset", nodes, MaxNodes))
	}
	it := env.Interner()
	if it == nil {
		it = mem.NewInterner()
	}
	return &Directory{
		node:       node,
		nodes:      nodes,
		env:        env,
		pred:       pred,
		it:         it,
		DirLatency: 1,
		QueueCap:   nodes,
	}
}

// Reset returns the controller to the state NewDirectory would produce for
// the same node/nodes/env, swapping in pred (the predictor is rebuilt per
// run). The entry slab and slot index keep their capacity (truncated, with
// each slot's pending-queue array retained for reuse), so a reused
// directory repopulates without allocating; slot assignment is by arrival
// order, which is deterministic by construction. DirLatency and QueueCap
// revert to their construction defaults. The interner is shared machine
// state and is reset by its owner, not here.
func (d *Directory) Reset(pred Predictor) {
	d.pred = pred
	d.DirLatency = 1
	d.QueueCap = d.nodes
	d.slab = d.slab[:0]
	d.free = d.free[:0]
	clear(d.idx[:cap(d.idx)])
	d.idx = d.idx[:0]
	d.stats = Stats{}
}

// SetProbe installs (or, with nil, removes) the event sink observing this
// directory's forwarding decisions.
func (d *Directory) SetProbe(s probe.Sink) { d.probe = s }

// emit reports one forwarding decision when a probe is installed.
//
//puno:hot
func (d *Directory) emit(kind probe.Kind, lid mem.LineID, n, requester int, reqID uint64) {
	if d.probe == nil {
		return
	}
	d.probe.Emit(probe.Event{
		Cycle: d.env.Now(), Arg: probe.PackDir(n, requester, reqID),
		Line: lid, Node: int16(d.node), Kind: kind,
	})
}

// Stats returns a copy of the accumulated statistics.
func (d *Directory) Stats() Stats { return d.stats }

// ResetStats clears the statistics (warm-up discard).
func (d *Directory) ResetStats() { d.stats = Stats{} }

// BusyLines returns the number of entries currently blocked (used by the
// machine's quiescence check). Free-listed slots are never busy (recycling
// requires an idle entry), so scanning the whole slab is safe.
func (d *Directory) BusyLines() int {
	n := 0
	for i := range d.slab {
		if d.slab[i].busy {
			n++
		}
	}
	return n
}

// BusyInfo describes one blocked entry for diagnostics.
type BusyInfo struct {
	Line       mem.Line
	Requester  int
	IsGETX     bool
	Since      sim.Time
	WaitWB     bool
	GotWB      bool
	GotUnblock bool
	UnicastTo  int
	Pending    int
}

// BusyEntries returns diagnostics for every blocked entry, in ascending
// line order so hang dumps are stable across runs.
func (d *Directory) BusyEntries() []BusyInfo {
	var out []BusyInfo
	for i := range d.slab {
		e := &d.slab[i]
		if !e.busy {
			continue
		}
		out = append(out, BusyInfo{
			Line: e.line, Requester: e.requester, IsGETX: e.busyGETX, Since: e.busySince,
			WaitWB: e.waitWB, GotWB: e.gotWB, GotUnblock: e.gotUnblock,
			UnicastTo: e.unicastTo, Pending: len(e.pending),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// State reports the stable state, sharer list, and owner of a line
// (invariant checkers and tests).
func (d *Directory) State(l mem.Line) (DirState, []int, int) {
	e := d.lookup(d.it.Lookup(l))
	if e == nil {
		return DirInvalid, nil, -1
	}
	return e.state, d.sharerList(e.sharers, -1), e.owner
}

// lookup returns the live entry for lid, or nil. Purely index arithmetic:
// the per-message map lookup the old entries map paid is gone.
//
//puno:hot
func (d *Directory) lookup(lid mem.LineID) *dirEntry {
	if i := int(lid); i > 0 && i <= len(d.idx) {
		if s := d.idx[i-1]; s != 0 {
			return &d.slab[s-1]
		}
	}
	return nil
}

// ensureIdx extends the slot index to cover lid. Slots re-exposed from
// retained capacity were zeroed by Reset; fresh growth is zeroed by make.
func (d *Directory) ensureIdx(lid mem.LineID) {
	n := int(lid)
	if n <= len(d.idx) {
		return
	}
	if n <= cap(d.idx) {
		d.idx = d.idx[:n]
		return
	}
	ni := make([]int32, n, 2*n)
	copy(ni, d.idx)
	d.idx = ni
}

// entry returns the entry for (l, lid), creating it in the dense slab on
// first touch. Slots come from the free list, then from retained slab
// capacity, then from growth; a recycled slot's pending-queue array is
// reused. Callers must not hold an entry pointer across a call that can
// create a different line's entry (slab growth moves the values); the
// handlers create at most one entry, at dispatch, so this never happens.
//
//puno:hot
func (d *Directory) entry(l mem.Line, lid mem.LineID) *dirEntry {
	d.ensureIdx(lid)
	if s := d.idx[lid-1]; s != 0 {
		return &d.slab[s-1]
	}
	var s int32
	switch {
	case len(d.free) > 0:
		s = d.free[len(d.free)-1]
		d.free = d.free[:len(d.free)-1]
	case len(d.slab) < cap(d.slab):
		s = int32(len(d.slab))
		d.slab = d.slab[:len(d.slab)+1]
	default:
		d.slab = append(d.slab, dirEntry{})
		s = int32(len(d.slab) - 1)
	}
	e := &d.slab[s]
	*e = dirEntry{line: l, lid: lid, state: DirInvalid, owner: -1, unicastTo: -1, pending: e.pending[:0]}
	d.idx[lid-1] = s + 1
	return e
}

// recycleIfIdle drops an entry that has returned to the directory's
// default state (Invalid, not busy, nothing parked) and free-lists its
// slot for the next cold line. State() on a dropped line reports
// DirInvalid, which is exactly what the entry said.
//
//puno:hot
func (d *Directory) recycleIfIdle(e *dirEntry) {
	if e.busy || e.state != DirInvalid || len(e.pending) > 0 {
		return
	}
	s := d.idx[e.lid-1]
	d.idx[e.lid-1] = 0
	d.free = append(d.free, s-1)
}

// sharerList builds a fresh sharer slice (diagnostic paths: State,
// BusyEntries callers). Hot paths use sharersScratch instead.
func (d *Directory) sharerList(set nodeSet, exclude int) []int {
	var out []int
	for w, msk := range set {
		base := w << 6
		for ; msk != 0; msk &= msk - 1 {
			if n := base + bits.TrailingZeros64(msk); n != exclude {
				out = append(out, n)
			}
		}
	}
	return out
}

// sharersScratch builds the sharer list into the directory's reusable
// scratch buffer. The result is only valid until the next call and must
// not be retained by callees (the predictor copies what it needs).
// Iterating set bits directly (rather than scanning all node positions)
// keeps the cost proportional to the sharer count, which is usually 0-2.
//
//puno:hot
func (d *Directory) sharersScratch(set nodeSet, exclude int) []int {
	out := d.sharerScratch[:0]
	for w, msk := range set {
		base := w << 6
		for ; msk != 0; msk &= msk - 1 {
			if n := base + bits.TrailingZeros64(msk); n != exclude {
				out = append(out, n)
			}
		}
	}
	d.sharerScratch = out
	return out
}

// Handle processes one incoming message addressed to this directory.
func (d *Directory) Handle(m *Msg) {
	if m.LID == 0 {
		// Senders inside the machine always carry the interned ID; this
		// interns on behalf of isolated-test callers (and any genuinely
		// first-touch message), so every handler below can index densely.
		m.LID = d.it.Intern(m.Line)
	}
	switch m.Type {
	case MsgGETS:
		d.handleGETS(m)
	case MsgGETX:
		d.handleGETX(m)
	case MsgUnblock:
		d.handleUnblock(m)
	case MsgWBData:
		d.handleWBData(m)
	case MsgPUTX:
		d.handlePUTX(m)
	default:
		panic(fmt.Sprintf("coherence: directory %d got unexpected %v", d.node, m.Type))
	}
}

func (d *Directory) observe(m *Msg) {
	if d.pred != nil && m.IsTx {
		d.pred.ObserveRequest(m.Src, m.Prio, m.AvgTxLen)
	}
}

// send fills a pooled message with m and hands it to the environment; the
// literal callers build stays on the stack, so the only message object per
// send is the recycled one.
//
//puno:hot
func (d *Directory) send(delay sim.Time, m Msg) {
	msg := d.env.NewMsg()
	*msg = m
	d.env.Send(delay, msg)
}

func (d *Directory) nackBusy(m *Msg) {
	d.stats.BusyNacks++
	d.emit(probe.KindDirBusyNack, m.LID, 0, m.Src, m.ReqID)
	d.send(d.DirLatency, Msg{
		Type: MsgNackBusy, Line: m.Line, LID: m.LID, Src: d.node, Dst: m.Src,
		Requester: m.Src, ReqID: m.ReqID,
	})
}

// park queues a copy of the request on a busy entry, or NackBusy-rejects
// it when the queue is full.
//
//puno:hot
func (d *Directory) park(e *dirEntry, m *Msg) {
	if len(e.pending) >= d.QueueCap {
		d.nackBusy(m)
		return
	}
	d.stats.QueuedRequests++
	e.pending = append(e.pending, *m)
}

func (d *Directory) handleGETS(m *Msg) {
	d.observe(m)
	e := d.entry(m.Line, m.LID)
	if e.busy {
		d.park(e, m)
		return
	}
	d.stats.Requests++
	switch e.state {
	case DirInvalid, DirShared:
		// Serviced entirely at the home node: read L2, add sharer, reply.
		data, lat := d.env.LineData(m.Line, m.LID)
		e.state = DirShared
		e.sharers.add(m.Src)
		d.send(d.DirLatency+lat, Msg{
			Type: MsgData, Line: m.Line, LID: m.LID, Src: d.node, Dst: m.Src,
			Requester: m.Src, ReqID: m.ReqID, Data: data, HasData: true,
		})
		d.updateUD(e, m.Line)
	case DirModified:
		// Forward to the owner; it supplies data to the requester and a
		// writeback copy to us. Blocked until WBData + UNBLOCK.
		d.beginBusy(e, m, false)
		e.waitWB = true
		d.send(d.DirLatency, Msg{
			Type: MsgFwdGETS, Line: m.Line, LID: m.LID, Src: d.node, Dst: e.owner,
			Requester: m.Src, ReqID: m.ReqID, IsTx: m.IsTx, Prio: m.Prio,
			IsWrite: false,
		})
	}
}

func (d *Directory) handleGETX(m *Msg) {
	d.observe(m)
	e := d.entry(m.Line, m.LID)
	if e.busy {
		// Writes are rejected rather than parked: a failed GETX retries
		// through the requester's backoff policy anyway, and parking it
		// would hand contended lines to writers with perfect promptness,
		// hiding the polling cost the contention-management schemes
		// differ on. Reads are parked (handleGETS) because a starved read
		// can deadlock the system through the busy-entry wait edge.
		d.nackBusy(m)
		return
	}
	d.stats.Requests++
	if m.IsTx {
		d.stats.TxGETX++
	}
	switch e.state {
	case DirInvalid:
		d.beginBusy(e, m, true)
		data, lat := d.env.LineData(m.Line, m.LID)
		d.send(d.DirLatency+lat, Msg{
			Type: MsgData, Line: m.Line, LID: m.LID, Src: d.node, Dst: m.Src,
			Requester: m.Src, ReqID: m.ReqID, Data: data, HasData: true,
			AckCount: 0,
		})
	case DirShared:
		d.beginBusy(e, m, true)
		targets := d.sharersScratch(e.sharers, m.Src)
		if len(targets) == 0 {
			// Requester is the only sharer (upgrade) or the list was empty.
			d.grantNoSharers(e, m)
			return
		}
		if d.pred != nil && m.IsTx {
			if dest, ok := d.pred.PredictUnicast(m.Line, targets, m.Src, m.Prio); ok {
				// Predictive unicast: only the predicted nacker sees the
				// request. Extra DecisionLatency on the forward path.
				d.stats.UnicastForwards++
				e.unicastTo = dest
				d.emit(probe.KindDirUnicast, m.LID, dest, m.Src, m.ReqID)
				d.send(d.DirLatency+d.pred.DecisionLatency(), Msg{
					Type: MsgFwdGETX, Line: m.Line, LID: m.LID, Src: d.node, Dst: dest,
					Requester: m.Src, ReqID: m.ReqID, IsTx: m.IsTx,
					Prio: m.Prio, IsWrite: true, UBit: true,
				})
				return
			}
		}
		// Multicast: invalidate every sharer; requester collects responses.
		extra := sim.Time(0)
		if d.pred != nil && m.IsTx {
			extra = d.pred.DecisionLatency()
		}
		d.stats.MulticastFwds += uint64(len(targets))
		d.emit(probe.KindDirMulticast, m.LID, len(targets), m.Src, m.ReqID)
		for _, t := range targets {
			d.send(d.DirLatency+extra, Msg{
				Type: MsgFwdGETX, Line: m.Line, LID: m.LID, Src: d.node, Dst: t,
				Requester: m.Src, ReqID: m.ReqID, IsTx: m.IsTx, Prio: m.Prio,
				IsWrite: true,
			})
		}
		if m.NeedData || !e.sharers.has(m.Src) {
			data, lat := d.env.LineData(m.Line, m.LID)
			d.send(d.DirLatency+extra+lat, Msg{
				Type: MsgData, Line: m.Line, LID: m.LID, Src: d.node, Dst: m.Src,
				Requester: m.Src, ReqID: m.ReqID, Data: data, HasData: true,
				AckCount: len(targets),
			})
		} else {
			d.send(d.DirLatency+extra, Msg{
				Type: MsgAckCount, Line: m.Line, LID: m.LID, Src: d.node, Dst: m.Src,
				Requester: m.Src, ReqID: m.ReqID, AckCount: len(targets),
			})
		}
	case DirModified:
		d.beginBusy(e, m, true)
		d.send(d.DirLatency, Msg{
			Type: MsgFwdGETX, Line: m.Line, LID: m.LID, Src: d.node, Dst: e.owner,
			Requester: m.Src, ReqID: m.ReqID, IsTx: m.IsTx, Prio: m.Prio,
			IsWrite: true,
		})
	}
}

// grantNoSharers completes a GETX that needs no invalidations.
func (d *Directory) grantNoSharers(e *dirEntry, m *Msg) {
	if m.NeedData {
		data, lat := d.env.LineData(m.Line, m.LID)
		d.send(d.DirLatency+lat, Msg{
			Type: MsgData, Line: m.Line, LID: m.LID, Src: d.node, Dst: m.Src,
			Requester: m.Src, ReqID: m.ReqID, Data: data, HasData: true,
			AckCount: 0,
		})
		return
	}
	d.send(d.DirLatency, Msg{
		Type: MsgAckCount, Line: m.Line, LID: m.LID, Src: d.node, Dst: m.Src,
		Requester: m.Src, ReqID: m.ReqID, AckCount: 0,
	})
}

func (d *Directory) beginBusy(e *dirEntry, m *Msg, isGETX bool) {
	e.busy = true
	e.busySince = d.env.Now()
	e.busyGETX = isGETX
	e.busyGETS = !isGETX
	e.busyTxGETX = isGETX && m.IsTx
	e.requester = m.Src
	e.unicastTo = -1
	e.waitWB = false
	e.gotWB = false
	e.gotUnblock = false
	e.savedState = e.state
	e.savedShare = e.sharers
	e.savedOwner = e.owner
	e.busyReqID = m.ReqID
	e.busyReqIsTx = m.IsTx
}

func (d *Directory) handleUnblock(m *Msg) {
	e := d.entry(m.Line, m.LID)
	if !e.busy {
		panic(fmt.Sprintf("coherence: UNBLOCK for non-busy line %v at dir %d", m.Line, d.node))
	}
	if m.Src != e.requester {
		panic(fmt.Sprintf("coherence: UNBLOCK from %d but busy requester is %d", m.Src, e.requester))
	}
	e.gotUnblock = true
	e.unblock = *m
	if m.MPBit && d.pred != nil {
		d.stats.Mispredictions++
		d.pred.Misprediction(m.Line, m.MPNode, m.Prio)
	}
	d.tryComplete(m.Line, e)
}

func (d *Directory) handleWBData(m *Msg) {
	e := d.entry(m.Line, m.LID)
	d.env.StoreLine(m.Line, m.LID, m.Data)
	if e.busy && e.waitWB {
		e.gotWB = true
		d.tryComplete(m.Line, e)
	}
}

func (d *Directory) handlePUTX(m *Msg) {
	e := d.entry(m.Line, m.LID)
	if e.busy || e.state != DirModified || e.owner != m.Src {
		// Raced with a forward (or is stale): the owner must keep serving
		// the in-flight forward from its retained copy.
		d.send(d.DirLatency, Msg{
			Type: MsgWBStale, Line: m.Line, LID: m.LID, Src: d.node, Dst: m.Src,
		})
		return
	}
	d.stats.Writebacks++
	d.env.StoreLine(m.Line, m.LID, m.Data)
	e.state = DirInvalid
	e.sharers = nodeSet{}
	e.owner = -1
	d.send(d.DirLatency, Msg{
		Type: MsgWBAck, Line: m.Line, LID: m.LID, Src: d.node, Dst: m.Src,
	})
	d.recycleIfIdle(e)
}

func (d *Directory) tryComplete(l mem.Line, e *dirEntry) {
	if !e.gotUnblock {
		return
	}
	if e.unblock.Success && e.waitWB && !e.gotWB {
		return
	}
	// Apply the final transition.
	req := e.requester
	if e.unblock.Success {
		switch {
		case e.busyGETX:
			e.state = DirModified
			e.owner = req
			e.sharers = oneNode(req)
		case e.busyGETS:
			// M -> S downgrade: old owner keeps a shared copy.
			e.state = DirShared
			e.sharers = e.savedShare
			e.sharers.add(e.savedOwner)
			e.sharers.add(req)
			e.owner = -1
		}
	} else {
		// Failed (NACKed) request: restore the pre-request state. Sharers
		// that invalidated remain listed — a conservative superset; later
		// spurious invalidations ACK harmlessly.
		e.state = e.savedState
		e.sharers = e.savedShare
		e.owner = e.savedOwner
	}
	if d.pred != nil && e.busyTxGETX {
		if e.unicastTo >= 0 {
			d.pred.UnicastResolved(!e.unblock.MPBit)
		} else {
			d.pred.MulticastResolved(!e.unblock.Success && e.unblock.AbortedSharers > 0)
		}
	}
	// Blocking accounting.
	blocked := uint64(d.env.Now() - e.busySince)
	d.stats.BusyCycles += blocked
	if e.busyTxGETX {
		d.stats.TxGETXBusy += blocked
	}
	e.busy = false
	e.unicastTo = -1
	d.updateUD(e, l)
	// Drain parked requests until one re-blocks the entry (or none are
	// left): requests serviced entirely at the home node (e.g. GETS from
	// Shared) do not block, so stopping after one would strand the rest.
	for !e.busy && len(e.pending) > 0 {
		next := e.pending[0]
		copy(e.pending, e.pending[1:])
		e.pending = e.pending[:len(e.pending)-1]
		switch next.Type {
		case MsgGETS:
			d.handleGETS(&next)
		case MsgGETX:
			d.handleGETX(&next)
		}
	}
}

func (d *Directory) updateUD(e *dirEntry, l mem.Line) {
	if d.pred == nil {
		return
	}
	d.pred.UpdateUD(l, d.sharersScratch(e.sharers, -1))
}
