package area

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperTableIIIAnchors(t *testing.T) {
	r := BuildReport(PUNOStructures(16), Tech65nm(), Rock())
	// The paper's published component values must be reproduced exactly.
	want := map[string][2]float64{
		"Prio-Buffer": {4700, 7.28},
		"TxLB":        {5380, 7.52},
		"UD pointers": {47400, 16.43},
	}
	for _, c := range r.Components {
		w, ok := want[c.Name]
		if !ok {
			t.Fatalf("unexpected component %q", c.Name)
		}
		if c.AreaUM2 != w[0] || c.PowerMW != w[1] {
			t.Errorf("%s = %.0f um2 / %.2f mW, want %.0f / %.2f", c.Name, c.AreaUM2, c.PowerMW, w[0], w[1])
		}
	}
	if r.TotalAreaUM2 != 57480 {
		t.Errorf("total area = %.0f, want 57480", r.TotalAreaUM2)
	}
	if math.Abs(r.TotalPowerMW-31.23) > 0.01 {
		t.Errorf("total power = %.2f, want 31.23", r.TotalPowerMW)
	}
	// Paper: 0.41% area, 0.31% power overhead.
	if math.Abs(100*r.AreaOverhead-0.41) > 0.01 {
		t.Errorf("area overhead = %.3f%%, want 0.41%%", 100*r.AreaOverhead)
	}
	if math.Abs(100*r.PowerOverhead-0.31) > 0.01 {
		t.Errorf("power overhead = %.3f%%, want 0.31%%", 100*r.PowerOverhead)
	}
}

func TestModelFitMatchesAnchors(t *testing.T) {
	// The analytic fit must land within a few percent of the published
	// compiler points it was fitted to.
	tech := Tech65nm()
	for _, s := range PUNOStructures(16)[:2] { // P-Buffer and TxLB
		e := Size(s, tech)
		if rel := math.Abs(e.ModelAreaUM2-e.AreaUM2) / e.AreaUM2; rel > 0.03 {
			t.Errorf("%s model area off by %.1f%%", s.Name, 100*rel)
		}
		if rel := math.Abs(e.ModelPowerMW-e.PowerMW) / e.PowerMW; rel > 0.03 {
			t.Errorf("%s model power off by %.1f%%", s.Name, 100*rel)
		}
	}
}

func TestModelMonotoneInBits(t *testing.T) {
	tech := Tech65nm()
	f := func(entries uint8, bits uint8) bool {
		e1 := Size(Structure{Name: "a", Entries: int(entries) + 1, Bits: int(bits) + 1}, tech)
		e2 := Size(Structure{Name: "b", Entries: int(entries) + 2, Bits: int(bits) + 1}, tech)
		return e2.ModelAreaUM2 > e1.ModelAreaUM2 && e2.ModelPowerMW > e1.ModelPowerMW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnanchoredConfigUsesModel(t *testing.T) {
	// A 32-node machine has no paper anchors: the model must kick in and
	// scale the P-Buffer with the node count.
	s16 := PUNOStructures(16)
	s32 := PUNOStructures(32)
	if s32[0].PaperAreaUM2 != 0 {
		t.Fatal("32-node config should not carry paper anchors")
	}
	e16 := Size(Structure{Name: s16[0].Name, Entries: 16, Bits: 34}, Tech65nm())
	e32 := Size(s32[0], Tech65nm())
	if e32.AreaUM2 <= e16.ModelAreaUM2 {
		t.Fatal("P-Buffer area should grow with node count")
	}
}

func TestReportString(t *testing.T) {
	r := BuildReport(PUNOStructures(16), Tech65nm(), Rock())
	out := r.String()
	for _, want := range []string{"Prio-Buffer", "TxLB", "UD pointers", "Overall", "Overhead", "0.41%", "0.31%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTotalBits(t *testing.T) {
	s := Structure{Entries: 16, Bits: 34}
	if s.TotalBits() != 544 {
		t.Fatalf("TotalBits = %d, want 544", s.TotalBits())
	}
}
