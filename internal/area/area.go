// Package area estimates the VLSI area and power of the PUNO hardware
// structures, reproducing the paper's Table III. The paper sized the
// P-Buffer, TxLB and UD pointers with a commercial memory compiler at 65nm
// / 2.3GHz / 0.9V and compared against one core of the Sun Rock processor
// (14 mm^2 and 10 W per core). Commercial compiler output for small SRAM
// macros is approximated here by an analytic bit-cell + periphery model,
// fitted to the paper's published P-Buffer and TxLB points; the paper's
// published values are also carried verbatim as anchors so the Table III
// reproduction is exact where the paper gives numbers and modeled where a
// configuration sweep departs from them.
package area

import "fmt"

// Tech describes an operating point for the analytic macro model. The
// area/power of a macro with B bits is BitAreaUM2*B + PeripheryUM2 (and
// analogously for power).
type Tech struct {
	Name             string
	BitAreaUM2       float64
	PeripheryUM2     float64
	PowerMWPerBit    float64
	PeripheryPowerMW float64
}

// Tech65nm is fitted to the paper's P-Buffer (544 bits -> 4700 um^2,
// 7.28 mW) and TxLB (1280 bits -> 5380 um^2, 7.52 mW) compiler points at
// 65nm / 2.3GHz / 0.9V.
func Tech65nm() Tech {
	return Tech{
		Name:             "65nm@2.3GHz,0.9V",
		BitAreaUM2:       0.924,
		PeripheryUM2:     4197,
		PowerMWPerBit:    0.000326,
		PeripheryPowerMW: 7.10,
	}
}

// Structure is one hardware table to size.
type Structure struct {
	Name    string
	Entries int
	Bits    int // bits per entry

	// PaperAreaUM2/PaperPowerMW carry the published Table III values when
	// the structure matches the paper's configuration; zero means "model
	// only".
	PaperAreaUM2 float64
	PaperPowerMW float64
}

// TotalBits returns the structure's storage.
func (s Structure) TotalBits() int { return s.Entries * s.Bits }

// Estimate is the sized result for one structure.
type Estimate struct {
	Structure
	// Modeled values from the analytic fit.
	ModelAreaUM2 float64
	ModelPowerMW float64
	// Effective values: the paper anchor when present, else the model.
	AreaUM2 float64
	PowerMW float64
}

// Size runs the analytic model for one structure and applies the paper
// anchor when present.
func Size(s Structure, t Tech) Estimate {
	bits := float64(s.TotalBits())
	e := Estimate{
		Structure:    s,
		ModelAreaUM2: bits*t.BitAreaUM2 + t.PeripheryUM2,
		ModelPowerMW: bits*t.PowerMWPerBit + t.PeripheryPowerMW,
	}
	e.AreaUM2, e.PowerMW = e.ModelAreaUM2, e.ModelPowerMW
	if s.PaperAreaUM2 > 0 {
		e.AreaUM2 = s.PaperAreaUM2
	}
	if s.PaperPowerMW > 0 {
		e.PowerMW = s.PaperPowerMW
	}
	return e
}

// Reference is the chip the overhead is measured against.
type Reference struct {
	Name        string
	CoreAreaUM2 float64
	CorePowerMW float64
}

// Rock returns the paper's comparison point: one 65nm Sun Rock core
// (14,000,000 um^2, 10 W).
func Rock() Reference {
	return Reference{Name: "Sun Rock core", CoreAreaUM2: 14_000_000, CorePowerMW: 10_000}
}

// PUNOStructures returns the per-node PUNO hardware for a machine with the
// given node count: the P-Buffer (one priority + 2-bit validity counter
// per node), the 32-entry TxLB (8-bit static tag + 32-bit average), and
// the directory slice's UD pointer array (8 bits per pointer, as the
// paper over-provisions "due to constraints of the memory compiler").
// Paper anchors attach when the configuration matches the paper's
// (16 nodes).
func PUNOStructures(nodes int) []Structure {
	pb := Structure{Name: "Prio-Buffer", Entries: nodes, Bits: 34}
	txlb := Structure{Name: "TxLB", Entries: 32, Bits: 40}
	// The paper's UD pointer area (47,400 um^2 at 8 bits per pointer)
	// corresponds to roughly 5.8k tracked directory entries per bank.
	ud := Structure{Name: "UD pointers", Entries: 5888, Bits: 8}
	if nodes == 16 {
		pb.PaperAreaUM2, pb.PaperPowerMW = 4700, 7.28
		txlb.PaperAreaUM2, txlb.PaperPowerMW = 5380, 7.52
		ud.PaperAreaUM2, ud.PaperPowerMW = 47400, 16.43
	}
	return []Structure{pb, txlb, ud}
}

// Report is the Table III reproduction.
type Report struct {
	Components   []Estimate
	TotalAreaUM2 float64
	TotalPowerMW float64
	// Overheads are fractions of the reference core, per the paper.
	AreaOverhead  float64
	PowerOverhead float64
	Ref           Reference
}

// BuildReport sizes every structure and computes the overhead against ref.
func BuildReport(structures []Structure, t Tech, ref Reference) Report {
	var r Report
	r.Ref = ref
	for _, s := range structures {
		e := Size(s, t)
		r.Components = append(r.Components, e)
		r.TotalAreaUM2 += e.AreaUM2
		r.TotalPowerMW += e.PowerMW
	}
	r.AreaOverhead = r.TotalAreaUM2 / ref.CoreAreaUM2
	r.PowerOverhead = r.TotalPowerMW / ref.CorePowerMW
	return r
}

// String renders the report in the paper's Table III layout.
func (r Report) String() string {
	out := fmt.Sprintf("%-14s %12s %12s\n", "Components", "Area (um2)", "Power (mW)")
	for _, c := range r.Components {
		out += fmt.Sprintf("%-14s %12.0f %12.2f\n", c.Name, c.AreaUM2, c.PowerMW)
	}
	out += fmt.Sprintf("%-14s %12.0f %12.2f\n", "Overall", r.TotalAreaUM2, r.TotalPowerMW)
	out += fmt.Sprintf("%-14s %11.2f%% %11.2f%%\n", "Overhead", 100*r.AreaOverhead, 100*r.PowerOverhead)
	return out
}
