package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for … range` over a map-typed value. Go randomizes map
// iteration order per range statement, so any map range whose order can
// reach simulation state or rendered output is a latent nondeterminism bug
// — the exact class PR 1 fixed in PUNO-Push's fireWakeups, where a map
// range randomized NoC send order. Simulation code iterates a sorted key
// slice (internal/detmap) or a flat insertion-ordered structure
// (internal/htm's lineSet) instead; a range whose order provably cannot
// escape may carry `//puno:unordered — <reason>`.
//
// Test files are exempt: table-driven tests range over expectation maps and
// are off the simulation path by definition.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "forbid nondeterministically-ordered map iteration in simulation packages",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) (any, error) {
	for i, f := range pass.Files {
		if pass.isTestFile(i) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.suppressed("maprange", rs.For) {
				return true
			}
			pass.Reportf(rs.For,
				"map iteration order is nondeterministic and can leak into simulation state; iterate detmap.Keys/a flat insertion-ordered structure, or annotate //puno:unordered — <reason> if the order provably cannot escape")
			return true
		})
	}
	return nil, nil
}
