package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for … range` over a map-typed value. Go randomizes map
// iteration order per range statement, so any map range whose order can
// reach simulation state or rendered output is a latent nondeterminism bug
// — the exact class PR 1 fixed in PUNO-Push's fireWakeups, where a map
// range randomized NoC send order. Simulation code iterates a sorted key
// slice (internal/detmap) or a flat insertion-ordered structure
// (internal/htm's lineSet) instead; a range whose order provably cannot
// escape may carry `//puno:unordered — <reason>`.
//
// Test files are exempt: table-driven tests range over expectation maps and
// are off the simulation path by definition.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "forbid nondeterministically-ordered map iteration in simulation packages",
	Run:  runMapRange,
}

// maprangeAllowed names the functions whose map iterations are blessed by
// construction, keyed by types.Func.FullName(). Unlike a //puno:unordered
// suppression — a per-site claim anyone can write, and which noSuppressPkgs
// forbids — an entry here is a reviewed structural exemption: the function
// itself must guarantee that iteration order cannot escape. The only
// production entry is the interner's map rebuild on growth: it inserts
// existing (line, id) pairs into a fresh map, and map insertion order does
// not affect later lookups, so internal/mem can sit in noSuppressPkgs with
// exactly one blessed map. The fixture entry exercises the mechanism in the
// analyzer test suite.
var maprangeAllowed = map[string]bool{
	"(*repro/internal/mem.Interner).Grow":                          true,
	"repro/internal/lint/testdata/src/maprange.allowlistedRebuild": true,
}

func runMapRange(pass *Pass) (any, error) {
	for i, f := range pass.Files {
		if pass.isTestFile(i) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && maprangeAllowed[fn.FullName()] {
					return false // entire body is blessed by construction
				}
				return true
			}
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.suppressed("maprange", rs.For) {
				return true
			}
			pass.Reportf(rs.For,
				"map iteration order is nondeterministic and can leak into simulation state; iterate detmap.Keys/a flat insertion-ordered structure, or annotate //puno:unordered — <reason> if the order provably cannot escape")
			return true
		})
	}
	return nil, nil
}
