// Package lint is punovet's analysis framework: a small, stdlib-only
// re-creation of the golang.org/x/tools/go/analysis API shape (the module
// is built offline, so x/tools cannot be vendored) plus the
// project-specific analyzers that mechanize the simulator's determinism
// and zero-allocation invariants:
//
//   - maprange:     no `for … range` over maps in simulation packages
//   - wallclock:    no time.Now/time.Since/time.Until or math/rand there
//   - hotalloc:     no per-event allocation inside hot functions
//   - handlerfunc:  sim.Handler arguments are named funcs/methods, not closures
//   - msglife:      pooled *coherence.Msg pointers are never parked past
//     handler return (park by value instead)
//   - shardconfine: PDES shard workers touch only shard-local state and
//     the blessed cross-shard APIs
//   - probeguard:   every probe.Sink emission is dominated by a nil check
//
// The eighth check, the escape gate (escape.go, `punovet -escape`), is not
// an Analyzer: it parses `go build -gcflags=-m=2` diagnostics — compiler
// ground truth for //puno:hot functions — instead of walking the AST.
//
// Findings may be suppressed per statement with a written reason (see
// suppress.go); suppressions are forbidden entirely in internal/sim,
// internal/noc, internal/machine, internal/mem, and internal/pdes, where
// exemptions are reviewed structural allowlists keyed by
// types.Func.FullName() instead.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. The shape deliberately matches
// golang.org/x/tools/go/analysis.Analyzer so the analyzers can migrate to
// the real driver unchanged if x/tools ever becomes vendorable here.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string // parallel to Files
	Src       [][]byte // parallel to Files; raw source for suppression scans
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	directives []directive // parsed //puno: directives, lazily built
	dirBuilt   bool
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// suppressed reports whether a finding by the named analyzer at pos is
// covered by a well-formed //puno: suppression directive. Malformed
// directives (missing reason) never suppress; they are reported separately
// by the driver.
func (p *Pass) suppressed(analyzer string, pos token.Pos) bool {
	line := p.Fset.Position(pos).Line
	file := p.Fset.Position(pos).Filename
	for _, d := range p.Directives() {
		if d.Kind != dirSuppress || d.Analyzer != analyzer || d.Reason == "" {
			continue
		}
		if d.File == file && d.AppliesTo == line {
			return true
		}
	}
	return false
}

// isTestFile reports whether the i'th file of the pass is a _test.go file.
// Test files in audited packages are exempt from maprange and hotalloc:
// table-driven tests legitimately range over expectation maps, and test
// code is off the simulation hot path by definition.
func (p *Pass) isTestFile(i int) bool {
	return strings.HasSuffix(p.Filenames[i], "_test.go")
}
