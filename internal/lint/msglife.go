package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MsgLife guards the pooled-message lifetime contract PR 7 wrote down in
// internal/machine: a `*coherence.Msg` handed to a handler (or minted by
// Env.NewMsg) is returned to the pool the moment the handler returns, so
// any user that wants the message later must park a *copy* by value
// (`e.pending = append(e.pending, *m)`), never the pointer. A pointer
// parked into a struct field, package variable, slice/map element, or
// closure capture outlives the handler and silently aliases the pool: the
// next pooled send overwrites the parked message wholesale, and the
// corruption shows up runs later as a bit-determinism divergence.
//
// The analyzer flags stores whose destination outlives the enclosing
// function — a field (selector), an indexed element, or a package-level
// variable — when the stored value is or contains a *coherence.Msg; it
// also flags func literals that capture a *coherence.Msg declared outside
// the literal, since the closure may run after the handler returned.
// Copying by value (`*m`) never trips it: the dereferenced expression has
// value type Msg.
//
// The pool's own plumbing legitimately stores the pointers it manages;
// those functions are blessed structurally via msglifeAllowed (the
// noSuppressPkgs core cannot carry //puno:allow). Test files are exempt.
var MsgLife = &Analyzer{
	Name: "msglife",
	Doc:  "forbid parking pooled *coherence.Msg pointers past handler return",
	Run:  runMsgLife,
}

// msglifeAllowed names the functions that may store *coherence.Msg
// pointers into longer-lived structures, keyed by types.Func.FullName().
// Every entry is a reviewed pool-internal or staged-replay path:
//
//   - Machine.newMsg / Machine.freeMsg own the free list itself; the
//     stored pointers ARE the pool.
//   - BalanceMsgPools levels the free lists across shard machines between
//     runs; it moves pool-owned pointers while no handler is live.
//   - Coordinator.Reset installs the xsend staging hook: a remote send is
//     parked by pointer into sh.sends, which is safe because the staged
//     message is not freed until commit replays the send on the global
//     mesh — the coordinator, not the handler, owns its lifetime.
//   - Coordinator.replay stages routed messages into c.routes under the
//     same ownership rule, one window later.
//
// The fixture entry exercises the mechanism in the analyzer test suite.
var msglifeAllowed = map[string]bool{
	"(*repro/internal/machine.Machine).newMsg":                    true,
	"(*repro/internal/machine.Machine).freeMsg":                   true,
	"repro/internal/machine.BalanceMsgPools":                      true,
	"(*repro/internal/pdes.Coordinator).Reset":                    true,
	"(*repro/internal/pdes.Coordinator).replay":                   true,
	"repro/internal/lint/testdata/src/msglife.blessedPoolReclaim": true,
}

// isMsgPtr reports whether t is *coherence.Msg.
func isMsgPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Msg" && obj.Pkg() != nil && obj.Pkg().Name() == "coherence"
}

func runMsgLife(pass *Pass) (any, error) {
	for i, f := range pass.Files {
		if pass.isTestFile(i) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && msglifeAllowed[fn.FullName()] {
				continue
			}
			checkMsgLifeBody(pass, fd)
		}
	}
	return nil, nil
}

func checkMsgLifeBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break // y, z = f() — calls cannot produce a parked pointer store here
				}
				if !escapingDest(pass, lhs, x.Tok) {
					continue
				}
				reportMsgCarrier(pass, fd, x.Rhs[i])
			}
		case *ast.FuncLit:
			checkMsgCapture(pass, fd, x)
			// Keep walking: stores inside the literal still park past the
			// literal's own return.
		}
		return true
	})
}

// escapingDest reports whether an assignment destination outlives the
// enclosing function: a struct field or indexed element (selector/index),
// or a package-level variable. Plain locals — including := defines — die
// with the handler and are fine.
func escapingDest(pass *Pass, lhs ast.Expr, tok token.Token) bool {
	switch d := lhs.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.Ident:
		if tok == token.DEFINE {
			return false
		}
		v, ok := pass.TypesInfo.Uses[d].(*types.Var)
		return ok && v.Parent() == pass.Pkg.Scope() // package-level var
	case *ast.StarExpr:
		// *p = m overwrites the pointee in place; the pointer itself is
		// not being parked anywhere new.
		return false
	}
	return false
}

// reportMsgCarrier flags rhs if it is, or structurally contains, a
// *coherence.Msg value: the pointer itself, an append whose added elements
// carry one, or a composite literal with a *Msg-typed element (the staging
// idiom `append(sh.sends, send{msg: msg, …})`).
func reportMsgCarrier(pass *Pass, fd *ast.FuncDecl, rhs ast.Expr) {
	if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
		for _, arg := range call.Args[1:] {
			reportMsgCarrier(pass, fd, arg)
		}
		return
	}
	if comp, ok := rhs.(*ast.CompositeLit); ok {
		for _, elt := range comp.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			reportMsgCarrier(pass, fd, elt)
		}
		return
	}
	t := pass.TypesInfo.TypeOf(rhs)
	if t == nil || !isMsgPtr(t) {
		return
	}
	if pass.suppressed("msglife", rhs.Pos()) {
		return
	}
	pass.Reportf(rhs.Pos(),
		"pooled *coherence.Msg parked by pointer in %s outlives handler return and aliases the message pool; copy by value (*m) or route through the pool internals", fd.Name.Name)
}

// checkMsgCapture flags *coherence.Msg variables captured by a func
// literal: the closure can run after the handler returned the message to
// the pool. A *Msg that is the literal's own parameter or local is fine.
func checkMsgCapture(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] || !isMsgPtr(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the literal's own parameter or local
		}
		seen[obj] = true
		if !pass.suppressed("msglife", id.Pos()) {
			pass.Reportf(id.Pos(),
				"closure in %s captures pooled *coherence.Msg %s, which is freed when the handler returns; copy the message by value before capturing", fd.Name.Name, id.Name)
		}
		return true
	})
}
