package lint

import (
	"go/ast"
	"strings"
)

// Suppression grammar
//
// A finding is suppressed by a //puno: directive carrying a written reason.
// The directive sits either at the end of the offending line or on its own
// line immediately above it:
//
//	//puno:unordered — pure count; the result is independent of order
//	for _, e := range d.entries { ... }
//
//	n.total++ //puno:allow wallclock — host-side progress log, not sim state
//
// Forms:
//
//	//puno:unordered — <reason>     sugar for //puno:allow maprange
//	//puno:allow <analyzer> — <reason>
//	//puno:hot                      marks the next function declaration hot
//	                                (checked by hotalloc and the escape
//	                                gate); takes no reason
//	//puno:worker                   marks the next function declaration as a
//	                                PDES shard-worker path (checked by
//	                                shardconfine); takes no reason
//
// The reason separator is an em dash, "--", or ":". A suppression without a
// reason does not suppress anything and is itself reported as a finding, as
// is a directive with an unknown verb. //puno:unordered and //puno:allow
// are forbidden outright in internal/sim, internal/noc, internal/machine,
// internal/mem, and internal/pdes (driver.go enforces this); the reviewed
// structural allowlists keyed by types.Func.FullName are the only
// exemption mechanism in those packages.

type dirKind uint8

const (
	dirSuppress  dirKind = iota // unordered / allow
	dirHot                      // puno:hot
	dirWorker                   // puno:worker
	dirMalformed                // unparseable //puno: comment
)

// directive is one parsed //puno: comment.
type directive struct {
	Kind      dirKind
	Analyzer  string // suppressions: which analyzer is silenced
	Reason    string // suppressions: the written justification ("" = missing)
	File      string
	Line      int    // line the comment itself is on
	AppliesTo int    // line the directive governs (same line or the one below)
	Problem   string // dirMalformed: what is wrong
}

const punoPrefix = "//puno:"

// Directives parses and caches every //puno: comment in the pass's files.
func (p *Pass) Directives() []directive {
	if p.dirBuilt {
		return p.directives
	}
	p.dirBuilt = true
	for i, f := range p.Files {
		p.directives = append(p.directives, parseDirectives(p, i, f)...)
	}
	return p.directives
}

func parseDirectives(p *Pass, fileIdx int, f *ast.File) []directive {
	var out []directive
	src := p.Src[fileIdx]
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, punoPrefix) {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			d := parseDirective(c.Text)
			d.File = pos.Filename
			d.Line = pos.Line
			// A directive alone on its line governs the line below; an
			// end-of-line directive governs its own line.
			if commentIsAlone(src, pos.Offset) {
				d.AppliesTo = pos.Line + 1
			} else {
				d.AppliesTo = pos.Line
			}
			out = append(out, d)
		}
	}
	return out
}

// commentIsAlone reports whether only whitespace precedes the comment
// starting at offset on its line.
func commentIsAlone(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true
}

// parseDirective interprets the text of one //puno: comment.
func parseDirective(text string) directive {
	body := strings.TrimPrefix(text, punoPrefix)
	verb := body
	rest := ""
	if i := strings.IndexAny(body, " \t—:"); i >= 0 {
		verb, rest = body[:i], body[i:]
	}
	switch verb {
	case "hot":
		if strings.TrimSpace(rest) != "" {
			return directive{Kind: dirMalformed, Problem: "puno:hot takes no arguments"}
		}
		return directive{Kind: dirHot}
	case "worker":
		if strings.TrimSpace(rest) != "" {
			return directive{Kind: dirMalformed, Problem: "puno:worker takes no arguments"}
		}
		return directive{Kind: dirWorker}
	case "unordered":
		return directive{Kind: dirSuppress, Analyzer: "maprange", Reason: parseReason(rest)}
	case "allow":
		rest = strings.TrimLeft(rest, " \t")
		name := rest
		reason := ""
		if i := strings.IndexAny(rest, " \t—:-"); i >= 0 {
			name, reason = rest[:i], rest[i:]
		}
		if name == "" {
			return directive{Kind: dirMalformed, Problem: "puno:allow needs an analyzer name"}
		}
		return directive{Kind: dirSuppress, Analyzer: name, Reason: parseReason(reason)}
	default:
		return directive{Kind: dirMalformed, Problem: "unknown puno directive " + strings.Trim(verb, " \t")}
	}
}

// parseReason strips the separator (em dash, "--", "-", or ":") and
// surrounding space from a directive tail; an empty result means the
// required reason is missing.
func parseReason(s string) string {
	s = strings.TrimLeft(s, " \t")
	for _, sep := range []string{"—", "--", "-", ":"} {
		if strings.HasPrefix(s, sep) {
			return strings.TrimSpace(strings.TrimPrefix(s, sep))
		}
	}
	return strings.TrimSpace(s)
}

// hotMarked reports whether the function declaration at the given line (its
// func keyword) is annotated //puno:hot — the directive line must govern
// the declaration's first line.
func (p *Pass) hotMarked(file string, line int) bool {
	for _, d := range p.Directives() {
		if d.Kind == dirHot && d.File == file && d.AppliesTo == line {
			return true
		}
	}
	return false
}

// markedInDoc reports whether a directive of the given kind appears between
// docStart and funcLine inclusive — i.e. anywhere in the declaration's doc
// comment block or directly above the func keyword. isHotFunc and
// isWorkerFunc share this so //puno:hot and //puno:worker behave
// identically whether they sit on their own line or inside a doc comment.
func (p *Pass) markedInDoc(kind dirKind, file string, docStart, funcLine int) bool {
	for _, d := range p.Directives() {
		if d.Kind == kind && d.File == file && d.Line >= docStart && d.Line < funcLine+1 {
			return true
		}
	}
	return false
}
