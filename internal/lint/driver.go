package lint

import (
	"go/token"
	"sort"
	"strings"
	"time"
)

// Finding is one resolved diagnostic, positioned and attributed.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Timing is one analyzer's cumulative wall time across a run, for the
// `punovet -v` summary.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// Default returns punovet's analyzer suite. The escape gate is the eighth
// check but not an *Analyzer — it drives the compiler, not a Pass — and
// runs via RunEscape (`punovet -escape`).
func Default() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, HotAlloc, HandlerFunc, MsgLife, ShardConfine, ProbeGuard}
}

// universalAnalyzers run on every loaded package, not just the audited
// simulation set: a closure handler is wrong wherever the scheduling call
// appears, and an unguarded probe hook is a nil-interface panic wherever
// the emission sits (the trace/report layers hold sinks too).
var universalAnalyzers = map[*Analyzer]bool{}

func init() {
	universalAnalyzers[HandlerFunc] = true
	universalAnalyzers[ProbeGuard] = true
}

// auditedPkgs are the simulation packages whose determinism and
// zero-allocation invariants maprange/wallclock/hotalloc enforce. cmd/, the
// root package, and the harness packages (runner, report, prof, …) are
// exempt: they run on the host side of the simulation boundary.
// handlerfunc runs everywhere — a closure handler is wrong wherever the
// scheduling call appears.
var auditedPkgs = map[string]bool{
	"repro/internal/sim":       true,
	"repro/internal/noc":       true,
	"repro/internal/coherence": true,
	"repro/internal/htm":       true,
	"repro/internal/machine":   true,
	"repro/internal/core":      true,
	"repro/internal/cm":        true,
	"repro/internal/cache":     true,
	"repro/internal/mem":       true,
	"repro/internal/pdes":      true,
	// The serving layer is host-side, but its whole correctness story is
	// that cached results are provably fresh because simulation is
	// deterministic: a wall-clock read or map iteration feeding a cache
	// key, an artifact encoding, or an eviction decision would break
	// content addressing the same way it would break a simulation. Its
	// //puno:hot lookup path is also under the escape gate.
	"repro/internal/serve": true,
}

// noSuppressPkgs are packages where //puno:unordered and //puno:allow are
// forbidden outright: the event engine, the network, and the machine are
// the total-order core of the simulator, and "provably cannot matter"
// claims there have already been wrong once (PR 1's fireWakeups).
var noSuppressPkgs = map[string]bool{
	"repro/internal/sim":     true,
	"repro/internal/noc":     true,
	"repro/internal/machine": true,
	// The line interner underpins every dense table's ID assignment;
	// per-site "order cannot matter" claims are forbidden there. Its one
	// legitimate map iteration (the rebuild in Interner.Grow) is blessed
	// structurally via maprangeAllowed instead.
	"repro/internal/mem": true,
	// The PDES coordinator reproduces the serial engine's total order from
	// per-shard partial orders; an "order cannot matter" claim there is by
	// definition a claim about the merge, which is exactly what must never
	// be hand-waved. Bit-identity is the contract.
	"repro/internal/pdes": true,
}

// audited reports whether the package is subject to the simulation-only
// analyzers. Fixture packages under a testdata/src tree are always treated
// as audited so the analyzer test suite and the punovet smoke tests can
// exercise every analyzer on synthetic code.
func audited(pkgPath string) bool {
	return auditedPkgs[pkgPath] || strings.Contains(pkgPath, "/testdata/src/")
}

// RunAnalyzers loads the packages matched by patterns (resolved from dir)
// and applies the analyzers, returning findings sorted by position. Beyond
// the analyzers themselves it enforces the suppression policy: malformed
// directives and suppressions missing a reason are findings, and any
// suppression inside noSuppressPkgs is a finding regardless of its reason.
func RunAnalyzers(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunAnalyzersTimed(dir, patterns, analyzers)
	return findings, err
}

// RunAnalyzersTimed is RunAnalyzers plus a per-analyzer cumulative timing
// summary (the `punovet -v` report), in the order the analyzers were given.
func RunAnalyzersTimed(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, []Timing, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	var findings []Finding
	elapsed := make(map[*Analyzer]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !universalAnalyzers[a] && !audited(pkg.PkgPath) {
				continue
			}
			pass := newPass(a, pkg)
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			start := time.Now()
			_, err := a.Run(pass)
			elapsed[a] += time.Since(start)
			if err != nil {
				return nil, nil, err
			}
		}
		findings = append(findings, checkDirectives(pkg)...)
	}
	sortFindings(findings)
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: elapsed[a]})
	}
	return findings, timings, nil
}

// sortFindings orders findings by file, line, then analyzer, the stable
// order every reporting path prints in.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

func newPass(a *Analyzer, pkg *Package) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Filenames: pkg.Filenames,
		Src:       pkg.Src,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
}

// checkDirectives validates every //puno: comment in the package against
// the suppression policy.
func checkDirectives(pkg *Package) []Finding {
	pass := newPass(nil, pkg)
	var out []Finding
	report := func(d directive, msg string) {
		out = append(out, Finding{
			Pos:      token.Position{Filename: d.File, Line: d.Line},
			Analyzer: "puno-directive",
			Message:  msg,
		})
	}
	for _, d := range pass.Directives() {
		switch d.Kind {
		case dirMalformed:
			report(d, d.Problem)
		case dirSuppress:
			if d.Reason == "" {
				report(d, "suppression of "+d.Analyzer+" is missing its required reason (write //puno:... — <why the order/alloc provably cannot matter>)")
			}
			if noSuppressPkgs[pkg.PkgPath] {
				report(d, "suppressions are forbidden in "+pkg.PkgPath+"; fix the code (detmap, flat structures, pooled objects) instead")
			}
		}
	}
	return out
}
