package lint

import (
	"go/ast"
	"go/types"
)

// ShardConfine polices the PDES ownership split PR 8 rests on: shard
// workers run concurrently and may touch only shard-local state (their
// machine, their engine, their staging buffers) plus the shared interner
// through its read-mostly API (Intern/Lookup/LineAt); everything the
// coordinator owns — the global noc.Mesh, the interner's lifecycle
// mutators, and the Machine's shard-wiring fields — is written only at
// the serial edges (Coordinator.Reset, Machine.resetShard, commit).
// A worker that reaches coordinator state races another shard and breaks
// the bit-identity contract in the worst way: nondeterministically.
//
// Three rules, all structural (the pdes/machine core sits in
// noSuppressPkgs, so exemptions are reviewed allowlist entries, not
// per-site comments):
//
//  1. In functions marked //puno:worker (the shard-worker entry paths),
//     any use of a *pdes.Coordinator or noc.Mesh value is flagged —
//     workers hand remote sends to the xsend hook and cross-shard
//     deliveries to InjectDeliver; they never see the mesh.
//  2. Calls to the shared interner's lifecycle mutators
//     (Interner.Grow/Reset/SetShared) are flagged outside the blessed
//     serial-edge functions in shardconfineInternerAllowed.
//  3. Writes to the Machine's shard-wiring fields (lo, hi, xsend, it,
//     ownIt) are flagged outside Machine.resetShard.
//
// Test files are exempt.
var ShardConfine = &Analyzer{
	Name: "shardconfine",
	Doc:  "confine PDES shard workers to shard-local state and blessed APIs",
	Run:  runShardConfine,
}

// shardconfineInternerAllowed names the functions that may call the
// interner's lifecycle mutators, keyed by types.Func.FullName(). Both
// production entries run strictly before any worker goroutine exists:
// Coordinator.Reset sizes and shares the coordinator-owned interner;
// Machine.resetShard resets/grows the machine-owned interner when the
// machine is NOT adopting a shared one. The fixture entry exercises the
// mechanism in the analyzer test suite.
var shardconfineInternerAllowed = map[string]bool{
	"(*repro/internal/pdes.Coordinator).Reset":                       true,
	"(*repro/internal/machine.Machine).resetShard":                   true,
	"(*repro/internal/lint/testdata/src/shardconfine.Env).resetWire": true,
}

// shardconfineWiringAllowed names the functions that may write the
// Machine's shard-wiring fields. resetShard is the single construction
// point: it installs [lo, hi), the xsend hook, and the interner identity
// before the machine runs.
var shardconfineWiringAllowed = map[string]bool{
	"(*repro/internal/machine.Machine).resetShard":                       true,
	"(*repro/internal/lint/testdata/src/shardconfine.Machine).resetWire": true,
}

// machineWiringFields are the Machine fields only resetShard may write.
var machineWiringFields = map[string]bool{
	"lo": true, "hi": true, "xsend": true, "it": true, "ownIt": true,
}

func runShardConfine(pass *Pass) (any, error) {
	for i, f := range pass.Files {
		if pass.isTestFile(i) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			full := ""
			if fn != nil {
				full = fn.FullName()
			}
			if pass.isWorkerFunc(fd) {
				checkWorkerBody(pass, fd)
			}
			if !shardconfineInternerAllowed[full] {
				checkInternerMutators(pass, fd)
			}
			if !shardconfineWiringAllowed[full] {
				checkWiringWrites(pass, fd)
			}
		}
	}
	return nil, nil
}

// isCoordinatorState reports whether t is coordinator-owned by type:
// *pdes.Coordinator (or the fixture's Coordinator) or the global noc.Mesh.
func isCoordinatorState(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	name, pkg := named.Obj().Name(), named.Obj().Pkg().Name()
	switch {
	case name == "Coordinator" && (pkg == "pdes" || pkg == "shardconfine"):
		return "the PDES coordinator", true
	case name == "Mesh" && (pkg == "noc" || pkg == "shardconfine"):
		return "the global mesh", true
	}
	return "", false
}

// checkWorkerBody flags coordinator-owned values and interner mutators
// inside a //puno:worker function.
func checkWorkerBody(pass *Pass, fd *ast.FuncDecl) {
	reported := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		what, coord := isCoordinatorState(v.Type())
		if !coord {
			return true
		}
		reported[obj] = true
		if !pass.suppressed("shardconfine", id.Pos()) {
			pass.Reportf(id.Pos(),
				"worker function %s touches %s (%s), which is coordinator-owned; route remote sends through xsend and cross-shard deliveries through InjectDeliver", fd.Name.Name, what, id.Name)
		}
		return true
	})
}

// internerMutator resolves call to (*mem.Interner).Grow/Reset/SetShared
// (or the fixture interner's), returning the method name.
func internerMutator(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Grow" && name != "Reset" && name != "SetShared" {
		return "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Name() != "Interner" || named.Obj().Pkg().Name() != "mem" {
		return "", false
	}
	return name, true
}

// checkInternerMutators flags Grow/Reset/SetShared calls on an interner
// outside the blessed serial-edge functions. The interner package itself
// is exempt: the methods have to live somewhere.
func checkInternerMutators(pass *Pass, fd *ast.FuncDecl) {
	if pass.Pkg.Name() == "mem" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := internerMutator(pass, call)
		if !ok {
			return true
		}
		if !pass.suppressed("shardconfine", call.Pos()) {
			pass.Reportf(call.Pos(),
				"Interner.%s called in %s, outside the blessed serial edges (Coordinator.Reset, Machine.resetShard); workers may only Intern/Lookup/LineAt the shared interner", name, fd.Name.Name)
		}
		return true
	})
}

// checkWiringWrites flags assignments to Machine shard-wiring fields
// outside resetShard.
func checkWiringWrites(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || !machineWiringFields[sel.Sel.Name] {
				continue
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				continue
			}
			recv := selection.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Name() != "Machine" || named.Obj().Pkg() == nil {
				continue
			}
			if pkg := named.Obj().Pkg().Name(); pkg != "machine" && pkg != "shardconfine" {
				continue
			}
			if !pass.suppressed("shardconfine", sel.Pos()) {
				pass.Reportf(sel.Pos(),
					"Machine.%s is shard wiring and may only be written by resetShard; %s must not rewire a machine mid-run", sel.Sel.Name, fd.Name.Name)
			}
		}
		return true
	})
}
