package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ProbeGuard enforces the probe contract PR 6 set: every emission into a
// probe.Sink interface value is dominated by a nil check of that exact
// sink expression, so a machine built without a sink pays one predictable
// branch per potential event and nothing else. An unguarded s.Emit(…) on
// a nil sink is a panic three layers below the event loop; a guard on the
// wrong expression (checking m.sink, emitting t.probe) is the same bug
// wearing a disguise.
//
// Two guard shapes are recognized, matching the tree's idiom:
//
//	if s != nil { s.Emit(e) }            // guarded body (also s != nil && …)
//	if s == nil { return }; s.Emit(e)    // early return guards the rest
//
// Emissions on concrete sink types (e.g. *probe.Buffer) are not flagged:
// a concrete method call on a typed receiver is the caller's own object,
// and the nil-receiver hazard the contract targets is the interface-typed
// hook fields. The analyzer runs on every package — a probe hook is wrong
// unguarded wherever it appears. Test files are exempt.
var ProbeGuard = &Analyzer{
	Name: "probeguard",
	Doc:  "require a dominating nil check at every probe.Sink emission site",
	Run:  runProbeGuard,
}

func runProbeGuard(pass *Pass) (any, error) {
	for i, f := range pass.Files {
		if pass.isTestFile(i) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedStmts(pass, fd.Name.Name, fd.Body.List, map[string]bool{})
		}
	}
	return nil, nil
}

// isProbeSink reports whether t is the probe.Sink interface type.
func isProbeSink(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Sink" || obj.Pkg() == nil || obj.Pkg().Name() != "probe" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}

// sinkKey renders the receiver expression of a Sink emission or nil check
// to its canonical source form, the key guard tracking matches on.
func sinkKey(e ast.Expr) string {
	return types.ExprString(e)
}

// nilCmp decomposes `e` as `x <op> nil` (either operand order), returning
// x and the operator.
func nilCmp(e ast.Expr) (ast.Expr, token.Token, bool) {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return nil, 0, false
	}
	if id, ok := b.Y.(*ast.Ident); ok && id.Name == "nil" {
		return b.X, b.Op, true
	}
	if id, ok := b.X.(*ast.Ident); ok && id.Name == "nil" {
		return b.Y, b.Op, true
	}
	return nil, 0, false
}

// guardedKeys extracts the sink expressions proven non-nil when cond is
// true: `x != nil`, possibly as conjuncts of &&.
func guardedKeys(cond ast.Expr) []string {
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return append(guardedKeys(b.X), guardedKeys(b.Y)...)
	}
	if x, op, ok := nilCmp(cond); ok && op == token.NEQ {
		return []string{sinkKey(x)}
	}
	return nil
}

// terminates reports whether the block unconditionally leaves the
// enclosing scope: its last statement is a return, branch, or panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func withKeys(guarded map[string]bool, keys []string) map[string]bool {
	if len(keys) == 0 {
		return guarded
	}
	out := make(map[string]bool, len(guarded)+len(keys))
	for k := range guarded {
		out[k] = true
	}
	for _, k := range keys {
		out[k] = true
	}
	return out
}

// checkGuardedStmts walks a statement list tracking which sink expressions
// a dominating nil check has proven non-nil, and reports every
// probe.Sink emission outside that set.
func checkGuardedStmts(pass *Pass, fn string, list []ast.Stmt, guarded map[string]bool) {
	for i, s := range list {
		switch x := s.(type) {
		case *ast.IfStmt:
			if x.Init != nil {
				scanStmtEmissions(pass, fn, x.Init, guarded)
			}
			if keys := guardedKeys(x.Cond); len(keys) > 0 {
				checkGuardedStmts(pass, fn, x.Body.List, withKeys(guarded, keys))
				checkGuardedElse(pass, fn, x.Else, guarded)
				continue
			}
			if nx, op, ok := nilCmp(x.Cond); ok && op == token.EQL {
				// if x == nil { … }: else branch and — when the body
				// returns — the rest of this block see x non-nil.
				checkGuardedStmts(pass, fn, x.Body.List, guarded)
				checkGuardedElse(pass, fn, x.Else, withKeys(guarded, []string{sinkKey(nx)}))
				if terminates(x.Body) {
					checkGuardedStmts(pass, fn, list[i+1:], withKeys(guarded, []string{sinkKey(nx)}))
					return
				}
				continue
			}
			scanExprEmissions(pass, fn, x.Cond, guarded)
			checkGuardedStmts(pass, fn, x.Body.List, guarded)
			checkGuardedElse(pass, fn, x.Else, guarded)
		case *ast.BlockStmt:
			checkGuardedStmts(pass, fn, x.List, guarded)
		case *ast.ForStmt:
			if x.Init != nil {
				scanStmtEmissions(pass, fn, x.Init, guarded)
			}
			if x.Cond != nil {
				scanExprEmissions(pass, fn, x.Cond, guarded)
			}
			if x.Post != nil {
				scanStmtEmissions(pass, fn, x.Post, guarded)
			}
			checkGuardedStmts(pass, fn, x.Body.List, guarded)
		case *ast.RangeStmt:
			scanExprEmissions(pass, fn, x.X, guarded)
			checkGuardedStmts(pass, fn, x.Body.List, guarded)
		case *ast.SwitchStmt:
			if x.Init != nil {
				scanStmtEmissions(pass, fn, x.Init, guarded)
			}
			if x.Tag != nil {
				scanExprEmissions(pass, fn, x.Tag, guarded)
			}
			for _, c := range x.Body.List {
				cc := c.(*ast.CaseClause)
				for _, e := range cc.List {
					scanExprEmissions(pass, fn, e, guarded)
				}
				checkGuardedStmts(pass, fn, cc.Body, guarded)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				checkGuardedStmts(pass, fn, c.(*ast.CaseClause).Body, guarded)
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				checkGuardedStmts(pass, fn, c.(*ast.CommClause).Body, guarded)
			}
		case *ast.LabeledStmt:
			checkGuardedStmts(pass, fn, []ast.Stmt{x.Stmt}, guarded)
		default:
			scanStmtEmissions(pass, fn, s, guarded)
		}
	}
}

func checkGuardedElse(pass *Pass, fn string, els ast.Stmt, guarded map[string]bool) {
	if els == nil {
		return
	}
	checkGuardedStmts(pass, fn, []ast.Stmt{els}, guarded)
}

// scanStmtEmissions inspects a leaf statement's expressions for Sink
// emissions. Func literals start a fresh guard scope: the closure may run
// when the enclosing function's checks no longer hold.
func scanStmtEmissions(pass *Pass, fn string, s ast.Stmt, guarded map[string]bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkGuardedStmts(pass, fn, lit.Body.List, map[string]bool{})
			return false
		}
		reportIfUnguardedEmit(pass, fn, n, guarded)
		return true
	})
}

func scanExprEmissions(pass *Pass, fn string, e ast.Expr, guarded map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkGuardedStmts(pass, fn, lit.Body.List, map[string]bool{})
			return false
		}
		reportIfUnguardedEmit(pass, fn, n, guarded)
		return true
	})
}

func reportIfUnguardedEmit(pass *Pass, fn string, n ast.Node, guarded map[string]bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil || !isProbeSink(t) {
		return
	}
	if guarded[sinkKey(sel.X)] {
		return
	}
	if pass.suppressed("probeguard", call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"probe.Sink emission %s.Emit in %s is not dominated by a nil check of %s; guard it with `if %s != nil` (one predictable branch per site)", sinkKey(sel.X), fn, sinkKey(sel.X), sinkKey(sel.X))
}
