package lint

import (
	"go/ast"
	"go/types"
)

// WallClock flags host-time and global-randomness escapes inside simulation
// packages: time.Now/time.Since/time.Until (simulated time comes from
// sim.Engine.Now) and any use of math/rand or math/rand/v2 (every random
// stream must be an explicitly seeded, component-owned *sim.RNG, or
// repeated runs of one config stop being bit-identical). cmd/ is exempt —
// wall-clock progress reporting there is host-side, not simulation state.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock time and global math/rand in simulation packages",
	Run:  runWallClock,
}

// wallClockFuncs are the forbidden functions of package time.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallClock(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] && !pass.suppressed("wallclock", sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; simulation time must come from sim.Engine.Now", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !pass.suppressed("wallclock", sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"%s is forbidden in simulation packages; use a seeded, component-owned *sim.RNG", pn.Imported().Path())
				}
			}
			return true
		})
	}
	return nil, nil
}
