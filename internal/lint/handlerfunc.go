package lint

import (
	"go/ast"
	"go/types"
)

// HandlerFunc polices the closure-free scheduling contract: the sim.Handler
// argument of Engine.AtEvent/AfterEvent must be a long-lived named value —
// a top-level func, a method receiver, a field — never a capturing closure.
// A closure handler silently reintroduces the per-event allocation the
// Handler API exists to eliminate, and captures are invisible state that
// Machine.Reset cannot rewind.
var HandlerFunc = &Analyzer{
	Name: "handlerfunc",
	Doc:  "require sim.Handler arguments to be named funcs/methods, never capturing closures",
	Run:  runHandlerFunc,
}

// handlerParamIndex is the position of the Handler argument in
// AtEvent(t, h, arg, word) and AfterEvent(delay, h, arg, word).
const handlerParamIndex = 1

var handlerSchedulers = map[string]bool{
	"(*repro/internal/sim.Engine).AtEvent":    true,
	"(*repro/internal/sim.Engine).AfterEvent": true,
}

func runHandlerFunc(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !handlerSchedulers[fn.FullName()] {
				return true
			}
			if len(call.Args) <= handlerParamIndex {
				return true
			}
			checkHandlerArg(pass, call.Args[handlerParamIndex])
			return true
		})
	}
	return nil, nil
}

func checkHandlerArg(pass *Pass, arg ast.Expr) {
	// Any function literal inside the argument expression is a closure
	// handler, whether passed directly or through an adapter conversion.
	var hasLit bool
	ast.Inspect(arg, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			hasLit = true
			return false
		}
		return true
	})
	if hasLit {
		if !pass.suppressed("handlerfunc", arg.Pos()) {
			pass.Reportf(arg.Pos(), "sim.Handler argument is a function literal; handlers must be named top-level funcs or methods so scheduling stays closure-free")
		}
		return
	}
	// A local variable of function type smuggles a closure through an
	// adapter type (`h := func(...){...}; eng.AtEvent(t, hf(h), …)`).
	base := arg
unwrap:
	for {
		switch x := base.(type) {
		case *ast.ParenExpr:
			base = x.X
		case *ast.UnaryExpr:
			base = x.X
		case *ast.CallExpr: // conversion through a named adapter type
			tv, ok := pass.TypesInfo.Types[x.Fun]
			if !ok || !tv.IsType() || len(x.Args) != 1 {
				return
			}
			base = x.Args[0]
		default:
			break unwrap
		}
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if _, isFunc := obj.Type().Underlying().(*types.Signature); !isFunc {
		return
	}
	if pass.Pkg.Scope().Lookup(id.Name) == obj {
		return // package-level handler variable: long-lived, allowed
	}
	if !pass.suppressed("handlerfunc", arg.Pos()) {
		pass.Reportf(arg.Pos(), "sim.Handler argument is a local function-typed variable (possible closure); handlers must be named top-level funcs or methods")
	}
}
