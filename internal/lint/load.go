package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string
	Src       [][]byte
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns with the go tool, parses every matched package's
// non-test Go files, and type-checks them against the export data of their
// dependencies — a stdlib-only, offline-capable stand-in for
// go/packages.Load(LoadAllSyntax). Test files are intentionally not loaded:
// punovet's invariants govern simulation code, and table-driven tests
// legitimately range over maps (the exemption the fixture suite pins down).
//
// dir is the directory patterns are resolved from (any directory inside the
// module); explicit ./testdata/... paths work, which is how the analyzer
// fixtures load themselves.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPkg
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: package %s uses cgo, which the loader does not support", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v failed: %v\n%s", patterns, err, stderr.String())
	}
	var out []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPkg) (*Package, error) {
	pkg := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	for _, name := range lp.GoFiles {
		fn := filepath.Join(lp.Dir, name)
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		f, err := parser.ParseFile(fset, fn, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, fn)
		pkg.Src = append(pkg.Src, src)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}
