// clean.go proves wallclock allows deterministic uses of package time:
// durations, constants, and formatting do not read the host clock.
package wallclock

import "time"

func cleanDurations(cycles int64) time.Duration {
	d := time.Duration(cycles) * time.Nanosecond
	if d > time.Millisecond {
		d = d.Round(time.Microsecond)
	}
	return d
}

func cleanParse(s string) (time.Time, error) {
	return time.Parse(time.RFC3339, s)
}
