// Package wallclock is the firing fixture for the wallclock analyzer.
package wallclock

import (
	"math/rand"
	"time"
)

var sink int64

func badTime() {
	t0 := time.Now()                               // want "reads the wall clock"
	sink += time.Since(t0).Nanoseconds()           // want "reads the wall clock"
	sink += int64(time.Until(t0.Add(time.Second))) // want "reads the wall clock"
}

func badRand() {
	sink += int64(rand.Intn(10))     // want "math/rand is forbidden"
	sink += rand.Int63()             // want "math/rand is forbidden"
	r := rand.New(rand.NewSource(1)) // want "math/rand is forbidden" "math/rand is forbidden"
	sink += r.Int63()
}

func suppressedOK() {
	t0 := time.Now() //puno:allow wallclock — host-side progress stamp, never reaches simulation state
	_ = t0
}
