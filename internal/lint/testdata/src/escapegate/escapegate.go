// Package escapegate is the punovet fixture for the compiler-backed
// escape gate: heap allocations the gc escape analysis reports inside
// //puno:hot functions are findings, while panic paths, constant strings,
// and blessed amortized-growth callees are filtered out. Unlike the AST
// fixtures, the expectations here are matched against real `go build
// -gcflags=-m=2` output, so every shape is chosen to have a stable,
// version-independent escape verdict (stored in a package var, returned
// from the function, or captured by a sink).
package escapegate

import "fmt"

type record struct {
	vals [4]uint64
}

type table struct {
	slots []uint64
}

var (
	escaped *record
	intSink *int
)

// hotLeak parks a fresh composite in a package var: the textbook
// per-event heap allocation the gate exists to catch.
//
//puno:hot
func hotLeak() {
	r := &record{} // want "escapes to heap"
	escaped = r
}

// hotMake returns a freshly made slice, which must escape.
//
//puno:hot
func hotMake(n int) []uint64 {
	return make([]uint64, n) // want "escapes to heap"
}

// hotMoved leaks the address of a local, moving it to the heap.
//
//puno:hot
func hotMoved() {
	x := 0 // want "moved to heap"
	intSink = &x
}

// hotClean is steady-state arithmetic over existing storage: no findings.
//
//puno:hot
func hotClean(t *table, id int) uint64 {
	if id < len(t.slots) {
		return t.slots[id] * 3
	}
	return 0
}

// hotBlessed hits the amortized-growth idiom: growSlot's allocation is
// inlined into the call site here, and the gate blesses the line because
// the callee is in escapeAllowedCallees.
//
//puno:hot
func hotBlessed(t *table, id int) uint64 {
	if id >= len(t.slots) {
		growSlot(t, id)
	}
	return t.slots[id]
}

// hotPanicPath allocates only inside a panic call: cold by definition,
// filtered by the gate.
//
//puno:hot
func hotPanicPath(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("escapegate: negative count %d", n))
	}
	return n * 2
}

// growSlot doubles the dense table; it allocates only on growth, the
// blessed amortized idiom (see escapeAllowedCallees).
func growSlot(t *table, id int) {
	ns := make([]uint64, id+1)
	copy(ns, t.slots)
	t.slots = ns
}

// coldMake allocates outside any hot function: never a finding.
func coldMake(n int) []uint64 {
	return make([]uint64, n)
}
