package probeguard

import (
	"repro/internal/probe"
)

// guardedBody is the machine.send idiom: emission inside `if s != nil`.
func guardedBody(t *traced, e probe.Event) {
	if t.sink != nil {
		t.sink.Emit(e)
	}
}

// earlyReturn is the htm/directory emit idiom: `if s == nil { return }`
// guards the rest of the function.
func earlyReturn(t *traced, e probe.Event) {
	if t.sink == nil {
		return
	}
	t.sink.Emit(e)
	for i := 0; i < t.n; i++ {
		t.sink.Emit(e) // still dominated: the early return left the scope
	}
}

// conjunctGuard covers `s != nil && cond` and both sinks guarded.
func conjunctGuard(t *traced, e probe.Event) {
	if t.sink != nil && t.n > 0 {
		t.sink.Emit(e)
	}
	if t.sink != nil {
		if t.other != nil {
			t.other.Emit(e)
			t.sink.Emit(e)
		}
	}
}

// concreteSink: a concrete *probe.Buffer is the caller's own object, not
// an interface hook; the analyzer leaves it alone.
func concreteSink(b *probe.Buffer, e probe.Event) {
	b.Emit(e)
}
