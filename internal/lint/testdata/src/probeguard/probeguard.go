// Package probeguard is the punovet fixture for the probe contract: every
// emission into a probe.Sink interface value must be dominated by a nil
// check of that exact expression.
package probeguard

import (
	"repro/internal/probe"
)

type traced struct {
	sink  probe.Sink
	other probe.Sink
	n     int
}

// unguardedEmit is the nil-interface panic shape in its plain form.
func unguardedEmit(t *traced, e probe.Event) {
	t.sink.Emit(e) // want "not dominated by a nil check"
}

// wrongGuard checks one sink and emits on another — the disguised variant.
func wrongGuard(t *traced, e probe.Event) {
	if t.sink != nil {
		t.other.Emit(e) // want "not dominated by a nil check"
	}
}

// guardDoesNotEscapeClosure: the enclosing check does not dominate a
// closure body, which may run when the check no longer holds.
func guardDoesNotEscapeClosure(t *traced, e probe.Event) func() {
	if t.sink == nil {
		return nil
	}
	return func() {
		t.sink.Emit(e) // want "not dominated by a nil check"
	}
}

// guardLostAfterBody: an == nil check whose body does not return guards
// nothing downstream.
func guardLostAfterBody(t *traced, e probe.Event) {
	if t.sink == nil {
		t.n++
	}
	t.sink.Emit(e) // want "not dominated by a nil check"
}
