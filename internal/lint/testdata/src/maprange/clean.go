// clean.go proves maprange produces no false positives on idiomatic
// order-insensitive code that never ranges a map.
package maprange

func cleanLookups(m map[int]string, keys []int) int {
	n := 0
	for _, k := range keys {
		if v, ok := m[k]; ok {
			n += len(v)
		}
	}
	n += len(m)
	return n
}

func cleanArrays(a [4]uint64) uint64 {
	var t uint64
	for i, v := range a {
		t += uint64(i) * v
	}
	return t
}

// allowlistedRebuild is registered in maprangeAllowed (the structural
// allowlist for order-insensitive-by-construction functions, modelled on
// the interner's Grow rebuild): its map range must NOT fire even though it
// carries no suppression directive.
func allowlistedRebuild(old map[int]string) map[int]string {
	fresh := make(map[int]string, len(old))
	for k, v := range old {
		fresh[k] = v
	}
	return fresh
}
