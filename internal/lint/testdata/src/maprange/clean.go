// clean.go proves maprange produces no false positives on idiomatic
// order-insensitive code that never ranges a map.
package maprange

func cleanLookups(m map[int]string, keys []int) int {
	n := 0
	for _, k := range keys {
		if v, ok := m[k]; ok {
			n += len(v)
		}
	}
	n += len(m)
	return n
}

func cleanArrays(a [4]uint64) uint64 {
	var t uint64
	for i, v := range a {
		t += uint64(i) * v
	}
	return t
}
