// Package maprange is the firing fixture for the maprange analyzer.
package maprange

import "sort"

var sink int

// bad ranges over maps without suppression — every one must be flagged.
func bad(m map[int]string, nested map[string]map[int]int) {
	for k := range m { // want "map iteration order is nondeterministic"
		sink += k
	}
	for k, v := range m { // want "map iteration order is nondeterministic"
		sink += k + len(v)
	}
	for _, inner := range nested { // want "map iteration order is nondeterministic"
		for k := range inner { // want "map iteration order is nondeterministic"
			sink += k
		}
	}
}

// namedMap proves the check goes through Underlying: named map types are
// still maps.
type namedMap map[uint64]bool

func badNamed(m namedMap) {
	for k := range m { // want "map iteration order is nondeterministic"
		sink += int(k)
	}
}

// suppressedOK carries well-formed suppressions and must stay silent.
func suppressedOK(m map[int]string) {
	//puno:unordered — pure count; the result is independent of visit order
	for range m {
		sink++
	}
	for k := range m { //puno:unordered — keys feed a commutative integer sum
		sink += k
	}
	//puno:allow maprange — generic allow form is equivalent to unordered
	for k := range m {
		sink += k
	}
}

// missingReason has a reasonless suppression: it does NOT suppress, and the
// directive itself is flagged by the driver (covered in driver tests).
func missingReason(m map[int]string) {
	//puno:unordered
	for k := range m { // want "map iteration order is nondeterministic"
		sink += k
	}
}

// sliceAndChannelOK proves non-map ranges never fire.
func sliceAndChannelOK(s []int, ch chan int, m map[int]string) {
	for _, v := range s {
		sink += v
	}
	for v := range ch {
		sink += v
	}
	// The blessed pattern: collect, sort, then iterate the slice.
	keys := make([]int, 0, len(m))
	//puno:unordered — keys are sorted immediately after collection
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		sink += k
	}
}
