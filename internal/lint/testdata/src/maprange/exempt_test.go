// Test files in audited packages are exempt from maprange: table-driven
// tests legitimately range over expectation maps, and test code is off the
// simulation path. punovet must report nothing for this file even though it
// ranges a map without suppression.
package maprange

import "testing"

func TestIdiomaticExpectationMap(t *testing.T) {
	for in, want := range map[int]int{1: 2, 2: 4, 3: 6} {
		if got := in * 2; got != want {
			t.Errorf("double(%d) = %d, want %d", in, got, want)
		}
	}
}
