// Package handlerfunc is the firing fixture for the handlerfunc analyzer.
package handlerfunc

import "repro/internal/sim"

// hf adapts a plain function to sim.Handler — the adapter that lets
// closures sneak into the scheduler if nobody is watching.
type hf func(arg any, word uint64)

func (f hf) OnEvent(arg any, word uint64) { f(arg, word) }

// tick is a named top-level handler function: always allowed.
func tick(arg any, word uint64) {}

// tickHandler is a long-lived package-level handler value: allowed.
var tickHandler = hf(tick)

type counter struct{ n uint64 }

// OnEvent implements sim.Handler on a named type: the blessed form.
func (c *counter) OnEvent(arg any, word uint64) { c.n += word }

func bad(eng *sim.Engine) {
	n := 0
	eng.AtEvent(5, hf(func(arg any, word uint64) { n++ }), nil, 0)    // want "function literal"
	eng.AfterEvent(5, hf(func(arg any, word uint64) { n++ }), nil, 0) // want "function literal"
	local := func(arg any, word uint64) { n++ }
	eng.AtEvent(5, hf(local), nil, 0) // want "local function-typed variable"
}

func good(eng *sim.Engine, c *counter) {
	eng.AtEvent(5, c, nil, 1)
	eng.AfterEvent(5, c, nil, 2)
	eng.AtEvent(5, hf(tick), nil, 3)
	eng.AtEvent(5, tickHandler, nil, 4)
	// Closures remain fine on the cold At/After path — only the Handler
	// API is closure-free by contract.
	done := false
	eng.After(5, func() { done = true })
	_ = done
}

func suppressedOK(eng *sim.Engine) {
	eng.AtEvent(5, hf(func(arg any, word uint64) {}), nil, 0) //puno:allow handlerfunc — one-shot setup event before cycle zero, never on the hot path
}
