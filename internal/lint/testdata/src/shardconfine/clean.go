package shardconfine

// workerShardLocal is the good worker shape: shard-local mutation plus the
// shared interner's read-mostly API only.
//
//puno:worker
func workerShardLocal(sh *shard) {
	sh.entries = append(sh.entries, sh.nextAt)
	id := sh.it.Intern(0)
	_ = sh.it.LineAt(id)
}

// resetWire is the fixture's blessed serial edge (mirrors
// Machine.resetShard / Coordinator.Reset), allowlisted structurally via
// shardconfineInternerAllowed and shardconfineWiringAllowed.
func (e *Env) resetWire(lo, hi int) {
	e.it.Reset()
	e.it.Grow(256)
	e.it.SetShared(true)
}

// resetWire installs the Machine's shard wiring at the one blessed
// construction point.
func (m *Machine) resetWire(lo, hi int) {
	m.lo, m.hi = lo, hi
	m.xsend = func() {}
	m.it = m.ownIt
}
