// Package shardconfine is the punovet fixture for the PDES ownership
// split: worker-path functions (//puno:worker) may touch only shard-local
// state, interner lifecycle mutators belong to the serial edges, and the
// Machine's shard wiring is written only by resetShard.
package shardconfine

import (
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/pdes"
)

// Machine mirrors the real machine's shard wiring.
type Machine struct {
	lo, hi int
	xsend  func()
	it     *mem.Interner
	ownIt  *mem.Interner
}

// Env is the fixture's serial-edge owner.
type Env struct {
	it   *mem.Interner
	mach *Machine
}

// shard is worker-local state; workers may do anything to it.
type shard struct {
	entries []uint64
	nextAt  uint64
	it      *mem.Interner
}

var sink int

// workerTouchesCoordinator is the cross-shard race shape: a worker that
// reaches the coordinator or the global mesh races every other shard.
//
//puno:worker
func workerTouchesCoordinator(sh *shard, c *pdes.Coordinator, mesh *noc.Mesh) {
	sink += len(c.LineTable()) // want "coordinator-owned"
	sink += mesh.Nodes()       // want "coordinator-owned"
	sh.it.Grow(64)             // want "outside the blessed serial edges"
	sh.entries = sh.entries[:0]
}

// serialEdgeMutation is the same interner mutation outside any worker but
// also outside the blessed serial-edge functions: still a finding.
func serialEdgeMutation(it *mem.Interner) {
	it.Reset()         // want "outside the blessed serial edges"
	it.SetShared(true) // want "outside the blessed serial edges"
}

// rewireMidRun writes the Machine's shard wiring from the wrong place.
func rewireMidRun(m *Machine) {
	m.lo, m.hi = 0, 4 // want "shard wiring" "shard wiring"
	m.xsend = nil     // want "shard wiring"
	m.it = m.ownIt    // want "shard wiring"
}
