// Package pdes is the punovet fixture for the PDES coordinator's shape:
// the windowed merge/replay commit is hot and must stay allocation-free,
// and nothing in the merge may lean on map order, the wall clock, or
// closure handlers — the coordinator's contract is bit-identity with the
// serial engine, so "order cannot matter" is never claimable here.
package pdes

import (
	"time"

	"repro/internal/sim"
)

type entry struct {
	at  uint64
	seq uint64
}

type shard struct {
	entries []entry
	head    int
	renum   []uint64
	pending map[uint64]uint64
}

var sink uint64

// commit mirrors the coordinator's k-way merge: hot via annotation, so any
// allocation inside the loop is a finding, and resolving provisional seqs
// through a map (instead of the dense renum table) leaks map order into
// the merge.
//
//puno:hot
func commit(parts []*shard) {
	order := make([]int, 0, len(parts)) // want "make in hot function commit"
	_ = order
	for seq := range parts[0].pending { // want "map iteration order is nondeterministic"
		sink += seq
	}
	for _, sh := range parts {
		for sh.head < len(sh.entries) {
			sink += sh.entries[sh.head].at
			sh.head++
		}
	}
}

// stamp reads the wall clock to pick a window edge — forbidden; window
// boundaries come from simulated time and the mesh lookahead only.
func stamp() uint64 {
	return uint64(time.Now().UnixNano()) // want "reads the wall clock"
}

// hf adapts a plain function to sim.Handler, the hole closures sneak
// through.
type hf func(arg any, word uint64)

func (f hf) OnEvent(arg any, word uint64) { f(arg, word) }

// schedule shows the forbidden shape for cross-shard injection: a closure
// handler would capture shard-local state the replay cannot re-key.
func schedule(eng *sim.Engine) {
	eng.AtEvent(5, hf(func(arg any, word uint64) { sink += word }), nil, 0) // want "function literal"
}

// resolveOK is the blessed shape: dense window-local renum table indexed by
// provisional seq, no maps, no allocations.
//
//puno:hot
func resolveOK(sh *shard, winBase uint64) {
	for i := range sh.entries {
		e := &sh.entries[i]
		if e.seq >= winBase {
			e.seq = sh.renum[e.seq-winBase]
		}
	}
}
