package msglife

import (
	"repro/internal/coherence"
)

// valueEnv parks messages the blessed way: by value.
type valueEnv struct {
	pending []coherence.Msg
	unblock coherence.Msg
	free    []*coherence.Msg
}

// parkByValue is the contract's good shape: dereference and copy. The
// stored values are coherence.Msg, not pointers, so nothing aliases the
// pool after the handler returns.
func parkByValue(e *valueEnv, m *coherence.Msg) {
	e.pending = append(e.pending, *m)
	e.unblock = *m
	local := m // locals die with the handler; fine
	_ = local
}

// overwriteInPlace is the pool-send idiom: *p = msg rewrites the pointee,
// parking nothing.
func overwriteInPlace(p *coherence.Msg, msg coherence.Msg) {
	*p = msg
}

// blessedPoolReclaim stands in for the pool internals (Machine.freeMsg,
// BalanceMsgPools): it owns the free list, so storing the pointer IS the
// job. Blessed structurally via msglifeAllowed.
func blessedPoolReclaim(e *valueEnv, m *coherence.Msg) {
	e.free = append(e.free, m)
}

// suppressedPark documents the reasoned-suppression escape hatch for
// pool-adjacent code outside the no-suppression core.
func suppressedPark(e *valueEnv, m *coherence.Msg) {
	e.free[0] = m //puno:allow msglife — fixture: swaps a pool-owned slot; the displaced pointer is returned by the caller
}
