// Package msglife is the punovet fixture for the pooled-message lifetime
// contract: a handler's *coherence.Msg is freed on return, so every store
// that outlives the handler — struct field, package var, slice/map
// element, closure capture — must copy by value, never park the pointer.
package msglife

import (
	"repro/internal/coherence"
)

// handlerEnv mimics a directory/node with parking structures.
type handlerEnv struct {
	parked  *coherence.Msg
	waiters []*coherence.Msg
	byID    map[uint64]*coherence.Msg
	staged  []stagedSend
	deliver func()
}

type stagedSend struct {
	msg   *coherence.Msg
	seqAt uint64
}

// lastSeen is a package-level parking spot: same bug, wider blast radius.
var lastSeen *coherence.Msg

// parkByPointer is the PR 7 bug shape in every variant the analyzer must
// catch: the handler return frees m back to the pool, and every one of
// these stores now aliases whatever the pool hands out next.
func parkByPointer(e *handlerEnv, m *coherence.Msg) {
	e.parked = m                                    // want "parked by pointer"
	e.waiters = append(e.waiters, m)                // want "parked by pointer"
	e.byID[m.ReqID] = m                             // want "parked by pointer"
	e.staged = append(e.staged, stagedSend{msg: m}) // want "parked by pointer"
	lastSeen = m                                    // want "parked by pointer"
	e.deliver = func() { consume(m) }               // want "captures pooled \\*coherence.Msg m"
	e.waiters[0] = m                                // want "parked by pointer"
}

func consume(m *coherence.Msg) { _ = m.ReqID }
