// Package suppress is the fixture for the directive checker itself:
// malformed //puno: comments are findings in their own right.
package suppress

var sink int

func directives(m map[int]int) {
	//puno:unordered — well-formed: reason present, suppresses the range below
	for k := range m {
		sink += k
	}
	//puno:unordered
	for k := range m { // want "map iteration order is nondeterministic"
		sink += k
	}
	//puno:frobnicate — no such verb
	for _, v := range []int{1, 2} {
		sink += v
	}
	//puno:hot with trailing junk
	for _, v := range []int{3} {
		sink += v
	}
	//puno:allow
	for _, v := range []int{4} {
		sink += v
	}
}
