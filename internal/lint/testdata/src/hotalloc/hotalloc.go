// Package hotalloc is the firing fixture for the hotalloc analyzer.
package hotalloc

type msg struct{ a, b uint64 }

type dispatcher struct {
	queue   []msg
	scratch []int
	run     func()
}

// OnEvent has the sim.Handler signature, so it is hot without annotation.
func (d *dispatcher) OnEvent(arg any, word uint64) {
	d.run = func() { d.queue = nil } // want "function literal in hot function OnEvent"
	buf := make([]msg, 8)            // want "make in hot function OnEvent"
	_ = buf
	p := new(msg) // want "new in hot function OnEvent"
	_ = p
	q := &msg{a: word} // want "address of composite literal"
	_ = q
	var fresh []int
	fresh = append(fresh, int(word)) // want "append grows function-local slice fresh"
	_ = fresh
	box(word)         // want "passing uint64 as an interface boxes the value"
	box(msg{a: word}) // want "passing .*msg as an interface boxes the value"
}

// onEventWrongSig is NOT hot: the signature does not match sim.Handler, and
// there is no annotation.
func (d *dispatcher) onEventWrongSig(word uint32) {
	_ = make([]msg, 8)
	_ = func() {}
}

// hotAnnotated is hot via the doc-comment annotation.
//
//puno:hot
func hotAnnotated(d *dispatcher) {
	_ = make(map[int]int) // want "make in hot function hotAnnotated"
}

// hotSuppressed shows the per-site escape hatch with a written reason.
//
//puno:hot
func hotSuppressed(d *dispatcher) {
	//puno:allow hotalloc — one-time warm-up growth, amortized to zero per event
	d.scratch = append(d.scratch, make([]int, 4)...)
}

func box(v any) { _ = v }
