// clean.go proves hotalloc allows the zero-allocation idioms the simulator
// actually uses: reusable field buffers, scratch re-slicing, pooled
// pointers into interfaces, and panic paths.
package hotalloc

import "fmt"

type pool struct {
	free []*msg
}

type engine struct {
	slab    []msg
	scratch []int
	p       pool
}

// OnEvent is hot (sim.Handler signature) but allocation-free.
func (e *engine) OnEvent(arg any, word uint64) {
	// Pooled pointer through an interface: pointer-shaped, no box.
	m := arg.(*msg)
	m.a = word
	// Appending to a field reuses its capacity (the slab/scratch idiom).
	e.slab = append(e.slab, *m)
	// Local re-sliced from an existing buffer is the reusable-scratch idiom.
	out := e.scratch[:0]
	out = append(out, int(word))
	e.scratch = out
	// Passing pointers and interfaces onward never boxes.
	e.retain(m)
	sinkAny(arg)
	// Panic paths are cold: allocation there is fine.
	if word == badWord {
		panic(fmt.Sprintf("engine: impossible word %d in %v", word, []int{1}))
	}
}

const badWord = ^uint64(0)

func (e *engine) retain(m *msg) { e.p.free = append(e.p.free, m) }

func sinkAny(v any) { _ = v }

// cold is unannotated and not a handler: hotalloc ignores it entirely.
func cold() []msg {
	out := make([]msg, 0, 16)
	for i := 0; i < 16; i++ {
		out = append(out, msg{a: uint64(i)})
	}
	return out
}
