package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// loadFixture loads one fixture package under testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkgs, err := Load(".", []string{"./testdata/src/" + name})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

// runOn applies a single analyzer to a loaded package with no driver-level
// package filtering, mirroring x/tools' analysistest.
func runOn(t *testing.T, a *Analyzer, pkg *Package) []Finding {
	t.Helper()
	var out []Finding
	pass := newPass(a, pkg)
	pass.Report = func(d Diagnostic) {
		out = append(out, Finding{Pos: pkg.Fset.Position(d.Pos), Analyzer: a.Name, Message: d.Message})
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	return out
}

// wantKey identifies a source line expectations attach to.
type wantKey struct {
	file string
	line int
}

// parseWants extracts `// want "regex" ["regex" ...]` expectations from the
// fixture's loaded files.
func parseWants(t *testing.T, pkg *Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				rest := strings.TrimSpace(c.Text[idx+len("// want "):])
				for rest != "" {
					if rest[0] != '"' {
						t.Fatalf("%s:%d: malformed want clause %q", pos.Filename, pos.Line, rest)
					}
					end := 1
					for end < len(rest) && rest[end] != '"' {
						if rest[end] == '\\' {
							end++
						}
						end++
					}
					lit, err := strconv.Unquote(rest[:end+1])
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, rest[:end+1], err)
					}
					wants[key] = append(wants[key], regexp.MustCompile(lit))
					rest = strings.TrimSpace(rest[end+1:])
				}
			}
		}
	}
	return wants
}

// checkFindings compares findings against want expectations, requiring an
// exact 1:1 match per line.
func checkFindings(t *testing.T, findings []Finding, wants map[wantKey][]*regexp.Regexp) {
	t.Helper()
	unmatched := make(map[wantKey][]*regexp.Regexp, len(wants))
	for k, v := range wants {
		unmatched[k] = append([]*regexp.Regexp(nil), v...)
	}
	for _, f := range findings {
		key := wantKey{f.Pos.Filename, f.Pos.Line}
		rs := unmatched[key]
		hit := -1
		for i, r := range rs {
			if r.MatchString(f.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected finding at %s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
			continue
		}
		unmatched[key] = append(rs[:hit], rs[hit+1:]...)
	}
	for k, rs := range unmatched {
		for _, r := range rs {
			t.Errorf("missing expected finding at %s:%d matching %q", k.file, k.line, r)
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Default() {
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, a.Name)
			checkFindings(t, runOn(t, a, pkg), parseWants(t, pkg))
		})
	}
}

// TestTestFilesExempt pins the maprange/hotalloc test-file exemption: the
// fixture's _test.go ranges a map with no suppression, and punovet still
// reports nothing there (test files are never loaded into a pass).
func TestTestFilesExempt(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "src", "maprange", "exempt_test.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "range map[") {
		t.Fatal("fixture rot: exempt_test.go no longer ranges over a map")
	}
	findings, err := RunAnalyzers(".", []string{"./testdata/src/maprange"}, Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.HasSuffix(f.Pos.Filename, "_test.go") {
			t.Errorf("finding in exempt test file: %s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Message)
		}
	}
}

// TestDirectiveEnforcement runs the full driver over the suppress fixture:
// malformed directives and reasonless suppressions are findings themselves.
func TestDirectiveEnforcement(t *testing.T) {
	findings, err := RunAnalyzers(".", []string{"./testdata/src/suppress"}, Default())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s: %s", f.Analyzer, f.Message))
	}
	wants := []string{
		"maprange: map iteration order is nondeterministic",
		"puno-directive: suppression of maprange is missing its required reason",
		"puno-directive: unknown puno directive frobnicate",
		"puno-directive: puno:hot takes no arguments",
		"puno-directive: puno:allow needs an analyzer name",
	}
	for _, w := range wants {
		found := false
		for _, g := range got {
			if strings.HasPrefix(g, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing driver finding starting with %q; got:\n%s", w, strings.Join(got, "\n"))
		}
	}
	if len(got) != len(wants) {
		t.Errorf("driver produced %d findings, want %d:\n%s", len(got), len(wants), strings.Join(got, "\n"))
	}
}

// TestPdesEnrollment pins internal/pdes into punovet's audited and
// no-suppression sets, and exercises every analyzer on the pdes-shaped
// fixture (hot merge loop, dense renum tables, wall-clock-free window
// edges, closure-free cross-shard injection).
func TestPdesEnrollment(t *testing.T) {
	if !audited("repro/internal/pdes") {
		t.Error("repro/internal/pdes is not in punovet's audited set")
	}
	if !noSuppressPkgs["repro/internal/pdes"] {
		t.Error("repro/internal/pdes permits suppressions; the merge core must stay suppression-free")
	}
	pkg := loadFixture(t, "pdes")
	var findings []Finding
	for _, a := range Default() {
		findings = append(findings, runOn(t, a, pkg)...)
	}
	checkFindings(t, findings, parseWants(t, pkg))
}

// TestServeEnrollment pins internal/serve into punovet's audited set: the
// serving layer's content-addressed cache is only sound while simulation
// stays deterministic, so its key derivation, artifact encoding, and
// eviction logic are held to the simulator's bar — no wall-clock reads, no
// map-iteration-order dependence — and its hot cache-lookup path sits
// under the escape gate.
func TestServeEnrollment(t *testing.T) {
	if !audited("repro/internal/serve") {
		t.Error("repro/internal/serve is not in punovet's audited set")
	}
}

// TestRealTreeClean is the acceptance gate: the repository's own simulation
// packages carry zero findings, and the no-suppression core (sim, noc,
// machine) carries zero //puno: suppressions.
func TestRealTreeClean(t *testing.T) {
	findings, err := RunAnalyzers(".", []string{"repro/..."}, Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	}
}

// TestEscapeGateFixture matches the compiler-backed gate against the
// escapegate fixture's want annotations: real heap escapes in hot
// functions are findings; panic paths, cold functions, and blessed
// amortized-growth callees are filtered.
func TestEscapeGateFixture(t *testing.T) {
	pkg := loadFixture(t, "escapegate")
	findings, err := RunEscape(".", []string{"./testdata/src/escapegate"})
	if err != nil {
		t.Fatal(err)
	}
	checkFindings(t, findings, parseWants(t, pkg))
}

// TestEscapeGateRealTree is the escape half of the acceptance gate: the
// compiler reports zero unblessed heap allocations inside the repo's hot
// functions.
func TestEscapeGateRealTree(t *testing.T) {
	findings, err := RunEscape(".", []string{"repro/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	}
}

// TestAnalyzerTimings pins the -v plumbing: every analyzer in the run gets
// a timing entry, in suite order.
func TestAnalyzerTimings(t *testing.T) {
	_, timings, err := RunAnalyzersTimed(".", []string{"./testdata/src/maprange"}, Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != len(Default()) {
		t.Fatalf("got %d timings, want %d", len(timings), len(Default()))
	}
	for i, a := range Default() {
		if timings[i].Analyzer != a.Name {
			t.Errorf("timing %d is %s, want %s", i, timings[i].Analyzer, a.Name)
		}
	}
}

// TestWorkerDirective pins //puno:worker parsing: bare form marks the next
// declaration, and arguments are malformed.
func TestWorkerDirective(t *testing.T) {
	if d := parseDirective("//puno:worker"); d.Kind != dirWorker {
		t.Errorf("bare //puno:worker parsed as kind %d, want dirWorker", d.Kind)
	}
	if d := parseDirective("//puno:worker runWindow"); d.Kind != dirMalformed {
		t.Errorf("//puno:worker with arguments parsed as kind %d, want dirMalformed", d.Kind)
	}
}

// TestPdesWorkersMarked pins the audit fix this PR ships: the PDES window
// runners carry //puno:worker, so shardconfine actually polices the
// worker goroutine's entry paths in the real tree.
func TestPdesWorkersMarked(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "pdes", "pdes.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"func runWindow(", "func runWindowTraced("} {
		idx := strings.Index(string(raw), fn)
		if idx < 0 {
			t.Fatalf("fixture rot: %s not found in internal/pdes/pdes.go", fn)
		}
		head := string(raw[:idx])
		tail := head[strings.LastIndex(head[:len(head)-1], "\n\n"):]
		if !strings.Contains(tail, "//puno:worker") {
			t.Errorf("%s is not marked //puno:worker; shardconfine no longer polices it", fn)
		}
	}
}

// TestFireWakeupsRegressionCaught re-creates the PR 1 bug class in a throwaway
// module-external file check: a map range added to an audited package is
// reported. (Uses the maprange fixture as the stand-in audited package; the
// driver treats testdata/src packages as audited.)
func TestFireWakeupsRegressionCaught(t *testing.T) {
	findings, err := RunAnalyzers(".", []string{"./testdata/src/maprange"}, []*Analyzer{MapRange})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("maprange reported nothing for a package full of unsuppressed map ranges")
	}
}
