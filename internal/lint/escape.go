package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// The escape gate is punovet's compiler-ground-truth complement to
// hotalloc: instead of pattern-matching allocation syntax in the AST, it
// shells out to `go build -gcflags=-m=2`, parses the gc escape-analysis
// diagnostics, and fails when anything inside a hot function (annotated
// //puno:hot, or an OnEvent dispatcher) actually escapes to the heap.
// hotalloc stays as the fast in-editor check; the gate catches what the
// heuristics cannot see — an interface conversion the AST hides behind a
// generic call, or an optimization regression in a helper the hot path
// inlines — and never cries wolf about an allocation the compiler proved
// stack-bound.
//
// Diagnostics are filtered down to real per-event heap traffic:
//
//   - only "escapes to heap" / "moved to heap" lines count;
//   - constant-string subjects (`"…" escapes to heap`) and any line
//     containing a panic call are cold paths by definition;
//   - lines covered by a call to an escapeAllowedCallees entry are the
//     amortized-growth idiom: the compiler attributes an inlined helper's
//     growth allocation to the call site inside the hot body, so the
//     blessing keys on the callee, not the site.
//
// RunEscape is exposed through `punovet -escape` and wired into make lint
// and CI as its own step.

// escapeAllowedCallees names the helpers whose (inlined) allocations are
// blessed inside hot functions, keyed by types.Func.FullName() with a
// reviewed justification. Every production entry is amortized growth or a
// cold path: the helper allocates only when a dense table doubles (or, for
// Tx.interner, once per standalone-test transaction; for Tx.mustRun, only
// on the panic path), so steady-state events pay zero heap traffic — the
// property the benchmarks in BENCH_sweep.json pin.
var escapeAllowedCallees = map[string]string{
	"(*repro/internal/machine.firstLoadTable).grow":        "amortized doubling of the dense first-load table",
	"(*repro/internal/htm.lineSet).ensureBits":             "amortized doubling of the read/write-set bitmap",
	"(*repro/internal/coherence.Directory).ensureIdx":      "amortized doubling of the directory's dense index",
	"(*repro/internal/pdes.Coordinator).growRenum":         "amortized doubling of the renumber table",
	"(*repro/internal/htm.Tx).interner":                    "lazy interner for standalone-test transactions; machine-owned Txs share the machine interner and never hit it",
	"(*repro/internal/htm.Tx).mustRun":                     "panic-only state guard; allocates its message on the failure path",
	"repro/internal/lint/testdata/src/escapegate.growSlot": "fixture entry exercising the blessing mechanism",
}

// hotRange is one hot function's line extent in one file.
type hotRange struct {
	start, end int
	name       string
}

// escapeDiag matches one gc diagnostic line: path:line:col: message.
var escapeDiag = regexp.MustCompile(`^([^ \t].*\.go):(\d+):(\d+): (.+)$`)

// escapeGateName is the analyzer name findings and suppressions use; the
// gate is not an *Analyzer (it drives the compiler, not a Pass), but it
// shares the naming scheme so -json output and //puno:allow grammar treat
// it uniformly.
const escapeGateName = "escapegate"

// RunEscape builds the packages matched by patterns (resolved from dir)
// with escape-analysis diagnostics enabled and returns a finding for every
// heap allocation the compiler reports inside a hot function, after the
// cold-path and amortized-growth filters above.
func RunEscape(dir string, patterns []string) ([]Finding, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}

	hot := make(map[string][]hotRange)       // abs file -> hot extents
	blessed := make(map[string]map[int]bool) // abs file -> lines excluded (allowed callees, panic calls)
	suppr := make(map[string]map[int]bool)   // abs file -> lines with //puno:allow escapegate
	markLines := func(m map[string]map[int]bool, file string, from, to int) {
		if m[file] == nil {
			m[file] = make(map[int]bool)
		}
		for l := from; l <= to; l++ {
			m[file][l] = true
		}
	}

	dummy := &Analyzer{Name: escapeGateName}
	for _, pkg := range pkgs {
		pass := newPass(dummy, pkg)
		for i, f := range pass.Files {
			if pass.isTestFile(i) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !pass.isHotFunc(fd) {
					continue
				}
				file := pass.Fset.Position(fd.Pos()).Filename
				hot[file] = append(hot[file], hotRange{
					start: pass.Fset.Position(fd.Pos()).Line,
					end:   pass.Fset.Position(fd.End()).Line,
					name:  fd.Name.Name,
				})
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isBuiltin(pass, call.Fun, "panic") {
						markLines(blessed, file,
							pass.Fset.Position(call.Pos()).Line, pass.Fset.Position(call.End()).Line)
						return true
					}
					if fn := calleeFunc(pass, call); fn != nil && escapeAllowedCallees[fn.FullName()] != "" {
						markLines(blessed, file,
							pass.Fset.Position(call.Pos()).Line, pass.Fset.Position(call.End()).Line)
					}
					return true
				})
			}
		}
		for _, d := range pass.Directives() {
			if d.Kind == dirSuppress && d.Analyzer == escapeGateName && d.Reason != "" {
				markLines(suppr, d.File, d.AppliesTo, d.AppliesTo)
			}
		}
	}

	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m=2"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m=2 %v failed: %v\n%s", patterns, err, stderr.String())
	}

	var findings []Finding
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeDiag.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		// -m=2 prints each decision twice: once with a trailing colon
		// followed by indented flow detail, once plain. Keep the plain one.
		if strings.HasSuffix(msg, ":") {
			continue
		}
		// Constant strings escaping are panic/error text, cold by definition.
		if strings.HasPrefix(msg, `"`) {
			continue
		}
		file := resolveDiagPath(m[1], absDir, hot)
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		fn := ""
		for _, hr := range hot[file] {
			if ln >= hr.start && ln <= hr.end {
				fn = hr.name
				break
			}
		}
		if fn == "" || blessed[file][ln] || suppr[file][ln] {
			continue
		}
		findings = append(findings, Finding{
			Pos:      token.Position{Filename: file, Line: ln, Column: col},
			Analyzer: escapeGateName,
			Message:  fmt.Sprintf("%s in hot function %s (compiler escape analysis); pool it, copy by value, or bless the growth helper in escapeAllowedCallees", msg, fn),
		})
	}
	sortFindings(findings)
	return findings, nil
}

// resolveDiagPath maps a compiler diagnostic path onto the loader's
// absolute filenames. Diagnostics replayed from the build cache keep the
// relative paths of the original compile's working directory — which need
// not be ours — so after trying a cwd-relative join, fall back to suffix
// matching against the files that actually contain hot ranges.
func resolveDiagPath(file, absDir string, hot map[string][]hotRange) string {
	if filepath.IsAbs(file) {
		return file
	}
	if joined := filepath.Join(absDir, file); hot[joined] != nil {
		return joined
	}
	for known := range hot {
		if strings.HasSuffix(known, "/"+file) {
			return known
		}
	}
	return filepath.Join(absDir, file)
}

// calleeFunc resolves a call expression's static callee, if it is a named
// function or method.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
