package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the zero-allocation hot path PRs 2–3 bought: inside hot
// functions it flags closures (func literals), make/new, heap-allocating
// composite-literal addresses, appends that grow a function-local slice,
// and call arguments whose interface conversion boxes a value. A function
// is hot when it is annotated `//puno:hot` (the annotation may appear
// anywhere in the doc comment) or when it is an OnEvent method with the
// sim.Handler signature func(any, uint64) — those are the closure-free
// event dispatchers every simulation event funnels through.
//
// Deliberately allowed: appends to fields, parameters, and locals
// initialized from an existing slice (the reusable-scratch idiom, e.g.
// `out := d.sharerScratch[:0]`), pointer/map/chan/func values passed as
// interfaces (pointer-shaped, no box), and anything inside a panic call
// (cold by definition). Test files are exempt.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid per-event allocation inside hot simulation functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) (any, error) {
	for i, f := range pass.Files {
		if pass.isTestFile(i) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.isHotFunc(fd) {
				checkHotBody(pass, fd)
			}
		}
	}
	return nil, nil
}

// isHotFunc reports whether fd is in hotalloc's scope.
func (p *Pass) isHotFunc(fd *ast.FuncDecl) bool {
	if isHandlerOnEvent(p, fd) {
		return true
	}
	funcLine := p.Fset.Position(fd.Pos()).Line
	file := p.Fset.Position(fd.Pos()).Filename
	docStart := funcLine
	if fd.Doc != nil {
		docStart = p.Fset.Position(fd.Doc.Pos()).Line
	}
	return p.markedInDoc(dirHot, file, docStart, funcLine)
}

// isWorkerFunc reports whether fd is annotated //puno:worker — the marker
// shardconfine uses to scope its coordinator-state checks to PDES
// shard-worker paths.
func (p *Pass) isWorkerFunc(fd *ast.FuncDecl) bool {
	funcLine := p.Fset.Position(fd.Pos()).Line
	file := p.Fset.Position(fd.Pos()).Filename
	docStart := funcLine
	if fd.Doc != nil {
		docStart = p.Fset.Position(fd.Doc.Pos()).Line
	}
	return p.markedInDoc(dirWorker, file, docStart, funcLine)
}

// isHandlerOnEvent reports whether fd is a method named OnEvent with the
// sim.Handler signature (arg any, word uint64).
func isHandlerOnEvent(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "OnEvent" {
		return false
	}
	obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	first, ok := sig.Params().At(0).Type().Underlying().(*types.Interface)
	if !ok || !first.Empty() {
		return false
	}
	second, ok := sig.Params().At(1).Type().Underlying().(*types.Basic)
	return ok && second.Kind() == types.Uint64
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	freshLocals := collectFreshLocalSlices(pass, fd.Body)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if !pass.suppressed("hotalloc", x.Pos()) {
				pass.Reportf(x.Pos(), "function literal in hot function %s allocates a closure per event; use a named handler plus a continuation code", fd.Name.Name)
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, comp := x.X.(*ast.CompositeLit); comp && !pass.suppressed("hotalloc", x.Pos()) {
					pass.Reportf(x.Pos(), "address of composite literal heap-allocates per event in hot function %s; use a pooled or by-value object", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			if isBuiltin(pass, x.Fun, "panic") {
				return false // panic paths are cold; ignore everything inside
			}
			checkHotCall(pass, fd, x, freshLocals)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, freshLocals map[types.Object]bool) {
	switch {
	case isBuiltin(pass, call.Fun, "make"):
		if !pass.suppressed("hotalloc", call.Pos()) {
			pass.Reportf(call.Pos(), "make in hot function %s allocates per event; hoist into a reusable arena or scratch buffer", fd.Name.Name)
		}
		return
	case isBuiltin(pass, call.Fun, "new"):
		if !pass.suppressed("hotalloc", call.Pos()) {
			pass.Reportf(call.Pos(), "new in hot function %s allocates per event; use a pooled object", fd.Name.Name)
		}
		return
	case isBuiltin(pass, call.Fun, "append"):
		if len(call.Args) == 0 {
			return
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && freshLocals[obj] && !pass.suppressed("hotalloc", call.Pos()) {
				pass.Reportf(call.Pos(), "append grows function-local slice %s, allocating per event in hot function %s; append into a reusable field or parameter instead", id.Name, fd.Name.Name)
			}
		}
		return
	}

	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion: T(x) where T is an interface boxes x.
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			reportIfBoxes(pass, fd, call.Args[0])
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			reportIfBoxes(pass, fd, arg)
		}
	}
}

// reportIfBoxes flags arg when converting it to an interface allocates: its
// static type is a value type (basic, string, struct, array, slice) rather
// than interface- or pointer-shaped.
func reportIfBoxes(pass *Pass, fd *ast.FuncDecl, arg ast.Expr) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if b, ok := tv.Type.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Basic, *types.Struct, *types.Array, *types.Slice:
		if !pass.suppressed("hotalloc", arg.Pos()) {
			pass.Reportf(arg.Pos(), "passing %s as an interface boxes the value, allocating per event in hot function %s; pass a pooled pointer or pack it into the uint64 payload word", tv.Type, fd.Name.Name)
		}
	}
}

// collectFreshLocalSlices finds slice variables declared inside body whose
// initializer necessarily allocates on growth: `var s []T`, `s := []T{…}`,
// or `s := make(…)`. Locals re-sliced from an existing buffer
// (`s := d.scratch[:0]`) are the reusable-scratch idiom and stay allowed.
func collectFreshLocalSlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(id *ast.Ident, init ast.Expr) {
		if id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if freshSliceInit(pass, init) {
			fresh[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					mark(id, s.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var init ast.Expr
					if i < len(vs.Values) {
						init = vs.Values[i]
					}
					mark(name, init)
				}
			}
		}
		return true
	})
	return fresh
}

// freshSliceInit reports whether init makes the declared slice a fresh
// allocation site: absent (nil), a nil literal, a composite literal, or a
// make call.
func freshSliceInit(pass *Pass, init ast.Expr) bool {
	switch x := init.(type) {
	case nil:
		return true
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		return isBuiltin(pass, x.Fun, "make")
	default:
		return false
	}
}

// isBuiltin reports whether fun denotes the named Go builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isB
}
