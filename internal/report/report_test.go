package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All data lines equal width (aligned columns).
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header/separator misaligned:\n%s", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %s", csv)
	}
}

func TestCell(t *testing.T) {
	if Cell(1.23456) != "1.235" {
		t.Fatalf("Cell(float) = %q", Cell(1.23456))
	}
	if Cell(42) != "42" {
		t.Fatalf("Cell(int) = %q", Cell(42))
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v", got)
		}
	}
	if z := Normalize([]float64{1}, 0); z[0] != 0 {
		t.Fatal("division by zero base not guarded")
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("GeoMean with zero should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

// Property: geometric mean of positive values lies between min and max.
func TestGeoMeanBounded(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			vals[i] = float64(r) + 1
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		g := GeoMean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("fig3", []uint64{0, 50, 0, 0, 0, 50})
	if !strings.Contains(out, "  1:   50.0%") || !strings.Contains(out, "  5:   50.0%") {
		t.Fatalf("histogram format wrong:\n%s", out)
	}
	if strings.Contains(out, "  0:") || strings.Contains(out, "  2:") {
		t.Fatalf("empty buckets should be skipped:\n%s", out)
	}
	empty := Histogram("none", nil)
	if !strings.Contains(empty, "(empty)") {
		t.Fatal("empty histogram not flagged")
	}
}
