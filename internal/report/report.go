// Package report renders experiment results as aligned ASCII tables and
// CSV, with the normalization helpers the paper's figures use (values
// normalized to the baseline scheme, arithmetic and geometric means).
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows with a fixed header and renders aligned text or
// CSV.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns an empty table.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v (floats get %.3g via
// AddFloatRow when uniform precision matters).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Cell formats one value for a table cell.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.3f", x)
	case float32:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Normalize returns vals[i]/base; base==0 yields 0.
func Normalize(vals []float64, base float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if base != 0 {
			out[i] = v / base
		}
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the input is empty).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// Histogram renders a dense count histogram (h[k] = count for key k) as a
// "k: count (bar)" block in key order, skipping empty buckets — the Fig. 3
// presentation. The rendering is byte-identical to the former map-keyed
// version: slice index order is the sorted key order.
func Histogram(title string, h []uint64) string {
	var total uint64
	for _, v := range h {
		total += v
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	if total == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	for k, v := range h {
		if v == 0 {
			continue
		}
		frac := float64(v) / float64(total)
		bar := strings.Repeat("#", int(frac*50+0.5))
		fmt.Fprintf(&b, "%3d: %6.1f%% %s\n", k, 100*frac, bar)
	}
	return b.String()
}
