// Package detmap provides deterministic iteration over Go maps.
//
// Go randomizes map iteration order on purpose, which is exactly wrong for
// a simulator whose validity rests on bit-exact reproducibility: a map
// range whose order reaches simulation state or rendered output is a
// nondeterminism bug (PR 1 fixed one — PUNO-Push wakeups iterated a map and
// randomized NoC send order). The punovet `maprange` analyzer therefore
// forbids raw map ranges in the simulation packages; code that genuinely
// needs to visit every entry goes through this package instead, which
// yields keys in sorted order. detmap itself is deliberately outside the
// audited package set — it is the one blessed place a map range may live.
package detmap

import (
	"cmp"
	"slices"
)

// Keys returns m's keys sorted ascending. The result is freshly allocated;
// hot paths that iterate repeatedly should use AppendKeys with a reusable
// scratch slice instead.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	return AppendKeys(nil, m)
}

// AppendKeys appends m's keys to dst, sorts the appended region ascending,
// and returns the extended slice. Passing dst[:0] reuses dst's capacity, so
// steady-state callers allocate nothing once the scratch has grown.
func AppendKeys[K cmp.Ordered, V any](dst []K, m map[K]V) []K {
	base := len(dst)
	// Keys are collected in whatever order the runtime yields and sorted
	// immediately below; no order-dependent use happens in between. detmap
	// is the blessed home for this pattern — audited packages call it
	// instead of ranging maps, so the directive lives here, not there.
	//puno:unordered — keys are sorted immediately after collection
	for k := range m {
		dst = append(dst, k)
	}
	slices.Sort(dst[base:])
	return dst
}

// SortedFunc returns m's keys sorted by the given comparison function, for
// key types (structs, for example) that are not cmp.Ordered. less must
// define a strict total order or the result is unspecified.
func SortedFunc[K comparable, V any](m map[K]V, compare func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	//puno:unordered — keys are sorted immediately after collection
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compare)
	return keys
}
