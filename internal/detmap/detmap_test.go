package detmap

import (
	"reflect"
	"testing"
)

func TestKeysSorted(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c", 2: "b", 4: "d"}
	for i := 0; i < 32; i++ { // iteration order varies per call; result must not
		got := Keys(m)
		if want := []int{1, 2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	if got := Keys(map[uint64]int(nil)); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v, want empty", got)
	}
}

func TestAppendKeysReusesScratch(t *testing.T) {
	m := map[uint64]int{7: 0, 2: 0, 9: 0}
	scratch := make([]uint64, 0, 8)
	got := AppendKeys(scratch[:0], m)
	if want := []uint64{2, 7, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendKeys = %v, want %v", got, want)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("AppendKeys did not reuse the scratch backing array")
	}
	// Only the appended region is sorted; an existing prefix is untouched.
	pre := []int{42}
	out := AppendKeys(pre, map[int]bool{3: true, 1: true})
	if want := []int{42, 1, 3}; !reflect.DeepEqual(out, want) {
		t.Fatalf("AppendKeys with prefix = %v, want %v", out, want)
	}
}

func TestSortedFunc(t *testing.T) {
	type pc struct{ a, b int }
	m := map[pc]int{{2, 1}: 0, {1, 9}: 0, {1, 2}: 0}
	got := SortedFunc(m, func(x, y pc) int {
		if x.a != y.a {
			return x.a - y.a
		}
		return x.b - y.b
	})
	if want := []pc{{1, 2}, {1, 9}, {2, 1}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedFunc = %v, want %v", got, want)
	}
}
