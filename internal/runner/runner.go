// Package runner provides a deterministic worker-pool executor for fanning
// independent tasks out across goroutines. Results come back in submission
// order regardless of completion order, every task error is collected (not
// just the first), and a context cancels the dispatch of not-yet-started
// tasks — the properties the experiment harness needs to parallelize sweeps
// of independent simulation runs without giving up bit-identical output.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
)

// Options configures one Map call.
type Options struct {
	// Workers is the number of concurrent goroutines. Zero or negative
	// selects runtime.GOMAXPROCS(0), divided by TaskThreads when tasks are
	// themselves parallel. One runs every task inline on the calling
	// goroutine, in index order — the exact serial semantics.
	Workers int

	// TaskThreads is how many goroutines one task occupies while it runs
	// (1 for an ordinary serial task). A sharded simulation run, for
	// example, spawns Config.Shards workers of its own, so a pool of
	// GOMAXPROCS such tasks would oversubscribe the host by that factor.
	// TaskThreads only influences the automatic pool size: when Workers
	// <= 0 the pool is GOMAXPROCS/TaskThreads (at least 1). An explicit
	// Workers count is always respected unchanged. Values < 1 mean 1.
	TaskThreads int

	// Progress, when non-nil, is called after each task finishes with the
	// number of completed tasks and the total. Calls are serialized, but
	// (with more than one worker) arrive from pool goroutines, so the
	// callback must not assume it runs on the caller's goroutine.
	Progress func(done, total int)

	// Label, when non-nil, names task i for profiling: the task runs under
	// pprof.Do with labels task=<i> and spec=<Label(i)>, so CPU profiles
	// attribute samples to individual sweep points instead of one
	// undifferentiated pool. Label must be safe to call from pool
	// goroutines.
	Label func(i int) string
}

// AutoWorkers returns the automatic pool size for tasks that each occupy
// taskThreads goroutines while running: GOMAXPROCS divided by taskThreads,
// never below 1. It is the sizing rule MapWorkers applies when
// Options.Workers <= 0, exported so long-lived pools (punoserve's worker
// pool) size themselves identically to a one-shot sweep.
func AutoWorkers(taskThreads int) int {
	workers := runtime.GOMAXPROCS(0)
	if taskThreads > 1 {
		workers /= taskThreads
		if workers < 1 {
			workers = 1
		}
	}
	return workers
}

// TaskError wraps a task failure with the index it occurred at.
type TaskError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *TaskError) Error() string { return fmt.Sprintf("task %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying task error to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// Map runs fn(ctx, i) for every i in [0, n) on a pool of opts.Workers
// goroutines and returns the results in index order. Tasks are independent:
// one failing does not stop the others, and every failure is returned,
// wrapped in a *TaskError and joined in index order. Cancelling ctx stops
// new tasks from being dispatched (already-running tasks see the
// cancellation through their ctx argument); the returned error then
// includes ctx's error. Result slots whose task failed or was never
// dispatched hold the zero value of T.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapWorkers(ctx, n, opts,
		func(int) struct{} { return struct{}{} },
		func(ctx context.Context, i int, _ struct{}) (T, error) { return fn(ctx, i) })
}

// MapWorkers is Map with per-worker state: newState(w) runs once on each
// pool goroutine (w in [0, workers)) before it takes its first task, and
// the returned value is passed to every task that goroutine executes. This
// is the hook the sweep harness uses to keep one reusable simulation arena
// per worker instead of rebuilding a machine for every sweep point. In
// serial mode (one worker) a single state is created on the calling
// goroutine. States are never shared between goroutines and are dropped
// when the pool drains; tasks own any cleanup.
func MapWorkers[S, T any](ctx context.Context, n int, opts Options, newState func(w int) S, fn func(ctx context.Context, i int, state S) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative task count %d", n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = AutoWorkers(opts.TaskThreads)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	var (
		mu       sync.Mutex
		done     int
		failures []*TaskError
	)
	finish := func(i int, res T, err error) {
		mu.Lock()
		results[i] = res
		if err != nil {
			failures = append(failures, &TaskError{Index: i, Err: err})
		}
		done++
		d := done
		mu.Unlock()
		if opts.Progress != nil {
			opts.Progress(d, n)
		}
	}
	run := func(ctx context.Context, i int, state S) (T, error) {
		if opts.Label == nil {
			return fn(ctx, i, state)
		}
		var res T
		var err error
		pprof.Do(ctx, pprof.Labels("task", strconv.Itoa(i), "spec", opts.Label(i)),
			func(ctx context.Context) { res, err = fn(ctx, i, state) })
		return res, err
	}

	if workers <= 1 {
		// Serial mode: run inline, in index order, on the caller's
		// goroutine — byte-for-byte the classic serial loop.
		var state S
		if n > 0 {
			state = newState(0)
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, joinFailures(failures, err)
			}
			res, err := run(ctx, i, state)
			finish(i, res, err)
		}
		return results, joinFailures(failures, nil)
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := newState(w)
			for i := range indices {
				res, err := run(ctx, i, state)
				finish(i, res, err)
			}
		}(w)
	}

dispatch:
	for i := 0; i < n; i++ {
		// Checked eagerly: once cancelled, a send and Done may both be
		// ready and select would pick between them at random.
		if ctx.Err() != nil {
			break
		}
		select {
		case indices <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(indices)
	wg.Wait()

	return results, joinFailures(failures, ctx.Err())
}

// joinFailures merges the collected task errors (sorted by index so the
// message is deterministic) with an optional context error.
func joinFailures(failures []*TaskError, ctxErr error) error {
	if len(failures) == 0 && ctxErr == nil {
		return nil
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i].Index < failures[j].Index })
	errs := make([]error, 0, len(failures)+1)
	for _, f := range failures {
		errs = append(errs, f)
	}
	if ctxErr != nil {
		errs = append(errs, ctxErr)
	}
	return errors.Join(errs...)
}
