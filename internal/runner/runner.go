// Package runner provides a deterministic worker-pool executor for fanning
// independent tasks out across goroutines. Results come back in submission
// order regardless of completion order, every task error is collected (not
// just the first), and a context cancels the dispatch of not-yet-started
// tasks — the properties the experiment harness needs to parallelize sweeps
// of independent simulation runs without giving up bit-identical output.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Options configures one Map call.
type Options struct {
	// Workers is the number of concurrent goroutines. Zero or negative
	// selects runtime.GOMAXPROCS(0). One runs every task inline on the
	// calling goroutine, in index order — the exact serial semantics.
	Workers int

	// Progress, when non-nil, is called after each task finishes with the
	// number of completed tasks and the total. Calls are serialized, but
	// (with more than one worker) arrive from pool goroutines, so the
	// callback must not assume it runs on the caller's goroutine.
	Progress func(done, total int)
}

// TaskError wraps a task failure with the index it occurred at.
type TaskError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *TaskError) Error() string { return fmt.Sprintf("task %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying task error to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// Map runs fn(ctx, i) for every i in [0, n) on a pool of opts.Workers
// goroutines and returns the results in index order. Tasks are independent:
// one failing does not stop the others, and every failure is returned,
// wrapped in a *TaskError and joined in index order. Cancelling ctx stops
// new tasks from being dispatched (already-running tasks see the
// cancellation through their ctx argument); the returned error then
// includes ctx's error. Result slots whose task failed or was never
// dispatched hold the zero value of T.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative task count %d", n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	var (
		mu       sync.Mutex
		done     int
		failures []*TaskError
	)
	finish := func(i int, res T, err error) {
		mu.Lock()
		results[i] = res
		if err != nil {
			failures = append(failures, &TaskError{Index: i, Err: err})
		}
		done++
		d := done
		mu.Unlock()
		if opts.Progress != nil {
			opts.Progress(d, n)
		}
	}

	if workers <= 1 {
		// Serial mode: run inline, in index order, on the caller's
		// goroutine — byte-for-byte the classic serial loop.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, joinFailures(failures, err)
			}
			res, err := fn(ctx, i)
			finish(i, res, err)
		}
		return results, joinFailures(failures, nil)
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				res, err := fn(ctx, i)
				finish(i, res, err)
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		// Checked eagerly: once cancelled, a send and Done may both be
		// ready and select would pick between them at random.
		if ctx.Err() != nil {
			break
		}
		select {
		case indices <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(indices)
	wg.Wait()

	return results, joinFailures(failures, ctx.Err())
}

// joinFailures merges the collected task errors (sorted by index so the
// message is deterministic) with an optional context error.
func joinFailures(failures []*TaskError, ctxErr error) error {
	if len(failures) == 0 && ctxErr == nil {
		return nil
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i].Index < failures[j].Index })
	errs := make([]error, 0, len(failures)+1)
	for _, f := range failures {
		errs = append(errs, f)
	}
	if ctxErr != nil {
		errs = append(errs, ctxErr)
	}
	return errors.Join(errs...)
}
