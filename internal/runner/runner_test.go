package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(context.Background(), 50, Options{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) { return 0, errors.New("must not run") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

func TestMapCollectsEveryError(t *testing.T) {
	bad := map[int]bool{3: true, 11: true, 17: true}
	res, err := Map(context.Background(), 20, Options{Workers: 4},
		func(_ context.Context, i int) (string, error) {
			if bad[i] {
				return "", fmt.Errorf("boom %d", i)
			}
			return fmt.Sprintf("ok %d", i), nil
		})
	if err == nil {
		t.Fatal("expected joined error")
	}
	for i := range bad {
		if !strings.Contains(err.Error(), fmt.Sprintf("boom %d", i)) {
			t.Errorf("error missing task %d: %v", i, err)
		}
		if res[i] != "" {
			t.Errorf("failed task %d has non-zero result %q", i, res[i])
		}
	}
	// Successes are still delivered alongside the failures.
	if res[0] != "ok 0" || res[19] != "ok 19" {
		t.Errorf("successful results lost: %q %q", res[0], res[19])
	}
	// Errors are sorted by index, so the message is deterministic.
	if i3 := strings.Index(err.Error(), "task 3"); i3 < 0 || i3 > strings.Index(err.Error(), "task 11") {
		t.Errorf("errors not in index order: %v", err)
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("joined error does not expose *TaskError: %v", err)
	}
}

func TestMapContextCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})   // blocks workers until cancel has happened
	cancelled := make(chan struct{}) // closed by the first task, after cancel
	var once sync.Once
	go func() {
		<-cancelled
		close(release)
	}()
	_, err := Map(ctx, 1000, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			once.Do(func() {
				cancel()
				close(cancelled)
			})
			<-release
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most the tasks already handed to the 2 workers, plus one send
	// already parked in the dispatcher's select when cancel hit, may have
	// started; the other ~1000 must not.
	if n := started.Load(); n > 3 {
		t.Fatalf("%d tasks started after cancellation", n)
	}
}

func TestMapSerialModeRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := Map(ctx, 10, Options{Workers: 1},
		func(_ context.Context, i int) (int, error) {
			ran++
			if i == 2 {
				cancel()
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d tasks, want 3 (cancel checked before each serial task)", ran)
	}
}

func TestMapProgressSeesEveryCompletion(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	total := -1
	_, err := Map(context.Background(), 25, Options{
		Workers: 5,
		Progress: func(done, n int) {
			mu.Lock()
			dones = append(dones, done)
			total = n
			mu.Unlock()
		},
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if total != 25 || len(dones) != 25 {
		t.Fatalf("progress called %d times with total %d, want 25/25", len(dones), total)
	}
	seen := make(map[int]bool)
	for _, d := range dones {
		seen[d] = true
	}
	for d := 1; d <= 25; d++ {
		if !seen[d] {
			t.Fatalf("progress never reported done=%d", d)
		}
	}
}

func TestMapActuallyRunsConcurrently(t *testing.T) {
	const workers = 4
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), 16, Options{Workers: workers},
		func(_ context.Context, i int) (int, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inFlight.Add(-1)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", peak.Load(), workers)
	}
}

func TestMapNegativeCount(t *testing.T) {
	if _, err := Map(context.Background(), -1, Options{},
		func(_ context.Context, i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative task count accepted")
	}
}

func TestTaskErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := Map(context.Background(), 3, Options{Workers: 2},
		func(_ context.Context, i int) (int, error) {
			if i == 1 {
				return 0, sentinel
			}
			return i, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through TaskError failed: %v", err)
	}
}

// TestMapWorkersStatePerGoroutine: each pool goroutine gets exactly one
// state from newState, every task sees its own goroutine's state, and no
// state is shared across goroutines.
func TestMapWorkersStatePerGoroutine(t *testing.T) {
	type state struct {
		worker int
		tasks  []int
	}
	for _, workers := range []int{1, 2, 5} {
		var mu sync.Mutex
		var states []*state
		_, err := MapWorkers(context.Background(), 40, Options{Workers: workers},
			func(w int) *state {
				s := &state{worker: w}
				mu.Lock()
				states = append(states, s)
				mu.Unlock()
				return s
			},
			func(_ context.Context, i int, s *state) (int, error) {
				s.tasks = append(s.tasks, i) // no lock: s must be goroutine-local
				return i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(states) > workers {
			t.Fatalf("workers=%d: newState ran %d times", workers, len(states))
		}
		seen := map[int]bool{}
		total := 0
		for _, s := range states {
			for _, i := range s.tasks {
				if seen[i] {
					t.Fatalf("workers=%d: task %d ran on two states", workers, i)
				}
				seen[i] = true
				total++
			}
		}
		if total != 40 {
			t.Fatalf("workers=%d: states saw %d tasks, want 40", workers, total)
		}
	}
}

// TestMapWorkersSerialReusesOneState: serial mode builds a single state and
// threads it through every task in index order — the arena-per-worker
// contract the sweep harness depends on for serial/parallel identity.
func TestMapWorkersSerialReusesOneState(t *testing.T) {
	builds := 0
	var order []int
	_, err := MapWorkers(context.Background(), 10, Options{Workers: 1},
		func(w int) *[]int {
			builds++
			if w != 0 {
				t.Fatalf("serial newState got worker index %d", w)
			}
			return &order
		},
		func(_ context.Context, i int, s *[]int) (struct{}, error) {
			*s = append(*s, i)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("serial mode built %d states, want 1", builds)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

// TestMapTaskLabels: when Options.Label is set, each task runs under pprof
// labels carrying its index and spec name, visible via pprof.Label inside
// the task.
func TestMapTaskLabels(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var mu sync.Mutex
		got := map[int][2]string{}
		_, err := Map(context.Background(), 6,
			Options{
				Workers: workers,
				Label:   func(i int) string { return fmt.Sprintf("spec-%d", i) },
			},
			func(ctx context.Context, i int) (struct{}, error) {
				task, _ := pprof.Label(ctx, "task")
				spec, _ := pprof.Label(ctx, "spec")
				mu.Lock()
				got[i] = [2]string{task, spec}
				mu.Unlock()
				return struct{}{}, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := 0; i < 6; i++ {
			want := [2]string{fmt.Sprintf("%d", i), fmt.Sprintf("spec-%d", i)}
			if got[i] != want {
				t.Fatalf("workers=%d task %d: labels %v, want %v", workers, i, got[i], want)
			}
		}
	}
}

// TestMapNoLabelsWithoutLabelFunc: without a Label func, tasks run without
// the pprof wrapper (no task label set).
func TestMapNoLabelsWithoutLabelFunc(t *testing.T) {
	_, err := Map(context.Background(), 2, Options{Workers: 1},
		func(ctx context.Context, i int) (struct{}, error) {
			if v, ok := pprof.Label(ctx, "task"); ok {
				t.Errorf("task %d: unexpected pprof label task=%q", i, v)
			}
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapTaskThreadsShrinksAutoPool: when tasks are themselves parallel
// (TaskThreads > 1), the auto-sized pool divides GOMAXPROCS by that factor
// so total goroutine concurrency stays bounded. newState runs once per pool
// goroutine, so the number of distinct states observed is the pool size.
func TestMapTaskThreadsShrinksAutoPool(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, threads, want int
	}{
		{0, procs, 1},     // auto: pool collapses to serial
		{0, procs * 8, 1}, // auto: never below one worker
		{3, 100, 3},       // explicit Workers wins unchanged
		{0, 1, procs},     // threads=1 leaves auto-sizing alone
		{0, 0, procs},     // zero means one thread
	}
	for _, c := range cases {
		var states int32
		_, err := MapWorkers(context.Background(), 4*procs,
			Options{Workers: c.workers, TaskThreads: c.threads},
			func(int) int { return int(atomic.AddInt32(&states, 1)) },
			func(_ context.Context, i int, _ int) (int, error) {
				time.Sleep(time.Millisecond) // hold the slot so every worker takes work
				return i, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		want := c.want
		if want > 4*procs {
			want = 4 * procs
		}
		if got := int(atomic.LoadInt32(&states)); got != want {
			t.Errorf("Workers=%d TaskThreads=%d: %d pool states, want %d",
				c.workers, c.threads, got, want)
		}
	}
}

// AutoWorkers is the exported sizing rule; it must agree with what the
// pool-state test above observes MapWorkers doing.
func TestAutoWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct{ threads, want int }{
		{0, procs},
		{1, procs},
		{procs, 1},
		{procs * 8, 1},
	}
	if procs >= 4 {
		cases = append(cases, struct{ threads, want int }{2, procs / 2})
	}
	for _, c := range cases {
		if got := AutoWorkers(c.threads); got != c.want {
			t.Errorf("AutoWorkers(%d) = %d, want %d", c.threads, got, c.want)
		}
	}
}
