package pdes

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/machine"
)

// TestWindowBoundaryExactLookahead pins the lookahead boundary: on a 2x1
// mesh split into two single-node shards, every cross-shard message is a
// one-hop delivery arriving exactly MinRemoteLatency cycles after its send —
// the earliest instant the conservative window bound admits. If the window
// arithmetic were off by one in either direction (injecting into an
// already-executed past, or stalling a window that should close), this
// configuration hits it on every single remote message.
func TestWindowBoundaryExactLookahead(t *testing.T) {
	wl := testWL(t, "intruder", 6)
	cfg := machine.DefaultConfig()
	cfg.Scheme = machine.SchemePUNO
	cfg.Seed = 42
	cfg.Mesh.Width, cfg.Mesh.Height = 2, 1
	cfg.Nodes = 2

	m, err := machine.New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	scfg := cfg
	scfg.Shards = 2
	if !Eligible(scfg, wl) {
		t.Fatal("2x1/2-shard config unexpectedly ineligible")
	}
	co, err := New(scfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("boundary-latency run diverged\n got: %+v\nwant: %+v", got, want)
	}
	if want.Commits == 0 {
		t.Error("degenerate run: no commits, boundary never exercised")
	}
}

// TestResetAfterHungShardedRun: a coordinator whose run hit MaxCycles
// (ErrHung) mid-flight — shards parked at arbitrary window positions,
// staged cross-shard messages undelivered — must Reset cleanly and then
// produce exactly what a fresh coordinator produces.
func TestResetAfterHungShardedRun(t *testing.T) {
	wl := testWL(t, "intruder", 4)
	good := machine.DefaultConfig()
	good.Scheme = machine.SchemeBaseline
	good.Seed = 42
	good.Shards = 4

	hang := good
	hang.MaxCycles = 500 // far too few cycles: guaranteed ErrHung

	co, err := New(hang, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(); !errors.Is(err, machine.ErrHung) {
		t.Fatalf("truncated sharded run: err = %v, want ErrHung", err)
	}

	if err := co.Reset(good, wl); err != nil {
		t.Fatal(err)
	}
	got, err := co.Run()
	if err != nil {
		t.Fatalf("run after reset-from-failure: %v", err)
	}

	fresh, err := New(good, wl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-failure reset diverged from fresh coordinator\n got: %+v\nwant: %+v", got, want)
	}
}

// TestEligibleRejectsZeroLatencyMesh: a mesh whose minimum remote latency is
// zero offers no lookahead at all — the coordinator must refuse it and let
// the caller fall back to serial.
func TestEligibleRejectsZeroLatencyMesh(t *testing.T) {
	wl := testWL(t, "kmeans", 2)
	cfg := machine.DefaultConfig()
	cfg.Shards = 2
	cfg.Mesh.RouterStages = 0
	cfg.Mesh.LinkCycles = 0
	if Eligible(cfg, wl) {
		t.Error("zero-lookahead mesh accepted")
	}
}
