package pdes

import (
	"sort"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// noHintWL strips the footprint hint from a workload, leaving the rest of
// its behavior intact.
type noHintWL struct{ machine.Workload }

func (w noHintWL) Program(nodeID int, rng *sim.RNG) machine.Program {
	return w.Workload.Program(nodeID, rng)
}

func TestEligibleRejections(t *testing.T) {
	wl := testWL(t, "intruder", 2)
	base := machine.DefaultConfig()
	base.Scheme = machine.SchemePUNO
	base.Shards = 4

	if !Eligible(base, wl) {
		t.Fatal("baseline sharded config rejected")
	}
	cases := []struct {
		name string
		cfg  func(machine.Config) machine.Config
		wl   machine.Workload
	}{
		{"shards-1", func(c machine.Config) machine.Config { c.Shards = 1; return c }, wl},
		{"shards-0", func(c machine.Config) machine.Config { c.Shards = 0; return c }, wl},
		{"sampling", func(c machine.Config) machine.Config { c.SampleInterval = 100; return c }, wl},
		{"tracefn", func(c machine.Config) machine.Config {
			c.TraceFn = func(sim.Time, int, string) {}
			return c
		}, wl},
		{"ats", func(c machine.Config) machine.Config { c.Scheme = machine.SchemeATS; return c }, wl},
		{"no-hint", func(c machine.Config) machine.Config { return c }, noHintWL{wl}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if Eligible(tc.cfg(base), tc.wl) {
				t.Error("ineligible configuration accepted")
			}
		})
	}
}

func TestNewRejectsIneligibleAndInvalid(t *testing.T) {
	wl := testWL(t, "intruder", 2)
	cfg := machine.DefaultConfig()
	cfg.Scheme = machine.SchemePUNO
	if _, err := New(cfg, wl); err == nil {
		t.Fatal("New accepted a serial (Shards=1) config")
	}
	cfg.Shards = 4
	cfg.Nodes = 15 // does not match the 4x4 mesh
	if _, err := New(cfg, wl); err == nil {
		t.Fatal("New accepted a node count that does not match the mesh")
	}
}

// LineTable exposes the shared interner in ID order. Sharded interleaving
// makes the order itself unstable, but the set of touched lines is the
// serial run's.
func TestLineTableMatchesSerialSet(t *testing.T) {
	wl := testWL(t, "intruder", 2)
	cfg := machine.DefaultConfig()
	cfg.Scheme = machine.SchemePUNO
	cfg.Seed = 42

	m, err := machine.New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	serial := m.LineTable()

	cfg.Shards = 4
	co, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(); err != nil {
		t.Fatal(err)
	}
	sharded := co.LineTable()

	if len(serial) != len(sharded) {
		t.Fatalf("line table sizes differ: serial %d, sharded %d", len(serial), len(sharded))
	}
	asSet := func(ls []mem.Line) []mem.Line {
		out := append([]mem.Line(nil), ls...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	a, b := asSet(serial), asSet(sharded)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("line sets differ at sorted index %d: serial %#x, sharded %#x", i, uint64(a[i]), uint64(b[i]))
		}
	}
}
