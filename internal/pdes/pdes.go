// Package pdes runs one simulated machine across several worker goroutines
// — conservative parallel discrete-event simulation over the mesh — while
// reproducing the serial run bit for bit.
//
// # Topology and lookahead
//
// The machine's nodes are split into contiguous ranges (horizontal mesh
// regions: node ids are row-major, so a contiguous id range is a band of
// rows). Each shard is an ordinary machine.Machine owning its range: local
// controllers, a private event engine and two-level wheel, and a private
// mesh instance that carries only node-local (src == dst) messages. Every
// remote message instead crosses the one coordinator-owned global mesh,
// whose link state all remote traffic contends on exactly as in a serial
// run.
//
// Shards advance in bounded windows. With L = Mesh.MinRemoteLatency() — the
// cheapest possible remote delivery: two router pipelines plus one link
// crossing — a message sent at cycle t cannot arrive before t+L, so events
// in [T, T+L) (T = the earliest pending event across shards) are closed
// under cross-shard influence: nothing a shard does inside the window can
// schedule work for another shard inside it. Each window, every shard with
// an event in range executes its local events in parallel with the others;
// staged remote sends are then routed and injected at the commit. No
// rollback is ever needed.
//
// # Bit-determinism: the (cycle, seq) merge
//
// The serial engine executes events in (time, sequence) order, and every
// observable — results, event traces, RNG draws — inherits that order. The
// coordinator reproduces it exactly:
//
//   - Events executed inside a window are recorded per shard as entries in
//     local execution order, which is (time, seq) order for that shard's
//     queue. A commit k-way merges the shards' entry queues by (cycle,
//     serial seq) and replays each entry's effects — event-sink emissions,
//     and the schedules/sends it performed — in merged order. Events with
//     no effects are not recorded at all: they consume no sequence numbers
//     and emit nothing, so the merge never needs to see them.
//
//   - A schedule that happens during a window gets a provisional sequence
//     (the shard engine's counter starts the run at 1<<62, above any
//     serial seq, and never resets — provisional seqs are unique for the
//     whole run). The commit replay assigns the true serial sequences:
//     walking entries in merged order, every schedule and every remote
//     send consumes the next global sequence number exactly as the serial
//     engine would have. Rather than observing each schedule call, an
//     entry records the engine's seq counter before and after it ran
//     (seqLo, seqHi) and each staged send records the counter at its stage
//     point, which reconstructs the schedule/send interleaving: the replay
//     fills the shard's run-lifetime renumber table (provisional − base →
//     serial) arithmetically. A provisional entry's scheduling parent
//     always executed earlier on the same shard (live schedules are
//     shard-local) and each renum slot is written exactly once, so an
//     entry's serial seq is known before it reaches its queue head — the
//     merge never stalls, even when parent and child commit batches apart.
//
//   - Pending events are NOT eagerly renumbered: a provisional seq orders
//     correctly against every seq assigned later (serial seqs only grow,
//     and shard-local provisional order matches serial order), so the only
//     pending events that must carry their serial seq are those that can
//     tie with an earlier-assigned serial key at the same cycle. Those
//     sites are exactly where serial-keyed events enter a shard's queue:
//     the commit renumbers the overflow heap (plus in-horizon heap events'
//     same-cycle buckets — Engine.RekeyOverflow) and, before injecting
//     remote deliveries, the wheel buckets those deliveries land in
//     (Engine.RekeyBucket). Everything else keeps its provisional seq for
//     life; the merge resolves it through the renum table when (and if)
//     the event's entry is committed.
//
//   - Remote sends are staged, not delivered: the commit assigns their
//     serial seqs during the merge, then replays all of them in one batched
//     pass through Mesh.ReserveRoute on the global mesh (link contention
//     resolves serially, in merged order) and injects each delivery into
//     the destination shard with its serial sequence number. The injection
//     time t ≥ send + L ≥ the window end, so it never lands in a shard's
//     already-executed past. Injection happens after the bulk rekey: the
//     injected serial seqs interleave with the rekeyed ones, and
//     chainInsert's positional walk places them correctly among
//     serial-keyed events.
//
// # Window coalescing and the empty fast path
//
// Most windows stage no cross-shard send at all — shards run independent
// stretches far longer than the lookahead. The coordinator therefore does
// not commit per window: entries, emissions, and the engine seq counters
// simply accumulate, and the per-window "commit" is an O(shards) check
// that nothing was staged. A real commit runs only when (a) a window
// staged at least one remote send — every staged send is then from that
// last window, so its delivery lands at or after the window end and the
// batch is still causally closed; (b) coalesceWindows windows have
// accumulated, bounding the batch's memory and keeping the certification
// surface small; or (c) the run ends with a sink installed (emissions must
// flow; nothing else in a sendless trailing batch is observable).
//
// Batching cannot change the output: windows in a batch are disjoint and
// increasing in time (nothing is injected between them), so each shard's
// accumulated entry list is still (cycle, seq)-sorted and the global merged
// order — hence every serial seq assignment, route reservation, and
// emission — is identical no matter where the commit boundaries fall.
//
// Window execution is parallel but each shard touches only its own state;
// the line interner is the one shared structure (mutex-guarded assignment,
// lock-free LineAt over a pre-sized table — see mem.Interner.SetShared).
// Raw LineIDs depend on cross-shard interleaving, so they never escape:
// trace serialization renumbers them into emission order
// (trace.EventTrace.Normalized), under which a sharded capture is
// byte-identical to the serial one.
package pdes

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/sim"
)

// provSeqBase is where every shard engine's sequence counter starts after
// node-start events are seeded, and it never resets: far above any serial
// sequence number, so a provisional seq is recognizable for the whole run
// and — because earlier events sort before same-cycle later schedules in
// the serial order too — sorts correctly even before renumbering.
const provSeqBase = uint64(1) << 62

// coalesceWindows bounds how many send-free windows accumulate before the
// coordinator commits anyway. The bound keeps batch memory proportional to
// a handful of windows and keeps the determinism argument local (a batch is
// re-certified every K windows, not once per run); its value only moves
// the amortization point, never the output.
const coalesceWindows = 8

// send records one staged remote message and the shard engine's seq
// counter at the moment it was staged. The counter value positions the
// send among its entry's schedules: the serial engine hands out sequence
// numbers to schedules and send deliveries in exactly the order the
// handler makes them, and seqAt reconstructs that interleaving without
// observing each schedule call. The routing header (src, dst, class,
// flits) is copied out while the message is cache-hot so the commit's
// reservation pass never dereferences thousands of cold messages.
type send struct {
	msg   *coherence.Msg
	seqAt uint64
	src   int32
	dst   int32
	class noc.Class
	flits int32
}

// route is one merged remote send awaiting the batched reservation pass:
// its message and copied routing header, the cycle it was sent, and the
// serial seq its delivery event must carry.
type route struct {
	msg   *coherence.Msg
	at    sim.Time
	gseq  uint64
	src   int32
	dst   int32
	class noc.Class
	flits int32
}

// provFlag marks an entry key as a still-provisional seq offset. Serial
// seqs stay below 1<<31 (guarded in commit) and executed cycles below
// 1<<32 (guarded in Eligible), so an entry's merge key packs into one
// uint64 — cycle<<32 | serial seq — and the merge scan is single-compare.
const provFlag = uint32(1) << 31

// entry is one executed event with effects in a shard's batch — the
// engine's 20-byte drain log record: the cycle it ran at, the seq it ran
// under (serial, or a provFlag-tagged provisional offset if scheduled
// this batch), and the END of its schedule span (as an offset from
// provSeqBase), send list, and staged-emission slice. The start bounds
// are implicit: entries consume the batch's seqs, sends, and emissions
// contiguously, so replay derives them from per-shard cursors.
type entry = sim.DrainEntry

type shard struct {
	m      *machine.Machine
	eng    *sim.Engine
	lo, hi int
	// nextAt caches the shard's earliest pending event time between
	// windows: runWindow refreshes it from the StepBefore that ends the
	// window, and commit lowers it when an injection lands earlier. The
	// coordinator's window selection is pure arithmetic over these.
	nextAt  sim.Time
	stage   probe.Buffer // batch-local event-sink staging
	entries []entry
	sends   []send
	renum   []uint64 // provisional seq - provSeqBase → serial seq; a slot is valid once its batch's replay writes it
	head    int      // commit cursor into entries
	headM   uint64   // resolved merge key of entries[head]: cycle<<32 | seq
	// batchSeq is the provisional-seq offset the current batch started at;
	// rSeq/rSend/rEmit are replay cursors tracking how much of the batch's
	// seq span, send list, and staged emissions have been consumed.
	batchSeq uint32
	rSeq     uint32
	rSend    int32
	rEmit    int32
	sendN    int32 // == len(sends); the engine drain's external effect counter
	traced   bool  // coordinator has an event sink; track emissions
	xsend    func(*coherence.Msg)
	work     chan sim.Time
	done     chan struct{}
}

// Coordinator owns a sharded machine: the shard set, the global mesh, the
// shared interner, and the window loop. Like machine.Machine it is a
// reusable arena: Reset rebuilds it for a new (cfg, wl) retaining every
// allocation, and a fresh and a reused coordinator run identically.
type Coordinator struct {
	cfg     machine.Config
	wl      machine.Workload
	it      *mem.Interner
	mesh    *noc.Mesh // global link state; remote traffic and stats
	meshEng *sim.Engine
	sink    probe.Sink
	shards  []*shard
	owner   []int32 // node id → shard index
	gseq    uint64
	// coalesced counts the send-free windows that skipped the commit
	// barrier (diagnostics; lets tests assert the coalescing path ran).
	coalesced int

	// Scratch reused across commits / runs.
	parts   []*shard
	routes  []route
	results []*machine.Result
	ms      []*machine.Machine
}

// Eligible reports whether cfg/wl can run under the coordinator. Ineligible
// configurations (serial-only observables, schemes with cross-node shared
// state, workloads whose footprint cannot be pre-sized, or a degenerate
// zero-latency mesh that voids the lookahead bound) fall back to the serial
// path; callers dispatch with this predicate so sharding is never
// observable, only faster.
func Eligible(cfg machine.Config, wl machine.Workload) bool {
	if cfg.Shards <= 1 {
		return false
	}
	if cfg.SampleInterval > 0 || cfg.TraceFn != nil {
		return false
	}
	if cfg.Scheme == machine.SchemeATS {
		return false
	}
	if cfg.Mesh.MinRemoteLatency() < 1 {
		return false
	}
	if cfg.MaxCycles >= 1<<32 {
		return false // executed cycles must fit the packed 32-bit merge key
	}
	if _, ok := wl.(machine.FootprintHinter); !ok {
		return false
	}
	return true
}

// New builds a coordinator for cfg (whose Shards must be > 1 and Eligible
// must accept) running wl.
func New(cfg machine.Config, wl machine.Workload) (*Coordinator, error) {
	c := &Coordinator{}
	if err := c.Reset(cfg, wl); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset rebuilds the coordinator for (cfg, wl), reusing shard machines,
// engines, meshes, and scratch — the sharded counterpart of Machine.Reset,
// with the same guarantee: a reused coordinator is indistinguishable from a
// fresh one. Reset may be called in any state, including after a failed or
// hung run.
func (c *Coordinator) Reset(cfg machine.Config, wl machine.Workload) error {
	if !Eligible(cfg, wl) {
		return fmt.Errorf("pdes: configuration is not shardable (Shards=%d, scheme=%v)", cfg.Shards, cfg.Scheme)
	}
	nsh := cfg.Shards
	if nsh > cfg.Nodes {
		nsh = cfg.Nodes
	}
	c.cfg, c.wl = cfg, wl
	c.sink = cfg.EventSink
	c.gseq = 0
	c.routes = c.routes[:0]

	if c.it == nil {
		c.it = mem.NewInterner()
	}
	// Reset and pre-size serially, then arm for shared use: LineAt stays
	// lock-free only because the table never grows past the footprint hint
	// while shards run.
	c.it.SetShared(false)
	c.it.Reset()
	c.it.Grow(wl.(machine.FootprintHinter).FootprintLines(cfg.Nodes))
	c.it.SetShared(true)

	if c.meshEng == nil {
		c.meshEng = sim.NewEngine()
	} else {
		c.meshEng.Reset()
	}
	if c.mesh == nil {
		c.mesh = noc.New(cfg.Mesh, c.meshEng)
	} else {
		c.mesh.Reset(cfg.Mesh, c.meshEng)
	}

	if len(c.shards) != nsh {
		c.shards = make([]*shard, nsh)
		for i := range c.shards {
			sh := &shard{}
			sh.xsend = func(msg *coherence.Msg) {
				sh.sends = append(sh.sends, send{
					msg: msg, seqAt: sh.eng.Seq(),
					src: int32(msg.Src), dst: int32(msg.Dst),
					class: msg.Class(), flits: int32(msg.Flits()),
				})
				sh.sendN++
			}
			c.shards[i] = sh
		}
	}
	if cap(c.owner) < cfg.Nodes {
		c.owner = make([]int32, cfg.Nodes)
	}
	c.owner = c.owner[:cfg.Nodes]

	scfg := cfg
	for i, sh := range c.shards {
		sh.lo, sh.hi = i*cfg.Nodes/nsh, (i+1)*cfg.Nodes/nsh
		for n := sh.lo; n < sh.hi; n++ {
			c.owner[n] = int32(i)
		}
		sh.stage.Reset()
		sh.entries = sh.entries[:0]
		sh.sends = sh.sends[:0]
		sh.renum = sh.renum[:0]
		sh.head = 0
		sh.batchSeq = 0
		sh.sendN = 0
		sh.traced = c.sink != nil
		sh.nextAt = sim.Infinity
		if c.sink != nil {
			scfg.EventSink = &sh.stage
		} else {
			scfg.EventSink = nil
		}
		if sh.m == nil {
			m, err := machine.NewShard(scfg, wl, sh.lo, sh.hi, c.it, sh.xsend)
			if err != nil {
				return err
			}
			sh.m = m
		} else if err := sh.m.ResetShard(scfg, wl, sh.lo, sh.hi, c.it, sh.xsend); err != nil {
			return err
		}
		sh.eng = sh.m.Engine()
	}
	// Remote messages pop from the sender's pool and recycle into the
	// receiver's; level the pools so net-sender shards don't allocate
	// fresh messages every run.
	if c.ms == nil || len(c.ms) != len(c.shards) {
		c.ms = make([]*machine.Machine, len(c.shards))
	}
	for i, sh := range c.shards {
		c.ms[i] = sh.m
	}
	machine.BalanceMsgPools(c.ms)
	return nil
}

// LineTable returns the shared interner's lines in assignment order — the
// sharded counterpart of Machine.LineTable. Assignment order here is a
// cross-shard interleaving, so a trace built on this table must be
// normalized before it is compared or saved.
func (c *Coordinator) LineTable() []mem.Line {
	out := make([]mem.Line, c.it.Len())
	for i := range out {
		out[i] = c.it.LineAt(mem.LineID(i + 1))
	}
	return out
}

// Run executes the workload to completion and returns the measurements —
// the sharded Machine.Run. The merged Result and (normalized) event stream
// are bit-identical to the serial run's for any shard count.
func (c *Coordinator) Run() (*machine.Result, error) {
	// Seed node starts with their serial sequence numbers (the serial start
	// loop schedules node i's first fetch with seq i), then park each
	// engine's counter in the provisional range and prime the nextAt cache.
	for _, sh := range c.shards {
		for i := sh.lo; i < sh.hi; i++ {
			sh.eng.SetSeq(uint64(i))
			sh.m.StartNode(i)
		}
		sh.eng.SetSeq(provSeqBase)
		sh.nextAt = sim.Infinity
		if at, _, ok := sh.eng.Peek(); ok {
			sh.nextAt = at
		}
	}
	c.gseq = uint64(c.cfg.Nodes)
	c.coalesced = 0

	// Per-run workers: one goroutine per shard, handed one window at a
	// time. The channel pair gives the race detector (and the memory
	// model) the happens-before edges the barrier protocol relies on. The
	// defer joins the workers, not just signals them: an aborted run (hang,
	// handler error) must not leave a goroutine still touching shard state
	// when the caller Resets and Runs again.
	//
	// On a single-P runtime the workers cannot actually overlap, so every
	// window barrier would just be two scheduler round-trips per shard;
	// run the participants inline instead. Window execution is shard-local
	// and commit order is fixed by (cycle, seq), so which goroutine runs a
	// window cannot affect the output.
	inline := runtime.GOMAXPROCS(0) == 1
	var workers sync.WaitGroup
	if !inline {
		for _, sh := range c.shards {
			sh.work = make(chan sim.Time, 1)
			sh.done = make(chan struct{}, 1)
			workers.Add(1)
			go func(sh *shard) {
				defer workers.Done()
				for wend := range sh.work {
					runWindow(sh, wend)
					sh.done <- struct{}{}
				}
			}(sh)
		}
		defer func() {
			for _, sh := range c.shards {
				close(sh.work)
			}
			workers.Wait()
		}()
	}

	lookahead := c.mesh.MinRemoteLatency()
	maxC := c.cfg.MaxCycles
	hung := false
	windows := 0 // send-free windows accumulated since the last commit
	for {
		t := sim.Infinity
		for _, sh := range c.shards {
			if sh.nextAt < t {
				t = sh.nextAt
			}
		}
		if t == sim.Infinity {
			break // every queue drained
		}
		if t > maxC {
			hung = true // mirrors Engine.Run stopping at its limit
			break
		}
		wend := t + lookahead
		if wend > maxC+1 {
			wend = maxC + 1
		}
		parts := c.parts[:0]
		for _, sh := range c.shards {
			if sh.nextAt < wend {
				parts = append(parts, sh)
			}
		}
		c.parts = parts
		if inline {
			for _, sh := range parts {
				runWindow(sh, wend)
			}
		} else {
			// Run the first participant inline; the rest on their workers.
			for _, sh := range parts[1:] {
				sh.work <- wend
			}
			runWindow(parts[0], wend)
			for _, sh := range parts[1:] {
				<-sh.done
			}
		}
		// A handler failure surfaces in shard order — window execution is
		// deterministic per shard, so the chosen error is too.
		for _, sh := range c.shards {
			if err := sh.m.RunErr(); err != nil {
				return nil, err
			}
		}
		// The empty-window fast path: when nothing was staged, this whole
		// "commit" is the O(shards) scan below. Any staged send forces a
		// real commit now (all staged sends are then from this window, so
		// the batch stays causally closed); otherwise one is forced every
		// coalesceWindows windows to bound batch memory.
		staged := false
		for _, sh := range c.shards {
			if len(sh.sends) > 0 {
				staged = true
				break
			}
		}
		windows++
		if staged || windows >= coalesceWindows {
			c.commit()
			windows = 0
		} else {
			c.coalesced++
		}
	}
	// Flush the trailing send-free batch only when its emissions are
	// observable; its remaining effect is seq bookkeeping nobody reads.
	if c.sink != nil {
		c.commit()
	}

	active := 0
	for _, sh := range c.shards {
		active += sh.m.Active()
	}
	if hung {
		if active > 0 {
			return nil, machine.ErrHung
		}
		// Threads all finished; whatever trails beyond MaxCycles is never
		// executed — exactly what the serial drain pass does at its limit.
	} else if active > 0 {
		return nil, fmt.Errorf("machine: %d threads stalled with an empty event queue (protocol deadlock)", active)
	}

	c.results = c.results[:0]
	for _, sh := range c.shards {
		c.results = append(c.results, sh.m.FinalizeShard())
	}
	return machine.MergeShardResults(c.wl.Name(), c.cfg.Scheme, c.cfg.Nodes, c.results, c.mesh.Stats()), nil
}

// runWindow executes one shard's events in [now, wend), appending an entry
// per event that had effects (schedules, sends, or emissions) onto the
// shard's batch, and leaves the shard's next pending time in nextAt. Runs
// on the shard's worker goroutine; touches only shard-local state (plus
// the shared interner through the machine's handlers).
//
//puno:hot
//puno:worker
func runWindow(sh *shard, wend sim.Time) {
	if sh.traced {
		runWindowTraced(sh, wend)
		return
	}
	// The engine drains the window in one tight loop, recording effectful
	// events itself; sendN (bumped by the xsend hook) is the external
	// effect counter and always equals len(sh.sends).
	sh.entries, sh.nextAt = sh.eng.DrainBefore(wend, provSeqBase, provFlag, sh.entries, &sh.sendN)
}

// runWindowTraced is runWindow with staged-emission tracking: an event
// that only emitted probe events still needs an entry so the merged
// stream interleaves emissions in serial order.
//
//puno:worker
func runWindowTraced(sh *shard, wend sim.Time) {
	eng := sh.eng
	emit := int32(sh.stage.Len())
	snd := int32(len(sh.sends))
	pseq := eng.Seq()
	for {
		at, seq, ran := eng.StepBefore(wend)
		if !ran {
			sh.nextAt = at
			return
		}
		e2 := int32(sh.stage.Len())
		s2 := int32(len(sh.sends))
		q2 := eng.Seq()
		if e2 != emit || s2 != snd || q2 != pseq {
			key := uint32(seq)
			if seq >= provSeqBase {
				key = uint32(seq-provSeqBase) | provFlag
			}
			sh.entries = append(sh.entries, entry{
				At: uint32(at), Key: key,
				SeqHi: uint32(q2 - provSeqBase),
				Emit:  e2,
				Send:  s2,
			})
			emit, snd, pseq = e2, s2, q2
		}
	}
}

// commit merges the batch's entries by (cycle, serial seq), replaying each
// in serial order: emissions flow to the real sink and serial seqs are
// assigned to every schedule and send. Pending provisional events are then
// renumbered only where a serial key could tie with them at the same cycle
// (the overflow heap, and the wheel buckets injections land in); everything
// else keeps its provisional seq, which already sorts correctly against
// every key assigned later. Finally the staged remote sends are routed and
// injected in one batched reservation pass. Single-threaded, after the
// window barrier.
//
// Each shard's next merge key is resolved once, when the entry reaches the
// shard's head, and cached — by then its scheduling parent (always an
// earlier entry of the same shard; schedules are shard-local) has been
// replayed, so the resolution is final and the selection loop is pure
// comparisons over the cached keys.
//
//puno:hot
func (c *Coordinator) commit() {
	parts := c.parts[:0]
	for _, sh := range c.shards {
		if len(sh.entries) == 0 {
			continue
		}
		parts = append(parts, sh)
		c.growRenum(sh)
		sh.head = 0
		sh.headM = c.mergeKey(sh, &sh.entries[0])
		sh.rSeq = sh.batchSeq
		sh.rSend = 0
		sh.rEmit = 0
	}
	c.parts = parts
	if len(parts) == 0 {
		return
	}
	// The packed key gives serial seqs 31 bits; a run that exhausts them
	// would mis-merge silently, so refuse loudly (no feasible simulation
	// gets near 2^31 schedule actions before hitting MaxCycles first).
	if c.gseq >= 1<<31 {
		panic("pdes: serial sequence space exceeds the packed merge key")
	}
	gseq := c.gseq
	// Merge by a k-way min selection per entry. Shards interleave at cycle
	// granularity, so consecutive entries rarely come from the same shard
	// and maintaining a sorted part order costs more than it saves; instead
	// each exhausted shard parks its head key at MaxUint64 and the fixed
	// total-entry count bounds the loop, so selection needs no liveness or
	// termination checks. The send-free common case renumbers inline;
	// replay handles sends and trace emission.
	total := 0
	for _, sh := range parts {
		total += len(sh.entries)
	}
	for i := 0; i < total; i++ {
		best := parts[0]
		for _, sh := range parts[1:] {
			if sh.headM < best.headM {
				best = sh
			}
		}
		h := best.head
		e := &best.entries[h]
		h++
		best.head = h
		if e.Send == best.rSend && !best.traced {
			renum := best.renum
			for p, end := best.rSeq, e.SeqHi; p < end; p++ {
				renum[p] = gseq
				gseq++
			}
			best.rSeq = e.SeqHi
		} else {
			gseq = c.replay(best, e, gseq)
		}
		if h < len(best.entries) {
			best.headM = c.mergeKey(best, &best.entries[h])
		} else {
			best.headM = ^uint64(0)
		}
	}
	c.gseq = gseq
	// Renumber the overflow heap (and the wheel buckets sharing a cycle
	// with its in-horizon residents): serial-keyed injections can land
	// there, and a same-cycle tie against a still-provisional seq would
	// break the serial order. The per-shard renumbering is strictly
	// increasing, so the mapping preserves chain and heap order.
	for _, sh := range parts {
		sh.eng.RekeyOverflow(provSeqBase, sh.renum)
		sh.entries = sh.entries[:0]
		sh.sends = sh.sends[:0]
		sh.stage.Reset()
		sh.head = 0
		sh.sendN = 0
		sh.batchSeq = uint32(sh.eng.Seq() - provSeqBase)
	}
	// Batched reservation pass: all of the batch's remote routes cross the
	// global mesh in merged order, so link contention resolves exactly as
	// in the serial run.
	for i := range c.routes {
		r := &c.routes[i]
		r.at = c.mesh.ReserveRoute(r.at, int(r.src), int(r.dst), r.class, int(r.flits))
	}
	// Renumber every bucket a delivery lands in before injecting any of
	// them: once a serial-keyed delivery is placed in a chain, mapping a
	// provisional neighbor to a smaller serial seq afterwards would leave
	// the chain unsorted.
	var lastD *shard
	var lastAt sim.Time
	for i := range c.routes {
		r := &c.routes[i]
		d := c.shards[c.owner[r.dst]]
		if d == lastD && r.at == lastAt {
			continue // bucket already renumbered for this batch
		}
		lastD, lastAt = d, r.at
		d.eng.RekeyBucket(r.at, provSeqBase, d.renum)
	}
	// Inject each delivery under its serial seq; chainInsert's positional
	// walk places it among the (now serial-keyed) same-cycle events.
	for i := range c.routes {
		r := &c.routes[i]
		d := c.shards[c.owner[r.dst]]
		save := d.eng.Seq()
		d.eng.SetSeq(r.gseq)
		d.m.InjectDeliver(r.at, r.msg)
		d.eng.SetSeq(save)
		if r.at < d.nextAt {
			d.nextAt = r.at
		}
	}
	c.routes = c.routes[:0]
}

// mergeKey resolves e's packed merge key (cycle<<32 | serial seq). A
// provisional key is always resolvable: its parent replayed earlier on the
// same shard — this commit or a previous one; the renum table spans the
// run — and wrote the slot.
//
//puno:hot
func (c *Coordinator) mergeKey(sh *shard, e *entry) uint64 {
	k := uint64(e.Key)
	if e.Key&provFlag != 0 {
		k = sh.renum[e.Key&^provFlag]
		if k == 0 {
			panic("pdes: provisional seq unresolved at merge head")
		}
	}
	return uint64(e.At)<<32 | k
}

// growRenum extends sh's run-lifetime provisional→serial table to cover
// every seq the engine has handed out. The table persists across commits —
// each slot is written exactly once, by the replay of the entry that
// consumed the seq — so growth only ever exposes fresh (zeroed) slots.
// Kept out of the hot merge path: it may allocate on growth.
func (c *Coordinator) growRenum(sh *shard) {
	n := int(sh.eng.Seq() - provSeqBase)
	if n <= len(sh.renum) {
		return
	}
	if cap(sh.renum) >= n {
		// No clear: every slot in the extension is written by this
		// commit's replay before anything reads it (the batch's entry
		// spans cover all seqs the engine handed out).
		sh.renum = sh.renum[:n]
		return
	}
	grown := make([]uint64, n, 2*n)
	copy(grown, sh.renum)
	sh.renum = grown
}

// replay applies one committed entry: forward its staged emissions to the
// run's real sink, then reconstruct its schedule/send interleaving from
// the recorded seq-counter marks, handing each effect the next global
// sequence number exactly as the serial engine would — schedules fill the
// run-lifetime renum table, sends join the batched reservation pass.
//
//puno:hot
func (c *Coordinator) replay(sh *shard, e *entry, gseq uint64) uint64 {
	if c.sink != nil {
		evs := sh.stage.Events()
		for _, ev := range evs[sh.rEmit:e.Emit] {
			c.sink.Emit(ev)
		}
		sh.rEmit = e.Emit
	}
	p := uint64(sh.rSeq)
	end := uint64(e.SeqHi)
	for i := sh.rSend; i < e.Send; i++ {
		s := &sh.sends[i]
		sAt := s.seqAt - provSeqBase
		for p < sAt {
			sh.renum[p] = gseq
			gseq++
			p++
		}
		c.routes = append(c.routes, route{
			msg: s.msg, at: sim.Time(e.At), gseq: gseq,
			src: s.src, dst: s.dst, class: s.class, flits: s.flits,
		})
		gseq++
	}
	sh.rSend = e.Send
	for p < end {
		sh.renum[p] = gseq
		gseq++
		p++
	}
	sh.rSeq = e.SeqHi
	return gseq
}
