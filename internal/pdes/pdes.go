// Package pdes runs one simulated machine across several worker goroutines
// — conservative parallel discrete-event simulation over the mesh — while
// reproducing the serial run bit for bit.
//
// # Topology and lookahead
//
// The machine's nodes are split into contiguous ranges (horizontal mesh
// regions: node ids are row-major, so a contiguous id range is a band of
// rows). Each shard is an ordinary machine.Machine owning its range: local
// controllers, a private event engine and two-level wheel, and a private
// mesh instance that carries only node-local (src == dst) messages. Every
// remote message instead crosses the one coordinator-owned global mesh,
// whose link state all remote traffic contends on exactly as in a serial
// run.
//
// Shards advance in bounded windows. With L = Mesh.MinRemoteLatency() — the
// cheapest possible remote delivery: two router pipelines plus one link
// crossing — a message sent at cycle t cannot arrive before t+L, so events
// in [T, T+L) (T = the earliest pending event across shards) are closed
// under cross-shard influence: nothing a shard does inside the window can
// schedule work for another shard inside it. Each window, every shard with
// an event in range executes its local events in parallel with the others;
// staged remote sends are then routed and injected at the barrier. No
// rollback is ever needed.
//
// # Bit-determinism: the (cycle, seq) merge
//
// The serial engine executes events in (time, sequence) order, and every
// observable — results, event traces, RNG draws — inherits that order. The
// coordinator reproduces it exactly:
//
//   - Events executed inside a window are recorded per shard as entries in
//     local execution order, which is (time, seq) order for that shard's
//     queue. A window commit k-way merges the shards' entry queues by
//     (cycle, serial seq) and replays each entry's effects — event-sink
//     emissions, and the sends/schedules it performed — in merged order.
//
//   - A schedule that happens during a window gets a provisional sequence
//     (the shard engine's counter starts each run at 1<<62, above any
//     serial seq). The commit replay assigns the true serial sequence:
//     walking entries in serial order, every schedule and every remote
//     send consumes the next global sequence number exactly as the serial
//     engine would have, and the provisional event is rekeyed in place
//     (Engine.Rekey) to its serial seq. A renumber table (provisional →
//     serial) resolves provisional seqs still sitting in merge entries.
//     A provisional entry's scheduling parent always executed earlier on
//     the same shard (live schedules are shard-local), so its serial seq
//     is known before the entry reaches its queue head — the merge never
//     stalls.
//
//   - Remote sends are staged, not delivered: the commit replays them in
//     serial order through Mesh.ReserveRoute on the global mesh (link
//     contention resolves serially) and injects the delivery into the
//     destination shard with the serial sequence number. The injection
//     time t ≥ send + L ≥ the window end, so it never lands in a shard's
//     already-executed past.
//
// Window execution is parallel but each shard touches only its own state;
// the line interner is the one shared structure (mutex-guarded assignment,
// lock-free LineAt over a pre-sized table — see mem.Interner.SetShared).
// Raw LineIDs depend on cross-shard interleaving, so they never escape:
// trace serialization renumbers them into emission order
// (trace.EventTrace.Normalized), under which a sharded capture is
// byte-identical to the serial one.
package pdes

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/sim"
)

// provSeqBase is where every shard engine's sequence counter starts after
// node-start events are seeded: far above any serial sequence number, so a
// provisional seq is recognizable and — because pre-window events sort
// before same-cycle in-window schedules in the serial order too — sorts
// correctly even before renumbering.
const provSeqBase = uint64(1) << 62

// op records one side effect of an executed event, in program order: a
// schedule performed on the shard engine (msg nil: the event id and its
// provisional seq) or a staged remote send (msg non-nil). One interleaved
// list per shard, because the serial engine hands out sequence numbers to
// schedules and send deliveries in exactly the order the handler makes
// them.
type op struct {
	msg *coherence.Msg
	id  sim.EventID
	seq uint64
}

// entry is one executed event in a shard's window: when it ran, the seq it
// ran under (serial, or provisional if scheduled this window), and its
// slices of the shard's staged emissions and ops.
type entry struct {
	at             sim.Time
	seq            uint64
	emitLo, emitHi int32
	opLo, opHi     int32
}

// shard is one worker's slice of the machine plus its window scratch.
type shard struct {
	m       *machine.Machine
	eng     *sim.Engine
	lo, hi  int
	stage   probe.Buffer // window-local event-sink staging
	entries []entry
	ops     []op
	renum   []uint64 // provisional seq - winBase → serial seq (0 = unset)
	winBase uint64   // engine seq counter at window start
	head    int      // commit cursor into entries
	headAt  sim.Time // cached merge key of entries[head] (resolved)
	headKey uint64
	obs     func(id sim.EventID, at sim.Time, seq uint64)
	xsend   func(*coherence.Msg)
	work    chan sim.Time
	done    chan struct{}
}

// Coordinator owns a sharded machine: the shard set, the global mesh, the
// shared interner, and the window loop. Like machine.Machine it is a
// reusable arena: Reset rebuilds it for a new (cfg, wl) retaining every
// allocation, and a fresh and a reused coordinator run identically.
type Coordinator struct {
	cfg     machine.Config
	wl      machine.Workload
	it      *mem.Interner
	mesh    *noc.Mesh // global link state; remote traffic and stats
	meshEng *sim.Engine
	sink    probe.Sink
	shards  []*shard
	owner   []int32 // node id → shard index
	gseq    uint64

	// Scratch reused across windows / runs.
	parts   []*shard
	results []*machine.Result
}

// Eligible reports whether cfg/wl can run under the coordinator. Ineligible
// configurations (serial-only observables, schemes with cross-node shared
// state, workloads whose footprint cannot be pre-sized, or a degenerate
// zero-latency mesh that voids the lookahead bound) fall back to the serial
// path; callers dispatch with this predicate so sharding is never
// observable, only faster.
func Eligible(cfg machine.Config, wl machine.Workload) bool {
	if cfg.Shards <= 1 {
		return false
	}
	if cfg.SampleInterval > 0 || cfg.TraceFn != nil {
		return false
	}
	if cfg.Scheme == machine.SchemeATS {
		return false
	}
	if cfg.Mesh.MinRemoteLatency() < 1 {
		return false
	}
	if _, ok := wl.(machine.FootprintHinter); !ok {
		return false
	}
	return true
}

// New builds a coordinator for cfg (whose Shards must be > 1 and Eligible
// must accept) running wl.
func New(cfg machine.Config, wl machine.Workload) (*Coordinator, error) {
	c := &Coordinator{}
	if err := c.Reset(cfg, wl); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset rebuilds the coordinator for (cfg, wl), reusing shard machines,
// engines, meshes, and scratch — the sharded counterpart of Machine.Reset,
// with the same guarantee: a reused coordinator is indistinguishable from a
// fresh one. Reset may be called in any state, including after a failed or
// hung run.
func (c *Coordinator) Reset(cfg machine.Config, wl machine.Workload) error {
	if !Eligible(cfg, wl) {
		return fmt.Errorf("pdes: configuration is not shardable (Shards=%d, scheme=%v)", cfg.Shards, cfg.Scheme)
	}
	nsh := cfg.Shards
	if nsh > cfg.Nodes {
		nsh = cfg.Nodes
	}
	c.cfg, c.wl = cfg, wl
	c.sink = cfg.EventSink
	c.gseq = 0

	if c.it == nil {
		c.it = mem.NewInterner()
	}
	// Reset and pre-size serially, then arm for shared use: LineAt stays
	// lock-free only because the table never grows past the footprint hint
	// while shards run.
	c.it.SetShared(false)
	c.it.Reset()
	c.it.Grow(wl.(machine.FootprintHinter).FootprintLines(cfg.Nodes))
	c.it.SetShared(true)

	if c.meshEng == nil {
		c.meshEng = sim.NewEngine()
	} else {
		c.meshEng.Reset()
	}
	if c.mesh == nil {
		c.mesh = noc.New(cfg.Mesh, c.meshEng)
	} else {
		c.mesh.Reset(cfg.Mesh, c.meshEng)
	}

	if len(c.shards) != nsh {
		c.shards = make([]*shard, nsh)
		for i := range c.shards {
			sh := &shard{}
			sh.obs = func(id sim.EventID, _ sim.Time, seq uint64) {
				sh.ops = append(sh.ops, op{id: id, seq: seq})
			}
			sh.xsend = func(msg *coherence.Msg) {
				sh.ops = append(sh.ops, op{msg: msg})
			}
			c.shards[i] = sh
		}
	}
	if cap(c.owner) < cfg.Nodes {
		c.owner = make([]int32, cfg.Nodes)
	}
	c.owner = c.owner[:cfg.Nodes]

	scfg := cfg
	for i, sh := range c.shards {
		sh.lo, sh.hi = i*cfg.Nodes/nsh, (i+1)*cfg.Nodes/nsh
		for n := sh.lo; n < sh.hi; n++ {
			c.owner[n] = int32(i)
		}
		sh.stage.Reset()
		sh.entries = sh.entries[:0]
		sh.ops = sh.ops[:0]
		sh.head = 0
		sh.winBase = 0
		if c.sink != nil {
			scfg.EventSink = &sh.stage
		} else {
			scfg.EventSink = nil
		}
		if sh.m == nil {
			m, err := machine.NewShard(scfg, wl, sh.lo, sh.hi, c.it, sh.xsend)
			if err != nil {
				return err
			}
			sh.m = m
		} else if err := sh.m.ResetShard(scfg, wl, sh.lo, sh.hi, c.it, sh.xsend); err != nil {
			return err
		}
		sh.eng = sh.m.Engine()
	}
	return nil
}

// LineTable returns the shared interner's lines in assignment order — the
// sharded counterpart of Machine.LineTable. Assignment order here is a
// cross-shard interleaving, so a trace built on this table must be
// normalized before it is compared or saved.
func (c *Coordinator) LineTable() []mem.Line {
	out := make([]mem.Line, c.it.Len())
	for i := range out {
		out[i] = c.it.LineAt(mem.LineID(i + 1))
	}
	return out
}

// Run executes the workload to completion and returns the measurements —
// the sharded Machine.Run. The merged Result and (normalized) event stream
// are bit-identical to the serial run's for any shard count.
func (c *Coordinator) Run() (*machine.Result, error) {
	// Seed node starts with their serial sequence numbers (the serial start
	// loop schedules node i's first fetch with seq i), then park each
	// engine's counter in the provisional range.
	for _, sh := range c.shards {
		for i := sh.lo; i < sh.hi; i++ {
			sh.eng.SetSeq(uint64(i))
			sh.m.StartNode(i)
		}
		sh.eng.SetSeq(provSeqBase)
	}
	c.gseq = uint64(c.cfg.Nodes)

	// Per-run workers: one goroutine per shard, handed one window at a
	// time. The channel pair gives the race detector (and the memory
	// model) the happens-before edges the barrier protocol relies on. The
	// defer joins the workers, not just signals them: an aborted run (hang,
	// handler error) must not leave a goroutine still touching shard state
	// when the caller Resets and Runs again.
	//
	// On a single-P runtime the workers cannot actually overlap, so every
	// window barrier would just be two scheduler round-trips per shard;
	// run the participants inline instead. Window execution is shard-local
	// and commit order is fixed by (cycle, seq), so which goroutine runs a
	// window cannot affect the output.
	inline := runtime.GOMAXPROCS(0) == 1
	var workers sync.WaitGroup
	if !inline {
		for _, sh := range c.shards {
			sh.work = make(chan sim.Time, 1)
			sh.done = make(chan struct{}, 1)
			workers.Add(1)
			go func(sh *shard) {
				defer workers.Done()
				for wend := range sh.work {
					runWindow(sh, wend)
					sh.done <- struct{}{}
				}
			}(sh)
		}
		defer func() {
			for _, sh := range c.shards {
				close(sh.work)
			}
			workers.Wait()
		}()
	}

	lookahead := c.mesh.MinRemoteLatency()
	maxC := c.cfg.MaxCycles
	hung := false
	for {
		t := sim.Infinity
		for _, sh := range c.shards {
			if at, _, ok := sh.eng.Peek(); ok && at < t {
				t = at
			}
		}
		if t == sim.Infinity {
			break // every queue drained
		}
		if t > maxC {
			hung = true // mirrors Engine.Run stopping at its limit
			break
		}
		wend := t + lookahead
		if wend > maxC+1 {
			wend = maxC + 1
		}
		parts := c.parts[:0]
		for _, sh := range c.shards {
			if at, _, ok := sh.eng.Peek(); ok && at < wend {
				parts = append(parts, sh)
			}
		}
		c.parts = parts
		if inline {
			for _, sh := range parts {
				runWindow(sh, wend)
			}
		} else {
			// Run the first participant inline; the rest on their workers.
			for _, sh := range parts[1:] {
				sh.work <- wend
			}
			runWindow(parts[0], wend)
			for _, sh := range parts[1:] {
				<-sh.done
			}
		}
		// A handler failure surfaces in shard order — window execution is
		// deterministic per shard, so the chosen error is too.
		for _, sh := range c.shards {
			if err := sh.m.RunErr(); err != nil {
				return nil, err
			}
		}
		c.commit(parts)
	}

	active := 0
	for _, sh := range c.shards {
		active += sh.m.Active()
	}
	if hung {
		if active > 0 {
			return nil, machine.ErrHung
		}
		// Threads all finished; whatever trails beyond MaxCycles is never
		// executed — exactly what the serial drain pass does at its limit.
	} else if active > 0 {
		return nil, fmt.Errorf("machine: %d threads stalled with an empty event queue (protocol deadlock)", active)
	}

	c.results = c.results[:0]
	for _, sh := range c.shards {
		c.results = append(c.results, sh.m.FinalizeShard())
	}
	return machine.MergeShardResults(c.wl.Name(), c.cfg.Scheme, c.cfg.Nodes, c.results, c.mesh.Stats()), nil
}

// runWindow executes one shard's events in [now, wend), recording an entry
// per event with its staged emissions and ops. Runs on the shard's worker
// goroutine; touches only shard-local state (plus the shared interner
// through the machine's handlers).
//
//puno:hot
func runWindow(sh *shard, wend sim.Time) {
	sh.entries = sh.entries[:0]
	sh.ops = sh.ops[:0]
	sh.head = 0
	sh.stage.Reset()
	sh.winBase = sh.eng.Seq()
	sh.eng.SetScheduleObserver(sh.obs)
	for {
		at, seq, ok := sh.eng.Peek()
		if !ok || at >= wend {
			break
		}
		e := entry{at: at, seq: seq, emitLo: int32(sh.stage.Len()), opLo: int32(len(sh.ops))}
		sh.eng.Step()
		e.emitHi = int32(sh.stage.Len())
		e.opHi = int32(len(sh.ops))
		sh.entries = append(sh.entries, e)
	}
	// The commit's InjectDeliver calls must not be recorded as ops.
	sh.eng.SetScheduleObserver(nil)
}

// commit merges the participants' window entries by (cycle, serial seq) and
// replays each in serial order. Single-threaded, after the window barrier.
//
// Each shard's next merge key is resolved once, when the entry reaches the
// shard's head (resolveHead), and cached — by then its scheduling parent
// (always an earlier entry of the same shard; schedules are shard-local)
// has been replayed, so the resolution is final and the scan loop is pure
// comparisons. Once a single shard remains its tail replays in entry
// order, no comparisons at all.
//
//puno:hot
func (c *Coordinator) commit(parts []*shard) {
	live := 0
	for _, sh := range parts {
		c.sizeRenum(sh)
		if c.resolveHead(sh) {
			live++
		}
	}
	for live > 1 {
		var best *shard
		for _, sh := range parts {
			if sh.head >= len(sh.entries) {
				continue
			}
			if best == nil || sh.headAt < best.headAt ||
				(sh.headAt == best.headAt && sh.headKey < best.headKey) {
				best = sh
			}
		}
		e := &best.entries[best.head]
		best.head++
		c.replay(best, e)
		if !c.resolveHead(best) {
			live--
		}
	}
	for _, sh := range parts {
		for sh.head < len(sh.entries) {
			e := &sh.entries[sh.head]
			sh.head++
			c.replay(sh, e)
		}
	}
}

// resolveHead caches sh's next merge key and reports whether entries
// remain. A provisional seq at the head is always resolvable: its parent
// committed earlier on the same shard and wrote the renum slot.
//
//puno:hot
func (c *Coordinator) resolveHead(sh *shard) bool {
	if sh.head >= len(sh.entries) {
		return false
	}
	e := &sh.entries[sh.head]
	key := e.seq
	if key >= provSeqBase {
		key = sh.renum[key-sh.winBase]
		if key == 0 {
			panic("pdes: provisional seq unresolved at merge head")
		}
	}
	sh.headAt, sh.headKey = e.at, key
	return true
}

// sizeRenum sizes and clears sh's provisional→serial table for the window
// just executed (kept out of the hot merge path: it may allocate on first
// growth).
func (c *Coordinator) sizeRenum(sh *shard) {
	n := int(sh.eng.Seq() - sh.winBase)
	if cap(sh.renum) < n {
		sh.renum = make([]uint64, n)
		return
	}
	sh.renum = sh.renum[:n]
	clear(sh.renum)
}

// replay applies one committed entry: forward its staged emissions to the
// run's real sink, then walk its ops in program order, handing each the
// next global sequence number exactly as the serial engine would — rekeying
// live schedules, and routing + injecting staged remote sends over the
// global mesh.
//
//puno:hot
func (c *Coordinator) replay(sh *shard, e *entry) {
	if c.sink != nil {
		evs := sh.stage.Events()
		for _, ev := range evs[e.emitLo:e.emitHi] {
			c.sink.Emit(ev)
		}
	}
	for i := e.opLo; i < e.opHi; i++ {
		o := &sh.ops[i]
		if o.msg == nil {
			sh.eng.Rekey(o.id, c.gseq)
			sh.renum[o.seq-sh.winBase] = c.gseq
		} else {
			at := c.mesh.ReserveRoute(e.at, o.msg.Src, o.msg.Dst, o.msg.Class(), o.msg.Flits())
			d := c.shards[c.owner[o.msg.Dst]]
			save := d.eng.Seq()
			d.eng.SetSeq(c.gseq)
			d.m.InjectDeliver(at, o.msg)
			d.eng.SetSeq(save)
		}
		c.gseq++
	}
}
