package pdes

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/machine"
)

// TestShardedWorkerGoroutinesMatchSerial forces the worker-goroutine path
// (the coordinator runs windows inline when GOMAXPROCS is 1, which it is on
// single-core CI) and certifies the barrier protocol end to end: a run
// executed by racing shard workers is value-identical to the serial run,
// and a second Run on the same coordinator — whose workers are per-Run and
// must be joined, not just signaled — reproduces it. The name contains
// "Sharded" so `make race-shards` exercises this under the race detector.
func TestShardedWorkerGoroutinesMatchSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	wl := testWL(t, "intruder", 4)
	cfg := machine.DefaultConfig()
	cfg.Scheme = machine.SchemePUNO
	cfg.Seed = 42

	m, err := machine.New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg.Shards = 4
	co, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("worker-goroutine run differs from serial:\n got: %+v\nwant: %+v", got, want)
	}

	if err := co.Reset(cfg, wl); err != nil {
		t.Fatal(err)
	}
	again, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("second worker-goroutine run differs from serial:\n got: %+v\nwant: %+v", again, want)
	}
}

// TestShardedCoalescedWindowsMatchSerial is the worker-goroutine run for
// the empty-window coalescing path: a low-contention RMW workload leaves
// many windows with no staged remote send, so consecutive windows run
// without a commit barrier between them — under -race (make race-shards)
// this certifies the deferred commit never lets a worker touch state the
// barrier was protecting. The test asserts coalescing actually fired, so
// a workload or lookahead change cannot quietly turn it vacuous.
func TestShardedCoalescedWindowsMatchSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	wl := testWL(t, "kmeans", 6)
	cfg := machine.DefaultConfig()
	cfg.Scheme = machine.SchemeBaseline
	cfg.Seed = 42

	m, err := machine.New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg.Shards = 4
	co, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if co.coalesced == 0 {
		t.Fatal("no send-free window skipped its commit: the coalescing path never ran")
	}
	t.Logf("%d windows coalesced", co.coalesced)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("coalesced-window run differs from serial:\n got: %+v\nwant: %+v", got, want)
	}
}
