package pdes

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/stamp"
)

func testWL(t *testing.T, name string, txper int) machine.Workload {
	t.Helper()
	wl, err := stamp.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return wl.WithTxPerCPU(txper)
}

// Sharded results must be value-identical to serial results, for any shard
// count. (Byte-identity of dumps and traces is certified by the root
// package's determinism suite; this is the fast inner check.)
func TestShardedMatchesSerialResult(t *testing.T) {
	for _, name := range []string{"kmeans", "intruder"} {
		for _, sch := range []machine.Scheme{machine.SchemeBaseline, machine.SchemeBackoff, machine.SchemePUNO} {
			wl := testWL(t, name, 4)
			cfg := machine.DefaultConfig()
			cfg.Scheme = sch
			cfg.Seed = 42

			m, err := machine.New(cfg, wl)
			if err != nil {
				t.Fatal(err)
			}
			want, err := m.Run()
			if err != nil {
				t.Fatalf("%s/%v serial: %v", name, sch, err)
			}

			for _, shards := range []int{2, 4} {
				scfg := cfg
				scfg.Shards = shards
				co, err := New(scfg, wl)
				if err != nil {
					t.Fatalf("%s/%v shards=%d: %v", name, sch, shards, err)
				}
				got, err := co.Run()
				if err != nil {
					t.Fatalf("%s/%v shards=%d: %v", name, sch, shards, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%v shards=%d: result differs\n got: %+v\nwant: %+v", name, sch, shards, got, want)
				}
			}
		}
	}
}
