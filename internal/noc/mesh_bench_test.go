package noc

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSend measures the per-message cost of the interconnect hot path
// — inline dimension-order route walk, contention accounting, closure-free
// delivery scheduling. Run with -benchmem: the zero-allocation claim of the
// simulation hot path starts here.
func BenchmarkSend(b *testing.B) {
	for _, bc := range []struct {
		name  string
		flits int
	}{
		{"control-1flit", 1},
		{"data-5flit", 5},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng := sim.NewEngine()
			m := New(DefaultConfig(), eng)
			n := m.Nodes()
			for i := 0; i < n; i++ {
				m.Attach(i, func(any) {})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Send(i%n, (i+5)%n, ClassRequest, bc.flits, nil)
				if i%1024 == 0 {
					eng.Run(sim.Infinity)
				}
			}
			eng.Run(sim.Infinity)
		})
	}
}

// BenchmarkSendLocal measures the node-local (src == dst) fast path.
func BenchmarkSendLocal(b *testing.B) {
	eng := sim.NewEngine()
	m := New(DefaultConfig(), eng)
	m.Attach(3, func(any) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(3, 3, ClassResponse, 1, nil)
		if i%1024 == 0 {
			eng.Run(sim.Infinity)
		}
	}
	eng.Run(sim.Infinity)
}

// BenchmarkAverageLatency exercises the memoized topology summary the
// machine constructor consults (previously O(n²) per call).
func BenchmarkAverageLatency(b *testing.B) {
	m := New(DefaultConfig(), sim.NewEngine())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AverageLatency(5)
	}
}
