// Package noc models the on-chip interconnect: a 2D mesh with
// dimension-order routing, a fixed router pipeline depth, per-link
// serialization with contention, and flit-level traffic accounting. The
// model reproduces the quantities the paper measures — end-to-end message
// latency (which drives polling and backoff behaviour) and "router
// traversals by all network flits" (the Fig. 11 traffic metric) — without
// simulating individual flit hops, which would dominate simulation time
// while adding nothing to the studied effects.
package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Class is the virtual-network class of a message. Separate classes mirror
// the request/forward/response virtual channels a deadlock-free directory
// protocol requires, and let the traffic report break flit-hops down by
// message role.
type Class int

// Message classes.
const (
	ClassRequest  Class = iota // GETS/GETX from L1 to directory
	ClassForward               // directory-to-sharer forwards and invalidations
	ClassResponse              // data, ACK, NACK, UNBLOCK
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassForward:
		return "forward"
	case ClassResponse:
		return "response"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config holds mesh timing parameters. The defaults (DefaultConfig) follow
// the paper's Table II: a 4x4 mesh of 4-stage routers with single-cycle
// links.
type Config struct {
	Width, Height int
	RouterStages  sim.Time // pipeline depth of one router
	LinkCycles    sim.Time // cycles for one flit to cross one link
	LocalCycles   sim.Time // latency of a node-local (src == dst) message
}

// DefaultConfig is the paper's 16-node mesh.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, RouterStages: 4, LinkCycles: 1, LocalCycles: 1}
}

// Handler receives a delivered message payload at a node.
type Handler func(payload any)

// Stats aggregates network accounting for one run.
type Stats struct {
	Messages        [numClasses]uint64 // messages sent per class
	Flits           [numClasses]uint64 // flits injected per class
	RouterTraversal [numClasses]uint64 // flits x routers visited per class
	TotalLatency    uint64             // sum of end-to-end latencies (cycles)
	QueueingDelay   uint64             // portion of latency due to link contention
}

// TotalTraversals returns the Fig. 11 metric: router traversals summed over
// every flit of every class.
func (s Stats) TotalTraversals() uint64 {
	var t uint64
	for _, v := range s.RouterTraversal {
		t += v
	}
	return t
}

// Accumulate adds o's counters into s — merging one shard's local-traffic
// statistics into the global mesh's routed-traffic statistics when a
// sharded run folds its Result.
func (s *Stats) Accumulate(o Stats) {
	for c := range s.Messages {
		s.Messages[c] += o.Messages[c]
		s.Flits[c] += o.Flits[c]
		s.RouterTraversal[c] += o.RouterTraversal[c]
	}
	s.TotalLatency += o.TotalLatency
	s.QueueingDelay += o.QueueingDelay
}

// TotalMessages returns messages sent across all classes.
func (s Stats) TotalMessages() uint64 {
	var t uint64
	for _, v := range s.Messages {
		t += v
	}
	return t
}

// Mesh is the interconnect instance. It is wired to a sim.Engine at
// construction; Send computes the delivery time of a message and schedules
// the destination handler. Delivery is closure-free: the mesh itself is the
// sim.Handler for its in-flight messages, carrying the destination node in
// the event's payload word, so a Send performs no heap allocation.
type Mesh struct {
	cfg      Config
	eng      *sim.Engine
	handlers []Handler
	// linkFree[l] is the earliest cycle at which directed link l can begin
	// serializing another message's flits.
	linkFree []sim.Time
	stats    Stats

	// avgHops memoizes AverageHops (O(n²) to compute; consulted per
	// machine construction and per AverageLatency call).
	avgHops     float64
	avgHopsDone bool
}

// New returns a mesh attached to eng. Node handlers start nil; Attach must
// be called for every node that can receive.
func New(cfg Config, eng *sim.Engine) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("noc: non-positive mesh dimensions")
	}
	n := cfg.Width * cfg.Height
	return &Mesh{
		cfg:      cfg,
		eng:      eng,
		handlers: make([]Handler, n),
		// 4 directed links per node is an upper bound (E,W,N,S).
		linkFree: make([]sim.Time, n*4),
	}
}

// Reset returns the mesh to the state New(cfg, eng) would produce, reusing
// the handler and link arrays (and the AverageHops memo) when the topology
// is unchanged. Handlers are cleared either way: the machine re-Attaches
// every node during its own reset, so a stale handler can never be invoked.
func (m *Mesh) Reset(cfg Config, eng *sim.Engine) {
	if cfg.Width != m.cfg.Width || cfg.Height != m.cfg.Height {
		*m = *New(cfg, eng)
		return
	}
	m.cfg = cfg
	m.eng = eng
	clear(m.handlers)
	clear(m.linkFree)
	m.stats = Stats{}
}

// Nodes returns the number of nodes in the mesh.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// Attach registers the receive handler for node id.
func (m *Mesh) Attach(id int, h Handler) {
	m.handlers[id] = h
}

// OnEvent implements sim.Handler: deliver an in-flight message (arg) to the
// destination node carried in the payload word.
func (m *Mesh) OnEvent(arg any, word uint64) {
	m.handlers[word](arg)
}

// Stats returns a snapshot of the accumulated network statistics.
func (m *Mesh) Stats() Stats { return m.stats }

// ResetStats clears the accumulated statistics (the warm-up discard used by
// the experiment harness).
func (m *Mesh) ResetStats() { m.stats = Stats{} }

func (m *Mesh) xy(id int) (x, y int) { return id % m.cfg.Width, id / m.cfg.Width }

// direction indices for the per-node directed output links.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

func (m *Mesh) linkIndex(node, dir int) int { return node*4 + dir }

// Route returns the sequence of (node, outDir) hops a message takes from
// src to dst under X-then-Y dimension-order routing. An empty slice means a
// node-local message.
func (m *Mesh) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	sx, sy := m.xy(src)
	dx, dy := m.xy(dst)
	var links []int
	x, y := sx, sy
	for x != dx {
		if x < dx {
			links = append(links, m.linkIndex(y*m.cfg.Width+x, dirEast))
			x++
		} else {
			links = append(links, m.linkIndex(y*m.cfg.Width+x, dirWest))
			x--
		}
	}
	for y != dy {
		if y < dy {
			links = append(links, m.linkIndex(y*m.cfg.Width+x, dirSouth))
			y++
		} else {
			links = append(links, m.linkIndex(y*m.cfg.Width+x, dirNorth))
			y--
		}
	}
	return links
}

// Hops returns the Manhattan distance between src and dst.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.xy(src)
	dx, dy := m.xy(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// AverageHops returns the mean Manhattan distance over all ordered pairs of
// distinct nodes. PUNO uses it to derive the average cache-to-cache latency
// for the notification guard band. The O(n²) scan runs once; the result is
// memoized (the topology is fixed at construction).
func (m *Mesh) AverageHops() float64 {
	if m.avgHopsDone {
		return m.avgHops
	}
	n := m.Nodes()
	total, pairs := 0, 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			total += m.Hops(s, d)
			pairs++
		}
	}
	m.avgHops = float64(total) / float64(pairs)
	m.avgHopsDone = true
	return m.avgHops
}

// AverageLatency returns the uncontended end-to-end latency of a f-flit
// message over the average-hop path, in cycles. O(1) after the first call
// thanks to the AverageHops memo.
func (m *Mesh) AverageLatency(flits int) sim.Time {
	h := sim.Time(m.AverageHops() + 0.5)
	// Per hop: router pipeline + link; plus serialization of the tail flits.
	return (h+1)*m.cfg.RouterStages + h*m.cfg.LinkCycles + sim.Time(flits-1)
}

// Send injects a message of the given class and flit count from src to dst
// and schedules handler(dst) at its delivery time. The delivery time
// accounts for router pipeline depth, link serialization of all flits, and
// queueing when a link is busy with earlier traffic.
//
//puno:hot
func (m *Mesh) Send(src, dst int, class Class, flits int, payload any) {
	if flits <= 0 {
		panic("noc: message with no flits")
	}
	h := m.handlers[dst]
	if h == nil {
		panic(fmt.Sprintf("noc: no handler attached at node %d", dst))
	}
	m.stats.Messages[class]++
	m.stats.Flits[class] += uint64(flits)

	now := m.eng.Now()
	if src == dst {
		m.stats.TotalLatency += uint64(m.cfg.LocalCycles)
		m.eng.AfterEvent(m.cfg.LocalCycles, m, payload, uint64(dst))
		return
	}
	t := m.route(now, src, dst, class, flits)
	m.eng.AtEvent(t, m, payload, uint64(dst))
}

// route walks the X-then-Y dimension-order path from src to dst (src != dst),
// reserving each link for the message's flits and accumulating the routed
// traffic statistics. It returns the head message's delivery time. Link
// reservations mutate shared mesh state, so calls must happen in the
// simulation's serial order.
//
//puno:hot
func (m *Mesh) route(now sim.Time, src, dst int, class Class, flits int) sim.Time {
	// Walk the route inline (same hop sequence Route returns, without
	// materializing it), threading the head-flit arrival time through each
	// router and link.
	sx, sy := m.xy(src)
	dx, dy := m.xy(dst)
	t := now + m.cfg.RouterStages // source router pipeline
	var queueing sim.Time
	hops := 0
	x, y := sx, sy
	for x != dx || y != dy {
		var link int
		switch {
		case x < dx:
			link = m.linkIndex(y*m.cfg.Width+x, dirEast)
			x++
		case x > dx:
			link = m.linkIndex(y*m.cfg.Width+x, dirWest)
			x--
		case y < dy:
			link = m.linkIndex(y*m.cfg.Width+x, dirSouth)
			y++
		default:
			link = m.linkIndex(y*m.cfg.Width+x, dirNorth)
			y--
		}
		depart := t
		if m.linkFree[link] > depart {
			queueing += m.linkFree[link] - depart
			depart = m.linkFree[link]
		}
		// The link serializes all flits of this message.
		m.linkFree[link] = depart + sim.Time(flits)*m.cfg.LinkCycles
		// Head flit reaches the next router, then traverses its pipeline.
		t = depart + m.cfg.LinkCycles + m.cfg.RouterStages
		hops++
	}
	// Tail flit trails the head by (flits-1) cycles at the destination.
	t += sim.Time(flits-1) * m.cfg.LinkCycles

	// Every flit visits every router on the path (hops+1 routers).
	m.stats.RouterTraversal[class] += uint64(flits) * uint64(hops+1)
	m.stats.TotalLatency += uint64(t - now)
	m.stats.QueueingDelay += uint64(queueing)
	return t
}

// ReserveRoute performs the accounting half of Send for a remote message
// (src != dst) injected at cycle `now`, without scheduling a delivery: link
// reservations, per-class message/flit counts, and latency statistics. It
// returns the delivery time for the caller to schedule itself. The sharded
// coordinator replays staged cross-shard sends through it in serial order
// so link contention resolves exactly as in a serial run.
//
//puno:hot
func (m *Mesh) ReserveRoute(now sim.Time, src, dst int, class Class, flits int) sim.Time {
	if flits <= 0 {
		panic("noc: message with no flits")
	}
	m.stats.Messages[class]++
	m.stats.Flits[class] += uint64(flits)
	return m.route(now, src, dst, class, flits)
}

// MinRemoteLatency returns the minimum end-to-end latency of any remote
// (src != dst) message under c: one hop, one flit, no queueing — source
// router pipeline, one link crossing, destination router pipeline. Queueing
// and extra flits or hops only add to it, so it is a sound conservative
// lookahead bound for windowed parallel simulation.
func (c Config) MinRemoteLatency() sim.Time {
	return 2*c.RouterStages + c.LinkCycles
}

// MinRemoteLatency returns the mesh's conservative remote-delivery bound;
// see Config.MinRemoteLatency.
func (m *Mesh) MinRemoteLatency() sim.Time { return m.cfg.MinRemoteLatency() }
