package noc

import (
	"testing"

	"repro/internal/sim"
)

// ReserveRoute is the accounting half of Send: for the same traffic in the
// same order it must reserve the same link schedule, charge the same
// statistics, and return exactly the delivery time Send would schedule.
func TestReserveRouteMatchesSend(t *testing.T) {
	cfg := DefaultConfig()
	sends := []struct {
		src, dst int
		class    Class
		flits    int
	}{
		{0, 15, ClassRequest, 1},
		{0, 15, ClassResponse, 5}, // same route: must queue behind the first
		{15, 0, ClassForward, 1},
		{5, 6, ClassResponse, 2},
	}

	engA := sim.NewEngine()
	meshA := New(cfg, engA)
	arrival := make(map[int]sim.Time)
	for i := 0; i < meshA.Nodes(); i++ {
		i := i
		meshA.Attach(i, func(payload any) { arrival[payload.(int)] = engA.Now() })
	}
	for i, s := range sends {
		meshA.Send(s.src, s.dst, s.class, s.flits, i)
	}
	engA.Run(sim.Infinity)

	engB := sim.NewEngine()
	meshB := New(cfg, engB)
	for i, s := range sends {
		at := meshB.ReserveRoute(engB.Now(), s.src, s.dst, s.class, s.flits)
		if want := arrival[i]; at != want {
			t.Errorf("ReserveRoute(#%d %d->%d) = %d, want Send's delivery time %d", i, s.src, s.dst, at, want)
		}
	}
	if meshA.Stats() != meshB.Stats() {
		t.Errorf("statistics diverged:\nSend:         %+v\nReserveRoute: %+v", meshA.Stats(), meshB.Stats())
	}
}

func TestReserveRouteRejectsZeroFlits(t *testing.T) {
	m := New(DefaultConfig(), sim.NewEngine())
	defer func() {
		if recover() == nil {
			t.Fatal("ReserveRoute with zero flits did not panic")
		}
	}()
	m.ReserveRoute(0, 0, 1, ClassRequest, 0)
}

func TestMinRemoteLatency(t *testing.T) {
	cfg := DefaultConfig()
	want := 2*cfg.RouterStages + cfg.LinkCycles
	if got := cfg.MinRemoteLatency(); got != want {
		t.Fatalf("Config.MinRemoteLatency = %d, want %d", got, want)
	}
	m := New(cfg, sim.NewEngine())
	if got := m.MinRemoteLatency(); got != want {
		t.Fatalf("Mesh.MinRemoteLatency = %d, want %d", got, want)
	}
	// The bound is achieved by a one-hop single-flit message on idle links
	// and is a floor for everything else.
	if got := m.ReserveRoute(0, 0, 1, ClassRequest, 1); got != want {
		t.Fatalf("one-hop single-flit delivery at %d, want the bound %d", got, want)
	}
	if got := m.ReserveRoute(0, 0, 15, ClassResponse, 5); got < want {
		t.Fatalf("multi-hop delivery at %d, below the claimed minimum %d", got, want)
	}
}

func TestStatsAccumulate(t *testing.T) {
	var a, b Stats
	for c := 0; c < len(a.Messages); c++ {
		a.Messages[c] = uint64(c + 1)
		a.Flits[c] = uint64(10 * (c + 1))
		a.RouterTraversal[c] = uint64(100 * (c + 1))
		b.Messages[c] = 1
		b.Flits[c] = 2
		b.RouterTraversal[c] = 3
	}
	a.TotalLatency, a.QueueingDelay = 50, 5
	b.TotalLatency, b.QueueingDelay = 7, 1
	a.Accumulate(b)
	for c := 0; c < len(a.Messages); c++ {
		if a.Messages[c] != uint64(c+2) || a.Flits[c] != uint64(10*(c+1)+2) || a.RouterTraversal[c] != uint64(100*(c+1)+3) {
			t.Fatalf("class %d accumulated wrong: %+v", c, a)
		}
	}
	if a.TotalLatency != 57 || a.QueueingDelay != 6 {
		t.Fatalf("latency accumulated wrong: total=%d queueing=%d", a.TotalLatency, a.QueueingDelay)
	}
}

func TestMeshReset(t *testing.T) {
	cfg := DefaultConfig()
	eng := sim.NewEngine()
	m := New(cfg, eng)
	m.Attach(0, func(any) {})
	m.ReserveRoute(0, 0, 1, ClassRequest, 1)

	// Same topology: arrays reused, state cleared.
	m.Reset(cfg, eng)
	if m.Stats() != (Stats{}) {
		t.Fatalf("Reset left statistics: %+v", m.Stats())
	}
	if got := m.ReserveRoute(0, 0, 1, ClassRequest, 1); got != cfg.MinRemoteLatency() {
		t.Fatalf("link state survived Reset: delivery at %d, want %d", got, cfg.MinRemoteLatency())
	}

	// Different topology: full rebuild.
	small := cfg
	small.Width, small.Height = 2, 1
	m.Reset(small, eng)
	if m.Nodes() != 2 {
		t.Fatalf("Reset to 2x1 left %d nodes", m.Nodes())
	}
}
