package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTestMesh(t *testing.T) (*Mesh, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	m := New(DefaultConfig(), eng)
	return m, eng
}

func TestRouteLength(t *testing.T) {
	m, _ := newTestMesh(t)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			r := m.Route(src, dst)
			if len(r) != m.Hops(src, dst) {
				t.Errorf("route %d->%d has %d links, want %d hops", src, dst, len(r), m.Hops(src, dst))
			}
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	m, _ := newTestMesh(t)
	a := m.Route(0, 15)
	b := m.Route(0, 15)
	if len(a) != len(b) {
		t.Fatal("same route computed different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("route not deterministic")
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	m, _ := newTestMesh(t)
	f := func(s, d uint8) bool {
		src, dst := int(s)%16, int(d)%16
		return m.Hops(src, dst) == m.Hops(dst, src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsCorners(t *testing.T) {
	m, _ := newTestMesh(t)
	// Node 0 is (0,0), node 15 is (3,3) in a 4x4 mesh.
	if h := m.Hops(0, 15); h != 6 {
		t.Fatalf("Hops(0,15) = %d, want 6", h)
	}
	if h := m.Hops(0, 0); h != 0 {
		t.Fatalf("Hops(0,0) = %d, want 0", h)
	}
	if h := m.Hops(0, 1); h != 1 {
		t.Fatalf("Hops(0,1) = %d, want 1", h)
	}
}

func TestSendDeliversPayload(t *testing.T) {
	m, eng := newTestMesh(t)
	var got any
	m.Attach(5, func(p any) { got = p })
	m.Attach(0, func(p any) {})
	m.Send(0, 5, ClassRequest, 1, "hello")
	eng.Run(sim.Infinity)
	if got != "hello" {
		t.Fatalf("payload = %v, want hello", got)
	}
}

func TestSendLatencyUncontended(t *testing.T) {
	m, eng := newTestMesh(t)
	var at sim.Time
	m.Attach(1, func(any) { at = eng.Now() })
	m.Send(0, 1, ClassRequest, 1, nil)
	eng.Run(sim.Infinity)
	// 1 hop: src router (4) + link (1) + dst router (4) = 9 cycles.
	if at != 9 {
		t.Fatalf("1-hop 1-flit latency = %d, want 9", at)
	}
}

func TestSendMultiFlitSerialization(t *testing.T) {
	m, eng := newTestMesh(t)
	var at sim.Time
	m.Attach(1, func(any) { at = eng.Now() })
	m.Send(0, 1, ClassResponse, 5, nil)
	eng.Run(sim.Infinity)
	// Head arrives at 9, tail 4 cycles later.
	if at != 13 {
		t.Fatalf("1-hop 5-flit latency = %d, want 13", at)
	}
}

func TestSendLocalLatency(t *testing.T) {
	m, eng := newTestMesh(t)
	var at sim.Time
	m.Attach(3, func(any) { at = eng.Now() })
	m.Send(3, 3, ClassRequest, 1, nil)
	eng.Run(sim.Infinity)
	if at != 1 {
		t.Fatalf("local latency = %d, want 1", at)
	}
}

func TestSendContentionDelaysSecondMessage(t *testing.T) {
	m, eng := newTestMesh(t)
	var first, second sim.Time
	n := 0
	m.Attach(1, func(any) {
		n++
		if n == 1 {
			first = eng.Now()
		} else {
			second = eng.Now()
		}
	})
	// Two 5-flit messages over the same link at the same cycle: the second
	// must queue behind the first's serialization.
	m.Send(0, 1, ClassResponse, 5, nil)
	m.Send(0, 1, ClassResponse, 5, nil)
	eng.Run(sim.Infinity)
	if second <= first {
		t.Fatalf("second delivery %d not after first %d", second, first)
	}
	if second-first != 5 {
		t.Fatalf("second trails first by %d, want 5 (flit serialization)", second-first)
	}
	st := m.Stats()
	if st.QueueingDelay == 0 {
		t.Fatal("expected nonzero queueing delay")
	}
}

func TestDisjointPathsNoContention(t *testing.T) {
	m, eng := newTestMesh(t)
	var at0, at1 sim.Time
	m.Attach(1, func(any) { at0 = eng.Now() })
	m.Attach(7, func(any) { at1 = eng.Now() })
	m.Send(0, 1, ClassRequest, 5, nil) // (0,0)->(1,0)
	m.Send(6, 7, ClassRequest, 5, nil) // (2,1)->(3,1)
	eng.Run(sim.Infinity)
	if at0 != at1 {
		t.Fatalf("disjoint paths delivered at %d and %d, want equal", at0, at1)
	}
	if m.Stats().QueueingDelay != 0 {
		t.Fatalf("queueing on disjoint paths = %d, want 0", m.Stats().QueueingDelay)
	}
}

func TestTraversalAccounting(t *testing.T) {
	m, eng := newTestMesh(t)
	m.Attach(3, func(any) {})
	m.Send(0, 3, ClassForward, 2, nil) // 3 hops -> 4 routers, 2 flits
	eng.Run(sim.Infinity)
	st := m.Stats()
	if got := st.RouterTraversal[ClassForward]; got != 8 {
		t.Fatalf("traversals = %d, want 8", got)
	}
	if st.TotalTraversals() != 8 {
		t.Fatalf("TotalTraversals = %d, want 8", st.TotalTraversals())
	}
	if st.Messages[ClassForward] != 1 || st.Flits[ClassForward] != 2 {
		t.Fatalf("message/flit accounting wrong: %+v", st)
	}
}

func TestLocalMessageCountsNoTraversal(t *testing.T) {
	m, eng := newTestMesh(t)
	m.Attach(3, func(any) {})
	m.Send(3, 3, ClassRequest, 1, nil)
	eng.Run(sim.Infinity)
	if got := m.Stats().TotalTraversals(); got != 0 {
		t.Fatalf("local message traversals = %d, want 0", got)
	}
}

func TestResetStats(t *testing.T) {
	m, eng := newTestMesh(t)
	m.Attach(1, func(any) {})
	m.Send(0, 1, ClassRequest, 1, nil)
	eng.Run(sim.Infinity)
	m.ResetStats()
	if m.Stats().TotalMessages() != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestAverageHopsFourByFour(t *testing.T) {
	m, _ := newTestMesh(t)
	avg := m.AverageHops()
	// For a 4x4 mesh the mean over ordered distinct pairs is 8/3.
	if avg < 2.6 || avg > 2.72 {
		t.Fatalf("AverageHops = %v, want ~2.667", avg)
	}
}

func TestAverageLatencyPositive(t *testing.T) {
	m, _ := newTestMesh(t)
	if l := m.AverageLatency(1); l < 9 {
		t.Fatalf("AverageLatency(1) = %d, implausibly low", l)
	}
	if m.AverageLatency(5) <= m.AverageLatency(1) {
		t.Fatal("more flits should not lower latency")
	}
}

func TestSendPanicsWithoutHandler(t *testing.T) {
	m, _ := newTestMesh(t)
	defer func() {
		if recover() == nil {
			t.Error("Send to unattached node did not panic")
		}
	}()
	m.Send(0, 9, ClassRequest, 1, nil)
}

// Property: delivery time always >= uncontended minimum and messages are
// never lost.
func TestSendDeliveryProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		eng := sim.NewEngine()
		m := New(DefaultConfig(), eng)
		delivered := 0
		for i := 0; i < 16; i++ {
			m.Attach(i, func(any) { delivered++ })
		}
		n := len(pairs)
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			src := int(pairs[i]) % 16
			dst := int(pairs[i]>>4) % 16
			m.Send(src, dst, ClassRequest, 1+int(pairs[i]>>8)%5, nil)
		}
		eng.Run(sim.Infinity)
		return delivered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if ClassRequest.String() != "request" || ClassForward.String() != "forward" || ClassResponse.String() != "response" {
		t.Fatal("Class.String mismatch")
	}
}
