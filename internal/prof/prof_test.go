package prof

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	p, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

// A server's signal handler races the deferred Stop on the main goroutine;
// both (and any stragglers) must be safe, with exactly one flush and every
// caller seeing the same outcome. This is the punoserve drain path.
func TestStopConcurrent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	p, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	const callers = 8
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- p.Stop()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent Stop: %v", err)
		}
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

// A later Stop must report the first flush's error, not mask it with nil:
// the clean path's explicit Stop is how write failures reach the user when
// the signal path flushed first.
func TestStopReportsFirstFlushError(t *testing.T) {
	dir := t.TempDir()
	p, err := Start("", filepath.Join(dir, "no", "such", "dir", "mem.out"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	first := p.Stop()
	if first == nil {
		t.Fatal("Stop with unwritable mem path succeeded")
	}
	if second := p.Stop(); second == nil || second.Error() != first.Error() {
		t.Fatalf("second Stop = %v, want the first flush's error %v", second, first)
	}
}

func TestStopIdempotent(t *testing.T) {
	p, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("first Stop: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	var nilP *Profiler
	if err := nilP.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
}
