package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	p, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestStopIdempotent(t *testing.T) {
	p, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("first Stop: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	var nilP *Profiler
	if err := nilP.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
}
