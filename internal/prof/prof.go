// Package prof wires the conventional -cpuprofile/-memprofile flags into
// the command-line tools. Profiles must be flushed on every exit path —
// including a context cancellation that aborts a sweep mid-run — so the
// Profiler is stopped via defer and Stop is idempotent.
//
// Servers add a second demand the original batch-only design missed: a
// SIGTERM handler races the deferred Stop on the main goroutine, so Stop
// must also be safe to call concurrently. The first caller flushes, later
// (and concurrent) callers observe the first flush's error — punoserve
// flushes from its signal path before closing the listener, then calls
// Stop again on the clean path to surface write errors.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Profiler holds the state of an in-progress profiling session. The zero
// value (from Start with empty paths) is inert.
type Profiler struct {
	memPath string
	cpuFile *os.File

	mu      sync.Mutex
	stopped bool
	err     error // first flush's outcome, returned by every later Stop
}

// Start begins CPU profiling into cpuPath (when non-empty) and arranges
// for a heap profile to be written to memPath (when non-empty) at Stop.
func Start(cpuPath, memPath string) (*Profiler, error) {
	p := &Profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop flushes both profiles. It is idempotent and safe for concurrent
// use: the first call (from any goroutine — a signal handler included)
// performs the flush, and every subsequent call returns that flush's
// error, so a clean-path Stop after a signal-path Stop still surfaces
// write failures.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return p.err
	}
	p.stopped = true
	p.err = p.flush()
	return p.err
}

func (p *Profiler) flush() error {
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			first = err
		}
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil && first == nil {
			first = err
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
