// Package prof wires the conventional -cpuprofile/-memprofile flags into
// the command-line tools. Profiles must be flushed on every exit path —
// including a context cancellation that aborts a sweep mid-run — so the
// Profiler is stopped via defer and Stop is idempotent.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler holds the state of an in-progress profiling session. The zero
// value (from Start with empty paths) is inert.
type Profiler struct {
	memPath string
	cpuFile *os.File
	stopped bool
}

// Start begins CPU profiling into cpuPath (when non-empty) and arranges
// for a heap profile to be written to memPath (when non-empty) at Stop.
func Start(cpuPath, memPath string) (*Profiler, error) {
	p := &Profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop flushes both profiles. It is idempotent, so callers can defer it
// for the cancellation path and also call it explicitly to surface write
// errors on the clean path.
func (p *Profiler) Stop() error {
	if p == nil || p.stopped {
		return nil
	}
	p.stopped = true
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			first = err
		}
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil && first == nil {
			first = err
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
