package mem

import (
	"testing"

	"repro/internal/sim"
)

// randLine draws from a small pool of word-aligned lines so streams revisit
// lines often (exercising the dense-table fast paths, not just first touch).
func randLine(rng *sim.RNG, pool int) Line {
	return Line(uint64(rng.Intn(pool)) * LineBytes)
}

// TestBackingMatchesMapModel drives a dense Backing and a plain
// map[Line]LineData reference model with the same seeded random operation
// stream — stores, loads, word accesses, and full Resets — and requires
// them to agree after every step. This is the contract the machine relies
// on when it swaps the old map-backed L2 for the LineID-indexed slab.
func TestBackingMatchesMapModel(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRNG(seed * 977)
		b := NewBacking()
		model := make(map[Line]LineData)
		for step := 0; step < 4000; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // whole-line store
				l := randLine(rng, 64)
				var d LineData
				for w := range d {
					d[w] = rng.Uint64()
				}
				b.Store(l, d)
				model[l] = d
			case 3, 4: // word store
				l := randLine(rng, 64)
				w := rng.Intn(WordsPerLine)
				v := rng.Uint64()
				b.StoreWord(l.Word(w), v)
				d := model[l]
				d[w] = v
				model[l] = d
			case 5, 6, 7: // whole-line load
				l := randLine(rng, 64)
				if got, want := b.Load(l), model[l]; got != want {
					t.Fatalf("seed %d step %d: Load(%v) = %v, want %v", seed, step, l, got, want)
				}
			case 8: // word load
				l := randLine(rng, 64)
				w := rng.Intn(WordsPerLine)
				if got, want := b.LoadWord(l.Word(w)), model[l][w]; got != want {
					t.Fatalf("seed %d step %d: LoadWord(%v.%d) = %d, want %d", seed, step, l, w, got, want)
				}
			case 9:
				if rng.Intn(100) == 0 { // rare: reset and keep going (capacity reuse)
					b.Reset()
					clear(model)
				}
			}
		}
		// ID-indexed reads agree with the line-addressed model too.
		it := b.Interner()
		for l, want := range model {
			if got := b.LoadID(it.Lookup(l)); got != want {
				t.Fatalf("seed %d: LoadID(%v) = %v, want %v", seed, l, got, want)
			}
		}
	}
}

// TestBackingResetExposesZeroes verifies the zeroing discipline: after
// Reset, every previously stored line — including ones whose IDs force the
// dense array to re-extend within retained capacity — reads back zero.
func TestBackingResetExposesZeroes(t *testing.T) {
	b := NewBacking()
	lines := make([]Line, 200)
	for i := range lines {
		lines[i] = Line(uint64(i) * LineBytes)
		b.StoreWord(lines[i].Word(0), uint64(i)+1)
	}
	b.Reset()
	for _, l := range lines {
		if got := b.Load(l); got != (LineData{}) {
			t.Fatalf("after Reset, Load(%v) = %v, want zero", l, got)
		}
	}
	if b.Touched() != 0 {
		t.Fatalf("after Reset, Touched = %d, want 0", b.Touched())
	}
}

// TestInternerDeterministicAssignment replays the same touch stream on a
// fresh interner and on a Reset-reused one (including one that Grow has
// rebuilt mid-stream) and requires identical ID assignments — the property
// that keeps LineID-indexed tables trajectory-equivalent to map[Line] ones.
func TestInternerDeterministicAssignment(t *testing.T) {
	stream := func(rng *sim.RNG, n int) []Line {
		ls := make([]Line, n)
		for i := range ls {
			ls[i] = randLine(rng, 300)
		}
		return ls
	}
	touches := stream(sim.NewRNG(42), 5000)

	assign := func(it *Interner) []LineID {
		ids := make([]LineID, len(touches))
		for i, l := range touches {
			if i == len(touches)/2 {
				it.Grow(1024) // mid-stream growth must not disturb live IDs
			}
			ids[i] = it.Intern(l)
		}
		return ids
	}

	fresh := assign(NewInterner())
	reused := NewInterner()
	// Dirty the interner with an unrelated stream, then Reset.
	for _, l := range stream(sim.NewRNG(7), 1000) {
		reused.Intern(l)
	}
	reused.Reset()
	again := assign(reused)

	for i := range fresh {
		if fresh[i] != again[i] {
			t.Fatalf("touch %d: fresh interner assigned %d, reused one %d", i, fresh[i], again[i])
		}
	}
}

// TestInternerInvariants checks the structural invariants under a random
// Intern/Lookup/Grow/Reset interleave: IDs are dense from 1 in touch
// order, LineAt inverts Intern, and Lookup agrees with the assignment map.
func TestInternerInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRNG(seed * 31)
		it := NewInterner()
		model := make(map[Line]LineID)
		next := LineID(1)
		for step := 0; step < 3000; step++ {
			switch rng.Intn(8) {
			case 0, 1, 2, 3:
				l := randLine(rng, 200)
				id := it.Intern(l)
				if want, ok := model[l]; ok {
					if id != want {
						t.Fatalf("seed %d step %d: Intern(%v) = %d, want stable %d", seed, step, l, id, want)
					}
				} else {
					if id != next {
						t.Fatalf("seed %d step %d: first touch of %v got %d, want dense next %d", seed, step, l, id, next)
					}
					model[l] = id
					next++
				}
				if back := it.LineAt(id); back != l {
					t.Fatalf("seed %d step %d: LineAt(%d) = %v, want %v", seed, step, id, back, l)
				}
			case 4, 5:
				l := randLine(rng, 200)
				if got := it.Lookup(l); got != model[l] {
					t.Fatalf("seed %d step %d: Lookup(%v) = %d, want %d", seed, step, l, got, model[l])
				}
			case 6:
				it.Grow(rng.Intn(600))
			case 7:
				if rng.Intn(50) == 0 {
					it.Reset()
					clear(model)
					next = 1
				}
			}
			if it.Len() != len(model) {
				t.Fatalf("seed %d step %d: Len = %d, want %d", seed, step, it.Len(), len(model))
			}
		}
	}
}
