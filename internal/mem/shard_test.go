package mem

import "testing"

func TestInternerSharedMode(t *testing.T) {
	it := NewInterner()
	it.Grow(4)
	it.SetShared(true)

	a := it.Intern(Line(0x100))
	b := it.Intern(Line(0x200))
	if a != 1 || b != 2 {
		t.Fatalf("shared interning assigned (%d, %d), want (1, 2)", a, b)
	}
	if got := it.Intern(Line(0x100)); got != a {
		t.Fatalf("re-interning returned %d, want %d", got, a)
	}
	if got := it.Lookup(Line(0x200)); got != b {
		t.Fatalf("shared Lookup = %d, want %d", got, b)
	}
	if got := it.Lookup(Line(0x999)); got != 0 {
		t.Fatalf("shared Lookup of unknown line = %d, want 0", got)
	}
	if got := it.Len(); got != 2 {
		t.Fatalf("shared Len = %d, want 2", got)
	}
	if got := it.LineAt(a); got != Line(0x100) {
		t.Fatalf("LineAt(%d) = %#x, want 0x100", a, uint64(got))
	}

	// Disarming re-enables the lock-free paths on the same assignments.
	it.SetShared(false)
	if got := it.Lookup(Line(0x100)); got != a {
		t.Fatalf("Lookup after disarm = %d, want %d", got, a)
	}
	if got := it.Len(); got != 2 {
		t.Fatalf("Len after disarm = %d, want 2", got)
	}

	// Re-arming reuses the existing mutex.
	it.SetShared(true)
	it.SetShared(true)
	if got := it.Intern(Line(0x300)); got != 3 {
		t.Fatalf("interning after re-arm = %d, want 3", got)
	}
}

// A shared interner must never move its backing array (LineAt reads it
// lock-free from other shards), so exceeding the Grow pre-size panics
// instead of reallocating.
func TestSharedInternerOverflowPanics(t *testing.T) {
	it := NewInterner()
	it.Grow(2)
	it.SetShared(true)
	it.Intern(Line(0x100))
	it.Intern(Line(0x200))
	defer func() {
		if recover() == nil {
			t.Fatal("interning past the shared pre-size did not panic")
		}
	}()
	it.Intern(Line(0x300))
}

// An unshared interner grows its backing array on demand, preserving
// existing assignments.
func TestInternerGrowsUnshared(t *testing.T) {
	it := NewInterner()
	for i := 0; i < 200; i++ {
		if got := it.Intern(Line(uint64(i+1) * 0x40)); got != LineID(i+1) {
			t.Fatalf("Intern #%d = %d, want %d", i, got, i+1)
		}
	}
	if it.Len() != 200 {
		t.Fatalf("Len = %d, want 200", it.Len())
	}
	for i := 0; i < 200; i++ {
		if got := it.LineAt(LineID(i + 1)); got != Line(uint64(i+1)*0x40) {
			t.Fatalf("LineAt(%d) = %#x after growth", i+1, uint64(got))
		}
	}
}

// ResetOn rebinds a Backing to a different interner: the image empties and
// new stores index under the new ID assignment.
func TestBackingResetOn(t *testing.T) {
	it1 := NewInterner()
	b := NewBackingOn(it1)
	addr := Line(0x100).Word(0)
	b.StoreWord(addr, 7)
	if got := b.LoadWord(addr); got != 7 {
		t.Fatalf("LoadWord before rebind = %d, want 7", got)
	}

	it2 := NewInterner()
	b.ResetOn(it2)
	if got := b.LoadWord(addr); got != 0 {
		t.Fatalf("LoadWord after ResetOn = %d, want 0 (image must be empty)", got)
	}
	if b.Touched() != 0 {
		t.Fatalf("Touched after ResetOn = %d, want 0", b.Touched())
	}
	b.StoreWord(addr, 9)
	if it2.Len() == 0 {
		t.Fatal("store after rebind did not intern into the new interner")
	}
	if got := b.LoadWord(addr); got != 9 {
		t.Fatalf("LoadWord after rebind = %d, want 9", got)
	}
}
