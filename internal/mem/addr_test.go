package mem

import (
	"testing"
	"testing/quick"
)

func TestLineOfAligns(t *testing.T) {
	cases := []struct {
		a    Addr
		want Line
	}{
		{0, 0},
		{8, 0},
		{63, 0},
		{64, 64},
		{127, 64},
		{0x1000 + 40, 0x1000},
	}
	for _, c := range cases {
		if got := LineOf(c.a); got != c.want {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.a, got, c.want)
		}
	}
}

func TestWordIndex(t *testing.T) {
	for i := 0; i < WordsPerLine; i++ {
		a := Addr(0x240 + i*WordBytes)
		if got := WordIndex(a); got != i {
			t.Errorf("WordIndex(%#x) = %d, want %d", a, got, i)
		}
	}
}

func TestLineWordRoundTrip(t *testing.T) {
	f := func(raw uint32, idx uint8) bool {
		l := LineOf(Addr(raw))
		i := int(idx) % WordsPerLine
		a := l.Word(i)
		return LineOf(a) == l && WordIndex(a) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineWordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Word(8) did not panic")
		}
	}()
	Line(0).Word(WordsPerLine)
}

func TestHomeMapRange(t *testing.T) {
	h := NewHomeMap(16)
	for i := 0; i < 10000; i++ {
		l := Line(uint64(i) * LineBytes)
		home := h.Home(l)
		if home < 0 || home >= 16 {
			t.Fatalf("Home(%v) = %d out of range", l, home)
		}
	}
}

func TestHomeMapInterleavesConsecutiveLines(t *testing.T) {
	h := NewHomeMap(16)
	for i := 0; i < 64; i++ {
		l := Line(uint64(i) * LineBytes)
		if got := h.Home(l); got != i%16 {
			t.Errorf("Home(line %d) = %d, want %d", i, got, i%16)
		}
	}
}

func TestHomeMapBalance(t *testing.T) {
	h := NewHomeMap(16)
	counts := make([]int, 16)
	const n = 16 * 1000
	for i := 0; i < n; i++ {
		counts[h.Home(Line(uint64(i)*LineBytes))]++
	}
	for b, c := range counts {
		if c != 1000 {
			t.Errorf("bank %d got %d lines, want 1000", b, c)
		}
	}
}

func TestHomeMapPanicsOnZeroBanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHomeMap(0) did not panic")
		}
	}()
	NewHomeMap(0)
}

func TestBackingZeroDefault(t *testing.T) {
	b := NewBacking()
	if v := b.LoadWord(0x998); v != 0 {
		t.Fatalf("untouched word = %d, want 0", v)
	}
	if d := b.Load(0x40); d != (LineData{}) {
		t.Fatalf("untouched line = %v, want zeros", d)
	}
}

func TestBackingStoreLoadWord(t *testing.T) {
	b := NewBacking()
	b.StoreWord(0x1008, 77)
	if v := b.LoadWord(0x1008); v != 77 {
		t.Fatalf("LoadWord = %d, want 77", v)
	}
	// Neighbouring word in the same line unaffected.
	if v := b.LoadWord(0x1000); v != 0 {
		t.Fatalf("neighbour word = %d, want 0", v)
	}
}

func TestBackingLineStoreLoad(t *testing.T) {
	b := NewBacking()
	var d LineData
	for i := range d {
		d[i] = uint64(i * 11)
	}
	b.Store(0x2000, d)
	got := b.Load(0x2000)
	if got != d {
		t.Fatalf("Load = %v, want %v", got, d)
	}
	// Load returns a copy: mutating it must not affect the backing.
	got[0] = 999
	if b.Load(0x2000)[0] != 0 {
		t.Fatal("Load returned aliased storage")
	}
}

func TestBackingWordLineConsistency(t *testing.T) {
	f := func(lineRaw uint32, idx uint8, v uint64) bool {
		b := NewBacking()
		l := LineOf(Addr(lineRaw))
		i := int(idx) % WordsPerLine
		b.StoreWord(l.Word(i), v)
		return b.Load(l)[i] == v && b.LoadWord(l.Word(i)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackingTouched(t *testing.T) {
	b := NewBacking()
	b.StoreWord(0, 1)
	b.StoreWord(8, 2) // same line
	b.StoreWord(64, 3)
	if b.Touched() != 2 {
		t.Fatalf("Touched = %d, want 2", b.Touched())
	}
}
