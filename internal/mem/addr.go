// Package mem defines the simulated physical address space: cache-line
// geometry, static home-node (bank) interleaving, word-granularity line
// data, and a flat backing store. It also provides a golden serial memory
// used by tests to check that committed transactions are serializable.
package mem

import "fmt"

// Geometry constants for the simulated machine. A 64-byte line of eight
// 64-bit words matches the paper's system configuration.
const (
	LineBytes     = 64
	WordBytes     = 8
	WordsPerLine  = LineBytes / WordBytes
	lineOffsetBit = 6 // log2(LineBytes)
)

// Addr is a word-aligned physical address.
type Addr uint64

// Line is a cache-line-aligned address (the low lineOffsetBit bits are 0).
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(uint64(a) &^ (LineBytes - 1)) }

// WordIndex returns the index of a's word within its line, in [0,WordsPerLine).
func WordIndex(a Addr) int { return int(uint64(a)>>3) & (WordsPerLine - 1) }

// Word returns the i'th word address within line l.
func (l Line) Word(i int) Addr {
	if i < 0 || i >= WordsPerLine {
		panic(fmt.Sprintf("mem: word index %d out of range", i))
	}
	return Addr(uint64(l) + uint64(i*WordBytes))
}

// String implements fmt.Stringer.
func (l Line) String() string { return fmt.Sprintf("0x%x", uint64(l)) }

// HomeMap statically maps lines to home nodes (directory/L2 bank slices) by
// interleaving consecutive lines across banks, the "static cache bank
// directory" arrangement in the paper's Table II.
type HomeMap struct {
	banks int
}

// NewHomeMap returns a map over banks home nodes. banks must be positive.
func NewHomeMap(banks int) HomeMap {
	if banks <= 0 {
		panic("mem: non-positive bank count")
	}
	return HomeMap{banks: banks}
}

// Banks returns the number of banks.
func (h HomeMap) Banks() int { return h.banks }

// Home returns the home node of line l.
func (h HomeMap) Home(l Line) int {
	return int((uint64(l) >> lineOffsetBit) % uint64(h.banks))
}

// LineData is the word contents of one cache line.
type LineData [WordsPerLine]uint64

// Backing is the flat main-memory image: a dense LineID-indexed table of
// line contents (no per-line pointers, no hashing on the load/store path).
// Untouched lines read as zero. Backing is not safe for concurrent use; the
// simulator is single-threaded by design.
type Backing struct {
	it      *Interner
	data    []LineData // data[id-1]; slots beyond the high-water mark are zero
	stored  []bool     // stored[id-1]: line was ever stored (Touched)
	touched int
}

// NewBacking returns an empty (all-zero) memory image over a private
// interner (standalone use and tests).
func NewBacking() *Backing {
	return NewBackingOn(NewInterner())
}

// NewBackingOn returns an empty memory image sharing it with the rest of a
// memory system, so the LineIDs the coherence layer carries index this
// table directly.
func NewBackingOn(it *Interner) *Backing {
	return &Backing{it: it}
}

// Interner exposes the interner this image is indexed by.
func (b *Backing) Interner() *Interner { return b.it }

// ensure extends the dense tables to cover id. Slots re-exposed from
// retained capacity were zeroed by Reset, and fresh growth allocates
// zeroed memory, so extension never resurrects stale contents.
func (b *Backing) ensure(id LineID) {
	n := int(id)
	if n <= len(b.data) {
		return
	}
	if n <= cap(b.data) {
		b.data = b.data[:n]
		b.stored = b.stored[:n]
		return
	}
	nd := make([]LineData, n, 2*n)
	copy(nd, b.data)
	b.data = nd
	ns := make([]bool, n, 2*n)
	copy(ns, b.stored)
	b.stored = ns
}

// LoadID returns a copy of the line with the given LineID (0 or an ID past
// the table reads as zero — the line was never stored).
//
//puno:hot
func (b *Backing) LoadID(id LineID) LineData {
	if i := int(id); i > 0 && i <= len(b.data) {
		return b.data[i-1]
	}
	return LineData{}
}

// StoreID replaces the line with the given LineID. id must be a live ID of
// the backing's interner.
func (b *Backing) StoreID(id LineID, d LineData) {
	b.ensure(id)
	b.data[id-1] = d
	if !b.stored[id-1] {
		b.stored[id-1] = true
		b.touched++
	}
}

// Load returns a copy of line l.
func (b *Backing) Load(l Line) LineData {
	return b.LoadID(b.it.Lookup(l))
}

// Store replaces line l.
func (b *Backing) Store(l Line, d LineData) {
	b.StoreID(b.it.Intern(l), d)
}

// LoadWord reads one word.
func (b *Backing) LoadWord(a Addr) uint64 {
	if i := int(b.it.Lookup(LineOf(a))); i > 0 && i <= len(b.data) {
		return b.data[i-1][WordIndex(a)]
	}
	return 0
}

// StoreWord writes one word.
func (b *Backing) StoreWord(a Addr, v uint64) {
	id := b.it.Intern(LineOf(a))
	b.ensure(id)
	if !b.stored[id-1] {
		b.stored[id-1] = true
		b.touched++
	}
	b.data[id-1][WordIndex(a)] = v
}

// Touched returns the number of distinct lines ever stored.
func (b *Backing) Touched() int { return b.touched }

// ResetOn is Reset plus a rebind to a different interner — a machine arena
// switching between its private interner and a shard-shared one keeps the
// dense tables while re-indexing them under the new ID assignment.
func (b *Backing) ResetOn(it *Interner) {
	b.Reset()
	b.it = it
}

// Reset empties the image (every line reads as zero again), retaining the
// table's capacity so a reused Backing repopulates without reallocating.
// The interner is NOT reset: its owner decides when IDs are reassigned.
func (b *Backing) Reset() {
	clear(b.data[:cap(b.data)])
	b.data = b.data[:0]
	clear(b.stored[:cap(b.stored)])
	b.stored = b.stored[:0]
	b.touched = 0
}
