// Package mem defines the simulated physical address space: cache-line
// geometry, static home-node (bank) interleaving, word-granularity line
// data, and a flat backing store. It also provides a golden serial memory
// used by tests to check that committed transactions are serializable.
package mem

import "fmt"

// Geometry constants for the simulated machine. A 64-byte line of eight
// 64-bit words matches the paper's system configuration.
const (
	LineBytes     = 64
	WordBytes     = 8
	WordsPerLine  = LineBytes / WordBytes
	lineOffsetBit = 6 // log2(LineBytes)
)

// Addr is a word-aligned physical address.
type Addr uint64

// Line is a cache-line-aligned address (the low lineOffsetBit bits are 0).
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(uint64(a) &^ (LineBytes - 1)) }

// WordIndex returns the index of a's word within its line, in [0,WordsPerLine).
func WordIndex(a Addr) int { return int(uint64(a)>>3) & (WordsPerLine - 1) }

// Word returns the i'th word address within line l.
func (l Line) Word(i int) Addr {
	if i < 0 || i >= WordsPerLine {
		panic(fmt.Sprintf("mem: word index %d out of range", i))
	}
	return Addr(uint64(l) + uint64(i*WordBytes))
}

// String implements fmt.Stringer.
func (l Line) String() string { return fmt.Sprintf("0x%x", uint64(l)) }

// HomeMap statically maps lines to home nodes (directory/L2 bank slices) by
// interleaving consecutive lines across banks, the "static cache bank
// directory" arrangement in the paper's Table II.
type HomeMap struct {
	banks int
}

// NewHomeMap returns a map over banks home nodes. banks must be positive.
func NewHomeMap(banks int) HomeMap {
	if banks <= 0 {
		panic("mem: non-positive bank count")
	}
	return HomeMap{banks: banks}
}

// Banks returns the number of banks.
func (h HomeMap) Banks() int { return h.banks }

// Home returns the home node of line l.
func (h HomeMap) Home(l Line) int {
	return int((uint64(l) >> lineOffsetBit) % uint64(h.banks))
}

// LineData is the word contents of one cache line.
type LineData [WordsPerLine]uint64

// Backing is the flat main-memory image: a map from line to contents.
// Untouched lines read as zero. Backing is not safe for concurrent use; the
// simulator is single-threaded by design.
type Backing struct {
	lines map[Line]*LineData
}

// NewBacking returns an empty (all-zero) memory image.
func NewBacking() *Backing {
	return &Backing{lines: make(map[Line]*LineData)}
}

// Load returns a copy of line l.
func (b *Backing) Load(l Line) LineData {
	if d, ok := b.lines[l]; ok {
		return *d
	}
	return LineData{}
}

// Store replaces line l.
func (b *Backing) Store(l Line, d LineData) {
	p, ok := b.lines[l]
	if !ok {
		p = new(LineData)
		b.lines[l] = p
	}
	*p = d
}

// LoadWord reads one word.
func (b *Backing) LoadWord(a Addr) uint64 {
	if d, ok := b.lines[LineOf(a)]; ok {
		return d[WordIndex(a)]
	}
	return 0
}

// StoreWord writes one word.
func (b *Backing) StoreWord(a Addr, v uint64) {
	l := LineOf(a)
	p, ok := b.lines[l]
	if !ok {
		p = new(LineData)
		b.lines[l] = p
	}
	p[WordIndex(a)] = v
}

// Touched returns the number of distinct lines ever stored.
func (b *Backing) Touched() int { return len(b.lines) }

// Reset empties the image (every line reads as zero again), retaining the
// map's capacity so a reused Backing repopulates without rehashing.
func (b *Backing) Reset() {
	clear(b.lines)
}
