package mem

import "sync"

// LineID is a compact dense identifier for one distinct cache line touched
// by a run. IDs are assigned lazily on first touch, in touch order, starting
// at 1; the zero LineID means "not interned / unknown" so a zero-valued
// message or cache entry is always safe to fall back on. In a serial run the
// touch order — and therefore the Line→LineID assignment — is identical
// across runs of the same trajectory, which is what lets LineID-indexed
// tables replace map[Line] lookups without perturbing goldens. A sharded run
// interleaves shards' first touches nondeterministically, so LineID values
// are NOT stable there; every consumer treats a LineID as an opaque dense
// index (never an ordering key), and trace serialization renumbers IDs into
// emission order before bytes leave the process.
type LineID int32

// Interner assigns LineIDs and answers both directions of the mapping. The
// forward index is the one blessed map in this package: it is consulted only
// when a line enters the system (first touch of a miss path) while every
// per-event hot lookup goes through a LineID-indexed slice instead.
//
// SetShared(true) arms the interner for concurrent use by shard goroutines:
// the forward map is mutex-guarded, while LineAt stays lock-free — the
// backing array is pre-sized to full capacity so its header never moves, and
// a LineID can only reach another shard via a cross-window message, whose
// window barrier provides the element-level happens-before.
type Interner struct {
	idx   map[Line]LineID
	lines []Line      // lines[:n] live, in touch order; len(lines) is capacity
	n     int         // count of interned lines
	sized int         // capacity hint already applied via Grow
	mu    *sync.Mutex // non-nil when shared across shard goroutines
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{idx: make(map[Line]LineID)}
}

// SetShared arms (or, with false, disarms) the interner for concurrent use.
// While shared, capacity growth is forbidden: the caller must Grow to the
// workload's full footprint first (FootprintHinter gives the bound).
func (it *Interner) SetShared(shared bool) {
	if shared {
		if it.mu == nil {
			it.mu = new(sync.Mutex)
		}
	} else {
		it.mu = nil
	}
}

// Intern returns l's LineID, assigning the next dense ID on first touch.
func (it *Interner) Intern(l Line) LineID {
	if it.mu != nil {
		it.mu.Lock()
		defer it.mu.Unlock()
	}
	if id := it.idx[l]; id != 0 {
		return id
	}
	if it.n == len(it.lines) {
		if it.mu != nil {
			// The backing array cannot move while LineAt reads it
			// lock-free from other shards; the pre-size via Grow
			// (workload footprint hint) must therefore be an upper bound.
			panic("mem: shared interner overflow — footprint hint undersized")
		}
		grown := 2 * len(it.lines)
		if grown < 64 {
			grown = 64
		}
		nl := make([]Line, grown)
		copy(nl, it.lines)
		it.lines = nl
	}
	it.lines[it.n] = l
	it.n++
	id := LineID(it.n)
	it.idx[l] = id
	return id
}

// Lookup returns l's LineID, or 0 when l has never been interned.
//
//puno:hot
func (it *Interner) Lookup(l Line) LineID {
	if it.mu != nil {
		it.mu.Lock()
		id := it.idx[l]
		it.mu.Unlock()
		return id
	}
	return it.idx[l]
}

// LineAt is the O(1) reverse lookup. id must be a live ID (1..Len). It is
// deliberately lock-free even in shared mode; see the type comment.
//
//puno:hot
func (it *Interner) LineAt(id LineID) Line { return it.lines[id-1] }

// Len returns the number of interned lines (the largest live ID).
func (it *Interner) Len() int {
	if it.mu != nil {
		it.mu.Lock()
		n := it.n
		it.mu.Unlock()
		return n
	}
	return it.n
}

// Reset forgets every assignment, retaining capacity so a reused interner
// (and the dense tables sized off it) repopulates without reallocating.
// Not safe concurrently with shard execution.
func (it *Interner) Reset() {
	clear(it.idx)
	it.n = 0
}

// Grow pre-sizes the interner for n distinct lines (the workload footprint
// hint applied at Machine construction/Reset). Growing rebuilds the forward
// index at the larger capacity; rebuilding inserts into a fresh map, which
// is order-independent, and never reassigns IDs. Not safe concurrently with
// shard execution.
func (it *Interner) Grow(n int) {
	if n <= it.sized {
		return
	}
	it.sized = n
	if len(it.lines) < n {
		nl := make([]Line, n)
		copy(nl, it.lines)
		it.lines = nl
	}
	// This range is punovet's one allowlisted map iteration in internal/mem
	// (maprangeAllowed): inserting existing pairs into a fresh map is
	// order-independent and IDs are not reassigned.
	m := make(map[Line]LineID, n)
	for l, id := range it.idx {
		m[l] = id
	}
	it.idx = m
}
