package mem

// LineID is a compact dense identifier for one distinct cache line touched
// by a run. IDs are assigned lazily on first touch, in touch order, starting
// at 1; the zero LineID means "not interned / unknown" so a zero-valued
// message or cache entry is always safe to fall back on. Because the
// simulation is single-threaded and deterministic, the touch order — and
// therefore the Line→LineID assignment — is identical across runs of the
// same trajectory, which is what lets LineID-indexed tables replace
// map[Line] lookups without perturbing goldens.
type LineID int32

// Interner assigns LineIDs and answers both directions of the mapping. The
// forward index is the one blessed map in this package: it is consulted only
// when a line enters the system (first touch of a miss path) while every
// per-event hot lookup goes through a LineID-indexed slice instead.
type Interner struct {
	idx   map[Line]LineID
	lines []Line // lines[id-1] = line; insertion (touch) order
	sized int    // capacity hint already applied via Grow
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{idx: make(map[Line]LineID)}
}

// Intern returns l's LineID, assigning the next dense ID on first touch.
func (it *Interner) Intern(l Line) LineID {
	if id := it.idx[l]; id != 0 {
		return id
	}
	id := LineID(len(it.lines) + 1)
	it.idx[l] = id
	it.lines = append(it.lines, l)
	return id
}

// Lookup returns l's LineID, or 0 when l has never been interned.
//
//puno:hot
func (it *Interner) Lookup(l Line) LineID { return it.idx[l] }

// LineAt is the O(1) reverse lookup. id must be a live ID (1..Len).
//
//puno:hot
func (it *Interner) LineAt(id LineID) Line { return it.lines[id-1] }

// Len returns the number of interned lines (the largest live ID).
func (it *Interner) Len() int { return len(it.lines) }

// Reset forgets every assignment, retaining capacity so a reused interner
// (and the dense tables sized off it) repopulates without reallocating.
func (it *Interner) Reset() {
	clear(it.idx)
	it.lines = it.lines[:0]
}

// Grow pre-sizes the interner for n distinct lines (the workload footprint
// hint applied at Machine construction/Reset). Growing rebuilds the forward
// index at the larger capacity; rebuilding inserts into a fresh map, which
// is order-independent, and never reassigns IDs.
func (it *Interner) Grow(n int) {
	if n <= it.sized {
		return
	}
	it.sized = n
	if cap(it.lines) < n {
		nl := make([]Line, len(it.lines), n)
		copy(nl, it.lines)
		it.lines = nl
	}
	// This range is punovet's one allowlisted map iteration in internal/mem
	// (maprangeAllowed): inserting existing pairs into a fresh map is
	// order-independent and IDs are not reassigned.
	m := make(map[Line]LineID, n)
	for l, id := range it.idx {
		m[l] = id
	}
	it.idx = m
}
