package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	puno "repro"
)

// Cache is the content-addressed result store: an in-memory LRU over
// encoded punores/1 artifacts, optionally backed by an unbounded on-disk
// directory. Determinism makes every hit provably fresh, so there is no
// expiry, no validation round-trip, and no invalidation protocol — the key
// embeds the code version, so a new build simply addresses a disjoint part
// of the store.
//
// Memory eviction never deletes the disk artifact: disk is the backing
// tier, and an evicted entry is re-admitted (and counted as a disk hit) on
// its next lookup. Disk artifacts are checksum-verified on load; a corrupt
// or truncated file is treated as a miss rather than served.
type Cache struct {
	dir string // "" = memory only
	max int

	mu        sync.Mutex
	entries   map[Key]*centry
	head      *centry // most recently used
	tail      *centry // least recently used
	hits      uint64  // memory hits
	diskHits  uint64  // misses satisfied by the disk tier
	misses    uint64  // true misses (neither tier)
	evictions uint64
	diskErrs  uint64 // artifact write failures (result still served from memory)
}

// centry is one resident artifact on the LRU list.
type centry struct {
	key        Key
	data       []byte
	prev, next *centry
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	DiskErrs  uint64 `json:"disk_errors"`
}

// NewCache builds a cache holding at most maxEntries artifacts in memory
// (<=0 selects 1024). A non-empty dir enables the disk tier; it is created
// if absent.
func NewCache(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	return &Cache{dir: dir, max: maxEntries, entries: make(map[Key]*centry)}, nil
}

// Get returns the artifact stored under k. The memory tier is consulted
// first; on a memory miss the disk tier is read, verified, and re-admitted.
func (c *Cache) Get(k Key) ([]byte, bool) {
	if data, ok := c.lookup(k); ok {
		return data, true
	}
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(k)); err == nil {
			if _, derr := puno.DecodeResult(data); derr == nil {
				c.install(k, data, true)
				return data, true
			}
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores an artifact under k in both tiers. The disk write is atomic
// (temp file + rename) so a crash mid-write can never leave a half
// artifact where Get would find it; a failed disk write is counted but not
// fatal — the result is still served from memory. Concurrent Puts for one
// key cannot happen (singleflight serializes production per key), so the
// per-key temp name is unique.
func (c *Cache) Put(k Key, data []byte) {
	c.install(k, data, false)
	if c.dir == "" {
		return
	}
	path := c.path(k)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		c.countDiskErr()
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		c.countDiskErr()
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		DiskHits:  c.diskHits,
		Misses:    c.misses,
		Evictions: c.evictions,
		DiskErrs:  c.diskErrs,
	}
}

// lookup is the memory-tier probe every request pays: one map access and
// an LRU relink under the lock, no allocation.
//
//puno:hot
func (c *Cache) lookup(k Key) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.moveToFront(e)
	c.hits++
	data := e.data
	c.mu.Unlock()
	return data, true
}

// install admits an artifact to the memory tier, evicting from the LRU
// tail past capacity.
func (c *Cache) install(k Key, data []byte, fromDisk bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fromDisk {
		c.diskHits++
	}
	if e, ok := c.entries[k]; ok {
		e.data = data
		c.moveToFront(e)
		return
	}
	e := &centry{key: k, data: data}
	c.entries[k] = e
	c.pushFront(e)
	for len(c.entries) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions++
	}
}

func (c *Cache) countDiskErr() {
	c.mu.Lock()
	c.diskErrs++
	c.mu.Unlock()
}

func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.String()+".res")
}

// pushFront links e as the most recently used entry. Callers hold c.mu.
func (c *Cache) pushFront(e *centry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list. Callers hold c.mu.
func (c *Cache) unlink(e *centry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront relinks e as most recently used. Callers hold c.mu.
func (c *Cache) moveToFront(e *centry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
