package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	puno "repro"
)

// fastSpec is a quick simulation point (~a few ms): kmeans at 2
// transactions per node. Distinct seeds give distinct cache keys.
func fastSpec(seed uint64) Spec {
	return Spec{Workload: "kmeans", TxPerCPU: 2, Seed: seed}
}

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	return s
}

// gatedService holds every worker at a test-controlled gate, making queue
// and cancellation interleavings deterministic.
func gatedService(t *testing.T, opts Options) (*Service, *testGate) {
	t.Helper()
	gate := &testGate{arrived: make(chan struct{}), release: make(chan struct{})}
	s, err := newService(opts, gate)
	if err != nil {
		t.Fatal(err)
	}
	return s, gate
}

// waitTerminal blocks until the job reaches a terminal state.
func waitTerminal(j *Job) JobState {
	for {
		st, _, changed := j.Snapshot()
		if st.Terminal() {
			return st
		}
		<-changed
	}
}

func TestSubmitRunsAndCaches(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	j1, err := s.Submit(fastSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(j1); st != StateDone {
		t.Fatalf("first job ended %v", st)
	}
	if s.Runs() != 1 {
		t.Fatalf("runs = %d after one job", s.Runs())
	}
	data1, ok := s.Result(j1.Key)
	if !ok {
		t.Fatal("done job has no cached artifact")
	}

	// Identical resubmission: born terminal, simulator untouched.
	j2, err := s.Submit(fastSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	if st, _, _ := j2.Snapshot(); st != StateDone || !j2.Cached {
		t.Fatalf("resubmission state=%v cached=%v", st, j2.Cached)
	}
	if s.Runs() != 1 {
		t.Fatalf("runs advanced to %d on a warm hit", s.Runs())
	}
	if j2.Key != j1.Key {
		t.Fatal("identical specs derived different keys")
	}

	// The cached artifact is byte-identical to a direct simulation of the
	// same resolved point.
	rs, _, err := fastSpec(100).resolve()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := puno.Run(rs.Config, rs.Workload)
	if err != nil {
		t.Fatal(err)
	}
	want, err := puno.EncodeResult(direct.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, want) {
		t.Fatal("cached artifact differs from a direct run's encoding")
	}
}

func TestKeyDerivation(t *testing.T) {
	resolveKey := func(sp Spec, cv string) Key {
		t.Helper()
		rs, prof, err := sp.resolve()
		if err != nil {
			t.Fatal(err)
		}
		k, err := BuildKey(cv, rs.Config, prof)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := resolveKey(fastSpec(1), "v1")
	if got := resolveKey(fastSpec(1), "v1"); got != base {
		t.Fatal("same spec and code version derived different keys")
	}
	distinct := map[Key]string{base: "base"}
	for name, k := range map[string]Key{
		"seed":         resolveKey(fastSpec(2), "v1"),
		"scheme":       resolveKey(Spec{Workload: "kmeans", TxPerCPU: 2, Seed: 1, Scheme: "PUNO"}, "v1"),
		"tx_per_cpu":   resolveKey(Spec{Workload: "kmeans", TxPerCPU: 3, Seed: 1}, "v1"),
		"workload":     resolveKey(Spec{Workload: "ssca2", TxPerCPU: 2, Seed: 1}, "v1"),
		"nodes":        resolveKey(Spec{Workload: "kmeans", TxPerCPU: 2, Seed: 1, Nodes: 64}, "v1"),
		"code version": resolveKey(fastSpec(1), "v2"),
	} {
		if prev, dup := distinct[k]; dup {
			t.Errorf("varying %s collided with %s", name, prev)
		}
		distinct[k] = name
	}

	// Shards is an execution strategy: same key, same cache slot.
	sharded := resolveKey(Spec{Workload: "kmeans", TxPerCPU: 2, Seed: 1, Shards: 4}, "v1")
	if sharded != base {
		t.Fatal("shards changed the cache key; serial and PDES runs must share a slot")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Workload: "no-such-workload"},
		{Workload: "kmeans", Scheme: "no-such-scheme"},
		{Workload: "kmeans", Nodes: 15},
		{Workload: "kmeans", TxPerCPU: -1},
		{Workload: "kmeans", Shards: -2},
		{Workload: "kmeans", SignatureBits: -1},
		{},
	}
	for _, sp := range bad {
		if _, _, err := sp.resolve(); err == nil {
			t.Errorf("spec %+v resolved", sp)
		}
	}
}

// Singleflight: while a flight is held at the gate, identical submissions
// join it (one run total), and canceling ONE waiter must not cancel the
// flight for the others.
func TestSingleflightWaiterCancel(t *testing.T) {
	s, gate := gatedService(t, Options{Workers: 1, QueueDepth: 4})
	defer s.Drain()

	j1, err := s.Submit(fastSpec(200))
	if err != nil {
		t.Fatal(err)
	}
	<-gate.arrived // worker holds the task pre-execution

	j2, err := s.Submit(fastSpec(200))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Collapsed != 1 {
		t.Fatalf("collapsed = %d with one waiter", st.Collapsed)
	}

	if !s.Cancel(j2.ID) {
		t.Fatal("cancel of waiter failed")
	}
	if st := waitTerminal(j2); st != StateCanceled {
		t.Fatalf("canceled waiter ended %v", st)
	}

	gate.release <- struct{}{}
	if st := waitTerminal(j1); st != StateDone {
		t.Fatalf("leader ended %v after waiter cancel", st)
	}
	if s.Runs() != 1 {
		t.Fatalf("runs = %d", s.Runs())
	}
}

// Canceling EVERY waiter cancels the flight: a still-queued task is
// skipped without simulating.
func TestSingleflightFlightCancel(t *testing.T) {
	s, gate := gatedService(t, Options{Workers: 1, QueueDepth: 4})
	defer s.Drain()

	// Occupy the lone worker with a decoy so the flight under test stays
	// queued (cancellation only stops tasks that have not started).
	decoy, err := s.Submit(fastSpec(300))
	if err != nil {
		t.Fatal(err)
	}
	<-gate.arrived

	j1, err := s.Submit(fastSpec(301))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(fastSpec(301))
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(j1.ID)
	s.Cancel(j2.ID)
	if st := waitTerminal(j1); st != StateCanceled {
		t.Fatalf("j1 ended %v", st)
	}
	if st := waitTerminal(j2); st != StateCanceled {
		t.Fatalf("j2 ended %v", st)
	}

	gate.release <- struct{}{} // decoy simulates
	<-gate.arrived             // canceled task reaches the gate
	gate.release <- struct{}{} // ... and is skipped (ctx already canceled)
	if st := waitTerminal(decoy); st != StateDone {
		t.Fatalf("decoy ended %v", st)
	}
	s.Drain()
	if s.Runs() != 1 {
		t.Fatalf("runs = %d; the fully-canceled flight must not simulate", s.Runs())
	}
	if _, ok := s.Result(j1.Key); ok {
		t.Fatal("canceled flight produced a cache entry")
	}
}

// Full queue: submission fails synchronously with ErrBusy and leaves no
// job or flight behind; after drainage the same spec submits cleanly.
func TestQueueFullBackpressure(t *testing.T) {
	s, gate := gatedService(t, Options{Workers: 1, QueueDepth: 1})
	defer s.Drain()

	j1, err := s.Submit(fastSpec(400)) // worker takes it, holds at gate
	if err != nil {
		t.Fatal(err)
	}
	<-gate.arrived
	j2, err := s.Submit(fastSpec(401)) // fills the single queue slot
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(fastSpec(402)); err != ErrBusy {
		t.Fatalf("third submission: %v, want ErrBusy", err)
	}
	// The rejected spec left no flight: resubmitting after space frees
	// works and is a fresh leader, not a stale waiter.
	gate.release <- struct{}{}
	if st := waitTerminal(j1); st != StateDone {
		t.Fatalf("j1 ended %v", st)
	}
	<-gate.arrived
	j3, err := s.Submit(fastSpec(402))
	if err != nil {
		t.Fatalf("resubmission after drain: %v", err)
	}
	gate.release <- struct{}{}
	<-gate.arrived
	gate.release <- struct{}{}
	if st := waitTerminal(j2); st != StateDone {
		t.Fatalf("j2 ended %v", st)
	}
	if st := waitTerminal(j3); st != StateDone {
		t.Fatalf("j3 ended %v", st)
	}
}

// Draining: queued work completes and lands in the cache; new submissions
// are refused with ErrDraining.
func TestDrainCompletesQueuedWork(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, QueueDepth: 8})
	var jobs []*Job
	for seed := uint64(500); seed < 503; seed++ {
		j, err := s.Submit(fastSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Drain()
	for _, j := range jobs {
		if st, _, _ := j.Snapshot(); st != StateDone {
			t.Fatalf("job %s ended %v after drain", j.ID, st)
		}
		if _, ok := s.Result(j.Key); !ok {
			t.Fatalf("job %s has no artifact after drain", j.ID)
		}
	}
	if _, err := s.Submit(fastSpec(599)); err != ErrDraining {
		t.Fatalf("post-drain submission: %v, want ErrDraining", err)
	}
}

// The -race concurrency certification: 64 goroutines hammer 4 distinct
// keys; singleflight plus the cache must hold simulations to exactly 4.
func TestConcurrentSubmissionsCollapse(t *testing.T) {
	s := newTestService(t, Options{Workers: 4, QueueDepth: 64})
	const goroutines = 64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			j, err := s.Submit(fastSpec(600 + uint64(g)%4))
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: %w", g, err)
				return
			}
			if st := waitTerminal(j); st != StateDone {
				errs <- fmt.Errorf("goroutine %d: job ended %v", g, st)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if runs := s.Runs(); runs != 4 {
		t.Fatalf("%d submissions over 4 keys ran %d simulations, want 4", goroutines, runs)
	}
	st := s.Stats()
	if st.Submitted != goroutines {
		t.Fatalf("submitted = %d", st.Submitted)
	}
	if st.Collapsed+st.Cache.Hits != goroutines-4 {
		t.Fatalf("collapsed(%d) + cache hits(%d) should absorb the other %d submissions",
			st.Collapsed, st.Cache.Hits, goroutines-4)
	}
}

// Job registry cap: terminal jobs are evicted in insertion order; live
// jobs never are.
func TestJobRegistryCap(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, MaxJobs: 2})
	j1, err := s.Submit(fastSpec(700))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(j1)
	j2, err := s.Submit(fastSpec(700)) // cache hit, terminal
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(j2)
	if _, err := s.Submit(fastSpec(700)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Job(j1.ID); ok {
		t.Fatal("oldest terminal job survived past the cap")
	}
	if st := s.Stats(); st.Jobs != 2 {
		t.Fatalf("registry holds %d jobs, cap is 2", st.Jobs)
	}
}

// A live job at the front of the registry is skipped over: eviction takes
// the oldest TERMINAL job, wherever it sits.
func TestJobRegistryCapSkipsLiveJobs(t *testing.T) {
	s, gate := gatedService(t, Options{Workers: 1, QueueDepth: 4, MaxJobs: 2})
	defer s.Drain()

	j1, err := s.Submit(fastSpec(710)) // held at the gate: stays live
	if err != nil {
		t.Fatal(err)
	}
	<-gate.arrived
	j2, err := s.Submit(fastSpec(711))
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(j2.ID)
	if st := waitTerminal(j2); st != StateCanceled {
		t.Fatalf("j2 ended %v", st)
	}
	j3, err := s.Submit(fastSpec(712)) // at cap: must evict j2, not j1
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Job(j2.ID); ok {
		t.Fatal("terminal job behind a live one survived eviction")
	}
	if _, ok := s.Job(j1.ID); !ok {
		t.Fatal("live front job was evicted")
	}

	gate.release <- struct{}{} // j1 simulates
	<-gate.arrived             // j2's canceled task is skipped
	gate.release <- struct{}{}
	<-gate.arrived // j3 simulates
	gate.release <- struct{}{}
	if st := waitTerminal(j1); st != StateDone {
		t.Fatalf("j1 ended %v", st)
	}
	if st := waitTerminal(j3); st != StateDone {
		t.Fatalf("j3 ended %v", st)
	}
}
