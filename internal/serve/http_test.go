package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	puno "repro"
)

// postSpec submits a spec over HTTP and decodes the job rendering.
func postSpec(t *testing.T, ts *httptest.Server, sp Spec) (jobJSON, *http.Response) {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j jobJSON
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return j, resp
}

func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestHTTPEndToEnd walks the whole client protocol: submit, long-poll to
// terminal, fetch the artifact (byte-identical to a direct simulation),
// refetch by content address, resubmit for a 200 cache hit, and decode to
// JSON.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := fastSpec(900)
	j, resp := postSpec(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if j.ID == "" || j.Key == "" {
		t.Fatalf("submit rendering incomplete: %+v", j)
	}

	// Long-poll until terminal.
	code, _, body := getBody(t, ts.URL+"/v1/jobs/"+j.ID+"?wait=1")
	if code != http.StatusOK {
		t.Fatalf("poll status %d", code)
	}
	var polled jobJSON
	if err := json.Unmarshal(body, &polled); err != nil {
		t.Fatal(err)
	}
	if polled.State != string(StateDone) {
		t.Fatalf("long-poll returned state %q", polled.State)
	}

	// The served artifact is byte-identical to a direct run's encoding.
	rs, _, err := spec.resolve()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := puno.Run(rs.Config, rs.Workload)
	if err != nil {
		t.Fatal(err)
	}
	want, err := puno.EncodeResult(direct.Clone())
	if err != nil {
		t.Fatal(err)
	}
	code, hdr, got := getBody(t, ts.URL+"/v1/jobs/"+j.ID+"/result")
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("result fetch: status %d, byte-equal %v", code, bytes.Equal(got, want))
	}
	if hdr.Get("X-Puno-Key") != j.Key {
		t.Fatalf("artifact key header %q, job key %q", hdr.Get("X-Puno-Key"), j.Key)
	}

	// Content-addressed fetch serves the same bytes.
	code, _, byKey := getBody(t, ts.URL+"/v1/results/"+j.Key)
	if code != http.StatusOK || !bytes.Equal(byKey, want) {
		t.Fatalf("fetch by key: status %d", code)
	}

	// Identical resubmission: 200 (not 202), cached, zero extra runs.
	runs := s.Runs()
	j2, resp2 := postSpec(t, ts, spec)
	if resp2.StatusCode != http.StatusOK || !j2.Cached || j2.State != string(StateDone) {
		t.Fatalf("resubmission: status %d, %+v", resp2.StatusCode, j2)
	}
	if s.Runs() != runs {
		t.Fatal("cache-hit resubmission invoked the simulator")
	}

	// JSON rendering decodes to the same Result.
	code, hdr, jsonBody := getBody(t, ts.URL+"/v1/results/"+j.Key+"?format=json")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("json fetch: status %d, type %q", code, hdr.Get("Content-Type"))
	}
	var rendered struct {
		Workload string `json:"Workload"`
		Commits  uint64 `json:"Commits"`
	}
	if err := json.Unmarshal(jsonBody, &rendered); err != nil {
		t.Fatal(err)
	}
	if rendered.Workload != direct.Workload || rendered.Commits != direct.Commits {
		t.Fatalf("json rendering mismatch: %+v vs %s/%d", rendered, direct.Workload, direct.Commits)
	}

	// Stats reflect the traffic.
	code, _, statsBody := getBody(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	var st Stats
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || st.Submitted != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, resp := postSpec(t, ts, Spec{Workload: "no-such"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad workload: status %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"kmeans","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/result", "/v1/jobs/j999999/stream"} {
		if code, _, _ := getBody(t, ts.URL+path); code != http.StatusNotFound {
			t.Fatalf("%s: status %d", path, code)
		}
	}
	if code, _, _ := getBody(t, ts.URL+"/v1/results/nothex"); code != http.StatusBadRequest {
		t.Fatalf("malformed key: status %d", code)
	}
	var absent Key
	absent[0] = 0xAB
	if code, _, _ := getBody(t, ts.URL+"/v1/results/"+absent.String()); code != http.StatusGone {
		t.Fatalf("absent key: status %d", code)
	}
}

// TestHTTPBackpressure drives the full-queue path over the wire: the third
// submission gets 429 with a Retry-After hint, and once the queue drains a
// resubmission succeeds.
func TestHTTPBackpressure(t *testing.T) {
	s, gate := gatedService(t, Options{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(s.Drain)
	t.Cleanup(ts.Close)

	j1, resp := postSpec(t, ts, fastSpec(910))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	<-gate.arrived // worker holds j1's task
	if _, resp := postSpec(t, ts, fastSpec(911)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d", resp.StatusCode)
	}
	_, resp429 := postSpec(t, ts, fastSpec(912))
	if resp429.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d", resp429.StatusCode)
	}
	if got := resp429.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Fatalf("Retry-After = %q", got)
	}

	gate.release <- struct{}{} // j1 simulates; queue slot frees
	code, _, _ := getBody(t, ts.URL+"/v1/jobs/"+j1.ID+"?wait=1")
	if code != http.StatusOK {
		t.Fatalf("poll status %d", code)
	}
	<-gate.arrived // second task at the gate; slot is free again
	if _, resp := postSpec(t, ts, fastSpec(912)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retry after drain: status %d", resp.StatusCode)
	}
	gate.release <- struct{}{}
	<-gate.arrived
	gate.release <- struct{}{}
}

// TestHTTPCancelAndStream cancels a queued job over DELETE and verifies the
// SSE stream replays the lifecycle of another to its terminal event.
func TestHTTPCancelAndStream(t *testing.T) {
	s, gate := gatedService(t, Options{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(s.Drain)
	t.Cleanup(ts.Close)

	decoy, resp := postSpec(t, ts, fastSpec(920))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("decoy submit: status %d", resp.StatusCode)
	}
	<-gate.arrived // worker busy; next submissions stay queued

	victim, _ := postSpec(t, ts, fastSpec(921))
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}
	code, _, body := getBody(t, ts.URL+"/v1/jobs/"+victim.ID+"?wait=1")
	if code != http.StatusOK || !strings.Contains(string(body), string(StateCanceled)) {
		t.Fatalf("canceled job poll: status %d, body %s", code, body)
	}
	if code, _, _ := getBody(t, ts.URL+"/v1/jobs/"+victim.ID+"/result"); code != http.StatusConflict {
		t.Fatalf("canceled job result: status %d", code)
	}

	// Stream the decoy while releasing it. SSE is edge-triggered and may
	// coalesce fast transitions, so the contract is: states are an ordered
	// subsequence of queued → running → done, starting at the state the
	// stream opened on and ending at the terminal event (cancellation
	// above must not have touched this job).
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + decoy.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	go func() {
		gate.release <- struct{}{} // decoy simulates
		<-gate.arrived             // canceled victim's task reaches the worker
		gate.release <- struct{}{} // ... and is skipped
	}()
	var states []string
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev jobJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		states = append(states, ev.State)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	order := map[string]int{"queued": 0, "running": 1, "done": 2}
	if len(states) == 0 || states[0] != "queued" || states[len(states)-1] != "done" {
		t.Fatalf("stream states %v", states)
	}
	for i := 1; i < len(states); i++ {
		if order[states[i]] <= order[states[i-1]] {
			t.Fatalf("stream states out of order: %v", states)
		}
	}
}
