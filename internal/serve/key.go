// Package serve is the long-running simulation service behind cmd/punoserve:
// an HTTP/JSON job API over three performance layers — a content-addressed
// result cache, singleflight deduplication of concurrent identical
// requests, and a persistent worker pool of reusable simulation arenas.
//
// The load-bearing property is determinism. punovet mechanizes the claim
// that one (Config, workload, seed) point always produces one Result, so a
// cache keyed by the canonical encoding of those inputs (plus the code
// version) can never serve a stale answer: a hit is provably fresh, and
// warm requests never touch the simulator. See DESIGN.md
// "Content-addressed result caching".
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime/debug"

	puno "repro"
)

// Key is the content address of one simulation point: the SHA-256 of the
// canonical encoding of (code version, machine.Config, workload). Equal
// keys mean equal inputs mean — by the determinism contract — equal
// Results.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk artifact name and
// the /v1/results/{key} path segment).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes the hex rendering produced by String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, fmt.Errorf("serve: malformed result key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// keyMagic versions the key material layout itself; bumping it (or either
// nested encoding's magic) rotates every key, which is the safe failure
// mode — a stale key can never alias a run with different semantics.
const keyMagic = "punokey/1"

// wlMagic versions the workload portion of the key material.
const wlMagic = "punowl/1"

// BuildKey derives the content address of one simulation point. The
// material is keyMagic, the code version (len-prefixed), the Config's
// canonical punocfg/1 encoding, and the workload profile's canonical
// encoding; Shards is excluded by the Config encoding because sharding is
// an execution strategy with bit-identical results, so serial and PDES
// executions of one point share a cache slot.
func BuildKey(codeVersion string, cfg puno.Config, wl *puno.Profile) (Key, error) {
	b := make([]byte, 0, 512)
	b = append(b, keyMagic...)
	b = binary.AppendUvarint(b, uint64(len(codeVersion)))
	b = append(b, codeVersion...)
	b, err := cfg.AppendCanonical(b)
	if err != nil {
		return Key{}, err
	}
	b = appendWorkloadCanonical(b, wl)
	return sumKey(b), nil
}

// sumKey hashes assembled key material. Hot: every request — warm or cold —
// pays exactly one of these before the cache lookup.
//
//puno:hot
func sumKey(material []byte) Key {
	return Key(sha256.Sum256(material))
}

// appendWorkloadCanonical appends the deterministic encoding of a stamp
// profile: name, contention class, transaction count, the paper abort rate
// (bit pattern, so float equality is byte equality), and every Class field
// in declaration order. Any knob that can change a generated transaction
// stream changes the bytes.
func appendWorkloadCanonical(b []byte, p *puno.Profile) []byte {
	u := func(v uint64) { b = binary.AppendUvarint(b, v) }
	i := func(v int) { b = binary.AppendUvarint(b, uint64(int64(v))) }
	flag := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = append(b, wlMagic...)
	u(uint64(len(p.Name())))
	b = append(b, p.Name()...)
	flag(p.HighContention())
	i(p.TxPerCPU())
	u(math.Float64bits(p.PaperAbortRate))
	classes := p.Classes()
	u(uint64(len(classes)))
	for _, cl := range classes {
		i(cl.StaticID)
		i(cl.Weight)
		u(uint64(cl.RegionBase))
		i(cl.RegionLines)
		flag(cl.ReadWholeRegion)
		i(cl.ReadsMin)
		i(cl.ReadsMax)
		i(cl.WritesMin)
		i(cl.WritesMax)
		flag(cl.WritesFromReads)
		flag(cl.RMW)
		i(cl.HotLines)
		i(cl.PrivateLines)
		u(uint64(cl.ComputePerRead))
		u(uint64(cl.BodyCompute))
		u(uint64(cl.Think))
	}
	return b
}

// DetectCodeVersion returns the VCS revision baked into the binary by the
// Go toolchain, or "dev" when building outside a stamped checkout (go test,
// uncommitted worktrees). Dev builds should pass an explicit -codeversion
// so two differing dev binaries never share cache slots.
func DetectCodeVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "dev"
}
