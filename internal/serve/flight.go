package serve

import (
	"context"
	"sync"
)

// flightGroup collapses concurrent identical requests onto one in-flight
// simulation (singleflight). The semantics the tests pin down:
//
//   - The first submitter for a key becomes the leader and enqueues the
//     one pool task; everyone else joins as a waiter and shares the
//     flight's outcome.
//   - The flight's context is detached from every waiter's context:
//     cancelling one waiter never cancels the computation. Only when the
//     LAST waiter leaves is the flight cancelled — and even then a task
//     already executing runs to completion and populates the cache (the
//     cancellation only stops a still-queued task from starting).
type flightGroup struct {
	mu      sync.Mutex
	flights map[Key]*flight
}

// flight is one in-progress computation.
type flight struct {
	key     Key
	ctx     context.Context // detached; cancelled when the last waiter leaves
	cancel  context.CancelFunc
	started chan struct{} // closed when a worker begins simulating
	done    chan struct{} // closed at finish; data/err are valid after
	data    []byte
	err     error
	waiters int
	ended   bool
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[Key]*flight)}
}

// join registers interest in key's flight, creating it if absent. The
// creator is the leader and is responsible for enqueueing the task (or
// calling abort if it cannot).
func (g *flightGroup) join(k Key) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[k]; ok {
		f.waiters++
		return f, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	f = &flight{
		key:     k,
		ctx:     ctx,
		cancel:  cancel,
		started: make(chan struct{}),
		done:    make(chan struct{}),
		waiters: 1,
	}
	g.flights[k] = f
	return f, true
}

// leave withdraws one waiter. The last waiter out cancels the flight's
// context; a queued task then never starts, while a running one completes
// unharmed (workers only check the context before starting).
func (g *flightGroup) leave(f *flight) {
	g.mu.Lock()
	f.waiters--
	if f.waiters <= 0 && !f.ended {
		f.cancel()
	}
	g.mu.Unlock()
}

// finish publishes the flight's outcome: fields are set before done is
// closed, so any goroutine that observed <-f.done may read data/err
// without further synchronization.
func (g *flightGroup) finish(f *flight, data []byte, err error) {
	g.mu.Lock()
	f.data = data
	f.err = err
	f.ended = true
	delete(g.flights, f.key)
	g.mu.Unlock()
	close(f.done)
	f.cancel() // release the context's resources
}

// abort retracts a flight whose leader could not enqueue its task (queue
// full). The caller guarantees no other submitter has joined — Submit
// holds the service lock across join and enqueue — so no waiter is
// stranded.
func (g *flightGroup) abort(f *flight) {
	g.mu.Lock()
	delete(g.flights, f.key)
	f.ended = true
	g.mu.Unlock()
	f.cancel()
}
