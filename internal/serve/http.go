package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	puno "repro"
)

// retryAfterSeconds is the constant backoff hint sent with 429 responses.
// A simulation takes tens of milliseconds, so one second of client backoff
// comfortably drains a full queue; a fixed value keeps the handler free of
// wall-clock reads (the punovet wallclock invariant).
const retryAfterSeconds = "1"

// jobJSON is the wire rendering of a job.
type jobJSON struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Key    string `json:"key"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

func renderJob(j *Job) jobJSON {
	st, errMsg, _ := j.Snapshot()
	return jobJSON{ID: j.ID, State: string(st), Key: j.Key.String(), Cached: j.Cached, Error: errMsg}
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a Spec; 200 terminal (cache hit),
//	                            202 accepted, 400 bad spec, 429 queue full
//	GET    /v1/jobs/{id}        job status; ?wait=1 long-polls to terminal
//	GET    /v1/jobs/{id}/stream SSE state transitions until terminal
//	GET    /v1/jobs/{id}/result punores/1 bytes; ?format=json decodes
//	DELETE /v1/jobs/{id}        cancel (see Service.Cancel semantics)
//	GET    /v1/results/{key}    artifact by content address
//	GET    /v1/stats            layer counters
//	GET    /healthz             liveness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResultByKey)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("malformed spec: %v", err))
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrBadSpec):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", retryAfterSeconds)
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	status := http.StatusAccepted
	if st, _, _ := job.Snapshot(); st.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, renderJob(job))
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	if r.URL.Query().Get("wait") != "" {
		// Long-poll: block until the job is terminal or the client goes
		// away. No timer — the client's context bounds the wait.
		for {
			st, _, changed := job.Snapshot()
			if st.Terminal() {
				break
			}
			select {
			case <-changed:
			case <-r.Context().Done():
				writeJSON(w, http.StatusOK, renderJob(job))
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, renderJob(job))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	if !s.Cancel(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	job, _ := s.Job(r.PathValue("id"))
	writeJSON(w, http.StatusOK, renderJob(job))
}

// handleStream emits one SSE data event per observed job state, ending
// after the terminal event. Transitions are edge-triggered off the job's
// changed channel, so the stream costs nothing while the state holds.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	var last JobState
	for {
		st, _, changed := job.Snapshot()
		if st != last {
			payload, _ := json.Marshal(renderJob(job))
			fmt.Fprintf(w, "data: %s\n\n", payload)
			fl.Flush()
			last = st
		}
		if st.Terminal() {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	st, errMsg, _ := job.Snapshot()
	switch st {
	case StateDone:
	case StateFailed:
		httpError(w, http.StatusConflict, "job failed: "+errMsg)
		return
	case StateCanceled:
		httpError(w, http.StatusConflict, "job canceled")
		return
	default:
		httpError(w, http.StatusConflict, "job not finished; poll with ?wait=1")
		return
	}
	s.serveArtifact(w, r, job.Key)
}

func (s *Service) handleResultByKey(w http.ResponseWriter, r *http.Request) {
	key, err := ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveArtifact(w, r, key)
}

// serveArtifact writes the cached punores/1 bytes for key, decoded to JSON
// on ?format=json. A done job's artifact can only be absent if the cache
// was memory-only and the entry was evicted; 410 tells the client to
// resubmit (which re-simulates deterministically).
func (s *Service) serveArtifact(w http.ResponseWriter, r *http.Request, key Key) {
	data, ok := s.cache.Get(key)
	if !ok {
		httpError(w, http.StatusGone, "result no longer cached; resubmit the spec")
		return
	}
	if r.URL.Query().Get("format") == "json" {
		res, err := puno.DecodeResult(data)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Puno-Key", key.String())
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
