package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	puno "repro"
)

// testArtifact builds a small valid punores/1 artifact whose bytes depend
// on n (the cache stores opaque validated artifacts, so tests need real
// encodings, not arbitrary bytes).
func testArtifact(t *testing.T, n uint64) []byte {
	t.Helper()
	res := &puno.Result{Workload: "fixture", Commits: n, FalseAbortHist: []uint64{}}
	data, err := puno.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testKey(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestCachePutGet(t *testing.T) {
	c, err := NewCache(4, "")
	if err != nil {
		t.Fatal(err)
	}
	want := testArtifact(t, 1)
	c.Put(testKey(1), want)
	got, ok := c.Get(testKey(1))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get after Put: ok=%v, %d bytes", ok, len(got))
	}
	if _, ok := c.Get(testKey(2)); ok {
		t.Fatal("Get of absent key succeeded")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats after one hit and one miss: %+v", st)
	}
}

// Hit-after-restart: a fresh Cache over the same directory must serve the
// previous process's artifacts, counting them as disk hits, and admit them
// back into memory (the second Get is a memory hit).
func TestCacheHitAfterRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := testArtifact(t, 7)
	c1.Put(testKey(7), want)

	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(testKey(7))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("restart Get: ok=%v, byte-equal=%v", ok, bytes.Equal(got, want))
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Hits != 0 {
		t.Fatalf("first post-restart Get should be a disk hit: %+v", st)
	}
	if _, ok := c2.Get(testKey(7)); !ok {
		t.Fatal("re-admitted entry missing")
	}
	if st := c2.Stats(); st.Hits != 1 {
		t.Fatalf("second post-restart Get should be a memory hit: %+v", st)
	}
}

// A corrupted or truncated disk artifact must read as a miss, never be
// served: the checksum gate is what lets the service trust disk bytes.
func TestCacheRejectsCorruptDiskArtifact(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	data := testArtifact(t, 3)
	c.Put(testKey(3), data)

	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x41
	if err := os.WriteFile(filepath.Join(dir, testKey(3).String()+".res"), mut, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(testKey(3)); ok {
		t.Fatal("corrupt disk artifact served")
	}
	if st := c2.Stats(); st.Misses != 1 {
		t.Fatalf("corrupt artifact should count as a miss: %+v", st)
	}
}

// LRU pressure: the least recently used entry is evicted from memory, but
// the disk tier still has it, so the eviction costs a disk hit — not a
// re-simulation.
func TestCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b2, d := testArtifact(t, 1), testArtifact(t, 2), testArtifact(t, 3)
	c.Put(testKey(1), a)
	c.Put(testKey(2), b2)
	if _, ok := c.Get(testKey(1)); !ok { // touch 1: now 2 is LRU
		t.Fatal("key 1 missing before pressure")
	}
	c.Put(testKey(3), d) // evicts 2
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after eviction: %+v", st)
	}
	got, ok := c.Get(testKey(2))
	if !ok || !bytes.Equal(got, b2) {
		t.Fatal("evicted entry not recoverable from disk")
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("evicted entry should return via the disk tier: %+v", st)
	}

	// Memory-only cache: eviction is final.
	m, err := NewCache(1, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Put(testKey(1), a)
	m.Put(testKey(2), b2)
	if _, ok := m.Get(testKey(1)); ok {
		t.Fatal("memory-only cache resurrected an evicted entry")
	}
}

// LRU order must follow access order, not insertion order.
func TestCacheLRUAccessOrder(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put(testKey(1), testArtifact(t, 1))
	c.Put(testKey(2), testArtifact(t, 2))
	if _, ok := c.Get(testKey(1)); !ok {
		t.Fatal("key 1 missing")
	}
	c.Put(testKey(3), testArtifact(t, 3))
	if _, ok := c.lookup(testKey(1)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.lookup(testKey(2)); ok {
		t.Fatal("least recently used entry survived")
	}
}
