package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	puno "repro"
	"repro/internal/runner"
)

// ErrBusy is returned by TryEnqueue when the bounded queue is full. The
// HTTP layer maps it to 429 + Retry-After: shedding load at submit time is
// what keeps a cold-miss stampede from queueing unbounded simulation work.
var ErrBusy = errors.New("serve: simulation queue full")

// ErrDraining is returned once Drain has begun: the server is shutting
// down and accepts no new work.
var ErrDraining = errors.New("serve: server draining")

// Pool is the persistent worker pool. Each worker goroutine owns one
// reusable puno.Arena — the same Machine.Reset machinery a sweep worker
// uses — so steady-state requests pay simulation time, not machine
// construction. Sizing follows runner.AutoWorkers: a deployment expecting
// sharded (PDES) specs sets taskThreads to the widest Config.Shards so the
// pool does not oversubscribe the host.
type Pool struct {
	queue chan *Task
	wg    sync.WaitGroup
	runs  atomic.Uint64

	mu     sync.RWMutex
	closed bool

	// gate, when non-nil (tests only), makes worker scheduling
	// deterministic: a worker announces each dequeued task on arrived and
	// holds until release, letting tests construct full-queue and
	// cancellation interleavings without timing dependence.
	gate *testGate
}

type testGate struct {
	arrived chan struct{}
	release chan struct{}
}

// Task is one unit of pool work. Ctx is the flight's detached context: a
// worker consults it once, before starting, so cancellation stops queued
// work but never wastes a simulation already in progress.
type Task struct {
	Ctx     context.Context
	Spec    puno.RunSpec
	OnStart func()
	OnDone  func(res *puno.Result, err error)
}

// NewPool starts workers goroutines (<=0 sizes via
// runner.AutoWorkers(taskThreads)) over a bounded queue of depth slots
// (<=0 selects 4x the worker count).
func NewPool(workers, taskThreads, depth int) *Pool {
	return newPool(workers, taskThreads, depth, nil)
}

// newPool is NewPool plus the test gate; the gate is installed before any
// worker starts, so workers may read it unsynchronized.
func newPool(workers, taskThreads, depth int, gate *testGate) *Pool {
	if workers <= 0 {
		workers = runner.AutoWorkers(taskThreads)
	}
	if depth <= 0 {
		depth = 4 * workers
	}
	p := &Pool{queue: make(chan *Task, depth), gate: gate}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	arena := puno.NewArena()
	for t := range p.queue {
		if g := p.gate; g != nil {
			g.arrived <- struct{}{}
			<-g.release
		}
		if err := t.Ctx.Err(); err != nil {
			t.OnDone(nil, err)
			continue
		}
		if t.OnStart != nil {
			t.OnStart()
		}
		res, err := arena.Run(t.Spec)
		p.runs.Add(1)
		t.OnDone(res, err)
	}
}

// TryEnqueue submits a task without blocking: ErrBusy when the queue is
// full (the backpressure signal), ErrDraining after Drain has begun.
func (p *Pool) TryEnqueue(t *Task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.queue <- t:
		return nil
	default:
		return ErrBusy
	}
}

// Drain closes the queue and waits for the workers to finish. Tasks
// already queued still execute — their results land in the cache, so work
// accepted before shutdown is never thrown away — and every OnDone has
// returned by the time Drain does.
func (p *Pool) Drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Runs reports how many simulations the pool has executed — the counter
// the smoke test and the singleflight benchmark assert against (a warm hit
// or a collapsed flight must not advance it).
func (p *Pool) Runs() uint64 { return p.runs.Load() }

// QueueLen and QueueCap expose queue occupancy for /v1/stats.
func (p *Pool) QueueLen() int { return len(p.queue) }
func (p *Pool) QueueCap() int { return cap(p.queue) }
