package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

// benchSeed hands out seeds no test uses, so cold-path iterations never
// collide with each other or with cached test artifacts.
var benchSeed atomic.Uint64

func init() { benchSeed.Store(1 << 32) }

func benchService(b *testing.B) *Service {
	b.Helper()
	s, err := New(Options{CacheEntries: 1 << 16, QueueDepth: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Drain)
	return s
}

// BenchmarkServe measures the three serving paths:
//
//   - cold: every iteration is a fresh key — full simulation cost;
//   - warm: every iteration hits the primed cache — the headline claim is
//     warm latency >= 100x below cold;
//   - singleflight: 64 concurrent identical submissions per iteration,
//     which must collapse onto exactly one simulation.
func BenchmarkServe(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		s := benchService(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j, err := s.Submit(fastSpec(benchSeed.Add(1)))
			if err != nil {
				b.Fatal(err)
			}
			if st := waitTerminal(j); st != StateDone {
				b.Fatalf("job ended %v", st)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := benchService(b)
		spec := fastSpec(benchSeed.Add(1))
		j, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if st := waitTerminal(j); st != StateDone {
			b.Fatalf("priming run ended %v", st)
		}
		runs := s.Runs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := s.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			if !j.Cached {
				b.Fatal("warm submission missed the cache")
			}
		}
		b.StopTimer()
		if got := s.Runs(); got != runs {
			b.Fatalf("warm hits ran %d extra simulations", got-runs)
		}
	})
	b.Run("singleflight", func(b *testing.B) {
		s := benchService(b)
		const clients = 64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runs := s.Runs()
			spec := fastSpec(benchSeed.Add(1))
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					j, err := s.Submit(spec)
					if err != nil {
						b.Error(err)
						return
					}
					if st := waitTerminal(j); st != StateDone {
						b.Errorf("job ended %v", st)
					}
				}()
			}
			wg.Wait()
			if got := s.Runs(); got != runs+1 {
				b.Fatalf("%d concurrent submissions ran %d simulations, want 1",
					clients, got-runs)
			}
		}
	})
}
