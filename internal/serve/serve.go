package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	puno "repro"
)

// ErrBadSpec wraps submission validation failures (HTTP 400).
var ErrBadSpec = errors.New("serve: invalid spec")

// Spec is the JSON body of a job submission: a named STAMP workload plus
// the experiment knobs the sweep CLI exposes. Zero-valued fields keep the
// paper's Table II defaults.
type Spec struct {
	Workload      string `json:"workload"`
	Scheme        string `json:"scheme,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	TxPerCPU      int    `json:"tx_per_cpu,omitempty"`
	Nodes         int    `json:"nodes,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	SignatureBits int    `json:"signature_bits,omitempty"`
}

// resolve validates the spec and produces the fully resolved run point:
// the RunSpec the pool executes and the profile the cache key encodes.
func (sp Spec) resolve() (puno.RunSpec, *puno.Profile, error) {
	fail := func(format string, args ...any) (puno.RunSpec, *puno.Profile, error) {
		return puno.RunSpec{}, nil, fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
	}
	wl, err := puno.WorkloadByName(sp.Workload)
	if err != nil {
		return fail("%v", err)
	}
	if sp.TxPerCPU < 0 {
		return fail("tx_per_cpu must be >= 0")
	}
	if sp.TxPerCPU > 0 {
		wl = wl.WithTxPerCPU(sp.TxPerCPU)
	}
	cfg := puno.DefaultConfig()
	if sp.Scheme != "" {
		sch, err := puno.SchemeByName(sp.Scheme)
		if err != nil {
			return fail("%v", err)
		}
		cfg.Scheme = sch
	}
	if sp.Seed != 0 {
		cfg.Seed = sp.Seed
	}
	if sp.Nodes != 0 {
		w := 0
		for w*w < sp.Nodes {
			w++
		}
		if w*w != sp.Nodes {
			return fail("nodes must be a perfect square (mesh is WxW), got %d", sp.Nodes)
		}
		cfg.Nodes = sp.Nodes
		cfg.Mesh.Width = w
		cfg.Mesh.Height = w
	}
	if sp.Shards < 0 {
		return fail("shards must be >= 0")
	}
	cfg.Shards = sp.Shards
	if sp.SignatureBits < 0 {
		return fail("signature_bits must be >= 0")
	}
	cfg.SignatureBits = sp.SignatureBits
	return puno.RunSpec{Config: cfg, Workload: wl}, wl, nil
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states. queued → running → done|failed, or → canceled from
// any non-terminal state.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job tracks one submission. Terminal result bytes live in the cache under
// Key — the job itself carries only lifecycle state.
type Job struct {
	ID     string
	Key    Key
	Cached bool // resolved straight from the cache at submit time

	mu      sync.Mutex
	state   JobState
	errMsg  string
	changed chan struct{}      // closed and replaced on every transition
	cancel  context.CancelFunc // detaches this job from its flight
}

// Snapshot returns the current state, the error message (failed jobs), and
// a channel closed at the next transition — the wait primitive behind
// long-polling and SSE.
func (j *Job) Snapshot() (JobState, string, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.changed
}

// setState advances the lifecycle; terminal states are sticky (a flight
// completing after a job was canceled must not resurrect it).
func (j *Job) setState(st JobState, msg string) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = st
		j.errMsg = msg
		close(j.changed)
		j.changed = make(chan struct{})
	}
	j.mu.Unlock()
}

// Options configures a Service.
type Options struct {
	CacheEntries int    // in-memory LRU capacity (<=0: 1024)
	CacheDir     string // disk tier root ("" disables)
	Workers      int    // pool size (<=0: runner.AutoWorkers(TaskThreads))
	TaskThreads  int    // widest Config.Shards expected, for pool sizing
	QueueDepth   int    // bounded queue slots (<=0: 4x workers)
	MaxJobs      int    // job registry cap (<=0: 4096)
	CodeVersion  string // cache-key code version ("" : DetectCodeVersion)
}

// Stats is the /v1/stats payload.
type Stats struct {
	CodeVersion string     `json:"code_version"`
	Runs        uint64     `json:"runs"`
	Submitted   uint64     `json:"submitted"`
	Collapsed   uint64     `json:"collapsed_flights"`
	Jobs        int        `json:"jobs"`
	QueueLen    int        `json:"queue_len"`
	QueueCap    int        `json:"queue_cap"`
	Cache       CacheStats `json:"cache"`
}

// Service ties the three layers together behind Submit: cache probe, then
// singleflight join, then pool enqueue — all synchronous, so backpressure
// (ErrBusy) is reported on the submit path, before a job exists.
type Service struct {
	cache       *Cache
	flights     *flightGroup
	pool        *Pool
	codeVersion string
	maxJobs     int

	watchers sync.WaitGroup // one per non-cached job; Drain waits on them

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string // insertion order, for capped-registry eviction
	seq       uint64
	submitted uint64
	collapsed uint64
}

// New builds and starts a service (the pool's workers spin up
// immediately).
func New(opts Options) (*Service, error) {
	return newService(opts, nil)
}

// newService is New plus the deterministic worker gate tests install.
func newService(opts Options, gate *testGate) (*Service, error) {
	cache, err := NewCache(opts.CacheEntries, opts.CacheDir)
	if err != nil {
		return nil, err
	}
	cv := opts.CodeVersion
	if cv == "" {
		cv = DetectCodeVersion()
	}
	maxJobs := opts.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 4096
	}
	return &Service{
		cache:       cache,
		flights:     newFlightGroup(),
		pool:        newPool(opts.Workers, opts.TaskThreads, opts.QueueDepth, gate),
		codeVersion: cv,
		maxJobs:     maxJobs,
		jobs:        make(map[string]*Job),
	}, nil
}

// Submit resolves a spec and returns its job. Three outcomes:
//
//   - cache hit: the job is born terminal (StateDone, Cached=true) — the
//     simulator is never touched;
//   - miss, flight exists: the job joins as a waiter (collapsed flight);
//   - miss, no flight: the job's flight is created and its task enqueued —
//     or, when the queue is full, Submit fails with ErrBusy and no job or
//     flight is left behind.
func (s *Service) Submit(spec Spec) (*Job, error) {
	rs, prof, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	key, err := BuildKey(s.codeVersion, rs.Config, prof)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.submitted++

	if _, ok := s.cache.Get(key); ok {
		job := s.newJobLocked(key)
		job.Cached = true
		job.setState(StateDone, "")
		return job, nil
	}

	f, leader := s.flights.join(key)
	if leader {
		task := &Task{
			Ctx:     f.ctx,
			Spec:    rs,
			OnStart: func() { close(f.started) },
			OnDone: func(res *puno.Result, err error) {
				var data []byte
				if err == nil {
					data, err = puno.EncodeResult(res)
				}
				if err == nil {
					s.cache.Put(key, data)
				}
				s.flights.finish(f, data, err)
			},
		}
		if err := s.pool.TryEnqueue(task); err != nil {
			s.flights.abort(f)
			return nil, err
		}
	} else {
		s.collapsed++
	}

	ctx, cancel := context.WithCancel(context.Background())
	job := s.newJobLocked(key)
	job.cancel = cancel
	s.watchers.Add(1)
	go s.watch(job, f, ctx)
	return job, nil
}

// watch follows a flight on a job's behalf: it relays the started and done
// transitions, and on job cancellation withdraws the job's waiter stake
// (cancelling the flight only if the job was the last one interested).
func (s *Service) watch(job *Job, f *flight, ctx context.Context) {
	defer s.watchers.Done()
	started := f.started
	for {
		select {
		case <-started:
			job.setState(StateRunning, "")
			started = nil // select ignores nil channels from here on
		case <-f.done:
			if f.err != nil {
				job.setState(StateFailed, f.err.Error())
			} else {
				job.setState(StateDone, "")
			}
			return
		case <-ctx.Done():
			s.flights.leave(f)
			job.setState(StateCanceled, "canceled by client")
			return
		}
	}
}

// newJobLocked mints a job under s.mu, evicting the oldest terminal job
// when the registry is at capacity (live jobs are never evicted).
func (s *Service) newJobLocked(key Key) *Job {
	if len(s.order) >= s.maxJobs {
		for i, id := range s.order {
			j := s.jobs[id]
			st, _, _ := j.Snapshot()
			if st.Terminal() {
				delete(s.jobs, id)
				if i == 0 {
					// The common case (oldest job is terminal) must not
					// memmove the whole registry on every submission once
					// the cap is reached — at steady state that copy
					// dominates the warm-hit path. Append reallocates the
					// backing array once it fills, so the abandoned prefix
					// is reclaimed amortized.
					s.order = s.order[1:]
				} else {
					s.order = append(s.order[:i], s.order[i+1:]...)
				}
				break
			}
		}
	}
	s.seq++
	job := &Job{
		ID:      fmt.Sprintf("j%06d", s.seq),
		Key:     key,
		state:   StateQueued,
		changed: make(chan struct{}),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	return job
}

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: it detaches the job from its flight (see
// flightGroup for what that does and does not stop) and marks it canceled.
// Returns false for unknown ids; canceling an already-terminal job is a
// no-op that still returns true.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// Result fetches an artifact straight from the cache by key.
func (s *Service) Result(k Key) ([]byte, bool) { return s.cache.Get(k) }

// Runs reports the pool's simulation count.
func (s *Service) Runs() uint64 { return s.pool.Runs() }

// Stats snapshots every layer's counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	submitted, collapsed, jobs := s.submitted, s.collapsed, len(s.jobs)
	s.mu.Unlock()
	return Stats{
		CodeVersion: s.codeVersion,
		Runs:        s.pool.Runs(),
		Submitted:   submitted,
		Collapsed:   collapsed,
		Jobs:        jobs,
		QueueLen:    s.pool.QueueLen(),
		QueueCap:    s.pool.QueueCap(),
		Cache:       s.cache.Stats(),
	}
}

// Drain stops accepting work, waits for queued tasks to finish (their
// results land in the cache; see Pool.Drain), and waits for every job to
// settle into a terminal state. Call after the HTTP listener has stopped
// accepting requests: once the pool is drained every flight has finished,
// so the watchers it waits on are all on their way out.
func (s *Service) Drain() {
	s.pool.Drain()
	s.watchers.Wait()
}
