// Package cache implements the set-associative cache arrays used for the
// private L1s and the shared banked L2. The arrays track MESI stable
// states, per-line data, LRU replacement, and transactional pinning:
// lines in a running transaction's read or write set must not be chosen as
// victims (the HTM aborts on overflow instead, which the machine layer
// counts separately).
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// State is a MESI stable state for a cached line.
type State uint8

// MESI stable states. Transient (in-flight) request state is tracked by the
// coherence controllers, not in the array.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Entry is one cache line's residency in the array.
type Entry struct {
	Line   mem.Line
	LID    mem.LineID // Line's interned dense ID (0 when unknown to the filler)
	State  State
	Data   mem.LineData
	Pinned bool // member of a live transaction's read/write set
	lru    uint64
	valid  bool
}

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Ways      int
}

// Sets returns the number of sets this configuration yields.
func (c Config) Sets() int { return c.SizeBytes / (mem.LineBytes * c.Ways) }

// Cache is a set-associative array. The zero value is unusable; construct
// with New.
type Cache struct {
	sets    int
	ways    int
	entries []Entry // sets x ways
	tick    uint64

	// Statistics.
	Hits, Misses, Evictions uint64
}

// New builds a cache from cfg. Size must be a positive multiple of
// ways*LineBytes and the set count must be a power of two.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("cache: non-positive geometry")
	}
	sets := cfg.Sets()
	if sets <= 0 || sets*(cfg.Ways*mem.LineBytes) != cfg.SizeBytes {
		panic(fmt.Sprintf("cache: size %d not divisible into %d-way sets", cfg.SizeBytes, cfg.Ways))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	return &Cache{
		sets:    sets,
		ways:    cfg.Ways,
		entries: make([]Entry, sets*cfg.Ways),
	}
}

// Reset returns the cache to the all-invalid state New(cfg) would produce,
// reusing the entry array when the geometry is unchanged (the arena-reuse
// path of the sweep harness) and reallocating it otherwise.
func (c *Cache) Reset(cfg Config) {
	if cfg.Ways != c.ways || cfg.Sets() != c.sets {
		*c = *New(cfg) // validates cfg and sizes the array
		return
	}
	clear(c.entries)
	c.tick = 0
	c.Hits, c.Misses, c.Evictions = 0, 0, 0
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setIndex(l mem.Line) int {
	return int((uint64(l) / mem.LineBytes) % uint64(c.sets))
}

func (c *Cache) setSlice(l mem.Line) []Entry {
	base := c.setIndex(l) * c.ways
	return c.entries[base : base+c.ways]
}

// Lookup returns the entry holding l, or nil. It does not touch LRU state
// or hit/miss counters; use Access for demand references.
func (c *Cache) Lookup(l mem.Line) *Entry {
	set := c.setSlice(l)
	for i := range set {
		if set[i].valid && set[i].Line == l {
			return &set[i]
		}
	}
	return nil
}

// Access performs a demand lookup: on hit it refreshes LRU and returns the
// entry; on miss it returns nil. Hit/miss counters are updated.
func (c *Cache) Access(l mem.Line) *Entry {
	e := c.Lookup(l)
	if e == nil {
		c.Misses++
		return nil
	}
	c.Hits++
	c.tick++
	e.lru = c.tick
	return e
}

// Victim returns the entry that would be evicted to make room for l: an
// invalid way if one exists, otherwise the least recently used non-pinned
// entry. It returns nil when every way is pinned (transactional overflow).
func (c *Cache) Victim(l mem.Line) *Entry {
	set := c.setSlice(l)
	var victim *Entry
	for i := range set {
		e := &set[i]
		if !e.valid {
			return e
		}
		if e.Pinned {
			continue
		}
		if victim == nil || e.lru < victim.lru {
			victim = e
		}
	}
	return victim
}

// Insert fills a line into the array, evicting a victim if needed. It
// returns the installed entry and, when a valid line was displaced, a copy
// of the displaced entry (evicted=true). Insert returns installed=nil when
// the set is fully pinned. Inserting a line that is already present panics:
// the coherence controller must not double-fill.
func (c *Cache) Insert(l mem.Line, st State, data mem.LineData) (installed *Entry, evicted Entry, wasEvicted bool) {
	return c.InsertID(l, 0, st, data)
}

// InsertID is Insert carrying l's interned LineID, so entries filled by the
// machine's miss path retain the dense index the coherence messages already
// computed (tag compare stays on Line; LID rides along for the HTM and
// writeback tables).
func (c *Cache) InsertID(l mem.Line, id mem.LineID, st State, data mem.LineData) (installed *Entry, evicted Entry, wasEvicted bool) {
	if c.Lookup(l) != nil {
		panic(fmt.Sprintf("cache: double insert of line %v", l))
	}
	v := c.Victim(l)
	if v == nil {
		return nil, Entry{}, false
	}
	if v.valid {
		c.Evictions++
		evicted, wasEvicted = *v, true
	}
	c.tick++
	*v = Entry{Line: l, LID: id, State: st, Data: data, lru: c.tick, valid: true}
	return v, evicted, wasEvicted
}

// Invalidate removes l from the array if present.
func (c *Cache) Invalidate(l mem.Line) {
	if e := c.Lookup(l); e != nil {
		*e = Entry{}
	}
}

// ForEach calls fn for every valid entry.
func (c *Cache) ForEach(fn func(*Entry)) {
	for i := range c.entries {
		if c.entries[i].valid {
			fn(&c.entries[i])
		}
	}
}

// CountValid returns the number of resident lines.
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].valid {
			n++
		}
	}
	return n
}
