package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func small() *Cache {
	// 4 sets x 2 ways.
	return New(Config{SizeBytes: 4 * 2 * mem.LineBytes, Ways: 2})
}

func line(i int) mem.Line { return mem.Line(uint64(i) * mem.LineBytes) }

func TestNewGeometry(t *testing.T) {
	c := New(Config{SizeBytes: 32 * 1024, Ways: 4})
	if c.Sets() != 128 {
		t.Fatalf("32KB/4-way sets = %d, want 128", c.Sets())
	}
	if c.Ways() != 4 {
		t.Fatalf("ways = %d, want 4", c.Ways())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{SizeBytes: 0, Ways: 4},
		{SizeBytes: 1024, Ways: 0},
		{SizeBytes: 3 * mem.LineBytes, Ways: 1}, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestInsertLookup(t *testing.T) {
	c := small()
	var d mem.LineData
	d[0] = 42
	e, _, ev := c.Insert(line(1), Shared, d)
	if e == nil || ev {
		t.Fatal("insert into empty cache failed or evicted")
	}
	got := c.Lookup(line(1))
	if got == nil || got.State != Shared || got.Data[0] != 42 {
		t.Fatalf("Lookup = %+v", got)
	}
}

func TestAccessCountsHitsMisses(t *testing.T) {
	c := small()
	c.Insert(line(1), Shared, mem.LineData{})
	if c.Access(line(1)) == nil {
		t.Fatal("expected hit")
	}
	if c.Access(line(2)) != nil {
		t.Fatal("expected miss")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Lines 0, 4, 8 map to set 0 in a 4-set cache.
	c.Insert(line(0), Shared, mem.LineData{})
	c.Insert(line(4), Shared, mem.LineData{})
	c.Access(line(0)) // make line 4 the LRU
	_, evicted, was := c.Insert(line(8), Shared, mem.LineData{})
	if !was || evicted.Line != line(4) {
		t.Fatalf("evicted %v (was=%v), want line 4", evicted.Line, was)
	}
	if c.Lookup(line(0)) == nil || c.Lookup(line(8)) == nil {
		t.Fatal("survivors missing after eviction")
	}
	if c.Lookup(line(4)) != nil {
		t.Fatal("victim still resident")
	}
}

func TestPinnedLinesNotEvicted(t *testing.T) {
	c := small()
	e0, _, _ := c.Insert(line(0), Modified, mem.LineData{})
	e4, _, _ := c.Insert(line(4), Modified, mem.LineData{})
	e0.Pinned = true
	e4.Pinned = true
	inst, _, _ := c.Insert(line(8), Shared, mem.LineData{})
	if inst != nil {
		t.Fatal("insert succeeded into fully pinned set")
	}
	e4.Pinned = false
	inst, evicted, was := c.Insert(line(8), Shared, mem.LineData{})
	if inst == nil || !was || evicted.Line != line(4) {
		t.Fatalf("expected eviction of unpinned line 4, got %v was=%v", evicted.Line, was)
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	c := small()
	c.Insert(line(1), Shared, mem.LineData{})
	defer func() {
		if recover() == nil {
			t.Error("double insert did not panic")
		}
	}()
	c.Insert(line(1), Modified, mem.LineData{})
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Insert(line(3), Exclusive, mem.LineData{})
	c.Invalidate(line(3))
	if c.Lookup(line(3)) != nil {
		t.Fatal("line resident after Invalidate")
	}
	c.Invalidate(line(99)) // absent: must be a no-op
}

func TestForEachAndCountValid(t *testing.T) {
	c := small()
	for i := 0; i < 5; i++ {
		c.Insert(line(i), Shared, mem.LineData{})
	}
	if c.CountValid() != 5 {
		t.Fatalf("CountValid = %d, want 5", c.CountValid())
	}
	n := 0
	c.ForEach(func(*Entry) { n++ })
	if n != 5 {
		t.Fatalf("ForEach visited %d, want 5", n)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("State strings wrong")
	}
}

// Property: after any sequence of inserts, residency never exceeds capacity,
// a line is never resident twice, and every resident line maps to the set it
// occupies.
func TestInsertInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		c := small()
		for _, r := range raw {
			l := line(int(r) % 32)
			if c.Lookup(l) == nil {
				c.Insert(l, Shared, mem.LineData{})
			}
		}
		if c.CountValid() > c.Sets()*c.Ways() {
			return false
		}
		seen := map[mem.Line]bool{}
		ok := true
		c.ForEach(func(e *Entry) {
			if seen[e.Line] {
				ok = false
			}
			seen[e.Line] = true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: most-recently-used line in a set survives the next eviction in
// that set.
func TestMRUSurvives(t *testing.T) {
	c := small()
	c.Insert(line(0), Shared, mem.LineData{})
	c.Insert(line(4), Shared, mem.LineData{})
	for i := 2; i < 8; i++ {
		l := line(i * 4) // all map to set 0
		// Touch the most recent resident, then insert a new line.
		prev := line((i - 1) * 4)
		c.Access(prev)
		c.Insert(l, Shared, mem.LineData{})
		if c.Lookup(prev) == nil {
			t.Fatalf("MRU line %v was evicted", prev)
		}
	}
}
