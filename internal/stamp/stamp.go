// Package stamp provides synthetic transactional workloads modelled on the
// eight STAMP benchmarks the paper evaluates (Table I). The real STAMP
// applications are C programs; what the paper's results depend on is their
// contention structure — transaction length, read/write-set size, degree of
// read sharing, write dispersion, and the read-modify-write idiom — so each
// generator reproduces that structure, calibrated so the baseline machine
// matches Table I's abort rates and Fig. 2's false-aborting fractions (see
// EXPERIMENTS.md for the calibration record).
//
// The package also exports the tunable Synthetic generator the profiles are
// built from, for users who want to explore other contention shapes.
package stamp

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Class describes one static transaction: a weighted recipe for generating
// dynamic instances.
type Class struct {
	// StaticID labels the TX_BEGIN site (feeds the TxLB and RMW predictor).
	StaticID int
	// Weight is the relative frequency of this class.
	Weight int

	// Region is the shared address region this class operates on, in
	// cache lines starting at RegionBase.
	RegionBase  mem.Line
	RegionLines int

	// ReadWholeRegion makes every instance read the full region in order
	// (the labyrinth grid-copy pattern). Otherwise ReadsMin..ReadsMax
	// distinct random lines are read.
	ReadWholeRegion    bool
	ReadsMin, ReadsMax int

	// WritesMin..WritesMax lines are written. WritesFromReads picks them
	// among the lines read (write-after-read); otherwise they are fresh
	// random region lines.
	WritesMin, WritesMax int
	WritesFromReads      bool

	// RMW makes writes use the load-linked/increment idiom (OpIncr),
	// training the RMW predictor (kmeans, ssca2).
	RMW bool

	// HotLines, when nonzero, redirects writes to the first HotLines
	// lines of the region (queue heads, root nodes).
	HotLines int

	// PrivateLines adds that many reads+writes on a node-private stripe
	// (realistic non-conflicting traffic).
	PrivateLines int

	// ComputePerRead cycles are spent after each read; BodyCompute after
	// the read phase; Think between transactions (non-transactional).
	ComputePerRead sim.Time
	BodyCompute    sim.Time
	Think          sim.Time
}

// Profile is a complete synthetic benchmark: a name, the paper's
// contention classification, and the static transaction classes.
type Profile struct {
	name     string
	high     bool
	txPerCPU int
	classes  []Class
	// PaperAbortRate is Table I's baseline abort percentage for the real
	// benchmark (recorded for EXPERIMENTS.md comparison).
	PaperAbortRate float64
}

// NewProfile builds a custom synthetic workload from transaction classes —
// the same machinery the eight STAMP profiles use. high marks it as
// high-contention for reporting; txPerCPU is the number of transactions
// each node runs.
func NewProfile(name string, high bool, txPerCPU int, paperAbortRate float64, classes ...Class) *Profile {
	if len(classes) == 0 {
		panic("stamp: profile needs at least one class")
	}
	return &Profile{
		name: name, high: high, txPerCPU: txPerCPU,
		PaperAbortRate: paperAbortRate, classes: classes,
	}
}

// FootprintLines implements machine.FootprintHinter: an upper bound on the
// distinct cache lines an n-node run touches, used to pre-size the
// machine's line interner and its dense tables. Shared regions contribute
// their full extent (regions of different classes may overlap — the bound
// need not be tight); private traffic contributes, per node, at most
// PrivateLines per transaction instance, and genInstance cycles the stripe
// modulo 2048 lines, so the per-node private footprint is the smaller of
// the two.
func (p *Profile) FootprintLines(nodes int) int {
	n := 0
	maxPriv := 0
	for _, cl := range p.classes {
		n += cl.RegionLines
		if cl.PrivateLines > maxPriv {
			maxPriv = cl.PrivateLines
		}
	}
	priv := maxPriv * p.txPerCPU
	if priv > 2048 {
		priv = 2048
	}
	return n + priv*nodes
}

// Name implements machine.Workload.
func (p *Profile) Name() string { return p.name }

// HighContention implements machine.Workload.
func (p *Profile) HighContention() bool { return p.high }

// TxPerCPU returns the number of transactions each node runs.
func (p *Profile) TxPerCPU() int { return p.txPerCPU }

// Classes exposes the static transaction recipes (inspection and tests).
func (p *Profile) Classes() []Class { return p.classes }

// WithTxPerCPU returns a copy running n transactions per node (benchmark
// scaling).
func (p *Profile) WithTxPerCPU(n int) *Profile {
	cp := *p
	cp.txPerCPU = n
	return &cp
}

// privateBase returns the start of a node's private stripe, far above all
// shared regions.
func privateBase(node int) mem.Line {
	return mem.Line(0x4000_0000 + uint64(node)*0x40_0000)
}

// Program implements machine.Workload.
func (p *Profile) Program(node int, rng *sim.RNG) machine.Program {
	count := 0
	totalWeight := 0
	for _, c := range p.classes {
		totalWeight += c.Weight
	}
	if totalWeight == 0 {
		panic(fmt.Sprintf("stamp: profile %q has no weighted classes", p.name))
	}
	priv := privateBase(node)
	privSeq := 0
	var scratch genScratch
	return machine.ProgramFunc(func(r *sim.RNG) (machine.TxInstance, bool) {
		if count >= p.txPerCPU {
			return machine.TxInstance{}, false
		}
		count++
		// Pick a class by weight.
		pick := r.Intn(totalWeight)
		var cl Class
		for _, c := range p.classes {
			if pick < c.Weight {
				cl = c
				break
			}
			pick -= c.Weight
		}
		return genInstance(cl, r, priv, &privSeq, &scratch), true
	})
}

// l1Sets is the set count of the default 32KB/4-way L1. The generator
// caps a transaction's footprint at three lines per set (one fewer than
// the associativity) so that pinned transactional lines can never
// overflow a set — the simulated HTM, like most real eager HTMs without
// an overflow path, aborts unrecoverably when a set fills with
// transactional lines.
const (
	l1Sets    = 128
	maxPerSet = 3
)

// genScratch holds the flat scratch buffers one program's genInstance calls
// reuse across transaction instances: the per-set footprint counters, the
// seen bitmap for distinct random read selection, and the read-index list.
// Instance generation runs on the sweep hot path, once per transaction, so
// these replace what used to be two map allocations per instance.
type genScratch struct {
	setCount [l1Sets]uint8
	seen     []uint64 // bitmap over region line indices
	readIdx  []int
}

// genInstance builds one dynamic transaction from a class recipe.
func genInstance(cl Class, r *sim.RNG, priv mem.Line, privSeq *int, sc *genScratch) machine.TxInstance {
	// Upper bound on the op count, so the ops slice is allocated once.
	maxReads := cl.ReadsMax
	if cl.ReadWholeRegion {
		maxReads = cl.RegionLines
	}
	bound := 2*cl.PrivateLines + maxReads + cl.WritesMax + 1
	if cl.ComputePerRead > 0 {
		bound += maxReads
	}
	ops := make([]machine.Op, 0, bound)
	lineAt := func(i int) mem.Line {
		return mem.Line(uint64(cl.RegionBase) + uint64(i)*mem.LineBytes)
	}
	setOf := func(l mem.Line) int { return int((uint64(l) / mem.LineBytes) % l1Sets) }
	clear(sc.setCount[:])
	fits := func(l mem.Line) bool { return sc.setCount[setOf(l)] < maxPerSet }
	take := func(l mem.Line) { sc.setCount[setOf(l)]++ }

	// Private stripe accesses come first so that shared-read op positions
	// are stable across instances: the RMW predictor keys on (static tx,
	// op index) as its "load PC", and real code has stable PCs.
	for i := 0; i < cl.PrivateLines; i++ {
		l := mem.Line(uint64(priv) + uint64((*privSeq)%2048)*mem.LineBytes)
		*privSeq++
		if !fits(l) {
			continue
		}
		take(l)
		ops = append(ops, machine.Op{Kind: machine.OpRead, Addr: l.Word(0)})
		ops = append(ops, machine.Op{Kind: machine.OpWrite, Addr: l.Word(1), Value: uint64(*privSeq)})
	}

	// Read phase.
	readIdx := sc.readIdx[:0]
	if cl.ReadWholeRegion {
		for i := 0; i < cl.RegionLines; i++ {
			if fits(lineAt(i)) {
				take(lineAt(i))
				readIdx = append(readIdx, i)
			}
		}
	} else if cl.ReadsMax > 0 {
		n := cl.ReadsMin
		if cl.ReadsMax > cl.ReadsMin {
			n += r.Intn(cl.ReadsMax - cl.ReadsMin + 1)
		}
		words := (cl.RegionLines + 63) / 64
		if cap(sc.seen) < words {
			sc.seen = make([]uint64, words)
		}
		seen := sc.seen[:words]
		clear(seen)
		for attempts := 0; len(readIdx) < n && attempts < 8*cl.RegionLines; attempts++ {
			i := r.Intn(cl.RegionLines)
			if seen[i>>6]&(1<<(uint(i)&63)) == 0 && fits(lineAt(i)) {
				seen[i>>6] |= 1 << (uint(i) & 63)
				take(lineAt(i))
				readIdx = append(readIdx, i)
			}
		}
	}
	for _, i := range readIdx {
		ops = append(ops, machine.Op{Kind: machine.OpRead, Addr: lineAt(i).Word(0)})
		if cl.ComputePerRead > 0 {
			ops = append(ops, machine.Op{Kind: machine.OpCompute, Cycles: cl.ComputePerRead})
		}
	}

	if cl.BodyCompute > 0 {
		ops = append(ops, machine.Op{Kind: machine.OpCompute, Cycles: cl.BodyCompute})
	}

	// Write phase.
	nw := cl.WritesMin
	if cl.WritesMax > cl.WritesMin {
		nw += r.Intn(cl.WritesMax - cl.WritesMin + 1)
	}
	for w := 0; w < nw; w++ {
		var i int
		found := false
		for attempts := 0; attempts < 64 && !found; attempts++ {
			switch {
			case cl.HotLines > 0:
				i = r.Intn(cl.HotLines)
			case cl.WritesFromReads && len(readIdx) > 0:
				// Write the first reads, in order: the "load that will be
				// stored" then sits at a stable op position across
				// instances, as a real static RMW site would.
				i = readIdx[w%len(readIdx)]
			default:
				i = r.Intn(cl.RegionLines)
			}
			// Lines already read fit by construction; fresh lines must
			// not overflow a set.
			if cl.WritesFromReads || fits(lineAt(i)) {
				found = true
			}
		}
		if !found {
			continue
		}
		if !cl.WritesFromReads && cl.HotLines == 0 {
			take(lineAt(i))
		}
		addr := lineAt(i).Word(0)
		if cl.RMW {
			ops = append(ops, machine.Op{Kind: machine.OpIncr, Addr: addr})
		} else {
			ops = append(ops, machine.Op{Kind: machine.OpWrite, Addr: addr, Value: r.Uint64()})
		}
	}

	sc.readIdx = readIdx // hand the (possibly grown) buffer back for reuse
	return machine.TxInstance{StaticID: cl.StaticID, Ops: ops, ThinkCycles: cl.Think}
}
