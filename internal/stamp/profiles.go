package stamp

import (
	"fmt"
	"sort"
)

// The eight STAMP profiles. Region sizes, set sizes and compute lengths
// are calibrated against the paper's Table I (baseline abort rate) and
// Fig. 2 (false-aborting fraction); the calibration history is recorded in
// EXPERIMENTS.md. Static IDs are globally unique so per-node predictor
// tables can never alias across classes.

// Bayes models Bayesian network structure learning: few, very long
// transactions that read large graph fragments and update several of the
// nodes they read. The paper reports a 97.1% baseline abort rate — the
// second most contended workload.
func Bayes() *Profile {
	return &Profile{
		name: "bayes", high: true, txPerCPU: 20, PaperAbortRate: 0.971,
		classes: []Class{
			{StaticID: 100, Weight: 3, RegionLines: 128, ReadsMin: 16, ReadsMax: 40,
				WritesMin: 1, WritesMax: 3, WritesFromReads: true,
				ComputePerRead: 4, BodyCompute: 3000, Think: 400},
			{StaticID: 101, Weight: 2, RegionLines: 128, ReadsMin: 8, ReadsMax: 20,
				WritesMin: 1, WritesMax: 3, WritesFromReads: true,
				ComputePerRead: 3, BodyCompute: 1100, Think: 300},
			{StaticID: 102, Weight: 1, RegionLines: 128, ReadsMin: 4, ReadsMax: 10,
				WritesMin: 1, WritesMax: 2, WritesFromReads: true,
				ComputePerRead: 1, BodyCompute: 500, Think: 150},
		},
	}
}

// Intruder models signature-based network intrusion detection: short
// transactions hammering shared work queues plus medium dictionary
// updates. Paper baseline abort rate: 77.6%.
func Intruder() *Profile {
	return &Profile{
		name: "intruder", high: true, txPerCPU: 60, PaperAbortRate: 0.776,
		classes: []Class{
			// Packet dequeue: the classic hot-spot queue head.
			{StaticID: 110, Weight: 2, RegionLines: 16, ReadsMin: 2, ReadsMax: 4,
				WritesMin: 1, WritesMax: 1, HotLines: 4,
				ComputePerRead: 2, BodyCompute: 60, Think: 60},
			// Fragment reassembly in a shared dictionary.
			{StaticID: 111, Weight: 3, RegionBase: 0x1000, RegionLines: 112,
				ReadsMin: 10, ReadsMax: 22, WritesMin: 3, WritesMax: 4,
				WritesFromReads: true, ComputePerRead: 2, BodyCompute: 550, Think: 40},
			// Detection pass: read-mostly scan.
			{StaticID: 112, Weight: 4, RegionBase: 0x1000, RegionLines: 112,
				ReadsMin: 16, ReadsMax: 32, WritesMin: 0, WritesMax: 1,
				WritesFromReads: true, ComputePerRead: 1, BodyCompute: 300, Think: 50},
		},
	}
}

// Labyrinth models multi-path maze routing: every transaction copies the
// whole grid into its read set, computes a path, and writes a handful of
// grid cells. The paper's most contended workload (98.6% abort rate) and
// its directory-blocking case study (Sec. IV-D).
func Labyrinth() *Profile {
	return &Profile{
		name: "labyrinth", high: true, txPerCPU: 12, PaperAbortRate: 0.986,
		classes: []Class{
			{StaticID: 120, Weight: 1, RegionLines: 96, ReadWholeRegion: true,
				WritesMin: 4, WritesMax: 8, ComputePerRead: 1,
				BodyCompute: 900, Think: 120},
		},
	}
}

// Yada models Delaunay mesh refinement: medium transactions over a large
// triangle cavity structure. Paper baseline abort rate: 47.9%.
func Yada() *Profile {
	return &Profile{
		name: "yada", high: true, txPerCPU: 50, PaperAbortRate: 0.479,
		classes: []Class{
			{StaticID: 130, Weight: 3, RegionLines: 448, ReadsMin: 14, ReadsMax: 28,
				WritesMin: 2, WritesMax: 4, WritesFromReads: true,
				ComputePerRead: 2, BodyCompute: 500, Think: 150},
			{StaticID: 131, Weight: 1, RegionLines: 448, ReadsMin: 6, ReadsMax: 12,
				WritesMin: 1, WritesMax: 2, WritesFromReads: true,
				ComputePerRead: 2, BodyCompute: 250, Think: 100},
		},
	}
}

// Genome models gene sequencing via hash-table segment insertion: small
// transactions scattered across a large table. Paper baseline abort rate:
// 1.3%.
func Genome() *Profile {
	return &Profile{
		name: "genome", high: false, txPerCPU: 150, PaperAbortRate: 0.013,
		classes: []Class{
			{StaticID: 140, Weight: 3, RegionLines: 4096, ReadsMin: 4, ReadsMax: 8,
				WritesMin: 1, WritesMax: 2, WritesFromReads: true,
				ComputePerRead: 1, BodyCompute: 80, Think: 40, PrivateLines: 2},
			{StaticID: 141, Weight: 1, RegionLines: 4096, ReadsMin: 8, ReadsMax: 16,
				WritesMin: 0, WritesMax: 1, WritesFromReads: true,
				ComputePerRead: 1, BodyCompute: 120, Think: 60},
		},
	}
}

// Kmeans models cluster-centre updates: very short read-modify-write
// transactions on a moderately sized centre table plus private point
// data. Paper baseline abort rate: 7.4%; the workload where RMW-Pred
// shines.
func Kmeans() *Profile {
	return &Profile{
		name: "kmeans", high: false, txPerCPU: 200, PaperAbortRate: 0.074,
		classes: []Class{
			{StaticID: 150, Weight: 1, RegionLines: 12, WritesMin: 1, WritesMax: 2,
				RMW: true, BodyCompute: 60, Think: 40, PrivateLines: 3},
		},
	}
}

// SSCA2 models graph kernel updates: tiny read-modify-write transactions
// scattered over a huge adjacency structure. Paper baseline abort rate:
// 0.3% — the least contended workload.
func SSCA2() *Profile {
	return &Profile{
		name: "ssca2", high: false, txPerCPU: 250, PaperAbortRate: 0.003,
		classes: []Class{
			{StaticID: 160, Weight: 1, RegionLines: 3072, WritesMin: 1, WritesMax: 2,
				RMW: true, BodyCompute: 30, Think: 20, PrivateLines: 1},
		},
	}
}

// Vacation models a travel-reservation database: medium transactions over
// shared reservation trees. Paper baseline abort rate: 38%.
func Vacation() *Profile {
	return &Profile{
		name: "vacation", high: false, txPerCPU: 70, PaperAbortRate: 0.38,
		classes: []Class{
			{StaticID: 170, Weight: 3, RegionLines: 640, ReadsMin: 12, ReadsMax: 24,
				WritesMin: 2, WritesMax: 4, WritesFromReads: true,
				ComputePerRead: 2, BodyCompute: 350, Think: 80},
			{StaticID: 171, Weight: 1, RegionLines: 768, ReadsMin: 20, ReadsMax: 40,
				WritesMin: 1, WritesMax: 2, WritesFromReads: true,
				ComputePerRead: 1, BodyCompute: 300, Think: 100},
		},
	}
}

// All returns the eight profiles in the paper's Table I order.
func All() []*Profile {
	return []*Profile{
		Bayes(), Intruder(), Labyrinth(), Yada(),
		Genome(), Kmeans(), SSCA2(), Vacation(),
	}
}

// HighContention returns the paper's high-contention subset.
func HighContention() []*Profile {
	var out []*Profile
	for _, p := range All() {
		if p.HighContention() {
			out = append(out, p)
		}
	}
	return out
}

// ByName returns the named profile or an error listing the valid names.
func ByName(name string) (*Profile, error) {
	var names []string
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
		names = append(names, p.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("stamp: unknown workload %q (have %v)", name, names)
}
