package stamp

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("All() = %d profiles, want 8", len(all))
	}
	names := map[string]bool{}
	for _, p := range all {
		if names[p.Name()] {
			t.Fatalf("duplicate profile name %q", p.Name())
		}
		names[p.Name()] = true
		if _, err := ByName(p.Name()); err != nil {
			t.Fatalf("ByName(%q): %v", p.Name(), err)
		}
	}
	for _, want := range []string{"bayes", "intruder", "labyrinth", "yada", "genome", "kmeans", "ssca2", "vacation"} {
		if !names[want] {
			t.Fatalf("missing profile %q", want)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown workload")
	}
}

func TestHighContentionSubset(t *testing.T) {
	hc := HighContention()
	if len(hc) != 4 {
		t.Fatalf("high-contention subset = %d, want 4", len(hc))
	}
	want := map[string]bool{"bayes": true, "intruder": true, "labyrinth": true, "yada": true}
	for _, p := range hc {
		if !want[p.Name()] {
			t.Fatalf("%q should not be high contention", p.Name())
		}
	}
}

func TestStaticIDsGloballyUnique(t *testing.T) {
	seen := map[int]string{}
	for _, p := range All() {
		for _, c := range p.Classes() {
			if prev, ok := seen[c.StaticID]; ok {
				t.Fatalf("static id %d used by both %s and %s", c.StaticID, prev, p.Name())
			}
			seen[c.StaticID] = p.Name()
		}
	}
}

func TestProgramsDeterministic(t *testing.T) {
	p := Intruder()
	a := p.Program(3, sim.NewRNG(7))
	b := p.Program(3, sim.NewRNG(7))
	rngA, rngB := sim.NewRNG(9), sim.NewRNG(9)
	for i := 0; i < 20; i++ {
		ta, okA := a.Next(rngA)
		tb, okB := b.Next(rngB)
		if okA != okB {
			t.Fatal("programs diverged in length")
		}
		if !okA {
			break
		}
		if ta.StaticID != tb.StaticID || len(ta.Ops) != len(tb.Ops) {
			t.Fatalf("tx %d diverged: %d/%d ops", i, len(ta.Ops), len(tb.Ops))
		}
		for j := range ta.Ops {
			if ta.Ops[j] != tb.Ops[j] {
				t.Fatalf("tx %d op %d diverged", i, j)
			}
		}
	}
}

func TestProgramEndsAfterTxPerCPU(t *testing.T) {
	p := Kmeans().WithTxPerCPU(5)
	prog := p.Program(0, sim.NewRNG(1))
	rng := sim.NewRNG(2)
	n := 0
	for {
		_, ok := prog.Next(rng)
		if !ok {
			break
		}
		n++
		if n > 5 {
			t.Fatal("program exceeded TxPerCPU")
		}
	}
	if n != 5 {
		t.Fatalf("program ran %d txs, want 5", n)
	}
}

func TestInstancesRespectClassShape(t *testing.T) {
	p := Labyrinth()
	prog := p.Program(0, sim.NewRNG(3))
	rng := sim.NewRNG(4)
	tx, ok := prog.Next(rng)
	if !ok {
		t.Fatal("no instance")
	}
	reads, writes := 0, 0
	for _, op := range tx.Ops {
		switch op.Kind {
		case machine.OpRead:
			reads++
		case machine.OpWrite, machine.OpIncr:
			writes++
		}
	}
	if reads != 96 {
		t.Fatalf("labyrinth reads = %d, want whole 96-line grid", reads)
	}
	if writes < 4 || writes > 8 {
		t.Fatalf("labyrinth writes = %d, want 4..8", writes)
	}
}

func TestRMWProfilesUseIncr(t *testing.T) {
	for _, p := range []*Profile{Kmeans(), SSCA2()} {
		prog := p.Program(0, sim.NewRNG(3))
		tx, _ := prog.Next(sim.NewRNG(4))
		hasIncr := false
		for _, op := range tx.Ops {
			if op.Kind == machine.OpIncr {
				hasIncr = true
			}
		}
		if !hasIncr {
			t.Fatalf("%s instance has no OpIncr", p.Name())
		}
	}
}

func TestPrivateStripesDisjoint(t *testing.T) {
	if privateBase(0) == privateBase(1) {
		t.Fatal("private stripes collide")
	}
	// Stripes must clear the largest shared region (ssca2's 8192 lines).
	if uint64(privateBase(0)) < 8192*64 {
		t.Fatal("private stripe overlaps shared regions")
	}
}

// TestCalibration runs every profile on the baseline machine and reports
// the Table I / Fig. 2 calibration metrics. Skipped with -short.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report")
	}
	for _, p := range All() {
		cfg := machine.DefaultConfig()
		cfg.Seed = 12345
		m, err := machine.New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		t.Logf("%-10s abort%%=%5.1f (paper %5.1f)  falseGETX%%=%4.1f  commits=%d aborts=%d cycles=%d",
			p.Name(), 100*res.AbortRate(), 100*p.PaperAbortRate,
			100*res.FalseAbortFraction(), res.Commits, res.Aborts, res.Cycles)
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}
