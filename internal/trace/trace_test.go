package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/stamp"
)

func TestRecordMaterializesAllNodes(t *testing.T) {
	wl := stamp.Kmeans().WithTxPerCPU(5)
	tr := Record(wl, 16, 9)
	if tr.Nodes() != 16 {
		t.Fatalf("nodes = %d, want 16", tr.Nodes())
	}
	if tr.Transactions() != 16*5 {
		t.Fatalf("transactions = %d, want 80", tr.Transactions())
	}
	if tr.Name() != "kmeans" {
		t.Fatalf("name = %q", tr.Name())
	}
}

func TestRecordMatchesLiveGeneration(t *testing.T) {
	// A trace recorded with seed S must replay exactly the instances a
	// live machine with seed S would generate: run both and compare the
	// commit-level results.
	wl := stamp.Genome().WithTxPerCPU(6)
	cfg := machine.DefaultConfig()
	cfg.Seed = 31

	live, err := machine.New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := live.Run()
	if err != nil {
		t.Fatal(err)
	}

	tr := Record(wl, cfg.Nodes, cfg.Seed)
	replay, err := machine.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	repRes, err := replay.Run()
	if err != nil {
		t.Fatal(err)
	}

	if liveRes.Commits != repRes.Commits {
		t.Fatalf("commits diverged: live %d, replay %d", liveRes.Commits, repRes.Commits)
	}
	if liveRes.Cycles != repRes.Cycles {
		t.Fatalf("cycles diverged: live %d, replay %d", liveRes.Cycles, repRes.Cycles)
	}
	if liveRes.Net.TotalTraversals() != repRes.Net.TotalTraversals() {
		t.Fatal("traffic diverged between live and replay")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := Record(stamp.Vacation().WithTxPerCPU(3), 16, 5)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != tr.Name() || got.Nodes() != tr.Nodes() || got.Transactions() != tr.Transactions() {
		t.Fatal("round trip lost metadata")
	}
	for n := range tr.PerNode {
		if len(got.PerNode[n]) != len(tr.PerNode[n]) {
			t.Fatalf("node %d tx count diverged", n)
		}
		for i := range tr.PerNode[n] {
			a, b := tr.PerNode[n][i], got.PerNode[n][i]
			if a.StaticID != b.StaticID || len(a.Ops) != len(b.Ops) || a.ThinkCycles != b.ThinkCycles {
				t.Fatalf("node %d tx %d header diverged", n, i)
			}
			for j := range a.Ops {
				if a.Ops[j] != b.Ops[j] {
					t.Fatalf("node %d tx %d op %d diverged", n, i, j)
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a trace")); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	tr := Record(stamp.SSCA2().WithTxPerCPU(2), 4, 1)
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic.
	b := buf.Bytes()
	idx := bytes.Index(b, []byte("punotrace/1"))
	if idx < 0 {
		t.Fatal("magic not found in encoding")
	}
	b[idx] = 'X'
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted magic accepted")
	}
}

func TestReplayBeyondRecordedNodesIsEmpty(t *testing.T) {
	tr := Record(stamp.Kmeans().WithTxPerCPU(2), 4, 1)
	prog := tr.Program(10, nil)
	if _, ok := prog.Next(nil); ok {
		t.Fatal("unrecorded node produced transactions")
	}
}

func TestSummarize(t *testing.T) {
	tr := Record(stamp.Kmeans().WithTxPerCPU(4), 8, 3)
	s := tr.Summarize()
	if s.Transactions != 32 {
		t.Fatalf("transactions = %d, want 32", s.Transactions)
	}
	if s.Incrs == 0 {
		t.Fatal("kmeans trace has no increments")
	}
	if s.Ops < s.Reads+s.Writes+s.Incrs {
		t.Fatal("op accounting inconsistent")
	}
	if len(s.DistinctTx) == 0 {
		t.Fatal("no static transactions recorded")
	}
}

func TestTraceIsDeterministicPerSeed(t *testing.T) {
	a := Record(stamp.Bayes().WithTxPerCPU(2), 16, 42)
	b := Record(stamp.Bayes().WithTxPerCPU(2), 16, 42)
	c := Record(stamp.Bayes().WithTxPerCPU(2), 16, 43)
	if a.Transactions() != b.Transactions() {
		t.Fatal("same-seed traces diverged in size")
	}
	same := true
	for n := range a.PerNode {
		for i := range a.PerNode[n] {
			if len(a.PerNode[n][i].Ops) != len(b.PerNode[n][i].Ops) {
				t.Fatal("same-seed traces diverged")
			}
		}
	}
	_ = same
	// Different seeds should differ somewhere.
	diff := false
	for n := range a.PerNode {
		if len(a.PerNode[n]) != len(c.PerNode[n]) {
			diff = true
			break
		}
		for i := range a.PerNode[n] {
			if len(a.PerNode[n][i].Ops) != len(c.PerNode[n][i].Ops) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Log("different seeds produced structurally identical traces (possible but unlikely)")
	}
}
