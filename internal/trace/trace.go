// Package trace records transactional workloads to a portable format and
// replays them. A trace pins down the exact per-node transaction streams,
// which makes experiments shareable (ship the trace, not the generator),
// lets users hand-author workloads in files, and guarantees that scheme
// comparisons run identical op streams even for generators that consume
// randomness in scheme-dependent ways.
package trace

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Trace is a fully materialized workload: one transaction list per node.
// It implements machine.Workload.
type Trace struct {
	WorkloadName string
	High         bool
	PerNode      [][]machine.TxInstance
}

// Name implements machine.Workload.
func (t *Trace) Name() string { return t.WorkloadName }

// HighContention implements machine.Workload.
func (t *Trace) HighContention() bool { return t.High }

// Program implements machine.Workload.
func (t *Trace) Program(node int, _ *sim.RNG) machine.Program {
	if node >= len(t.PerNode) {
		return &machine.SliceProgram{}
	}
	return &machine.SliceProgram{Txs: t.PerNode[node]}
}

// Nodes returns the number of recorded per-node streams.
func (t *Trace) Nodes() int { return len(t.PerNode) }

// Transactions returns the total recorded transaction count.
func (t *Trace) Transactions() int {
	n := 0
	for _, txs := range t.PerNode {
		n += len(txs)
	}
	return n
}

// Record materializes wl for a machine of `nodes` nodes by draining each
// node's program with the same RNG derivation the machine uses
// (rootSeed forks exactly like machine.New), so a recorded trace replays
// the very streams a live run with that seed would execute.
func Record(wl machine.Workload, nodes int, rootSeed uint64) *Trace {
	root := sim.NewRNG(rootSeed)
	// machine.New forks per-node program RNGs as root.Fork(1000+i) and
	// per-node core RNGs as root.Fork(i+1). The program generator only
	// sees the former plus the RNG passed to Next, which the machine
	// derives from the node's core RNG stream indirectly — here we
	// reproduce the generation-time stream only, which is what Next uses.
	coreRNGs := make([]*sim.RNG, nodes)
	progRNGs := make([]*sim.RNG, nodes)
	// Fork order must match machine.New: per node, predictor (none here),
	// program fork, then node fork. machine.New forks 1000+i for programs
	// and i+1 inside newNode.
	for i := 0; i < nodes; i++ {
		progRNGs[i] = root.Fork(1000 + uint64(i))
		coreRNGs[i] = root.Fork(uint64(i) + 1)
	}
	t := &Trace{WorkloadName: wl.Name(), High: wl.HighContention(), PerNode: make([][]machine.TxInstance, nodes)}
	for i := 0; i < nodes; i++ {
		prog := wl.Program(i, progRNGs[i])
		for {
			tx, ok := prog.Next(coreRNGs[i])
			if !ok {
				break
			}
			t.PerNode[i] = append(t.PerNode[i], cloneTx(tx))
		}
	}
	return t
}

func cloneTx(tx machine.TxInstance) machine.TxInstance {
	ops := make([]machine.Op, len(tx.Ops))
	copy(ops, tx.Ops)
	tx.Ops = ops
	return tx
}

// format versioning for the on-disk encoding.
const magic = "punotrace/1"

type fileHeader struct {
	Magic string
	Name  string
	High  bool
	Nodes int
}

// Save writes the trace in the package's gob-based format.
func (t *Trace) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(fileHeader{Magic: magic, Name: t.WorkloadName, High: t.High, Nodes: len(t.PerNode)}); err != nil {
		return fmt.Errorf("trace: encoding header: %w", err)
	}
	for i, txs := range t.PerNode {
		if err := enc.Encode(txs); err != nil {
			return fmt.Errorf("trace: encoding node %d: %w", i, err)
		}
	}
	return nil
}

// Load reads a trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	dec := gob.NewDecoder(r)
	var h fileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: decoding header: %w", err)
	}
	if h.Magic != magic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", h.Magic, magic)
	}
	if h.Nodes < 0 || h.Nodes > 1<<16 {
		return nil, fmt.Errorf("trace: implausible node count %d", h.Nodes)
	}
	t := &Trace{WorkloadName: h.Name, High: h.High, PerNode: make([][]machine.TxInstance, h.Nodes)}
	for i := 0; i < h.Nodes; i++ {
		if err := dec.Decode(&t.PerNode[i]); err != nil {
			return nil, fmt.Errorf("trace: decoding node %d: %w", i, err)
		}
	}
	return t, nil
}

// Stats summarizes a trace for reports.
type Stats struct {
	Transactions int
	Ops          int
	Reads        int
	Writes       int
	Incrs        int
	ComputeCyc   sim.Time
	DistinctTx   map[int]int // static id -> dynamic instances
}

// Summarize computes aggregate statistics.
func (t *Trace) Summarize() Stats {
	s := Stats{DistinctTx: make(map[int]int)}
	for _, txs := range t.PerNode {
		for _, tx := range txs {
			s.Transactions++
			s.DistinctTx[tx.StaticID]++
			for _, op := range tx.Ops {
				s.Ops++
				switch op.Kind {
				case machine.OpRead:
					s.Reads++
				case machine.OpWrite:
					s.Writes++
				case machine.OpIncr:
					s.Incrs++
				case machine.OpCompute:
					s.ComputeCyc += op.Cycles
				}
			}
		}
	}
	return s
}
