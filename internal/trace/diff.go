// The first-divergence differ: given two event traces, find the first
// event where the runs stopped agreeing and render it as a one-line
// diagnosis. Because the simulator is deterministic, the first divergent
// event *is* the root cause's first observable effect — everything after
// it is an avalanche — so one line replaces eyeballing two full dumps.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/pdes"
	"repro/internal/probe"
)

// Divergence locates the first disagreement between two event streams.
// A and B are the two sides' events at Index; a nil side means that
// stream ended there (one run is a strict prefix of the other).
type Divergence struct {
	Index int
	A, B  *probe.Event
}

// FirstDivergence compares two traces event-by-event and returns the first
// index where they disagree. ok is false when the streams are identical
// (same events, same length) — metadata differences alone do not count.
func FirstDivergence(a, b *EventTrace) (d Divergence, ok bool) {
	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	for i := 0; i < n; i++ {
		if a.Events[i] != b.Events[i] {
			return Divergence{Index: i, A: &a.Events[i], B: &b.Events[i]}, true
		}
	}
	switch {
	case len(a.Events) > n:
		return Divergence{Index: n, A: &a.Events[n]}, true
	case len(b.Events) > n:
		return Divergence{Index: n, B: &b.Events[n]}, true
	}
	return Divergence{}, false
}

// FormatDivergence renders a divergence as the differ's one-line
// diagnosis: the event index, then each side's event (cycle, node, line,
// kind, decoded payload) rendered with its own line table.
func FormatDivergence(a, b *EventTrace, d Divergence) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "diverged at event #%d: ", d.Index)
	side := func(label string, t *EventTrace, e *probe.Event) {
		if e == nil {
			fmt.Fprintf(&sb, "%s[%s] ended after %d events", label, t.Scheme, len(t.Events))
			return
		}
		fmt.Fprintf(&sb, "%s[%s] %s", label, t.Scheme, FormatEvent(t, *e))
	}
	side("A", a, d.A)
	sb.WriteString(" | ")
	side("B", b, d.B)
	return sb.String()
}

// FormatEvent renders one event using t's line table:
// "cycle=N node=N line=L kind payload".
func FormatEvent(t *EventTrace, e probe.Event) string {
	return fmt.Sprintf("cycle=%d node=%d line=%s %s %s",
		e.Cycle, e.Node, t.LineOf(e.Line), e.Kind, formatArg(e))
}

// formatArg decodes the kind-specific packed payload.
func formatArg(e probe.Event) string {
	switch e.Kind {
	case probe.KindSend:
		mt, dst, req, id := probe.UnpackSend(e.Arg)
		return fmt.Sprintf("%v dst=%d req=%d id=%d", coherence.MsgType(mt), dst, req, id)
	case probe.KindTxBegin, probe.KindTxCommit:
		staticID, attempt, _ := probe.UnpackTx(e.Arg)
		return fmt.Sprintf("static=%d attempt=%d", staticID, attempt)
	case probe.KindTxAbort:
		staticID, attempt, overflow := probe.UnpackTx(e.Arg)
		s := fmt.Sprintf("static=%d attempt=%d", staticID, attempt)
		if overflow {
			s += " overflow"
		}
		return s
	case probe.KindConflict:
		staticID, attempt, isWrite := probe.UnpackTx(e.Arg)
		acc := "read"
		if isWrite {
			acc = "write"
		}
		return fmt.Sprintf("static=%d attempt=%d vs %s", staticID, attempt, acc)
	case probe.KindDirUnicast:
		dest, req, id := probe.UnpackDir(e.Arg)
		return fmt.Sprintf("dest=%d req=%d id=%d", dest, req, id)
	case probe.KindDirMulticast:
		n, req, id := probe.UnpackDir(e.Arg)
		return fmt.Sprintf("targets=%d req=%d id=%d", n, req, id)
	case probe.KindDirBusyNack:
		_, req, id := probe.UnpackDir(e.Arg)
		return fmt.Sprintf("req=%d id=%d", req, id)
	default:
		return fmt.Sprintf("arg=%#x", e.Arg)
	}
}

// PrefixChecker is a probe.Sink that verifies a live run reproduces a
// recorded event stream as it happens — replay-from-prefix. Events beyond
// the recorded prefix are accepted silently (the recorded run may have
// been stopped early); the first in-prefix mismatch is latched and
// everything after it ignored, so the checker is cheap enough to leave on
// a full replay. Drive the run to completion, then call Diverged.
type PrefixChecker struct {
	ref  []probe.Event
	idx  int
	div  Divergence
	bad  bool
	seen int
}

// NewPrefixChecker returns a checker expecting the given recorded stream.
func NewPrefixChecker(ref []probe.Event) *PrefixChecker {
	return &PrefixChecker{ref: ref}
}

// Emit implements probe.Sink.
func (c *PrefixChecker) Emit(e probe.Event) {
	c.seen++
	if c.bad || c.idx >= len(c.ref) {
		c.idx++
		return
	}
	if e != c.ref[c.idx] {
		c.bad = true
		got := e
		c.div = Divergence{Index: c.idx, A: &c.ref[c.idx], B: &got}
	}
	c.idx++
}

// Diverged reports the first mismatch against the recorded prefix
// (A = recorded, B = live). ok is false when the live run matched the
// whole prefix; a live run shorter than the prefix also counts as a
// divergence (B side nil at the index where the live stream ended).
func (c *PrefixChecker) Diverged() (d Divergence, ok bool) {
	if c.bad {
		return c.div, true
	}
	if c.seen < len(c.ref) {
		return Divergence{Index: c.seen, A: &c.ref[c.seen]}, true
	}
	return Divergence{}, false
}

// Seen returns how many events the live run emitted.
func (c *PrefixChecker) Seen() int { return c.seen }

// CaptureEvents runs wl under cfg with an event sink installed and returns
// both the run's measurements and its full event trace. cfg.EventSink is
// overridden for the run. When cfg.Shards selects an eligible sharded run,
// the capture goes through the PDES coordinator and the returned trace is
// normalized (first-appearance LineID order) — byte-identical to the
// serial capture; a serial capture keeps its raw IDs, which are already in
// appearance order.
func CaptureEvents(cfg machine.Config, wl machine.Workload) (*machine.Result, *EventTrace, error) {
	var buf probe.Buffer
	cfg.EventSink = &buf
	if pdes.Eligible(cfg, wl) {
		co, err := pdes.New(cfg, wl)
		if err != nil {
			return nil, nil, err
		}
		res, err := co.Run()
		if err != nil {
			return nil, nil, err
		}
		t := &EventTrace{
			Workload: wl.Name(),
			Scheme:   cfg.Scheme.String(),
			Seed:     cfg.Seed,
			Lines:    co.LineTable(),
			Events:   buf.Events(),
		}
		return res, t.Normalized(), nil
	}
	m, err := machine.New(cfg, wl)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, nil, err
	}
	evs := make([]probe.Event, buf.Len())
	copy(evs, buf.Events())
	t := &EventTrace{
		Workload: wl.Name(),
		Scheme:   cfg.Scheme.String(),
		Seed:     cfg.Seed,
		Lines:    m.LineTable(),
		Events:   evs,
	}
	return res, t, nil
}
