package trace

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/stamp"
)

// A serial run interns lines in emission order, so Normalized must be the
// identity on a serial capture. This is the invariant that lets a sharded
// run's normalized trace byte-match the serial golden: the sharded event
// stream is serial-identical, and normalization erases the only divergent
// residue (raw shared-interner IDs).
func TestNormalizedIsIdentityOnSerialCapture(t *testing.T) {
	for _, name := range []string{"kmeans", "intruder"} {
		for _, sch := range []machine.Scheme{machine.SchemeBaseline, machine.SchemePUNO} {
			w, err := stamp.ByName(name)
			if err != nil {
				t.Fatalf("workload %s: %v", name, err)
			}
			cfg := machine.DefaultConfig()
			cfg.Scheme = sch
			_, et, err := CaptureEvents(cfg, w.WithTxPerCPU(4))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, sch, err)
			}
			norm := et.Normalized()
			if !reflect.DeepEqual(norm.Lines, et.Lines) {
				t.Errorf("%s/%v: line table changed: %d raw vs %d normalized",
					name, sch, len(et.Lines), len(norm.Lines))
				continue
			}
			if !reflect.DeepEqual(norm.Events, et.Events) {
				t.Errorf("%s/%v: events changed under normalization", name, sch)
			}
		}
	}
}

// Normalized renumbers by first appearance and prunes unreferenced lines.
func TestNormalizedRenumbersByAppearance(t *testing.T) {
	raw := &EventTrace{
		Workload: "w", Scheme: "s", Seed: 7,
		Lines: []mem.Line{0x1000, 0x2000, 0x3000, 0x4000},
		Events: []probe.Event{
			{Cycle: 1, Kind: probe.KindSend, Node: 0, Line: 3},
			{Cycle: 2, Kind: probe.KindSend, Node: 1, Line: 1},
			{Cycle: 3, Kind: probe.KindTxBegin, Node: 1, Line: 0},
			{Cycle: 4, Kind: probe.KindSend, Node: 2, Line: 3},
		},
	}
	n := raw.Normalized()
	wantLines := []mem.Line{0x3000, 0x1000} // appearance order; 0x2000/0x4000 pruned
	if !reflect.DeepEqual(n.Lines, wantLines) {
		t.Fatalf("lines = %v, want %v", n.Lines, wantLines)
	}
	wantIDs := []mem.LineID{1, 2, 0, 1}
	for i, e := range n.Events {
		if e.Line != wantIDs[i] {
			t.Errorf("event %d line = %d, want %d", i, e.Line, wantIDs[i])
		}
	}
	// The input trace is untouched.
	if raw.Events[0].Line != 3 || len(raw.Lines) != 4 {
		t.Fatalf("input trace mutated: %+v", raw)
	}
}
