package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/machine"
)

// A sharded capture must be indistinguishable from a serial one: same
// Result, same event stream, and byte-identical serialized trace (the
// sharded path normalizes LineIDs into first-appearance order, which is
// the serial assignment already).
func TestCaptureEventsShardedMatchesSerial(t *testing.T) {
	wl := testWL(t)
	cfg := testCfg(machine.SchemePUNO)

	resSerial, etSerial, err := CaptureEvents(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	var serialBytes bytes.Buffer
	if err := etSerial.Save(&serialBytes); err != nil {
		t.Fatal(err)
	}

	cfg.Shards = 2
	resSharded, etSharded, err := CaptureEvents(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resSerial, resSharded) {
		t.Fatalf("sharded capture changed the Result:\nserial:  %+v\nsharded: %+v", resSerial, resSharded)
	}
	if d, ok := FirstDivergence(etSerial, etSharded); ok {
		t.Fatal(FormatDivergence(etSerial, etSharded, d))
	}
	var shardedBytes bytes.Buffer
	if err := etSharded.Save(&shardedBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialBytes.Bytes(), shardedBytes.Bytes()) {
		t.Fatal("sharded capture serialized to different bytes than serial")
	}
}

func TestCaptureEventsErrors(t *testing.T) {
	wl := testWL(t)

	bad := testCfg(machine.SchemePUNO)
	bad.Nodes = 15 // does not match the 4x4 mesh
	bad.Shards = 2
	if _, _, err := CaptureEvents(bad, wl); err == nil {
		t.Fatal("sharded capture of an invalid config did not error")
	}
	bad.Shards = 0
	if _, _, err := CaptureEvents(bad, wl); err == nil {
		t.Fatal("serial capture of an invalid config did not error")
	}

	hung := testCfg(machine.SchemePUNO)
	hung.MaxCycles = 10
	hung.Shards = 2
	if _, _, err := CaptureEvents(hung, wl); err == nil {
		t.Fatal("sharded capture of a hung run did not error")
	}
	hung.Shards = 0
	if _, _, err := CaptureEvents(hung, wl); err == nil {
		t.Fatal("serial capture of a hung run did not error")
	}
}
