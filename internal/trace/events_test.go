package trace

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/sim"
)

// naiveEncode is the reference encoder: a direct transcription of the
// format spec in events.go's package comment, written with none of the
// production code's structure. The property tests hold the production
// encoder to byte-equality with this one, so a framing bug would have to
// appear identically in two independent transcriptions to slip through.
func naiveEncode(t *EventTrace) []byte {
	var b bytes.Buffer
	b.WriteString("punoevt/1")
	uv := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	uv(uint64(len(t.Workload)))
	b.WriteString(t.Workload)
	uv(uint64(len(t.Scheme)))
	b.WriteString(t.Scheme)
	uv(t.Seed)
	uv(uint64(len(t.Lines)))
	for _, l := range t.Lines {
		uv(uint64(l) >> 6)
	}
	uv(uint64(len(t.Events)))
	prev := uint64(0)
	for _, e := range t.Events {
		uv(uint64(e.Cycle) - prev)
		b.WriteByte(byte(e.Kind))
		uv(uint64(e.Node))
		uv(uint64(e.Line))
		uv(e.Arg)
		prev = uint64(e.Cycle)
	}
	h := fnv.New32a()
	h.Write(b.Bytes())
	return h.Sum(b.Bytes())
}

// randomTrace builds a valid random event trace: monotone non-decreasing
// cycles, kinds in range, line ids within the line table.
func randomTrace(rng *rand.Rand, nEvents int) *EventTrace {
	nLines := rng.Intn(20)
	t := &EventTrace{
		Workload: []string{"", "intruder", "a/b with spaces", "μworkload"}[rng.Intn(4)],
		Scheme:   []string{"Baseline", "PUNO", ""}[rng.Intn(3)],
		Seed:     rng.Uint64(),
		Lines:    make([]mem.Line, nLines),
	}
	for i := range t.Lines {
		t.Lines[i] = mem.Line(uint64(rng.Int63n(1<<40)) << 6)
	}
	cycle := sim.Time(0)
	for i := 0; i < nEvents; i++ {
		cycle += sim.Time(rng.Intn(1000))
		t.Events = append(t.Events, probe.Event{
			Cycle: cycle,
			Arg:   rng.Uint64(),
			Line:  mem.LineID(rng.Intn(nLines + 1)),
			Node:  int16(rng.Intn(64)),
			Kind:  probe.Kind(1 + rng.Intn(int(probe.KindMax)-1)),
		})
	}
	return t
}

func TestEncodeMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		tr := randomTrace(rng, rng.Intn(200))
		var got bytes.Buffer
		if err := tr.Save(&got); err != nil {
			t.Fatalf("case %d: Save: %v", i, err)
		}
		want := naiveEncode(tr)
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("case %d: production encoding differs from reference (%d vs %d bytes)",
				i, got.Len(), len(want))
		}
	}
}

func TestEventRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		tr := randomTrace(rng, rng.Intn(300))
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("case %d: Save: %v", i, err)
		}
		got, err := LoadEvents(&buf)
		if err != nil {
			t.Fatalf("case %d: LoadEvents: %v", i, err)
		}
		if got.Workload != tr.Workload || got.Scheme != tr.Scheme || got.Seed != tr.Seed {
			t.Fatalf("case %d: metadata mismatch: %+v vs %+v", i, got, tr)
		}
		if !reflect.DeepEqual(noEmpty(got.Lines), noEmpty(tr.Lines)) {
			t.Fatalf("case %d: line table mismatch", i)
		}
		if !reflect.DeepEqual(noEmptyEv(got.Events), noEmptyEv(tr.Events)) {
			t.Fatalf("case %d: events mismatch:\n got %v\nwant %v", i, got.Events, tr.Events)
		}
	}
}

// noEmpty/noEmptyEv normalize nil vs empty slices for DeepEqual.
func noEmpty(s []mem.Line) []mem.Line {
	if len(s) == 0 {
		return nil
	}
	return s
}

func noEmptyEv(s []probe.Event) []probe.Event {
	if len(s) == 0 {
		return nil
	}
	return s
}

// Truncating the stream anywhere — including cutting into the checksum —
// must fail decoding, never silently shorten the event list.
func TestTruncationDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := randomTrace(rng, 50)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeEvents(full[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", cut, len(full))
		}
	}
}

// Flipping any single byte must fail decoding (the checksum covers the
// whole body, and the trailing bytes are the checksum itself).
func TestCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := randomTrace(rng, 30)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := 0; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x41
		if _, err := DecodeEvents(mut); err == nil {
			t.Fatalf("flipping byte %d of %d decoded without error", i, len(full))
		}
	}
}

func TestEncoderRejectsInvalidStreams(t *testing.T) {
	base := func() *EventTrace {
		return &EventTrace{
			Workload: "w", Scheme: "s",
			Lines: []mem.Line{0x40},
			Events: []probe.Event{
				{Cycle: 10, Kind: probe.KindSend, Node: 1, Line: 1},
				{Cycle: 20, Kind: probe.KindTxBegin, Node: 2},
			},
		}
	}
	cases := []struct {
		name string
		mut  func(*EventTrace)
	}{
		{"non-monotone cycles", func(t *EventTrace) { t.Events[1].Cycle = 5 }},
		{"zero kind", func(t *EventTrace) { t.Events[0].Kind = 0 }},
		{"kind out of range", func(t *EventTrace) { t.Events[0].Kind = probe.KindMax }},
		{"negative node", func(t *EventTrace) { t.Events[0].Node = -1 }},
		{"negative line id", func(t *EventTrace) { t.Events[0].Line = -3 }},
		{"unaligned line", func(t *EventTrace) { t.Lines[0] = 0x41 }},
	}
	for _, c := range cases {
		tr := base()
		c.mut(tr)
		if err := tr.Save(&bytes.Buffer{}); err == nil {
			t.Errorf("%s: Save succeeded, want error", c.name)
		}
	}
	if err := base().Save(&bytes.Buffer{}); err != nil {
		t.Fatalf("unmutated base trace must encode: %v", err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := DecodeEvents([]byte("not a trace at all")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	if _, err := DecodeEvents(nil); err == nil {
		t.Fatal("empty input decoded without error")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(11)), 5)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Appending data invalidates the checksum position, so this doubles as
	// a checksum-coverage check; build a crafted stream with valid checksum
	// over body+junk to hit the trailing-bytes path specifically.
	body := buf.Bytes()[:buf.Len()-4]
	crafted := append(append([]byte(nil), body...), 0x00, 0x00)
	h := fnv.New32a()
	h.Write(crafted)
	crafted = h.Sum(crafted)
	if _, err := DecodeEvents(crafted); err == nil {
		t.Fatal("stream with trailing bytes decoded without error")
	}
}

func TestLineOf(t *testing.T) {
	tr := &EventTrace{Lines: []mem.Line{0x40, 0x80}}
	if got := tr.LineOf(0); got != "-" {
		t.Errorf("LineOf(0) = %q", got)
	}
	if got := tr.LineOf(2); got != "0x80" {
		t.Errorf("LineOf(2) = %q", got)
	}
	if got := tr.LineOf(9); got != "line#9" {
		t.Errorf("LineOf(9) = %q", got)
	}
}

// FuzzDecodeEvents certifies the decoder never panics and that anything it
// accepts re-encodes to an equivalent trace.
func FuzzDecodeEvents(f *testing.F) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 8; i++ {
		tr := randomTrace(rng, rng.Intn(40))
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("punoevt/1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeEvents(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := DecodeEvents(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !reflect.DeepEqual(noEmptyEv(tr.Events), noEmptyEv(again.Events)) {
			t.Fatal("decode→encode→decode changed the event stream")
		}
	})
}
