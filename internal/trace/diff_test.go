package trace

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stamp"
)

func ev(cycle sim.Time, kind probe.Kind, node int16, line mem.LineID, arg uint64) probe.Event {
	return probe.Event{Cycle: cycle, Kind: kind, Node: node, Line: line, Arg: arg}
}

func TestFirstDivergence(t *testing.T) {
	a := &EventTrace{Scheme: "A", Events: []probe.Event{
		ev(1, probe.KindSend, 0, 1, 5),
		ev(2, probe.KindTxBegin, 1, 0, 7),
		ev(3, probe.KindConflict, 2, 1, 9),
	}}
	same := &EventTrace{Scheme: "B", Events: append([]probe.Event(nil), a.Events...)}
	if d, ok := FirstDivergence(a, same); ok {
		t.Fatalf("identical streams reported divergent at %d", d.Index)
	}

	mid := &EventTrace{Scheme: "B", Events: append([]probe.Event(nil), a.Events...)}
	mid.Events[1].Arg = 8
	d, ok := FirstDivergence(a, mid)
	if !ok || d.Index != 1 {
		t.Fatalf("mid-stream divergence: got ok=%v index=%d, want ok=true index=1", ok, d.Index)
	}
	if d.A == nil || d.B == nil || d.A.Arg != 7 || d.B.Arg != 8 {
		t.Fatalf("divergence events wrong: A=%+v B=%+v", d.A, d.B)
	}

	prefix := &EventTrace{Scheme: "B", Events: a.Events[:2]}
	d, ok = FirstDivergence(a, prefix)
	if !ok || d.Index != 2 || d.A == nil || d.B != nil {
		t.Fatalf("prefix divergence: got ok=%v %+v", ok, d)
	}
	d, ok = FirstDivergence(prefix, a)
	if !ok || d.Index != 2 || d.A != nil || d.B == nil {
		t.Fatalf("reverse prefix divergence: got ok=%v %+v", ok, d)
	}
}

func TestFormatDivergence(t *testing.T) {
	a := &EventTrace{Scheme: "Baseline", Lines: []mem.Line{0x40},
		Events: []probe.Event{ev(10, probe.KindSend, 3, 1, probe.PackSend(uint8(coherence.MsgGETX), 7, 3, 12))}}
	b := &EventTrace{Scheme: "PUNO", Lines: []mem.Line{0x80},
		Events: []probe.Event{ev(12, probe.KindSend, 3, 1, probe.PackSend(uint8(coherence.MsgGETX), 7, 3, 12))}}
	d, ok := FirstDivergence(a, b)
	if !ok {
		t.Fatal("expected divergence")
	}
	line := FormatDivergence(a, b, d)
	for _, want := range []string{
		"diverged at event #0", "A[Baseline]", "B[PUNO]",
		"cycle=10", "cycle=12", "line=0x40", "line=0x80", "GETX", "dst=7",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("diagnosis %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "\n") {
		t.Errorf("diagnosis is not one line: %q", line)
	}

	// Prefix ending renders the side's length instead of an event.
	short := &EventTrace{Scheme: "PUNO", Events: nil}
	d, _ = FirstDivergence(a, short)
	line = FormatDivergence(a, short, d)
	if !strings.Contains(line, "B[PUNO] ended after 0 events") {
		t.Errorf("prefix diagnosis %q missing ended-after clause", line)
	}
}

func TestFormatEventPerKind(t *testing.T) {
	tr := &EventTrace{Lines: []mem.Line{0x40}}
	cases := []struct {
		e    probe.Event
		want []string
	}{
		{ev(1, probe.KindSend, 0, 1, probe.PackSend(uint8(coherence.MsgWakeup), 5, 5, 0)),
			[]string{"send", "Wakeup", "dst=5"}},
		{ev(1, probe.KindTxBegin, 0, 0, probe.PackTx(3, 2, false)), []string{"tx-begin", "static=3", "attempt=2"}},
		{ev(1, probe.KindTxCommit, 0, 0, probe.PackTx(3, 2, false)), []string{"tx-commit", "static=3"}},
		{ev(1, probe.KindTxAbort, 0, 0, probe.PackTx(3, 2, true)), []string{"tx-abort", "overflow"}},
		{ev(1, probe.KindConflict, 0, 1, probe.PackTx(3, 2, true)), []string{"conflict", "vs write", "line=0x40"}},
		{ev(1, probe.KindConflict, 0, 1, probe.PackTx(3, 2, false)), []string{"vs read"}},
		{ev(1, probe.KindDirUnicast, 0, 1, probe.PackDir(4, 2, 9)), []string{"dir-unicast", "dest=4", "req=2", "id=9"}},
		{ev(1, probe.KindDirMulticast, 0, 1, probe.PackDir(3, 2, 9)), []string{"dir-multicast", "targets=3"}},
		{ev(1, probe.KindDirBusyNack, 0, 1, probe.PackDir(0, 2, 9)), []string{"dir-busy-nack", "req=2"}},
		{ev(1, probe.Kind(200), 0, 0, 0xbeef), []string{"arg=0xbeef"}},
	}
	for _, c := range cases {
		got := FormatEvent(tr, c.e)
		for _, want := range c.want {
			if !strings.Contains(got, want) {
				t.Errorf("FormatEvent(%v) = %q, missing %q", c.e.Kind, got, want)
			}
		}
	}
}

func TestPrefixChecker(t *testing.T) {
	ref := []probe.Event{
		ev(1, probe.KindSend, 0, 1, 5),
		ev(2, probe.KindTxBegin, 1, 0, 7),
	}
	// Exact match.
	c := NewPrefixChecker(ref)
	for _, e := range ref {
		c.Emit(e)
	}
	if d, ok := c.Diverged(); ok {
		t.Fatalf("matching replay reported divergent at %d", d.Index)
	}
	// Live run longer than the prefix: still a match.
	c.Emit(ev(3, probe.KindTxCommit, 1, 0, 7))
	if _, ok := c.Diverged(); ok {
		t.Fatal("live events beyond the prefix must be accepted")
	}
	if c.Seen() != 3 {
		t.Fatalf("Seen = %d, want 3", c.Seen())
	}

	// In-prefix mismatch latches the first disagreement.
	c = NewPrefixChecker(ref)
	c.Emit(ref[0])
	wrong := ref[1]
	wrong.Node = 9
	c.Emit(wrong)
	c.Emit(ev(3, probe.KindTxCommit, 1, 0, 7))
	d, ok := c.Diverged()
	if !ok || d.Index != 1 || d.A == nil || d.B == nil || d.B.Node != 9 {
		t.Fatalf("mismatch not latched: ok=%v %+v", ok, d)
	}

	// Live run shorter than the prefix is a divergence at the cut.
	c = NewPrefixChecker(ref)
	c.Emit(ref[0])
	d, ok = c.Diverged()
	if !ok || d.Index != 1 || d.A == nil || d.B != nil {
		t.Fatalf("short replay: ok=%v %+v", ok, d)
	}
}

func testCfg(scheme machine.Scheme) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Scheme = scheme
	return cfg
}

func testWL(t *testing.T) machine.Workload {
	t.Helper()
	wl, err := stamp.ByName("intruder")
	if err != nil {
		t.Fatal(err)
	}
	return wl.WithTxPerCPU(2)
}

// Capturing events must not change the simulated trajectory: results with
// and without a sink are identical, and two captures are event-identical.
func TestCaptureIsTrajectoryNeutral(t *testing.T) {
	wl := testWL(t)
	cfg := testCfg(machine.SchemePUNO)

	plain, err := machine.New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	resPlain, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	res1, et1, err := CaptureEvents(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res2, et2, err := CaptureEvents(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles != resPlain.Cycles || res1.Aborts != resPlain.Aborts || res1.Commits != resPlain.Commits {
		t.Fatalf("tracing changed the trajectory: traced {cyc=%d ab=%d com=%d} vs plain {cyc=%d ab=%d com=%d}",
			res1.Cycles, res1.Aborts, res1.Commits, resPlain.Cycles, resPlain.Aborts, resPlain.Commits)
	}
	if len(et1.Events) == 0 {
		t.Fatal("capture recorded no events")
	}
	if d, ok := FirstDivergence(et1, et2); ok {
		t.Fatalf("two identical captures diverged: %s", FormatDivergence(et1, et2, d))
	}
	if res1.Cycles != res2.Cycles {
		t.Fatalf("capture determinism: %d vs %d cycles", res1.Cycles, res2.Cycles)
	}
}

// Replay-from-prefix: re-running the same configuration against a recorded
// stream through a PrefixChecker matches the whole stream; a prefix of the
// recording is matched by construction.
func TestReplayFromPrefix(t *testing.T) {
	wl := testWL(t)
	cfg := testCfg(machine.SchemeBaseline)
	_, et, err := CaptureEvents(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, prefixLen := range []int{len(et.Events), len(et.Events) / 2, 1} {
		c := NewPrefixChecker(et.Events[:prefixLen])
		cfg2 := cfg
		cfg2.EventSink = c
		m, err := machine.New(cfg2, wl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if d, ok := c.Diverged(); ok {
			t.Fatalf("prefix %d: replay diverged: index=%d", prefixLen, d.Index)
		}
		if c.Seen() != len(et.Events) {
			t.Fatalf("prefix %d: replay emitted %d events, recording has %d", prefixLen, c.Seen(), len(et.Events))
		}
	}
	// A checker against a different scheme's stream must report the
	// divergence (and the replay keeps running safely past it).
	_, other, err := CaptureEvents(testCfg(machine.SchemePUNO), wl)
	if err != nil {
		t.Fatal(err)
	}
	c := NewPrefixChecker(other.Events)
	cfg2 := cfg
	cfg2.EventSink = c
	m, err := machine.New(cfg2, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Diverged(); !ok {
		t.Fatal("replaying Baseline against a PUNO recording did not diverge")
	}
}

// Arena reuse must not leak a sink: a Reset to a config without one stops
// emission, and the trajectory stays byte-identical either way.
func TestResetClearsSink(t *testing.T) {
	wl := testWL(t)
	cfg := testCfg(machine.SchemeBaseline)
	var buf probe.Buffer
	cfgTraced := cfg
	cfgTraced.EventSink = &buf

	m, err := machine.New(cfgTraced, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	traced := buf.Len()
	if traced == 0 {
		t.Fatal("no events recorded on the traced run")
	}
	if err := m.Reset(cfg, wl); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != traced {
		t.Fatalf("sink leaked across Reset: %d events grew to %d", traced, buf.Len())
	}
}

// The flagship regression: re-introduce the wakeup-iteration-order bug
// shape behind its test hook and assert the differ pinpoints the first
// divergent event — a Wakeup send — instead of just "dumps differ". The
// workload makes every node hammer two shared lines so a committing
// PUNO-Push transaction holds wakeup subscriptions for both, which is
// exactly the state whose iteration order the hook reverses.
func TestDifferPinpointsInjectedDivergence(t *testing.T) {
	wl := stamp.NewProfile("wakeup-storm", true, 6, 0, stamp.Class{
		StaticID: 0, Weight: 1,
		RegionBase: mem.Line(0x10000), RegionLines: 2,
		ReadsMin: 2, ReadsMax: 2,
		WritesMin: 2, WritesMax: 2, WritesFromReads: true,
		HotLines: 2,
	})
	cfg := testCfg(machine.SchemePUNOPush)

	_, good, err := CaptureEvents(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	machine.TestHookReverseWakeups = true
	defer func() { machine.TestHookReverseWakeups = false }()
	_, bad, err := CaptureEvents(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := FirstDivergence(good, bad)
	if !ok {
		t.Fatal("reversed wakeup order produced an identical event stream; the injected bug is invisible to the differ")
	}
	if d.A == nil || d.B == nil {
		t.Fatalf("divergence should be an event mismatch, not a length mismatch: %+v", d)
	}
	if d.A.Kind != probe.KindSend {
		t.Fatalf("first divergent event is %v, want a send", d.A.Kind)
	}
	mt, _, _, _ := probe.UnpackSend(d.A.Arg)
	if coherence.MsgType(mt) != coherence.MsgWakeup {
		t.Fatalf("first divergent send is %v, want Wakeup", coherence.MsgType(mt))
	}
	line := FormatDivergence(good, bad, d)
	if !strings.Contains(line, "Wakeup") || !strings.Contains(line, "diverged at event #") {
		t.Fatalf("diagnosis %q does not name the Wakeup divergence", line)
	}
	t.Logf("diagnosis: %s", line)
}
