// Event traces: the compact binary encoding of a run's probe.Event stream.
//
// A workload Trace (trace.go) pins down what a run *executes*; an
// EventTrace pins down what it *did* — every coherence message, transaction
// lifecycle edge, conflict, and directory decision, in emission order. Two
// runs with the same (config, workload, seed) produce byte-identical event
// traces, which is what makes the first-divergence differ (diff.go) a
// sharper tool than comparing rendered dumps.
//
// On-disk format (everything after the magic is varint-framed):
//
//	magic   "punoevt/1"                          9 bytes
//	uvarint len(workload), workload bytes
//	uvarint len(scheme), scheme bytes
//	uvarint seed
//	uvarint line count N
//	N ×     uvarint line>>6                      (lines are 64-byte aligned)
//	uvarint event count M
//	M ×     uvarint cycle delta                  (vs previous event; ≥ 0)
//	        byte    kind                         (0 < kind < probe.KindMax)
//	        uvarint node
//	        uvarint line id                      (index into the line table; 0 = none)
//	        uvarint arg
//	fnv32a  checksum over all preceding bytes    4 bytes big-endian
//
// Cycles are engine time, which is monotone non-decreasing across the
// stream, so deltas are small and the encoder rejects any stream that
// violates monotonicity rather than silently wrapping. The trailing
// checksum means mid-stream truncation and bit corruption are both
// detected before any event is handed to a caller.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/sim"
)

// EventTrace is one run's event stream plus the metadata needed to render
// and compare it: which workload/scheme/seed produced it, and the line
// table mapping the events' dense LineIDs back to addresses. Each trace
// carries its own line table because interning is first-touch: two runs
// that diverge also intern lines in different orders, so a shared table
// would mis-render one side.
type EventTrace struct {
	Workload string
	Scheme   string
	Seed     uint64
	Lines    []mem.Line
	Events   []probe.Event
}

// LineOf renders the line behind a trace-local LineID ("-" when the event
// carries no line, "line#N" when the ID is outside the table).
func (t *EventTrace) LineOf(id mem.LineID) string {
	if id == 0 {
		return "-"
	}
	if int(id) > len(t.Lines) {
		return fmt.Sprintf("line#%d", id)
	}
	return t.Lines[id-1].String()
}

// Normalized returns a copy of the trace with LineIDs renumbered into
// first-appearance order over the event stream and the line table pruned to
// referenced lines. A serial run interns lines in emission order, so
// Normalized is the identity there; a sharded run interleaves shards' first
// touches nondeterministically, so its raw IDs are not reproducible — but
// its *event stream* is bit-deterministic, and renumbering by stream order
// erases the only nondeterministic residue. Sharded captures are normalized
// before they are compared or serialized.
func (t *EventTrace) Normalized() *EventTrace {
	n := &EventTrace{
		Workload: t.Workload,
		Scheme:   t.Scheme,
		Seed:     t.Seed,
		Lines:    make([]mem.Line, 0, len(t.Lines)),
		Events:   make([]probe.Event, len(t.Events)),
	}
	remap := make([]mem.LineID, len(t.Lines)+1)
	for i, e := range t.Events {
		if e.Line > 0 && int(e.Line) <= len(t.Lines) {
			if remap[e.Line] == 0 {
				n.Lines = append(n.Lines, t.Lines[e.Line-1])
				remap[e.Line] = mem.LineID(len(n.Lines))
			}
			e.Line = remap[e.Line]
		}
		n.Events[i] = e
	}
	return n
}

// evtMagic versions the binary encoding (see the package comment for the
// layout). Distinct from the workload-trace magic: the two formats share a
// directory, not a decoder.
const evtMagic = "punoevt/1"

// Save writes the trace in the binary event format.
func (t *EventTrace) Save(w io.Writer) error {
	buf, err := t.encode(nil)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// encode appends the full encoding (magic through checksum) to dst.
func (t *EventTrace) encode(dst []byte) ([]byte, error) {
	b := append(dst, evtMagic...)
	b = appendString(b, t.Workload)
	b = appendString(b, t.Scheme)
	b = binary.AppendUvarint(b, t.Seed)
	b = binary.AppendUvarint(b, uint64(len(t.Lines)))
	for _, l := range t.Lines {
		if uint64(l)&(mem.LineBytes-1) != 0 {
			return nil, fmt.Errorf("trace: unaligned line %v in line table", l)
		}
		b = binary.AppendUvarint(b, uint64(l)>>6)
	}
	b = binary.AppendUvarint(b, uint64(len(t.Events)))
	prev := sim.Time(0)
	for i, e := range t.Events {
		if e.Cycle < prev {
			return nil, fmt.Errorf("trace: event %d cycle %d precedes event %d cycle %d (stream not monotone)",
				i, e.Cycle, i-1, prev)
		}
		if e.Kind == 0 || e.Kind >= probe.KindMax {
			return nil, fmt.Errorf("trace: event %d has invalid kind %d", i, e.Kind)
		}
		if e.Node < 0 {
			return nil, fmt.Errorf("trace: event %d has negative node %d", i, e.Node)
		}
		if e.Line < 0 {
			return nil, fmt.Errorf("trace: event %d has negative line id %d", i, e.Line)
		}
		b = binary.AppendUvarint(b, uint64(e.Cycle-prev))
		b = append(b, byte(e.Kind))
		b = binary.AppendUvarint(b, uint64(e.Node))
		b = binary.AppendUvarint(b, uint64(e.Line))
		b = binary.AppendUvarint(b, e.Arg)
		prev = e.Cycle
	}
	h := fnv.New32a()
	h.Write(b[len(dst):])
	return h.Sum(b), nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// LoadEvents reads a trace written by Save. It reads the stream to EOF and
// verifies the trailing checksum before decoding, so truncated and
// corrupted files fail loudly instead of yielding a shortened stream.
func LoadEvents(r io.Reader) (*EventTrace, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading event trace: %w", err)
	}
	return DecodeEvents(raw)
}

// DecodeEvents decodes one complete binary event trace.
func DecodeEvents(raw []byte) (*EventTrace, error) {
	if len(raw) < len(evtMagic)+4 {
		return nil, fmt.Errorf("trace: event trace truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(evtMagic)]) != evtMagic {
		return nil, fmt.Errorf("trace: bad event-trace magic %q (want %q)", raw[:len(evtMagic)], evtMagic)
	}
	body, sum := raw[:len(raw)-4], raw[len(raw)-4:]
	h := fnv.New32a()
	h.Write(body)
	if got := h.Sum32(); got != binary.BigEndian.Uint32(sum) {
		return nil, fmt.Errorf("trace: event-trace checksum mismatch (file truncated or corrupted)")
	}
	d := evtDecoder{buf: body[len(evtMagic):]}
	t := &EventTrace{}
	t.Workload = d.str("workload")
	t.Scheme = d.str("scheme")
	t.Seed = d.uvarint("seed")
	nLines := d.count("line count", 1<<32)
	if d.err == nil && nLines > 0 {
		t.Lines = make([]mem.Line, nLines)
		for i := range t.Lines {
			t.Lines[i] = mem.Line(d.uvarint("line") << 6)
		}
	}
	nEvents := d.count("event count", 1<<40)
	if d.err == nil && nEvents > 0 {
		t.Events = make([]probe.Event, nEvents)
		cycle := sim.Time(0)
		for i := range t.Events {
			cycle += sim.Time(d.uvarint("cycle delta"))
			kind := probe.Kind(d.byte("kind"))
			node := d.uvarint("node")
			lid := d.uvarint("line id")
			arg := d.uvarint("arg")
			if d.err != nil {
				break
			}
			if kind == 0 || kind >= probe.KindMax {
				return nil, fmt.Errorf("trace: event %d has invalid kind %d", i, kind)
			}
			if node > 1<<15-1 {
				return nil, fmt.Errorf("trace: event %d has implausible node %d", i, node)
			}
			if lid > uint64(nLines) {
				return nil, fmt.Errorf("trace: event %d line id %d outside line table (%d lines)", i, lid, nLines)
			}
			t.Events[i] = probe.Event{
				Cycle: cycle, Arg: arg, Line: mem.LineID(lid), Node: int16(node), Kind: kind,
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after event stream", len(d.buf))
	}
	return t, nil
}

// evtDecoder is a cursor over the checksummed body; the first framing error
// sticks and every later read is a no-op, so decode loops need one check.
type evtDecoder struct {
	buf []byte
	err error
}

func (d *evtDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("trace: event trace truncated reading %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *evtDecoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = fmt.Errorf("trace: event trace truncated reading %s", what)
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *evtDecoder) str(what string) string {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("trace: event trace truncated reading %s (%d bytes claimed, %d left)", what, n, len(d.buf))
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// count reads a length-prefix and bounds it (corrupt counts would otherwise
// drive huge allocations before the per-item reads fail).
func (d *evtDecoder) count(what string, max uint64) int {
	v := d.uvarint(what)
	if d.err == nil && v > max {
		d.err = fmt.Errorf("trace: implausible %s %d", what, v)
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}
