// Package cm implements the contention-management schemes the paper
// evaluates (Sec. IV-A): the baseline fixed backoff, randomized linear
// backoff (Scherer & Scott), the read-modify-write predictor of Bobba et
// al., and PUNO's notification-guided backoff. A Manager makes three kinds
// of per-node decisions: how long a NACKed requester waits before polling
// again, how long an aborted transaction waits before restarting, and
// whether a load should be promoted to an exclusive request.
package cm

import "repro/internal/sim"

// Manager is the per-node contention-management policy.
type Manager interface {
	// Name identifies the scheme in reports.
	Name() string
	// RetryDelay is the backoff before re-issuing a NACKed memory request.
	// retries counts prior NACKs of this same request; tEst is the
	// nacker's notification (estimated remaining cycles; 0 = none).
	RetryDelay(rng *sim.RNG, retries int, tEst sim.Time) sim.Time
	// RestartDelay is the backoff after an abort before the transaction
	// restarts. attempts counts completed attempts of this instance.
	RestartDelay(rng *sim.RNG, attempts int) sim.Time
	// PromoteLoad reports whether the load at (staticID, opIdx) should
	// request exclusive access up front (RMW prediction).
	PromoteLoad(staticID, opIdx int) bool
	// ObserveRMW trains the promotion predictor: the transaction stored to
	// a line it had earlier loaded at (staticID, opIdx).
	ObserveRMW(staticID, opIdx int)
	// ObserveNonRMW anti-trains it: a load promoted at (staticID, opIdx)
	// committed without the transaction ever storing to that line.
	ObserveNonRMW(staticID, opIdx int)
	// Notify reports whether this node attaches T_est notifications to
	// its conflict NACKs (the PUNO node-side mechanism).
	Notify() bool
}

// FixedBackoffCycles is the paper's baseline: "a nacked requester node
// backoffs for a fixed 20 cycles before retrying the request".
const FixedBackoffCycles sim.Time = 20

// Fixed is the baseline scheme: fixed backoff everywhere, no prediction,
// no notification.
type Fixed struct {
	Delay sim.Time
}

// NewFixed returns the baseline manager.
func NewFixed() *Fixed { return &Fixed{Delay: FixedBackoffCycles} }

// Name implements Manager.
func (f *Fixed) Name() string { return "Baseline" }

// RetryDelay implements Manager.
func (f *Fixed) RetryDelay(*sim.RNG, int, sim.Time) sim.Time { return f.Delay }

// RestartDelay implements Manager.
func (f *Fixed) RestartDelay(*sim.RNG, int) sim.Time { return f.Delay }

// PromoteLoad implements Manager.
func (f *Fixed) PromoteLoad(int, int) bool { return false }

// ObserveRMW implements Manager.
func (f *Fixed) ObserveRMW(int, int) {}

// ObserveNonRMW implements Manager.
func (f *Fixed) ObserveNonRMW(int, int) {}

// Notify implements Manager.
func (f *Fixed) Notify() bool { return false }

// RandomBackoff implements randomized linear backoff: an aborted
// transaction waits a uniformly random delay whose upper bound grows
// linearly with its abort count ("transactions that abort frequently will
// have longer backoff"), capped to avoid unbounded serialization.
type RandomBackoff struct {
	Base sim.Time // upper bound per accumulated abort
	Cap  sim.Time // maximum restart delay
}

// NewRandomBackoff returns the scheme with the defaults used in the
// evaluation.
func NewRandomBackoff() *RandomBackoff {
	return &RandomBackoff{Base: 150, Cap: 6000}
}

// Name implements Manager.
func (b *RandomBackoff) Name() string { return "Backoff" }

// RetryDelay implements Manager: polling backoff stays at the baseline.
func (b *RandomBackoff) RetryDelay(*sim.RNG, int, sim.Time) sim.Time {
	return FixedBackoffCycles
}

// RestartDelay implements Manager.
func (b *RandomBackoff) RestartDelay(rng *sim.RNG, attempts int) sim.Time {
	bound := b.Base * sim.Time(attempts)
	if bound > b.Cap {
		bound = b.Cap
	}
	if bound == 0 {
		return FixedBackoffCycles
	}
	return FixedBackoffCycles + sim.Time(rng.Uint64n(uint64(bound)))
}

// PromoteLoad implements Manager.
func (b *RandomBackoff) PromoteLoad(int, int) bool { return false }

// ObserveRMW implements Manager.
func (b *RandomBackoff) ObserveRMW(int, int) {}

// ObserveNonRMW implements Manager.
func (b *RandomBackoff) ObserveNonRMW(int, int) {}

// Notify implements Manager.
func (b *RandomBackoff) Notify() bool { return false }

// PUNO is the node-side half of the PUNO scheme: notification-guided
// polling backoff. When a NACK carries T_est, the requester backs off for
// T_est minus a guard band of twice the average cache-to-cache latency
// (Sec. III-D); without a notification it behaves like the baseline.
// Restart backoff is the baseline's (the paper changes only the polling
// behaviour).
//
// Only the first backoff of an access uses the notification; once a
// notified wait has elapsed, the requester reverts to baseline polling so
// that an overestimated T_est (attempt lengths vary widely under
// contention) cannot strand the line idle after the nacker commits. An
// underestimate still converges: the early retry collects a fresh NACK
// whose T_est reflects the nacker's remaining time, and the cheap polls in
// between keep the handoff prompt.
type PUNO struct {
	GuardBand       sim.Time // 2 x average cache-to-cache latency
	MaxWait         sim.Time // safety cap on a single notification-guided wait
	NotifyEachRetry bool     // sleep on every notified NACK (paper-literal); false = notify once then poll
}

// NewPUNO returns the PUNO manager. guard should be twice the average
// cache-to-cache latency of the interconnect.
func NewPUNO(guard sim.Time) *PUNO {
	return &PUNO{GuardBand: guard, MaxWait: 100000, NotifyEachRetry: true}
}

// Name implements Manager.
func (p *PUNO) Name() string { return "PUNO" }

// RetryDelay implements Manager. The notified wait is half the estimated
// remaining time: T_est derives from a recency-weighted average of highly
// variable attempt durations, so overshoot (which strands the line idle
// and stretches the sleeper's own transaction, amplifying conflicts) is
// common; halving bounds the overshoot cost while undershoot self-corrects
// — the early retry collects a fresh NACK with a smaller T_est and the
// waits converge geometrically onto the nacker's commit.
func (p *PUNO) RetryDelay(_ *sim.RNG, retries int, tEst sim.Time) sim.Time {
	if (retries == 0 || p.NotifyEachRetry) && tEst > p.GuardBand {
		wait := (tEst - p.GuardBand) / 2
		if wait > p.MaxWait {
			wait = p.MaxWait
		}
		if wait < FixedBackoffCycles {
			wait = FixedBackoffCycles
		}
		return wait
	}
	return FixedBackoffCycles
}

// RestartDelay implements Manager.
func (p *PUNO) RestartDelay(*sim.RNG, int) sim.Time { return FixedBackoffCycles }

// PromoteLoad implements Manager.
func (p *PUNO) PromoteLoad(int, int) bool { return false }

// ObserveRMW implements Manager.
func (p *PUNO) ObserveRMW(int, int) {}

// ObserveNonRMW implements Manager.
func (p *PUNO) ObserveNonRMW(int, int) {}

// Notify implements Manager.
func (p *PUNO) Notify() bool { return true }
