package cm

import "repro/internal/sim"

// ATS implements Adaptive Transaction Scheduling (Yoo & Lee), one of the
// proactive contention-management schemes the paper positions PUNO as
// complementary to (Sec. V). Each thread tracks its contention intensity
// (an EWMA over attempt outcomes: 1 for an abort, 0 for a commit); when
// the intensity exceeds a threshold, the thread's next attempt must first
// acquire a machine-wide serialization token, so highly conflicting
// transactions run one at a time while low-contention threads proceed
// freely.
//
// One ATSGroup is shared by all nodes of a machine; NodeManager hands out
// the per-node cm.Manager views.
type ATSGroup struct {
	// Alpha is the EWMA weight of the newest outcome; Threshold the
	// intensity above which a thread serializes (Yoo & Lee use 0.3/0.5
	// regions; these defaults calibrate similarly here).
	Alpha     float64
	Threshold float64

	intensity []float64
	tokenHeld bool
	holder    int
	waiters   []func()

	// Statistics.
	Serialized uint64 // attempts that had to take the token
	MaxQueue   int
}

// NewATSGroup returns shared scheduling state for a machine of n nodes.
func NewATSGroup(n int) *ATSGroup {
	return &ATSGroup{
		Alpha:     0.3,
		Threshold: 0.5,
		intensity: make([]float64, n),
		holder:    -1,
	}
}

// Intensity returns node's current contention-intensity estimate.
func (g *ATSGroup) Intensity(node int) float64 { return g.intensity[node] }

// observe folds one attempt outcome into node's intensity.
func (g *ATSGroup) observe(node int, aborted bool) {
	x := 0.0
	if aborted {
		x = 1.0
	}
	g.intensity[node] = g.Alpha*x + (1-g.Alpha)*g.intensity[node]
}

// requestBegin is called before an attempt begins. done runs when the
// attempt may proceed — immediately for low-intensity threads, or once
// the serialization token frees up.
func (g *ATSGroup) requestBegin(node int, done func()) {
	if g.intensity[node] < g.Threshold {
		done()
		return
	}
	g.Serialized++
	if !g.tokenHeld {
		g.tokenHeld = true
		g.holder = node
		done()
		return
	}
	g.waiters = append(g.waiters, done)
	if len(g.waiters) > g.MaxQueue {
		g.MaxQueue = len(g.waiters)
	}
}

// notifyEnd is called when node's attempt finishes (commit or abort). If
// node held the token it passes to the next waiter.
func (g *ATSGroup) notifyEnd(node int) {
	if !g.tokenHeld || g.holder != node {
		return
	}
	if len(g.waiters) == 0 {
		g.tokenHeld = false
		g.holder = -1
		return
	}
	next := g.waiters[0]
	g.waiters = g.waiters[1:]
	// The token conceptually moves to the released waiter; the holder id
	// is fixed up by that waiter's own begin path via adoptToken.
	g.holder = -2 // in flight
	next()
}

// adoptToken is called by a waiter's done callback context to claim the
// in-flight token.
func (g *ATSGroup) adoptToken(node int) {
	if g.holder == -2 {
		g.holder = node
	}
}

// NodeManager returns node's Manager view: baseline backoff policy plus
// the shared scheduling hooks.
func (g *ATSGroup) NodeManager(node int) *ATS {
	return &ATS{group: g, node: node}
}

// ATS is one node's view of the shared scheduler. It satisfies Manager
// and the machine's optional BeginGater extension.
type ATS struct {
	group *ATSGroup
	node  int
}

// Name implements Manager.
func (a *ATS) Name() string { return "ATS" }

// RetryDelay implements Manager: baseline polling backoff.
func (a *ATS) RetryDelay(*sim.RNG, int, sim.Time) sim.Time { return FixedBackoffCycles }

// RestartDelay implements Manager: baseline restart backoff (scheduling,
// not backoff, is ATS's mechanism).
func (a *ATS) RestartDelay(*sim.RNG, int) sim.Time { return FixedBackoffCycles }

// PromoteLoad implements Manager.
func (a *ATS) PromoteLoad(int, int) bool { return false }

// ObserveRMW implements Manager.
func (a *ATS) ObserveRMW(int, int) {}

// ObserveNonRMW implements Manager.
func (a *ATS) ObserveNonRMW(int, int) {}

// Notify implements Manager.
func (a *ATS) Notify() bool { return false }

// RequestBegin implements machine.BeginGater.
func (a *ATS) RequestBegin(done func()) {
	a.group.requestBegin(a.node, func() {
		a.group.adoptToken(a.node)
		done()
	})
}

// NotifyOutcome implements machine.BeginGater: called at commit or abort
// completion.
func (a *ATS) NotifyOutcome(aborted bool) {
	a.group.observe(a.node, aborted)
	a.group.notifyEnd(a.node)
}
