package cm

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFixedDelays(t *testing.T) {
	f := NewFixed()
	rng := sim.NewRNG(1)
	if f.RetryDelay(rng, 0, 0) != FixedBackoffCycles {
		t.Fatal("retry delay not fixed 20")
	}
	if f.RetryDelay(rng, 10, 5000) != FixedBackoffCycles {
		t.Fatal("baseline must ignore notifications and retry count")
	}
	if f.RestartDelay(rng, 3) != FixedBackoffCycles {
		t.Fatal("restart delay not fixed")
	}
	if f.PromoteLoad(1, 2) || f.Notify() {
		t.Fatal("baseline must not promote or notify")
	}
	if f.Name() != "Baseline" {
		t.Fatal("name wrong")
	}
}

func TestRandomBackoffGrowsWithAttempts(t *testing.T) {
	b := NewRandomBackoff()
	rng := sim.NewRNG(7)
	const samples = 200
	mean := func(attempts int) float64 {
		var sum sim.Time
		for i := 0; i < samples; i++ {
			sum += b.RestartDelay(rng, attempts)
		}
		return float64(sum) / samples
	}
	m1, m10 := mean(1), mean(10)
	if m10 <= m1 {
		t.Fatalf("backoff not growing: mean(1)=%v mean(10)=%v", m1, m10)
	}
}

func TestRandomBackoffBounds(t *testing.T) {
	b := NewRandomBackoff()
	rng := sim.NewRNG(3)
	f := func(attempts uint8) bool {
		a := int(attempts)
		d := b.RestartDelay(rng, a)
		if d < FixedBackoffCycles {
			return false
		}
		bound := b.Base * sim.Time(a)
		if bound > b.Cap {
			bound = b.Cap
		}
		if bound == 0 {
			return d == FixedBackoffCycles
		}
		return d < FixedBackoffCycles+bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBackoffCap(t *testing.T) {
	b := NewRandomBackoff()
	rng := sim.NewRNG(9)
	for i := 0; i < 100; i++ {
		if d := b.RestartDelay(rng, 1<<20); d >= FixedBackoffCycles+b.Cap {
			t.Fatalf("delay %d exceeded cap", d)
		}
	}
}

func TestRandomBackoffRetryStaysBaseline(t *testing.T) {
	b := NewRandomBackoff()
	if b.RetryDelay(sim.NewRNG(1), 5, 1000) != FixedBackoffCycles {
		t.Fatal("random backoff should not change polling backoff")
	}
}

func TestPUNORetryUsesNotification(t *testing.T) {
	p := NewPUNO(60)
	rng := sim.NewRNG(1)
	// T_est 500, guard 60: wait (500-60)/2 = 220 (half the estimate, so
	// that overshoot is bounded and undershoot converges by resleeping).
	if d := p.RetryDelay(rng, 0, 500); d != 220 {
		t.Fatalf("notified retry = %d, want 220", d)
	}
	// T_est below guard: fall back to fixed.
	if d := p.RetryDelay(rng, 0, 50); d != FixedBackoffCycles {
		t.Fatalf("short-notification retry = %d, want %d", d, FixedBackoffCycles)
	}
	// No notification: fixed.
	if d := p.RetryDelay(rng, 0, 0); d != FixedBackoffCycles {
		t.Fatalf("unnotified retry = %d, want %d", d, FixedBackoffCycles)
	}
	// A tiny positive estimate still waits at least the fixed backoff.
	if d := p.RetryDelay(rng, 0, 65); d != FixedBackoffCycles {
		t.Fatalf("tiny-notification retry = %d, want %d", d, FixedBackoffCycles)
	}
}

func TestPUNOWaitCapped(t *testing.T) {
	p := NewPUNO(60)
	p.MaxWait = 1000
	if d := p.RetryDelay(sim.NewRNG(1), 0, 1<<40); d != 1000 {
		t.Fatalf("capped wait = %d, want 1000", d)
	}
}

func TestPUNONotifyEachRetryDefault(t *testing.T) {
	p := NewPUNO(60)
	if !p.NotifyEachRetry {
		t.Fatal("paper-literal resleep should be the default")
	}
	// With resleep on, later retries still honour notifications.
	if d := p.RetryDelay(sim.NewRNG(1), 5, 500); d != 220 {
		t.Fatalf("retry 5 notified delay = %d, want 220", d)
	}
	p.NotifyEachRetry = false
	if d := p.RetryDelay(sim.NewRNG(1), 5, 500); d != FixedBackoffCycles {
		t.Fatalf("notify-once mode retry 5 = %d, want fixed", d)
	}
}

func TestPUNONotifies(t *testing.T) {
	p := NewPUNO(60)
	if !p.Notify() {
		t.Fatal("PUNO must enable notifications")
	}
	if p.RestartDelay(sim.NewRNG(1), 4) != FixedBackoffCycles {
		t.Fatal("PUNO restart backoff should match baseline")
	}
}

func TestRMWPredTrainsAndPromotes(t *testing.T) {
	r := NewRMWPred()
	if r.PromoteLoad(1, 0) {
		t.Fatal("untrained predictor promoted")
	}
	r.ObserveRMW(1, 0)
	if !r.PromoteLoad(1, 0) {
		t.Fatal("trained load not promoted")
	}
	if r.PromoteLoad(1, 1) || r.PromoteLoad(2, 0) {
		t.Fatal("promotion leaked to other loads")
	}
	if r.Trainings != 1 || r.Promotions != 1 {
		t.Fatalf("stats: trainings=%d promotions=%d", r.Trainings, r.Promotions)
	}
}

func TestRMWPredRepeatTrainingRaisesConfidence(t *testing.T) {
	r := NewRMWPred()
	r.ObserveRMW(1, 0)
	r.ObserveRMW(1, 0)
	if r.Len() != 1 {
		t.Fatalf("duplicate training created entries: len=%d", r.Len())
	}
	// Confidence saturated at 3: two demotions still leave it promotable,
	// the third does not.
	r.ObserveRMW(1, 0)
	r.ObserveNonRMW(1, 0)
	if !r.PromoteLoad(1, 0) {
		t.Fatal("one demotion from saturation should keep promoting")
	}
	r.ObserveNonRMW(1, 0)
	if r.PromoteLoad(1, 0) {
		t.Fatal("confidence below threshold still promoted")
	}
}

func TestRMWPredNegativeFeedback(t *testing.T) {
	r := NewRMWPred()
	r.ObserveRMW(1, 0) // confidence 2: promotable
	if !r.PromoteLoad(1, 0) {
		t.Fatal("freshly trained load not promoted")
	}
	r.ObserveNonRMW(1, 0) // confidence 1: below threshold
	if r.PromoteLoad(1, 0) {
		t.Fatal("demoted load still promoted")
	}
	if r.Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1", r.Demotions)
	}
	// Anti-training an unknown site is a no-op.
	r.ObserveNonRMW(9, 9)
	if r.Demotions != 1 {
		t.Fatal("unknown-site demotion counted")
	}
}

func TestRMWPredCapacityFIFO(t *testing.T) {
	r := NewRMWPred()
	r.Capacity = 4
	for i := 0; i < 6; i++ {
		r.ObserveRMW(1, i)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	// Oldest two (op 0, 1) evicted; newest four retained.
	if r.PromoteLoad(1, 0) || r.PromoteLoad(1, 1) {
		t.Fatal("evicted entries still promote")
	}
	for i := 2; i < 6; i++ {
		if !r.PromoteLoad(1, i) {
			t.Fatalf("entry %d missing", i)
		}
	}
}

func TestRMWPredBaselineBackoff(t *testing.T) {
	r := NewRMWPred()
	rng := sim.NewRNG(1)
	if r.RetryDelay(rng, 3, 100) != FixedBackoffCycles || r.RestartDelay(rng, 3) != FixedBackoffCycles {
		t.Fatal("RMW-Pred backoff should match baseline")
	}
	if r.Notify() {
		t.Fatal("RMW-Pred must not notify")
	}
}

func TestManagerInterfaceCompliance(t *testing.T) {
	for _, m := range []Manager{NewFixed(), NewRandomBackoff(), NewPUNO(60), NewRMWPred()} {
		if m.Name() == "" {
			t.Fatal("empty scheme name")
		}
	}
}
