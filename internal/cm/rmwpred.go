package cm

import "repro/internal/sim"

// RMWPred implements the read-modify-write predictor of Bobba et al.
// ("Performance Pathologies in Hardware Transactional Memory"): a per-node
// table of up to Capacity load instructions observed in the
// load-then-store idiom. A predicted load requests exclusive permission up
// front, avoiding the later upgrade conflict — at the cost of converting
// read-read sharing into write-read conflicts in contended workloads.
//
// Each tracked load carries a two-bit saturating confidence counter:
// observing the idiom increments it, a promoted load that committed
// without a following store decrements it, and promotion requires the
// counter to be at least ConfidenceMin. Without the negative feedback, a
// load site that is only occasionally followed by a store (common in
// irregular code) would be promoted forever after one observation.
// Tracked loads live in a flat, insertion-ordered slice with a map used
// only as an index, so the replacement scan never iterates a map and its
// victim choice is order-independent by construction.
type RMWPred struct {
	Capacity      int
	ConfidenceMin uint8
	index         map[loadPC]int // loadPC -> position in entries
	entries       []rmwEntry
	seq           uint64

	// Statistics.
	Promotions uint64
	Trainings  uint64
	Demotions  uint64
}

// loadPC identifies a static load instruction: the static transaction and
// the operation index within it (the simulator's analogue of a PC).
type loadPC struct {
	staticID int
	opIdx    int
}

type rmwEntry struct {
	pc         loadPC // key, so eviction can fix the index
	confidence uint8  // 2-bit saturating
	seq        uint64
}

// NewRMWPred returns a predictor tracking up to 256 loads, the
// configuration in the paper's evaluation.
func NewRMWPred() *RMWPred {
	return &RMWPred{Capacity: 256, ConfidenceMin: 2, index: make(map[loadPC]int)}
}

// Name implements Manager.
func (r *RMWPred) Name() string { return "RMW-Pred" }

// RetryDelay implements Manager: baseline polling backoff.
func (r *RMWPred) RetryDelay(*sim.RNG, int, sim.Time) sim.Time {
	return FixedBackoffCycles
}

// RestartDelay implements Manager: baseline restart backoff.
func (r *RMWPred) RestartDelay(*sim.RNG, int) sim.Time { return FixedBackoffCycles }

// PromoteLoad implements Manager.
func (r *RMWPred) PromoteLoad(staticID, opIdx int) bool {
	i, ok := r.index[loadPC{staticID, opIdx}]
	if ok && r.entries[i].confidence >= r.ConfidenceMin {
		r.Promotions++
		return true
	}
	return false
}

// ObserveRMW implements Manager: the load at (staticID, opIdx) was followed
// by a store to the same line in the same transaction.
func (r *RMWPred) ObserveRMW(staticID, opIdx int) {
	pc := loadPC{staticID, opIdx}
	r.Trainings++
	r.seq++
	if i, ok := r.index[pc]; ok {
		e := &r.entries[i]
		if e.confidence < 3 {
			e.confidence++
		}
		e.seq = r.seq
		return
	}
	if len(r.entries) >= r.Capacity {
		// FIFO-ish replacement: drop the stalest entry. seq values are
		// unique (monotonic), so the strict < scan over the flat slice
		// picks one well-defined victim.
		victim := 0
		oldest := ^uint64(0)
		for i := range r.entries {
			if r.entries[i].seq < oldest {
				oldest = r.entries[i].seq
				victim = i
			}
		}
		delete(r.index, r.entries[victim].pc)
		last := len(r.entries) - 1
		if victim != last {
			r.entries[victim] = r.entries[last]
			r.index[r.entries[victim].pc] = victim
		}
		r.entries = r.entries[:last]
	}
	r.index[pc] = len(r.entries)
	r.entries = append(r.entries, rmwEntry{pc: pc, confidence: 2, seq: r.seq})
}

// ObserveNonRMW implements Manager: a promoted load's line was never
// stored before commit; lower the site's confidence.
func (r *RMWPred) ObserveNonRMW(staticID, opIdx int) {
	if i, ok := r.index[loadPC{staticID, opIdx}]; ok && r.entries[i].confidence > 0 {
		r.entries[i].confidence--
		r.Demotions++
	}
}

// Notify implements Manager.
func (r *RMWPred) Notify() bool { return false }

// Len returns the number of tracked entries.
func (r *RMWPred) Len() int { return len(r.entries) }
