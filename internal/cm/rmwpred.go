package cm

import "repro/internal/sim"

// RMWPred implements the read-modify-write predictor of Bobba et al.
// ("Performance Pathologies in Hardware Transactional Memory"): a per-node
// table of up to Capacity load instructions observed in the
// load-then-store idiom. A predicted load requests exclusive permission up
// front, avoiding the later upgrade conflict — at the cost of converting
// read-read sharing into write-read conflicts in contended workloads.
//
// Each tracked load carries a two-bit saturating confidence counter:
// observing the idiom increments it, a promoted load that committed
// without a following store decrements it, and promotion requires the
// counter to be at least ConfidenceMin. Without the negative feedback, a
// load site that is only occasionally followed by a store (common in
// irregular code) would be promoted forever after one observation.
type RMWPred struct {
	Capacity      int
	ConfidenceMin uint8
	table         map[loadPC]*rmwEntry
	seq           uint64

	// Statistics.
	Promotions uint64
	Trainings  uint64
	Demotions  uint64
}

// loadPC identifies a static load instruction: the static transaction and
// the operation index within it (the simulator's analogue of a PC).
type loadPC struct {
	staticID int
	opIdx    int
}

type rmwEntry struct {
	confidence uint8 // 2-bit saturating
	seq        uint64
}

// NewRMWPred returns a predictor tracking up to 256 loads, the
// configuration in the paper's evaluation.
func NewRMWPred() *RMWPred {
	return &RMWPred{Capacity: 256, ConfidenceMin: 2, table: make(map[loadPC]*rmwEntry)}
}

// Name implements Manager.
func (r *RMWPred) Name() string { return "RMW-Pred" }

// RetryDelay implements Manager: baseline polling backoff.
func (r *RMWPred) RetryDelay(*sim.RNG, int, sim.Time) sim.Time {
	return FixedBackoffCycles
}

// RestartDelay implements Manager: baseline restart backoff.
func (r *RMWPred) RestartDelay(*sim.RNG, int) sim.Time { return FixedBackoffCycles }

// PromoteLoad implements Manager.
func (r *RMWPred) PromoteLoad(staticID, opIdx int) bool {
	e, ok := r.table[loadPC{staticID, opIdx}]
	if ok && e.confidence >= r.ConfidenceMin {
		r.Promotions++
		return true
	}
	return false
}

// ObserveRMW implements Manager: the load at (staticID, opIdx) was followed
// by a store to the same line in the same transaction.
func (r *RMWPred) ObserveRMW(staticID, opIdx int) {
	pc := loadPC{staticID, opIdx}
	r.Trainings++
	r.seq++
	if e, ok := r.table[pc]; ok {
		if e.confidence < 3 {
			e.confidence++
		}
		e.seq = r.seq
		return
	}
	if len(r.table) >= r.Capacity {
		// FIFO-ish replacement: drop the stalest entry.
		var victim loadPC
		oldest := ^uint64(0)
		for k, e := range r.table {
			if e.seq < oldest {
				oldest = e.seq
				victim = k
			}
		}
		delete(r.table, victim)
	}
	r.table[pc] = &rmwEntry{confidence: 2, seq: r.seq}
}

// ObserveNonRMW implements Manager: a promoted load's line was never
// stored before commit; lower the site's confidence.
func (r *RMWPred) ObserveNonRMW(staticID, opIdx int) {
	if e, ok := r.table[loadPC{staticID, opIdx}]; ok && e.confidence > 0 {
		e.confidence--
		r.Demotions++
	}
}

// Notify implements Manager.
func (r *RMWPred) Notify() bool { return false }

// Len returns the number of tracked entries.
func (r *RMWPred) Len() int { return len(r.table) }
