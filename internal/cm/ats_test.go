package cm

import (
	"testing"

	"repro/internal/sim"
)

func TestATSLowIntensityProceedsImmediately(t *testing.T) {
	g := NewATSGroup(4)
	ran := false
	g.NodeManager(0).RequestBegin(func() { ran = true })
	if !ran {
		t.Fatal("low-intensity begin was delayed")
	}
	if g.Serialized != 0 {
		t.Fatal("low-intensity begin counted as serialized")
	}
}

func raiseIntensity(g *ATSGroup, node int) {
	for i := 0; i < 10; i++ {
		g.observe(node, true)
	}
}

func TestATSHighIntensitySerializes(t *testing.T) {
	g := NewATSGroup(4)
	raiseIntensity(g, 0)
	raiseIntensity(g, 1)
	if g.Intensity(0) < g.Threshold {
		t.Fatal("setup: intensity did not rise")
	}

	order := []int{}
	m0, m1 := g.NodeManager(0), g.NodeManager(1)
	m0.RequestBegin(func() { order = append(order, 0) })
	m1.RequestBegin(func() { order = append(order, 1) })
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("order = %v, want [0] (node 1 queued)", order)
	}
	// Node 0's attempt ends: node 1 gets the token.
	m0.NotifyOutcome(false)
	if len(order) != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [0 1]", order)
	}
	// Node 1 ends with nobody waiting: token freed.
	m1.NotifyOutcome(true)
	ran := false
	m0.RequestBegin(func() { ran = true })
	if !ran {
		t.Fatal("token not released")
	}
	if g.Serialized != 3 {
		t.Fatalf("Serialized = %d, want 3", g.Serialized)
	}
}

func TestATSIntensityDecaysOnCommit(t *testing.T) {
	g := NewATSGroup(2)
	raiseIntensity(g, 0)
	hi := g.Intensity(0)
	g.observe(0, false)
	if g.Intensity(0) >= hi {
		t.Fatal("commit did not lower intensity")
	}
	for i := 0; i < 20; i++ {
		g.observe(0, false)
	}
	if g.Intensity(0) >= g.Threshold {
		t.Fatal("intensity did not decay below threshold")
	}
}

func TestATSMixedPopulation(t *testing.T) {
	// A low-intensity node never waits even while the token is held.
	g := NewATSGroup(4)
	raiseIntensity(g, 0)
	g.NodeManager(0).RequestBegin(func() {})
	ran := false
	g.NodeManager(2).RequestBegin(func() { ran = true })
	if !ran {
		t.Fatal("low-intensity node blocked behind the token")
	}
}

func TestATSNotifyWithoutTokenIsNoop(t *testing.T) {
	g := NewATSGroup(2)
	g.NodeManager(1).NotifyOutcome(true) // never held the token
	if g.tokenHeld {
		t.Fatal("phantom token")
	}
}

func TestATSManagerBaselineBackoff(t *testing.T) {
	a := NewATSGroup(2).NodeManager(0)
	rng := sim.NewRNG(1)
	if a.RetryDelay(rng, 1, 100) != FixedBackoffCycles || a.RestartDelay(rng, 2) != FixedBackoffCycles {
		t.Fatal("ATS backoff should match baseline")
	}
	if a.Name() != "ATS" || a.Notify() || a.PromoteLoad(1, 1) {
		t.Fatal("ATS manager surface wrong")
	}
}
