// Package core implements PUNO — Predictive Unicast and Notification — the
// paper's contribution (Sec. III). It has two halves:
//
//   - The directory-side unicast predictor: a per-directory Transaction
//     Priority Buffer (P-Buffer) tracking the latest transaction priority
//     seen from every node, guarded by 2-bit validity counters that decay
//     under an adaptive rollover timeout; and a per-line UD (Unicast
//     Destination) pointer naming the highest-priority sharer. When a
//     transactional GETX arrives and the UD sharer's (valid) priority beats
//     the requester's, the directory forwards the request to that sharer
//     alone instead of multicasting invalidations, so the other sharers'
//     transactions are not falsely aborted.
//
//   - The node-side Transaction Length Buffer (TxLB): per static
//     transaction, a running average of dynamic instance lengths using the
//     paper's recency-weighted formula (prev+dyn)/2. A transaction that
//     NACKs a unicast request attaches its estimated remaining cycles
//     (T_est) so the requester backs off instead of polling.
package core

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// PredictorConfig sizes the directory-side structures.
type PredictorConfig struct {
	Nodes           int      // P-Buffer entries (one per node)
	DecisionLatency sim.Time // P-Buffer read + unicast decision, on the forward path
	MinTimeout      sim.Time // floor for the adaptive rollover period
	FixedTimeout    sim.Time // if nonzero, disables adaptivity (ablation)
	DisableValidity bool     // if true, validity counters never decay (ablation)

	// TimeoutMultiplier scales the adaptive rollover period relative to
	// the observed average transaction length. The paper states the
	// period is "determined dynamically based on the average transaction
	// length" without giving the constant; 16x calibrates well across the
	// workload suite (see the validity ablation bench) because a priority
	// retained across retries stays correct for several transaction
	// lifetimes under contention.
	TimeoutMultiplier int
}

// DefaultPredictorConfig matches the paper: a 16-entry P-Buffer and a
// 2-cycle decision path (1 cycle P-Buffer access + 1 cycle compare).
func DefaultPredictorConfig(nodes int) PredictorConfig {
	return PredictorConfig{Nodes: nodes, DecisionLatency: 2, MinTimeout: 64, TimeoutMultiplier: 16}
}

type pbufEntry struct {
	prio     htm.Priority
	validity uint8 // 2-bit saturating counter; > 1 means usable
}

// Predictor is the directory-side PUNO state for one directory bank. It
// implements coherence.Predictor.
type Predictor struct {
	cfg     PredictorConfig
	clock   func() sim.Time
	pbuf    []pbufEntry
	avgLen  float64 // EWMA of requester-piggybacked average tx lengths
	nextDec sim.Time
	// confidence is an EWMA of unicast accuracy and benefit an EWMA of how
	// often completed multicasts exhibit false aborting. The paper
	// unicasts when the sharer is "predicted with high confidence to
	// nack" (Sec. III-A); unicast stays enabled while either the
	// predictions are accurate or multicasts demonstrably cause false
	// aborting (a mispredicted unicast costs one NACK round-trip, a false
	// aborting multicast costs several wasted transactions, so low
	// accuracy is still profitable when false aborting is common). probe
	// lets a disabled predictor keep sampling so it can recover.
	confidence float64
	benefit    float64
	probe      uint64

	// Statistics.
	Unicasts   uint64
	Multicasts uint64 // predict calls that fell back to multicast
	Mispreds   uint64
	UDUpdates  uint64

	// Multicast-fallback reasons (diagnostics and the ablation bench).
	FallbackNoUD     uint64 // no forward targets to predict over
	FallbackInvalid  uint64 // every sharer's priority validity expired
	FallbackReqOlder uint64 // requester beats the best recorded sharer priority
	FallbackLowConf  uint64 // low accuracy and no false-aborting benefit; multicast
	PartialKnowledge uint64 // unicasts issued while some sharer priorities were expired
}

// NewPredictor builds the directory-side state. clock provides the current
// cycle for the rollover timeout.
func NewPredictor(cfg PredictorConfig, clock func() sim.Time) *Predictor {
	if cfg.Nodes <= 0 {
		panic("core: predictor needs at least one node")
	}
	if cfg.MinTimeout == 0 {
		cfg.MinTimeout = 64
	}
	if cfg.TimeoutMultiplier <= 0 {
		cfg.TimeoutMultiplier = 16
	}
	return &Predictor{
		cfg:        cfg,
		clock:      clock,
		pbuf:       make([]pbufEntry, cfg.Nodes),
		confidence: 1,
	}
}

// timeoutPeriod returns the current rollover period: adaptive to the
// average transaction length so that priorities decay at the rate
// transactions actually turn over (Sec. III-B).
func (p *Predictor) timeoutPeriod() sim.Time {
	if p.cfg.FixedTimeout != 0 {
		return p.cfg.FixedTimeout
	}
	t := sim.Time(p.avgLen) * sim.Time(p.cfg.TimeoutMultiplier)
	if t < p.cfg.MinTimeout {
		return p.cfg.MinTimeout
	}
	return t
}

// decay applies any rollover timeouts that have elapsed since the last
// call, decrementing every non-zero validity counter once per timeout. The
// hardware uses a free-running counter; applying the decrements lazily on
// access is behaviourally identical and keeps the simulation event-free.
func (p *Predictor) decay() {
	if p.cfg.DisableValidity {
		return
	}
	now := p.clock()
	if p.nextDec == 0 {
		p.nextDec = now + p.timeoutPeriod()
		return
	}
	for p.nextDec <= now {
		for i := range p.pbuf {
			if p.pbuf[i].validity > 0 {
				p.pbuf[i].validity--
			}
		}
		p.nextDec += p.timeoutPeriod()
	}
}

// ObserveRequest implements coherence.Predictor: refresh the requester's
// P-Buffer entry and fold its average-transaction-length hint into the
// adaptive timeout.
func (p *Predictor) ObserveRequest(node int, prio htm.Priority, avgTxLen sim.Time) {
	p.decay()
	e := &p.pbuf[node]
	e.prio = prio
	// "When a priority is updated, its validity counter is incremented.
	// After updating the priority with 0 validity, the validity counter is
	// incremented twice to allow a longer timeout period."
	if e.validity == 0 {
		e.validity = 2
	} else if e.validity < 3 {
		e.validity++
	}
	if avgTxLen > 0 {
		if p.avgLen == 0 {
			p.avgLen = float64(avgTxLen)
		} else {
			p.avgLen = (p.avgLen + float64(avgTxLen)) / 2
		}
	}
}

// Valid reports whether node's P-Buffer priority is usable for prediction.
func (p *Predictor) Valid(node int) bool {
	return p.pbuf[node].validity > 1
}

// PriorityOf returns the tracked priority of node (tests and debugging).
func (p *Predictor) PriorityOf(node int) (htm.Priority, bool) {
	return p.pbuf[node].prio, p.Valid(node)
}

// PredictUnicast implements coherence.Predictor. The UD pointer is
// maintained off the critical path after every directory service
// (Sec. III-B), so by the time a new request is serviced all pending
// updates have completed; we model that by recomputing the pointer over
// the forward targets (the sharers minus the requester), then unicast only
// when the chosen sharer's valid recorded priority strictly beats the
// requester's.
func (p *Predictor) PredictUnicast(l mem.Line, sharers []int, reqNode int, reqPrio htm.Priority) (int, bool) {
	p.decay()
	if len(sharers) == 0 {
		p.Multicasts++
		p.FallbackNoUD++
		return 0, false
	}
	if p.confidence < 0.5 && p.benefit < 0.05 {
		// Predictions are inaccurate AND multicasts are not causing false
		// aborting: unicast cannot pay here. Multicast, but probe
		// occasionally so the estimators can recover.
		p.probe++
		if p.probe%32 != 0 {
			p.Multicasts++
			p.FallbackLowConf++
			return 0, false
		}
	}
	best, found := -1, false
	invalids := 0
	for _, s := range sharers {
		if !p.Valid(s) {
			invalids++
			continue
		}
		if !found || htm.Older(p.pbuf[s].prio, s, p.pbuf[best].prio, best) {
			best, found = s, true
		}
	}
	if !found {
		p.Multicasts++
		p.FallbackInvalid++
		return 0, false
	}
	if !htm.Older(p.pbuf[best].prio, best, reqPrio, reqNode) {
		p.Multicasts++
		p.FallbackReqOlder++
		return 0, false
	}
	if invalids > 0 {
		// Some sharers have unknown (expired) priorities: any of them
		// might be older than the requester, but the prediction can still
		// go to the best-known sharer — a wrong guess is caught by the
		// conservative NACK-on-misprediction rule.
		p.PartialKnowledge++
	}
	p.Unicasts++
	return best, true
}

// UpdateUD implements coherence.Predictor. In hardware this recomputes the
// line's stored UD pointer after every directory service; the model instead
// recomputes the pointer from the sharer set at decision time (see
// PredictUnicast), which is behaviourally identical because every pointer
// write is followed by a recomputation before its next read. Only the
// update count — the paper's off-critical-path traffic metric — is kept;
// a per-line pointer table here would be write-only state on the hot path.
func (p *Predictor) UpdateUD(l mem.Line, sharers []int) {
	p.UDUpdates++
}

// Misprediction implements coherence.Predictor: the UNBLOCK MP feedback
// carries the mispredicted sharer's current priority (read by the sharer
// when it NACKed), so the stale P-Buffer entry can be refreshed in place;
// a sharer that was not in a transaction invalidates the entry. Without
// the refresh, a directory with several stale-but-valid entries chains
// through them one misprediction at a time, and the paper's 90%+
// prediction accuracy is unreachable for cache-resident workloads whose
// transactions rarely issue coherence requests.
func (p *Predictor) Misprediction(l mem.Line, node int, prio htm.Priority) {
	p.Mispreds++
	if prio == htm.NoPriority {
		p.pbuf[node].validity = 0
		return
	}
	p.pbuf[node].prio = prio
	if p.pbuf[node].validity < 2 {
		p.pbuf[node].validity = 2
	}
}

// UnicastResolved implements coherence.Predictor: fold one completed
// unicast's outcome into the confidence estimate.
func (p *Predictor) UnicastResolved(correct bool) {
	const w = 0.05
	if correct {
		p.confidence = (1-w)*p.confidence + w
	} else {
		p.confidence = (1 - w) * p.confidence
	}
}

// MulticastResolved implements coherence.Predictor: fold one completed
// multicast transactional GETX outcome into the benefit estimate.
func (p *Predictor) MulticastResolved(falseAbort bool) {
	const w = 0.05
	if falseAbort {
		p.benefit = (1-w)*p.benefit + w
	} else {
		p.benefit = (1 - w) * p.benefit
	}
}

// Confidence returns the current unicast-accuracy estimate.
func (p *Predictor) Confidence() float64 { return p.confidence }

// Benefit returns the current multicast false-aborting estimate.
func (p *Predictor) Benefit() float64 { return p.benefit }

// DecisionLatency implements coherence.Predictor.
func (p *Predictor) DecisionLatency() sim.Time { return p.cfg.DecisionLatency }

// Accuracy returns the fraction of unicast predictions that were not
// reported mispredicted.
func (p *Predictor) Accuracy() float64 {
	if p.Unicasts == 0 {
		return 1
	}
	return 1 - float64(p.Mispreds)/float64(p.Unicasts)
}
