package core

import "repro/internal/sim"

// TxLB is the per-node Transaction Length Buffer (Sec. III-D, Fig. 6): one
// entry per static transaction tracking the recency-weighted average length
// of its dynamic instances. The buffer has a bounded number of entries as
// in hardware; on overflow the least recently touched entry is replaced
// (the paper notes overflow is rare — STAMP's largest workload has 15
// static transactions).
type TxLB struct {
	capacity int
	entries  map[int]*txlbEntry
	tick     uint64

	// Statistics.
	Updates   uint64
	Evictions uint64
}

type txlbEntry struct {
	avg  float64
	used uint64
}

// NewTxLB returns a buffer with the given entry capacity.
func NewTxLB(capacity int) *TxLB {
	if capacity <= 0 {
		panic("core: TxLB needs positive capacity")
	}
	return &TxLB{capacity: capacity, entries: make(map[int]*txlbEntry)}
}

// Len returns the number of tracked static transactions.
func (b *TxLB) Len() int { return len(b.entries) }

// Update folds a committed dynamic instance's length into the static
// transaction's average using the paper's formula (1):
//
//	StaticTxLen_new = (StaticTxLen_prev + DynTxLen) / 2
func (b *TxLB) Update(staticID int, dynLen sim.Time) {
	b.Updates++
	b.tick++
	e, ok := b.entries[staticID]
	if !ok {
		if len(b.entries) >= b.capacity {
			b.evictLRU()
		}
		b.entries[staticID] = &txlbEntry{avg: float64(dynLen), used: b.tick}
		return
	}
	e.avg = (e.avg + float64(dynLen)) / 2
	e.used = b.tick
}

func (b *TxLB) evictLRU() {
	b.Evictions++
	var victim int
	var oldest uint64 = ^uint64(0)
	for id, e := range b.entries {
		if e.used < oldest {
			oldest = e.used
			victim = id
		}
	}
	delete(b.entries, victim)
}

// Average returns the tracked average length of staticID, or 0 if unknown.
func (b *TxLB) Average(staticID int) sim.Time {
	b.tick++
	if e, ok := b.entries[staticID]; ok {
		e.used = b.tick
		return sim.Time(e.avg)
	}
	return 0
}

// EstimateRemaining returns T_est for a running instance of staticID that
// has already executed `elapsed` cycles: the tracked average minus the
// elapsed time, or 0 when unknown or already exceeded (no notification).
func (b *TxLB) EstimateRemaining(staticID int, elapsed sim.Time) sim.Time {
	avg := b.Average(staticID)
	if avg == 0 || elapsed >= avg {
		return 0
	}
	return avg - elapsed
}

// GlobalAverage returns the mean of all tracked averages — the per-node
// average transaction length hint piggybacked on coherence requests for the
// directory's adaptive timeout.
func (b *TxLB) GlobalAverage() sim.Time {
	if len(b.entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range b.entries {
		sum += e.avg
	}
	return sim.Time(sum / float64(len(b.entries)))
}
