package core

import "repro/internal/sim"

// TxLB is the per-node Transaction Length Buffer (Sec. III-D, Fig. 6): one
// entry per static transaction tracking the recency-weighted average length
// of its dynamic instances. The buffer has a bounded number of entries as
// in hardware; on overflow the least recently touched entry is replaced
// (the paper notes overflow is rare — STAMP's largest workload has 15
// static transactions).
//
// Entries live in a flat, insertion-ordered slice with a map used only as
// an index: every iteration (the eviction scan, GlobalAverage's float sum)
// walks the slice, so no result ever depends on Go's randomized map order.
type TxLB struct {
	capacity int
	index    map[int]int // staticID -> position in entries
	entries  []txlbEntry
	tick     uint64

	// Statistics.
	Updates   uint64
	Evictions uint64
}

type txlbEntry struct {
	id   int // staticID, so eviction can fix the index
	avg  float64
	used uint64
}

// NewTxLB returns a buffer with the given entry capacity.
func NewTxLB(capacity int) *TxLB {
	if capacity <= 0 {
		panic("core: TxLB needs positive capacity")
	}
	return &TxLB{
		capacity: capacity,
		index:    make(map[int]int, capacity),
		entries:  make([]txlbEntry, 0, capacity),
	}
}

// Len returns the number of tracked static transactions.
func (b *TxLB) Len() int { return len(b.entries) }

// Update folds a committed dynamic instance's length into the static
// transaction's average using the paper's formula (1):
//
//	StaticTxLen_new = (StaticTxLen_prev + DynTxLen) / 2
func (b *TxLB) Update(staticID int, dynLen sim.Time) {
	b.Updates++
	b.tick++
	if i, ok := b.index[staticID]; ok {
		e := &b.entries[i]
		e.avg = (e.avg + float64(dynLen)) / 2
		e.used = b.tick
		return
	}
	if len(b.entries) >= b.capacity {
		b.evictLRU()
	}
	b.index[staticID] = len(b.entries)
	b.entries = append(b.entries, txlbEntry{id: staticID, avg: float64(dynLen), used: b.tick})
}

// evictLRU drops the least recently touched entry. used ticks are unique
// (tick is monotonic), so the strict < scan picks the same victim in any
// order — and the slice walk makes the order fixed anyway.
func (b *TxLB) evictLRU() {
	b.Evictions++
	victim := 0
	oldest := ^uint64(0)
	for i := range b.entries {
		if b.entries[i].used < oldest {
			oldest = b.entries[i].used
			victim = i
		}
	}
	delete(b.index, b.entries[victim].id)
	last := len(b.entries) - 1
	if victim != last {
		b.entries[victim] = b.entries[last]
		b.index[b.entries[victim].id] = victim
	}
	b.entries = b.entries[:last]
}

// Average returns the tracked average length of staticID, or 0 if unknown.
func (b *TxLB) Average(staticID int) sim.Time {
	b.tick++
	if i, ok := b.index[staticID]; ok {
		b.entries[i].used = b.tick
		return sim.Time(b.entries[i].avg)
	}
	return 0
}

// EstimateRemaining returns T_est for a running instance of staticID that
// has already executed `elapsed` cycles: the tracked average minus the
// elapsed time, or 0 when unknown or already exceeded (no notification).
func (b *TxLB) EstimateRemaining(staticID int, elapsed sim.Time) sim.Time {
	avg := b.Average(staticID)
	if avg == 0 || elapsed >= avg {
		return 0
	}
	return avg - elapsed
}

// GlobalAverage returns the mean of all tracked averages — the per-node
// average transaction length hint piggybacked on coherence requests for the
// directory's adaptive timeout. The float sum runs over the flat slice, so
// rounding is identical on every call with the same contents.
func (b *TxLB) GlobalAverage() sim.Time {
	if len(b.entries) == 0 {
		return 0
	}
	var sum float64
	for i := range b.entries {
		sum += b.entries[i].avg
	}
	return sim.Time(sum / float64(len(b.entries)))
}
