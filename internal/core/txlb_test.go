package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTxLBFirstUpdateSetsAverage(t *testing.T) {
	b := NewTxLB(32)
	b.Update(1, 1000)
	if avg := b.Average(1); avg != 1000 {
		t.Fatalf("Average = %d, want 1000", avg)
	}
}

func TestTxLBRecencyWeightedFormula(t *testing.T) {
	b := NewTxLB(32)
	b.Update(1, 1000)
	b.Update(1, 2000)
	// (1000 + 2000) / 2 = 1500
	if avg := b.Average(1); avg != 1500 {
		t.Fatalf("Average = %d, want 1500", avg)
	}
	b.Update(1, 500)
	// (1500 + 500) / 2 = 1000
	if avg := b.Average(1); avg != 1000 {
		t.Fatalf("Average = %d, want 1000", avg)
	}
}

func TestTxLBUnknownStaticID(t *testing.T) {
	b := NewTxLB(32)
	if b.Average(9) != 0 {
		t.Fatal("unknown static tx should average 0")
	}
	if b.EstimateRemaining(9, 10) != 0 {
		t.Fatal("unknown static tx should estimate 0")
	}
}

func TestTxLBEstimateRemaining(t *testing.T) {
	b := NewTxLB(32)
	b.Update(1, 1000)
	if est := b.EstimateRemaining(1, 300); est != 700 {
		t.Fatalf("EstimateRemaining = %d, want 700", est)
	}
	if est := b.EstimateRemaining(1, 1000); est != 0 {
		t.Fatal("overdue instance should estimate 0")
	}
	if est := b.EstimateRemaining(1, 5000); est != 0 {
		t.Fatal("long-overdue instance should estimate 0")
	}
}

func TestTxLBCapacityEvictsLRU(t *testing.T) {
	b := NewTxLB(2)
	b.Update(1, 100)
	b.Update(2, 200)
	b.Average(1) // touch 1 so that 2 is LRU
	b.Update(3, 300)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if b.Average(2) != 0 {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if b.Average(1) != 100 || b.Average(3) != 300 {
		t.Fatal("survivors corrupted")
	}
	if b.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", b.Evictions)
	}
}

func TestTxLBGlobalAverage(t *testing.T) {
	b := NewTxLB(32)
	if b.GlobalAverage() != 0 {
		t.Fatal("empty buffer global average should be 0")
	}
	b.Update(1, 100)
	b.Update(2, 300)
	if g := b.GlobalAverage(); g != 200 {
		t.Fatalf("GlobalAverage = %d, want 200", g)
	}
}

func TestTxLBPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTxLB(0) did not panic")
		}
	}()
	NewTxLB(0)
}

// Property: the average is always between the min and max of observed
// lengths (convexity of the recency-weighted update).
func TestTxLBAverageBounded(t *testing.T) {
	f := func(lens []uint16) bool {
		if len(lens) == 0 {
			return true
		}
		b := NewTxLB(4)
		lo, hi := sim.Time(lens[0]), sim.Time(lens[0])
		for _, l := range lens {
			d := sim.Time(l)
			b.Update(1, d)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		avg := b.Average(1)
		return avg >= lo && avg <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the estimate never exceeds the tracked average.
func TestTxLBEstimateNeverExceedsAverage(t *testing.T) {
	f := func(length uint16, elapsed uint16) bool {
		b := NewTxLB(4)
		b.Update(1, sim.Time(length)+1)
		est := b.EstimateRemaining(1, sim.Time(elapsed))
		return est <= b.Average(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
