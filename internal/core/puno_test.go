package core

import (
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

const pline = mem.Line(0x1000)

func newPred(clock *sim.Time) *Predictor {
	return NewPredictor(DefaultPredictorConfig(16), func() sim.Time { return *clock })
}

func TestObserveMakesEntryValid(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	if p.Valid(3) {
		t.Fatal("fresh entry valid")
	}
	p.ObserveRequest(3, 100, 0)
	if !p.Valid(3) {
		t.Fatal("entry invalid after observe (0 -> 2 rule)")
	}
	prio, ok := p.PriorityOf(3)
	if !ok || prio != 100 {
		t.Fatalf("PriorityOf = %d/%v", prio, ok)
	}
}

func TestPredictUnicastFollowsUD(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	p.ObserveRequest(1, 10, 0) // oldest
	p.ObserveRequest(5, 30, 0)
	p.UpdateUD(pline, []int{1, 5})

	dest, ok := p.PredictUnicast(pline, []int{1, 5}, 9, 50)
	if !ok || dest != 1 {
		t.Fatalf("PredictUnicast = %d/%v, want 1/true", dest, ok)
	}
	if p.Unicasts != 1 {
		t.Fatal("unicast not counted")
	}
}

func TestNoUnicastWhenRequesterOlder(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	p.ObserveRequest(1, 100, 0)
	p.UpdateUD(pline, []int{1})
	// Requester priority 10 is older than sharer's 100: multicast.
	if _, ok := p.PredictUnicast(pline, []int{1}, 9, 10); ok {
		t.Fatal("unicast predicted for an older requester")
	}
	if p.Multicasts != 1 {
		t.Fatal("multicast fallback not counted")
	}
}

func TestNoUnicastWithoutTargets(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	p.ObserveRequest(1, 10, 0)
	if _, ok := p.PredictUnicast(pline, nil, 9, 50); ok {
		t.Fatal("unicast with no forward targets")
	}
	if p.FallbackNoUD != 1 {
		t.Fatal("noUD fallback not counted")
	}
}

func TestUnicastOnlyToActualSharers(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	p.ObserveRequest(1, 10, 0) // node 1 oldest but not a sharer
	p.ObserveRequest(5, 30, 0)
	dest, ok := p.PredictUnicast(pline, []int{5, 7}, 9, 50)
	if !ok || dest != 5 {
		t.Fatalf("PredictUnicast = %d/%v, want 5/true (best valid sharer)", dest, ok)
	}
}

func TestUpdateUDPicksHighestValidPriority(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	p.ObserveRequest(2, 40, 0)
	p.ObserveRequest(6, 20, 0)
	p.ObserveRequest(9, 70, 0)
	p.UpdateUD(pline, []int{2, 6, 9})
	dest, ok := p.PredictUnicast(pline, []int{2, 6, 9}, 12, 100)
	if !ok || dest != 6 {
		t.Fatalf("UD = %d/%v, want 6 (priority 20)", dest, ok)
	}
}

func TestUpdateUDSkipsInvalidEntries(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	p.ObserveRequest(2, 40, 0)
	// Node 6 never observed: validity 0, cannot be UD.
	p.UpdateUD(pline, []int{2, 6})
	dest, ok := p.PredictUnicast(pline, []int{2, 6}, 12, 100)
	if !ok || dest != 2 {
		t.Fatalf("UD = %d/%v, want 2", dest, ok)
	}
}

func TestUpdateUDDeletesWhenNoValidSharer(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	p.ObserveRequest(2, 40, 0)
	p.UpdateUD(pline, []int{2})
	p.Misprediction(pline, 2, htm.NoPriority) // sharer idle: invalidates node 2
	p.UpdateUD(pline, []int{2})
	if _, ok := p.PredictUnicast(pline, []int{2}, 12, 100); ok {
		t.Fatal("unicast after UD should have been deleted")
	}
}

func TestMispredictionInvalidatesIdleEntry(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	p.ObserveRequest(4, 10, 0)
	if !p.Valid(4) {
		t.Fatal("setup failed")
	}
	p.Misprediction(pline, 4, htm.NoPriority)
	if p.Valid(4) {
		t.Fatal("entry valid after idle-sharer misprediction feedback")
	}
	if p.Mispreds != 1 {
		t.Fatal("misprediction not counted")
	}
}

func TestMispredictionRefreshesActiveEntry(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	p.ObserveRequest(4, 10, 0) // stale: node 4 has since started prio 900
	p.Misprediction(pline, 4, 900)
	if !p.Valid(4) {
		t.Fatal("refreshed entry should stay valid")
	}
	if prio, _ := p.PriorityOf(4); prio != 900 {
		t.Fatalf("refreshed prio = %d, want 900", prio)
	}
	// The refreshed (younger) priority must stop attracting unicasts from
	// older requesters.
	if _, ok := p.PredictUnicast(pline, []int{4}, 9, 500); ok {
		t.Fatal("unicast to a sharer now known to be younger")
	}
}

func TestValidityDecaysOverTime(t *testing.T) {
	var now sim.Time
	cfg := DefaultPredictorConfig(16)
	cfg.FixedTimeout = 100
	p := NewPredictor(cfg, func() sim.Time { return now })
	p.ObserveRequest(3, 10, 0) // validity 2, decay clock armed
	if !p.Valid(3) {
		t.Fatal("setup failed")
	}
	// One timeout: validity 2 -> 1 (no longer usable).
	now = 250
	p.decay()
	if p.Valid(3) {
		t.Fatal("validity did not decay after timeout")
	}
	// Re-observing from validity 1 increments to 2 again.
	p.ObserveRequest(3, 11, 0)
	if !p.Valid(3) {
		t.Fatal("re-observe did not restore validity")
	}
}

func TestValiditySaturatesAtThree(t *testing.T) {
	var now sim.Time
	cfg := DefaultPredictorConfig(16)
	cfg.FixedTimeout = 100
	p := NewPredictor(cfg, func() sim.Time { return now })
	for i := 0; i < 10; i++ {
		p.ObserveRequest(3, 10, 0)
	}
	// Saturated at 3: two decays leave validity 1 (invalid), three leave 0.
	now = 100
	p.decay()
	if !p.Valid(3) {
		t.Fatal("validity 3 should survive one decay")
	}
	now = 350
	p.decay()
	if p.Valid(3) {
		t.Fatal("validity should be <= 1 after three decays")
	}
}

func TestDisableValidityAblation(t *testing.T) {
	var now sim.Time
	cfg := DefaultPredictorConfig(16)
	cfg.DisableValidity = true
	p := NewPredictor(cfg, func() sim.Time { return now })
	p.ObserveRequest(3, 10, 0)
	now = 1 << 30
	p.decay()
	if !p.Valid(3) {
		t.Fatal("validity decayed despite ablation flag")
	}
}

func TestAdaptiveTimeoutTracksAvgLen(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	if p.timeoutPeriod() != 64 {
		t.Fatalf("initial period = %d, want MinTimeout 64", p.timeoutPeriod())
	}
	p.ObserveRequest(1, 10, 1000)
	if p.timeoutPeriod() != 16000 {
		t.Fatalf("period = %d, want 16000 (16x avg)", p.timeoutPeriod())
	}
	p.ObserveRequest(2, 20, 2000)
	if p.timeoutPeriod() != 24000 {
		t.Fatalf("period = %d, want 24000 (16x EWMA)", p.timeoutPeriod())
	}
}

func TestAccuracy(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	if p.Accuracy() != 1 {
		t.Fatal("accuracy with no unicasts should be 1")
	}
	p.Unicasts = 10
	p.Mispreds = 1
	if acc := p.Accuracy(); acc != 0.9 {
		t.Fatalf("accuracy = %v, want 0.9", acc)
	}
}

func TestDecisionLatency(t *testing.T) {
	var now sim.Time
	p := newPred(&now)
	if p.DecisionLatency() != 2 {
		t.Fatalf("DecisionLatency = %d, want 2", p.DecisionLatency())
	}
}
