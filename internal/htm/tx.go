// Package htm implements the per-core hardware-transactional-memory
// bookkeeping of a log-based eager HTM (LogTM/FASTM class, the paper's
// baseline): exact read and write sets, an undo log for eager version
// management with a fixed per-entry rollback cost, timestamp priorities
// under the time-based conflict resolution policy, and optional
// Bloom-filter signatures (LogTM-SE style) as an alternative
// conflict-detection backend.
package htm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/sim"
)

// Priority is a transaction's conflict-resolution priority under the
// time-based policy: the cycle at which the transaction (logically) began.
// Smaller is older is higher priority. NoPriority marks a node not currently
// in a transaction; it never wins a conflict.
type Priority uint64

// NoPriority is the priority of a non-transactional access: it loses every
// conflict (it is NACKed and retries; it never aborts a transaction).
const NoPriority Priority = ^Priority(0)

// Older reports whether p wins a conflict against q. Ties (identical begin
// cycles on different nodes) are broken by node id, lower id winning, so
// that priority is a strict total order across the machine.
func Older(p Priority, pNode int, q Priority, qNode int) bool {
	if p != q {
		return p < q
	}
	return pNode < qNode
}

// Status is the lifecycle state of a transaction attempt.
type Status uint8

// Transaction lifecycle states.
const (
	StatusIdle      Status = iota // no transaction running
	StatusRunning                 // between begin and commit/abort
	StatusAborting                // rolling back the undo log
	StatusCommitted               // final, until the next Begin
	StatusAborted                 // final for this attempt, will retry
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusRunning:
		return "running"
	case StatusAborting:
		return "aborting"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// LogEntry records the pre-transaction value of one word, for undo.
type LogEntry struct {
	Addr mem.Addr
	Old  uint64
}

// Costs models the cycle costs of transactional bookkeeping. The defaults
// follow the paper's baseline: a hardware buffer holds pre-transaction
// state for fast FASTM-style abort recovery.
type Costs struct {
	BeginCycles    sim.Time // register checkpoint
	CommitCycles   sim.Time // clear sets, release isolation
	AbortFixed     sim.Time // abort detection and pipeline flush
	AbortPerEntry  sim.Time // restoring one undo-log word
	OverflowCycles sim.Time // extra penalty when aborting due to set overflow
}

// DefaultCosts returns the baseline cost model.
func DefaultCosts() Costs {
	return Costs{BeginCycles: 2, CommitCycles: 2, AbortFixed: 10, AbortPerEntry: 2, OverflowCycles: 40}
}

// Tx is the transactional state of one hardware thread. The zero value is
// an idle transaction.
type Tx struct {
	Node     int
	StaticID int      // which static (source-level) transaction this is
	Prio     Priority // retained across retries of the same dynamic instance
	Status   Status

	// Exact conflict sets: flat, insertion-ordered, reused across attempts
	// (Reset instead of re-make) so steady-state transactions allocate
	// nothing — mirroring the fixed-size set structures of bounded HTMs.
	readSet  lineSet
	writeSet lineSet
	undo     []LogEntry

	BeginCycle   sim.Time // cycle this attempt started executing
	Attempts     int      // 1 on first execution, +1 per retry
	sig          *Signature
	useSignature bool

	// it translates Lines to the dense LineIDs the conflict sets are
	// indexed by. The machine shares its interner via SetInterner; a Tx
	// used standalone (tests) lazily creates a private one.
	it *mem.Interner

	// probe, when non-nil, receives transaction lifecycle and
	// conflict-detection events; probeNow supplies their timestamps
	// (Commit/StartAbort/ConflictsWithID are not passed the clock).
	probe    probe.Sink
	probeNow func() sim.Time
}

// NewTx returns an idle transaction context for a node.
func NewTx(node int) *Tx {
	return &Tx{Node: node, Status: StatusIdle}
}

// SetInterner shares the machine-wide line interner, so the IDs carried by
// coherence messages index this transaction's conflict sets directly.
func (t *Tx) SetInterner(it *mem.Interner) { t.it = it }

// SetProbe installs an event sink for transaction lifecycle
// (begin/commit/abort) and conflict-detection events, with now supplying
// timestamps. Pass (nil, nil) to disable. The probe observes only — it
// must never influence the trajectory.
func (t *Tx) SetProbe(s probe.Sink, now func() sim.Time) {
	t.probe = s
	t.probeNow = now
}

// emit sends a lifecycle event when a probe is installed.
//
//puno:hot
func (t *Tx) emit(kind probe.Kind, cycle sim.Time, line mem.LineID, arg uint64) {
	if t.probe == nil {
		return
	}
	t.probe.Emit(probe.Event{Cycle: cycle, Arg: arg, Line: line, Node: int16(t.Node), Kind: kind})
}

// interner returns the shared interner, creating a private one on first
// use when none was provided (standalone tests).
func (t *Tx) interner() *mem.Interner {
	if t.it == nil {
		t.it = mem.NewInterner()
	}
	return t.it
}

// UseSignatures switches conflict tracking to Bloom-filter signatures of the
// given size in bits (in addition to the exact sets, which are still kept
// for version management). Conflict checks then go through the signature and
// may report false positives, as in LogTM-SE. A previously allocated filter
// of the same size is cleared and reused.
func (t *Tx) UseSignatures(bits int) {
	t.useSignature = true
	if t.sig != nil && t.sig.Bits() == roundSignatureBits(bits) {
		t.sig.Clear()
		return
	}
	t.sig = NewSignature(bits)
}

// HardReset returns the context to the state NewTx(node) would produce —
// idle, no priority, no attempts — while keeping the read/write set, undo
// log, and signature capacity for reuse. Unlike Reset (which only consumes
// a finished attempt), HardReset may be called in any state: it is the
// arena-reuse path, run between simulations, so no attempt can be live.
// Signature mode is switched off; the next run re-enables it via
// UseSignatures when its config asks for them.
func (t *Tx) HardReset(node int) {
	t.Node = node
	t.StaticID = 0
	t.Prio = 0
	t.Status = StatusIdle
	t.readSet.Reset()
	t.writeSet.Reset()
	t.undo = t.undo[:0]
	t.BeginCycle = 0
	t.Attempts = 0
	t.useSignature = false
	if t.sig != nil {
		t.sig.Clear()
	}
}

// Begin starts a new dynamic instance at cycle now. If retry is true the
// transaction keeps its previous priority (time-based policy: a retried
// transaction ages, guaranteeing progress); otherwise priority is the begin
// cycle.
func (t *Tx) Begin(staticID int, now sim.Time, retry bool) {
	if t.Status == StatusRunning || t.Status == StatusAborting {
		panic(fmt.Sprintf("htm: Begin while %v", t.Status))
	}
	if !retry {
		t.Prio = Priority(now)
		t.Attempts = 0
	}
	t.StaticID = staticID
	t.Status = StatusRunning
	t.BeginCycle = now
	t.Attempts++
	t.readSet.Reset()
	t.writeSet.Reset()
	t.undo = t.undo[:0]
	if t.sig != nil {
		t.sig.Clear()
	}
	t.emit(probe.KindTxBegin, now, 0, probe.PackTx(staticID, t.Attempts, false))
}

// Running reports whether a transaction attempt is currently executing.
func (t *Tx) Running() bool { return t.Status == StatusRunning }

// InFlight reports whether the node holds transactional isolation (running
// or mid-abort; in both cases its sets are still relevant to requests that
// raced with the abort).
func (t *Tx) InFlight() bool { return t.Status == StatusRunning || t.Status == StatusAborting }

// RecordRead adds l to the read set.
func (t *Tx) RecordRead(l mem.Line) { t.RecordReadID(l, 0) }

// RecordReadID adds l, whose interned ID is id (0 when the caller does not
// know it), to the read set.
//
//puno:hot
func (t *Tx) RecordReadID(l mem.Line, id mem.LineID) {
	t.mustRun("RecordRead")
	if id == 0 {
		id = t.interner().Intern(l)
	}
	t.readSet.AddID(l, id)
	if t.sig != nil {
		t.sig.InsertRead(l)
	}
}

// RecordWrite adds l to the write set and logs the old value of the word
// about to be overwritten.
func (t *Tx) RecordWrite(l mem.Line, a mem.Addr, old uint64) {
	t.RecordWriteID(l, 0, a, old)
}

// RecordWriteID is RecordWrite with l's interned ID carried by the caller
// (0 when unknown).
//
//puno:hot
func (t *Tx) RecordWriteID(l mem.Line, id mem.LineID, a mem.Addr, old uint64) {
	t.mustRun("RecordWrite")
	if id == 0 {
		id = t.interner().Intern(l)
	}
	t.writeSet.AddID(l, id)
	if t.sig != nil {
		t.sig.InsertWrite(l)
	}
	t.undo = append(t.undo, LogEntry{Addr: a, Old: old})
}

func (t *Tx) mustRun(op string) {
	if t.Status != StatusRunning {
		panic(fmt.Sprintf("htm: %s while %v", op, t.Status))
	}
}

// InReadSet reports whether l is (possibly, if signatures are enabled) in
// the read set.
func (t *Tx) InReadSet(l mem.Line) bool { return t.InReadSetID(l, 0) }

// InReadSetID is InReadSet with l's interned ID carried by the caller (0
// when unknown; a line that was never interned cannot be a member).
// Signature mode still hashes the raw line, exactly as the modeled
// hardware would.
//
//puno:hot
func (t *Tx) InReadSetID(l mem.Line, id mem.LineID) bool {
	if t.useSignature {
		return t.sig.TestRead(l)
	}
	if id == 0 {
		id = t.interner().Lookup(l)
	}
	return t.readSet.ContainsID(id)
}

// InWriteSet reports whether l is (possibly) in the write set.
func (t *Tx) InWriteSet(l mem.Line) bool { return t.InWriteSetID(l, 0) }

// InWriteSetID is InWriteSet with l's interned ID carried by the caller.
//
//puno:hot
func (t *Tx) InWriteSetID(l mem.Line, id mem.LineID) bool {
	if t.useSignature {
		return t.sig.TestWrite(l)
	}
	if id == 0 {
		id = t.interner().Lookup(l)
	}
	return t.writeSet.ContainsID(id)
}

// ConflictsWith classifies an incoming request against this transaction's
// sets: a write request conflicts with read or write membership, a read
// request conflicts only with write membership ("single-writer,
// multi-reader" invariant).
func (t *Tx) ConflictsWith(l mem.Line, isWrite bool) bool {
	return t.ConflictsWithID(l, 0, isWrite)
}

// ConflictsWithID is ConflictsWith with l's interned ID carried by the
// caller (0 when unknown).
//
//puno:hot
func (t *Tx) ConflictsWithID(l mem.Line, id mem.LineID, isWrite bool) bool {
	if !t.InFlight() {
		return false
	}
	if id == 0 && !t.useSignature {
		id = t.interner().Lookup(l)
	}
	var hit bool
	if isWrite {
		hit = t.InReadSetID(l, id) || t.InWriteSetID(l, id)
	} else {
		hit = t.InWriteSetID(l, id)
	}
	if hit && t.probe != nil {
		t.emit(probe.KindConflict, t.probeNow(), id, probe.PackTx(t.StaticID, t.Attempts, isWrite))
	}
	return hit
}

// ReadSetSize returns the exact read-set line count.
func (t *Tx) ReadSetSize() int { return t.readSet.Len() }

// WriteSetSize returns the exact write-set line count.
func (t *Tx) WriteSetSize() int { return t.writeSet.Len() }

// LogEntries returns the undo-log length in words.
func (t *Tx) LogEntries() int { return len(t.undo) }

// ForEachSetLine calls fn for every line in either set (write-set lines
// first, each set in insertion order). Used by the machine layer to unpin
// cache lines at commit/abort.
func (t *Tx) ForEachSetLine(fn func(l mem.Line, write bool)) {
	for _, l := range t.writeSet.lines {
		fn(l, true)
	}
	for i, l := range t.readSet.lines {
		if !t.writeSet.ContainsID(t.readSet.ids[i]) {
			fn(l, false)
		}
	}
}

// Commit finalizes the attempt and returns its cost in cycles.
func (t *Tx) Commit(c Costs) sim.Time {
	t.mustRun("Commit")
	t.Status = StatusCommitted
	if t.probe != nil {
		t.emit(probe.KindTxCommit, t.probeNow(), 0, probe.PackTx(t.StaticID, t.Attempts, false))
	}
	return c.CommitCycles
}

// StartAbort moves the transaction to the aborting state and returns the
// rollback latency: fixed cost plus per-undo-entry cost (plus the overflow
// penalty when overflow is true). The caller applies the undo entries via
// Undo and completes with FinishAbort after the latency elapses.
func (t *Tx) StartAbort(c Costs, overflow bool) sim.Time {
	t.mustRun("StartAbort")
	t.Status = StatusAborting
	lat := c.AbortFixed + sim.Time(len(t.undo))*c.AbortPerEntry
	if overflow {
		lat += c.OverflowCycles
	}
	if t.probe != nil {
		t.emit(probe.KindTxAbort, t.probeNow(), 0, probe.PackTx(t.StaticID, t.Attempts, overflow))
	}
	return lat
}

// Undo returns the undo entries in reverse (newest-first) order, the order
// they must be applied to restore pre-transaction values when a word was
// written more than once. It allocates; the abort hot path uses UndoEntry
// with a countdown loop instead.
func (t *Tx) Undo() []LogEntry {
	out := make([]LogEntry, len(t.undo))
	for i, e := range t.undo {
		out[len(t.undo)-1-i] = e
	}
	return out
}

// UndoEntry returns the i'th undo entry in log (oldest-first) order.
// Applying entries from LogEntries()-1 down to 0 restores pre-transaction
// values without allocating.
func (t *Tx) UndoEntry(i int) LogEntry { return t.undo[i] }

// FinishAbort completes rollback: sets are cleared and the attempt is over.
func (t *Tx) FinishAbort() {
	if t.Status != StatusAborting {
		panic(fmt.Sprintf("htm: FinishAbort while %v", t.Status))
	}
	t.Status = StatusAborted
	t.readSet.Reset()
	t.writeSet.Reset()
	t.undo = t.undo[:0]
	if t.sig != nil {
		t.sig.Clear()
	}
}

// Reset returns to idle (after a committed or aborted attempt has been
// consumed by the core).
func (t *Tx) Reset() {
	if t.Status == StatusRunning || t.Status == StatusAborting {
		panic(fmt.Sprintf("htm: Reset while %v", t.Status))
	}
	t.Status = StatusIdle
}
