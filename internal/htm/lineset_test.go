package htm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestLineSetMatchesMap drives the flat bitmap set and a reference map with
// the same random add/contains/reset stream, the lines interned the way the
// machine layer does it.
func TestLineSetMatchesMap(t *testing.T) {
	rng := sim.NewRNG(11)
	it := mem.NewInterner()
	var s lineSet
	ref := map[mem.Line]bool{}
	for step := 0; step < 20000; step++ {
		l := mem.Line(rng.Intn(512) * mem.LineBytes)
		switch rng.Intn(10) {
		case 0:
			s.Reset()
			ref = map[mem.Line]bool{}
		case 1, 2, 3, 4:
			added := s.AddID(l, it.Intern(l))
			if added == ref[l] {
				t.Fatalf("step %d: AddID(%v) = %v with ref membership %v", step, l, added, ref[l])
			}
			ref[l] = true
		default:
			if got := s.ContainsID(it.Lookup(l)); got != ref[l] {
				t.Fatalf("step %d: ContainsID(%v) = %v, want %v", step, l, got, ref[l])
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(ref))
		}
	}
}

// TestLineSetInsertionOrder pins the deterministic iteration order the
// machine layer (and trace output) now relies on.
func TestLineSetInsertionOrder(t *testing.T) {
	it := mem.NewInterner()
	var s lineSet
	want := []mem.Line{0x1c0, 0x40, 0x0, 0x8000, 0x40 /* dup */, 0x200}
	for _, l := range want {
		s.AddID(l, it.Intern(l))
	}
	dedup := []mem.Line{0x1c0, 0x40, 0x0, 0x8000, 0x200}
	if len(s.lines) != len(dedup) {
		t.Fatalf("lines = %v, want %v", s.lines, dedup)
	}
	for i, l := range dedup {
		if s.lines[i] != l {
			t.Fatalf("lines[%d] = %v, want %v", i, s.lines[i], l)
		}
		if s.ids[i] != it.Lookup(l) {
			t.Fatalf("ids[%d] = %d, want %d", i, s.ids[i], it.Lookup(l))
		}
	}
}

// TestLineSetZeroIDNeverMember pins the sentinel: the zero (uninterned)
// LineID must never test as a member, whatever bits real members set.
func TestLineSetZeroIDNeverMember(t *testing.T) {
	var s lineSet
	for id := mem.LineID(1); id <= 200; id++ {
		s.AddID(mem.Line(uint64(id)*mem.LineBytes), id)
		if s.ContainsID(0) {
			t.Fatalf("ContainsID(0) = true after adding id %d", id)
		}
	}
}

// TestLineSetSteadyStateAllocFree: after the first growth, repeated
// fill/reset cycles allocate nothing — the property Begin/FinishAbort rely
// on across transaction retries.
func TestLineSetSteadyStateAllocFree(t *testing.T) {
	it := mem.NewInterner()
	var s lineSet
	fill := func() {
		for i := 0; i < 64; i++ {
			l := mem.Line(i * mem.LineBytes)
			s.AddID(l, it.Intern(l))
		}
		s.Reset()
	}
	fill() // warm up capacity
	if allocs := testing.AllocsPerRun(100, fill); allocs != 0 {
		t.Fatalf("steady-state fill/reset allocated %.1f objects, want 0", allocs)
	}
}
