package htm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestLineSetMatchesMap drives the flat set and a reference map with the
// same random add/contains/reset stream.
func TestLineSetMatchesMap(t *testing.T) {
	rng := sim.NewRNG(11)
	var s lineSet
	ref := map[mem.Line]bool{}
	for step := 0; step < 20000; step++ {
		l := mem.Line(rng.Intn(512) * mem.LineBytes)
		switch rng.Intn(10) {
		case 0:
			s.Reset()
			ref = map[mem.Line]bool{}
		case 1, 2, 3, 4:
			added := s.Add(l)
			if added == ref[l] {
				t.Fatalf("step %d: Add(%v) = %v with ref membership %v", step, l, added, ref[l])
			}
			ref[l] = true
		default:
			if got := s.Contains(l); got != ref[l] {
				t.Fatalf("step %d: Contains(%v) = %v, want %v", step, l, got, ref[l])
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(ref))
		}
	}
}

// TestLineSetInsertionOrder pins the deterministic iteration order the
// machine layer (and trace output) now relies on.
func TestLineSetInsertionOrder(t *testing.T) {
	var s lineSet
	want := []mem.Line{0x1c0, 0x40, 0x0, 0x8000, 0x40 /* dup */, 0x200}
	for _, l := range want {
		s.Add(l)
	}
	dedup := []mem.Line{0x1c0, 0x40, 0x0, 0x8000, 0x200}
	if len(s.lines) != len(dedup) {
		t.Fatalf("lines = %v, want %v", s.lines, dedup)
	}
	for i, l := range dedup {
		if s.lines[i] != l {
			t.Fatalf("lines[%d] = %v, want %v", i, s.lines[i], l)
		}
	}
}

// TestLineSetSteadyStateAllocFree: after the first growth, repeated
// fill/reset cycles allocate nothing — the property Begin/FinishAbort rely
// on across transaction retries.
func TestLineSetSteadyStateAllocFree(t *testing.T) {
	var s lineSet
	fill := func() {
		for i := 0; i < 64; i++ {
			s.Add(mem.Line(i * mem.LineBytes))
		}
		s.Reset()
	}
	fill() // warm up capacity
	if allocs := testing.AllocsPerRun(100, fill); allocs != 0 {
		t.Fatalf("steady-state fill/reset allocated %.1f objects, want 0", allocs)
	}
}
