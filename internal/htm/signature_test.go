package htm

import (
	"testing"
	"testing/quick"
)

func TestSignatureNoFalseNegatives(t *testing.T) {
	// The load-bearing property: a signature may over-report but must never
	// miss an inserted line. Checked over random insert sets.
	f := func(lines []uint16) bool {
		s := NewSignature(256)
		for _, raw := range lines {
			l := line(int(raw))
			s.InsertRead(l)
			s.InsertWrite(l)
		}
		for _, raw := range lines {
			l := line(int(raw))
			if !s.TestRead(l) || !s.TestWrite(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureEmptyMatchesNothing(t *testing.T) {
	s := NewSignature(128)
	for i := 0; i < 100; i++ {
		if s.TestRead(line(i)) || s.TestWrite(line(i)) {
			t.Fatalf("empty signature matched line %d", i)
		}
	}
}

func TestSignatureReadWriteIndependent(t *testing.T) {
	s := NewSignature(1024)
	s.InsertRead(line(1))
	if s.TestWrite(line(1)) {
		t.Fatal("read insert leaked into write filter")
	}
	s.InsertWrite(line(2))
	if s.TestRead(line(2)) {
		t.Fatal("write insert leaked into read filter")
	}
}

func TestSignatureClear(t *testing.T) {
	s := NewSignature(128)
	s.InsertRead(line(5))
	s.InsertWrite(line(6))
	s.Clear()
	if s.TestRead(line(5)) || s.TestWrite(line(6)) {
		t.Fatal("Clear left bits set")
	}
	r, w := s.PopCount()
	if r != 0 || w != 0 {
		t.Fatalf("PopCount after Clear = %d/%d", r, w)
	}
}

func TestSignatureFalsePositiveRateReasonable(t *testing.T) {
	// With 2 hash functions, 64 inserts into 2048 bits should stay well
	// under a 10% false-positive rate.
	s := NewSignature(2048)
	for i := 0; i < 64; i++ {
		s.InsertRead(line(i))
	}
	fp := 0
	const probes = 2000
	for i := 100; i < 100+probes; i++ {
		if s.TestRead(line(i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.10 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestSignatureSizeRounding(t *testing.T) {
	s := NewSignature(100)
	if s.Bits() != 128 {
		t.Fatalf("Bits = %d, want 128 (rounded to word)", s.Bits())
	}
}

func TestSignaturePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSignature(0) did not panic")
		}
	}()
	NewSignature(0)
}

func TestTxWithSignaturesConservative(t *testing.T) {
	tx := NewTx(0)
	tx.UseSignatures(512)
	tx.Begin(1, 10, false)
	tx.RecordRead(line(1))
	tx.RecordWrite(line(2), line(2).Word(0), 0)
	// Signatures must cover the exact sets.
	if !tx.InReadSet(line(1)) || !tx.InWriteSet(line(2)) {
		t.Fatal("signature missed an inserted line")
	}
	if !tx.ConflictsWith(line(1), true) {
		t.Fatal("signature-backed conflict check missed a real conflict")
	}
}

func TestPopcount(t *testing.T) {
	for _, c := range []struct {
		x    uint64
		want int
	}{{0, 0}, {1, 1}, {3, 2}, {^uint64(0), 64}, {0x8000000000000001, 2}} {
		if got := popcount(c.x); got != c.want {
			t.Errorf("popcount(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}
