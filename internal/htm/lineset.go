package htm

import "repro/internal/mem"

// lineSet is an exact set of cache lines built for the transaction hot
// path: membership tests and inserts without per-transaction heap
// allocation. It pairs an insertion-ordered slice (deterministic iteration,
// O(1) size) with a small open-addressed index keyed by the line address,
// and Reset reuses both between transaction attempts instead of
// re-make-ing maps — the software analogue of the fixed read/write-set
// structures bounded HTM designs use in hardware.
type lineSet struct {
	lines []mem.Line // insertion order; iterate this
	tab   []int32    // open addressing: index into lines, +1 encoded; 0 = empty
	mask  uint32
}

// hashLine mixes a line address (low 6 offset bits are always zero) into a
// table slot. Fibonacci hashing on the line number spreads the arithmetic
// strides workload generators produce.
func hashLine(l mem.Line) uint32 {
	x := uint64(l) >> 6
	x *= 0x9E3779B97F4A7C15
	return uint32(x >> 32)
}

const lineSetMinTab = 16

// grow (re)builds the index at the given power-of-two size and rehashes the
// current members.
func (s *lineSet) grow(size int) {
	if cap(s.tab) >= size {
		s.tab = s.tab[:size]
		for i := range s.tab {
			s.tab[i] = 0
		}
	} else {
		s.tab = make([]int32, size)
	}
	s.mask = uint32(size - 1)
	for i, l := range s.lines {
		s.place(l, int32(i+1))
	}
}

// place inserts an encoded index for l into the first free probe slot.
func (s *lineSet) place(l mem.Line, enc int32) {
	i := hashLine(l) & s.mask
	for s.tab[i] != 0 {
		i = (i + 1) & s.mask
	}
	s.tab[i] = enc
}

// Add inserts l and reports whether it was newly added.
func (s *lineSet) Add(l mem.Line) bool {
	if s.tab == nil {
		s.grow(lineSetMinTab)
	}
	i := hashLine(l) & s.mask
	for {
		v := s.tab[i]
		if v == 0 {
			break
		}
		if s.lines[v-1] == l {
			return false
		}
		i = (i + 1) & s.mask
	}
	s.lines = append(s.lines, l)
	// Keep load factor under 1/2 so probes stay short.
	if 2*len(s.lines) >= len(s.tab) {
		s.grow(2 * len(s.tab))
	} else {
		s.tab[i] = int32(len(s.lines))
	}
	return true
}

// Contains reports membership of l.
func (s *lineSet) Contains(l mem.Line) bool {
	if len(s.lines) == 0 {
		return false
	}
	i := hashLine(l) & s.mask
	for {
		v := s.tab[i]
		if v == 0 {
			return false
		}
		if s.lines[v-1] == l {
			return true
		}
		i = (i + 1) & s.mask
	}
}

// Len returns the number of members.
func (s *lineSet) Len() int { return len(s.lines) }

// Reset empties the set, keeping both backing arrays for reuse.
func (s *lineSet) Reset() {
	s.lines = s.lines[:0]
	for i := range s.tab {
		s.tab[i] = 0
	}
}
