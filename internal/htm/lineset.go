package htm

import "repro/internal/mem"

// lineSet is an exact set of cache lines built for the transaction hot
// path: membership tests and inserts without hashing or per-transaction
// heap allocation. It pairs an insertion-ordered slice (deterministic
// iteration, O(1) size) with a membership bitmap indexed by the machine's
// dense LineID, so Add/Contains are a shift, a mask, and one word load —
// the software analogue of the fixed read/write-set structures bounded HTM
// designs use in hardware. Reset clears only the member bits (cost
// proportional to the set size, not the bitmap), keeping every backing
// array for reuse between attempts.
type lineSet struct {
	lines []mem.Line   // insertion order; iterate this
	ids   []mem.LineID // parallel to lines: each member's interned ID
	bits  []uint64     // membership bitmap, bit id set when id is a member
}

// ensureBits extends the bitmap to cover id. The bitmap only ever grows
// (Reset clears bits without truncating), so extension is always into
// zeroed memory.
func (s *lineSet) ensureBits(id mem.LineID) {
	w := int(uint32(id) >> 6)
	if w < len(s.bits) {
		return
	}
	n := w + 1
	if n < 4 {
		n = 4
	}
	if n <= cap(s.bits) {
		s.bits = s.bits[:n]
		return
	}
	nb := make([]uint64, n, 2*n)
	copy(nb, s.bits)
	s.bits = nb
}

// AddID inserts l (whose interned ID is id, which must be nonzero) and
// reports whether it was newly added.
//
//puno:hot
func (s *lineSet) AddID(l mem.Line, id mem.LineID) bool {
	s.ensureBits(id)
	w, b := int(uint32(id)>>6), uint64(1)<<(uint32(id)&63)
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	s.lines = append(s.lines, l)
	s.ids = append(s.ids, id)
	return true
}

// ContainsID reports membership of the line with interned ID id. The zero
// (unknown) ID is never a member: IDs start at 1, and the only line whose
// low bits alias bit 0 of a word is id 64, which lands in word 1.
//
//puno:hot
func (s *lineSet) ContainsID(id mem.LineID) bool {
	w := int(uint32(id) >> 6)
	return w < len(s.bits) && s.bits[w]&(1<<(uint32(id)&63)) != 0
}

// Len returns the number of members.
func (s *lineSet) Len() int { return len(s.lines) }

// Reset empties the set, keeping all backing arrays for reuse. Only the
// members' bits are cleared, so the cost tracks the set size.
func (s *lineSet) Reset() {
	for _, id := range s.ids {
		s.bits[uint32(id)>>6] &^= 1 << (uint32(id) & 63)
	}
	s.lines = s.lines[:0]
	s.ids = s.ids[:0]
}
