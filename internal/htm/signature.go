package htm

import "repro/internal/mem"

// Signature is a pair of Bloom filters summarizing a transaction's read and
// write sets, as in LogTM-SE. Conflict checks against a signature can
// return false positives (spurious conflicts) but never false negatives,
// which preserves correctness while decoupling conflict detection from
// cache residency. The simulator offers signatures as an ablation backend.
type Signature struct {
	bits  int
	read  []uint64
	write []uint64
}

// NewSignature returns a signature with the given number of filter bits per
// set (rounded up to a multiple of 64). bits must be positive.
func NewSignature(bits int) *Signature {
	if bits <= 0 {
		panic("htm: non-positive signature size")
	}
	words := (bits + 63) / 64
	return &Signature{
		bits:  words * 64,
		read:  make([]uint64, words),
		write: make([]uint64, words),
	}
}

// roundSignatureBits returns the effective filter size NewSignature(bits)
// would report — the reuse check for recycled signatures.
func roundSignatureBits(bits int) int { return (bits + 63) / 64 * 64 }

// Bits returns the filter size in bits.
func (s *Signature) Bits() int { return s.bits }

// Two independent hash functions (H3-class XOR hashing is typical in
// hardware; here a multiplicative mix achieves the same distribution).
func (s *Signature) hash1(l mem.Line) int {
	x := uint64(l) >> 6
	x *= 0x9E3779B97F4A7C15
	x ^= x >> 29
	return int(x % uint64(s.bits))
}

func (s *Signature) hash2(l mem.Line) int {
	x := uint64(l) >> 6
	x *= 0xC2B2AE3D27D4EB4F
	x ^= x >> 31
	return int(x % uint64(s.bits))
}

func setBit(w []uint64, i int)       { w[i/64] |= 1 << (i % 64) }
func testBit(w []uint64, i int) bool { return w[i/64]&(1<<(i%64)) != 0 }

// InsertRead adds l to the read filter.
func (s *Signature) InsertRead(l mem.Line) {
	setBit(s.read, s.hash1(l))
	setBit(s.read, s.hash2(l))
}

// InsertWrite adds l to the write filter.
func (s *Signature) InsertWrite(l mem.Line) {
	setBit(s.write, s.hash1(l))
	setBit(s.write, s.hash2(l))
}

// TestRead reports possible membership of l in the read set.
func (s *Signature) TestRead(l mem.Line) bool {
	return testBit(s.read, s.hash1(l)) && testBit(s.read, s.hash2(l))
}

// TestWrite reports possible membership of l in the write set.
func (s *Signature) TestWrite(l mem.Line) bool {
	return testBit(s.write, s.hash1(l)) && testBit(s.write, s.hash2(l))
}

// Clear empties both filters.
func (s *Signature) Clear() {
	clear(s.read)
	clear(s.write)
}

// PopCount returns the number of set bits in the read and write filters,
// a cheap occupancy measure used by tests and the ablation bench.
func (s *Signature) PopCount() (readBits, writeBits int) {
	for _, w := range s.read {
		readBits += popcount(w)
	}
	for _, w := range s.write {
		writeBits += popcount(w)
	}
	return
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
