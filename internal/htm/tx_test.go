package htm

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func line(i int) mem.Line { return mem.Line(uint64(i) * mem.LineBytes) }

func TestOlderTotalOrder(t *testing.T) {
	if !Older(5, 0, 10, 1) {
		t.Fatal("older timestamp lost")
	}
	if Older(10, 0, 5, 1) {
		t.Fatal("younger timestamp won")
	}
	// Tie: lower node wins.
	if !Older(7, 2, 7, 3) || Older(7, 3, 7, 2) {
		t.Fatal("tie-break by node id wrong")
	}
}

func TestNoPriorityAlwaysLoses(t *testing.T) {
	if Older(NoPriority, 0, 100, 1) {
		t.Fatal("NoPriority won against a transaction")
	}
	if !Older(100, 1, NoPriority, 0) {
		t.Fatal("transaction lost against NoPriority")
	}
}

func TestTxLifecycle(t *testing.T) {
	tx := NewTx(3)
	if tx.Status != StatusIdle {
		t.Fatal("new tx not idle")
	}
	tx.Begin(1, 100, false)
	if !tx.Running() || tx.Prio != 100 || tx.Attempts != 1 {
		t.Fatalf("after Begin: %+v", tx)
	}
	cost := tx.Commit(DefaultCosts())
	if cost != DefaultCosts().CommitCycles || tx.Status != StatusCommitted {
		t.Fatalf("commit cost=%d status=%v", cost, tx.Status)
	}
	tx.Reset()
	if tx.Status != StatusIdle {
		t.Fatal("Reset did not return to idle")
	}
}

func TestRetryKeepsPriority(t *testing.T) {
	tx := NewTx(0)
	tx.Begin(1, 100, false)
	tx.StartAbort(DefaultCosts(), false)
	tx.FinishAbort()
	tx.Begin(1, 500, true)
	if tx.Prio != 100 {
		t.Fatalf("retry priority = %d, want 100 (retained)", tx.Prio)
	}
	if tx.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", tx.Attempts)
	}
}

func TestFreshBeginResetsPriority(t *testing.T) {
	tx := NewTx(0)
	tx.Begin(1, 100, false)
	tx.Commit(DefaultCosts())
	tx.Reset()
	tx.Begin(2, 900, false)
	if tx.Prio != 900 || tx.Attempts != 1 {
		t.Fatalf("fresh begin prio=%d attempts=%d", tx.Prio, tx.Attempts)
	}
}

func TestSetsAndConflicts(t *testing.T) {
	tx := NewTx(0)
	tx.Begin(1, 10, false)
	tx.RecordRead(line(1))
	tx.RecordWrite(line(2), line(2).Word(0), 7)

	if !tx.InReadSet(line(1)) || tx.InReadSet(line(2)) {
		t.Fatal("read-set membership wrong")
	}
	if !tx.InWriteSet(line(2)) || tx.InWriteSet(line(1)) {
		t.Fatal("write-set membership wrong")
	}
	// Write request conflicts with read or write set.
	if !tx.ConflictsWith(line(1), true) || !tx.ConflictsWith(line(2), true) {
		t.Fatal("write request should conflict with both sets")
	}
	// Read request conflicts only with write set.
	if tx.ConflictsWith(line(1), false) {
		t.Fatal("read-read flagged as conflict")
	}
	if !tx.ConflictsWith(line(2), false) {
		t.Fatal("read-write not flagged")
	}
	// Unrelated line: no conflict.
	if tx.ConflictsWith(line(9), true) {
		t.Fatal("phantom conflict")
	}
}

func TestNoConflictWhenIdle(t *testing.T) {
	tx := NewTx(0)
	if tx.ConflictsWith(line(1), true) {
		t.Fatal("idle tx reported conflict")
	}
}

func TestUndoNewestFirst(t *testing.T) {
	tx := NewTx(0)
	tx.Begin(1, 10, false)
	a := line(1).Word(0)
	tx.RecordWrite(line(1), a, 100) // old value 100
	tx.RecordWrite(line(1), a, 200) // overwritten again; old now 200
	undo := tx.Undo()
	if len(undo) != 2 {
		t.Fatalf("undo length %d, want 2", len(undo))
	}
	// Applying newest-first restores 200 then 100, ending at 100.
	if undo[0].Old != 200 || undo[1].Old != 100 {
		t.Fatalf("undo order wrong: %+v", undo)
	}
}

func TestAbortLatencyScalesWithLog(t *testing.T) {
	c := DefaultCosts()
	tx := NewTx(0)
	tx.Begin(1, 10, false)
	short := tx.StartAbort(c, false)
	tx.FinishAbort()

	tx.Begin(1, 20, true)
	for i := 0; i < 10; i++ {
		tx.RecordWrite(line(i), line(i).Word(0), 0)
	}
	long := tx.StartAbort(c, false)
	if long != short+10*c.AbortPerEntry {
		t.Fatalf("abort latency %d, want %d", long, short+10*c.AbortPerEntry)
	}
	tx.FinishAbort()
}

func TestOverflowPenalty(t *testing.T) {
	c := DefaultCosts()
	tx := NewTx(0)
	tx.Begin(1, 10, false)
	base := tx.StartAbort(c, true)
	if base != c.AbortFixed+c.OverflowCycles {
		t.Fatalf("overflow abort latency %d", base)
	}
	tx.FinishAbort()
}

func TestFinishAbortClearsSets(t *testing.T) {
	tx := NewTx(0)
	tx.Begin(1, 10, false)
	tx.RecordRead(line(1))
	tx.RecordWrite(line(2), line(2).Word(0), 0)
	tx.StartAbort(DefaultCosts(), false)
	tx.FinishAbort()
	if tx.InReadSet(line(1)) || tx.InWriteSet(line(2)) {
		t.Fatal("sets survive abort")
	}
	if tx.ReadSetSize() != 0 || tx.WriteSetSize() != 0 || tx.LogEntries() != 0 {
		t.Fatal("counters nonzero after abort")
	}
}

func TestForEachSetLine(t *testing.T) {
	tx := NewTx(0)
	tx.Begin(1, 10, false)
	tx.RecordRead(line(1))
	tx.RecordRead(line(2))
	tx.RecordWrite(line(2), line(2).Word(0), 0) // read+write line
	tx.RecordWrite(line(3), line(3).Word(0), 0)
	seen := map[mem.Line]bool{}
	writes := 0
	tx.ForEachSetLine(func(l mem.Line, w bool) {
		if seen[l] {
			t.Fatalf("line %v visited twice", l)
		}
		seen[l] = true
		if w {
			writes++
		}
	})
	if len(seen) != 3 || writes != 2 {
		t.Fatalf("visited %d lines (%d writes), want 3 (2)", len(seen), writes)
	}
}

func TestMisuseaPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Tx)
	}{
		{"BeginWhileRunning", func(tx *Tx) { tx.Begin(1, 5, false); tx.Begin(2, 6, false) }},
		{"RecordReadIdle", func(tx *Tx) { tx.RecordRead(line(1)) }},
		{"RecordWriteIdle", func(tx *Tx) { tx.RecordWrite(line(1), line(1).Word(0), 0) }},
		{"CommitIdle", func(tx *Tx) { tx.Commit(DefaultCosts()) }},
		{"FinishAbortIdle", func(tx *Tx) { tx.FinishAbort() }},
		{"ResetWhileRunning", func(tx *Tx) { tx.Begin(1, 5, false); tx.Reset() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.fn(NewTx(0))
		})
	}
}

// Property: exact-set conflict detection agrees with a reference model.
func TestConflictMatchesReference(t *testing.T) {
	f := func(reads, writes []uint8, probe uint8, isWrite bool) bool {
		tx := NewTx(0)
		tx.Begin(1, 1, false)
		ref := map[mem.Line]struct{ r, w bool }{}
		for _, r := range reads {
			l := line(int(r) % 64)
			tx.RecordRead(l)
			e := ref[l]
			e.r = true
			ref[l] = e
		}
		for _, w := range writes {
			l := line(int(w) % 64)
			tx.RecordWrite(l, l.Word(0), 0)
			e := ref[l]
			e.w = true
			ref[l] = e
		}
		pl := line(int(probe) % 64)
		e := ref[pl]
		var want bool
		if isWrite {
			want = e.r || e.w
		} else {
			want = e.w
		}
		return tx.ConflictsWith(pl, isWrite) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusIdle: "idle", StatusRunning: "running", StatusAborting: "aborting",
		StatusCommitted: "committed", StatusAborted: "aborted",
	} {
		if s.String() != want {
			t.Errorf("Status %d = %q, want %q", s, s.String(), want)
		}
	}
}
