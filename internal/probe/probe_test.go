package probe

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindSend: "send", KindTxBegin: "tx-begin", KindTxCommit: "tx-commit",
		KindTxAbort: "tx-abort", KindConflict: "conflict",
		KindDirUnicast: "dir-unicast", KindDirMulticast: "dir-multicast",
		KindDirBusyNack: "dir-busy-nack",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(0).String() != "kind-?" || KindMax.String() != "kind-?" {
		t.Errorf("invalid kinds should render as kind-?: got %q, %q", Kind(0).String(), KindMax.String())
	}
	// Every valid kind must have a distinct name (decoder diagnostics rely
	// on the vocabulary being unambiguous).
	seen := map[string]Kind{}
	for k := KindSend; k < KindMax; k++ {
		s := k.String()
		if s == "kind-?" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
}

func TestBuffer(t *testing.T) {
	var b Buffer
	if b.Len() != 0 {
		t.Fatalf("fresh buffer Len = %d", b.Len())
	}
	e1 := Event{Cycle: 10, Kind: KindSend, Node: 3, Line: 7, Arg: 42}
	e2 := Event{Cycle: 11, Kind: KindTxBegin, Node: 4}
	b.Emit(e1)
	b.Emit(e2)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	evs := b.Events()
	if evs[0] != e1 || evs[1] != e2 {
		t.Fatalf("Events() = %+v, want [%+v %+v]", evs, e1, e2)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.Emit(e2)
	if got := b.Events()[0]; got != e2 {
		t.Fatalf("Emit after Reset = %+v, want %+v", got, e2)
	}
}

func TestPackSendRoundTrip(t *testing.T) {
	cases := []struct {
		msgType  uint8
		dst, req int
		reqID    uint64
	}{
		{0, 0, 0, 0},
		{14, 63, 63, 0xFFFF_FFFF},
		{1, 15, 0, 12345},
	}
	for _, c := range cases {
		mt, dst, req, id := UnpackSend(PackSend(c.msgType, c.dst, c.req, c.reqID))
		if mt != c.msgType || dst != c.dst || req != c.req || id != c.reqID {
			t.Errorf("PackSend%v round-tripped to (%d,%d,%d,%d)", c, mt, dst, req, id)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		c := struct {
			mt       uint8
			dst, req int
			id       uint64
		}{uint8(rng.Intn(256)), rng.Intn(64), rng.Intn(64), uint64(rng.Int63()) & 0xFFFF_FFFF}
		mt, dst, req, id := UnpackSend(PackSend(c.mt, c.dst, c.req, c.id))
		if mt != c.mt || dst != c.dst || req != c.req || id != c.id {
			t.Fatalf("PackSend%v round-tripped to (%d,%d,%d,%d)", c, mt, dst, req, id)
		}
	}
}

func TestPackTxRoundTrip(t *testing.T) {
	cases := []struct {
		staticID, attempt int
		flag              bool
	}{
		{0, 0, false},
		{0, 0, true},
		{1, 1, false},
		{1 << 31, 0x7FFF_FFFF, true}, // attempt saturates at 31 bits
		{42, 17, true},
	}
	for _, c := range cases {
		id, at, fl := UnpackTx(PackTx(c.staticID, c.attempt, c.flag))
		wantID := int(uint32(c.staticID))
		wantAt := c.attempt & 0x7FFF_FFFF
		if id != wantID || at != wantAt || fl != c.flag {
			t.Errorf("PackTx%v round-tripped to (%d,%d,%v), want (%d,%d,%v)",
				c, id, at, fl, wantID, wantAt, c.flag)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		staticID, attempt, flag := rng.Intn(1<<31), rng.Intn(1<<31), rng.Intn(2) == 0
		id, at, fl := UnpackTx(PackTx(staticID, attempt, flag))
		if id != staticID || at != attempt || fl != flag {
			t.Fatalf("PackTx(%d,%d,%v) round-tripped to (%d,%d,%v)", staticID, attempt, flag, id, at, fl)
		}
	}
}

func TestPackDirRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		n, req, id := rng.Intn(64), rng.Intn(64), uint64(rng.Int63())&0xFFFF_FFFF
		gn, greq, gid := UnpackDir(PackDir(n, req, id))
		if gn != n || greq != req || gid != id {
			t.Fatalf("PackDir(%d,%d,%d) round-tripped to (%d,%d,%d)", n, req, id, gn, greq, gid)
		}
	}
}

// The flag bit must never leak into the attempt field or vice versa: the
// differ renders both, and a cross-talking bit would misdiagnose an
// overflow abort as a different attempt number.
func TestPackTxFieldIsolation(t *testing.T) {
	withFlag := PackTx(7, 9, true)
	without := PackTx(7, 9, false)
	if withFlag == without {
		t.Fatal("flag bit not encoded")
	}
	if withFlag^without != 1<<63 {
		t.Fatalf("flag flips more than bit 63: %#x", withFlag^without)
	}
}

func TestEventIsComparable(t *testing.T) {
	a := Event{Cycle: sim.Time(5), Arg: 9, Line: mem.LineID(2), Node: 1, Kind: KindConflict}
	b := a
	if a != b {
		t.Fatal("identical events compare unequal")
	}
	b.Arg++
	if a == b {
		t.Fatal("different events compare equal")
	}
}
