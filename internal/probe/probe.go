// Package probe is the event-level observability layer of the simulator:
// a compact event record, the Sink interface the simulation layers emit
// into, and an in-memory Buffer sink. The hooks live in internal/machine
// (every coherence message put on the mesh), internal/htm (transaction
// begin/commit/abort and conflict detection), and internal/coherence (the
// directory's forwarding decisions); all of them are behind a nil check,
// so a machine built without a sink pays one predictable branch per
// potential event and nothing else.
//
// probe sits below every simulation package (it imports only mem and sim),
// which is what lets machine, coherence, and htm all emit into one stream
// without an import cycle. The binary on-disk encoding, the
// first-divergence differ, and replay-from-prefix live one level up in
// internal/trace.
//
// Events are values (no pointers), Emit takes the event by value, and
// Buffer appends into a retained slice, so tracing a steady-state run
// allocates only when the buffer grows — the property that makes it cheap
// enough to leave on during sweeps.
package probe

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// Kind discriminates event records. The zero Kind is invalid, so a
// zero-valued Event can never be mistaken for a real one.
type Kind uint8

// Event kinds, ordered roughly by layer: protocol traffic, transaction
// lifecycle, conflict detection, directory decisions.
const (
	// KindSend is one coherence message entering the mesh. Node is the
	// sender; Arg packs (msg type, destination, requester, request id) —
	// see PackSend/UnpackSend.
	KindSend Kind = iota + 1
	// KindTxBegin is a transaction attempt starting. Arg packs
	// (static id, attempt number).
	KindTxBegin
	// KindTxCommit is a transaction attempt committing. Arg packs
	// (static id, attempt number).
	KindTxCommit
	// KindTxAbort is a transaction attempt starting its rollback. Arg
	// packs (static id, attempt number) plus the overflow bit.
	KindTxAbort
	// KindConflict is the HTM conflict detector matching an incoming
	// request against a live transaction's sets. Node is the defender;
	// Line is the contended line; Arg packs (static id, isWrite).
	KindConflict
	// KindDirUnicast is the PUNO directory servicing a transactional GETX
	// by predictive unicast. Node is the home directory; Arg packs
	// (predicted destination, requester).
	KindDirUnicast
	// KindDirMulticast is the directory multicasting invalidations to the
	// sharer set. Node is the home directory; Arg packs (target count,
	// requester).
	KindDirMulticast
	// KindDirBusyNack is the directory rejecting a request because the
	// line's entry is busy. Node is the home directory; Arg packs
	// (0, requester) plus the request id.
	KindDirBusyNack

	// KindMax is one past the largest valid kind (decoder validation).
	KindMax
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindTxBegin:
		return "tx-begin"
	case KindTxCommit:
		return "tx-commit"
	case KindTxAbort:
		return "tx-abort"
	case KindConflict:
		return "conflict"
	case KindDirUnicast:
		return "dir-unicast"
	case KindDirMulticast:
		return "dir-multicast"
	case KindDirBusyNack:
		return "dir-busy-nack"
	default:
		return "kind-?"
	}
}

// Event is one observed simulation event. Events are comparable (==), which
// is what the first-divergence differ relies on; every field is a value.
// Arg is a Kind-specific packed payload — use the Pack/Unpack helpers.
type Event struct {
	Cycle sim.Time
	Arg   uint64
	Line  mem.LineID // 0 when the event has no line
	Node  int16      // the acting node (sender, defender, or home directory)
	Kind  Kind
}

// Sink receives events as the simulation emits them. Emit takes the event
// by value (no boxing, no allocation at the call site) and must not retain
// references into the caller. Implementations are used from a single
// simulation goroutine and need no locking.
type Sink interface {
	Emit(e Event)
}

// Buffer is the standard in-memory sink: an append-only event log whose
// backing array is retained across Reset, so one buffer serves a whole
// sweep's worth of runs without re-allocating.
type Buffer struct {
	evs []Event
}

// Emit implements Sink.
func (b *Buffer) Emit(e Event) { b.evs = append(b.evs, e) }

// Events returns the recorded events. The slice aliases the buffer's
// storage: copy it before the next Reset/Emit if it must survive.
func (b *Buffer) Events() []Event { return b.evs }

// Len returns the number of recorded events.
func (b *Buffer) Len() int { return len(b.evs) }

// Reset empties the buffer, retaining capacity.
func (b *Buffer) Reset() { b.evs = b.evs[:0] }

// ---- Arg packing --------------------------------------------------------
//
// Arg layouts keep every field at a fixed shift so the differ can render
// both sides of a divergence without type switches. Node indices fit 8 bits
// (IDs 0-255, matching the directory's 256-node sharer-set ceiling); request
// ids keep their low 32 bits, which is plenty to disambiguate within any
// window a human inspects.

// PackSend packs a KindSend payload.
func PackSend(msgType uint8, dst, requester int, reqID uint64) uint64 {
	return uint64(msgType) | uint64(uint8(dst))<<8 | uint64(uint8(requester))<<16 |
		(reqID&0xFFFF_FFFF)<<32
}

// UnpackSend unpacks a KindSend payload.
func UnpackSend(arg uint64) (msgType uint8, dst, requester int, reqID uint64) {
	return uint8(arg), int(uint8(arg >> 8)), int(uint8(arg >> 16)), arg >> 32
}

// PackTx packs a transaction-lifecycle payload (KindTxBegin, KindTxCommit,
// KindTxAbort, KindConflict). overflow is only meaningful for KindTxAbort;
// isWrite only for KindConflict — they share a flag bit.
func PackTx(staticID, attempt int, flag bool) uint64 {
	v := uint64(uint32(staticID)) | uint64(uint32(attempt))<<32&^(1<<63)
	if flag {
		v |= 1 << 63
	}
	return v
}

// UnpackTx unpacks a transaction-lifecycle payload.
func UnpackTx(arg uint64) (staticID, attempt int, flag bool) {
	return int(uint32(arg)), int(uint32(arg>>32) & 0x7FFF_FFFF), arg>>63 != 0
}

// PackDir packs a directory-decision payload (KindDirUnicast,
// KindDirMulticast, KindDirBusyNack). n is the predicted destination
// (unicast), the target count (multicast), or 0 (busy-nack).
func PackDir(n, requester int, reqID uint64) uint64 {
	return uint64(uint8(n)) | uint64(uint8(requester))<<8 | (reqID&0xFFFF_FFFF)<<32
}

// UnpackDir unpacks a directory-decision payload.
func UnpackDir(arg uint64) (n, requester int, reqID uint64) {
	return int(uint8(arg)), int(uint8(arg >> 8)), arg >> 32
}
