package puno

// The determinism harness: the package-level guarantee is that a run is a
// pure function of (Config, Workload) — bit-identical across repetitions
// and across serial/parallel execution — and these tests are what certify
// it. Golden files under testdata/ additionally pin the rendered output so
// an accidental change to either the simulation or the report layer shows
// up as a diff; refresh them with `go test -run Golden -update` after an
// intentional change.

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// detWorkloads is the two-workload set used throughout: one RMW-heavy
// low-contention profile and one high-contention profile.
func detWorkloads() []*Profile {
	return []*Profile{
		MustWorkload("kmeans").WithTxPerCPU(6),
		MustWorkload("intruder").WithTxPerCPU(4),
	}
}

// detSchemes is three schemes including the baseline every figure
// normalizes against.
func detSchemes() []Scheme { return []Scheme{SchemeBaseline, SchemeBackoff, SchemePUNO} }

func detConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = 42
	return cfg
}

// renderAll flattens a sweep's full rendered output into one string, so a
// single byte comparison covers every table the figure drivers produce.
func renderAll(t *testing.T, s *Sweep) string {
	t.Helper()
	var b strings.Builder
	for _, render := range []func() (*Table, error){
		s.Table1, s.Fig2, s.Fig10, s.Fig11, s.Fig12, s.Fig13, s.Fig14,
	} {
		tbl, err := render()
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(tbl.String())
		b.WriteString(tbl.CSV())
		b.WriteByte('\n')
	}
	fig3, err := s.Fig3All()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(fig3)
	return b.String()
}

// TestRunTwiceBitIdentical runs the same Config+Profile twice and asserts
// the full Result structs are identical, field for field.
func TestRunTwiceBitIdentical(t *testing.T) {
	cfg := detConfig()
	cfg.Scheme = SchemePUNO
	wl := MustWorkload("intruder").WithTxPerCPU(5)
	a, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same Config+Profile produced different Results:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestSerialParallelByteIdentical is the guard on the parallel runner: the
// sweep fanned across 8 workers must produce exactly the Results and
// rendered tables the serial loop produces, for two workloads x three
// schemes.
func TestSerialParallelByteIdentical(t *testing.T) {
	ctx := context.Background()
	serial, err := RunSweepCtx(ctx, detConfig(), detWorkloads(), detSchemes(), SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweepCtx(ctx, detConfig(), detWorkloads(), detSchemes(), SweepOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}

	for _, wl := range detWorkloads() {
		for _, sch := range detSchemes() {
			a := serial.Results[wl.Name()][sch]
			b := parallel.Results[wl.Name()][sch]
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%v: serial and parallel Results differ:\nserial:   %+v\nparallel: %+v",
					wl.Name(), sch, a, b)
			}
		}
	}

	sOut, pOut := renderAll(t, serial), renderAll(t, parallel)
	if sOut != pOut {
		t.Fatalf("rendered output differs between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s",
			sOut, pOut)
	}
}

// TestEnsembleDeterministicAcrossParallelism repeats the guarantee for the
// multi-seed ensemble path.
func TestEnsembleDeterministicAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	seeds := []uint64{1, 2, 3}
	wls := []*Profile{MustWorkload("kmeans").WithTxPerCPU(4)}
	schemes := []Scheme{SchemeBaseline, SchemePUNO}

	a, err := RunEnsemble(ctx, detConfig(), wls, schemes, seeds, SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEnsemble(ctx, detConfig(), wls, schemes, seeds, SweepOptions{Parallel: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Fatal("ensemble Results differ between serial and parallel execution")
	}

	stA, err := a.NormalizedMetric("kmeans", SchemePUNO, func(r *Result) float64 { return float64(r.Cycles) })
	if err != nil {
		t.Fatal(err)
	}
	stB, err := b.NormalizedMetric("kmeans", SchemePUNO, func(r *Result) float64 { return float64(r.Cycles) })
	if err != nil {
		t.Fatal(err)
	}
	if stA != stB {
		t.Fatalf("ensemble stats differ: %v vs %v", stA, stB)
	}
	if stA.N != len(seeds) {
		t.Fatalf("stat over %d seeds, want %d", stA.N, len(seeds))
	}
	// Different seeds genuinely differ (otherwise the stddev is vacuous).
	runs := a.Runs["kmeans"][SchemePUNO]
	if runs[0].Cycles == runs[1].Cycles && runs[1].Cycles == runs[2].Cycles {
		t.Error("all seeds produced identical cycle counts; seed plumbing suspect")
	}
}

// TestGoldenSweepOutput pins the rendered sweep output byte-for-byte in
// testdata/sweep_golden.txt.
func TestGoldenSweepOutput(t *testing.T) {
	sweep, err := RunSweepCtx(context.Background(), detConfig(), detWorkloads(), detSchemes(),
		SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "sweep_golden.txt", renderAll(t, sweep))
}

// TestGoldenEnsembleOutput pins the ensemble mean±stddev table in
// testdata/ensemble_golden.txt.
func TestGoldenEnsembleOutput(t *testing.T) {
	ens, err := RunEnsemble(context.Background(), detConfig(),
		[]*Profile{MustWorkload("kmeans").WithTxPerCPU(4)},
		[]Scheme{SchemeBaseline, SchemePUNO}, []uint64{1, 2, 3}, SweepOptions{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := ens.MetricTable("normalized execution time", func(r *Result) float64 { return float64(r.Cycles) })
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "ensemble_golden.txt", tbl.String())
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -run Golden -update` to create it): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (run with -update after an intentional change):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
