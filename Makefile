GO ?= go
BENCH ?= BenchmarkSweepParallelism
BENCH_COUNT ?= 8

.PHONY: all test lint race race-shards cover cover-update bench bench-pdes bench-serve bench-baseline bench-compare bench-snapshot bench-snapshot-pdes bench-snapshot-serve serve-smoke golden clean

all: test

# Tier-1 verification: vet + build + full test suite.
test:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Static analysis: stock go vet plus punovet, the project's own analyzers
# (maprange, wallclock, hotalloc, handlerfunc, msglife, shardconfine,
# probeguard) that mechanize the determinism and zero-allocation
# invariants, then the compiler-backed escape gate (-escape), which parses
# `go build -gcflags=-m=2` diagnostics and fails on any unblessed heap
# allocation inside a //puno:hot function. See DESIGN.md.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/punovet ./...
	$(GO) run ./cmd/punovet -escape ./...

# Race-detector pass over everything; certifies the parallel sweep runner.
race:
	$(GO) test -race ./...

# Race-detector pass over just the PDES determinism certification: the
# coordinator's bit-identity claim under racing shard workers. A named
# subset so CI keeps it even if the full race matrix is ever trimmed.
race-shards:
	$(GO) test -race -run 'Sharded' . ./internal/pdes
	# The coalesced-window path defers the commit barrier across send-free
	# windows; run it under the detector on its own so a -run reshuffle
	# above can't silently drop the one test that certifies the deferral.
	$(GO) test -race -run 'ShardedCoalescedWindows' -count 2 ./internal/pdes

# Per-package coverage audit: measure `go test -cover` for every internal
# package and gate it against the committed floors in COVERAGE.json. Any
# package dropping below its floor — or appearing without one — fails.
cover:
	$(GO) test -cover ./internal/... > cover.txt || { cat cover.txt; rm -f cover.txt; exit 1; }
	$(GO) run ./cmd/punocover -i cover.txt -thresholds COVERAGE.json
	@rm -f cover.txt

# Re-baseline the coverage floors to the current measured values (run after
# intentionally adding code whose tests land in the same change).
cover-update:
	$(GO) test -cover ./internal/... > cover.txt || { cat cover.txt; rm -f cover.txt; exit 1; }
	$(GO) run ./cmd/punocover -i cover.txt -thresholds COVERAGE.json -update
	@rm -f cover.txt

# Per-figure and substrate benchmarks (the parallel-vs-serial sweep speedup
# is BenchmarkSweepParallelism).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# The single-machine PDES pair (big-serial vs big-sharded) with allocation
# stats: the quick check that the sharded coordinator's wall-clock ratio
# and allocs/op haven't regressed. CI runs this in the bench smoke job;
# PDES_BENCHTIME keeps it a sub-second smoke there (raise for real
# measurements, or use bench-snapshot-pdes to record the committed pair).
PDES_BENCHTIME ?= 10x
bench-pdes:
	$(GO) test -run '^$$' -bench '$(BENCH)/big-' -benchmem -benchtime $(PDES_BENCHTIME) -count 1 .

# End-to-end punoserve smoke: boot the server on a free port, submit a job
# over HTTP, long-poll it to completion, fetch the artifact and check it is
# byte-identical to a direct in-process run of the same point, verify the
# resubmission is a cache hit (run counter stays at 1), then drain
# gracefully and check the profiles were flushed.
serve-smoke:
	$(GO) test -run 'ServeSmoke' -count 1 -v ./cmd/punoserve

# The punoserve serving-path triple (cold miss / warm cache hit / 64-way
# singleflight collapse) with allocation stats. SERVE_BENCHTIME keeps it a
# smoke in CI; use bench-snapshot-serve to record the committed numbers.
SERVE_BENCHTIME ?= 10x
bench-serve:
	$(GO) test -run '^$$' -bench 'Serve/' -benchmem -benchtime $(SERVE_BENCHTIME) -count 1 ./internal/serve

# Record the current hot-path performance as the comparison baseline.
# Run this on the commit you want to compare against, then make your
# change and run bench-compare.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) . | tee bench_base.txt

# Statistical before/after comparison of the hot-path benchmarks.
# Uses benchstat when installed (go install golang.org/x/perf/cmd/benchstat@latest);
# otherwise prints both raw runs side by side.
bench-compare:
	@test -f bench_base.txt || { echo "no bench_base.txt; run 'make bench-baseline' on the base commit first" >&2; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) . | tee bench_new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench_base.txt bench_new.txt; \
	else \
		echo "--- benchstat not installed; raw results ---"; \
		echo "== base =="; grep '^Benchmark' bench_base.txt; \
		echo "== new  =="; grep '^Benchmark' bench_new.txt; \
	fi

# Regenerate BENCH_sweep.json from a fresh multi-count run of the hot-path
# benchmark: the previous "current" entry is rotated into the baseline slot
# and the new numbers become current. Describe the change with NOTE=...
bench-snapshot:
	$(GO) test -run '^$$' -bench '$(BENCH)/serial$$' -benchmem -count $(BENCH_COUNT) . | tee bench_snapshot.txt
	$(GO) run ./cmd/benchsnap -in bench_snapshot.txt -out BENCH_sweep.json -note '$(NOTE)'

# Refresh the single-machine PDES pair (big-serial vs big-sharded, 64-node
# 8x8 config) in BENCH_sweep.json. Describe the run with NOTE=...
bench-snapshot-pdes:
	$(GO) test -run '^$$' -bench '$(BENCH)/big-' -benchmem -count $(BENCH_COUNT) . | tee bench_pdes.txt
	$(GO) run ./cmd/benchsnap -in bench_pdes.txt -out BENCH_sweep.json -pair -note '$(NOTE)'

# Refresh the serve section (cold/warm/singleflight, with the cold/warm
# speedup) in BENCH_sweep.json. Describe the run with NOTE=...
bench-snapshot-serve:
	$(GO) test -run '^$$' -bench 'Serve/' -benchmem -count $(BENCH_COUNT) ./internal/serve | tee bench_serve.txt
	$(GO) run ./cmd/benchsnap -in bench_serve.txt -out BENCH_sweep.json -serve -note '$(NOTE)'

# Regenerate the determinism golden files after an intentional change.
golden:
	$(GO) test -run Golden -update .

clean:
	$(GO) clean ./...
	rm -f bench_base.txt bench_new.txt bench_snapshot.txt bench_pdes.txt bench_serve.txt cover.txt
