GO ?= go

.PHONY: all test race bench golden clean

all: test

# Tier-1 verification: vet + build + full test suite.
test:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Race-detector pass over everything; certifies the parallel sweep runner.
race:
	$(GO) test -race ./...

# Per-figure and substrate benchmarks (the parallel-vs-serial sweep speedup
# is BenchmarkSweepParallelism).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate the determinism golden files after an intentional change.
golden:
	$(GO) test -run Golden -update .

clean:
	$(GO) clean ./...
