package puno

// Regression tests for the invariant punovet's msglife analyzer
// mechanizes: a pooled *coherence.Msg is freed the moment its handler
// returns, so parking the pointer — instead of a by-value copy — aliases
// the pool and is silently corrupted by later traffic. The first test
// reintroduces the bug shape behind a test hook (an Env whose pool
// recycles delivered messages, exactly the machine's contract) and shows
// the symptom the determinism harness would flag: the parked view of a
// message mutates between observations while a by-value copy stays put.
// The second proves msglife reports every variant of the shape.

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/lint"
	"repro/internal/mem"
	"repro/internal/sim"
)

// recycleEnv implements coherence.Env with a recycling message pool,
// mirroring internal/machine's dispatcher: NewMsg pops the free list
// without zeroing, Send stages the message in flight, and deliver returns
// it to the pool — after which any retained pointer aliases pool storage.
type recycleEnv struct {
	now    sim.Time
	pool   []*coherence.Msg
	inFlit []*coherence.Msg
}

func (e *recycleEnv) Now() sim.Time { return e.now }

func (e *recycleEnv) NewMsg() *coherence.Msg {
	if n := len(e.pool); n > 0 {
		m := e.pool[n-1]
		e.pool = e.pool[:n-1]
		return m
	}
	return new(coherence.Msg)
}

func (e *recycleEnv) Send(delay sim.Time, msg *coherence.Msg) {
	e.inFlit = append(e.inFlit, msg)
}

// deliver completes every in-flight message's handler: the messages return
// to the pool, and whatever parked their pointers is now aliasing it.
func (e *recycleEnv) deliver() {
	e.pool = append(e.pool, e.inFlit...)
	e.inFlit = e.inFlit[:0]
}

func (e *recycleEnv) Interner() *mem.Interner { return nil }

func (e *recycleEnv) LineData(l mem.Line, id mem.LineID) (mem.LineData, sim.Time) {
	return mem.LineData{}, 1
}

func (e *recycleEnv) StoreLine(l mem.Line, id mem.LineID, d mem.LineData) {}

// TestParkedByPointerCorruptsAcrossPoolReuse is the bug shape msglife
// exists to catch, run to its observable symptom. A "tracer" parks the
// directory's response by pointer; once the message is delivered and a
// second, unrelated request recycles it, the parked view silently becomes
// the second response. Any downstream consumer of the parked message now
// disagrees with a by-value copy taken at park time — the run-to-run
// divergence the determinism goldens and the trace differ would surface.
func TestParkedByPointerCorruptsAcrossPoolReuse(t *testing.T) {
	env := &recycleEnv{}
	dir := coherence.NewDirectory(0, 4, env, nil)

	dir.Handle(&coherence.Msg{
		Type: coherence.MsgGETS, Line: mem.LineOf(0x1000),
		Src: 1, Dst: 0, Requester: 1, ReqID: 41,
	})
	if len(env.inFlit) == 0 {
		t.Fatal("directory sent nothing for a GETS")
	}

	parkedPtr := env.inFlit[0]  // the bug: retains the pooled pointer
	parkedVal := *env.inFlit[0] // the contract: a by-value copy
	env.deliver()               // handler returns; message goes back to the pool

	dir.Handle(&coherence.Msg{
		Type: coherence.MsgGETS, Line: mem.LineOf(0x2000),
		Src: 2, Dst: 0, Requester: 2, ReqID: 99,
	})

	if *parkedPtr == parkedVal {
		t.Fatal("pool did not recycle the delivered message; the regression harness lost its teeth")
	}
	if parkedPtr.ReqID != 99 || parkedPtr.Dst != 2 {
		t.Errorf("parked pointer now reads ReqID=%d Dst=%d; expected it to alias the second response (ReqID=99 Dst=2)",
			parkedPtr.ReqID, parkedPtr.Dst)
	}
	if parkedVal.ReqID != 41 || parkedVal.Dst != 1 {
		t.Errorf("by-value copy mutated to ReqID=%d Dst=%d; copies must be immune to pool reuse",
			parkedVal.ReqID, parkedVal.Dst)
	}
}

// TestMsglifeFlagsParkedByPointer proves the analyzer catches the shape
// the test above executes: every park-by-pointer variant in the msglife
// fixture — field store, slice append, map store, package var, staged
// composite, closure capture — is reported, and the by-value parks in the
// clean half are not.
func TestMsglifeFlagsParkedByPointer(t *testing.T) {
	findings, err := lint.RunAnalyzers(".",
		[]string{"repro/internal/lint/testdata/src/msglife"},
		[]*lint.Analyzer{lint.MsgLife})
	if err != nil {
		t.Fatal(err)
	}
	var parked, captured int
	for _, f := range findings {
		if strings.HasSuffix(f.Pos.Filename, "clean.go") {
			t.Errorf("msglife flagged the by-value fixture: %s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Message)
		}
		if strings.Contains(f.Message, "parked by pointer") {
			parked++
		}
		if strings.Contains(f.Message, "captures pooled") {
			captured++
		}
	}
	if parked < 6 {
		t.Errorf("msglife found %d parked-by-pointer stores in the fixture, want >= 6", parked)
	}
	if captured < 1 {
		t.Errorf("msglife found %d closure captures in the fixture, want >= 1", captured)
	}
}
