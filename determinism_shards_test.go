package puno

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// TestShardedTraceByteIdentical is the PDES contract test: for every
// (workload, scheme) in the determinism set, a sharded run's binary event
// trace and Result must be byte-for-byte / value-for-value identical to the
// serial run's, for every shard count. On a trace mismatch the failure
// message carries the first-divergence diagnosis, not two full dumps.
func TestShardedTraceByteIdentical(t *testing.T) {
	for _, wl := range detWorkloads() {
		for _, sch := range detSchemes() {
			cfg := detConfig()
			cfg.Scheme = sch

			wantRes, wantTrace, err := CaptureEvents(cfg, wl)
			if err != nil {
				t.Fatalf("%s/%v serial: %v", wl.Name(), sch, err)
			}
			var wantBuf bytes.Buffer
			if err := wantTrace.Save(&wantBuf); err != nil {
				t.Fatal(err)
			}

			for _, shards := range []int{2, 4} {
				scfg := cfg
				scfg.Shards = shards
				gotRes, gotTrace, err := CaptureEvents(scfg, wl)
				if err != nil {
					t.Fatalf("%s/%v shards=%d: %v", wl.Name(), sch, shards, err)
				}
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Errorf("%s/%v shards=%d: Result differs from serial", wl.Name(), sch, shards)
				}
				var gotBuf bytes.Buffer
				if err := gotTrace.Save(&gotBuf); err != nil {
					t.Fatal(err)
				}
				if bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
					continue
				}
				// The dumps differ: reload both and point at the first
				// divergent event so the failure is one line, not two dumps.
				a, err := LoadEventTrace(bytes.NewReader(wantBuf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				b, err := LoadEventTrace(bytes.NewReader(gotBuf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if d, ok := FirstDivergence(a, b); ok {
					t.Errorf("%s/%v shards=%d: trace differs (A=serial, B=sharded): %s",
						wl.Name(), sch, shards, FormatDivergence(a, b, d))
				} else {
					t.Errorf("%s/%v shards=%d: trace bytes differ but events identical (line-table or header mismatch)",
						wl.Name(), sch, shards)
				}
			}
		}
	}
}

// TestShardedTieBreakExercised guards the (cycle, seq) merge tie-break
// against vacuity: the byte-identity test above only means something if the
// commit merge actually had to order same-cycle events from different
// shards. This test re-captures one high-contention point at two shards and
// asserts the stream contains at least one adjacent same-cycle pair whose
// nodes live on different shards — the exact case a naive per-shard
// concatenation (or a cycle-only comparator) would get wrong.
func TestShardedTieBreakExercised(t *testing.T) {
	const shards = 2
	cfg := detConfig()
	cfg.Scheme = SchemePUNO
	cfg.Shards = shards
	wl := MustWorkload("intruder").WithTxPerCPU(4)

	_, et, err := CaptureEvents(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	// Shard s owns the contiguous node range [s*N/S, (s+1)*N/S).
	owner := func(node int16) int { return int(node) * shards / cfg.Nodes }
	pairs := 0
	for i := 1; i < len(et.Events); i++ {
		a, b := et.Events[i-1], et.Events[i]
		if a.Cycle == b.Cycle && owner(a.Node) != owner(b.Node) {
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatalf("no adjacent same-cycle cross-shard event pairs in %d events: tie-break never exercised", len(et.Events))
	}
	t.Logf("%d same-cycle cross-shard adjacencies across %d events", pairs, len(et.Events))
}

// TestShardedSweepMatchesGolden renders every figure from a 4-shard sweep
// against the pre-existing serial golden file: the parallelized simulator
// must not move a single byte of the paper's tables.
func TestShardedSweepMatchesGolden(t *testing.T) {
	cfg := detConfig()
	cfg.Shards = 4
	sweep, err := RunSweepCtx(context.Background(), cfg, detWorkloads(), detSchemes(),
		SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "sweep_golden.txt", renderAll(t, sweep))
}
