package puno

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestShardedTraceByteIdentical is the PDES contract test: for every
// (workload, scheme) in the determinism set, a sharded run's binary event
// trace and Result must be byte-for-byte / value-for-value identical to the
// serial run's, for every shard count. On a trace mismatch the failure
// message carries the first-divergence diagnosis, not two full dumps.
func TestShardedTraceByteIdentical(t *testing.T) {
	for _, wl := range detWorkloads() {
		for _, sch := range detSchemes() {
			cfg := detConfig()
			cfg.Scheme = sch

			wantRes, wantTrace, err := CaptureEvents(cfg, wl)
			if err != nil {
				t.Fatalf("%s/%v serial: %v", wl.Name(), sch, err)
			}
			var wantBuf bytes.Buffer
			if err := wantTrace.Save(&wantBuf); err != nil {
				t.Fatal(err)
			}

			for _, shards := range []int{2, 4} {
				scfg := cfg
				scfg.Shards = shards
				gotRes, gotTrace, err := CaptureEvents(scfg, wl)
				if err != nil {
					t.Fatalf("%s/%v shards=%d: %v", wl.Name(), sch, shards, err)
				}
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Errorf("%s/%v shards=%d: Result differs from serial", wl.Name(), sch, shards)
				}
				var gotBuf bytes.Buffer
				if err := gotTrace.Save(&gotBuf); err != nil {
					t.Fatal(err)
				}
				if bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
					continue
				}
				// The dumps differ: reload both and point at the first
				// divergent event so the failure is one line, not two dumps.
				a, err := LoadEventTrace(bytes.NewReader(wantBuf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				b, err := LoadEventTrace(bytes.NewReader(gotBuf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if d, ok := FirstDivergence(a, b); ok {
					t.Errorf("%s/%v shards=%d: trace differs (A=serial, B=sharded): %s",
						wl.Name(), sch, shards, FormatDivergence(a, b, d))
				} else {
					t.Errorf("%s/%v shards=%d: trace bytes differ but events identical (line-table or header mismatch)",
						wl.Name(), sch, shards)
				}
			}
		}
	}
}

// TestShardedTieBreakExercised guards the (cycle, seq) merge tie-break
// against vacuity: the byte-identity test above only means something if the
// commit merge actually had to order same-cycle events from different
// shards. This test re-captures one high-contention point at two shards and
// asserts the stream contains at least one adjacent same-cycle pair whose
// nodes live on different shards — the exact case a naive per-shard
// concatenation (or a cycle-only comparator) would get wrong.
func TestShardedTieBreakExercised(t *testing.T) {
	const shards = 2
	cfg := detConfig()
	cfg.Scheme = SchemePUNO
	cfg.Shards = shards
	wl := MustWorkload("intruder").WithTxPerCPU(4)

	_, et, err := CaptureEvents(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	// Shard s owns the contiguous node range [s*N/S, (s+1)*N/S).
	owner := func(node int16) int { return int(node) * shards / cfg.Nodes }
	pairs := 0
	for i := 1; i < len(et.Events); i++ {
		a, b := et.Events[i-1], et.Events[i]
		if a.Cycle == b.Cycle && owner(a.Node) != owner(b.Node) {
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatalf("no adjacent same-cycle cross-shard event pairs in %d events: tie-break never exercised", len(et.Events))
	}
	t.Logf("%d same-cycle cross-shard adjacencies across %d events", pairs, len(et.Events))
}

// TestShardedSweepMatchesGolden renders every figure from a 4-shard sweep
// against the pre-existing serial golden file: the parallelized simulator
// must not move a single byte of the paper's tables.
func TestShardedSweepMatchesGolden(t *testing.T) {
	cfg := detConfig()
	cfg.Shards = 4
	sweep, err := RunSweepCtx(context.Background(), cfg, detWorkloads(), detSchemes(),
		SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "sweep_golden.txt", renderAll(t, sweep))
}

// big256Config is the 16x16-mesh stress point: four times the largest mesh
// the sharer tracking previously supported (the directory's node set was a
// single uint64 word). Footprint hints re-derive automatically — the
// profile's FootprintLines scales with the node count — so the interner
// and dense directory tables pre-size for the larger machine the same way
// the 64-node pair does.
func big256Config(shards int) Config {
	cfg := detConfig()
	cfg.Scheme = SchemePUNO
	cfg.Mesh.Width, cfg.Mesh.Height = 16, 16
	cfg.Nodes = 256
	cfg.Shards = shards
	return cfg
}

// big256Workload keeps the 256-node runs affordable in the test suite: one
// transaction per node still populates every mesh row with traffic and
// pushes sharer sets past the first 64-bit word.
func big256Workload() *Profile { return MustWorkload("intruder").WithTxPerCPU(1) }

// TestSharded256TraceByteIdentical extends the byte-identity contract to
// the 256-node configuration: the multi-word sharer sets, 16x16 routing,
// and four-row shard bands must not move a single event.
func TestSharded256TraceByteIdentical(t *testing.T) {
	wl := big256Workload()
	wantRes, wantTrace, err := CaptureEvents(big256Config(1), wl)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	var wantBuf bytes.Buffer
	if err := wantTrace.Save(&wantBuf); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		gotRes, gotTrace, err := CaptureEvents(big256Config(shards), wl)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("shards=%d: Result differs from serial", shards)
		}
		var gotBuf bytes.Buffer
		if err := gotTrace.Save(&gotBuf); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
			continue
		}
		if d, ok := FirstDivergence(wantTrace, gotTrace); ok {
			t.Errorf("shards=%d: trace differs (A=serial, B=sharded): %s",
				shards, FormatDivergence(wantTrace, gotTrace, d))
		} else {
			t.Errorf("shards=%d: trace bytes differ but events identical (line-table or header mismatch)", shards)
		}
	}
}

// renderBig256 digests a 256-node Result into the golden's stable text:
// the headline counters plus order-sensitive checksums of the per-node
// tallies, so a silent change anywhere in the run shows as a diff without
// committing 256-entry tables.
func renderBig256(r *Result) string {
	var hc, ha uint64
	for _, v := range r.PerNodeCommits {
		hc = hc*1099511628211 + uint64(v)
	}
	for _, v := range r.PerNodeAborts {
		ha = ha*1099511628211 + uint64(v)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "big256 intruder/PUNO 16x16\n")
	fmt.Fprintf(&b, "cycles=%d commits=%d aborts=%d nacks=%d retries=%d\n",
		r.Cycles, r.Commits, r.Aborts, r.Nacks, r.Retries)
	fmt.Fprintf(&b, "dir: txgetx=%d unicasts=%d multicast_fwds=%d mispredictions=%d busy=%d\n",
		r.DirTxGETXServices, r.DirUnicasts, r.DirMulticastFwds, r.Mispredictions, r.DirBusyAll)
	fmt.Fprintf(&b, "net: msgs=%v latency=%d queueing=%d traversals=%d\n",
		r.Net.Messages, r.Net.TotalLatency, r.Net.QueueingDelay, r.Net.TotalTraversals())
	fmt.Fprintf(&b, "pernode: commits=%#x aborts=%#x\n", hc, ha)
	return b.String()
}

// TestBig256Golden pins the 256-node run's measurements under testdata/
// and requires the 4-shard coordinator to reproduce them exactly.
func TestBig256Golden(t *testing.T) {
	serial, err := Run(big256Config(1), big256Workload())
	if err != nil {
		t.Fatal(err)
	}
	got := renderBig256(serial)
	compareGolden(t, "big256_golden.txt", got)
	sharded, err := Run(big256Config(4), big256Workload())
	if err != nil {
		t.Fatal(err)
	}
	if sgot := renderBig256(sharded); sgot != got {
		t.Errorf("sharded 256-node digest differs from serial:\n--- sharded ---\n%s--- serial ---\n%s", sgot, got)
	}
}
