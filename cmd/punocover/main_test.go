package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCover = `ok  	repro/internal/area	0.003s	coverage: 100.0% of statements
ok  	repro/internal/cache	0.006s	coverage: 88.9% of statements
	repro/internal/probe		coverage: 0.0% of statements
?   	repro/internal/old	[no test files]
ok  	repro/internal/empty	0.001s	coverage: [no statements]
ok  	repro/internal/sim	0.067s	coverage: 97.8% of statements
`

func TestParseCover(t *testing.T) {
	got, err := parseCover(sampleCover)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"repro/internal/area":  100.0,
		"repro/internal/cache": 88.9,
		"repro/internal/probe": 0.0,
		"repro/internal/old":   0.0,
		"repro/internal/sim":   97.8,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d packages, want %d: %v", len(got), len(want), got)
	}
	for pkg, pct := range want {
		if got[pkg] != pct {
			t.Errorf("%s = %v, want %v", pkg, got[pkg], pct)
		}
	}
	if _, ok := got["repro/internal/empty"]; ok {
		t.Error("[no statements] package should be skipped, not recorded")
	}
}

func TestAuditPassAndFail(t *testing.T) {
	measured := map[string]float64{"a/x": 90.0, "a/y": 50.0}

	var out strings.Builder
	if err := audit(&out, measured, map[string]float64{"a/x": 90.0, "a/y": 50.0}); err != nil {
		t.Fatalf("coverage at floor must pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS (2 packages)") {
		t.Errorf("pass summary missing:\n%s", out.String())
	}

	out.Reset()
	err := audit(&out, measured, map[string]float64{"a/x": 90.0, "a/y": 50.1})
	if err == nil || !strings.Contains(err.Error(), "FAIL (1 of 2") {
		t.Fatalf("regression must fail: %v", err)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("fail row missing:\n%s", out.String())
	}

	// A measured package with no recorded floor fails (audit rot).
	out.Reset()
	if err := audit(&out, measured, map[string]float64{"a/x": 90.0}); err == nil {
		t.Fatal("unlisted package must fail the audit")
	}
	if !strings.Contains(out.String(), "no threshold") {
		t.Errorf("no-threshold diagnosis missing:\n%s", out.String())
	}

	// A listed package missing from the input fails (package deleted or
	// filtered out of the test run).
	out.Reset()
	if err := audit(&out, measured, map[string]float64{"a/x": 90.0, "a/y": 50.0, "a/gone": 10.0}); err == nil {
		t.Fatal("missing package must fail the audit")
	}
	if !strings.Contains(out.String(), "missing from input") {
		t.Errorf("missing-package diagnosis missing:\n%s", out.String())
	}
}

func TestRunGateAndUpdate(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "cover.txt")
	thr := filepath.Join(dir, "COVERAGE.json")
	if err := os.WriteFile(in, []byte(sampleCover), 0o644); err != nil {
		t.Fatal(err)
	}

	// Gate without thresholds file: explicit error pointing at -update.
	var out, errb strings.Builder
	if err := run([]string{"-i", in, "-thresholds", thr}, &out, &errb); err == nil ||
		!strings.Contains(err.Error(), "-update") {
		t.Fatalf("missing thresholds file: %v", err)
	}

	// -update writes floors equal to measured; the gate then passes.
	out.Reset()
	if err := run([]string{"-i", in, "-thresholds", thr, "-update"}, &out, &errb); err != nil {
		t.Fatalf("update: %v", err)
	}
	var floors map[string]float64
	raw, err := os.ReadFile(thr)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &floors); err != nil {
		t.Fatal(err)
	}
	if floors["repro/internal/sim"] != 97.8 {
		t.Fatalf("floors = %v", floors)
	}
	out.Reset()
	if err := run([]string{"-i", in, "-thresholds", thr}, &out, &errb); err != nil {
		t.Fatalf("gate after update: %v\n%s", err, out.String())
	}

	// A regression in the input now fails the gate.
	regressed := strings.Replace(sampleCover, "97.8%", "90.0%", 1)
	if err := os.WriteFile(in, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-i", in, "-thresholds", thr}, &out, &errb); err == nil {
		t.Fatalf("regressed coverage passed the gate:\n%s", out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if err := run([]string{"-i", in}, &out, &errb); err == nil ||
		!strings.Contains(err.Error(), "no coverage lines") {
		t.Fatalf("empty input: %v", err)
	}
	if err := run([]string{"-i", filepath.Join(dir, "missing.txt")}, &out, &errb); err == nil {
		t.Fatal("missing input file accepted")
	}
}
