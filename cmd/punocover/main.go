// Command punocover enforces the repository's per-package coverage audit:
// it parses `go test -cover` output, compares every package against the
// committed thresholds file, prints an audit table, and fails when any
// package regresses below its floor (or appears with no recorded floor).
//
//	go test -cover ./internal/... > cover.txt
//	punocover -i cover.txt                 # gate against COVERAGE.json
//	punocover -i cover.txt -update         # rewrite floors to measured
//
// The thresholds file maps import path -> minimum coverage percent. Floors
// are set to the measured value at the time of the last -update; coverage
// is deterministic here (no test parallelism across packages changes the
// measured statements), so "no worse than last audit" is an exact gate,
// not a fuzzy one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("punocover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "go test -cover output to read (default stdin)")
	thrPath := fs.String("thresholds", "COVERAGE.json", "thresholds file (import path -> minimum percent)")
	update := fs.Bool("update", false, "rewrite the thresholds file to the measured coverage")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	measured, err := parseCover(string(raw))
	if err != nil {
		return err
	}
	if len(measured) == 0 {
		return fmt.Errorf("punocover: no coverage lines found in input")
	}

	if *update {
		if err := writeThresholds(*thrPath, measured); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d thresholds to %s\n", len(measured), *thrPath)
		return nil
	}

	thresholds, err := readThresholds(*thrPath)
	if err != nil {
		return err
	}
	return audit(stdout, measured, thresholds)
}

// parseCover extracts package -> coverage percent from `go test -cover`
// output. Packages without test files count as 0%; lines that carry no
// parseable figure (build noise, "[no statements]") are skipped.
func parseCover(out string) (map[string]float64, error) {
	cov := make(map[string]float64)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		pkg := ""
		for _, f := range fields {
			// The package path is the only field with a path separator
			// ("repro/internal/sim"); timings and percentages never have one.
			if strings.Contains(f, "/") && !strings.HasPrefix(f, "[") {
				pkg = f
				break
			}
		}
		if pkg == "" {
			continue
		}
		if strings.Contains(line, "[no test files]") {
			cov[pkg] = 0
			continue
		}
		for i, f := range fields {
			if f == "coverage:" && i+1 < len(fields) {
				pctStr := strings.TrimSuffix(fields[i+1], "%")
				pct, err := strconv.ParseFloat(pctStr, 64)
				if err != nil {
					break // "coverage: [no statements]" and friends
				}
				cov[pkg] = pct
			}
		}
	}
	return cov, nil
}

func readThresholds(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("punocover: reading thresholds: %w (run with -update to create)", err)
	}
	var t map[string]float64
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("punocover: %s: %w", path, err)
	}
	return t, nil
}

func writeThresholds(path string, measured map[string]float64) error {
	b, err := json.MarshalIndent(measured, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// audit prints the coverage table and returns an error when any package is
// below its floor, missing from the input, or measured with no floor on
// record — every way the audit can silently rot fails loudly.
func audit(w io.Writer, measured, thresholds map[string]float64) error {
	pkgs := make([]string, 0, len(measured)+len(thresholds))
	for p := range measured {
		pkgs = append(pkgs, p)
	}
	for p := range thresholds {
		if _, ok := measured[p]; !ok {
			pkgs = append(pkgs, p)
		}
	}
	sort.Strings(pkgs)

	fmt.Fprintf(w, "%-32s %9s %9s   status\n", "package", "coverage", "target")
	failures := 0
	for _, p := range pkgs {
		got, haveGot := measured[p]
		min, haveMin := thresholds[p]
		switch {
		case !haveGot:
			failures++
			fmt.Fprintf(w, "%-32s %9s %8.1f%%   FAIL (package missing from input)\n", p, "-", min)
		case !haveMin:
			failures++
			fmt.Fprintf(w, "%-32s %8.1f%% %9s   FAIL (no threshold; run `make cover-update`)\n", p, got, "-")
		case got+1e-9 < min:
			failures++
			fmt.Fprintf(w, "%-32s %8.1f%% %8.1f%%   FAIL\n", p, got, min)
		default:
			fmt.Fprintf(w, "%-32s %8.1f%% %8.1f%%   ok\n", p, got, min)
		}
	}
	if failures > 0 {
		return fmt.Errorf("coverage gate: FAIL (%d of %d packages)", failures, len(pkgs))
	}
	fmt.Fprintf(w, "coverage gate: PASS (%d packages)\n", len(pkgs))
	return nil
}
