package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestSchemesSweepSerial(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-sweep", "schemes", "-workload", "kmeans", "-txper", "2", "-parallel", "1"}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.HasPrefix(out.String(), "all schemes on kmeans\n") {
		t.Fatalf("title line missing:\n%s", out.String())
	}
	for _, scheme := range []string{"Baseline", "Backoff", "RMW-Pred", "PUNO", "ATS"} {
		if !strings.Contains(out.String(), scheme) {
			t.Errorf("row for %s missing:\n%s", scheme, out.String())
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	args := func(par string) []string {
		return []string{"-sweep", "schemes", "-workload", "kmeans", "-txper", "2", "-parallel", par}
	}
	var serial, parallel strings.Builder
	if err := run(args("1"), &serial, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run(args("4"), &parallel, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("parallel sweep output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestUnknownSweepModeAndWorkload(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-sweep", "nosuch"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "unknown sweep") {
		t.Fatalf("unknown sweep mode accepted: %v", err)
	}
	if err := run([]string{"-workload", "nosuch"}, &out, &errb); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// -trace writes one loadable event trace per sweep point, prints the same
// table as the untraced sweep, and the traces diff cleanly: same-scheme
// points are identical across sweeps, different-scheme points diverge.
func TestTraceFlagWritesEventTraces(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-sweep", "schemes", "-workload", "kmeans", "-txper", "2"}
	var traced, plain strings.Builder
	if err := run(append(args, "-trace", dir), &traced, &strings.Builder{}); err != nil {
		t.Fatalf("traced sweep: %v", err)
	}
	if err := run(append(args, "-parallel", "1"), &plain, &strings.Builder{}); err != nil {
		t.Fatalf("plain sweep: %v", err)
	}
	if traced.String() != plain.String() {
		t.Fatalf("tracing changed the sweep table:\n--- traced ---\n%s--- plain ---\n%s",
			traced.String(), plain.String())
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 { // one per scheme
		t.Fatalf("wrote %d trace files, want 8: %v", len(entries), entries)
	}
	load := func(name string) *puno.EventTrace {
		t.Helper()
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		et, err := puno.LoadEventTrace(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return et
	}
	baseline := load("00-baseline.evt")
	punoTr := load("03-puno.evt")
	if len(baseline.Events) == 0 || len(punoTr.Events) == 0 {
		t.Fatal("empty event traces written")
	}
	if _, ok := puno.FirstDivergence(baseline, punoTr); !ok {
		t.Error("baseline and PUNO sweeps produced identical event streams")
	}

	// A second traced sweep reproduces the first byte-for-byte.
	dir2 := t.TempDir()
	if err := run(append(args, "-trace", dir2), &strings.Builder{}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dir, "00-baseline.evt"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir2, "00-baseline.evt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("re-running the traced sweep changed the trace bytes")
	}
}

func TestSanitizeLabel(t *testing.T) {
	cases := map[string]string{
		"Baseline":           "baseline",
		"timeout  2x avg-tx": "timeout--2x-avg-tx",
		"4x4 PUNO":           "4x4-puno",
	}
	for in, want := range cases {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb strings.Builder
	err := run([]string{"-sweep", "schemes", "-workload", "kmeans", "-txper", "1", "-parallel", "1",
		"-cpuprofile", cpu, "-memprofile", mem}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}
