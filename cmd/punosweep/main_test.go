package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSchemesSweepSerial(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-sweep", "schemes", "-workload", "kmeans", "-txper", "2", "-parallel", "1"}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.HasPrefix(out.String(), "all schemes on kmeans\n") {
		t.Fatalf("title line missing:\n%s", out.String())
	}
	for _, scheme := range []string{"Baseline", "Backoff", "RMW-Pred", "PUNO", "ATS"} {
		if !strings.Contains(out.String(), scheme) {
			t.Errorf("row for %s missing:\n%s", scheme, out.String())
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	args := func(par string) []string {
		return []string{"-sweep", "schemes", "-workload", "kmeans", "-txper", "2", "-parallel", par}
	}
	var serial, parallel strings.Builder
	if err := run(args("1"), &serial, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run(args("4"), &parallel, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("parallel sweep output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestUnknownSweepModeAndWorkload(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-sweep", "nosuch"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "unknown sweep") {
		t.Fatalf("unknown sweep mode accepted: %v", err)
	}
	if err := run([]string{"-workload", "nosuch"}, &out, &errb); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb strings.Builder
	err := run([]string{"-sweep", "schemes", "-workload", "kmeans", "-txper", "1", "-parallel", "1",
		"-cpuprofile", cpu, "-memprofile", mem}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}
