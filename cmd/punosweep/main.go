// Command punosweep runs parameter sweeps around the PUNO design points:
// the P-Buffer validity timeout, the notification guard band, mesh size,
// and the contention-management scheme set, printing one table per sweep.
// The sweep's runs fan out across -parallel workers (default GOMAXPROCS);
// -parallel=1 restores the classic serial execution. Output is identical
// either way.
//
//	punosweep -sweep validity -workload labyrinth
//	punosweep -sweep guard    -workload bayes
//	punosweep -sweep mesh     -workload intruder
//	punosweep -sweep schemes  -workload yada -parallel 4
//	punosweep -sweep schemes  -workload yada -trace traces/
//
// With -trace DIR, every sweep point additionally writes its binary event
// trace (punotrace's .evt format) into DIR, one file per point, for
// point-vs-point diffing with `punotrace diff`. Tracing runs the points one
// at a time (each point may still use -shards workers internally); the
// printed table is identical either way.
//
// -shards N runs each simulation on N worker goroutines (conservative
// PDES); tables and traces are bit-identical to -shards 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro"
	"repro/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// sweepPoint is one labelled run of a parameter sweep.
type sweepPoint struct {
	label string
	spec  puno.RunSpec
}

// points builds the labelled run list for one sweep mode.
func points(mode string, base puno.Config, wl *puno.Profile) ([]sweepPoint, string, error) {
	var pts []sweepPoint
	add := func(label string, cfg puno.Config) {
		pts = append(pts, sweepPoint{label, puno.RunSpec{Config: cfg, Workload: wl}})
	}
	switch mode {
	case "validity":
		for _, mult := range []int{1, 2, 4, 8, 16, 32, 64} {
			cfg := base
			cfg.Scheme = puno.SchemePUNO
			cfg.ValidityTimeoutMult = mult
			add(fmt.Sprintf("timeout %2dx avg-tx", mult), cfg)
		}
		cfg := base
		cfg.Scheme = puno.SchemePUNO
		cfg.DisableValidity = true
		add("no decay", cfg)
		return pts, fmt.Sprintf("P-Buffer validity timeout sweep on %s (scheme PUNO)", wl.Name()), nil

	case "guard":
		for _, g := range []puno.Time{1, 12, 23, 46, 92, 184, 368} {
			cfg := base
			cfg.Scheme = puno.SchemePUNO
			cfg.NotifyGuardOverride = g
			add(fmt.Sprintf("guard %3d cycles", g), cfg)
		}
		return pts, fmt.Sprintf("notification guard-band sweep on %s (scheme PUNO; paper: 2x avg cache-to-cache)", wl.Name()), nil

	case "mesh":
		for _, dim := range []struct{ w, h int }{{2, 2}, {4, 2}, {4, 4}, {8, 4}} {
			for _, s := range []puno.Scheme{puno.SchemeBaseline, puno.SchemePUNO} {
				cfg := base
				cfg.Scheme = s
				cfg.Mesh.Width, cfg.Mesh.Height = dim.w, dim.h
				cfg.Nodes = dim.w * dim.h
				add(fmt.Sprintf("%dx%d %v", dim.w, dim.h, s), cfg)
			}
		}
		return pts, fmt.Sprintf("machine-size sweep on %s (baseline vs PUNO)", wl.Name()), nil

	case "schemes":
		for _, s := range []puno.Scheme{
			puno.SchemeBaseline, puno.SchemeBackoff, puno.SchemeRMWPred,
			puno.SchemePUNO, puno.SchemeUnicastOnly, puno.SchemeNotifyOnly, puno.SchemeATS, puno.SchemePUNOPush,
		} {
			cfg := base
			cfg.Scheme = s
			add(s.String(), cfg)
		}
		return pts, fmt.Sprintf("all schemes on %s", wl.Name()), nil

	default:
		return nil, "", fmt.Errorf("unknown sweep %q (validity|guard|mesh|schemes)", mode)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("punosweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sweep    = fs.String("sweep", "schemes", "validity|guard|mesh|schemes")
		workload = fs.String("workload", "intruder", "STAMP profile")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		txper    = fs.Int("txper", 0, "transactions per node (0 = profile default)")
		parallel = fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		shards   = fs.Int("shards", 1, "worker goroutines per simulation (PDES; 1 = serial, results bit-identical)")
		traceDir = fs.String("trace", "", "write each point's binary event trace (.evt) into this directory (forces serial execution)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file (samples carry per-run pprof labels: task index and workload/scheme/seed)")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// An interrupt cancels the sweep; the deferred Stop still flushes the
	// profiles collected so far.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	profiler, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer profiler.Stop()
	runErr := runSweep(ctx, *sweep, *workload, *seed, *txper, *parallel, *shards, *traceDir, stdout)
	if perr := profiler.Stop(); runErr == nil {
		runErr = perr
	}
	return runErr
}

func runSweep(ctx context.Context, sweep, workload string, seed uint64, txper, parallel, shards int, traceDir string, stdout io.Writer) error {
	wl, err := puno.WorkloadByName(workload)
	if err != nil {
		return err
	}
	if txper > 0 {
		wl = wl.WithTxPerCPU(txper)
	}
	base := puno.DefaultConfig()
	base.Seed = seed
	base.Shards = shards

	pts, title, err := points(sweep, base, wl)
	if err != nil {
		return err
	}
	var results []*puno.Result
	if traceDir != "" {
		// Tracing runs the points one at a time through CaptureEvents:
		// each point's trace needs its run's line table, and determinism
		// guarantees the results match the parallel path's. CaptureEvents
		// itself honors base.Shards (sharded capture, normalized trace).
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return err
		}
		results = make([]*puno.Result, len(pts))
		for i, p := range pts {
			if err := ctx.Err(); err != nil {
				return err
			}
			res, et, err := puno.CaptureEvents(p.spec.Config, p.spec.Workload)
			if err != nil {
				return fmt.Errorf("%s: %w", p.label, err)
			}
			results[i] = res
			path := filepath.Join(traceDir, fmt.Sprintf("%02d-%s.evt", i, sanitizeLabel(p.label)))
			if err := saveEvents(path, et); err != nil {
				return err
			}
		}
	} else {
		specs := make([]puno.RunSpec, len(pts))
		for i, p := range pts {
			specs[i] = p.spec
		}
		if results, err = puno.RunSpecs(ctx, specs, puno.SweepOptions{Parallel: parallel}); err != nil {
			return err
		}
	}

	fmt.Fprintln(stdout, title)
	for i, res := range results {
		fmt.Fprintf(stdout, "%-22s cycles=%-9d aborts=%-6d abort%%=%5.1f false%%=%4.1f unnecessary=%-5d traffic=%d\n",
			pts[i].label, res.Cycles, res.Aborts, 100*res.AbortRate(),
			100*res.FalseAbortFraction(), res.UnnecessaryAborts(), res.Net.TotalTraversals())
	}
	return nil
}

// sanitizeLabel turns a sweep-point label into a filename fragment.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, label)
}

func saveEvents(path string, et *puno.EventTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := et.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
