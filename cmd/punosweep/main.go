// Command punosweep runs parameter sweeps around the PUNO design points:
// the P-Buffer validity timeout, the notification guard band, mesh size,
// and the contention-management scheme set, printing one table per sweep.
//
//	punosweep -sweep validity -workload labyrinth
//	punosweep -sweep guard    -workload bayes
//	punosweep -sweep mesh     -workload intruder
//	punosweep -sweep schemes  -workload yada
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		sweep    = flag.String("sweep", "schemes", "validity|guard|mesh|schemes")
		workload = flag.String("workload", "intruder", "STAMP profile")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		txper    = flag.Int("txper", 0, "transactions per node (0 = profile default)")
	)
	flag.Parse()

	wl, err := puno.WorkloadByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *txper > 0 {
		wl = wl.WithTxPerCPU(*txper)
	}
	base := puno.DefaultConfig()
	base.Seed = *seed

	row := func(label string, res *puno.Result) {
		fmt.Printf("%-22s cycles=%-9d aborts=%-6d abort%%=%5.1f false%%=%4.1f unnecessary=%-5d traffic=%d\n",
			label, res.Cycles, res.Aborts, 100*res.AbortRate(),
			100*res.FalseAbortFraction(), res.UnnecessaryAborts(), res.Net.TotalTraversals())
	}
	must := func(res *puno.Result, err error) *puno.Result {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res
	}

	switch *sweep {
	case "validity":
		fmt.Printf("P-Buffer validity timeout sweep on %s (scheme PUNO)\n", wl.Name())
		for _, mult := range []int{1, 2, 4, 8, 16, 32, 64} {
			cfg := base
			cfg.Scheme = puno.SchemePUNO
			cfg.ValidityTimeoutMult = mult
			row(fmt.Sprintf("timeout %2dx avg-tx", mult), must(puno.Run(cfg, wl)))
		}
		cfg := base
		cfg.Scheme = puno.SchemePUNO
		cfg.DisableValidity = true
		row("no decay", must(puno.Run(cfg, wl)))

	case "guard":
		fmt.Printf("notification guard-band sweep on %s (scheme PUNO; paper: 2x avg cache-to-cache)\n", wl.Name())
		for _, g := range []puno.Time{1, 12, 23, 46, 92, 184, 368} {
			cfg := base
			cfg.Scheme = puno.SchemePUNO
			cfg.NotifyGuardOverride = g
			row(fmt.Sprintf("guard %3d cycles", g), must(puno.Run(cfg, wl)))
		}

	case "mesh":
		fmt.Printf("machine-size sweep on %s (baseline vs PUNO)\n", wl.Name())
		for _, dim := range []struct{ w, h int }{{2, 2}, {4, 2}, {4, 4}, {8, 4}} {
			for _, s := range []puno.Scheme{puno.SchemeBaseline, puno.SchemePUNO} {
				cfg := base
				cfg.Scheme = s
				cfg.Mesh.Width, cfg.Mesh.Height = dim.w, dim.h
				cfg.Nodes = dim.w * dim.h
				row(fmt.Sprintf("%dx%d %v", dim.w, dim.h, s), must(puno.Run(cfg, wl)))
			}
		}

	case "schemes":
		fmt.Printf("all schemes on %s\n", wl.Name())
		for _, s := range []puno.Scheme{
			puno.SchemeBaseline, puno.SchemeBackoff, puno.SchemeRMWPred,
			puno.SchemePUNO, puno.SchemeUnicastOnly, puno.SchemeNotifyOnly, puno.SchemeATS, puno.SchemePUNOPush,
		} {
			cfg := base
			cfg.Scheme = s
			row(s.String(), must(puno.Run(cfg, wl)))
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}
