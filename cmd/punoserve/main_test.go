package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro"
)

// lineWriter forwards writes to a builder and announces the listen address
// parsed from the server's banner line.
type lineWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	addr  chan string
	found bool
}

func newLineWriter() *lineWriter { return &lineWriter{addr: make(chan string, 1)} }

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.found {
		if _, after, ok := strings.Cut(w.buf.String(), "http://"); ok {
			if host, _, ok := strings.Cut(after, " "); ok {
				w.found = true
				w.addr <- host
			}
		}
	}
	return len(p), nil
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeSmoke is the end-to-end server exercise: boot on a free port,
// submit, poll to completion, fetch the artifact and compare it byte for
// byte against a direct in-process simulation, verify the resubmission is
// a cache hit (no second simulation), then shut down gracefully and check
// the drain summary and flushed profiles.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	ctx, cancel := context.WithCancel(context.Background())
	out := newLineWriter()
	var errb strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-cache-dir", filepath.Join(dir, "cache"),
			"-codeversion", "smoke",
			"-cpuprofile", cpu,
			"-memprofile", mem,
		}, out, &errb)
	}()
	base := "http://" + <-out.addr

	spec := `{"workload":"kmeans","tx_per_cpu":2,"seed":77}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		Key   string `json:"key"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		data, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, data
	}

	code, body := get("/v1/jobs/" + job.ID + "?wait=1")
	if code != http.StatusOK || !strings.Contains(string(body), `"done"`) {
		t.Fatalf("poll: status %d, body %s", code, body)
	}
	code, artifact := get("/v1/jobs/" + job.ID + "/result")
	if code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}

	// Byte-identical to running the same point directly in this process.
	wl, err := puno.WorkloadByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	cfg := puno.DefaultConfig()
	cfg.Seed = 77
	direct, err := puno.Run(cfg, wl.WithTxPerCPU(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := puno.EncodeResult(direct.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(artifact, want) {
		t.Fatal("served artifact differs from a direct run's encoding")
	}

	// Resubmission hits the cache: terminal at submit time, still 1 run.
	resp2, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job2 struct {
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&job2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !job2.Cached || job2.State != "done" {
		t.Fatalf("resubmission: status %d, %+v", resp2.StatusCode, job2)
	}
	code, statsBody := get("/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	var st struct {
		Runs  uint64 `json:"runs"`
		Cache struct {
			Hits uint64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 {
		t.Fatalf("runs = %d after a submit and a cache hit", st.Runs)
	}
	if st.Cache.Hits == 0 {
		t.Fatal("cache hit counter did not advance")
	}

	// Graceful drain: clean exit, drain summary, non-empty profiles.
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("server exit: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "drained: runs=1") {
		t.Fatalf("drain summary missing:\n%s", out.String())
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out, errb strings.Builder
	ctx := context.Background()
	if err := run(ctx, []string{"-nosuch"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(ctx, []string{"-addr", "999.999.999.999:1"}, &out, &errb); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
