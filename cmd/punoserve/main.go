// Command punoserve runs the simulation service: an HTTP/JSON API over a
// persistent worker pool with a content-addressed result cache and
// singleflight deduplication (internal/serve).
//
//	punoserve -addr 127.0.0.1:8377 -cache-dir /var/cache/puno
//
//	curl -XPOST localhost:8377/v1/jobs -d '{"workload":"intruder","scheme":"PUNO","seed":7}'
//	curl 'localhost:8377/v1/jobs/j000001?wait=1'
//	curl 'localhost:8377/v1/jobs/j000001/result?format=json'
//
// Because every simulation is deterministic, results are cached by the
// SHA-256 of (config, workload, seed, code version) and served from the
// cache forever — a cached artifact can never go stale. SIGINT/SIGTERM
// drains gracefully: the listener closes, queued jobs finish into the
// cache, and any -cpuprofile/-memprofile files are flushed first so a
// profile survives even a drain that is killed midway.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/prof"
	"repro/internal/serve"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("punoserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks a free port)")
		cacheDir     = fs.String("cache-dir", "", "disk tier for result artifacts (empty: memory only)")
		cacheEntries = fs.Int("cache-entries", 0, "in-memory LRU capacity (0 = 1024)")
		workers      = fs.Int("workers", 0, "simulation workers (0 = sized from GOMAXPROCS and -task-threads)")
		taskThreads  = fs.Int("task-threads", 1, "widest Config.Shards expected per job, for worker sizing")
		queue        = fs.Int("queue", 0, "bounded queue depth; full queue answers 429 (0 = 4x workers)")
		maxJobs      = fs.Int("max-jobs", 0, "job registry cap (0 = 4096)")
		codeVersion  = fs.String("codeversion", "", "cache-key code version (default: the build's VCS revision)")
		cpuProf      = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = fs.String("memprofile", "", "write a heap profile to this file on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	profiler, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer profiler.Stop()

	svc, err := serve.New(serve.Options{
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		Workers:      *workers,
		TaskThreads:  *taskThreads,
		QueueDepth:   *queue,
		MaxJobs:      *maxJobs,
		CodeVersion:  *codeVersion,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "punoserve listening on http://%s (code version %s)\n",
		ln.Addr(), svc.Stats().CodeVersion)

	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var runErr error
	select {
	case err := <-errc:
		runErr = err
	case <-ctx.Done():
		// Flush profiles before draining: a drain can take as long as the
		// queued simulations, and a second signal kills the process, so the
		// profile data must already be on disk. Stop is idempotent — the
		// deferred call just reports this flush's error again.
		profErr := profiler.Stop()
		if err := srv.Shutdown(context.Background()); err != nil && runErr == nil {
			runErr = err
		}
		<-errc // http.ErrServerClosed
		svc.Drain()
		st := svc.Stats()
		fmt.Fprintf(stdout, "drained: runs=%d submitted=%d collapsed=%d cache_hits=%d\n",
			st.Runs, st.Submitted, st.Collapsed, st.Cache.Hits+st.Cache.DiskHits)
		if runErr == nil {
			runErr = profErr
		}
	}
	if perr := profiler.Stop(); runErr == nil {
		runErr = perr
	}
	return runErr
}
