// Command benchsnap maintains BENCH_sweep.json, the committed hot-path
// performance snapshot.
//
// Update mode parses `go test -bench` output, averages the matching
// benchmark's ns/op, B/op, and allocs/op across -count repetitions, and
// rewrites the snapshot: the previous "current" entry becomes the baseline
// and the fresh numbers become current (with -note describing the change).
//
//	go test -run '^$' -bench 'SweepParallelism/serial' -benchmem -count 8 . > bench.txt
//	benchsnap -in bench.txt -out BENCH_sweep.json -note "time-wheel scheduler"
//
// Emit mode prints a snapshot entry back out in Go benchmark format, so CI
// can benchstat the committed snapshot against a fresh run:
//
//	benchsnap -emit current -out BENCH_sweep.json > snapshot.txt
//	benchstat snapshot.txt fresh.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"
)

type entry struct {
	Note        string `json:"note"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

type improvement struct {
	AllocsRatio      float64 `json:"allocs_ratio"`
	BytesRatio       float64 `json:"bytes_ratio"`
	TimeReductionPct float64 `json:"time_reduction_pct"`
}

// pair records the single-machine PDES benchmark pair: the same 64-node
// simulation serial and sharded, with the sharded/serial wall-clock ratio.
type pair struct {
	Description string  `json:"description"`
	Note        string  `json:"note"`
	BigSerial   entry   `json:"big_serial"`
	BigSharded  entry   `json:"big_sharded"`
	Speedup     float64 `json:"speedup"`
}

// serveSection records the punoserve serving-path benchmark triple: a cold
// miss (full simulation), a warm content-addressed cache hit, and 64
// concurrent identical submissions collapsing onto one flight. warm_speedup
// is the cold/warm wall-clock ratio — the headline for the result cache.
type serveSection struct {
	Description  string  `json:"description"`
	Note         string  `json:"note"`
	Cold         entry   `json:"cold"`
	Warm         entry   `json:"warm"`
	Singleflight entry   `json:"singleflight"`
	WarmSpeedup  float64 `json:"warm_speedup"`
}

type snapshot struct {
	Benchmark     string        `json:"benchmark"`
	Description   string        `json:"description"`
	Machine       string        `json:"machine"`
	Date          string        `json:"date"`
	GoBenchFlags  string        `json:"go_bench_flags"`
	Baseline      entry         `json:"baseline"`
	Current       entry         `json:"current"`
	Improvement   improvement   `json:"improvement"`
	SingleMachine *pair         `json:"single_machine,omitempty"`
	Serve         *serveSection `json:"serve,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in    = fs.String("in", "-", "bench output to parse ('-' for stdin)")
		out   = fs.String("out", "BENCH_sweep.json", "snapshot file to update (or read, with -emit)")
		bench = fs.String("bench", "BenchmarkSweepParallelism/serial", "benchmark name to extract")
		note  = fs.String("note", "", "description of the change recorded as the new current entry")
		emit  = fs.String("emit", "", "print the named snapshot entry (baseline|current) in Go benchmark format and exit")
		prs   = fs.Bool("pair", false, "update the single_machine section from a big-serial/big-sharded run instead of rotating baseline/current")
		srv   = fs.Bool("serve", false, "update the serve section from a BenchmarkServe cold/warm/singleflight run instead of rotating baseline/current")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *emit != "" {
		return emitEntry(stdout, *out, *emit)
	}
	// A snapshot rotation without a note produces an entry nobody can
	// interpret later (what change do these numbers measure?), so refuse up
	// front rather than commit an unlabeled baseline.
	if strings.TrimSpace(*note) == "" {
		return fmt.Errorf("refusing to update %s: -note is empty; describe the change being measured (make bench-snapshot NOTE='...')", *out)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if *prs {
		return updatePair(stdout, r, *out, *note)
	}
	if *srv {
		return updateServe(stdout, r, *out, *note)
	}
	fresh, runs, err := parseBench(r, *bench)
	if err != nil {
		return err
	}

	snap, err := load(*out)
	if err != nil {
		return err
	}
	fresh.Note = *note
	snap.Baseline = snap.Current
	snap.Current = fresh
	snap.Date = time.Now().Format("2006-01-02")
	snap.Improvement = improve(snap.Baseline, snap.Current)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %s over %d runs: %d ns/op, %d B/op, %d allocs/op (%.1f%% faster than previous current)\n",
		*out, *bench, runs, fresh.NsPerOp, fresh.BytesPerOp, fresh.AllocsPerOp, snap.Improvement.TimeReductionPct)
	return nil
}

func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading snapshot: %w", err)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &s, nil
}

func improve(base, cur entry) improvement {
	ratio := func(a, b int64) float64 {
		if b == 0 {
			return 0
		}
		return math.Round(float64(a)/float64(b)*100) / 100
	}
	imp := improvement{
		AllocsRatio: ratio(base.AllocsPerOp, cur.AllocsPerOp),
		BytesRatio:  ratio(base.BytesPerOp, cur.BytesPerOp),
	}
	if base.NsPerOp > 0 {
		imp.TimeReductionPct = math.Round(float64(base.NsPerOp-cur.NsPerOp)/float64(base.NsPerOp)*1000) / 10
	}
	return imp
}

// parseBench extracts the named benchmark's mean ns/op, B/op, and allocs/op
// from `go test -bench` output (one line per -count repetition; the name
// carries a -<GOMAXPROCS> suffix).
func parseBench(r io.Reader, bench string) (entry, int, error) {
	var nsSum, bSum, aSum float64
	runs := 0
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 {
			continue
		}
		// Strip the -<GOMAXPROCS> suffix — but only when it is numeric:
		// GOMAXPROCS=1 runs omit it entirely, and benchmark leaf names may
		// themselves contain hyphens (big-serial).
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if name != bench {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return entry{}, 0, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			switch fields[i+1] {
			case "ns/op":
				nsSum += v
			case "B/op":
				bSum += v
			case "allocs/op":
				aSum += v
			}
		}
		runs++
	}
	if err := sc.Err(); err != nil {
		return entry{}, 0, err
	}
	if runs == 0 {
		return entry{}, 0, fmt.Errorf("no %q lines found in bench output", bench)
	}
	n := float64(runs)
	return entry{
		NsPerOp:     int64(math.Round(nsSum / n)),
		BytesPerOp:  int64(math.Round(bSum / n)),
		AllocsPerOp: int64(math.Round(aSum / n)),
	}, runs, nil
}

// updatePair rewrites the snapshot's single_machine section from a run of
// the big-serial/big-sharded benchmark pair (one 64-node simulation, serial
// engine vs 4-shard PDES coordinator).
func updatePair(stdout io.Writer, r io.Reader, out, note string) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	serial, sRuns, err := parseBench(strings.NewReader(string(data)), "BenchmarkSweepParallelism/big-serial")
	if err != nil {
		return err
	}
	sharded, _, err := parseBench(strings.NewReader(string(data)), "BenchmarkSweepParallelism/big-sharded")
	if err != nil {
		return err
	}
	snap, err := load(out)
	if err != nil {
		return err
	}
	speedup := 0.0
	if sharded.NsPerOp > 0 {
		speedup = math.Round(float64(serial.NsPerOp)/float64(sharded.NsPerOp)*100) / 100
	}
	// Each leg carries its own note: the two entries share a file with the
	// baseline/current rotation, where a bare numbers-only entry reads as an
	// unlabeled measurement nobody can attribute later.
	serial.Note = "serial leg: classic single-engine run of the pair workload"
	sharded.Note = "sharded leg: conservative-PDES coordinator, same workload, bit-identical output"
	snap.SingleMachine = &pair{
		Description: "One 64-node (8x8 mesh) intruder/PUNO simulation: classic serial engine vs the 4-shard conservative-PDES coordinator (bit-identical output). speedup = serial/sharded wall clock.",
		Note:        note,
		BigSerial:   serial,
		BigSharded:  sharded,
		Speedup:     speedup,
	}
	snap.Date = time.Now().Format("2006-01-02")
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: single_machine over %d runs: big-serial %d ns/op, big-sharded %d ns/op (speedup %.2fx)\n",
		out, sRuns, serial.NsPerOp, sharded.NsPerOp, speedup)
	return nil
}

// updateServe rewrites the snapshot's serve section from a run of the
// three-leg BenchmarkServe (internal/serve): cold miss, warm cache hit, and
// the 64-client singleflight collapse.
func updateServe(stdout io.Writer, r io.Reader, out, note string) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	legs := make(map[string]entry, 3)
	runs := 0
	for _, leg := range []string{"cold", "warm", "singleflight"} {
		e, n, err := parseBench(strings.NewReader(string(data)), "BenchmarkServe/"+leg)
		if err != nil {
			return err
		}
		legs[leg] = e
		runs = n
	}
	snap, err := load(out)
	if err != nil {
		return err
	}
	speedup := 0.0
	if legs["warm"].NsPerOp > 0 {
		speedup = math.Round(float64(legs["cold"].NsPerOp)/float64(legs["warm"].NsPerOp)*10) / 10
	}
	cold, warm, single := legs["cold"], legs["warm"], legs["singleflight"]
	cold.Note = "cold leg: fresh key per op — full simulation through the worker pool"
	warm.Note = "warm leg: primed key — content-addressed cache hit, simulator untouched"
	single.Note = "singleflight leg: 64 concurrent identical submissions per op, exactly one simulation"
	snap.Serve = &serveSection{
		Description:  "punoserve serving paths on one kmeans/2-tx point (BenchmarkServe, internal/serve). warm_speedup = cold/warm ns per op; the singleflight leg asserts 64 concurrent identical submissions run one simulation.",
		Note:         note,
		Cold:         cold,
		Warm:         warm,
		Singleflight: single,
		WarmSpeedup:  speedup,
	}
	snap.Date = time.Now().Format("2006-01-02")
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: serve over %d runs: cold %d ns/op, warm %d ns/op, singleflight %d ns/op (warm speedup %.1fx)\n",
		out, runs, cold.NsPerOp, warm.NsPerOp, single.NsPerOp, speedup)
	return nil
}

// emitEntry prints a snapshot entry as a Go benchmark line benchstat can
// consume.
func emitEntry(w io.Writer, path, which string) error {
	snap, err := load(path)
	if err != nil {
		return err
	}
	var e entry
	switch which {
	case "baseline":
		e = snap.Baseline
	case "current":
		e = snap.Current
	default:
		return fmt.Errorf("-emit %q: want baseline or current", which)
	}
	fmt.Fprintf(w, "%s 1 %d ns/op %d B/op %d allocs/op\n",
		snap.Benchmark, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	return nil
}
