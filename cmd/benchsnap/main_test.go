package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepParallelism/serial-4         	      44	  26000000 ns/op	         8.000 runs/op	 4000000 B/op	   88000 allocs/op
BenchmarkSweepParallelism/serial-4         	      40	  28000000 ns/op	         8.000 runs/op	 4000002 B/op	   88002 allocs/op
BenchmarkSweepParallelism/parallel-4       	     100	   9000000 ns/op	         8.000 runs/op	 4000000 B/op	   88000 allocs/op
PASS
`

const sampleSnapshot = `{
  "benchmark": "BenchmarkSweepParallelism/serial",
  "description": "test snapshot",
  "machine": "test",
  "date": "2026-01-01",
  "go_bench_flags": "-benchmem",
  "baseline": {"note": "seed", "ns_per_op": 71000000, "bytes_per_op": 43300000, "allocs_per_op": 742210},
  "current": {"note": "pooled", "ns_per_op": 41766000, "bytes_per_op": 11984354, "allocs_per_op": 94644},
  "improvement": {"allocs_ratio": 7.84, "bytes_ratio": 3.61, "time_reduction_pct": 41.2}
}`

func writeFixtures(t *testing.T) (benchPath, snapPath string) {
	t.Helper()
	dir := t.TempDir()
	benchPath = filepath.Join(dir, "bench.txt")
	snapPath = filepath.Join(dir, "snap.json")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, []byte(sampleSnapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	return benchPath, snapPath
}

func TestUpdateRotatesCurrentIntoBaseline(t *testing.T) {
	benchPath, snapPath := writeFixtures(t)
	var out, errb bytes.Buffer
	err := run([]string{"-in", benchPath, "-out", snapPath, "-note", "wheel"}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Baseline.NsPerOp != 41766000 || s.Baseline.Note != "pooled" {
		t.Fatalf("baseline not rotated from previous current: %+v", s.Baseline)
	}
	if s.Current.NsPerOp != 27000000 || s.Current.BytesPerOp != 4000001 || s.Current.AllocsPerOp != 88001 {
		t.Fatalf("current entry not averaged over serial runs only: %+v", s.Current)
	}
	if s.Current.Note != "wheel" {
		t.Fatalf("note = %q", s.Current.Note)
	}
	if s.Improvement.TimeReductionPct < 35 || s.Improvement.TimeReductionPct > 36 {
		t.Fatalf("time reduction = %v, want ~35.4", s.Improvement.TimeReductionPct)
	}
	if !strings.Contains(out.String(), "2 runs") {
		t.Fatalf("summary output: %q", out.String())
	}
}

func TestEmitBenchstatFormat(t *testing.T) {
	_, snapPath := writeFixtures(t)
	var out, errb bytes.Buffer
	if err := run([]string{"-emit", "current", "-out", snapPath}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	want := "BenchmarkSweepParallelism/serial 1 41766000 ns/op 11984354 B/op 94644 allocs/op\n"
	if out.String() != want {
		t.Fatalf("emit = %q, want %q", out.String(), want)
	}
	out.Reset()
	if err := run([]string{"-emit", "baseline", "-out", snapPath}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "71000000 ns/op") {
		t.Fatalf("baseline emit = %q", out.String())
	}
	if err := run([]string{"-emit", "bogus", "-out", snapPath}, &out, &errb); err == nil {
		t.Fatal("emit with a bogus entry name succeeded")
	}
}

func TestNoMatchingBenchLinesFails(t *testing.T) {
	benchPath, snapPath := writeFixtures(t)
	var out, errb bytes.Buffer
	err := run([]string{"-in", benchPath, "-out", snapPath, "-note", "x", "-bench", "BenchmarkMissing"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "no \"BenchmarkMissing\" lines") {
		t.Fatalf("err = %v", err)
	}
}

// TestRefusesEmptyNote: a rotation without a -note would commit numbers
// nobody can attribute to a change later; the update must fail before
// touching the snapshot.
func TestRefusesEmptyNote(t *testing.T) {
	benchPath, snapPath := writeFixtures(t)
	before, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	for _, note := range []string{"", "   "} {
		err := run([]string{"-in", benchPath, "-out", snapPath, "-note", note}, &out, &errb)
		if err == nil || !strings.Contains(err.Error(), "-note is empty") {
			t.Fatalf("note %q: err = %v, want empty-note refusal", note, err)
		}
	}
	after, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("refused update still modified the snapshot")
	}
}

const samplePairBench = `goos: linux
pkg: repro
BenchmarkSweepParallelism/big-serial-4        	      30	  30000000 ns/op	 6500000 B/op	  130000 allocs/op
BenchmarkSweepParallelism/big-serial-4        	      30	  34000000 ns/op	 6500002 B/op	  130002 allocs/op
BenchmarkSweepParallelism/big-sharded-4       	      20	  16000000 ns/op	 7300000 B/op	  133000 allocs/op
BenchmarkSweepParallelism/big-sharded-4       	      20	  16000000 ns/op	 7300000 B/op	  133000 allocs/op
PASS
`

// TestPairUpdatesSingleMachine: -pair averages big-serial and big-sharded
// from the same run, stores both with the speedup ratio, and leaves the
// baseline/current rotation untouched.
func TestPairUpdatesSingleMachine(t *testing.T) {
	_, snapPath := writeFixtures(t)
	dir := filepath.Dir(snapPath)
	pairPath := filepath.Join(dir, "pair.txt")
	if err := os.WriteFile(pairPath, []byte(samplePairBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-in", pairPath, "-out", snapPath, "-pair", "-note", "pdes"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.SingleMachine == nil {
		t.Fatal("single_machine section missing")
	}
	if s.SingleMachine.BigSerial.NsPerOp != 32000000 || s.SingleMachine.BigSharded.NsPerOp != 16000000 {
		t.Fatalf("pair entries: %+v", s.SingleMachine)
	}
	if s.SingleMachine.Speedup != 2.0 {
		t.Fatalf("speedup = %v, want 2.0", s.SingleMachine.Speedup)
	}
	if s.SingleMachine.Note != "pdes" {
		t.Fatalf("note = %q", s.SingleMachine.Note)
	}
	// The legs share the snapshot file with the labeled rotation entries, so
	// they must carry their own notes rather than serialize as "note": "".
	if s.SingleMachine.BigSerial.Note == "" || s.SingleMachine.BigSharded.Note == "" {
		t.Fatalf("pair leg notes empty: serial %q, sharded %q",
			s.SingleMachine.BigSerial.Note, s.SingleMachine.BigSharded.Note)
	}
	if s.Current.Note != "pooled" || s.Baseline.Note != "seed" {
		t.Fatal("pair update disturbed the baseline/current rotation")
	}
	// -pair with an empty note must refuse like a rotation does.
	if err := run([]string{"-in", pairPath, "-out", snapPath, "-pair"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-note is empty") {
		t.Fatalf("pair with empty note: err = %v", err)
	}
}

const sampleServeBench = `goos: linux
pkg: repro/internal/serve
BenchmarkServe/cold-4         	     100	   480000 ns/op	  125000 B/op	    1070 allocs/op
BenchmarkServe/cold-4         	     100	   520000 ns/op	  125002 B/op	    1072 allocs/op
BenchmarkServe/warm-4         	  500000	     2000 ns/op	    3200 B/op	      26 allocs/op
BenchmarkServe/warm-4         	  500000	     2000 ns/op	    3200 B/op	      26 allocs/op
BenchmarkServe/singleflight-4 	     100	   940000 ns/op	  360000 B/op	    3150 allocs/op
BenchmarkServe/singleflight-4 	     100	   940000 ns/op	  360000 B/op	    3150 allocs/op
PASS
`

// TestServeUpdatesServeSection: -serve averages the three BenchmarkServe
// legs, stores them with the cold/warm speedup, and leaves the
// baseline/current rotation untouched.
func TestServeUpdatesServeSection(t *testing.T) {
	_, snapPath := writeFixtures(t)
	servePath := filepath.Join(filepath.Dir(snapPath), "serve.txt")
	if err := os.WriteFile(servePath, []byte(sampleServeBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-in", servePath, "-out", snapPath, "-serve", "-note", "result cache"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Serve == nil {
		t.Fatal("serve section missing")
	}
	if s.Serve.Cold.NsPerOp != 500000 || s.Serve.Warm.NsPerOp != 2000 || s.Serve.Singleflight.NsPerOp != 940000 {
		t.Fatalf("serve legs: %+v", s.Serve)
	}
	if s.Serve.WarmSpeedup != 250.0 {
		t.Fatalf("warm speedup = %v, want 250.0", s.Serve.WarmSpeedup)
	}
	if s.Serve.Note != "result cache" {
		t.Fatalf("note = %q", s.Serve.Note)
	}
	if s.Serve.Cold.Note == "" || s.Serve.Warm.Note == "" || s.Serve.Singleflight.Note == "" {
		t.Fatal("serve leg notes empty")
	}
	if s.Current.Note != "pooled" || s.Baseline.Note != "seed" {
		t.Fatal("serve update disturbed the baseline/current rotation")
	}
	if !strings.Contains(out.String(), "warm speedup 250.0x") {
		t.Fatalf("summary output: %q", out.String())
	}
	// -serve with an empty note must refuse like a rotation does.
	if err := run([]string{"-in", servePath, "-out", snapPath, "-serve"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-note is empty") {
		t.Fatalf("serve with empty note: err = %v", err)
	}
	// Missing legs are an error, not a zero-filled section.
	if err := run([]string{"-in", filepath.Join(filepath.Dir(snapPath), "bench.txt"), "-out", snapPath, "-serve", "-note", "x"}, &out, &errb); err == nil {
		t.Fatal("serve update without BenchmarkServe lines succeeded")
	}
}
