// Command punosim runs one STAMP-profile workload on the simulated CMP
// under a chosen contention-management scheme and prints the measurements.
//
// Usage:
//
//	punosim -workload labyrinth -scheme puno [-seed 1] [-txper 0] [-maxcycles N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/machine"
	"repro/internal/pdes"
	"repro/internal/sim"
	"repro/internal/stamp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func schemeByName(name string) (machine.Scheme, error) {
	for _, s := range []machine.Scheme{
		machine.SchemeBaseline, machine.SchemeBackoff, machine.SchemeRMWPred,
		machine.SchemePUNO, machine.SchemeUnicastOnly, machine.SchemeNotifyOnly,
		machine.SchemeATS, machine.SchemePUNOPush,
	} {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", name)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("punosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "intruder", "STAMP profile: bayes|intruder|labyrinth|yada|genome|kmeans|ssca2|vacation")
		scheme    = fs.String("scheme", "baseline", "baseline|backoff|rmw-pred|puno|puno-unicast-only|puno-notify-only|ats|puno-push")
		seed      = fs.Uint64("seed", 1, "simulation seed")
		txper     = fs.Int("txper", 0, "transactions per node (0 = profile default)")
		maxCycles = fs.Uint64("maxcycles", 0, "cycle budget (0 = default)")
		quiet     = fs.Bool("q", false, "print only the summary line")
		traceStr  = fs.String("trace", "", "print protocol trace lines containing this substring (e.g. a line address)")
		vmult     = fs.Int("vmult", 0, "P-Buffer validity timeout multiplier (0 = default)")
		maxwait   = fs.Uint64("maxwait", 0, "cap on notification-guided waits (0 = default)")
		timeline  = fs.Uint64("timeline", 0, "sample interval in cycles; prints a dynamics table (0 = off)")
		shards    = fs.Int("shards", 1, "worker goroutines for the PDES run (1 = serial; results are bit-identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := stamp.ByName(*workload)
	if err != nil {
		return err
	}
	if *txper > 0 {
		p = p.WithTxPerCPU(*txper)
	}
	s, err := schemeByName(*scheme)
	if err != nil {
		return err
	}

	cfg := machine.DefaultConfig()
	cfg.Scheme = s
	cfg.Seed = *seed
	if *maxCycles > 0 {
		cfg.MaxCycles = sim.Time(*maxCycles)
	}
	cfg.ValidityTimeoutMult = *vmult
	if *timeline > 0 {
		cfg.SampleInterval = sim.Time(*timeline)
	}
	if *maxwait > 0 {
		cfg.NotifyMaxWait = sim.Time(*maxwait)
	}
	if *traceStr != "" {
		cfg.TraceFn = func(cy sim.Time, node int, ev string) {
			if strings.Contains(ev, *traceStr) {
				fmt.Fprintf(stdout, "%10d n%02d %s\n", cy, node, ev)
			}
		}
	}
	cfg.Shards = *shards

	// Sharded runs go through the PDES coordinator; -trace and -timeline
	// force the serial path (Eligible rejects them), as does shards <= 1.
	var m *machine.Machine
	var res *machine.Result
	start := time.Now()
	if pdes.Eligible(cfg, p) {
		co, err := pdes.New(cfg, p)
		if err != nil {
			return err
		}
		res, err = co.Run()
		if err != nil {
			fmt.Fprintf(stderr, "sharded run failed after %v: %v\n", time.Since(start), err)
			return err
		}
	} else {
		m, err = machine.New(cfg, p)
		if err != nil {
			return err
		}
		res, err = m.Run()
		if err != nil {
			fmt.Fprintf(stderr, "run failed after %v (%d events, cycle %d): %v\n",
				time.Since(start), m.Engine().Processed(), m.Engine().Now(), err)
			m.DumpState(stderr)
			return err
		}
	}
	wall := time.Since(start)

	fmt.Fprintf(stdout, "%s/%s: cycles=%d commits=%d aborts=%d abort%%=%.1f false%%=%.1f traffic=%d wall=%v\n",
		res.Workload, res.Scheme, res.Cycles, res.Commits, res.Aborts,
		100*res.AbortRate(), 100*res.FalseAbortFraction(),
		res.Net.TotalTraversals(), wall.Round(time.Millisecond))
	if *quiet {
		return nil
	}
	fmt.Fprintf(stdout, "  txGETX=%d outcomes: clean=%d resolved=%d nackOnly=%d falseAbort=%d\n",
		res.TxGETXIssued, res.GETXOutcomes[machine.OutcomeClean],
		res.GETXOutcomes[machine.OutcomeResolvedAborts],
		res.GETXOutcomes[machine.OutcomeNackOnly],
		res.GETXOutcomes[machine.OutcomeFalseAbort])
	fmt.Fprintf(stdout, "  abort causes: txGETX=%d txGETS=%d nonTx=%d overflow=%d unnecessary=%d\n",
		res.AbortsByCause[machine.CauseTxGETX], res.AbortsByCause[machine.CauseTxGETS],
		res.AbortsByCause[machine.CauseNonTx], res.AbortsByCause[machine.CauseOverflow],
		res.UnnecessaryAborts())
	fmt.Fprintf(stdout, "  G/D=%.2f dirBusyTxGETX=%d busyNacks=%d unicasts=%d mispred=%d notified=%d retries=%d\n",
		res.GDRatio(), res.DirTxGETXBusy, res.DirBusyNacks,
		res.DirUnicasts, res.Mispredictions, res.NotifiedBackoffs, res.Retries)
	if m != nil {
		fmt.Fprintf(stdout, "  events=%d (%.0f ev/us)\n", m.Engine().Processed(),
			float64(m.Engine().Processed())/float64(wall.Microseconds()+1))
	}
	if len(res.Timeline) > 0 {
		fmt.Fprintf(stdout, "  %-10s %8s %8s %10s %7s\n", "cycle", "commits", "aborts", "traffic", "liveTx")
		for _, smp := range res.Timeline {
			fmt.Fprintf(stdout, "  %-10d %8d %8d %10d %7d\n", smp.Cycle, smp.Commits, smp.Aborts, smp.Traffic, smp.LiveTxs)
		}
	}
	if m == nil {
		return nil
	}
	var noT, inval, reqOld, lowc, parted, uni uint64
	minConf, maxBen := 1.0, 0.0
	for _, p := range m.Predictors() {
		if p == nil {
			continue
		}
		noT += p.FallbackNoUD
		inval += p.FallbackInvalid
		reqOld += p.FallbackReqOlder
		lowc += p.FallbackLowConf
		parted += p.PartialKnowledge
		uni += p.Unicasts
		if c := p.Confidence(); c < minConf {
			minConf = c
		}
		if b := p.Benefit(); b > maxBen {
			maxBen = b
		}
	}
	if uni+lowc > 0 {
		fmt.Fprintf(stdout, "  predictor: unicasts=%d fallbacks{noTargets=%d allInvalid=%d reqOlder=%d lowConf=%d} partial=%d minConf=%.2f maxBenefit=%.2f\n",
			uni, noT, inval, reqOld, lowc, parted, minConf, maxBen)
	}
	return nil
}
