package main

import (
	"strings"
	"testing"
)

func TestRunPrintsSummaryLine(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-workload", "kmeans", "-txper", "2", "-q", "-seed", "7"}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.HasPrefix(out.String(), "kmeans/Baseline: cycles=") {
		t.Fatalf("summary line missing or unstable:\n%s", out.String())
	}
}

func TestRunDetailedStats(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-workload", "kmeans", "-txper", "2", "-scheme", "puno"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"txGETX=", "abort causes:", "G/D="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("detailed output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsUnknownWorkloadAndScheme(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-workload", "nosuch"}, &out, &errb); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run([]string{"-scheme", "nosuch"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("unknown scheme accepted: %v", err)
	}
	if err := run([]string{"-bogusflag"}, &out, &errb); err == nil {
		t.Fatal("bogus flag accepted")
	}
}
