package main

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestRealTreeExitsClean is the smoke half of the acceptance criterion: the
// repository's own packages produce no findings and run exits nil.
func TestRealTreeExitsClean(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"repro/..."}, &out, &errb); err != nil {
		t.Fatalf("punovet on the real tree failed: %v\nstdout:\n%s", err, out.String())
	}
	if out.String() != "" {
		t.Fatalf("punovet printed findings on a clean tree:\n%s", out.String())
	}
}

// TestBadFixtureExitsNonZero drives run against a fixture package riddled
// with violations: findings print in file:line: analyzer: message form and
// the command returns an error (exit 1 in main).
func TestBadFixtureExitsNonZero(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"repro/internal/lint/testdata/src/maprange"}, &out, &errb)
	if err == nil {
		t.Fatalf("punovet accepted a bad fixture; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "finding") {
		t.Fatalf("error does not count findings: %v", err)
	}
	if !strings.Contains(out.String(), "maprange.go") ||
		!strings.Contains(out.String(), ": maprange: ") {
		t.Fatalf("findings not in file:line: analyzer: message form:\n%s", out.String())
	}
}

func TestUsageListsAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-h"}, &out, &errb); err == nil {
		t.Fatal("-h should return flag.ErrHelp")
	}
	for _, name := range []string{
		"maprange", "wallclock", "hotalloc", "handlerfunc",
		"msglife", "shardconfine", "probeguard", "escapegate",
	} {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("usage does not mention %s:\n%s", name, errb.String())
		}
	}
}

// TestExitCodeClasses pins the findings-vs-driver-error split main maps to
// exit 1 vs exit 2: a dirty fixture yields a findingsError, while a
// nonexistent pattern yields a plain driver error.
func TestExitCodeClasses(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"repro/internal/lint/testdata/src/maprange"}, &out, &errb)
	var fe findingsError
	if !errors.As(err, &fe) {
		t.Fatalf("dirty fixture returned %T (%v), want findingsError", err, err)
	}
	if fe <= 0 {
		t.Fatalf("findingsError carries count %d, want > 0", int(fe))
	}

	out.Reset()
	errb.Reset()
	err = run([]string{"repro/internal/no/such/package"}, &out, &errb)
	if err == nil {
		t.Fatal("nonexistent package pattern succeeded")
	}
	if errors.As(err, &fe) {
		t.Fatalf("driver failure classified as findings: %v", err)
	}
}

// TestJSONOutput pins the -json wire form: a valid JSON array with
// analyzer/file/line/message per finding, and an empty (non-null) array on
// a clean tree.
func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-json", "repro/internal/lint/testdata/src/maprange"}, &out, &errb)
	var fe findingsError
	if !errors.As(err, &fe) {
		t.Fatalf("dirty fixture returned %v, want findingsError", err)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) != int(fe) {
		t.Fatalf("JSON carries %d findings, error counts %d", len(findings), int(fe))
	}
	for _, f := range findings {
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}

	out.Reset()
	if err := run([]string{"-json", "repro/internal/lint"}, &out, &errb); err != nil {
		t.Fatalf("clean package failed: %v", err)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean tree JSON = %q, want []", got)
	}
}

// TestVerboseTimings pins -v: one timing line per analyzer on stderr.
func TestVerboseTimings(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-v", "repro/internal/lint"}, &out, &errb); err != nil {
		t.Fatalf("punovet -v failed: %v", err)
	}
	for _, name := range []string{"maprange", "wallclock", "hotalloc", "handlerfunc", "msglife", "shardconfine", "probeguard"} {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("-v summary missing %s:\n%s", name, errb.String())
		}
	}
}

// TestEscapeMode drives `punovet -escape` both ways: findings on the
// escapegate fixture, clean on the real tree.
func TestEscapeMode(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-escape", "repro/internal/lint/testdata/src/escapegate"}, &out, &errb)
	var fe findingsError
	if !errors.As(err, &fe) {
		t.Fatalf("-escape on the fixture returned %v, want findingsError", err)
	}
	if !strings.Contains(out.String(), ": escapegate: ") {
		t.Fatalf("escape findings not attributed to escapegate:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if err := run([]string{"-escape", "repro/..."}, &out, &errb); err != nil {
		t.Fatalf("-escape on the real tree failed: %v\n%s", err, out.String())
	}
}
