package main

import (
	"strings"
	"testing"
)

// TestRealTreeExitsClean is the smoke half of the acceptance criterion: the
// repository's own packages produce no findings and run exits nil.
func TestRealTreeExitsClean(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"repro/..."}, &out, &errb); err != nil {
		t.Fatalf("punovet on the real tree failed: %v\nstdout:\n%s", err, out.String())
	}
	if out.String() != "" {
		t.Fatalf("punovet printed findings on a clean tree:\n%s", out.String())
	}
}

// TestBadFixtureExitsNonZero drives run against a fixture package riddled
// with violations: findings print in file:line: analyzer: message form and
// the command returns an error (exit 1 in main).
func TestBadFixtureExitsNonZero(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"repro/internal/lint/testdata/src/maprange"}, &out, &errb)
	if err == nil {
		t.Fatalf("punovet accepted a bad fixture; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "finding") {
		t.Fatalf("error does not count findings: %v", err)
	}
	if !strings.Contains(out.String(), "maprange.go") ||
		!strings.Contains(out.String(), ": maprange: ") {
		t.Fatalf("findings not in file:line: analyzer: message form:\n%s", out.String())
	}
}

func TestUsageListsAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-h"}, &out, &errb); err == nil {
		t.Fatal("-h should return flag.ErrHelp")
	}
	for _, name := range []string{"maprange", "wallclock", "hotalloc", "handlerfunc"} {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("usage does not mention %s:\n%s", name, errb.String())
		}
	}
}
