// Command punovet runs the project's custom static-analysis suite: four
// analyzers (maprange, wallclock, hotalloc, handlerfunc) that mechanize the
// simulator's determinism and zero-allocation invariants. Findings print as
// file:line: analyzer: message and any finding makes the command exit 1, so
// `punovet ./...` slots directly into make lint and CI.
//
// Usage:
//
//	punovet [packages]
//
// With no arguments it analyzes ./... . Suppressions require a written
// reason (//puno:unordered — <reason>, //puno:allow <analyzer> — <reason>)
// and are forbidden entirely in internal/sim, internal/noc, and
// internal/machine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("punovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: punovet [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Default() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.RunAnalyzers(".", patterns, lint.Default())
	if err != nil {
		return err
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", name, f.Pos.Line, f.Analyzer, f.Message)
	}
	if n := len(findings); n > 0 {
		return fmt.Errorf("punovet: %d finding(s)", n)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
