// Command punovet runs the project's custom static-analysis suite: seven
// analyzers (maprange, wallclock, hotalloc, handlerfunc, msglife,
// shardconfine, probeguard) that mechanize the simulator's determinism and
// zero-allocation invariants, plus the compiler-backed escape gate
// (-escape). Findings print as file:line: analyzer: message (or as a JSON
// array with -json) and make the command exit 1; driver errors — bad
// patterns, a failed go build, a type-check error — exit 2, so CI can
// tell "the tree is dirty" from "the tool broke".
//
// Usage:
//
//	punovet [-escape] [-json] [-v] [packages]
//
// With no arguments it analyzes ./... . -escape replaces the AST suite
// with the escape gate: `go build -gcflags=-m=2` runs underneath and any
// compiler-reported heap allocation in a //puno:hot function (minus panic
// paths and blessed amortized-growth callees) is a finding. -v prints a
// per-analyzer timing summary to stderr. Suppressions require a written
// reason (//puno:unordered — <reason>, //puno:allow <analyzer> — <reason>)
// and are forbidden entirely in internal/sim, internal/noc,
// internal/machine, internal/mem, and internal/pdes.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/lint"
)

// findingsError distinguishes "the tree has findings" (exit 1) from driver
// failures (exit 2) in main.
type findingsError int

func (n findingsError) Error() string { return fmt.Sprintf("punovet: %d finding(s)", int(n)) }

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("punovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	escape := fs.Bool("escape", false, "run the compiler-backed escape gate instead of the AST analyzers")
	verbose := fs.Bool("v", false, "print a per-analyzer timing summary to stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: punovet [-escape] [-json] [-v] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Default() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "  %-12s heap allocations in //puno:hot functions, per go build -gcflags=-m=2 (via -escape)\n", "escapegate")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var findings []lint.Finding
	var timings []lint.Timing
	var err error
	if *escape {
		start := time.Now()
		findings, err = lint.RunEscape(".", patterns)
		timings = []lint.Timing{{Analyzer: "escapegate", Elapsed: time.Since(start)}}
	} else {
		findings, timings, err = lint.RunAnalyzersTimed(".", patterns, lint.Default())
	}
	if err != nil {
		return err
	}
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "punovet: %-12s %v\n", tm.Analyzer, tm.Elapsed.Round(time.Microsecond))
		}
	}

	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(r) {
				return r
			}
		}
		return name
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     rel(f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n", rel(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	if n := len(findings); n > 0 {
		return findingsError(n)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		var fe findingsError
		if errors.As(err, &fe) {
			os.Exit(1)
		}
		os.Exit(2)
	}
}
