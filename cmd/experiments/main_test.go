package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTable2NeedsNoSimulation(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-exp", "table2"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "== Table II — system configuration ==\n") {
		t.Fatalf("Table II header missing:\n%s", out.String())
	}
}

func TestTable1SmallSweep(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-exp", "table1", "-scale", "0.05"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "Table I — benchmark abort rates (baseline)") {
		t.Fatalf("Table I missing:\n%s", out.String())
	}
	for _, wl := range []string{"bayes", "intruder", "vacation"} {
		if !strings.Contains(out.String(), wl) {
			t.Errorf("Table I missing workload %s", wl)
		}
	}
	if !strings.Contains(errb.String(), "sweep done in") {
		t.Errorf("progress line missing from stderr: %s", errb.String())
	}
}

func TestCSVOutput(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-exp", "table2", "-csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "unit,value") {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestEnsembleSeeds(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-exp", "fig10", "-seeds", "1,2", "-scale", "0.03", "-parallel", "2"}, &out, &errb)
	if err != nil {
		t.Fatalf("ensemble run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "mean±stddev over 2 seeds") {
		t.Fatalf("ensemble title missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "±") || !strings.Contains(out.String(), "mean(high-cont)") {
		t.Fatalf("ensemble cells missing:\n%s", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-seeds", "1,x"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "bad seed") {
		t.Fatalf("bad seed list accepted: %v", err)
	}
	if err := run([]string{"-exp", "table1", "-seeds", "1,2", "-scale", "0.03"}, &out, &errb); err == nil {
		t.Fatal("-seeds with a non-normalized figure should error")
	}
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb strings.Builder
	err := run([]string{"-exp", "table2", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestProfileFlagBadPath(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-exp", "table2", "-cpuprofile", t.TempDir() + "/no/such/dir/cpu.pprof"}, &out, &errb)
	if err == nil {
		t.Fatal("unwritable -cpuprofile path accepted")
	}
}
