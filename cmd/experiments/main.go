// Command experiments regenerates the paper's tables and figures. With no
// flags it runs the complete evaluation (all eight workloads, all four
// schemes) and prints every table; -exp selects one experiment, -csv emits
// machine-readable output, and -scale shrinks or grows the workloads. Runs
// fan out across -parallel workers (default GOMAXPROCS; -parallel=1 is the
// classic serial mode), and -seeds runs the whole sweep once per seed and
// reports mean±stddev confidence intervals for the normalized figures.
//
// Usage:
//
//	experiments                    # everything (several minutes)
//	experiments -exp fig10         # one figure
//	experiments -exp table3        # no simulation needed
//	experiments -scale 0.25        # quarter-size workloads for a quick look
//	experiments -seeds 1,2,3,4,5   # 5-seed ensemble with confidence intervals
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseSeeds turns a comma-separated seed list into values.
func parseSeeds(s string) ([]uint64, error) {
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("empty seed list %q", s)
	}
	return seeds, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment: table1|table2|table3|fig2|fig3|fig10|fig11|fig12|fig13|fig14|summary|all")
		seed     = fs.Uint64("seed", 12345, "simulation seed (single-seed mode)")
		seedList = fs.String("seeds", "", "comma-separated seed list; more than one runs an ensemble with mean±stddev figures")
		scale    = fs.Float64("scale", 1.0, "workload size multiplier")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file (samples carry per-run pprof labels: task index and workload/scheme/seed)")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// An interrupt cancels the sweep; the deferred Stop still flushes the
	// profiles collected so far.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	profiler, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer profiler.Stop()
	runErr := runExperiments(ctx, *exp, *seed, *seedList, *scale, *csv, *parallel, stdout, stderr)
	if perr := profiler.Stop(); runErr == nil {
		runErr = perr
	}
	return runErr
}

func runExperiments(ctx context.Context, exp string, seed uint64, seedList string, scale float64, csv bool, parallel int, stdout, stderr io.Writer) error {
	cfg := puno.DefaultConfig()
	cfg.Seed = seed
	want := strings.ToLower(exp)

	// Table II and Table III need no simulation.
	if want == "table2" {
		printTable(stdout, puno.Table2(cfg), csv)
		return nil
	}
	if want == "table3" {
		fmt.Fprint(stdout, puno.Table3(cfg.Nodes))
		return nil
	}

	needsAll := want == "all" || want == "fig10" || want == "fig11" ||
		want == "fig12" || want == "fig13" || want == "fig14" || want == "summary"
	schemes := puno.Schemes()
	if !needsAll {
		schemes = []puno.Scheme{puno.SchemeBaseline}
	}
	opts := puno.SweepOptions{Parallel: parallel}

	if seedList != "" {
		seeds, err := parseSeeds(seedList)
		if err != nil {
			return err
		}
		if len(seeds) > 1 {
			return runEnsemble(ctx, cfg, seeds, want, scale, opts, stdout, stderr)
		}
		cfg.Seed = seeds[0]
	}

	start := time.Now()
	fmt.Fprintf(stderr, "running %d workloads x %d schemes (seed %d, scale %.2f)...\n",
		len(puno.Workloads()), len(schemes), cfg.Seed, scale)
	sweep, err := puno.RunSweepCtx(ctx, cfg, puno.ScaledWorkloads(scale), schemes, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "sweep done in %v\n", time.Since(start).Round(time.Millisecond))

	show := func(name string, render func() (*puno.Table, error)) error {
		if want != "all" && want != name {
			return nil
		}
		t, err := render()
		if err != nil {
			return err
		}
		printTable(stdout, t, csv)
		fmt.Fprintln(stdout)
		return nil
	}
	for _, fig := range []struct {
		name   string
		render func() (*puno.Table, error)
	}{
		{"table1", sweep.Table1},
		{"fig2", sweep.Fig2},
		{"fig10", sweep.Fig10},
		{"fig11", sweep.Fig11},
		{"fig12", sweep.Fig12},
		{"fig13", sweep.Fig13},
		{"fig14", sweep.Fig14},
	} {
		if err := show(fig.name, fig.render); err != nil {
			return err
		}
		if fig.name == "table1" && want == "all" {
			printTable(stdout, puno.Table2(cfg), csv)
			fmt.Fprintln(stdout)
		}
		if fig.name == "fig2" && (want == "all" || want == "fig3") {
			f3, err := sweep.Fig3All()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, f3)
		}
	}
	if want == "all" {
		fmt.Fprint(stdout, puno.Table3(cfg.Nodes))
		fmt.Fprintln(stdout)
	}
	if want == "all" || want == "summary" {
		st, err := sweep.Summary()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== Headline summary (PUNO vs baseline; negative = reduction) ==\n")
		fmt.Fprintf(stdout, "high-contention: aborts %+.0f%%  traffic %+.0f%%  exec time %+.0f%%\n",
			-100*st.AbortReductionHC, -100*st.TrafficReductionHC, -100*st.SpeedupHC)
		fmt.Fprintf(stdout, "all workloads:   aborts %+.0f%%  traffic %+.0f%%  exec time %+.0f%%\n",
			-100*st.AbortReductionAll, -100*st.TrafficReductionAll, -100*st.SpeedupAll)
		fmt.Fprintf(stdout, "(paper: high-contention aborts -61%%, traffic -32%%, exec time -12%%)\n")
	}
	return nil
}

// runEnsemble regenerates the normalized figures as mean±stddev over the
// given seeds.
func runEnsemble(ctx context.Context, cfg puno.Config, seeds []uint64, want string, scale float64, opts puno.SweepOptions, stdout, stderr io.Writer) error {
	switch want {
	case "all", "fig10", "fig11", "fig12", "fig13", "fig14":
	default:
		return fmt.Errorf("-seeds supports the normalized figures (fig10..fig14) or -exp all, not %q", want)
	}
	start := time.Now()
	fmt.Fprintf(stderr, "running %d workloads x %d schemes x %d seeds...\n",
		len(puno.Workloads()), len(puno.Schemes()), len(seeds))
	ens, err := puno.RunEnsemble(ctx, cfg, puno.ScaledWorkloads(scale),
		puno.Schemes(), seeds, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ensemble done in %v\n", time.Since(start).Round(time.Millisecond))

	figs := []struct {
		name   string
		title  string
		metric func(*puno.Result) float64
	}{
		{"fig10", "Fig. 10 — normalized transaction aborts", func(r *puno.Result) float64 { return float64(r.Aborts) }},
		{"fig11", "Fig. 11 — normalized network traffic (router traversals)", func(r *puno.Result) float64 { return float64(r.Net.TotalTraversals()) }},
		{"fig12", "Fig. 12 — normalized directory blocking per TxGETX service", func(r *puno.Result) float64 { return r.DirBlockingPerTxGETX() }},
		{"fig13", "Fig. 13 — normalized execution time", func(r *puno.Result) float64 { return float64(r.Cycles) }},
		{"fig14", "Fig. 14 — normalized G/D ratio (larger is better)", func(r *puno.Result) float64 { return r.GDRatio() }},
	}
	for _, f := range figs {
		if want != "all" && want != f.name {
			continue
		}
		t, err := ens.MetricTable(f.title, f.metric)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, t.String())
		fmt.Fprintln(stdout)
	}
	return nil
}

func printTable(w io.Writer, t *puno.Table, csv bool) {
	if csv {
		fmt.Fprint(w, t.CSV())
		return
	}
	fmt.Fprint(w, t.String())
}
