// Command experiments regenerates the paper's tables and figures. With no
// flags it runs the complete evaluation (all eight workloads, all four
// schemes) and prints every table; -exp selects one experiment, -csv emits
// machine-readable output, and -scale shrinks or grows the workloads.
//
// Usage:
//
//	experiments                 # everything (several minutes)
//	experiments -exp fig10      # one figure
//	experiments -exp table3     # no simulation needed
//	experiments -scale 0.25     # quarter-size workloads for a quick look
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: table1|table2|table3|fig2|fig3|fig10|fig11|fig12|fig13|fig14|summary|all")
		seed  = flag.Uint64("seed", 12345, "simulation seed")
		scale = flag.Float64("scale", 1.0, "workload size multiplier")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	cfg := puno.DefaultConfig()
	cfg.Seed = *seed
	want := strings.ToLower(*exp)

	// Table II and Table III need no simulation.
	if want == "table2" {
		printTable(puno.Table2(cfg), *csv)
		return
	}
	if want == "table3" {
		fmt.Print(puno.Table3(cfg.Nodes))
		return
	}

	needsAll := want == "all" || want == "fig10" || want == "fig11" ||
		want == "fig12" || want == "fig13" || want == "fig14" || want == "summary"
	schemes := puno.Schemes()
	if !needsAll {
		schemes = []puno.Scheme{puno.SchemeBaseline}
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "running %d workloads x %d schemes (seed %d, scale %.2f)...\n",
		len(puno.Workloads()), len(schemes), *seed, *scale)
	sweep, err := puno.RunSweep(cfg, puno.ScaledWorkloads(*scale), schemes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweep done in %v\n", time.Since(start).Round(time.Millisecond))

	show := func(name string, t *puno.Table) {
		if want == "all" || want == name {
			printTable(t, *csv)
			fmt.Println()
		}
	}
	show("table1", sweep.Table1())
	if want == "all" {
		printTable(puno.Table2(cfg), *csv)
		fmt.Println()
	}
	show("fig2", sweep.Fig2())
	if want == "all" || want == "fig3" {
		fmt.Println(sweep.Fig3All())
	}
	show("fig10", sweep.Fig10())
	show("fig11", sweep.Fig11())
	show("fig12", sweep.Fig12())
	show("fig13", sweep.Fig13())
	show("fig14", sweep.Fig14())
	if want == "all" {
		fmt.Print(puno.Table3(cfg.Nodes))
		fmt.Println()
	}
	if want == "all" || want == "summary" {
		st := sweep.Summary()
		fmt.Printf("== Headline summary (PUNO vs baseline; negative = reduction) ==\n")
		fmt.Printf("high-contention: aborts %+.0f%%  traffic %+.0f%%  exec time %+.0f%%\n",
			-100*st.AbortReductionHC, -100*st.TrafficReductionHC, -100*st.SpeedupHC)
		fmt.Printf("all workloads:   aborts %+.0f%%  traffic %+.0f%%  exec time %+.0f%%\n",
			-100*st.AbortReductionAll, -100*st.TrafficReductionAll, -100*st.SpeedupAll)
		fmt.Printf("(paper: high-contention aborts -61%%, traffic -32%%, exec time -12%%)\n")
	}
}

func printTable(t *puno.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}
