// Command punotrace records STAMP-profile workloads to portable trace
// files, inspects them, and replays them on the simulator.
//
//	punotrace record -workload labyrinth -o labyrinth.trace
//	punotrace info   -i labyrinth.trace
//	punotrace run    -i labyrinth.trace -scheme puno
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "run":
		run(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: punotrace record|info|run [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "intruder", "STAMP profile to record")
	out := fs.String("o", "", "output file (default <workload>.trace)")
	seed := fs.Uint64("seed", 1, "generation seed")
	txper := fs.Int("txper", 0, "transactions per node (0 = profile default)")
	nodes := fs.Int("nodes", 16, "node count")
	fs.Parse(args)

	wl, err := puno.WorkloadByName(*workload)
	if err != nil {
		fatal(err)
	}
	if *txper > 0 {
		wl = wl.WithTxPerCPU(*txper)
	}
	path := *out
	if path == "" {
		path = *workload + ".trace"
	}
	tr := puno.RecordTrace(wl, *nodes, *seed)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		fatal(err)
	}
	s := tr.Summarize()
	fmt.Printf("recorded %s: %d nodes, %d transactions, %d ops -> %s\n",
		tr.Name(), tr.Nodes(), s.Transactions, s.Ops, path)
}

func loadFile(path string) *puno.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := puno.LoadTrace(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "trace file")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("info: -i required"))
	}
	tr := loadFile(*in)
	s := tr.Summarize()
	fmt.Printf("workload %s  high-contention=%v  nodes=%d\n", tr.Name(), tr.HighContention(), tr.Nodes())
	fmt.Printf("transactions=%d ops=%d reads=%d writes=%d incrs=%d compute-cycles=%d\n",
		s.Transactions, s.Ops, s.Reads, s.Writes, s.Incrs, s.ComputeCyc)
	var ids []int
	for id := range s.DistinctTx {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  static tx %d: %d dynamic instances\n", id, s.DistinctTx[id])
	}
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("i", "", "trace file")
	scheme := fs.String("scheme", "baseline", "contention-management scheme")
	seed := fs.Uint64("seed", 1, "simulation seed (protocol jitter; the op streams come from the trace)")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("run: -i required"))
	}
	tr := loadFile(*in)

	cfg := puno.DefaultConfig()
	cfg.Seed = *seed
	found := false
	for _, s := range []puno.Scheme{
		puno.SchemeBaseline, puno.SchemeBackoff, puno.SchemeRMWPred,
		puno.SchemePUNO, puno.SchemeUnicastOnly, puno.SchemeNotifyOnly, puno.SchemeATS, puno.SchemePUNOPush,
	} {
		if strings.EqualFold(s.String(), *scheme) {
			cfg.Scheme = s
			found = true
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}

	res, err := puno.Run(cfg, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s/%v: cycles=%d commits=%d aborts=%d abort%%=%.1f false%%=%.1f traffic=%d\n",
		res.Workload, res.Scheme, res.Cycles, res.Commits, res.Aborts,
		100*res.AbortRate(), 100*res.FalseAbortFraction(), res.Net.TotalTraversals())
}
