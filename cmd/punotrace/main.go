// Command punotrace records STAMP-profile workloads to portable trace
// files, inspects them, and replays them on the simulator; it also
// captures event-level traces of whole runs and diffs them down to the
// first divergent event.
//
//	punotrace record -workload labyrinth -o labyrinth.trace
//	punotrace info   -i labyrinth.trace
//	punotrace run    -i labyrinth.trace -scheme puno
//	punotrace events -workload intruder -scheme puno -o puno.evt
//	punotrace diff   -a puno.evt -b baseline.evt
//	punotrace diff   -workload intruder -scheme-a baseline -scheme-b puno
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if strings.HasPrefix(err.Error(), "usage:") {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return usageError()
	}
	switch args[0] {
	case "record":
		return record(args[1:], stdout, stderr)
	case "info":
		return info(args[1:], stdout, stderr)
	case "run":
		return replay(args[1:], stdout, stderr)
	case "events":
		return events(args[1:], stdout, stderr)
	case "diff":
		return diff(args[1:], stdout, stderr)
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: punotrace record|info|run|events|diff [flags]")
}

// schemeByName resolves a case-insensitive scheme name.
func schemeByName(name string) (puno.Scheme, error) {
	for _, s := range []puno.Scheme{
		puno.SchemeBaseline, puno.SchemeBackoff, puno.SchemeRMWPred,
		puno.SchemePUNO, puno.SchemeUnicastOnly, puno.SchemeNotifyOnly, puno.SchemeATS, puno.SchemePUNOPush,
	} {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", name)
}

func record(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "intruder", "STAMP profile to record")
	out := fs.String("o", "", "output file (default <workload>.trace)")
	seed := fs.Uint64("seed", 1, "generation seed")
	txper := fs.Int("txper", 0, "transactions per node (0 = profile default)")
	nodes := fs.Int("nodes", 16, "node count")
	if err := fs.Parse(args); err != nil {
		return err
	}

	wl, err := puno.WorkloadByName(*workload)
	if err != nil {
		return err
	}
	if *txper > 0 {
		wl = wl.WithTxPerCPU(*txper)
	}
	path := *out
	if path == "" {
		path = *workload + ".trace"
	}
	tr := puno.RecordTrace(wl, *nodes, *seed)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		return err
	}
	s := tr.Summarize()
	fmt.Fprintf(stdout, "recorded %s: %d nodes, %d transactions, %d ops -> %s\n",
		tr.Name(), tr.Nodes(), s.Transactions, s.Ops, path)
	return nil
}

func loadFile(path string) (*puno.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return puno.LoadTrace(f)
}

func info(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -i required")
	}
	tr, err := loadFile(*in)
	if err != nil {
		return err
	}
	s := tr.Summarize()
	fmt.Fprintf(stdout, "workload %s  high-contention=%v  nodes=%d\n", tr.Name(), tr.HighContention(), tr.Nodes())
	fmt.Fprintf(stdout, "transactions=%d ops=%d reads=%d writes=%d incrs=%d compute-cycles=%d\n",
		s.Transactions, s.Ops, s.Reads, s.Writes, s.Incrs, s.ComputeCyc)
	var ids []int
	for id := range s.DistinctTx {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(stdout, "  static tx %d: %d dynamic instances\n", id, s.DistinctTx[id])
	}
	return nil
}

func replay(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "trace file")
	scheme := fs.String("scheme", "baseline", "contention-management scheme")
	seed := fs.Uint64("seed", 1, "simulation seed (protocol jitter; the op streams come from the trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("run: -i required")
	}
	s, err := schemeByName(*scheme)
	if err != nil {
		return err
	}
	tr, err := loadFile(*in)
	if err != nil {
		return err
	}

	cfg := puno.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scheme = s

	res, err := puno.Run(cfg, tr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s/%v: cycles=%d commits=%d aborts=%d abort%%=%.1f false%%=%.1f traffic=%d\n",
		res.Workload, res.Scheme, res.Cycles, res.Commits, res.Aborts,
		100*res.AbortRate(), 100*res.FalseAbortFraction(), res.Net.TotalTraversals())
	return nil
}

// capture runs one workload/scheme/seed combination with event recording.
func capture(workload string, scheme puno.Scheme, seed uint64, txper int) (*puno.Result, *puno.EventTrace, error) {
	wl, err := puno.WorkloadByName(workload)
	if err != nil {
		return nil, nil, err
	}
	if txper > 0 {
		wl = wl.WithTxPerCPU(txper)
	}
	cfg := puno.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Seed = seed
	return puno.CaptureEvents(cfg, wl)
}

func events(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "intruder", "STAMP profile to run")
	scheme := fs.String("scheme", "baseline", "contention-management scheme")
	seed := fs.Uint64("seed", 1, "simulation seed")
	txper := fs.Int("txper", 0, "transactions per node (0 = profile default)")
	out := fs.String("o", "", "output file (default <workload>-<scheme>.evt)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := schemeByName(*scheme)
	if err != nil {
		return err
	}
	res, et, err := capture(*workload, s, *seed, *txper)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s.evt", *workload, strings.ToLower(s.String()))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := et.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "captured %s/%v: %d events, %d lines, %d cycles -> %s\n",
		res.Workload, res.Scheme, len(et.Events), len(et.Lines), res.Cycles, path)
	return nil
}

func loadEvents(path string) (*puno.EventTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	et, err := puno.LoadEventTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return et, nil
}

// diff pinpoints the first divergent event between two runs: either two
// saved traces (-a/-b) or two schemes captured in-process (-scheme-a /
// -scheme-b on one workload+seed). Identical streams and divergences both
// exit 0 — the diagnosis is the output, not the exit code.
func diff(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	aPath := fs.String("a", "", "first event-trace file")
	bPath := fs.String("b", "", "second event-trace file")
	workload := fs.String("workload", "", "capture mode: STAMP profile to run")
	schemeA := fs.String("scheme-a", "baseline", "capture mode: first scheme")
	schemeB := fs.String("scheme-b", "puno", "capture mode: second scheme")
	seed := fs.Uint64("seed", 1, "capture mode: simulation seed")
	txper := fs.Int("txper", 0, "capture mode: transactions per node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var a, b *puno.EventTrace
	switch {
	case *aPath != "" && *bPath != "":
		var err error
		if a, err = loadEvents(*aPath); err != nil {
			return err
		}
		if b, err = loadEvents(*bPath); err != nil {
			return err
		}
	case *workload != "":
		sa, err := schemeByName(*schemeA)
		if err != nil {
			return err
		}
		sb, err := schemeByName(*schemeB)
		if err != nil {
			return err
		}
		if _, a, err = capture(*workload, sa, *seed, *txper); err != nil {
			return err
		}
		if _, b, err = capture(*workload, sb, *seed, *txper); err != nil {
			return err
		}
	default:
		return fmt.Errorf("diff: need either -a and -b, or -workload")
	}
	d, ok := puno.FirstDivergence(a, b)
	if !ok {
		fmt.Fprintf(stdout, "identical: %d events (A[%s] == B[%s])\n", len(a.Events), a.Scheme, b.Scheme)
		return nil
	}
	fmt.Fprintln(stdout, puno.FormatDivergence(a, b, d))
	return nil
}
