// Command punotrace records STAMP-profile workloads to portable trace
// files, inspects them, and replays them on the simulator.
//
//	punotrace record -workload labyrinth -o labyrinth.trace
//	punotrace info   -i labyrinth.trace
//	punotrace run    -i labyrinth.trace -scheme puno
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if strings.HasPrefix(err.Error(), "usage:") {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return usageError()
	}
	switch args[0] {
	case "record":
		return record(args[1:], stdout, stderr)
	case "info":
		return info(args[1:], stdout, stderr)
	case "run":
		return replay(args[1:], stdout, stderr)
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: punotrace record|info|run [flags]")
}

func record(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "intruder", "STAMP profile to record")
	out := fs.String("o", "", "output file (default <workload>.trace)")
	seed := fs.Uint64("seed", 1, "generation seed")
	txper := fs.Int("txper", 0, "transactions per node (0 = profile default)")
	nodes := fs.Int("nodes", 16, "node count")
	if err := fs.Parse(args); err != nil {
		return err
	}

	wl, err := puno.WorkloadByName(*workload)
	if err != nil {
		return err
	}
	if *txper > 0 {
		wl = wl.WithTxPerCPU(*txper)
	}
	path := *out
	if path == "" {
		path = *workload + ".trace"
	}
	tr := puno.RecordTrace(wl, *nodes, *seed)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		return err
	}
	s := tr.Summarize()
	fmt.Fprintf(stdout, "recorded %s: %d nodes, %d transactions, %d ops -> %s\n",
		tr.Name(), tr.Nodes(), s.Transactions, s.Ops, path)
	return nil
}

func loadFile(path string) (*puno.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return puno.LoadTrace(f)
}

func info(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -i required")
	}
	tr, err := loadFile(*in)
	if err != nil {
		return err
	}
	s := tr.Summarize()
	fmt.Fprintf(stdout, "workload %s  high-contention=%v  nodes=%d\n", tr.Name(), tr.HighContention(), tr.Nodes())
	fmt.Fprintf(stdout, "transactions=%d ops=%d reads=%d writes=%d incrs=%d compute-cycles=%d\n",
		s.Transactions, s.Ops, s.Reads, s.Writes, s.Incrs, s.ComputeCyc)
	var ids []int
	for id := range s.DistinctTx {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(stdout, "  static tx %d: %d dynamic instances\n", id, s.DistinctTx[id])
	}
	return nil
}

func replay(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "trace file")
	scheme := fs.String("scheme", "baseline", "contention-management scheme")
	seed := fs.Uint64("seed", 1, "simulation seed (protocol jitter; the op streams come from the trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("run: -i required")
	}
	tr, err := loadFile(*in)
	if err != nil {
		return err
	}

	cfg := puno.DefaultConfig()
	cfg.Seed = *seed
	found := false
	for _, s := range []puno.Scheme{
		puno.SchemeBaseline, puno.SchemeBackoff, puno.SchemeRMWPred,
		puno.SchemePUNO, puno.SchemeUnicastOnly, puno.SchemeNotifyOnly, puno.SchemeATS, puno.SchemePUNOPush,
	} {
		if strings.EqualFold(s.String(), *scheme) {
			cfg.Scheme = s
			found = true
		}
	}
	if !found {
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	res, err := puno.Run(cfg, tr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s/%v: cycles=%d commits=%d aborts=%d abort%%=%.1f false%%=%.1f traffic=%d\n",
		res.Workload, res.Scheme, res.Cycles, res.Commits, res.Aborts,
		100*res.AbortRate(), 100*res.FalseAbortFraction(), res.Net.TotalTraversals())
	return nil
}
