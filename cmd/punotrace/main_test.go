package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordInfoReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kmeans.trace")

	var out, errb strings.Builder
	if err := run([]string{"record", "-workload", "kmeans", "-txper", "2", "-o", path}, &out, &errb); err != nil {
		t.Fatalf("record: %v (stderr: %s)", err, errb.String())
	}
	if !strings.HasPrefix(out.String(), "recorded kmeans: 16 nodes,") {
		t.Fatalf("record output unstable:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"info", "-i", path}, &out, &errb); err != nil {
		t.Fatalf("info: %v", err)
	}
	if !strings.HasPrefix(out.String(), "workload kmeans  high-contention=false  nodes=16\n") {
		t.Fatalf("info output unstable:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"run", "-i", path, "-scheme", "puno"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(out.String(), "kmeans/PUNO: cycles=") {
		t.Fatalf("replay output unstable:\n%s", out.String())
	}
}

func TestUsageAndMissingFlags(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err == nil || !strings.HasPrefix(err.Error(), "usage:") {
		t.Fatalf("no-arg invocation: %v", err)
	}
	if err := run([]string{"nosuch"}, &out, &errb); err == nil || !strings.HasPrefix(err.Error(), "usage:") {
		t.Fatalf("unknown subcommand: %v", err)
	}
	if err := run([]string{"info"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-i required") {
		t.Fatalf("info without -i: %v", err)
	}
	if err := run([]string{"run"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-i required") {
		t.Fatalf("run without -i: %v", err)
	}
	if err := run([]string{"run", "-i", "/nonexistent/x.trace"}, &out, &errb); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
